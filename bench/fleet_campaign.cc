/**
 * @file
 * Rack-scale fleet campaign: a ClusterRouter over heterogeneous
 * Backends (CXL-PNM and GPU appliances), diurnal traffic, watermark
 * autoscaling, and the fleet-granularity TCO roll-up - the paper's
 * Table III economics promoted from one appliance to a fleet. Every
 * appliance is an 8-device box (the paper's form factor): the PNM
 * class shards as mp x (8/mp) LPDDR devices, the GPU class as
 * mp x (8/mp) A100-40Gs.
 *
 * Cells (each self-contained, analytic unless noted):
 *
 *  - gpu_homog       N GPU appliances under one diurnal+MMPP stream:
 *                    the all-DGX baseline fleet.
 *  - hetero          half the GPU boxes replaced by PNM appliances,
 *                    identical stream: the TCO headline cell. Must
 *                    beat gpu_homog on $/Mtok at equal-or-better SLO
 *                    attainment.
 *  - outage          the hetero fleet with a scripted whole-appliance
 *                    fail-stop (every device group of one PNM box):
 *                    the router drains the degraded node; fleet
 *                    availability must hold the floor and every
 *                    request must still finish.
 *  - diurnal_static  an all-PNM fleet, strong day/night swing, all
 *                    appliances provisioned for peak the whole day.
 *  - diurnal_auto    the same stream with the autoscaler flexing the
 *                    fleet on sustained backlog watermarks: must cut
 *                    energy vs diurnal_static without giving up SLO
 *                    attainment, with at least one scale-up and one
 *                    scale-down.
 *  - anchor_analytic one small PNM appliance, flat Poisson stream,
 *  - anchor_cycle    priced by the fitted model vs the memoized
 *                    cycle-exact engine (PR 8): the fleet cells run
 *                    analytic, and this pair bounds what that
 *                    approximation costs at fleet granularity.
 *
 * check=1 enforces the gates above. The out= JSON is a pure function
 * of the simulation (no wall clock, no host info), so any two runs -
 * any thread count - produce byte-identical files; CI diffs
 * threads=1 against threads=4 and a rerun against the first.
 *
 *   fleet_campaign [seed=42] [threads=0] [model=opt-66b] [n=240]
 *                  [n_diurnal=400] [anchor_n=24] [fleet=4]
 *                  [out=BENCH_fleet.json] [check=0]
 *                  [avail_floor=0.9] [anchor_tol=0.08] [slo_tol=0.02]
 */

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/tco.hh"
#include "fleet/autoscaler.hh"
#include "fleet/backend.hh"
#include "fleet/cluster_router.hh"
#include "fleet/diurnal.hh"
#include "serve/calibration.hh"
#include "serve/cost_model.hh"
#include "sim/config.hh"
#include "sim/fault.hh"
#include "sim/thread_pool.hh"

using namespace cxlpnm;

namespace
{

bool
writeFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return true;
}

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    out += buf;
}

constexpr std::uint64_t kInputTokens = 64;
constexpr std::uint64_t kOutputTokens = 64;
constexpr std::size_t kMaxBatch = 8;
constexpr int kDevicesPerAppliance = 8;

/** Everything a cell needs besides its own knobs. */
struct Shared
{
    llm::ModelConfig model;
    core::PnmPlatformConfig pcfg;
    gpu::GpuSpec gspec;
    serve::BatchCostModel pnmCost;
    serve::BatchCostModel gpuCost;
    int pnmMp = 1; // minimal shard whose KV capacity is positive
    int gpuMp = 1;
    std::uint64_t seed = 42;
};

struct CellSpec
{
    std::string name;
    int pnm = 0;
    int gpu = 0;
    std::size_t n = 0;
    double baseQps = 0.0;
    double amplitude = 0.0;
    bool bursty = false;
    double slo = 0.0; // TTFT SLO, also scales router/scaler windows
    std::uint64_t outTokens = kOutputTokens;
    bool smallPnm = false;  // 2-device PNM boxes (the anchor pair)
    bool outage = false;    // scripted fail-stop on backend 0
    bool autoscale = false; // flex on watermarks (else ledger only)
    std::size_t startActive = SIZE_MAX; // rest begin Offline
    bool cycle = false; // price through the cycle-exact engine
};

struct BackendSummary
{
    std::string name;
    const char *cls = "";
    std::uint64_t routed = 0;
    std::uint64_t completed = 0;
    std::uint64_t tokens = 0;
    double availability = 1.0;
    double activeSeconds = 0.0;
    double idleSeconds = 0.0;
};

struct CellResult
{
    CellSpec spec;
    std::vector<BackendSummary> backends;
    double makespan = 0.0;
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t retries = 0;
    double sloAttainment = 0.0;
    double servedFraction = 0.0;
    double availability = 1.0; // device-seconds, fleet mean
    double throughputTokensPerSec = 0.0;
    double ttftP99 = 0.0; // worst backend
    std::uint64_t affinityHits = 0;
    std::uint64_t degradedSkips = 0;
    std::uint64_t scaleUps = 0;
    std::uint64_t scaleDowns = 0;
    std::uint64_t cycleStageRuns = 0;
    std::uint64_t cycleMemoHits = 0;
    core::FleetTcoReport tco;
};

fleet::BackendConfig
makeBackendConfig(const Shared &sh, const std::string &name, bool gpu,
                  bool small, double slo)
{
    fleet::BackendConfig cfg;
    cfg.name = name;
    cfg.plan.modelParallel = gpu ? sh.gpuMp : sh.pnmMp;
    cfg.plan.dataParallel = small
        ? 2
        : kDevicesPerAppliance / cfg.plan.modelParallel;
    cfg.sched.maxBatch = kMaxBatch;
    // Survive the scripted node outage: a request pinned to a group
    // that fail-stops repeatedly retries through the whole window.
    cfg.sched.ras.maxRequestRetries = 8;
    cfg.metrics.tokenLatencyHi = 20.0;
    cfg.metrics.tokenLatencyBuckets = 4000;
    cfg.metrics.sloTtftSeconds = slo;
    cfg.capacityContextTokens = kInputTokens + kOutputTokens;
    return cfg;
}

CellResult
runCell(const CellSpec &sp, const Shared &sh)
{
    std::vector<std::unique_ptr<fleet::DispatcherBackend>> boxes;
    for (int i = 0; i < sp.pnm; ++i)
        boxes.push_back(std::make_unique<fleet::PnmBackend>(
            sh.model, sh.pcfg, sh.pnmCost,
            makeBackendConfig(sh, "pnm" + std::to_string(i), false,
                              sp.smallPnm, sp.slo)));
    for (int i = 0; i < sp.gpu; ++i)
        boxes.push_back(std::make_unique<fleet::GpuBackend>(
            sh.model, sh.gspec, sh.gpuCost,
            makeBackendConfig(sh, "gpu" + std::to_string(i), true,
                              false, sp.slo)));

    // One shared memoized engine pricer across all device groups, so
    // each distinct stage shape is simulated exactly once per cell.
    std::unique_ptr<serve::CyclePricer> pricer;
    if (sp.cycle) {
        pricer = std::make_unique<serve::CyclePricer>(
            sh.model, sh.pcfg, sh.pnmCost, sh.pnmMp);
        for (auto &b : boxes)
            for (std::size_t g = 0; g < b->dispatcher().groupCount();
                 ++g)
                b->dispatcher().setPricer(g, pricer.get());
    }

    fault::FaultInjector inj(sh.seed);
    if (sp.outage) {
        // A whole-node outage mid-run: every device group of the
        // first appliance fail-stops at the same scripted instant,
        // so for one RAS cooldown the node has no healthy group and
        // the router must route around it.
        const double t0 =
            0.4 * static_cast<double>(sp.n) / sp.baseQps;
        for (std::size_t g = 0;
             g < boxes.front()->dispatcher().groupCount(); ++g)
            inj.arm(fault::FaultSpec::scriptedTick(
                "pnm0.group" + std::to_string(g) + ".iteration",
                fault::FaultKind::GroupFailStop,
                secondsToTicks(t0)));
        boxes.front()->dispatcher().attachFaultInjector(&inj, "pnm0");
    }

    std::vector<fleet::Backend *> ptrs;
    for (auto &b : boxes)
        ptrs.push_back(b.get());
    fleet::RouterConfig rcfg;
    rcfg.affinitySlackSeconds = 0.25 * sp.slo;
    fleet::ClusterRouter router(ptrs, rcfg);
    for (std::size_t i = sp.startActive; i < ptrs.size(); ++i)
        router.setState(i, fleet::BackendState::Offline);

    fleet::AutoscalerConfig acfg;
    acfg.enabled = sp.autoscale;
    acfg.highWatermarkSeconds = 0.5 * sp.slo;
    acfg.lowWatermarkSeconds = 0.05 * sp.slo;
    acfg.sustainSeconds = 0.1 * sp.slo;
    acfg.cooldownSeconds = 0.3 * sp.slo;
    acfg.minActive = 1;
    fleet::Autoscaler scaler(router, acfg);

    fleet::DiurnalConfig traffic;
    traffic.baseRequestsPerSec = sp.baseQps;
    traffic.amplitude = sp.amplitude;
    // One full day/night cycle over the run.
    traffic.periodSeconds = static_cast<double>(sp.n) / sp.baseQps;
    traffic.bursty = sp.bursty;
    traffic.burstOnSeconds = 0.5 * sp.slo;
    traffic.burstOffSeconds = 0.5 * sp.slo;
    traffic.burstOffRateFraction = 0.5;
    traffic.numRequests = sp.n;
    traffic.seed = sh.seed;
    traffic.input = serve::LengthDistribution::fixed(kInputTokens);
    traffic.output = serve::LengthDistribution::fixed(sp.outTokens);
    traffic.numTenants = 8;

    fleet::DiurnalGenerator gen(traffic);
    while (!gen.exhausted()) {
        const auto req = gen.next();
        router.submit(req);
        scaler.observe(req.arrivalSeconds);
    }
    router.drain();
    const double makespan = router.clockSeconds();
    scaler.finish(makespan);

    CellResult r;
    r.spec = sp;
    r.makespan = makespan;
    r.affinityHits = router.affinityHits();
    r.degradedSkips = router.degradedSkips();
    r.scaleUps = scaler.scaleUps();
    r.scaleDowns = scaler.scaleDowns();
    if (pricer) {
        r.cycleStageRuns = pricer->engineStageRuns();
        r.cycleMemoHits = pricer->memoHits();
    }

    double slo_weighted = 0.0;
    double avail_sum = 0.0;
    std::uint64_t tokens = 0;
    for (std::size_t i = 0; i < ptrs.size(); ++i) {
        const auto rep = ptrs[i]->report(makespan);
        BackendSummary bs;
        bs.name = ptrs[i]->name();
        bs.cls = fleet::backendClassName(ptrs[i]->backendClass());
        bs.routed = router.routedTo(i);
        bs.completed = rep.completed;
        bs.tokens = ptrs[i]->tokensGenerated();
        bs.availability = rep.availability;
        bs.activeSeconds = scaler.activeSeconds(i);
        bs.idleSeconds = scaler.idleSeconds(i);
        r.backends.push_back(bs);

        r.submitted += rep.submitted;
        r.completed += rep.completed;
        r.failed += rep.requestsFailed;
        r.retries += rep.requestRetries;
        slo_weighted += rep.sloAttainment *
            static_cast<double>(rep.submitted);
        avail_sum += rep.availability;
        tokens += ptrs[i]->tokensGenerated();
        r.ttftP99 = std::max(r.ttftP99, rep.ttftP99);
    }
    r.sloAttainment = r.submitted > 0
        ? slo_weighted / static_cast<double>(r.submitted)
        : 0.0;
    r.servedFraction = r.submitted > 0
        ? static_cast<double>(r.completed) /
            static_cast<double>(r.submitted)
        : 0.0;
    r.availability = avail_sum / static_cast<double>(ptrs.size());
    r.throughputTokensPerSec =
        static_cast<double>(tokens) / makespan;

    // Fleet TCO: one class per silicon kind, appliance-seconds from
    // the autoscaler's power ledger.
    std::vector<core::FleetClassTcoInputs> classes;
    for (const auto cls :
         {fleet::BackendClass::Pnm, fleet::BackendClass::Gpu}) {
        core::FleetClassTcoInputs in;
        in.name = fleet::backendClassName(cls);
        in.appliances = 0;
        for (std::size_t i = 0; i < ptrs.size(); ++i) {
            if (ptrs[i]->backendClass() != cls)
                continue;
            const auto &spec = ptrs[i]->costSpec();
            ++in.appliances;
            in.devicesPerAppliance = spec.devices;
            in.devicePriceUsd = spec.devicePriceUsd;
            in.activePowerW = spec.activePowerW;
            in.idlePowerW = spec.idlePowerW;
            in.activeSeconds += scaler.activeSeconds(i);
            in.idleSeconds += scaler.idleSeconds(i);
            in.tokensGenerated += ptrs[i]->tokensGenerated();
        }
        if (in.appliances > 0)
            classes.push_back(in);
    }
    r.tco = core::computeFleetTco(classes, makespan);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    auto cfg = Config::fromArgs({argv + 1, argv + argc});
    const std::uint64_t seed = cfg.getInt("seed", 42);
    const unsigned threads =
        static_cast<unsigned>(cfg.getInt("threads", 0));
    const std::size_t n_requests = cfg.getInt("n", 240);
    const std::size_t n_diurnal = cfg.getInt("n_diurnal", 400);
    const std::size_t anchor_n = cfg.getInt("anchor_n", 24);
    const int fleet_n = cfg.getInt("fleet", 4);
    const std::string out = cfg.getString("out", "");
    const bool check = cfg.getBool("check", false);
    const double avail_floor = cfg.getDouble("avail_floor", 0.9);
    const double anchor_tol = cfg.getDouble("anchor_tol", 0.08);
    const double slo_tol = cfg.getDouble("slo_tol", 0.02);
    const auto model =
        llm::ModelConfig::byName(cfg.getString("model", "opt-66b"));

    bench::header("Fleet campaign: " + model.name + ", seed " +
                  std::to_string(seed));

    Shared sh;
    sh.model = model;
    sh.pcfg.channelGrouping = 8;
    sh.gspec = gpu::GpuSpec::a100_40g();
    sh.seed = seed;

    // Minimal tensor shard whose per-instance KV capacity is
    // positive; an 8-device appliance then runs 8/mp instances.
    const std::uint64_t full_ctx = kInputTokens + kOutputTokens;
    sh.pnmMp = sh.gpuMp = 0;
    for (int mp : {1, 2, 4, 8}) {
        if (sh.pnmMp == 0 &&
            serve::pnmKvCapacityBytes(model, sh.pcfg, mp) > 0)
            sh.pnmMp = mp;
        // The GPU baseline holds weights in HBM (no host-offload
        // strawman): minimal tensor-parallel degree that fits the
        // model with KV room to spare.
        if (sh.gpuMp == 0 &&
            model.weightBytes() < sh.gspec.memBytes *
                static_cast<std::uint64_t>(mp) &&
            serve::gpuKvCapacityBytes(model, sh.gspec, mp) >
                model.weightBytes() / 8)
            sh.gpuMp = mp;
    }
    if (sh.pnmMp == 0 || sh.gpuMp == 0) {
        std::fprintf(stderr,
                     "fleet_campaign: %s does not fit an 8-device "
                     "appliance on either platform\n",
                     model.name.c_str());
        return 1;
    }
    sh.pnmCost =
        serve::calibratePnmCostModel(model, sh.pcfg, full_ctx,
                                     sh.pnmMp);
    if (sh.pnmMp > 1)
        serve::addModelParallelComm(sh.pnmCost, model, sh.pcfg.link,
                                    core::D2dModel{}, sh.pnmMp);
    sh.gpuCost = serve::calibrateGpuCostModel(
        model, sh.gspec, gpu::GpuCalibration{}, full_ctx, sh.gpuMp);

    // Per-appliance saturation estimates (throwaway probe backends).
    const double cap_pnm =
        fleet::PnmBackend(model, sh.pcfg, sh.pnmCost,
                          makeBackendConfig(sh, "probe", false, false,
                                            1.0))
            .capacityTokensPerSec();
    const double cap_gpu =
        fleet::GpuBackend(model, sh.gspec, sh.gpuCost,
                          makeBackendConfig(sh, "probe", true, false,
                                            1.0))
            .capacityTokensPerSec();
    const double cap_pnm_small =
        fleet::PnmBackend(model, sh.pcfg, sh.pnmCost,
                          makeBackendConfig(sh, "probe", false, true,
                                            1.0))
            .capacityTokensPerSec();
    // TTFT SLO: the time one appliance of the class needs to serve
    // 40 requests - generous, but meaningless once queues diverge.
    const double slo_gpu =
        40.0 * static_cast<double>(kOutputTokens) / cap_gpu;
    const double slo_pnm =
        40.0 * static_cast<double>(kOutputTokens) / cap_pnm;

    std::printf("\nAppliance capacity: pnm %.1f tok/s (mp %d), gpu "
                "%.1f tok/s (mp %d); SLO %.3f / %.3f s\n",
                cap_pnm, sh.pnmMp, cap_gpu, sh.gpuMp, slo_pnm,
                slo_gpu);

    const int half = fleet_n / 2;
    const double hetero_cap = static_cast<double>(half) * cap_pnm +
        static_cast<double>(fleet_n - half) * cap_gpu;

    std::vector<CellSpec> specs;
    {
        CellSpec c;
        c.name = "gpu_homog";
        c.gpu = fleet_n;
        c.n = n_requests;
        // Sized to the *hetero* fleet (the smaller one), so both TCO
        // cells run the identical stream comfortably inside capacity
        // (headroom covers prefill work and the burst peaks, keeping
        // both fleets arrival-paced so the owned-hardware cost - not
        // a drain-tail artifact - decides the $/Mtok comparison).
        c.baseQps = 0.35 * hetero_cap /
            static_cast<double>(kOutputTokens);
        c.amplitude = 0.4;
        c.bursty = true;
        c.slo = std::max(slo_gpu, slo_pnm);
        specs.push_back(c);

        c.name = "hetero";
        c.pnm = half;
        c.gpu = fleet_n - half;
        specs.push_back(c);

        c.name = "outage";
        c.outage = true;
        // Hot enough that every group of pnm0 is mid-iteration when
        // the scripted outage lands, so the whole node goes degraded
        // at once and the router's drain path is actually exercised.
        c.baseQps = 0.75 * hetero_cap /
            static_cast<double>(kOutputTokens);
        specs.push_back(c);
    }
    {
        CellSpec c;
        c.name = "diurnal_static";
        c.pnm = fleet_n;
        c.n = n_diurnal;
        c.baseQps =
            1.3 * cap_pnm / static_cast<double>(kOutputTokens);
        c.amplitude = 0.85;
        c.slo = slo_pnm;
        specs.push_back(c);

        c.name = "diurnal_auto";
        c.autoscale = true;
        c.startActive = 1;
        specs.push_back(c);
    }
    {
        CellSpec c;
        c.name = "anchor_analytic";
        c.pnm = 1;
        c.smallPnm = true;
        c.n = anchor_n;
        c.outTokens = 16; // bounds the distinct engine stage shapes
        c.baseQps = 0.5 * cap_pnm_small / 16.0;
        c.slo = 40.0 * 16.0 / cap_pnm_small;
        specs.push_back(c);

        c.name = "anchor_cycle";
        c.cycle = true;
        specs.push_back(c);
    }

    // Each cell owns its whole fleet, so results are
    // bit-deterministic regardless of worker count.
    std::vector<CellResult> cells(specs.size());
    ThreadPool::parallelFor(specs.size(), threads,
                            [&](std::size_t i) {
                                cells[i] = runCell(specs[i], sh);
                            });

    auto byName = [&](const char *name) -> const CellResult & {
        for (const auto &c : cells)
            if (c.spec.name == name)
                return c;
        std::fprintf(stderr, "missing cell %s\n", name);
        std::exit(2);
    };

    std::printf("\n  %-15s %4s %4s %4s %7s %6s %8s %9s %7s %3s %3s\n",
                "cell", "done", "fail", "rtry", "sloAtt", "avail",
                "tok/s", "$/Mtok", "kWh", "up", "dn");
    for (const auto &c : cells)
        std::printf("  %-15s %4llu %4llu %4llu %7.4f %6.4f %8.1f "
                    "%9.2f %7.4f %3llu %3llu\n",
                    c.spec.name.c_str(),
                    static_cast<unsigned long long>(c.completed),
                    static_cast<unsigned long long>(c.failed),
                    static_cast<unsigned long long>(c.retries),
                    c.sloAttainment, c.availability,
                    c.throughputTokensPerSec, c.tco.usdPerMtok,
                    c.tco.energyKwh,
                    static_cast<unsigned long long>(c.scaleUps),
                    static_cast<unsigned long long>(c.scaleDowns));

    const auto &gpu_homog = byName("gpu_homog");
    const auto &hetero = byName("hetero");
    const auto &outage = byName("outage");
    const auto &di_static = byName("diurnal_static");
    const auto &di_auto = byName("diurnal_auto");
    const auto &anchor_a = byName("anchor_analytic");
    const auto &anchor_c = byName("anchor_cycle");

    const double cost_ratio =
        hetero.tco.usdPerMtok / gpu_homog.tco.usdPerMtok;
    const double energy_ratio =
        di_auto.tco.energyKwh / di_static.tco.energyKwh;
    const double anchor_makespan_err =
        std::abs(anchor_a.makespan - anchor_c.makespan) /
        anchor_c.makespan;
    const double anchor_tput_err =
        std::abs(anchor_a.throughputTokensPerSec -
                 anchor_c.throughputTokensPerSec) /
        anchor_c.throughputTokensPerSec;

    std::printf("\n  hetero vs gpu fleet: %.2f$/Mtok vs %.2f$/Mtok "
                "(%.0f%%), SLO %.4f vs %.4f\n",
                hetero.tco.usdPerMtok, gpu_homog.tco.usdPerMtok,
                100.0 * cost_ratio, hetero.sloAttainment,
                gpu_homog.sloAttainment);
    std::printf("  outage availability %.4f (served %.4f, %llu "
                "degraded skips)\n",
                outage.availability, outage.servedFraction,
                static_cast<unsigned long long>(
                    outage.degradedSkips));
    std::printf("  autoscale energy %.4f kWh vs static %.4f kWh "
                "(%.0f%%), %llu up / %llu down\n",
                di_auto.tco.energyKwh, di_static.tco.energyKwh,
                100.0 * energy_ratio,
                static_cast<unsigned long long>(di_auto.scaleUps),
                static_cast<unsigned long long>(di_auto.scaleDowns));
    std::printf("  analytic-vs-cycle anchor: makespan err %.4f, "
                "throughput err %.4f (%llu engine stages)\n",
                anchor_makespan_err, anchor_tput_err,
                static_cast<unsigned long long>(
                    anchor_c.cycleStageRuns));

    // --- deterministic JSON artifact ---
    std::string json;
    appendf(json, "{\n  \"benchmark\": \"fleet_campaign\",\n");
    appendf(json, "  \"seed\": %llu,\n",
            static_cast<unsigned long long>(seed));
    appendf(json, "  \"model\": \"%s\",\n", model.name.c_str());
    appendf(json, "  \"fleet\": %d,\n", fleet_n);
    appendf(json, "  \"pnm_mp\": %d,\n  \"gpu_mp\": %d,\n", sh.pnmMp,
            sh.gpuMp);
    appendf(json, "  \"capacity\": {\n");
    appendf(json, "    \"pnm_appliance_tokens_per_sec\": %.9g,\n",
            cap_pnm);
    appendf(json, "    \"gpu_appliance_tokens_per_sec\": %.9g,\n",
            cap_gpu);
    appendf(json, "    \"slo_pnm_seconds\": %.9g,\n", slo_pnm);
    appendf(json, "    \"slo_gpu_seconds\": %.9g\n  },\n", slo_gpu);
    appendf(json, "  \"cells\": [\n");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto &c = cells[i];
        appendf(json,
                "    {\"name\": \"%s\", \"requests\": %zu, "
                "\"base_qps\": %.9g, \"amplitude\": %.9g,\n",
                c.spec.name.c_str(), c.spec.n, c.spec.baseQps,
                c.spec.amplitude);
        appendf(json,
                "     \"makespan_seconds\": %.9g, \"submitted\": "
                "%llu, \"completed\": %llu, \"failed\": %llu,\n",
                c.makespan,
                static_cast<unsigned long long>(c.submitted),
                static_cast<unsigned long long>(c.completed),
                static_cast<unsigned long long>(c.failed));
        appendf(json,
                "     \"retries\": %llu, \"slo_attainment\": %.9g, "
                "\"served_fraction\": %.9g, \"availability\": "
                "%.9g,\n",
                static_cast<unsigned long long>(c.retries),
                c.sloAttainment, c.servedFraction, c.availability);
        appendf(json,
                "     \"throughput_tokens_per_sec\": %.9g, "
                "\"ttft_p99_seconds\": %.9g,\n",
                c.throughputTokensPerSec, c.ttftP99);
        appendf(json,
                "     \"affinity_hits\": %llu, \"degraded_skips\": "
                "%llu, \"scale_ups\": %llu, \"scale_downs\": %llu,\n",
                static_cast<unsigned long long>(c.affinityHits),
                static_cast<unsigned long long>(c.degradedSkips),
                static_cast<unsigned long long>(c.scaleUps),
                static_cast<unsigned long long>(c.scaleDowns));
        appendf(json,
                "     \"cycle_stage_runs\": %llu, "
                "\"cycle_memo_hits\": %llu,\n",
                static_cast<unsigned long long>(c.cycleStageRuns),
                static_cast<unsigned long long>(c.cycleMemoHits));
        appendf(json,
                "     \"tco\": {\"total_usd\": %.9g, \"tokens_m\": "
                "%.9g, \"usd_per_mtok\": %.9g, \"energy_kwh\": "
                "%.9g, \"co2_kg\": %.9g,\n",
                c.tco.totalUsd, c.tco.tokensM, c.tco.usdPerMtok,
                c.tco.energyKwh, c.tco.co2Kg);
        appendf(json, "      \"classes\": [");
        for (std::size_t k = 0; k < c.tco.classes.size(); ++k) {
            const auto &cl = c.tco.classes[k];
            appendf(json,
                    "%s{\"name\": \"%s\", \"appliances\": %d, "
                    "\"amortized_hardware_usd\": %.9g, "
                    "\"energy_usd\": %.9g, \"usd_per_mtok\": %.9g, "
                    "\"utilization\": %.9g}",
                    k > 0 ? ", " : "", cl.name.c_str(),
                    cl.appliances, cl.amortizedHardwareUsd,
                    cl.energyUsd, cl.usdPerMtok, cl.utilization);
        }
        appendf(json, "]},\n");
        appendf(json, "     \"backends\": [\n");
        for (std::size_t k = 0; k < c.backends.size(); ++k) {
            const auto &b = c.backends[k];
            appendf(json,
                    "      {\"name\": \"%s\", \"class\": \"%s\", "
                    "\"routed\": %llu, \"completed\": %llu, "
                    "\"tokens\": %llu, \"availability\": %.9g, "
                    "\"active_seconds\": %.9g, \"idle_seconds\": "
                    "%.9g}%s\n",
                    b.name.c_str(), b.cls,
                    static_cast<unsigned long long>(b.routed),
                    static_cast<unsigned long long>(b.completed),
                    static_cast<unsigned long long>(b.tokens),
                    b.availability, b.activeSeconds, b.idleSeconds,
                    k + 1 < c.backends.size() ? "," : "");
        }
        appendf(json, "     ]}%s\n",
                i + 1 < cells.size() ? "," : "");
    }
    appendf(json, "  ],\n");
    appendf(json, "  \"summary\": {\n");
    appendf(json, "    \"gpu_homog_usd_per_mtok\": %.9g,\n",
            gpu_homog.tco.usdPerMtok);
    appendf(json, "    \"hetero_usd_per_mtok\": %.9g,\n",
            hetero.tco.usdPerMtok);
    appendf(json, "    \"hetero_cost_ratio\": %.9g,\n", cost_ratio);
    appendf(json, "    \"outage_availability\": %.9g,\n",
            outage.availability);
    appendf(json, "    \"autoscale_energy_ratio\": %.9g,\n",
            energy_ratio);
    appendf(json, "    \"anchor_rel_makespan_err\": %.9g,\n",
            anchor_makespan_err);
    appendf(json, "    \"anchor_rel_throughput_err\": %.9g\n",
            anchor_tput_err);
    appendf(json, "  }\n}\n");

    if (!out.empty()) {
        if (!writeFile(out, json)) {
            std::fprintf(stderr, "fleet_campaign: cannot write %s\n",
                         out.c_str());
            return 1;
        }
        std::fprintf(stderr, "fleet_campaign: wrote %s\n",
                     out.c_str());
    }

    // --- check mode: the CI gate ---
    if (check) {
        int failures = 0;
        auto expect = [&](bool ok, const char *what) {
            if (!ok) {
                ++failures;
                std::fprintf(stderr, "CHECK FAILED: %s\n", what);
            }
        };

        for (const auto &c : cells) {
            expect(c.submitted == c.spec.n,
                   "every arrival reached a backend (submitted == n)");
            expect(c.completed + c.failed == c.submitted,
                   "accounting identity: submitted = completed + "
                   "failed");
        }

        expect(hetero.tco.usdPerMtok < gpu_homog.tco.usdPerMtok,
               "the heterogeneous fleet beats the all-GPU fleet on "
               "cost per Mtok");
        expect(hetero.sloAttainment >= gpu_homog.sloAttainment,
               "... at equal-or-better SLO attainment");
        expect(gpu_homog.sloAttainment >= 0.95,
               "the baseline fleet is provisioned sanely (SLO "
               "attainment >= 0.95)");
        expect(hetero.completed == gpu_homog.completed,
               "both TCO cells served the identical stream");

        expect(outage.availability >= avail_floor,
               "fleet availability holds the floor through the node "
               "outage");
        expect(outage.servedFraction >= 0.99,
               "the drained node's work still completes (served "
               "fraction >= 0.99)");
        expect(outage.degradedSkips >= 1,
               "the router actually routed around the degraded node");

        expect(di_static.scaleUps == 0 && di_static.scaleDowns == 0,
               "the static fleet never scales");
        expect(di_auto.scaleUps >= 1,
               "the autoscaler scaled up at the diurnal peak");
        expect(di_auto.scaleDowns >= 1,
               "the autoscaler scaled down at the diurnal trough");
        expect(di_auto.tco.energyKwh < di_static.tco.energyKwh,
               "autoscaling cuts fleet energy vs peak provisioning");
        expect(di_auto.sloAttainment >=
                   di_static.sloAttainment - slo_tol,
               "autoscaling holds SLO attainment within slo_tol");

        expect(anchor_c.cycleStageRuns > 0,
               "the anchor cell actually ran the cycle engine");
        expect(anchor_c.cycleMemoHits > anchor_c.cycleStageRuns,
               "the cycle pricer memoized repeated stage shapes");
        expect(anchor_makespan_err <= anchor_tol,
               "analytic makespan matches the cycle engine within "
               "anchor_tol");
        expect(anchor_tput_err <= anchor_tol,
               "analytic throughput matches the cycle engine within "
               "anchor_tol");

        if (failures != 0) {
            std::fprintf(stderr, "fleet_campaign: %d checks failed\n",
                         failures);
            return 1;
        }
        std::printf("\nAll fleet checks passed.\n");
    }
    return 0;
}
