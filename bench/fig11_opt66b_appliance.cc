/**
 * @file
 * Fig. 11 reproduction: OPT-66B on an 8-device CXL-PNM appliance vs an
 * 8-GPU DGX, across the three parallelism plans of §VIII-A:
 *
 *   DP8      (8 model instances, data parallel):
 *            paper: +53% throughput, 4.4x energy efficiency.
 *   MP2xDP4  (2-device model shards, 4 instances):
 *            paper: -44% latency vs DP8, +36% throughput, 3.3x energy.
 *   MP8      (one instance across all 8 devices):
 *            paper: -23% latency vs GPU, +31% throughput, 2.9x energy.
 *
 * The GPU appliance runs tensor parallelism over NVLink
 * (FasterTransformer-style), processing one sequence at a time, exactly
 * as the Fig. 11 caption describes.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/inference_engine.hh"
#include "gpu/inference.hh"
#include "llm/model_config.hh"

using namespace cxlpnm;

int
main()
{
    const auto model = llm::ModelConfig::opt66b();
    llm::InferenceRequest req;
    req.inputTokens = 64;
    req.outputTokens = 1024;

    bench::header("Fig. 11: OPT-66B, 8-device appliances");

    // --- GPU appliance: tensor parallelism across 8 A100s ---
    const auto g = gpu::runGpuInference(
        model, req, gpu::GpuSpec::a100_40g(), gpu::GpuCalibration{}, 8);
    const double g_thr = g.throughputTokensPerSec();
    const double g_token = g.totalSeconds / req.outputTokens;
    const double g_eff = g.tokensPerJoule();
    std::printf("GPU MP8 : %7.2f tok/s, %6.2f ms/token, %6.0f W, "
                "%7.4f tok/kJ\n",
                g_thr, g_token * 1e3, g.avgPowerW * 8,
                g_eff * 1e3);

    // --- CXL-PNM appliance under the three plans ---
    core::PnmPlatformConfig pcfg;
    pcfg.channelGrouping = 16;

    struct Row
    {
        const char *name;
        core::ParallelismPlan plan;
    } rows[] = {
        {"PNM DP8", {1, 8}},
        {"PNM MP2xDP4", {2, 4}},
        {"PNM MP8", {8, 1}},
    };

    core::PnmApplianceResult res[3];
    for (int i = 0; i < 3; ++i) {
        res[i] = runPnmAppliance(model, req, pcfg, rows[i].plan);
        std::printf("%-11s: %7.2f tok/s, %6.2f ms/token, %6.0f W, "
                    "%7.4f tok/kJ, comm %4.1f%%\n",
                    rows[i].name, res[i].throughputTokensPerSec,
                    res[i].tokenLatencySeconds * 1e3,
                    res[i].avgAppliancePowerW,
                    res[i].tokensPerJoule * 1e3,
                    res[i].commFraction * 100.0);
    }

    const auto &dp8 = res[0];
    const auto &mp2 = res[1];
    const auto &mp8 = res[2];

    bench::header("Fig. 11 anchors (paper vs measured)");
    bench::anchor("DP8 throughput gain vs GPU (paper 1.53x)", 1.53,
                  dp8.throughputTokensPerSec / g_thr, 0.15);
    bench::anchor("DP8 energy-efficiency vs GPU (paper 4.4x)", 4.4,
                  dp8.tokensPerJoule / g_eff, 0.25);
    bench::anchor("MP2xDP4 latency vs DP8 (paper 0.56x)", 0.56,
                  mp2.tokenLatencySeconds / dp8.tokenLatencySeconds,
                  0.25);
    bench::anchor("MP2xDP4 throughput gain vs GPU (paper 1.36x)", 1.36,
                  mp2.throughputTokensPerSec / g_thr, 0.20);
    bench::anchor("MP2xDP4 energy-efficiency vs GPU (paper 3.3x)", 3.3,
                  mp2.tokensPerJoule / g_eff, 0.25);
    bench::anchor("MP8 latency vs GPU (paper 0.77x)", 0.77,
                  mp8.tokenLatencySeconds / g_token, 0.20);
    bench::anchor("MP8 throughput gain vs GPU (paper 1.31x)", 1.31,
                  mp8.throughputTokensPerSec / g_thr, 0.20);
    bench::anchor("MP8 energy-efficiency vs GPU (paper 2.9x)", 2.9,
                  mp8.tokensPerJoule / g_eff, 0.30);

    // Shape checks the figure makes visually.
    std::printf("\nordering: throughput DP8 >= MP2xDP4 >= MP8: %s\n",
                (dp8.throughputTokensPerSec >=
                     mp2.throughputTokensPerSec &&
                 mp2.throughputTokensPerSec >=
                     mp8.throughputTokensPerSec)
                    ? "yes"
                    : "NO");
    std::printf("ordering: latency MP8 <= MP2xDP4 <= DP8: %s\n",
                (mp8.tokenLatencySeconds <= mp2.tokenLatencySeconds &&
                 mp2.tokenLatencySeconds <= dp8.tokenLatencySeconds)
                    ? "yes"
                    : "NO");
    return 0;
}
