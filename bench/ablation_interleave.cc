/**
 * @file
 * Ablation for §V-A disadvantage D4: host memory-address interleaving
 * vs the CXL module's local interleaving.
 *
 * When the host interleaves a contiguous buffer across N channels/
 * DIMMs, a PIM/PNM accelerator attached to one of them can stream only
 * 1/N of the buffer locally; the rest must come through the host. A
 * CXL module is one NUMA node, so its controller sees the whole buffer
 * and stripes it across its *own* 64 channels for full bandwidth.
 */

#include <cstdio>

#include "bench_common.hh"
#include "cxl/interleave.hh"
#include "dram/module.hh"
#include "sim/event_queue.hh"

using namespace cxlpnm;

namespace
{

/** Time to bring a weight buffer into one accelerator. */
double
streamSeconds(double local_fraction, double local_bw, double remote_bw,
              double bytes)
{
    // The local fraction streams at DIMM/module bandwidth; the rest
    // crosses the host memory system.
    return bytes * local_fraction / local_bw +
        bytes * (1.0 - local_fraction) / remote_bw;
}

} // namespace

int
main()
{
    bench::header("Ablation: D4 - host interleaving vs CXL module");

    const double buffer = 1.0 * GB; // one layer's weights, say

    // DIMM-PNM: the host interleaves across 8 channels at 256 B; the
    // accelerator owns one DIMM (~25.6 GB/s local) and pulls the rest
    // over the shared channel (~10 GB/s effective).
    cxl::AddressInterleaver host_il(8, 256);
    const double frac = host_il.contiguousSpanVisible(0, 1u << 20);
    const double dimm_sec =
        streamSeconds(frac, 25.6e9, 10e9, buffer);

    // CXL-PNM: module-local interleaving, full sustained bandwidth.
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    dram::MultiChannelMemory mem(eq, &root, "mem",
                                 dram::DramTechSpec::lpddr5x(), 256, 8);
    Tick done = 0;
    dram::MemoryRequest r;
    r.addr = 0;
    r.bytes = static_cast<std::uint64_t>(buffer);
    r.onComplete = [&] { done = eq.now(); };
    mem.access(std::move(r));
    eq.run();
    const double cxl_sec = ticksToSeconds(done);

    std::printf("contiguous buffer visible to a DIMM-PNM accelerator: "
                "%.1f%%\n", frac * 100.0);
    std::printf("1 GB weight stream: DIMM-PNM %.1f ms vs CXL-PNM "
                "%.2f ms (%.0fx)\n",
                dimm_sec * 1e3, cxl_sec * 1e3, dimm_sec / cxl_sec);

    bench::anchor("host-interleave local fraction (1/8)", 0.125, frac,
                  0.01);
    bench::anchor("CXL-PNM streaming advantage >= 20x", 20.0,
                  std::min(20.0, dimm_sec / cxl_sec), 0.01);

    // And the host side keeps its interleaving: addresses map
    // bijectively either way (no special data placement needed).
    cxl::AddressInterleaver module_il(64, 256);
    bool bijective = true;
    for (Addr a = 0; a < (1u << 16); ++a)
        bijective &= module_il.unmap(module_il.map(a)) == a;
    std::printf("module-local interleave bijective over 64 Ki "
                "addresses: %s\n", bijective ? "yes" : "NO");
    return 0;
}
