/**
 * @file
 * Table III reproduction: hardware and operating cost of the 8-GPU DGX
 * vs the 8-device CXL-PNM appliance sustaining the OPT-66B service
 * (GPU: tensor parallel; CXL-PNM: data parallel, as in Fig. 11).
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/inference_engine.hh"
#include "core/tco.hh"
#include "gpu/inference.hh"
#include "llm/model_config.hh"

using namespace cxlpnm;

int
main()
{
    const auto model = llm::ModelConfig::opt66b();
    llm::InferenceRequest req;
    req.inputTokens = 64;
    req.outputTokens = 256; // steady-state rate; stable in token count

    // GPU appliance (8x A100, tensor parallel).
    const auto gspec = gpu::GpuSpec::a100_40g();
    const auto g =
        gpu::runGpuInference(model, req, gspec, gpu::GpuCalibration{}, 8);
    core::TcoInputs gin;
    gin.name = "GPU appliance";
    gin.devices = 8;
    gin.devicePriceUsd = gspec.priceUsd;
    gin.appliancePowerW = g.avgPowerW * 8;
    gin.throughputTokensPerSec = g.throughputTokensPerSec();

    // CXL-PNM appliance (8 devices, data parallel).
    core::PnmPlatformConfig pcfg;
    pcfg.channelGrouping = 16;
    const auto p =
        runPnmAppliance(model, req, pcfg, core::ParallelismPlan{1, 8});
    core::TcoInputs pin;
    pin.name = "CXL-PNM appliance";
    pin.devices = 8;
    pin.devicePriceUsd = pcfg.priceUsd;
    pin.appliancePowerW = p.avgAppliancePowerW;
    pin.throughputTokensPerSec = p.throughputTokensPerSec;

    const auto gr = core::computeTco(gin);
    const auto pr = core::computeTco(pin);

    bench::header("Table III: hardware and operating costs");
    std::printf("%-28s %16s %16s\n", "Metric", "GPU appliance",
                "CXL-PNM appliance");
    std::printf("%-28s %13.0f $ %14.0f $\n", "Hardware cost",
                gr.hardwareCostUsd, pr.hardwareCostUsd);
    std::printf("%-28s %10.2f M/day %11.2f M/day\n", "Throughput",
                gr.tokensPerDayM, pr.tokensPerDayM);
    std::printf("%-28s %10.1f kWh/d %11.1f kWh/d\n",
                "Energy consumption", gr.kwhPerDay, pr.kwhPerDay);
    std::printf("%-28s %11.2f $/day %12.2f $/day\n", "Operation cost",
                gr.usdPerDay, pr.usdPerDay);
    std::printf("%-28s %11.2f kg/d %12.2f kg/d\n", "CO2 emission",
                gr.co2KgPerDay, pr.co2KgPerDay);
    std::printf("%-28s %9.2f M tok/$ %10.2f M tok/$\n",
                "Cost efficiency", gr.tokensPerUsdM, pr.tokensPerUsdM);
    std::printf("%-28s %9.2f M tok/kg %9.2f M tok/kg\n",
                "CO2 efficiency", gr.tokensPerKgM, pr.tokensPerKgM);

    bench::header("Table III anchors");
    bench::anchor("hardware cost ratio (paper 1.42x)", 10000.0 / 7000.0,
                  gr.hardwareCostUsd / pr.hardwareCostUsd, 0.01);
    bench::anchor("GPU energy kWh/day (paper 43.2)", 43.2, gr.kwhPerDay,
                  0.15);
    bench::anchor("PNM energy kWh/day (paper 15.4)", 15.4, pr.kwhPerDay,
                  0.15);
    bench::anchor("energy cost ratio (paper 2.8x)", 2.8,
                  gr.usdPerDay / pr.usdPerDay, 0.20);
    bench::anchor("throughput ratio (paper 1.53x)", 1.53,
                  pr.tokensPerDayM / gr.tokensPerDayM, 0.15);
    bench::anchor("cost-efficiency ratio (paper 4.3x)", 4.27,
                  pr.tokensPerUsdM / gr.tokensPerUsdM, 0.25);
    bench::anchor("CO2-efficiency ratio (paper 4.3x)", 4.28,
                  pr.tokensPerKgM / gr.tokensPerKgM, 0.25);
    return 0;
}
