/**
 * @file
 * Fig. 10 reproduction: single CXL-PNM device vs single A100 GPU.
 *
 * Series: throughput (tokens/s) and energy efficiency (tokens/J) for
 * OPT-13B at 64 input tokens as the output-token count sweeps 1..1024,
 * plus the §VIII-A side results: OPT-1.3B/2.7B/6.7B latency gaps and
 * the OPT-30B capacity cliff (GPU offloads weights over PCIe).
 *
 * Paper anchors:
 *   OPT-13B @1024: CXL-PNM throughput -10.8%, energy efficiency 2.9x.
 *   OPT-1.3B/2.7B/6.7B @1024: latency -59% / -38% / -2%.
 *   OPT-30B single device: 138.8x lower latency, 127.9x energy eff.
 *
 * `trace=<path>` additionally records one small traced device run
 * (64-in / trace_out-out, default 8, so the file stays viewable) as
 * Chrome-trace JSON: DRAM channel busy windows, CXL link transfers
 * and arbiter grants, accelerator DMA/MPU/VPU pipeline stages, and
 * driver execute spans. `trace_events=1` adds one instant per
 * event-queue dispatch. A per-component busy summary prints after.
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/inference_engine.hh"
#include "gpu/inference.hh"
#include "llm/model_config.hh"
#include "sim/config.hh"
#include "sim/trace.hh"

using namespace cxlpnm;

namespace
{

struct DevicePair
{
    gpu::GpuInferenceResult gpu;
    core::PnmRunResult pnm;
};

DevicePair
runBoth(const llm::ModelConfig &model, std::uint64_t out_tokens)
{
    llm::InferenceRequest req;
    req.inputTokens = 64;
    req.outputTokens = out_tokens;

    core::PnmPlatformConfig pcfg;
    pcfg.channelGrouping = 8; // coarse channel model for long runs

    DevicePair p;
    p.gpu = gpu::runGpuInference(model, req, gpu::GpuSpec::a100_40g(),
                                 gpu::GpuCalibration{}, 1);
    p.pnm = runPnmSingleDevice(model, req, pcfg);
    return p;
}

double
totalUpTo(const std::vector<double> &gen, double sum, std::size_t n)
{
    double t = sum;
    for (std::size_t i = 0; i < n && i < gen.size(); ++i)
        t += gen[i];
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    auto cfg = Config::fromArgs({argv + 1, argv + argc});

    bench::header("Fig. 10: OPT-13B, 64 input tokens, single device");

    const auto model = llm::ModelConfig::opt13b();
    DevicePair run = runBoth(model, 1024);

    std::printf("%8s %14s %14s %14s %14s\n", "out-tok", "GPU tok/s",
                "PNM tok/s", "GPU tok/kJ", "PNM tok/kJ");
    for (std::size_t n : {1, 4, 16, 64, 128, 256, 512, 768, 1024}) {
        const double tg =
            totalUpTo(run.gpu.genSeconds, run.gpu.sumSeconds, n);
        const double tp =
            totalUpTo(run.pnm.genSeconds, run.pnm.sumSeconds, n);
        const double thr_g = n / tg;
        const double thr_p = n / tp;
        // Energy scales with time at the run's average power.
        const double e_g = tg * run.gpu.avgPowerW;
        const double e_p = tp * run.pnm.avgPowerW;
        std::printf("%8zu %14.2f %14.2f %14.2f %14.2f\n", n, thr_g,
                    thr_p, n / e_g * 1e3, n / e_p * 1e3);
    }

    const double thr_g = run.gpu.throughputTokensPerSec();
    const double thr_p = run.pnm.throughputTokensPerSec();
    const double eff_g = run.gpu.tokensPerJoule();
    const double eff_p = run.pnm.tokensPerJoule();

    std::printf("\nGPU avg power %.1f W, PNM avg power %.1f W\n",
                run.gpu.avgPowerW, run.pnm.avgPowerW);
    bench::anchor("PNM/GPU throughput ratio (paper 0.892)", 0.892,
                  thr_p / thr_g, 0.05);
    bench::anchor("PNM/GPU energy-efficiency ratio (paper 2.9x)", 2.9,
                  eff_p / eff_g, 0.20);
    bench::anchor("GPU avg power W (paper 253)", 253.0,
                  run.gpu.avgPowerW, 0.10);
    bench::anchor("PNM avg power W (paper 77.1)", 77.1,
                  run.pnm.avgPowerW, 0.10);

    bench::header("Fig. 10 side results: small models @1024 out");
    const struct
    {
        llm::ModelConfig cfg;
        double paper_latency_gap; // (gpu-pnm)/gpu
    } small[] = {
        {llm::ModelConfig::opt1_3b(), 0.59},
        {llm::ModelConfig::opt2_7b(), 0.38},
        {llm::ModelConfig::opt6_7b(), 0.02},
    };
    for (const auto &s : small) {
        DevicePair r = runBoth(s.cfg, 1024);
        const double gap = 1.0 - r.pnm.totalSeconds / r.gpu.totalSeconds;
        std::printf("%s: GPU %.2f s, PNM %.2f s\n", s.cfg.name.c_str(),
                    r.gpu.totalSeconds, r.pnm.totalSeconds);
        bench::anchorAbs(
            ("  latency reduction " + s.cfg.name).c_str(),
            s.paper_latency_gap, gap, 0.10);
    }

    bench::header("OPT-30B capacity cliff (single 40 GB GPU offloads)");
    {
        DevicePair r = runBoth(llm::ModelConfig::opt30b(), 64);
        const double tok_g =
            r.gpu.totalSeconds / r.gpu.genSeconds.size();
        const double tok_p =
            r.pnm.totalSeconds / r.pnm.genSeconds.size();
        std::printf("GPU %.3f s/token (offload), PNM %.4f s/token\n",
                    tok_g, tok_p);
        bench::anchor("latency ratio GPU/PNM (paper 138.8x)", 138.8,
                      tok_g / tok_p, 0.25);
        const double eff_ratio =
            (1.0 / (tok_p * r.pnm.avgPowerW)) /
            (1.0 / (tok_g * r.gpu.avgPowerW));
        bench::anchor("energy-efficiency ratio (paper 127.9x)", 127.9,
                      eff_ratio, 0.40);
    }

    // Optional traced run, separate from the figures above so tracing
    // can never perturb them: a short OPT-13B request with the same
    // platform config, every device layer contributing tracks.
    const std::string trace_path = cfg.getString("trace", "");
    if (!trace_path.empty()) {
        bench::header("Traced device run (trace=)");
        trace::Tracer tracer;
        tracer.setEventDispatch(cfg.getBool("trace_events", false));

        llm::InferenceRequest req;
        req.inputTokens = 64;
        req.outputTokens =
            static_cast<std::uint64_t>(cfg.getInt("trace_out", 8));
        core::PnmPlatformConfig pcfg;
        pcfg.channelGrouping = 8;
        runPnmSingleDevice(model, req, pcfg, 1, &tracer);

        if (!tracer.writeFile(trace_path)) {
            std::fprintf(stderr, "cannot write trace to '%s'\n",
                         trace_path.c_str());
            return 1;
        }
        std::printf("trace: %zu events on %zu tracks -> %s\n",
                    tracer.eventCount(), tracer.trackCount(),
                    trace_path.c_str());
        tracer.summary(std::cout,
                       static_cast<std::size_t>(
                           cfg.getInt("trace_topk", 5)));
    }
    return 0;
}
