/**
 * @file
 * Table II reproduction: CXL-PNM platform architecture and operating
 * parameters, printed from the live configuration objects (not
 * hard-coded strings), with derived peak rates and the power budget.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/platform.hh"
#include "sim/event_queue.hh"

using namespace cxlpnm;

int
main()
{
    bench::header("Table II: CXL-PNM platform parameters");

    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    core::PnmPlatformConfig cfg;
    core::PnmDevice dev(eq, &root, "pnm", cfg);
    const accel::AccelConfig &a = dev.accel().config();

    std::printf("  %-38s %d (peak %.2f TFLOPS)\n", "# of PEs",
                a.peCount(), a.peArrayPeakFlops() / 1e12);
    std::printf("  %-38s %d/%d (peak %.2f TFLOPS)\n",
                "# of adder-tree multipliers/adders",
                a.adderTreeMultipliers(), a.adderTreeAdders(),
                a.adderTreePeakFlops() / 1e12);
    std::printf("  %-38s %llu MB\n", "Matrix/Vector/Scalar RFs",
                static_cast<unsigned long long>(
                    a.registerFileBytes / MiB));
    std::printf("  %-38s %llu MB\n", "DMA buffers",
                static_cast<unsigned long long>(
                    a.dmaBufferBytes / MiB));
    std::printf("  %-38s %d/%d\n", "I/O width of DRAM/SRAM",
                cfg.dramSpec.ioWidthPerModule(),
                a.vpuLanes * 128);
    std::printf("  %-38s 7 nm / %.1f GHz / 1.0 V\n",
                "Technology/Frequency/Voltage", a.freqHz / 1e9);

    const core::PnmPowerParams pp;
    // Max power is quoted at the pin-rate (peak) bandwidth.
    const double dram_w = dram::DramPowerModel(cfg.dramSpec)
                              .streamingPowerW(
                                  dev.memory().peakBandwidth());
    const double total_w = dev.maxPowerW(pp);
    std::printf("  %-38s ~%.0f W\n", "CXL-PNM controller max power",
                total_w - dram_w);
    std::printf("  %-38s ~%.0f W\n", "DRAM total power", dram_w);
    std::printf("  %-38s ~%.0f W (budget 150 W)\n",
                "CXL-PNM platform total power", total_w);

    std::printf("\n  module: %.0f GB capacity, %.3f TB/s peak, "
                "%.3f TB/s sustained, %zu channels\n",
                dev.memory().capacityBytes() / GB,
                dev.memory().peakBandwidth() / TB,
                dev.memory().sustainedBandwidth() / TB,
                dev.memory().channelCount());

    bench::header("Table II anchors");
    bench::anchor("PE count (paper 2048)", 2048, a.peCount(), 0.0);
    bench::anchor("PE peak TFLOPS (paper 4.09)", 4.096,
                  a.peArrayPeakFlops() / 1e12, 0.01);
    bench::anchor("adder-tree multipliers (paper 2048)", 2048,
                  a.adderTreeMultipliers(), 0.0);
    bench::anchor("adder-tree adders (paper 2032)", 2032,
                  a.adderTreeAdders(), 0.0);
    bench::anchor("register file MB (paper 63)", 63,
                  double(a.registerFileBytes) / MiB, 0.0);
    bench::anchor("DRAM power W (paper ~40)", 40.0, dram_w, 0.05);
    bench::anchor("platform power within 150 W budget", 1.0,
                  total_w <= 150.0 ? 1.0 : 0.0, 0.0);
    return 0;
}
