/**
 * @file
 * Serving-capacity sweep: maximum sustained QPS under a p95 per-token
 * latency SLO for one CXL-PNM device vs. one A100, using the
 * continuous-batching serving simulator (src/serve/).
 *
 * For each platform the arrival rate climbs a geometric ladder; a rate
 * is *sustained* when the p95 per-token latency meets the SLO and the
 * achieved QPS keeps up with the offered rate (the queue is not
 * growing without bound). The headline for each platform is the last
 * sustained rung: its QPS, mean batch occupancy, and peak KV-pool
 * utilization.
 *
 * The paper's thesis in serving terms: the GPU's KV capacity
 * (mem - weights) caps its batch, while the LPDDR-backed CXL-PNM
 * device trades peak bandwidth for capacity headroom.
 *
 *   ./serve_sweep [model=opt-13b] [in=64] [out=256] [n=96] [batch=32]
 *                 [slo_scale=3] [seed=1] [slo=0]   (slo in seconds
 *                 overrides slo_scale when > 0)
 *
 * KV-paging mode (`kvout=BENCH_kv.json`) replaces the platform A/B
 * with a prefix-reuse x block-size sweep on the PNM cost model at a
 * deliberately KV-bound capacity (`kv_gb=0.5` by default, a pool two
 * worst-case requests deep, where byte admission is most wasteful;
 * the SLO is loosened to `slo_scale=10` so capacity rather than
 * latency is the binding constraint): for each reuse in {0, 0.5,
 * 0.9} a worst-case byte-admission baseline and paged runs at {16,
 * 64, 256}-token blocks climb the same rate ladder, plus a
 * fixed-rate head-to-head at the baseline's last sustained rate.
 * Cells fan out over `threads=`; the JSON is a pure function of the
 * simulation, so any thread count produces byte-identical output.
 * `check=1` exits non-zero unless paged admission at reuse 0.5 beats
 * the byte baseline on sustained throughput and head-to-head p50
 * TTFT with a non-zero prefix hit rate.
 *
 *   ./serve_sweep kvout=BENCH_kv.json [kv_gb=0.5] [threads=0]
 *                 [check=0] [prefix_tokens=48] [prefix_groups=4] [...]
 *
 * Tiered-KV long-context mode (`tierout=BENCH_kvtier.json`): a
 * context-length x tier-configuration grid on the PNM cost model with
 * the CXL-far KV tier (src/serve/tier/). For each prompt length in
 * {128k, 256k, 512k, 1M} tokens four cells run the same fixed trace:
 * near-only (far tier off - prompts beyond the near pool are rejected
 * at submit), LRU-decode-distance with and without the decode-ahead
 * prefetcher, and the pinned-recent-window policy. Cells fan out over
 * `threads=`; every cell is a self-contained seeded simulation, so the
 * JSON is byte-identical for any thread count. `check=1` exits
 * non-zero unless (a) some context length is servable with the far
 * tier and completely unservable without it, and (b) wherever far KV
 * was actually streamed, prefetch strictly beats no-prefetch on p50
 * token latency.
 *
 *   ./serve_sweep tierout=BENCH_kvtier.json [model=opt-1.3b]
 *                 [block=1024] [near_tokens=163840]
 *                 [far_tokens=1310720] [out=64] [n=4] [batch=1]
 *                 [pin_window=8] [threads=0] [check=0] [seed=1]
 *
 * Calibrated fast-forward mode (`e2eout=BENCH_e2e.json`): the quick
 * PNM serve ladder run twice over the identical rung set - once with
 * every iteration priced by the cycle-level engine (CyclePricer, a
 * fresh memo per rung so each rung is a self-contained simulation)
 * and once in analytic fast-forward (AnalyticPricer) - plus a
 * mixed-mode validation point (two dispatcher groups, group 0
 * cycle-accurate, group 1 analytic). calibrateWithAnchors() reports
 * the fitted model's worst held-out relative error. Every JSON field
 * except the wall-clock timings is a pure function of the simulation;
 * `check=1` exits non-zero unless calibration_max_rel_err <= 0.05,
 * the fast-forward ladder is >= 5x faster than the cycle ladder, and
 * the mixed point completes every request.
 *
 *   ./serve_sweep e2eout=BENCH_e2e.json [model=opt-13b] [n=32]
 *                 [in=64] [out=256] [batch=16] [rungs=4] [seed=1]
 *                 [slo_scale=3] [check=0] [calib=profile.txt]
 *
 * Disaggregated prefill/decode mode (`disaggout=BENCH_disagg.json`):
 * a long-prompt mix (bimodal inputs: mostly chat-length prompts with
 * an occasional document-length one) run at a small rate ladder on
 * two appliance configurations with identical hardware - monolithic
 * (every group prefills and decodes, no chunking) and chunked +
 * disaggregated (`chunk` tokens per prefill chunk, `prefill_groups`
 * dedicated prefill groups, KV handovers priced over the CXL link).
 * Cells fan out over `threads=`; every cell is a self-contained
 * seeded simulation, so the JSON is byte-identical for any thread
 * count. `check=1` exits non-zero unless, at the headline (highest)
 * rate, disaggregation strictly beats monolithic on p95 TTFT, decode
 * p50 token latency degrades by at most 1.3x, and the handovers moved
 * a non-zero number of bytes over a non-zero number of link-seconds.
 *
 *   ./serve_sweep disaggout=BENCH_disagg.json [model=opt-1.3b]
 *                 [groups=4] [prefill_groups=2] [chunk=64] [n=256]
 *                 [short_in=64] [long_in=1792] [p_short=0.97] [out=64]
 *                 [batch=8] [kv_depth=12] [rungs=4] [seed=1]
 *                 [threads=0] [check=0]
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "serve/calibration.hh"
#include "serve/cost_model.hh"
#include "serve/dispatcher.hh"
#include "serve/metrics.hh"
#include "serve/request_generator.hh"
#include "serve/scheduler.hh"
#include "sim/config.hh"
#include "sim/thread_pool.hh"

using namespace cxlpnm;

namespace
{

struct SweepPoint
{
    double offeredQps = 0.0;
    serve::ServeReport report;
    bool sustained = false;
};

serve::ServeReport
runAtRate(const llm::ModelConfig &model,
          const serve::BatchCostModel &cost, std::uint64_t kv_capacity,
          const serve::SchedulerConfig &sched,
          const serve::MetricsConfig &mcfg, const serve::TraceConfig &t,
          const serve::IterationPricer *pricer = nullptr)
{
    serve::ServeMetrics metrics(nullptr, "serve", mcfg);
    serve::BatchScheduler s(model, cost, kv_capacity, sched, metrics);
    s.setPricer(pricer);
    serve::RequestGenerator gen(t);
    while (!gen.exhausted())
        s.submit(gen.next());
    s.drain();
    return metrics.report(s.clockSeconds());
}

/** Climb the rate ladder; returns every rung plus the last sustained. */
std::vector<SweepPoint>
sweep(const char *label, const llm::ModelConfig &model,
      const serve::BatchCostModel &cost, std::uint64_t kv_capacity,
      std::size_t max_batch, double slo_token_sec,
      serve::TraceConfig trace)
{
    serve::SchedulerConfig sched;
    sched.maxBatch = max_batch;

    serve::MetricsConfig mcfg;
    mcfg.sloTokenSeconds = slo_token_sec;
    mcfg.tokenLatencyHi = 20.0 * slo_token_sec; // p95 at slo/100 grain
    mcfg.tokenLatencyBuckets = 2000;

    // Start well below one serial stream, climb geometrically.
    const std::uint64_t full_ctx =
        trace.input.max() + trace.output.max();
    const double serial_request_sec =
        cost.prefillSeconds(trace.input.max()) +
        trace.output.max() * cost.decodeSeconds(full_ctx);
    double rate = 0.25 / serial_request_sec;

    std::printf("\n%s  (KV pool %.1f GB, SLO p95 token <= %.1f ms)\n",
                label, kv_capacity / GB, slo_token_sec * 1e3);
    std::printf("  %9s %9s %8s %8s %8s %7s %7s %9s\n", "offered/s",
                "achieved", "p50(ms)", "p95(ms)", "ttft95s", "batch",
                "kv-pk%", "tok/s");

    std::vector<SweepPoint> points;
    for (int rung = 0; rung < 40; ++rung) {
        trace.requestsPerSec = rate;
        SweepPoint p;
        p.offeredQps = rate;
        p.report = runAtRate(model, cost, kv_capacity, sched, mcfg,
                             trace);
        p.sustained = p.report.tokenLatencyP95 <= slo_token_sec &&
            p.report.achievedQps >= 0.9 * rate;
        points.push_back(p);

        const auto &r = p.report;
        std::printf("  %9.3f %9.3f %8.2f %8.2f %8.2f %7.2f %7.1f "
                    "%9.1f%s\n",
                    rate, r.achievedQps, r.tokenLatencyP50 * 1e3,
                    r.tokenLatencyP95 * 1e3, r.ttftP95,
                    r.meanBatchSize, 100.0 * r.peakKvUtilization,
                    r.throughputTokensPerSec,
                    p.sustained ? "" : "  <- SLO violated");
        if (!p.sustained)
            break;
        rate *= 1.4;
    }
    return points;
}

const SweepPoint *
lastSustained(const std::vector<SweepPoint> &pts)
{
    const SweepPoint *best = nullptr;
    for (const auto &p : pts)
        if (p.sustained)
            best = &p;
    return best;
}

// ---- KV-paging mode (kvout=) ----

bool
writeFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return true;
}

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    out += buf;
}

/** One (reuse, admission mode) cell of the KV sweep. */
struct KvCell
{
    double reuse = 0.0;
    std::uint32_t blockTokens = 0; // 0 = worst-case byte admission
    bool hasSustained = false;
    double sustainedQps = 0.0;
    serve::ServeReport best; // at the last sustained rung
};

serve::SchedulerConfig
kvSched(std::size_t max_batch, std::uint32_t block_tokens)
{
    serve::SchedulerConfig sched;
    sched.maxBatch = max_batch;
    if (block_tokens > 0) {
        sched.paged.enabled = true;
        sched.paged.blockTokens = block_tokens;
    }
    return sched;
}

/** sweep() without the narration: climb the ladder, keep the last
 *  sustained rung (quiet so cells can run on a thread pool). */
KvCell
climbQuiet(const llm::ModelConfig &model,
           const serve::BatchCostModel &cost, std::uint64_t kv_capacity,
           std::size_t max_batch, double slo_token_sec,
           serve::TraceConfig trace, std::uint32_t block_tokens)
{
    const auto sched = kvSched(max_batch, block_tokens);
    serve::MetricsConfig mcfg;
    mcfg.sloTokenSeconds = slo_token_sec;
    mcfg.tokenLatencyHi = 20.0 * slo_token_sec;
    mcfg.tokenLatencyBuckets = 2000;

    const std::uint64_t full_ctx =
        trace.input.max() + trace.output.max();
    const double serial_request_sec =
        cost.prefillSeconds(trace.input.max()) +
        trace.output.max() * cost.decodeSeconds(full_ctx);

    KvCell cell;
    cell.reuse = trace.prefixReuse;
    cell.blockTokens = block_tokens;
    double rate = 0.25 / serial_request_sec;
    for (int rung = 0; rung < 40; ++rung) {
        trace.requestsPerSec = rate;
        const auto r =
            runAtRate(model, cost, kv_capacity, sched, mcfg, trace);
        const bool sustained = r.tokenLatencyP95 <= slo_token_sec &&
            r.achievedQps >= 0.9 * rate;
        if (!sustained)
            break;
        cell.hasSustained = true;
        cell.sustainedQps = rate;
        cell.best = r;
        rate *= 1.4;
    }
    return cell;
}

/** Fixed-rate head-to-head: paged vs. the byte baseline's last
 *  sustained rate, same trace. */
struct HeadToHead
{
    double reuse = 0.0;
    std::uint32_t blockTokens = 0;
    double rateQps = 0.0;
    serve::ServeReport paged;
};

void
appendCellJson(std::string &json, const KvCell &c, bool last)
{
    appendf(json,
            "    {\"reuse\": %.2f, \"mode\": \"%s\", "
            "\"block_tokens\": %u,\n",
            c.reuse, c.blockTokens == 0 ? "byte" : "paged",
            c.blockTokens);
    appendf(json,
            "     \"sustained\": %s, \"sustained_qps\": %.6f, "
            "\"throughput_tok_s\": %.3f, \"ttft_p50_s\": %.6f, "
            "\"token_p95_ms\": %.4f,\n",
            c.hasSustained ? "true" : "false", c.sustainedQps,
            c.best.throughputTokensPerSec, c.best.ttftP50,
            c.best.tokenLatencyP95 * 1e3);
    appendf(json,
            "     \"prefix_hit_rate\": %.4f, \"cached_tokens\": %llu, "
            "\"cow_copies\": %llu, \"cache_evictions\": %llu,\n",
            c.best.prefixHitRate,
            static_cast<unsigned long long>(c.best.cachedPrefixTokens),
            static_cast<unsigned long long>(c.best.cowCopies),
            static_cast<unsigned long long>(c.best.cacheEvictions));
    appendf(json,
            "     \"preemptions\": %llu, \"recompute_tokens\": %llu, "
            "\"peak_blocks\": %llu, \"mean_blocks\": %.2f, "
            "\"fragmentation\": %.4f, \"time_avg_kv_util\": %.4f}%s\n",
            static_cast<unsigned long long>(
                c.best.preemptionsForCapacity),
            static_cast<unsigned long long>(c.best.recomputeTokens),
            static_cast<unsigned long long>(c.best.peakKvBlocksInUse),
            c.best.meanKvBlocksInUse, c.best.kvFragmentation,
            c.best.timeAvgKvUtilization, last ? "" : ",");
}

int
runKvSweep(Config &cfg, const llm::ModelConfig &model,
           serve::TraceConfig trace, std::size_t max_batch)
{
    const std::string out_path = cfg.getString("kvout", "");
    const double kv_gb = cfg.getDouble("kv_gb", 0.5);
    const std::uint64_t kv_capacity =
        static_cast<std::uint64_t>(kv_gb * GB);
    const unsigned threads =
        static_cast<unsigned>(cfg.getInt("threads", 0));

    trace.prefixTokens = cfg.getInt("prefix_tokens", 48);
    trace.prefixGroups = cfg.getInt("prefix_groups", 4);

    const std::uint64_t full_ctx =
        trace.input.max() + trace.output.max();
    core::PnmPlatformConfig pcfg;
    pcfg.channelGrouping = 8;
    const auto cost = serve::calibratePnmCostModel(model, pcfg, full_ctx);

    double slo = cfg.getDouble("slo", 0.0);
    if (slo <= 0.0)
        slo = cfg.getDouble("slo_scale", 10.0) *
            cost.decodeSeconds(full_ctx);

    const std::vector<double> reuses = {0.0, 0.5, 0.9};
    const std::vector<std::uint32_t> blocks = {0, 16, 64, 256};

    bench::header("KV paging sweep: " + model.name +
                  ", byte vs. paged admission");
    std::printf("KV pool %.2f GB, %zu requests, %llu in / %llu out, "
                "shared prefix %llu tokens over %zu groups, SLO p95 "
                "token <= %.2f ms\n",
                kv_gb, trace.numRequests,
                static_cast<unsigned long long>(trace.input.max()),
                static_cast<unsigned long long>(trace.output.max()),
                static_cast<unsigned long long>(trace.prefixTokens),
                trace.prefixGroups, slo * 1e3);

    // Phase 1: every (reuse, mode) ladder, fanned over the pool. Each
    // cell is a self-contained seeded simulation, so the fan-out
    // cannot perturb results.
    std::vector<KvCell> cells(reuses.size() * blocks.size());
    ThreadPool::parallelFor(
        cells.size(), threads, [&](std::size_t i) {
            serve::TraceConfig t = trace;
            t.prefixReuse = reuses[i / blocks.size()];
            cells[i] = climbQuiet(model, cost, kv_capacity, max_batch,
                                  slo, t, blocks[i % blocks.size()]);
        });

    // Phase 2: head-to-head at each reuse row's byte-baseline rate.
    std::vector<HeadToHead> h2h;
    for (std::size_t ri = 0; ri < reuses.size(); ++ri) {
        const KvCell &base = cells[ri * blocks.size()];
        if (!base.hasSustained)
            continue;
        for (std::size_t bi = 1; bi < blocks.size(); ++bi) {
            HeadToHead h;
            h.reuse = reuses[ri];
            h.blockTokens = blocks[bi];
            h.rateQps = base.sustainedQps;
            h2h.push_back(h);
        }
    }
    ThreadPool::parallelFor(h2h.size(), threads, [&](std::size_t i) {
        serve::TraceConfig t = trace;
        t.prefixReuse = h2h[i].reuse;
        t.requestsPerSec = h2h[i].rateQps;
        serve::MetricsConfig mcfg;
        mcfg.sloTokenSeconds = slo;
        mcfg.tokenLatencyHi = 20.0 * slo;
        mcfg.tokenLatencyBuckets = 2000;
        h2h[i].paged =
            runAtRate(model, cost, kv_capacity,
                      kvSched(max_batch, h2h[i].blockTokens), mcfg, t);
    });

    std::printf("\n  %5s %9s %11s %9s %9s %6s %8s %8s\n", "reuse",
                "mode", "sustained/s", "tok/s", "ttft50ms", "hit%",
                "preempt", "frag%");
    for (const auto &c : cells) {
        char mode[16];
        std::snprintf(mode, sizeof mode,
                      c.blockTokens == 0 ? "byte" : "paged%u",
                      c.blockTokens);
        std::printf("  %5.2f %9s %11.3f %9.1f %9.1f %6.1f %8llu "
                    "%8.1f%s\n",
                    c.reuse, mode, c.sustainedQps,
                    c.best.throughputTokensPerSec,
                    c.best.ttftP50 * 1e3, 100.0 * c.best.prefixHitRate,
                    static_cast<unsigned long long>(
                        c.best.preemptionsForCapacity),
                    100.0 * c.best.kvFragmentation,
                    c.hasSustained ? "" : "  <- nothing sustained");
    }

    // --- JSON (deterministic: simulation outputs only) ---
    std::string json = "{\n";
    appendf(json, "  \"model\": \"%s\",\n", model.name.c_str());
    appendf(json,
            "  \"kv_gb\": %.3f, \"requests\": %zu, \"in\": %llu, "
            "\"out\": %llu, \"batch\": %zu,\n",
            kv_gb, trace.numRequests,
            static_cast<unsigned long long>(trace.input.max()),
            static_cast<unsigned long long>(trace.output.max()),
            max_batch);
    appendf(json,
            "  \"prefix_tokens\": %llu, \"prefix_groups\": %zu, "
            "\"seed\": %llu, \"slo_token_ms\": %.4f,\n",
            static_cast<unsigned long long>(trace.prefixTokens),
            trace.prefixGroups,
            static_cast<unsigned long long>(trace.seed), slo * 1e3);
    json += "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i)
        appendCellJson(json, cells[i], i + 1 == cells.size());
    json += "  ],\n  \"head_to_head\": [\n";
    for (std::size_t i = 0; i < h2h.size(); ++i) {
        const auto &h = h2h[i];
        appendf(json,
                "    {\"reuse\": %.2f, \"block_tokens\": %u, "
                "\"rate_qps\": %.6f, \"paged_ttft_p50_s\": %.6f, "
                "\"paged_tok_s\": %.3f, \"paged_hit_rate\": %.4f}%s\n",
                h.reuse, h.blockTokens, h.rateQps, h.paged.ttftP50,
                h.paged.throughputTokensPerSec, h.paged.prefixHitRate,
                i + 1 == h2h.size() ? "" : ",");
    }
    json += "  ]\n}\n";
    if (!writeFile(out_path, json)) {
        std::fprintf(stderr, "serve_sweep: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }
    std::printf("\nwrote %s\n", out_path.c_str());

    if (!cfg.getBool("check", false))
        return 0;

    // Acceptance gate: at reuse 0.5 some paged block size must beat
    // the byte baseline - strictly higher sustained throughput AND a
    // lower p50 TTFT at the baseline's own last sustained rate - with
    // a non-zero prefix hit rate.
    const std::size_t r05 = 1; // index of reuse 0.5 in `reuses`
    const KvCell &base = cells[r05 * blocks.size()];
    bool ok = false;
    for (std::size_t bi = 1; bi < blocks.size() && !ok; ++bi) {
        const KvCell &p = cells[r05 * blocks.size() + bi];
        if (!p.hasSustained || p.best.prefixHitRate <= 0.0)
            continue;
        if (!base.hasSustained) {
            ok = true; // byte admission sustained nothing at all
            continue;
        }
        const HeadToHead *h = nullptr;
        for (const auto &c : h2h)
            if (c.reuse == reuses[r05] && c.blockTokens == blocks[bi])
                h = &c;
        ok = p.best.throughputTokensPerSec >
                base.best.throughputTokensPerSec &&
            h != nullptr && h->paged.ttftP50 < base.best.ttftP50;
    }
    if (!ok) {
        std::fprintf(stderr,
                     "serve_sweep: KV paging check FAILED - paged "
                     "admission did not beat the byte baseline at "
                     "reuse 0.5\n");
        return 1;
    }
    std::printf("check: paged admission beats byte baseline at reuse "
                "0.5 (throughput, head-to-head p50 TTFT, hit rate)\n");
    return 0;
}

// ---- Tiered-KV long-context mode (tierout=) ----

/** One (context length, tier configuration) cell. */
struct TierCell
{
    std::uint64_t ctxTokens = 0;
    const char *label = "";
    bool tiered = false;
    serve::tier::TierConfig tier; // farBlocks == 0 for near-only
    serve::ServeReport report;
};

int
runTierSweep(Config &cfg)
{
    const std::string out_path = cfg.getString("tierout", "");
    auto model =
        llm::ModelConfig::byName(cfg.getString("model", "opt-1.3b"));
    const std::uint32_t block =
        static_cast<std::uint32_t>(cfg.getInt("block", 1024));
    const std::uint64_t near_tokens = cfg.getInt("near_tokens", 163840);
    const std::uint64_t far_tokens = cfg.getInt("far_tokens", 1310720);
    const std::uint64_t out_tokens = cfg.getInt("out", 64);
    const std::size_t n_requests = cfg.getInt("n", 4);
    const std::size_t max_batch = cfg.getInt("batch", 1);
    const std::uint32_t pin_window =
        static_cast<std::uint32_t>(cfg.getInt("pin_window", 8));
    const unsigned threads =
        static_cast<unsigned>(cfg.getInt("threads", 0));

    const std::vector<std::uint64_t> ctxs = {131072, 262144, 524288,
                                             1048576};
    const std::uint64_t far_blocks = far_tokens / block;
    const std::uint64_t near_blocks = near_tokens / block;
    const std::uint64_t total_tokens =
        (near_blocks + far_blocks) * block;

    // The stock model tops out at chat-scale positions; the whole
    // point of this sweep is the regime beyond them.
    model.maxPositions = ctxs.back() + out_tokens + block;

    // Calibrate once at a modest context: the fitted per-token cost
    // model extrapolates linearly (exactly right for the KV-read and
    // sum-stage terms that dominate long contexts), while calibrating
    // at 1M would exhaust the device's register file simulating a 1M
    // prefill just to produce coefficients.
    core::PnmPlatformConfig pcfg;
    pcfg.channelGrouping = 8;
    const auto cost = serve::calibratePnmCostModel(model, pcfg, 1024);
    const std::uint64_t near_bytes = model.kvCacheBytes(near_tokens);

    bench::header("Tiered KV long-context sweep: " + model.name);
    std::printf("near %llu blocks (%.1f GB), far %llu blocks, "
                "block %u tokens, %zu requests x %llu out tokens\n",
                static_cast<unsigned long long>(near_blocks),
                near_bytes / GB,
                static_cast<unsigned long long>(far_blocks), block,
                n_requests,
                static_cast<unsigned long long>(out_tokens));

    // The cell grid: near-only plus three tier configurations.
    std::vector<TierCell> cells;
    for (std::uint64_t ctx : ctxs) {
        TierCell base;
        base.ctxTokens = ctx;
        base.tier.link = cxl::CxlLinkParams{};

        TierCell near_only = base;
        near_only.label = "near_only";
        cells.push_back(near_only);

        TierCell lru_pf = base;
        lru_pf.label = "lru_prefetch";
        lru_pf.tiered = true;
        lru_pf.tier.farBlocks = far_blocks;
        lru_pf.tier.policy = serve::tier::TierPolicyKind::LruDecodeDistance;
        lru_pf.tier.prefetch = true;
        cells.push_back(lru_pf);

        TierCell lru_nopf = lru_pf;
        lru_nopf.label = "lru_noprefetch";
        lru_nopf.tier.prefetch = false;
        cells.push_back(lru_nopf);

        TierCell pinned = lru_pf;
        pinned.label = "pinned_prefetch";
        pinned.tier.policy =
            serve::tier::TierPolicyKind::PinnedRecentWindow;
        pinned.tier.pinnedWindowBlocks = pin_window;
        cells.push_back(pinned);
    }

    ThreadPool::parallelFor(cells.size(), threads, [&](std::size_t i) {
        TierCell &c = cells[i];

        serve::TraceConfig t;
        t.arrivals = serve::ArrivalProcess::Fixed;
        t.requestsPerSec = 1e6; // saturating: drain-limited makespan
        t.numRequests = n_requests;
        t.output = serve::LengthDistribution::fixed(out_tokens);
        t.seed = cfg.getInt("seed", 1);
        t.longContext = true;
        t.longCtxMinTokens = c.ctxTokens;
        t.longCtxMaxTokens = c.ctxTokens;
        // A tiered cell must pass admission-capacity validation; the
        // near-only cell skips the KV bound on purpose so the
        // scheduler's own reject path is what the sweep measures.
        t.validate(model.maxPositions, c.tiered ? total_tokens : 0);

        serve::SchedulerConfig sched;
        sched.maxBatch = max_batch;
        sched.paged.enabled = true;
        sched.paged.blockTokens = block;
        if (c.tiered)
            sched.paged.tier = c.tier;

        serve::MetricsConfig mcfg;
        mcfg.tokenLatencyHi = 8.0;
        mcfg.tokenLatencyBuckets = 4000;
        mcfg.autoExtendLatencies = true;

        c.report = runAtRate(model, cost, near_bytes, sched, mcfg, t);
    });

    std::printf("\n  %8s %16s %5s %4s %9s %9s %8s %8s %9s %7s\n",
                "ctx", "cell", "done", "rej", "tok50(s)", "ttft50(s)",
                "demote", "stream", "exposed", "hidden");
    for (const auto &c : cells) {
        const auto &r = c.report;
        std::printf("  %8llu %16s %5llu %4llu %9.3f %9.1f %8llu "
                    "%8llu %9.2f %7.2f\n",
                    static_cast<unsigned long long>(c.ctxTokens),
                    c.label,
                    static_cast<unsigned long long>(r.completed),
                    static_cast<unsigned long long>(r.rejected),
                    r.tokenLatencyP50, r.ttftP50,
                    static_cast<unsigned long long>(r.tierDemotions),
                    static_cast<unsigned long long>(
                        r.tierStreamedBytes / (1u << 20)),
                    r.tierExposedSeconds, r.tierHiddenSeconds);
    }

    // --- JSON (deterministic: simulation outputs only) ---
    std::string json = "{\n";
    appendf(json, "  \"model\": \"%s\",\n", model.name.c_str());
    appendf(json,
            "  \"block_tokens\": %u, \"near_blocks\": %llu, "
            "\"far_blocks\": %llu, \"requests\": %zu, \"out\": %llu, "
            "\"batch\": %zu, \"pin_window\": %u, \"seed\": %llu,\n",
            block, static_cast<unsigned long long>(near_blocks),
            static_cast<unsigned long long>(far_blocks), n_requests,
            static_cast<unsigned long long>(out_tokens), max_batch,
            pin_window,
            static_cast<unsigned long long>(cfg.getInt("seed", 1)));
    json += "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto &c = cells[i];
        const auto &r = c.report;
        appendf(json,
                "    {\"ctx\": %llu, \"cell\": \"%s\", "
                "\"completed\": %llu, \"rejected\": %llu,\n",
                static_cast<unsigned long long>(c.ctxTokens), c.label,
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.rejected));
        appendf(json,
                "     \"token_p50_s\": %.6f, \"token_p95_s\": %.6f, "
                "\"ttft_p50_s\": %.4f, \"makespan_s\": %.4f,\n",
                r.tokenLatencyP50, r.tokenLatencyP95, r.ttftP50,
                r.makespanSeconds);
        appendf(json,
                "     \"demotions\": %llu, \"promotions\": %llu, "
                "\"far_born\": %llu, \"migrated_bytes\": %llu, "
                "\"streamed_bytes\": %llu,\n",
                static_cast<unsigned long long>(r.tierDemotions),
                static_cast<unsigned long long>(r.tierPromotions),
                static_cast<unsigned long long>(r.tierFarBornBlocks),
                static_cast<unsigned long long>(r.tierMigratedBytes),
                static_cast<unsigned long long>(r.tierStreamedBytes));
        appendf(json,
                "     \"exposed_s\": %.6f, \"hidden_s\": %.6f, "
                "\"abandoned\": %llu, \"pin_violations\": %llu, "
                "\"peak_near\": %llu, \"peak_far\": %llu}%s\n",
                r.tierExposedSeconds, r.tierHiddenSeconds,
                static_cast<unsigned long long>(
                    r.tierAbandonedMigrations),
                static_cast<unsigned long long>(r.tierPinViolations),
                static_cast<unsigned long long>(r.peakNearBlocksInUse),
                static_cast<unsigned long long>(r.peakFarBlocksInUse),
                i + 1 == cells.size() ? "" : ",");
    }
    json += "  ]\n}\n";
    if (!writeFile(out_path, json)) {
        std::fprintf(stderr, "serve_sweep: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }
    std::printf("\nwrote %s\n", out_path.c_str());

    if (!cfg.getBool("check", false))
        return 0;

    // Gate (a): some context length must be beyond the near tier alone
    // yet fully served through the far tier.
    auto cell = [&](std::uint64_t ctx,
                    const char *label) -> const TierCell * {
        for (const auto &c : cells)
            if (c.ctxTokens == ctx && std::string(c.label) == label)
                return &c;
        return nullptr;
    };
    bool capacity_ok = false;
    for (std::uint64_t ctx : ctxs) {
        const TierCell *near_only = cell(ctx, "near_only");
        if (near_only->report.completed != 0)
            continue;
        bool all_tiered = true;
        for (const char *l :
             {"lru_prefetch", "lru_noprefetch", "pinned_prefetch"})
            all_tiered = all_tiered &&
                cell(ctx, l)->report.completed == n_requests;
        capacity_ok = capacity_ok || all_tiered;
    }
    if (!capacity_ok) {
        std::fprintf(stderr,
                     "serve_sweep: tier check FAILED - no context "
                     "length was served by the far tier while "
                     "unservable near-only\n");
        return 1;
    }

    // Gate (b): wherever far KV was streamed, the decode-ahead
    // prefetcher must strictly improve p50 token latency.
    for (std::uint64_t ctx : ctxs) {
        const TierCell *pf = cell(ctx, "lru_prefetch");
        const TierCell *nopf = cell(ctx, "lru_noprefetch");
        if (pf->report.tierStreamedBytes == 0)
            continue;
        if (!(pf->report.tokenLatencyP50 <
              nopf->report.tokenLatencyP50)) {
            std::fprintf(stderr,
                         "serve_sweep: tier check FAILED - prefetch "
                         "p50 %.6f s not below no-prefetch %.6f s at "
                         "ctx %llu\n",
                         pf->report.tokenLatencyP50,
                         nopf->report.tokenLatencyP50,
                         static_cast<unsigned long long>(ctx));
            return 1;
        }
    }
    std::printf("check: far tier serves contexts near-only cannot; "
                "prefetch beats no-prefetch p50 wherever far KV "
                "streams\n");
    return 0;
}

// ---- Disaggregated prefill/decode mode (disaggout=) ----

/** One (configuration, rate) cell of the disaggregation sweep. */
struct DisaggCell
{
    const char *mode = ""; // "monolithic" | "disagg"
    double rateQps = 0.0;
    serve::ServeReport report;
};

serve::ServeReport
runApplianceAtRate(const llm::ModelConfig &model,
                   const serve::BatchCostModel &cost,
                   std::uint64_t kv_capacity,
                   const serve::SchedulerConfig &sched,
                   const serve::MetricsConfig &mcfg,
                   const serve::TraceConfig &t, int groups,
                   const serve::ApplianceDispatcher::DisaggConfig &dc)
{
    serve::ServeMetrics metrics(nullptr, "serve", mcfg);
    core::ParallelismPlan plan;
    plan.dataParallel = groups;
    serve::ApplianceDispatcher disp(model, cost, plan, kv_capacity,
                                    sched, metrics);
    if (dc.enabled)
        disp.configureDisagg(dc);
    serve::RequestGenerator gen(t);
    while (!gen.exhausted())
        disp.submit(gen.next());
    disp.drain();
    return metrics.report(disp.clockSeconds());
}

int
runDisaggSweep(Config &cfg)
{
    const std::string out_path = cfg.getString("disaggout", "");
    const auto model =
        llm::ModelConfig::byName(cfg.getString("model", "opt-1.3b"));
    const int groups = static_cast<int>(cfg.getInt("groups", 4));
    const std::size_t prefill_groups = cfg.getInt("prefill_groups", 2);
    const std::uint64_t chunk = cfg.getInt("chunk", 64);
    const std::size_t max_batch = cfg.getInt("batch", 8);
    const std::uint64_t kv_depth = cfg.getInt("kv_depth", 12);
    const int rungs = std::max(1, static_cast<int>(cfg.getInt("rungs", 4)));
    const unsigned threads =
        static_cast<unsigned>(cfg.getInt("threads", 0));

    serve::TraceConfig trace;
    trace.arrivals = serve::ArrivalProcess::Poisson;
    trace.numRequests = cfg.getInt("n", 256);
    const std::uint64_t short_in = cfg.getInt("short_in", 64);
    const std::uint64_t long_in = cfg.getInt("long_in", 1792);
    const double p_short = cfg.getDouble("p_short", 0.97);
    trace.input =
        serve::LengthDistribution::bimodal(short_in, long_in, p_short);
    trace.output =
        serve::LengthDistribution::fixed(cfg.getInt("out", 64));
    trace.seed = cfg.getInt("seed", 1);

    const std::uint64_t full_ctx =
        trace.input.max() + trace.output.max();
    core::PnmPlatformConfig pcfg;
    pcfg.channelGrouping = 8;
    // Calibrate at a modest context and let the fitted per-token
    // terms extrapolate (the tier sweep's idiom): simulating a
    // document-length prefill in the cycle engine just to fit
    // coefficients would exhaust the device's register file.
    const auto cost = serve::calibratePnmCostModel(
        model, pcfg, std::min<std::uint64_t>(full_ctx, 1024));
    const std::uint64_t kv_capacity =
        model.kvCacheBytes(full_ctx) * kv_depth;

    // Rate ladder around the mix's mean service time: the HOL-blocking
    // regime is moderate load, where short prompts keep landing behind
    // a document prefill but the queues stay finite.
    const double mean_in =
        p_short * short_in + (1.0 - p_short) * long_in;
    const double mean_serial_sec =
        cost.prefillSeconds(static_cast<std::uint64_t>(mean_in)) +
        trace.output.max() * cost.decodeSeconds(full_ctx);
    std::vector<double> rates(rungs);
    double rate = 0.5 * groups / mean_serial_sec;
    for (int i = 0; i < rungs; ++i) {
        rates[i] = rate;
        rate *= 1.4;
    }

    bench::header("Disaggregated prefill/decode sweep: " + model.name);
    std::printf("%d groups (%zu prefill + %zu decode when on), chunk "
                "%llu tokens, inputs %llu/%llu @ p_short %.2f, out "
                "%llu, %zu requests\n",
                groups, prefill_groups,
                static_cast<std::size_t>(groups) - prefill_groups,
                static_cast<unsigned long long>(chunk),
                static_cast<unsigned long long>(short_in),
                static_cast<unsigned long long>(long_in), p_short,
                static_cast<unsigned long long>(trace.output.max()),
                trace.numRequests);

    serve::MetricsConfig mcfg;
    mcfg.tokenLatencyHi = 2.0;
    mcfg.tokenLatencyBuckets = 4000;
    mcfg.ttftHi = 60.0;
    mcfg.ttftBuckets = 6000;

    // Both configurations at every rung, fanned over the pool. Each
    // cell is a self-contained seeded simulation, so the fan-out
    // cannot perturb results.
    std::vector<DisaggCell> cells(2 * rungs);
    ThreadPool::parallelFor(cells.size(), threads, [&](std::size_t i) {
        DisaggCell &c = cells[i];
        const bool disagg = i % 2 == 1;
        c.mode = disagg ? "disagg" : "monolithic";
        c.rateQps = rates[i / 2];

        serve::TraceConfig t = trace;
        t.requestsPerSec = c.rateQps;

        serve::SchedulerConfig sched;
        sched.maxBatch = max_batch;
        serve::ApplianceDispatcher::DisaggConfig dc;
        if (disagg) {
            sched.chunkTokens = chunk;
            dc.enabled = true;
            dc.prefillGroups = prefill_groups;
            dc.link = cxl::CxlLinkParams{};
        }
        c.report = runApplianceAtRate(model, cost, kv_capacity, sched,
                                      mcfg, t, groups, dc);
    });

    std::printf("\n  %9s %11s %9s %9s %9s %9s %7s %9s\n", "offered/s",
                "mode", "ttft50(s)", "ttft95(s)", "tok50(ms)",
                "tok95(ms)", "handover", "link(ms)");
    for (const auto &c : cells) {
        const auto &r = c.report;
        std::printf("  %9.3f %11s %9.3f %9.3f %9.3f %9.3f %7llu "
                    "%9.3f\n",
                    c.rateQps, c.mode, r.ttftP50, r.ttftP95,
                    r.tokenLatencyP50 * 1e3, r.tokenLatencyP95 * 1e3,
                    static_cast<unsigned long long>(r.handovers),
                    r.handoverLinkSeconds * 1e3);
    }

    // --- JSON (deterministic: simulation outputs only) ---
    std::string json = "{\n";
    appendf(json, "  \"benchmark\": \"serve_disagg\",\n");
    appendf(json,
            "  \"model\": \"%s\", \"groups\": %d, "
            "\"prefill_groups\": %zu, \"chunk_tokens\": %llu,\n",
            model.name.c_str(), groups, prefill_groups,
            static_cast<unsigned long long>(chunk));
    appendf(json,
            "  \"requests\": %zu, \"short_in\": %llu, "
            "\"long_in\": %llu, \"p_short\": %.2f, \"out\": %llu, "
            "\"batch\": %zu, \"seed\": %llu,\n",
            trace.numRequests,
            static_cast<unsigned long long>(short_in),
            static_cast<unsigned long long>(long_in), p_short,
            static_cast<unsigned long long>(trace.output.max()),
            max_batch, static_cast<unsigned long long>(trace.seed));
    json += "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto &c = cells[i];
        const auto &r = c.report;
        appendf(json,
                "    {\"offered_qps\": %.6f, \"mode\": \"%s\", "
                "\"completed\": %llu,\n",
                c.rateQps, c.mode,
                static_cast<unsigned long long>(r.completed));
        appendf(json,
                "     \"ttft_p50_s\": %.6f, \"ttft_p95_s\": %.6f, "
                "\"token_p50_ms\": %.4f, \"token_p95_ms\": %.4f,\n",
                r.ttftP50, r.ttftP95, r.tokenLatencyP50 * 1e3,
                r.tokenLatencyP95 * 1e3);
        appendf(json,
                "     \"chunked_prefills\": %llu, "
                "\"chunk_iterations\": %llu, \"handovers\": %llu, "
                "\"handover_bytes\": %llu, "
                "\"handover_link_s\": %.6f}%s\n",
                static_cast<unsigned long long>(r.chunkedPrefills),
                static_cast<unsigned long long>(r.chunkIterations),
                static_cast<unsigned long long>(r.handovers),
                static_cast<unsigned long long>(r.handoverBytes),
                r.handoverLinkSeconds,
                i + 1 == cells.size() ? "" : ",");
    }
    json += "  ],\n";
    const DisaggCell &mono = cells[2 * (rungs - 1)];
    const DisaggCell &dis = cells[2 * (rungs - 1) + 1];
    appendf(json,
            "  \"headline\": {\"offered_qps\": %.6f, "
            "\"mono_ttft_p95_s\": %.6f, \"disagg_ttft_p95_s\": %.6f, "
            "\"mono_token_p50_ms\": %.4f, "
            "\"disagg_token_p50_ms\": %.4f,\n",
            mono.rateQps, mono.report.ttftP95, dis.report.ttftP95,
            mono.report.tokenLatencyP50 * 1e3,
            dis.report.tokenLatencyP50 * 1e3);
    appendf(json,
            "   \"handover_bytes\": %llu, \"handover_link_s\": %.6f, "
            "\"handovers\": %llu}\n",
            static_cast<unsigned long long>(dis.report.handoverBytes),
            dis.report.handoverLinkSeconds,
            static_cast<unsigned long long>(dis.report.handovers));
    json += "}\n";
    if (!writeFile(out_path, json)) {
        std::fprintf(stderr, "serve_sweep: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }
    std::printf("\nwrote %s\n", out_path.c_str());

    if (!cfg.getBool("check", false))
        return 0;

    // Acceptance gate, at the headline (highest) rate: chunked +
    // disaggregated strictly beats monolithic on p95 TTFT, decode p50
    // token latency degrades by at most 1.3x, and the KV handovers
    // actually moved bytes across the CXL link.
    bool ok = true;
    if (!(dis.report.ttftP95 < mono.report.ttftP95)) {
        std::fprintf(stderr,
                     "serve_sweep: disagg check FAILED - p95 TTFT "
                     "%.6f s not below monolithic %.6f s\n",
                     dis.report.ttftP95, mono.report.ttftP95);
        ok = false;
    }
    if (!(dis.report.tokenLatencyP50 <=
          1.3 * mono.report.tokenLatencyP50)) {
        std::fprintf(stderr,
                     "serve_sweep: disagg check FAILED - decode p50 "
                     "%.6f s above 1.3x monolithic %.6f s\n",
                     dis.report.tokenLatencyP50,
                     mono.report.tokenLatencyP50);
        ok = false;
    }
    if (dis.report.handoverBytes == 0 ||
        dis.report.handoverLinkSeconds <= 0.0 ||
        dis.report.handovers == 0) {
        std::fprintf(stderr,
                     "serve_sweep: disagg check FAILED - handovers "
                     "moved no bytes over the link\n");
        ok = false;
    }
    if (!ok)
        return 1;
    std::printf("check: disaggregation beats monolithic p95 TTFT, "
                "decode p50 within 1.3x, handovers priced over the "
                "CXL link\n");
    return 0;
}

// ---- Calibrated fast-forward e2e mode (e2eout=) ----

double
wallSeconds()
{
    using namespace std::chrono;
    return duration<double>(steady_clock::now().time_since_epoch())
        .count();
}

int
runE2eSweep(Config &cfg)
{
    const std::string out_path = cfg.getString("e2eout", "");
    const auto model =
        llm::ModelConfig::byName(cfg.getString("model", "opt-13b"));

    serve::TraceConfig trace;
    trace.arrivals = serve::ArrivalProcess::Poisson;
    trace.numRequests = cfg.getInt("n", 32);
    trace.input =
        serve::LengthDistribution::fixed(cfg.getInt("in", 64));
    trace.output =
        serve::LengthDistribution::fixed(cfg.getInt("out", 256));
    trace.seed = cfg.getInt("seed", 1);
    const std::size_t max_batch = cfg.getInt("batch", 16);
    const int rungs = std::max(1, static_cast<int>(cfg.getInt("rungs", 4)));

    const std::uint64_t full_ctx =
        trace.input.max() + trace.output.max();
    core::PnmPlatformConfig pcfg;
    pcfg.channelGrouping = 8;

    bench::header("Calibrated fast-forward e2e sweep: " + model.name);

    // Calibrate once; the profile carries the held-out anchor errors
    // the analytic mode is trusted on. calib= persists it so a fleet
    // pays the engine-calibration cost once.
    const double c0 = wallSeconds();
    const auto profile =
        serve::calibrateWithAnchors(model, pcfg, full_ctx);
    const double calib_wall = wallSeconds() - c0;
    const std::string calib_path = cfg.getString("calib", "");
    if (!calib_path.empty())
        serve::saveProfile(profile, calib_path);
    const serve::BatchCostModel &cost = profile.cost;
    const std::uint64_t kv = serve::pnmKvCapacityBytes(model, pcfg);

    double slo = cfg.getDouble("slo", 0.0);
    if (slo <= 0.0)
        slo = cfg.getDouble("slo_scale", 3.0) *
            cost.decodeSeconds(full_ctx);

    serve::SchedulerConfig sched;
    sched.maxBatch = max_batch;
    serve::MetricsConfig mcfg;
    mcfg.sloTokenSeconds = slo;
    mcfg.tokenLatencyHi = 20.0 * slo;
    mcfg.tokenLatencyBuckets = 2000;

    // Fixed geometric rung set, no SLO early-exit: both modes must
    // time the identical simulated work for the wall comparison to
    // mean anything.
    const double serial_request_sec =
        cost.prefillSeconds(trace.input.max()) +
        trace.output.max() * cost.decodeSeconds(full_ctx);
    std::vector<double> rates(rungs);
    double rate = 0.25 / serial_request_sec;
    for (int i = 0; i < rungs; ++i) {
        rates[i] = rate;
        rate *= 1.4;
    }

    std::printf("calibration: %zu anchors, max rel err %.4f%% "
                "(%.2f s wall)\n",
                profile.anchors.size(), 100.0 * profile.maxRelErr(),
                calib_wall);

    // Cycle ladder: a fresh pricer per rung keeps each rung a
    // self-contained simulation (the cell idiom the other sweep modes
    // use), so the cycle wall honestly pays its engine stage runs.
    std::vector<serve::ServeReport> cyc(rungs), fast(rungs);
    std::vector<std::uint64_t> stage_runs(rungs), memo_hits(rungs);
    const double t_cyc = wallSeconds();
    for (int i = 0; i < rungs; ++i) {
        serve::CyclePricer cp(model, pcfg, cost);
        serve::TraceConfig t = trace;
        t.requestsPerSec = rates[i];
        cyc[i] = runAtRate(model, cost, kv, sched, mcfg, t, &cp);
        stage_runs[i] = cp.engineStageRuns();
        memo_hits[i] = cp.memoHits();
    }
    const double wall_cycle = wallSeconds() - t_cyc;

    const serve::AnalyticPricer analytic(cost);
    const double t_ff = wallSeconds();
    for (int i = 0; i < rungs; ++i) {
        serve::TraceConfig t = trace;
        t.requestsPerSec = rates[i];
        fast[i] = runAtRate(model, cost, kv, sched, mcfg, t, &analytic);
    }
    const double wall_ff = wallSeconds() - t_ff;
    const double speedup = wall_ff > 0.0 ? wall_cycle / wall_ff : 0.0;

    // Mixed-mode validation point at the middle rung: one dispatcher,
    // group 0 cycle-accurate, group 1 analytic (ExecMode::Mixed as a
    // driver would wire it).
    const double mixed_rate = rates[rungs / 2];
    serve::ServeMetrics mixed_metrics(nullptr, "serve", mcfg);
    core::ParallelismPlan plan;
    plan.dataParallel = 2;
    serve::ApplianceDispatcher disp(model, cost, plan, kv, sched,
                                    mixed_metrics);
    serve::CyclePricer mixed_cycle(model, pcfg, cost);
    disp.setPricer(0, &mixed_cycle);
    disp.setPricer(1, &analytic);
    {
        serve::TraceConfig t = trace;
        t.requestsPerSec = mixed_rate;
        serve::RequestGenerator gen(t);
        while (!gen.exhausted())
            disp.submit(gen.next());
        disp.drain();
    }
    const auto mixed = mixed_metrics.report(disp.clockSeconds());

    std::printf("\n  %9s %10s %10s %7s %9s %8s\n", "offered/s",
                "cyc tok/s", "ff tok/s", "err%", "stages", "memohit");
    for (int i = 0; i < rungs; ++i) {
        const double rel =
            cyc[i].throughputTokensPerSec > 0.0
                ? std::abs(fast[i].throughputTokensPerSec -
                           cyc[i].throughputTokensPerSec) /
                    cyc[i].throughputTokensPerSec
                : 0.0;
        std::printf("  %9.3f %10.1f %10.1f %7.3f %9llu %8llu\n",
                    rates[i], cyc[i].throughputTokensPerSec,
                    fast[i].throughputTokensPerSec, 100.0 * rel,
                    static_cast<unsigned long long>(stage_runs[i]),
                    static_cast<unsigned long long>(memo_hits[i]));
    }
    std::printf("\nwall: cycle %.3f s, fast-forward %.3f s  (%.1fx); "
                "mixed point %llu/%zu completed\n",
                wall_cycle, wall_ff, speedup,
                static_cast<unsigned long long>(mixed.completed),
                trace.numRequests);

    // --- JSON: everything except the *_wall_seconds timings is a pure
    // function of the simulation ---
    std::string json = "{\n";
    appendf(json, "  \"benchmark\": \"serve_e2e_fastforward\",\n");
    appendf(json,
            "  \"model\": \"%s\", \"requests\": %zu, \"in\": %llu, "
            "\"out\": %llu, \"batch\": %zu, \"rungs\": %d, "
            "\"seed\": %llu,\n",
            model.name.c_str(), trace.numRequests,
            static_cast<unsigned long long>(trace.input.max()),
            static_cast<unsigned long long>(trace.output.max()),
            max_batch, rungs,
            static_cast<unsigned long long>(trace.seed));
    appendf(json,
            "  \"calibration_anchors\": %zu, "
            "\"calibration_max_rel_err\": %.6f,\n",
            profile.anchors.size(), profile.maxRelErr());
    appendf(json,
            "  \"calibration_wall_seconds\": %.3f,\n"
            "  \"sweep_wall_seconds_cycle\": %.3f,\n"
            "  \"sweep_wall_seconds_fastforward\": %.3f,\n"
            "  \"fastforward_speedup\": %.2f,\n",
            calib_wall, wall_cycle, wall_ff, speedup);
    json += "  \"rung_detail\": [\n";
    for (int i = 0; i < rungs; ++i) {
        const double rel =
            cyc[i].throughputTokensPerSec > 0.0
                ? std::abs(fast[i].throughputTokensPerSec -
                           cyc[i].throughputTokensPerSec) /
                    cyc[i].throughputTokensPerSec
                : 0.0;
        appendf(json,
                "    {\"offered_qps\": %.6f, \"cycle_tok_s\": %.3f, "
                "\"fastforward_tok_s\": %.3f, "
                "\"throughput_rel_err\": %.6f, "
                "\"engine_stage_runs\": %llu, \"memo_hits\": %llu}%s\n",
                rates[i], cyc[i].throughputTokensPerSec,
                fast[i].throughputTokensPerSec, rel,
                static_cast<unsigned long long>(stage_runs[i]),
                static_cast<unsigned long long>(memo_hits[i]),
                i + 1 == rungs ? "" : ",");
    }
    json += "  ],\n";
    appendf(json,
            "  \"mixed\": {\"offered_qps\": %.6f, \"groups\": 2, "
            "\"completed\": %llu, \"throughput_tok_s\": %.3f}\n",
            mixed_rate,
            static_cast<unsigned long long>(mixed.completed),
            mixed.throughputTokensPerSec);
    json += "}\n";
    if (!writeFile(out_path, json)) {
        std::fprintf(stderr, "serve_sweep: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());

    if (!cfg.getBool("check", false))
        return 0;

    bool ok = true;
    if (profile.maxRelErr() > 0.05) {
        std::fprintf(stderr,
                     "serve_sweep: e2e check FAILED - calibration max "
                     "rel err %.4f > 0.05\n",
                     profile.maxRelErr());
        ok = false;
    }
    if (speedup < 5.0) {
        std::fprintf(stderr,
                     "serve_sweep: e2e check FAILED - fast-forward "
                     "speedup %.2fx < 5x\n",
                     speedup);
        ok = false;
    }
    if (mixed.completed != trace.numRequests) {
        std::fprintf(stderr,
                     "serve_sweep: e2e check FAILED - mixed mode "
                     "completed %llu of %zu\n",
                     static_cast<unsigned long long>(mixed.completed),
                     trace.numRequests);
        ok = false;
    }
    if (!ok)
        return 1;
    std::printf("check: calibration err <= 5%%, fast-forward >= 5x, "
                "mixed point completed all requests\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    auto cfg = Config::fromArgs({argv + 1, argv + argc});
    if (!cfg.getString("e2eout", "").empty())
        return runE2eSweep(cfg);
    if (!cfg.getString("tierout", "").empty())
        return runTierSweep(cfg);
    if (!cfg.getString("disaggout", "").empty())
        return runDisaggSweep(cfg);
    const auto model =
        llm::ModelConfig::byName(cfg.getString("model", "opt-13b"));

    serve::TraceConfig trace;
    trace.arrivals = serve::ArrivalProcess::Poisson;
    trace.numRequests = cfg.getInt("n", 96);
    trace.input = serve::LengthDistribution::fixed(cfg.getInt("in", 64));
    trace.output =
        serve::LengthDistribution::fixed(cfg.getInt("out", 256));
    trace.seed = cfg.getInt("seed", 1);

    const std::size_t max_batch = cfg.getInt("batch", 32);
    if (!cfg.getString("kvout", "").empty())
        return runKvSweep(cfg, model, trace, max_batch);
    const std::uint64_t full_ctx =
        trace.input.max() + trace.output.max();

    bench::header("Serving sweep: " + model.name +
                  ", continuous batching, one device per platform");
    std::printf("trace: %zu requests, %llu in / %llu out tokens, "
                "Poisson arrivals, batch cap %zu\n",
                trace.numRequests,
                static_cast<unsigned long long>(trace.input.max()),
                static_cast<unsigned long long>(trace.output.max()),
                max_batch);

    // --- calibrate both platforms ---
    core::PnmPlatformConfig pcfg;
    pcfg.channelGrouping = 8; // coarse channel model for long sweeps
    const auto pnm_cost =
        serve::calibratePnmCostModel(model, pcfg, full_ctx);
    const auto pnm_kv = serve::pnmKvCapacityBytes(model, pcfg);

    const auto gspec = gpu::GpuSpec::a100_40g();
    const auto gpu_cost = serve::calibrateGpuCostModel(
        model, gspec, gpu::GpuCalibration{}, full_ctx);
    const auto gpu_kv = serve::gpuKvCapacityBytes(model, gspec);

    // One shared absolute SLO so "max sustained QPS" is comparable:
    // a multiple of the slower platform's unloaded decode latency.
    double slo = cfg.getDouble("slo", 0.0);
    if (slo <= 0.0) {
        const double slo_scale = cfg.getDouble("slo_scale", 3.0);
        slo = slo_scale * std::max(pnm_cost.decodeSeconds(full_ctx),
                                   gpu_cost.decodeSeconds(full_ctx));
    }
    std::printf("unloaded decode @ctx %llu: PNM %.2f ms, GPU %.2f ms; "
                "shared SLO %.2f ms\n",
                static_cast<unsigned long long>(full_ctx),
                pnm_cost.decodeSeconds(full_ctx) * 1e3,
                gpu_cost.decodeSeconds(full_ctx) * 1e3, slo * 1e3);

    const auto pnm_pts = sweep("CXL-PNM (one device)", model, pnm_cost,
                               pnm_kv, max_batch, slo, trace);
    const auto gpu_pts = sweep("A100-40G (one device)", model, gpu_cost,
                               gpu_kv, max_batch, slo, trace);

    const SweepPoint *pnm_best = lastSustained(pnm_pts);
    const SweepPoint *gpu_best = lastSustained(gpu_pts);

    bench::header("Max sustained QPS under the shared p95 token SLO");
    auto line = [](const char *name, const SweepPoint *p) {
        if (!p) {
            std::printf("  %-22s no sustained rate (SLO too tight)\n",
                        name);
            return;
        }
        std::printf("  %-22s %8.3f QPS  batch %5.2f  peak KV %5.1f%%  "
                    "goodput %8.1f tok/s\n",
                    name, p->offeredQps, p->report.meanBatchSize,
                    100.0 * p->report.peakKvUtilization,
                    p->report.goodputTokensPerSec);
    };
    line("CXL-PNM", pnm_best);
    line("A100-40G", gpu_best);
    if (pnm_best && gpu_best)
        std::printf("  PNM/GPU sustained-QPS ratio: %.2fx\n",
                    pnm_best->offeredQps / gpu_best->offeredQps);
    return 0;
}
