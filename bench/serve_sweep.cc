/**
 * @file
 * Serving-capacity sweep: maximum sustained QPS under a p95 per-token
 * latency SLO for one CXL-PNM device vs. one A100, using the
 * continuous-batching serving simulator (src/serve/).
 *
 * For each platform the arrival rate climbs a geometric ladder; a rate
 * is *sustained* when the p95 per-token latency meets the SLO and the
 * achieved QPS keeps up with the offered rate (the queue is not
 * growing without bound). The headline for each platform is the last
 * sustained rung: its QPS, mean batch occupancy, and peak KV-pool
 * utilization.
 *
 * The paper's thesis in serving terms: the GPU's KV capacity
 * (mem - weights) caps its batch, while the LPDDR-backed CXL-PNM
 * device trades peak bandwidth for capacity headroom.
 *
 *   ./serve_sweep [model=opt-13b] [in=64] [out=256] [n=96] [batch=32]
 *                 [slo_scale=3] [seed=1] [slo=0]   (slo in seconds
 *                 overrides slo_scale when > 0)
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "serve/cost_model.hh"
#include "serve/metrics.hh"
#include "serve/request_generator.hh"
#include "serve/scheduler.hh"
#include "sim/config.hh"

using namespace cxlpnm;

namespace
{

struct SweepPoint
{
    double offeredQps = 0.0;
    serve::ServeReport report;
    bool sustained = false;
};

serve::ServeReport
runAtRate(const llm::ModelConfig &model,
          const serve::BatchCostModel &cost, std::uint64_t kv_capacity,
          const serve::SchedulerConfig &sched,
          const serve::MetricsConfig &mcfg, const serve::TraceConfig &t)
{
    serve::ServeMetrics metrics(nullptr, "serve", mcfg);
    serve::BatchScheduler s(model, cost, kv_capacity, sched, metrics);
    serve::RequestGenerator gen(t);
    while (!gen.exhausted())
        s.submit(gen.next());
    s.drain();
    return metrics.report(s.clockSeconds());
}

/** Climb the rate ladder; returns every rung plus the last sustained. */
std::vector<SweepPoint>
sweep(const char *label, const llm::ModelConfig &model,
      const serve::BatchCostModel &cost, std::uint64_t kv_capacity,
      std::size_t max_batch, double slo_token_sec,
      serve::TraceConfig trace)
{
    serve::SchedulerConfig sched;
    sched.maxBatch = max_batch;

    serve::MetricsConfig mcfg;
    mcfg.sloTokenSeconds = slo_token_sec;
    mcfg.tokenLatencyHi = 20.0 * slo_token_sec; // p95 at slo/100 grain
    mcfg.tokenLatencyBuckets = 2000;

    // Start well below one serial stream, climb geometrically.
    const std::uint64_t full_ctx =
        trace.input.max() + trace.output.max();
    const double serial_request_sec =
        cost.prefillSeconds(trace.input.max()) +
        trace.output.max() * cost.decodeSeconds(full_ctx);
    double rate = 0.25 / serial_request_sec;

    std::printf("\n%s  (KV pool %.1f GB, SLO p95 token <= %.1f ms)\n",
                label, kv_capacity / GB, slo_token_sec * 1e3);
    std::printf("  %9s %9s %8s %8s %8s %7s %7s %9s\n", "offered/s",
                "achieved", "p50(ms)", "p95(ms)", "ttft95s", "batch",
                "kv-pk%", "tok/s");

    std::vector<SweepPoint> points;
    for (int rung = 0; rung < 40; ++rung) {
        trace.requestsPerSec = rate;
        SweepPoint p;
        p.offeredQps = rate;
        p.report = runAtRate(model, cost, kv_capacity, sched, mcfg,
                             trace);
        p.sustained = p.report.tokenLatencyP95 <= slo_token_sec &&
            p.report.achievedQps >= 0.9 * rate;
        points.push_back(p);

        const auto &r = p.report;
        std::printf("  %9.3f %9.3f %8.2f %8.2f %8.2f %7.2f %7.1f "
                    "%9.1f%s\n",
                    rate, r.achievedQps, r.tokenLatencyP50 * 1e3,
                    r.tokenLatencyP95 * 1e3, r.ttftP95,
                    r.meanBatchSize, 100.0 * r.peakKvUtilization,
                    r.throughputTokensPerSec,
                    p.sustained ? "" : "  <- SLO violated");
        if (!p.sustained)
            break;
        rate *= 1.4;
    }
    return points;
}

const SweepPoint *
lastSustained(const std::vector<SweepPoint> &pts)
{
    const SweepPoint *best = nullptr;
    for (const auto &p : pts)
        if (p.sustained)
            best = &p;
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    auto cfg = Config::fromArgs({argv + 1, argv + argc});
    const auto model =
        llm::ModelConfig::byName(cfg.getString("model", "opt-13b"));

    serve::TraceConfig trace;
    trace.arrivals = serve::ArrivalProcess::Poisson;
    trace.numRequests = cfg.getInt("n", 96);
    trace.input = serve::LengthDistribution::fixed(cfg.getInt("in", 64));
    trace.output =
        serve::LengthDistribution::fixed(cfg.getInt("out", 256));
    trace.seed = cfg.getInt("seed", 1);

    const std::size_t max_batch = cfg.getInt("batch", 32);
    const std::uint64_t full_ctx =
        trace.input.max() + trace.output.max();

    bench::header("Serving sweep: " + model.name +
                  ", continuous batching, one device per platform");
    std::printf("trace: %zu requests, %llu in / %llu out tokens, "
                "Poisson arrivals, batch cap %zu\n",
                trace.numRequests,
                static_cast<unsigned long long>(trace.input.max()),
                static_cast<unsigned long long>(trace.output.max()),
                max_batch);

    // --- calibrate both platforms ---
    core::PnmPlatformConfig pcfg;
    pcfg.channelGrouping = 8; // coarse channel model for long sweeps
    const auto pnm_cost =
        serve::calibratePnmCostModel(model, pcfg, full_ctx);
    const auto pnm_kv = serve::pnmKvCapacityBytes(model, pcfg);

    const auto gspec = gpu::GpuSpec::a100_40g();
    const auto gpu_cost = serve::calibrateGpuCostModel(
        model, gspec, gpu::GpuCalibration{}, full_ctx);
    const auto gpu_kv = serve::gpuKvCapacityBytes(model, gspec);

    // One shared absolute SLO so "max sustained QPS" is comparable:
    // a multiple of the slower platform's unloaded decode latency.
    double slo = cfg.getDouble("slo", 0.0);
    if (slo <= 0.0) {
        const double slo_scale = cfg.getDouble("slo_scale", 3.0);
        slo = slo_scale * std::max(pnm_cost.decodeSeconds(full_ctx),
                                   gpu_cost.decodeSeconds(full_ctx));
    }
    std::printf("unloaded decode @ctx %llu: PNM %.2f ms, GPU %.2f ms; "
                "shared SLO %.2f ms\n",
                static_cast<unsigned long long>(full_ctx),
                pnm_cost.decodeSeconds(full_ctx) * 1e3,
                gpu_cost.decodeSeconds(full_ctx) * 1e3, slo * 1e3);

    const auto pnm_pts = sweep("CXL-PNM (one device)", model, pnm_cost,
                               pnm_kv, max_batch, slo, trace);
    const auto gpu_pts = sweep("A100-40G (one device)", model, gpu_cost,
                               gpu_kv, max_batch, slo, trace);

    const SweepPoint *pnm_best = lastSustained(pnm_pts);
    const SweepPoint *gpu_best = lastSustained(gpu_pts);

    bench::header("Max sustained QPS under the shared p95 token SLO");
    auto line = [](const char *name, const SweepPoint *p) {
        if (!p) {
            std::printf("  %-22s no sustained rate (SLO too tight)\n",
                        name);
            return;
        }
        std::printf("  %-22s %8.3f QPS  batch %5.2f  peak KV %5.1f%%  "
                    "goodput %8.1f tok/s\n",
                    name, p->offeredQps, p->report.meanBatchSize,
                    100.0 * p->report.peakKvUtilization,
                    p->report.goodputTokensPerSec);
    };
    line("CXL-PNM", pnm_best);
    line("A100-40G", gpu_best);
    if (pnm_best && gpu_best)
        std::printf("  PNM/GPU sustained-QPS ratio: %.2fx\n",
                    pnm_best->offeredQps / gpu_best->offeredQps);
    return 0;
}
