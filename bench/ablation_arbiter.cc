/**
 * @file
 * Ablation for §V-A disadvantage D3: hardware arbitration of host and
 * PNM memory requests (CXL-PNM) vs the DIMM-PNM polling handshake,
 * where the host is locked out for the whole accelerator task and
 * rediscovers the channel by polling.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "cxl/arbiter.hh"
#include "dram/module.hh"
#include "sim/event_queue.hh"

using namespace cxlpnm;

namespace
{

/** Host issues 64 B reads every @p period while PNM tasks run. */
double
runScenario(cxl::HostPnmArbiter::Policy policy, Tick period,
            Tick task_len, int tasks)
{
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    dram::MultiChannelMemory mem(eq, &root, "mem",
                                 dram::DramTechSpec::lpddr5x());
    cxl::HostPnmArbiter::Params params;
    params.policy = policy;
    cxl::HostPnmArbiter arb(eq, &root, "arb", mem, params);

    // Accelerator tasks back to back, each streaming weights.
    for (int t = 0; t < tasks; ++t) {
        eq.scheduleOneShot("task", t * task_len, [&arb] {
            arb.beginPnmTask();
        });
        eq.scheduleOneShot("taskEnd", t * task_len + task_len - 1,
                           [&arb] { arb.endPnmTask(); });
    }

    // Host traffic throughout.
    const Tick horizon = tasks * task_len;
    for (Tick t = 0; t < horizon; t += period) {
        eq.scheduleOneShot("host", t, [&arb, t] {
            dram::MemoryRequest r;
            r.addr = (t % 1024) * 64;
            r.bytes = 64;
            arb.access(cxl::Requester::Host, std::move(r));
        });
    }
    eq.run();
    return arb.meanHostWaitNs();
}

} // namespace

int
main()
{
    bench::header("Ablation: D3 arbitration - hardware vs polling");

    const Tick task = 2 * tickPerMs;  // a 2 ms accelerator task
    const Tick period = 50 * tickPerUs;

    const double hw = runScenario(
        cxl::HostPnmArbiter::Policy::Hardware, period, task, 8);
    const double poll = runScenario(
        cxl::HostPnmArbiter::Policy::PollingHandshake, period, task, 8);

    std::printf("mean host arbitration wait:\n");
    std::printf("  hardware arbiter (CXL-PNM) : %10.1f ns\n", hw);
    std::printf("  polling handshake (DIMM-PNM): %10.1f ns "
                "(%.0fx worse)\n",
                poll, poll / hw);
    std::printf("\nThe hardware arbiter admits host requests "
                "immediately (grant pipeline\nonly); the handshake "
                "blocks them for the task remainder plus half a\n"
                "polling interval, which is D3's cost.\n");
    return 0;
}
