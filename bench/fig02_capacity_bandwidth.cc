/**
 * @file
 * Fig. 2 reproduction: memory capacity and bandwidth a GPU must provide
 * to run each model at a 200 ms/output-token latency constraint.
 *
 * Capacity = FP16 parameter bytes (+ KV cache at the 2048-token context
 * of the paper's motivating setup). Bandwidth = bytes every gen stage
 * must stream / 0.2 s. Paper anchor: GPT-3.5 needs 326 GB and 1.75 TB/s,
 * exceeding the A100-40G's 1.55 TB/s.
 */

#include <cstdio>

#include "bench_common.hh"
#include "gpu/gpu_spec.hh"
#include "llm/model_config.hh"
#include "llm/workload.hh"

using namespace cxlpnm;

int
main()
{
    bench::header("Fig. 2: required capacity & bandwidth @200ms/token");

    constexpr double latency = 0.2; // seconds per output token
    const std::uint64_t context = 2048;

    std::printf("%-10s %12s %14s %16s\n", "model", "params(B)",
                "capacity(GiB)", "req. BW (TB/s)");

    double gpt35_capacity = 0.0, gpt35_bw = 0.0;
    auto models = llm::ModelConfig::optFamily();
    models.push_back(llm::ModelConfig::gpt3());
    for (const auto &m : models) {
        const double cap_gib =
            static_cast<double>(m.weightBytes()) / GiB;
        // One gen stage streams every weight once plus the KV cache.
        const auto stats = llm::summarize(llm::genStageOps(m, context));
        const double bw =
            (static_cast<double>(stats.weightBytes) + stats.kvBytes) /
            latency;
        std::printf("%-10s %12.2f %14.1f %16.3f\n", m.name.c_str(),
                    m.paramCount() / 1e9, cap_gib, bw / TB);
        if (m.name == "gpt-3.5") {
            gpt35_capacity = cap_gib;
            gpt35_bw = bw;
        }
    }

    bench::anchor("GPT-3.5 capacity GiB (paper 326)", 326.0,
                  gpt35_capacity, 0.05);
    bench::anchor("GPT-3.5 required TB/s (paper 1.75)", 1.75,
                  gpt35_bw / TB, 0.10);

    const auto a100 = gpu::GpuSpec::a100_40g();
    std::printf("\nA100-40G provides %.0f GB / %.2f TB/s -> %s\n",
                a100.memBytes / GB, a100.memBandwidth / TB,
                gpt35_bw > a100.memBandwidth
                    ? "cannot meet the constraint (as the paper argues)"
                    : "meets the constraint");
    return 0;
}
