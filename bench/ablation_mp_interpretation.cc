/**
 * @file
 * Why §VIII-A's "model parallelism" must be a tensor split: compare
 * the two possible readings of MP8 on OPT-66B.
 *
 *  - Pipeline (layer-split): each device runs 1/8 of the layers;
 *    autoregressive decoding visits them sequentially, so per-token
 *    latency equals the full single-device time plus hop costs - it
 *    can never beat DP8's latency.
 *  - Tensor (the implementation): all 8 devices work on every layer
 *    concurrently with two reductions per layer - latency drops by
 *    ~the shard factor, matching the paper's "23% lower than GPU".
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/inference_engine.hh"
#include "llm/model_config.hh"

using namespace cxlpnm;

int
main()
{
    bench::header("Ablation: MP as pipeline vs tensor parallelism");

    const auto model = llm::ModelConfig::opt66b();
    llm::InferenceRequest req;
    req.inputTokens = 64;
    req.outputTokens = 16;
    core::PnmPlatformConfig pcfg;
    pcfg.channelGrouping = 16;

    // Baselines.
    const auto full = runPnmSingleDevice(model, req, pcfg, 1);
    const double dp_latency = full.genSeconds.back();

    // Tensor shard (what runPnmAppliance uses).
    const auto mp8 =
        runPnmAppliance(model, req, pcfg, core::ParallelismPlan{8, 1});

    // Pipeline reading: 8 shard devices in sequence. Each shard holds
    // 8 of the 64 layers; per-token latency is the sum of the shard
    // times plus one activation hop per boundary.
    core::D2dModel d2d;
    const double hop =
        d2d.reductionSeconds(2.0 * model.dModel, pcfg.link);
    const double pipe_latency = dp_latency + 8.0 * hop;

    std::printf("DP8 (single device does all layers): %7.2f ms/token\n",
                dp_latency * 1e3);
    std::printf("MP8 as pipeline (layer split):       %7.2f ms/token\n",
                pipe_latency * 1e3);
    std::printf("MP8 as tensor split (implemented):   %7.2f ms/token\n",
                mp8.tokenLatencySeconds * 1e3);

    bench::anchor("pipeline MP8 / DP8 latency (>= 1.0 always)", 1.0,
                  std::min(1.0, pipe_latency / dp_latency), 0.01);
    bench::anchor("tensor MP8 / DP8 latency (paper ~0.15)", 0.15,
                  mp8.tokenLatencySeconds / dp_latency, 0.35);

    std::printf("\nOnly the tensor reading can produce the paper's "
                "MP8 latency win over the\nGPU appliance; the pipeline "
                "reading is bounded below by DP8's latency.\n");
    return 0;
}
