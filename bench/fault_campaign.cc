/**
 * @file
 * Deterministic fault-injection campaign (§IX RAS, end to end).
 *
 * Two halves:
 *
 *  1. Device ladder - one PNM device per scenario, each scripted to
 *     exercise exactly one recovery tier: watchdog doorbell retry,
 *     watchdog device reset + program reload, poisoned-run doorbell
 *     retry, an ECC corrected/scrubbed bit-flip stream, and CXL
 *     link-layer CRC replay. Every scenario must complete its
 *     generation despite the faults.
 *
 *  2. Serving campaign - a data-parallel appliance serving a Poisson
 *     trace, clean vs. with per-group iteration faults, across several
 *     seeds fanned over a thread pool. Reports availability and the
 *     p99 token latency under faults vs. clean.
 *
 * The out= JSON is a pure function of the simulation (no wall clock,
 * no host info), so any two runs - any thread count - produce
 * byte-identical files; CI diffs threads=1 against threads=4.
 *
 *   fault_campaign [seed=42] [threads=0] [n=120] [seeds=4] [rate=0.02]
 *                  [model=opt-13b] [dp=4] [qps=0 (auto)]
 *                  [out=BENCH_faults.json] [check=0] [avail_min=0.90]
 *                  [trace=]
 *
 * `trace=<path>` additionally records the seed-0 faulty serving cell
 * as Chrome-trace JSON. The traced cell is one self-contained
 * deterministic simulation, so the trace bytes are identical for any
 * threads= value - the tracing counterpart of the out= guarantee.
 */

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/platform.hh"
#include "serve/cost_model.hh"
#include "serve/dispatcher.hh"
#include "serve/request_generator.hh"
#include "sim/config.hh"
#include "sim/fault.hh"
#include "sim/thread_pool.hh"
#include "sim/trace.hh"

using namespace cxlpnm;

namespace
{

bool
writeFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return true;
}

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    out += buf;
}

// ---- half 1: the device recovery ladder ----

struct DeviceScenario
{
    const char *name;
    const char *tier; // recovery mechanism the scenario demonstrates
    std::vector<fault::FaultSpec> specs;
    bool uncapEscalation = false; // keep singles correctable forever
};

struct DeviceResult
{
    std::string name;
    std::string tier;
    bool completed = false;
    std::uint64_t faultsInjected = 0;
    std::uint64_t watchdogTimeouts = 0;
    std::uint64_t doorbellRetries = 0;
    std::uint64_t deviceResets = 0;
    std::uint64_t programReloads = 0;
    std::uint64_t poisonedRuns = 0;
    std::uint64_t eccCorrected = 0;
    std::uint64_t eccPoisoned = 0;
    std::uint64_t eccSilent = 0;
    std::uint64_t eccScrubPasses = 0;
    std::uint64_t linkCrcErrors = 0;
    std::uint64_t linkReplays = 0;
    std::uint64_t linkPoisoned = 0;
};

DeviceResult
runDeviceScenario(const DeviceScenario &sc, std::uint64_t seed)
{
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    core::PnmPlatformConfig cfg;
    cfg.functionalBytes = 24ull * MiB;
    if (sc.uncapEscalation)
        cfg.ecc.latentEscalationThreshold = ~0ull;
    core::PnmDevice dev(eq, &root, "dev", cfg);

    // Load first, then arm: scripted access indices count from the
    // first post-load DMA, independent of the model-upload traffic.
    dev.library().loadModel(llm::ModelConfig::tiny(), 42, nullptr);
    eq.run();

    fault::FaultInjector inj(seed);
    for (const auto &s : sc.specs)
        inj.arm(s);
    dev.attachFaultInjector(&inj);

    DeviceResult r;
    r.name = sc.name;
    r.tier = sc.tier;
    dev.library().generate({1, 2, 3}, 4,
                           [&](std::vector<std::uint32_t> toks) {
                               r.completed = toks.size() == 4;
                           });
    eq.run();

    const auto &drv = dev.driver();
    r.faultsInjected = inj.totalFired();
    r.watchdogTimeouts = drv.watchdogTimeouts();
    r.doorbellRetries = drv.doorbellRetries();
    r.deviceResets = drv.deviceResets();
    r.programReloads = drv.programReloads();
    r.poisonedRuns = drv.poisonedRuns();
    if (const auto *ecc = dev.memory().eccEvents()) {
        r.eccCorrected = ecc->corrected();
        r.eccPoisoned = ecc->poisoned();
        r.eccSilent = ecc->silentCorruptions();
        r.eccScrubPasses = ecc->scrubPasses();
    }
    const auto &down = dev.link().channel(cxl::Direction::Downstream);
    const auto &up = dev.link().channel(cxl::Direction::Upstream);
    r.linkCrcErrors = down.crcErrors() + up.crcErrors();
    r.linkReplays = down.replays() + up.replays();
    r.linkPoisoned = down.poisonedTransfers() + up.poisonedTransfers();
    return r;
}

std::vector<DeviceScenario>
deviceLadder()
{
    using fault::FaultKind;
    using fault::FaultSpec;
    std::vector<DeviceScenario> ladder;
    ladder.push_back({"clean", "none", {}, false});
    ladder.push_back(
        {"watchdog_retry",
         "doorbell retry",
         {FaultSpec::scriptedAccess("dev.driver.launch",
                                    FaultKind::DeviceHang, 0)},
         false});
    ladder.push_back(
        {"device_reset",
         "device reset + program reload",
         {FaultSpec::scriptedAccess("dev.driver.launch",
                                    FaultKind::DeviceHang, 0),
          FaultSpec::scriptedAccess("dev.driver.launch",
                                    FaultKind::DeviceHang, 1),
          FaultSpec::scriptedAccess("dev.driver.launch",
                                    FaultKind::DeviceHang, 2)},
         false});
    ladder.push_back(
        {"lost_completion",
         "watchdog catches a dropped MSI-X",
         {FaultSpec::scriptedAccess("dev.driver.launch",
                                    FaultKind::DropCompletion, 0)},
         false});
    ladder.push_back(
        {"poison_retry",
         "poisoned run retried from the doorbell",
         {FaultSpec::scriptedAccess("dev.mem.read",
                                    FaultKind::DoubleBitFlip, 0)},
         false});
    ladder.push_back(
        {"ecc_stream",
         "on-die SEC corrects, ECS scrubs latent errors",
         {FaultSpec::probabilistic("dev.mem.read", FaultKind::BitFlip,
                                   0.3)},
         true});
    ladder.push_back(
        {"link_replay",
         "CXL flit CRC -> link-layer replay",
         // Scripted: host traffic during a short generation is only a
         // handful of flits, so probabilistic rates would mostly miss.
         {FaultSpec::scriptedAccess("dev.link.down.crc",
                                    FaultKind::LinkCrc, 0),
          FaultSpec::scriptedAccess("dev.link.up.crc",
                                    FaultKind::LinkCrc, 1)},
         false});
    return ladder;
}

// ---- half 2: the serving campaign ----

struct ServeCell
{
    bool faulty = false;
    std::uint64_t seed = 0;
    serve::ServeReport report;
    std::string faultLog;
};

ServeCell
runServeCell(bool faulty, std::uint64_t seed, double fault_rate,
             const llm::ModelConfig &model,
             const serve::BatchCostModel &cost, std::uint64_t kv_bytes,
             int dp, const serve::TraceConfig &trace_base,
             trace::Tracer *tracer = nullptr)
{
    serve::MetricsConfig mcfg;
    mcfg.tokenLatencyHi = 20.0;
    mcfg.tokenLatencyBuckets = 4000;
    serve::ServeMetrics metrics(nullptr, "serve", mcfg);

    serve::SchedulerConfig scfg;
    core::ParallelismPlan plan;
    plan.modelParallel = 1;
    plan.dataParallel = dp;
    serve::ApplianceDispatcher app(model, cost, plan, kv_bytes, scfg,
                                   metrics);

    fault::FaultInjector inj(seed);
    if (faulty) {
        for (int g = 0; g < dp; ++g)
            inj.arm(fault::FaultSpec::probabilistic(
                "app.group" + std::to_string(g) + ".iteration",
                fault::FaultKind::IterationFail, fault_rate));
    }
    app.attachFaultInjector(&inj, "app");
    if (tracer != nullptr)
        app.attachTracer(tracer, "app");

    serve::TraceConfig trace = trace_base;
    trace.seed = seed;
    serve::RequestGenerator gen(trace);
    while (!gen.exhausted())
        app.submit(gen.next());
    app.drain();

    ServeCell cell;
    cell.faulty = faulty;
    cell.seed = seed;
    cell.report = metrics.report(app.clockSeconds());
    cell.faultLog = inj.logString();
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    auto cfg = Config::fromArgs({argv + 1, argv + argc});
    const std::uint64_t seed = cfg.getInt("seed", 42);
    const unsigned threads =
        static_cast<unsigned>(cfg.getInt("threads", 0));
    const std::size_t n_requests = cfg.getInt("n", 120);
    const int n_seeds = cfg.getInt("seeds", 4);
    const double rate = cfg.getDouble("rate", 0.01);
    const int dp = cfg.getInt("dp", 4);
    const std::string out = cfg.getString("out", "");
    const bool check = cfg.getBool("check", false);
    const double avail_min = cfg.getDouble("avail_min", 0.90);
    const auto model =
        llm::ModelConfig::byName(cfg.getString("model", "opt-13b"));

    bench::header("Fault-injection campaign: " + model.name +
                  ", seed " + std::to_string(seed));

    // --- device recovery ladder (inline: each cell is milliseconds) ---
    const auto ladder = deviceLadder();
    std::vector<DeviceResult> device;
    std::printf("\nDevice recovery ladder (tiny model, 4 tokens):\n");
    std::printf("  %-16s %5s %5s %5s %5s %5s %6s %6s %6s %6s  %s\n",
                "scenario", "inj", "wdto", "retry", "reset", "psn",
                "eccC", "scrub", "crc", "rply", "done");
    for (const auto &sc : ladder) {
        device.push_back(runDeviceScenario(sc, seed));
        const auto &r = device.back();
        std::printf(
            "  %-16s %5llu %5llu %5llu %5llu %5llu %6llu %6llu %6llu "
            "%6llu  %s\n",
            r.name.c_str(),
            static_cast<unsigned long long>(r.faultsInjected),
            static_cast<unsigned long long>(r.watchdogTimeouts),
            static_cast<unsigned long long>(r.doorbellRetries),
            static_cast<unsigned long long>(r.deviceResets),
            static_cast<unsigned long long>(r.poisonedRuns),
            static_cast<unsigned long long>(r.eccCorrected),
            static_cast<unsigned long long>(r.eccScrubPasses),
            static_cast<unsigned long long>(r.linkCrcErrors),
            static_cast<unsigned long long>(r.linkReplays),
            r.completed ? "yes" : "NO");
    }

    // --- serving campaign ---
    core::PnmPlatformConfig pcfg;
    pcfg.channelGrouping = 8;

    serve::TraceConfig trace;
    trace.arrivals = serve::ArrivalProcess::Poisson;
    trace.numRequests = n_requests;
    trace.input = serve::LengthDistribution::fixed(64);
    trace.output = serve::LengthDistribution::fixed(64);
    const std::uint64_t full_ctx =
        trace.input.max() + trace.output.max();

    const auto cost =
        serve::calibratePnmCostModel(model, pcfg, full_ctx);
    const auto kv_bytes = serve::pnmKvCapacityBytes(model, pcfg);

    double qps = cfg.getDouble("qps", 0.0);
    if (qps <= 0.0) {
        const double serial_sec =
            cost.prefillSeconds(trace.input.max()) +
            trace.output.max() * cost.decodeSeconds(full_ctx);
        qps = 0.6 * dp / serial_sec; // comfortably sustainable
    }
    trace.requestsPerSec = qps;

    // Cells: clean + faulty for each seed, fanned over the pool. Each
    // cell owns its queue-free scheduler stack and injector, so results
    // are bit-deterministic regardless of worker count. The optional
    // tracer watches exactly one cell (seed-0 faulty, index 1) from
    // whichever worker runs it, so the trace inherits the same
    // thread-count independence.
    const std::string trace_path = cfg.getString("trace", "");
    trace::Tracer tracer;
    std::vector<ServeCell> cells(2 * n_seeds);
    ThreadPool::parallelFor(
        cells.size(), threads, [&](std::size_t i) {
            const bool faulty = i % 2 != 0;
            const std::uint64_t s = seed + i / 2;
            trace::Tracer *tr =
                (i == 1 && !trace_path.empty()) ? &tracer : nullptr;
            cells[i] = runServeCell(faulty, s, rate, model, cost,
                                    kv_bytes, dp, trace, tr);
        });

    if (!trace_path.empty()) {
        if (!tracer.writeFile(trace_path)) {
            std::fprintf(stderr, "fault_campaign: cannot write %s\n",
                         trace_path.c_str());
            return 1;
        }
        std::printf("\ntraced seed-0 faulty cell: %zu events on %zu "
                    "tracks -> %s\n",
                    tracer.eventCount(), tracer.trackCount(),
                    trace_path.c_str());
    }

    std::printf("\nServing campaign: %s, %d groups, %zu requests at "
                "%.2f req/s, iteration fault rate %.3f:\n",
                model.name.c_str(), dp, n_requests, qps, rate);
    std::printf("  %-6s %5s %5s %5s %5s %5s %9s %9s %7s\n", "mode",
                "seed", "done", "fail", "retry", "iterF", "p99(ms)",
                "degr(s)", "avail");
    double sum_avail = 0.0, min_avail = 1.0;
    for (const auto &c : cells) {
        const auto &r = c.report;
        std::printf("  %-6s %5llu %5llu %5llu %5llu %5llu %9.2f %9.3f "
                    "%7.4f\n",
                    c.faulty ? "faulty" : "clean",
                    static_cast<unsigned long long>(c.seed),
                    static_cast<unsigned long long>(r.completed),
                    static_cast<unsigned long long>(r.requestsFailed),
                    static_cast<unsigned long long>(r.requestRetries),
                    static_cast<unsigned long long>(r.iterationFailures),
                    r.tokenLatencyP99 * 1e3, r.degradedSeconds,
                    r.availability);
        if (c.faulty) {
            sum_avail += r.availability;
            min_avail = std::min(min_avail, r.availability);
        }
    }
    const double mean_avail = sum_avail / n_seeds;

    // Seed-0 pair is the headline p99 comparison.
    const auto &clean0 = cells[0].report;
    const auto &faulty0 = cells[1].report;
    std::printf("\n  p99 token latency: clean %.2f ms, under faults "
                "%.2f ms (%.2fx); mean availability %.4f\n",
                clean0.tokenLatencyP99 * 1e3,
                faulty0.tokenLatencyP99 * 1e3,
                faulty0.tokenLatencyP99 /
                    std::max(clean0.tokenLatencyP99, 1e-12),
                mean_avail);

    // --- deterministic JSON artifact ---
    std::string json;
    appendf(json, "{\n  \"benchmark\": \"fault_campaign\",\n");
    appendf(json, "  \"seed\": %llu,\n",
            static_cast<unsigned long long>(seed));
    appendf(json, "  \"device_scenarios\": [\n");
    for (std::size_t i = 0; i < device.size(); ++i) {
        const auto &r = device[i];
        appendf(json,
                "    {\"name\": \"%s\", \"tier\": \"%s\", "
                "\"completed\": %s,\n"
                "     \"faults_injected\": %llu, "
                "\"watchdog_timeouts\": %llu, "
                "\"doorbell_retries\": %llu,\n"
                "     \"device_resets\": %llu, "
                "\"program_reloads\": %llu, \"poisoned_runs\": %llu,\n"
                "     \"ecc_corrected\": %llu, \"ecc_poisoned\": %llu, "
                "\"ecc_silent\": %llu, \"ecc_scrub_passes\": %llu,\n"
                "     \"link_crc_errors\": %llu, "
                "\"link_replays\": %llu, \"link_poisoned\": %llu}%s\n",
                r.name.c_str(), r.tier.c_str(),
                r.completed ? "true" : "false",
                static_cast<unsigned long long>(r.faultsInjected),
                static_cast<unsigned long long>(r.watchdogTimeouts),
                static_cast<unsigned long long>(r.doorbellRetries),
                static_cast<unsigned long long>(r.deviceResets),
                static_cast<unsigned long long>(r.programReloads),
                static_cast<unsigned long long>(r.poisonedRuns),
                static_cast<unsigned long long>(r.eccCorrected),
                static_cast<unsigned long long>(r.eccPoisoned),
                static_cast<unsigned long long>(r.eccSilent),
                static_cast<unsigned long long>(r.eccScrubPasses),
                static_cast<unsigned long long>(r.linkCrcErrors),
                static_cast<unsigned long long>(r.linkReplays),
                static_cast<unsigned long long>(r.linkPoisoned),
                i + 1 < device.size() ? "," : "");
    }
    appendf(json, "  ],\n");
    appendf(json, "  \"serve\": {\n");
    appendf(json, "    \"model\": \"%s\",\n", model.name.c_str());
    appendf(json, "    \"groups\": %d,\n", dp);
    appendf(json, "    \"requests\": %zu,\n", n_requests);
    appendf(json, "    \"offered_qps\": %.9g,\n", qps);
    appendf(json, "    \"iteration_fault_rate\": %.9g,\n", rate);
    appendf(json, "    \"cells\": [\n");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto &c = cells[i];
        const auto &r = c.report;
        appendf(json,
                "      {\"mode\": \"%s\", \"seed\": %llu, "
                "\"completed\": %llu, \"failed\": %llu,\n"
                "       \"retries\": %llu, \"iteration_failures\": "
                "%llu, \"fault_log_entries\": %llu,\n"
                "       \"p99_token_seconds\": %.9g, "
                "\"throughput_tokens_per_sec\": %.9g,\n"
                "       \"degraded_seconds\": %.9g, "
                "\"availability\": %.9g}%s\n",
                c.faulty ? "faulty" : "clean",
                static_cast<unsigned long long>(c.seed),
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.requestsFailed),
                static_cast<unsigned long long>(r.requestRetries),
                static_cast<unsigned long long>(r.iterationFailures),
                static_cast<unsigned long long>(
                    std::count(c.faultLog.begin(), c.faultLog.end(),
                               '\n')),
                r.tokenLatencyP99, r.throughputTokensPerSec,
                r.degradedSeconds, r.availability,
                i + 1 < cells.size() ? "," : "");
    }
    appendf(json, "    ],\n");
    appendf(json, "    \"summary\": {\n");
    appendf(json, "      \"clean_p99_token_seconds\": %.9g,\n",
            clean0.tokenLatencyP99);
    appendf(json, "      \"faulty_p99_token_seconds\": %.9g,\n",
            faulty0.tokenLatencyP99);
    appendf(json, "      \"mean_availability\": %.9g,\n", mean_avail);
    appendf(json, "      \"min_availability\": %.9g\n", min_avail);
    appendf(json, "    }\n  }\n}\n");

    if (!out.empty()) {
        if (!writeFile(out, json)) {
            std::fprintf(stderr, "fault_campaign: cannot write %s\n",
                         out.c_str());
            return 1;
        }
        std::fprintf(stderr, "fault_campaign: wrote %s\n", out.c_str());
    }

    // --- check mode: the CI gate ---
    if (check) {
        int failures = 0;
        auto expect = [&](bool ok, const char *what) {
            if (!ok) {
                ++failures;
                std::fprintf(stderr, "CHECK FAILED: %s\n", what);
            }
        };
        auto byName = [&](const char *name) -> const DeviceResult & {
            for (const auto &r : device)
                if (r.name == name)
                    return r;
            std::fprintf(stderr, "missing scenario %s\n", name);
            std::exit(2);
        };
        const auto &clean = byName("clean");
        expect(clean.completed && clean.faultsInjected == 0 &&
                   clean.watchdogTimeouts == 0,
               "clean scenario is quiet and completes");
        const auto &retry = byName("watchdog_retry");
        expect(retry.completed && retry.doorbellRetries == 1 &&
                   retry.deviceResets == 0,
               "hang recovered by one doorbell retry");
        const auto &reset = byName("device_reset");
        expect(reset.completed && reset.deviceResets == 1 &&
                   reset.programReloads == 1,
               "persistent hang recovered by device reset");
        const auto &lost = byName("lost_completion");
        expect(lost.completed && lost.watchdogTimeouts == 1,
               "dropped completion caught by the watchdog");
        const auto &psn = byName("poison_retry");
        expect(psn.completed && psn.poisonedRuns == 1 &&
                   psn.doorbellRetries == 1,
               "poisoned run recovered by doorbell retry");
        const auto &ecc = byName("ecc_stream");
        expect(ecc.completed && ecc.eccCorrected > 0 &&
                   ecc.eccScrubPasses > 0 && ecc.eccSilent == 0,
               "bit-flip stream corrected and scrubbed, zero escapes");
        const auto &link = byName("link_replay");
        expect(link.completed && link.linkReplays > 0 &&
                   link.linkPoisoned == 0,
               "CRC errors replayed without poison");
        for (const auto &r : device)
            expect(r.eccSilent == 0,
                   "no silent corruption anywhere in the ladder");

        std::uint64_t iter_failures = 0;
        for (const auto &c : cells) {
            const auto &r = c.report;
            expect(r.completed + r.requestsFailed + r.rejected ==
                       n_requests,
                   "every request accounted for (done/failed/rejected)");
            if (c.faulty)
                iter_failures += r.iterationFailures;
            else
                expect(r.availability == 1.0 && r.requestsFailed == 0,
                       "clean serving cells are fully available");
        }
        expect(iter_failures > 0,
               "the faulty cells actually saw iteration faults");
        expect(min_avail >= avail_min,
               "availability under faults meets the floor");
        expect(faulty0.tokenLatencyP99 >= clean0.tokenLatencyP99,
               "faults cannot make the tail faster");

        if (failures != 0) {
            std::fprintf(stderr, "fault_campaign: %d checks failed\n",
                         failures);
            return 1;
        }
        std::printf("\nAll campaign checks passed.\n");
    }
    return 0;
}
