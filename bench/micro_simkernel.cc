/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths: event
 * queue scheduling, FP16 conversion/arithmetic, the adder-tree
 * reduction, and DRAM-channel request streaming. These bound how fast
 * the big Fig. 10/11 simulations can run.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "accel/functional.hh"
#include "dram/module.hh"
#include "numeric/fp16.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"

using namespace cxlpnm;

namespace
{

void
BM_EventQueueScheduleFire(benchmark::State &state)
{
    EventQueue eq;
    int fired = 0;
    Event ev("e", [&] { ++fired; });
    for (auto _ : state) {
        eq.schedule(ev, eq.now() + 10);
        eq.step();
    }
    benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EventQueueScheduleFire);

void
BM_EventQueueOneShot(benchmark::State &state)
{
    EventQueue eq;
    for (auto _ : state) {
        eq.scheduleOneShot("o", eq.now() + 1, [] {});
        eq.step();
    }
}
BENCHMARK(BM_EventQueueOneShot);

/**
 * Push/pop throughput with a populated heap: schedule a burst of
 * one-shots at staggered ticks, then drain. One item = one event
 * through the full schedule -> sift -> dispatch -> recycle path.
 */
void
BM_EventQueueBurstPushPop(benchmark::State &state)
{
    const std::size_t burst = static_cast<std::size_t>(state.range(0));
    EventQueue eq;
    std::uint64_t fired = 0;
    for (auto _ : state) {
        for (std::size_t i = 0; i < burst; ++i)
            eq.scheduleOneShot("b", eq.now() + 1 + (i % 13),
                               [&] { ++fired; });
        eq.run();
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(state.iterations() * burst);
}
BENCHMARK(BM_EventQueueBurstPushPop)->Arg(64)->Arg(1024);

/**
 * Steady-state heap allocations per dispatched one-shot. The recycle
 * pool should absorb every round after the first, so allocs_per_event
 * must sit at ~0 and pool_reuse_rate at ~1 (the tentpole's
 * zero-allocation claim, measured rather than asserted).
 */
void
BM_EventQueueOneShotSteadyState(benchmark::State &state)
{
    constexpr std::size_t burst = 64;
    EventQueue eq;
    // Warm the pool to the working-set size before timing.
    for (std::size_t i = 0; i < burst; ++i)
        eq.scheduleOneShot("w", eq.now() + 1, [] {});
    eq.run();

    const std::uint64_t allocs0 = eq.oneShotHeapAllocs();
    const std::uint64_t fired0 = eq.eventsFired();
    for (auto _ : state) {
        for (std::size_t i = 0; i < burst; ++i)
            eq.scheduleOneShot("s", eq.now() + 1 + (i % 5), [] {});
        eq.run();
    }
    const double dispatched =
        static_cast<double>(eq.eventsFired() - fired0);
    state.SetItemsProcessed(static_cast<std::int64_t>(dispatched));
    state.counters["allocs_per_event"] = benchmark::Counter(
        static_cast<double>(eq.oneShotHeapAllocs() - allocs0) /
        std::max(1.0, dispatched));
    state.counters["pool_reuse_rate"] = benchmark::Counter(
        static_cast<double>(eq.oneShotPoolReuses()) /
        std::max<double>(1.0, static_cast<double>(
                                  eq.oneShotPoolReuses() +
                                  eq.oneShotHeapAllocs())));
}
BENCHMARK(BM_EventQueueOneShotSteadyState);

void
BM_Fp16FromFloat(benchmark::State &state)
{
    SplitMix64 rng(1);
    std::vector<float> vals(4096);
    for (auto &v : vals)
        v = static_cast<float>(rng.nextDouble(-100, 100));
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(Half(vals[i++ & 4095]).bits());
    }
}
BENCHMARK(BM_Fp16FromFloat);

/**
 * Bulk equivalent of BM_Fp16FromFloat: one element of work is still one
 * float -> half conversion, but done through the span kernel the hot
 * paths use (8 lanes per F16C instruction where available). Per-item
 * time is comparable against BM_Fp16FromFloat directly.
 */
void
BM_Fp16SpanFromFloat(benchmark::State &state)
{
    SplitMix64 rng(1);
    std::vector<float> vals(4096);
    for (auto &v : vals)
        v = static_cast<float>(rng.nextDouble(-100, 100));
    std::vector<Half> out(4096);
    for (auto _ : state) {
        fp16::fromFloatSpan(vals.data(), out.data(), vals.size());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * vals.size());
    state.SetLabel(fp16::usingHardwareF16c() ? "f16c" : "scalar");
}
BENCHMARK(BM_Fp16SpanFromFloat);

void
BM_Fp16SpanToFloat(benchmark::State &state)
{
    SplitMix64 rng(2);
    std::vector<Half> vals(4096);
    for (auto &v : vals)
        v = Half(static_cast<float>(rng.nextDouble(-100, 100)));
    std::vector<float> out(4096);
    for (auto _ : state) {
        fp16::toFloatSpan(vals.data(), out.data(), vals.size());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * vals.size());
    state.SetLabel(fp16::usingHardwareF16c() ? "f16c" : "scalar");
}
BENCHMARK(BM_Fp16SpanToFloat);

void
BM_Fp16Multiply(benchmark::State &state)
{
    Half a(1.5f), b(0.333f);
    for (auto _ : state) {
        a = a * b + Half(1.0f);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_Fp16Multiply);

void
BM_AddTreeReduce(benchmark::State &state)
{
    const std::size_t n = state.range(0);
    std::vector<Half> vals(n, Half(0.25f));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            accel::functional::addTreeReduce(vals.data(), n));
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AddTreeReduce)->Arg(128)->Arg(1024)->Arg(8192);

void
BM_DramModuleStreaming(benchmark::State &state)
{
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    dram::MultiChannelMemory mem(eq, &root, "mem",
                                 dram::DramTechSpec::lpddr5x(), 256,
                                 static_cast<int>(state.range(0)));
    for (auto _ : state) {
        dram::MemoryRequest r;
        r.addr = 0;
        r.bytes = 1 << 20;
        bool done = false;
        r.onComplete = [&] { done = true; };
        mem.access(std::move(r));
        eq.run();
        benchmark::DoNotOptimize(done);
    }
    state.SetLabel("channelGrouping=" +
                   std::to_string(state.range(0)));
}
BENCHMARK(BM_DramModuleStreaming)->Arg(1)->Arg(8)->Arg(16);

} // namespace

BENCHMARK_MAIN();
