/**
 * @file
 * Fig. 3 reproduction: kernel execution time vs host->device memory
 * copy time for an A100 running OPT-30B inference (model does not fit
 * in 40 GB, so every stage streams its weights from pageable host
 * memory, DeepSpeed/FlexGen style).
 *
 * Paper anchor: ~99% of execution time is memcpy.
 */

#include <cstdio>

#include "bench_common.hh"
#include "gpu/inference.hh"
#include "llm/model_config.hh"

using namespace cxlpnm;

int
main()
{
    bench::header("Fig. 3: A100 kernel vs memcpy time, OPT-30B");

    const auto model = llm::ModelConfig::opt30b();
    llm::InferenceRequest req;
    req.inputTokens = 64;
    req.outputTokens = 128; // breakdown is stable in token count

    const auto spec = gpu::GpuSpec::a100_40g();
    const gpu::GpuCalibration calib;
    const bool fits = gpu::modelFits(model, req, spec, 1);
    std::printf("OPT-30B weights: %.1f GB vs %.0f GB device memory "
                "-> %s\n",
                model.weightBytes() / GB, spec.memBytes / GB,
                fits ? "fits (unexpected!)" : "offload required");

    const auto r = gpu::runGpuInference(model, req, spec, calib, 1);
    const double copy = r.copyFraction;
    const double kernel = 1.0 - copy;

    std::printf("\n%-24s %10.2f%%\n", "host->device memcpy",
                copy * 100.0);
    std::printf("%-24s %10.2f%%\n", "kernel execution + other",
                kernel * 100.0);
    std::printf("per-token latency: %.3f s (PCIe pageable copy at "
                "%.1f GB/s)\n",
                r.genSeconds.back(),
                calib.pageableCopyBytesPerSec / GB);

    bench::anchor("memcpy share of runtime (paper ~0.99)", 0.99, copy,
                  0.02);

    // Contrast: OPT-13B fits, so the copy share collapses to zero.
    const auto r13 = gpu::runGpuInference(llm::ModelConfig::opt13b(),
                                          req, spec, calib, 1);
    std::printf("\ncontrol: OPT-13B (fits) memcpy share %.2f%%\n",
                r13.copyFraction * 100.0);
    return 0;
}
