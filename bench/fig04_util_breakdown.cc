/**
 * @file
 * Fig. 4 reproduction: A100 utilisation and execution-time breakdown
 * for OPT-6.7B, L_in = 32, 1024 output tokens.
 *
 * Utilisation semantics (see DESIGN.md §7): the paper plots nvidia-smi
 * readings, which are not reproducible in simulation. We report
 *  (a) sum stage: kernel-active fraction (GEMM bursts keep SMs busy;
 *      paper: up to 94%), and peak GEMM FLOP efficiency;
 *  (b) gen stage: achieved/peak FLOPs of the GEMV kernels (memory-bound
 *      by orders of magnitude; paper: under 25%).
 * Breakdown: fraction of end-to-end time in GEMV-shaped kernels
 * (paper: 83%).
 */

#include <cstdio>

#include "bench_common.hh"
#include "gpu/inference.hh"
#include "llm/model_config.hh"

using namespace cxlpnm;

int
main()
{
    bench::header("Fig. 4: A100 utilisation & breakdown, OPT-6.7B");

    const auto model = llm::ModelConfig::opt6_7b();
    llm::InferenceRequest req;
    req.inputTokens = 32;
    req.outputTokens = 1024;

    const auto spec = gpu::GpuSpec::a100_40g();
    const gpu::GpuCalibration calib;

    // Stage-resolved views.
    const auto sum =
        gpu::runStage(llm::sumStageOps(model, req.inputTokens), spec,
                      calib, 1, false);
    const double sum_active = sum.kernelSeconds / sum.seconds;

    const auto r = gpu::runGpuInference(model, req, spec, calib, 1);

    std::printf("(a) utilisation\n");
    std::printf("  sum stage  kernel-active fraction : %6.1f%%\n",
                sum_active * 100.0);
    std::printf("  sum stage  peak GEMM FLOP efficiency: %6.1f%%\n",
                r.sumMaxComputeUtil * 100.0);
    std::printf("  gen stages peak GEMV FLOP efficiency: %6.2f%%\n",
                r.genMaxComputeUtil * 100.0);

    std::printf("\n(b) execution-time breakdown (GPU timeline)\n");
    // The paper's breakdown is over the GPU timeline; exclude the
    // host-side framework gap between tokens from the denominator.
    const double fw = calib.frameworkPerTokenSec * req.outputTokens;
    const double gemv = r.gemvTimeFraction * r.totalSeconds /
        (r.totalSeconds - fw);
    std::printf("  GEMV-shaped kernels : %6.1f%%\n", gemv * 100.0);
    std::printf("  everything else     : %6.1f%%\n",
                (1.0 - gemv) * 100.0);

    // nvidia-smi's coarse sampling reads a packed kernel burst as
    // ~busy; our kernel-active fraction under-reads it by the launch
    // gaps, hence the wide band (DESIGN.md section 7).
    bench::anchorAbs("sum kernel-active (paper 'up to 0.94')", 0.94,
                     sum_active, 0.18);
    std::printf("  %-46s paper <0.25   measured %8.4f  [%s]\n",
                "gen GEMV utilisation", r.genMaxComputeUtil,
                r.genMaxComputeUtil < 0.25 ? "within band"
                                           : "OUTSIDE BAND");
    bench::anchorAbs("GEMV share of runtime (paper 0.83)", 0.83, gemv,
                     0.12);
    return 0;
}
