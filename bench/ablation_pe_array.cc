/**
 * @file
 * Ablation for §V-C enhancement #1: the 64x32 PE array for GEMM.
 *
 * DFX's adder-tree-only MFU processes the sum stage token by token,
 * re-streaming every weight for each input token (GEMV semantics). The
 * PE array loads activations into the RF and streams weights once,
 * turning the sum stage into compute-bound GEMMs. The paper observes
 * that without it the sum stage dominates as L_in grows.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/inference_engine.hh"
#include "llm/model_config.hh"

using namespace cxlpnm;

int
main()
{
    bench::header("Ablation: PE array vs adder-tree-only sum stage");

    const auto model = llm::ModelConfig::opt13b();
    core::PnmPlatformConfig pcfg;
    pcfg.channelGrouping = 8;

    std::printf("%8s %16s %18s %10s\n", "L_in", "PEA sum (s)",
                "adder-tree (s)", "speedup");

    for (std::uint64_t l_in : {16, 64, 256}) {
        // With the PE array: the real sum-stage program.
        llm::InferenceRequest req;
        req.inputTokens = l_in;
        req.outputTokens = 1;
        const auto pea = runPnmSingleDevice(model, req, pcfg);

        // DFX emulation: L_in sequential single-token passes, each
        // streaming all weights (GEMV-only MFU).
        llm::InferenceRequest dfx_req;
        dfx_req.inputTokens = 1;
        dfx_req.outputTokens = l_in;
        const auto dfx = runPnmSingleDevice(model, dfx_req, pcfg);
        double dfx_sum = 0.0;
        for (double g : dfx.genSeconds)
            dfx_sum += g;

        std::printf("%8llu %16.3f %18.3f %9.2fx\n",
                    static_cast<unsigned long long>(l_in),
                    pea.sumSeconds, dfx_sum, dfx_sum / pea.sumSeconds);
    }

    std::printf("\nThe speedup grows with L_in: exactly the latency/"
                "throughput bottleneck\nthe paper reports for DFX "
                "without a dedicated GEMM unit (§V-C).\n");
    return 0;
}
