/**
 * @file
 * Overload-protection campaign: the serving tier pushed 2-4x past its
 * measured capacity, with and without the protection stack.
 *
 * Phase 0 measures capacity: a back-to-back burst (everything arrives
 * at once) drains at the appliance's saturation token rate, which
 * anchors every other cell's offered load and the TTFT SLO.
 *
 * The campaign cells then compare, at identical arrival streams:
 *
 *  - capacity      0.8x saturation, Poisson, no protection - the
 *                  goodput the appliance can actually deliver.
 *  - overN_open    Nx saturation, bursty (MMPP), no protection: the
 *                  FCFS queue grows without bound and nearly every
 *                  request blows its TTFT SLO - the congestion cliff.
 *  - overN_prot    the same stream behind the full stack: per-tenant
 *                  token buckets + queue-depth admission gate,
 *                  deadline-aware shedding, brownout ladder.
 *  - over4_shed    shedding + brownout alone (no admission gate):
 *                  deadline estimates turn guaranteed SLO misses into
 *                  typed Shed terminations before they burn capacity.
 *  - breaker       moderate load with scripted whole-group fail-stop
 *                  faults; the per-group circuit breaker trips and the
 *                  dispatcher routes around the open group.
 *
 * check=1 enforces the paper-level claims: protected goodput stays at
 * >= goodput_floor (default 0.9) of measured capacity while the
 * unprotected 4x cell collapses below it, protected strictly beats
 * unprotected at every overload factor, the p99 TTFT of admitted
 * requests stays bounded near the SLO, and every cell satisfies the
 * accounting identity submitted = completed + shed + timed-out +
 * throttled + rejected + failed.
 *
 * The out= JSON is a pure function of the simulation (no wall clock,
 * no host info), so any two runs - any thread count - produce
 * byte-identical files; CI diffs threads=1 against threads=4.
 *
 *   overload_campaign [seed=42] [threads=0] [n=160] [dp=2]
 *                     [model=opt-13b] [out=BENCH_overload.json]
 *                     [check=0] [goodput_floor=0.9] [trace=]
 *
 * `trace=<path>` records the protected 4x cell as Chrome-trace JSON
 * (shed/timeout instants, brownout-level counter included); one
 * self-contained cell, so the bytes are thread-count independent.
 */

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/platform.hh"
#include "serve/cost_model.hh"
#include "serve/dispatcher.hh"
#include "serve/request_generator.hh"
#include "sim/config.hh"
#include "sim/fault.hh"
#include "sim/thread_pool.hh"
#include "sim/trace.hh"

using namespace cxlpnm;

namespace
{

bool
writeFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return true;
}

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    out += buf;
}

constexpr std::uint64_t kInputTokens = 64;
constexpr std::uint64_t kOutputTokens = 64;
constexpr std::size_t kMaxBatch = 8;

/** Everything a cell needs besides its own knobs. */
struct Shared
{
    llm::ModelConfig model;
    serve::BatchCostModel cost;
    std::uint64_t kvBytes = 0;
    int dp = 2;
    std::uint64_t seed = 42;
    double satTokensPerSec = 0.0; // phase-0 measured capacity
    double satQps = 0.0;          // ... in requests/sec
    double sloTtft = 0.0;         // TTFT SLO = time to serve 40 reqs
    double burstDwell = 0.0;      // MMPP ON/OFF mean dwell
};

struct CellSpec
{
    std::string name;
    double qps = 0.0; // Poisson rate, or the MMPP ON-phase rate
    bool bursty = false;
    std::size_t n = 0;
    double deadline = 0.0; // TTFT deadline stamped on requests
    bool admission = false;
    bool shed = false;
    bool brownout = false;
    bool breaker = false;
    bool faults = false; // scripted fail-stop + straggler script
};

struct CellResult
{
    CellSpec spec;
    serve::ServeReport report;
    std::uint64_t breakerLogLines = 0;
};

CellResult
runCell(const CellSpec &sp, const Shared &sh,
        trace::Tracer *tracer = nullptr)
{
    serve::MetricsConfig mcfg;
    mcfg.tokenLatencyHi = 20.0;
    mcfg.tokenLatencyBuckets = 4000;
    mcfg.sloTtftSeconds = sh.sloTtft;
    serve::ServeMetrics metrics(nullptr, "serve", mcfg);

    serve::SchedulerConfig scfg;
    scfg.maxBatch = kMaxBatch;
    if (sp.shed) {
        scfg.shed.enabled = true;
        scfg.shed.queueTimeoutSeconds = sh.sloTtft;
        scfg.shed.estimateMargin = 1.0;
    }
    if (sp.brownout) {
        scfg.brownout.enabled = true;
        scfg.brownout.queueHighWatermark = 3 * kMaxBatch;
        scfg.brownout.queueLowWatermark = 4;
        scfg.brownout.sustainIterations = 4;
        scfg.brownout.maxLevel = 2;
        scfg.brownout.contextCapFactor = 0.5;
        scfg.brownout.batchCapFactor = 0.75;
    }

    core::ParallelismPlan plan;
    plan.modelParallel = 1;
    plan.dataParallel = sh.dp;
    serve::ApplianceDispatcher app(sh.model, sh.cost, plan, sh.kvBytes,
                                   scfg, metrics);

    if (sp.admission || sp.breaker) {
        serve::AdmissionConfig acfg;
        acfg.enabled = sp.admission;
        // Per-tenant sustained rate well under a fair capacity share
        // so heavy tenants visibly throttle; the queue-depth gate
        // bounds the wait of everything that does get in.
        acfg.tenantRatePerSec = 0.4 * sh.satQps;
        acfg.tenantBurst = 8.0;
        acfg.maxQueueDepth =
            2 * kMaxBatch * static_cast<std::uint64_t>(sh.dp);
        serve::CircuitBreakerConfig bcfg;
        bcfg.enabled = sp.breaker;
        bcfg.windowSize = 8;
        bcfg.failureThreshold = 2;
        bcfg.latencyThresholdSeconds = 0.0;
        bcfg.backoffBaseSeconds = 1.0;
        bcfg.backoffMaxSeconds = 8.0;
        bcfg.jitterFraction = 0.25;
        bcfg.seed = sh.seed;
        app.configureOverload(acfg, bcfg);
    }

    fault::FaultInjector inj(sh.seed);
    if (sp.faults) {
        // Two consecutive whole-group outages on group 0 trip its
        // breaker (threshold 2); a straggler iteration on group 1
        // stretches its tail without tripping anything.
        inj.arm(fault::FaultSpec::scriptedAccess(
            "app.group0.iteration", fault::FaultKind::GroupFailStop,
            2));
        inj.arm(fault::FaultSpec::scriptedAccess(
            "app.group0.iteration", fault::FaultKind::GroupFailStop,
            3));
        inj.arm(fault::FaultSpec::scriptedAccess(
            "app.group1.iteration", fault::FaultKind::IterationSlow,
            6));
        app.attachFaultInjector(&inj, "app");
    }
    if (tracer != nullptr)
        app.attachTracer(tracer, "app");

    serve::TraceConfig trace;
    trace.arrivals = sp.bursty ? serve::ArrivalProcess::Bursty
                               : serve::ArrivalProcess::Poisson;
    trace.requestsPerSec = sp.qps;
    trace.numRequests = sp.n;
    trace.input = serve::LengthDistribution::fixed(kInputTokens);
    trace.output = serve::LengthDistribution::fixed(kOutputTokens);
    trace.seed = sh.seed;
    trace.numTenants = 4;
    trace.ttftDeadlineSeconds = sp.deadline;
    if (sp.bursty) {
        trace.burstOnSeconds = sh.burstDwell;
        trace.burstOffSeconds = sh.burstDwell;
        trace.burstOffRateFraction = 0.0;
    }

    serve::RequestGenerator gen(trace);
    while (!gen.exhausted())
        app.submit(gen.next());
    app.drain();

    CellResult r;
    r.spec = sp;
    r.report = metrics.report(app.clockSeconds());
    for (std::size_t g = 0; g < app.groupCount(); ++g)
        if (const auto *b = app.breaker(g))
            r.breakerLogLines += static_cast<std::uint64_t>(
                std::count(b->log().begin(), b->log().end(), '\n'));
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    auto cfg = Config::fromArgs({argv + 1, argv + argc});
    const std::uint64_t seed = cfg.getInt("seed", 42);
    const unsigned threads =
        static_cast<unsigned>(cfg.getInt("threads", 0));
    const std::size_t n_requests = cfg.getInt("n", 160);
    const int dp = cfg.getInt("dp", 2);
    const std::string out = cfg.getString("out", "");
    const bool check = cfg.getBool("check", false);
    const double floor = cfg.getDouble("goodput_floor", 0.9);
    const std::string trace_path = cfg.getString("trace", "");
    const auto model =
        llm::ModelConfig::byName(cfg.getString("model", "opt-13b"));

    bench::header("Overload-protection campaign: " + model.name +
                  ", seed " + std::to_string(seed));

    core::PnmPlatformConfig pcfg;
    pcfg.channelGrouping = 8;
    const std::uint64_t full_ctx = kInputTokens + kOutputTokens;

    Shared sh;
    sh.model = model;
    sh.cost = serve::calibratePnmCostModel(model, pcfg, full_ctx);
    sh.kvBytes = serve::pnmKvCapacityBytes(model, pcfg);
    sh.dp = dp;
    sh.seed = seed;

    // --- phase 0: measure capacity with a back-to-back burst ---
    CellSpec probe;
    probe.name = "probe";
    probe.qps = 1e6; // everything arrives (effectively) at once
    probe.n = n_requests;
    const CellResult probe_r = runCell(probe, sh);
    sh.satTokensPerSec = probe_r.report.throughputTokensPerSec;
    sh.satQps =
        sh.satTokensPerSec / static_cast<double>(kOutputTokens);
    // SLO: the time the saturated appliance needs to serve 40
    // requests - generous for a bounded queue, hopeless for an
    // unbounded one.
    sh.sloTtft =
        40.0 * static_cast<double>(kOutputTokens) / sh.satTokensPerSec;
    sh.burstDwell = sh.sloTtft / 2.0;

    std::printf("\nMeasured capacity: %.1f tokens/s (%.2f req/s); "
                "TTFT SLO %.3f s\n",
                sh.satTokensPerSec, sh.satQps, sh.sloTtft);

    // --- phase 1: the campaign cells ---
    // The MMPP ON rate is 2x the target mean (equal ON/OFF dwell with
    // a silent OFF phase halves the average), so each ladder step
    // offers factor x capacity on average with 2-factor-x bursts.
    std::vector<CellSpec> specs;
    auto ladder = [&](const char *name, double factor, bool prot) {
        CellSpec c;
        c.name = name;
        c.qps = 2.0 * factor * sh.satQps;
        c.bursty = true;
        c.n = n_requests;
        c.deadline = prot ? sh.sloTtft : 0.0;
        c.admission = c.shed = c.brownout = prot;
        specs.push_back(c);
    };
    {
        CellSpec c;
        c.name = "capacity";
        c.qps = 0.8 * sh.satQps;
        c.n = n_requests;
        specs.push_back(c);
    }
    ladder("over2_open", 2.0, false);
    ladder("over2_prot", 2.0, true);
    ladder("over4_open", 4.0, false);
    ladder("over4_prot", 4.0, true);
    {
        CellSpec c; // shedding alone, no admission gate
        c.name = "over4_shed";
        c.qps = 2.0 * 4.0 * sh.satQps;
        c.bursty = true;
        c.n = n_requests;
        c.deadline = sh.sloTtft;
        c.shed = c.brownout = true;
        specs.push_back(c);
    }
    {
        CellSpec c;
        c.name = "breaker";
        c.qps = 0.7 * sh.satQps;
        c.n = n_requests;
        c.breaker = true;
        c.faults = true;
        specs.push_back(c);
    }

    // Each cell owns its whole serving stack, so results are
    // bit-deterministic regardless of worker count. The optional
    // tracer watches exactly one cell (the protected 4x one) from
    // whichever worker runs it.
    trace::Tracer tracer;
    std::vector<CellResult> cells(specs.size());
    ThreadPool::parallelFor(
        specs.size(), threads, [&](std::size_t i) {
            trace::Tracer *tr =
                (specs[i].name == "over4_prot" && !trace_path.empty())
                    ? &tracer
                    : nullptr;
            cells[i] = runCell(specs[i], sh, tr);
        });

    if (!trace_path.empty()) {
        if (!tracer.writeFile(trace_path)) {
            std::fprintf(stderr, "overload_campaign: cannot write %s\n",
                         trace_path.c_str());
            return 1;
        }
        std::printf("\ntraced over4_prot cell: %zu events on %zu "
                    "tracks -> %s\n",
                    tracer.eventCount(), tracer.trackCount(),
                    trace_path.c_str());
    }

    std::printf("\n  %-10s %5s %5s %5s %5s %5s %9s %9s %7s %5s %5s\n",
                "cell", "done", "shed", "tmo", "thr", "fail",
                "goodput", "ttftP99", "sloAtt", "brn", "brkr");
    auto byName = [&](const char *name) -> const CellResult & {
        for (const auto &c : cells)
            if (c.spec.name == name)
                return c;
        std::fprintf(stderr, "missing cell %s\n", name);
        std::exit(2);
    };
    for (const auto &c : cells) {
        const auto &r = c.report;
        std::printf(
            "  %-10s %5llu %5llu %5llu %5llu %5llu %9.1f %9.3f "
            "%7.4f %5llu %5llu\n",
            c.spec.name.c_str(),
            static_cast<unsigned long long>(r.completed),
            static_cast<unsigned long long>(r.shedRequests),
            static_cast<unsigned long long>(r.timedOutRequests),
            static_cast<unsigned long long>(r.throttledRequests),
            static_cast<unsigned long long>(r.requestsFailed),
            r.goodputTokensPerSec, r.ttftP99, r.sloAttainment,
            static_cast<unsigned long long>(r.brownoutPeakLevel),
            static_cast<unsigned long long>(r.breakerOpens));
    }

    const auto &capacity = byName("capacity").report;
    std::printf("\n  capacity goodput %.1f tok/s; protected 4x %.1f "
                "(%.0f%%), unprotected 4x %.1f (%.0f%%)\n",
                capacity.goodputTokensPerSec,
                byName("over4_prot").report.goodputTokensPerSec,
                100.0 * byName("over4_prot").report.goodputTokensPerSec /
                    capacity.goodputTokensPerSec,
                byName("over4_open").report.goodputTokensPerSec,
                100.0 * byName("over4_open").report.goodputTokensPerSec /
                    capacity.goodputTokensPerSec);

    // --- deterministic JSON artifact ---
    std::string json;
    appendf(json, "{\n  \"benchmark\": \"overload_campaign\",\n");
    appendf(json, "  \"seed\": %llu,\n",
            static_cast<unsigned long long>(seed));
    appendf(json, "  \"model\": \"%s\",\n", model.name.c_str());
    appendf(json, "  \"groups\": %d,\n", dp);
    appendf(json, "  \"requests\": %zu,\n", n_requests);
    appendf(json, "  \"capacity\": {\n");
    appendf(json, "    \"saturation_tokens_per_sec\": %.9g,\n",
            sh.satTokensPerSec);
    appendf(json, "    \"saturation_qps\": %.9g,\n", sh.satQps);
    appendf(json, "    \"slo_ttft_seconds\": %.9g\n  },\n", sh.sloTtft);
    appendf(json, "  \"cells\": [\n");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto &c = cells[i];
        const auto &r = c.report;
        appendf(json,
                "    {\"name\": \"%s\", \"offered_qps\": %.9g, "
                "\"submitted\": %llu,\n"
                "     \"completed\": %llu, \"shed\": %llu, "
                "\"timed_out\": %llu, \"throttled\": %llu,\n"
                "     \"rejected\": %llu, \"failed\": %llu, "
                "\"brownout_peak_level\": %llu,\n"
                "     \"breaker_opens\": %llu, "
                "\"breaker_log_lines\": %llu,\n"
                "     \"goodput_tokens_per_sec\": %.9g, "
                "\"throughput_tokens_per_sec\": %.9g,\n"
                "     \"ttft_p99_seconds\": %.9g, "
                "\"slo_attainment\": %.9g, "
                "\"served_fraction\": %.9g}%s\n",
                c.spec.name.c_str(), c.spec.qps,
                static_cast<unsigned long long>(r.submitted),
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.shedRequests),
                static_cast<unsigned long long>(r.timedOutRequests),
                static_cast<unsigned long long>(r.throttledRequests),
                static_cast<unsigned long long>(r.rejected),
                static_cast<unsigned long long>(r.requestsFailed),
                static_cast<unsigned long long>(r.brownoutPeakLevel),
                static_cast<unsigned long long>(r.breakerOpens),
                static_cast<unsigned long long>(c.breakerLogLines),
                r.goodputTokensPerSec, r.throughputTokensPerSec,
                r.ttftP99, r.sloAttainment, r.servedFraction,
                i + 1 < cells.size() ? "," : "");
    }
    appendf(json, "  ],\n");
    appendf(json, "  \"summary\": {\n");
    appendf(json, "    \"capacity_goodput\": %.9g,\n",
            capacity.goodputTokensPerSec);
    appendf(json, "    \"protected_over_capacity_2x\": %.9g,\n",
            byName("over2_prot").report.goodputTokensPerSec /
                capacity.goodputTokensPerSec);
    appendf(json, "    \"protected_over_capacity_4x\": %.9g,\n",
            byName("over4_prot").report.goodputTokensPerSec /
                capacity.goodputTokensPerSec);
    appendf(json, "    \"unprotected_over_capacity_4x\": %.9g\n",
            byName("over4_open").report.goodputTokensPerSec /
                capacity.goodputTokensPerSec);
    appendf(json, "  }\n}\n");

    if (!out.empty()) {
        if (!writeFile(out, json)) {
            std::fprintf(stderr, "overload_campaign: cannot write %s\n",
                         out.c_str());
            return 1;
        }
        std::fprintf(stderr, "overload_campaign: wrote %s\n",
                     out.c_str());
    }

    // --- check mode: the CI gate ---
    if (check) {
        int failures = 0;
        auto expect = [&](bool ok, const char *what) {
            if (!ok) {
                ++failures;
                std::fprintf(stderr, "CHECK FAILED: %s\n", what);
            }
        };

        for (const auto &c : cells) {
            const auto &r = c.report;
            expect(r.submitted == n_requests,
                   "every arrival was offered (submitted == n)");
            expect(r.submitted == r.completed + r.shedRequests +
                                      r.timedOutRequests +
                                      r.throttledRequests + r.rejected +
                                      r.requestsFailed,
                   "accounting identity: submitted = completed + shed "
                   "+ timed-out + throttled + rejected + failed");
        }

        expect(capacity.sloAttainment >= 0.95,
               "at 0.8x capacity (no protection) nearly everything "
               "meets the SLO");
        expect(capacity.shedRequests == 0 &&
                   capacity.throttledRequests == 0,
               "the capacity cell never sheds or throttles");

        for (const char *factor : {"2", "4"}) {
            const auto &open =
                byName((std::string("over") + factor + "_open").c_str())
                    .report;
            const auto &prot =
                byName((std::string("over") + factor + "_prot").c_str())
                    .report;
            expect(prot.goodputTokensPerSec >=
                       floor * capacity.goodputTokensPerSec,
                   "protected goodput holds the capacity floor");
            expect(prot.goodputTokensPerSec >
                       open.goodputTokensPerSec,
                   "protection strictly beats the open cell");
            expect(prot.ttftP99 <= 1.25 * sh.sloTtft,
                   "admitted p99 TTFT stays bounded near the SLO");
            expect(prot.throttledRequests > 0,
                   "the admission gate visibly throttled someone");
        }
        const auto &open4 = byName("over4_open").report;
        expect(open4.goodputTokensPerSec <
                   floor * capacity.goodputTokensPerSec,
               "unprotected 4x overload collapses below the floor");

        const auto &shed4 = byName("over4_shed").report;
        expect(shed4.shedRequests + shed4.timedOutRequests > 0,
               "the shed-only cell actually shed work");
        expect(shed4.goodputTokensPerSec >
                   open4.goodputTokensPerSec,
               "shedding alone already beats the open cell");

        const auto &brk = byName("breaker");
        expect(brk.report.breakerOpens >= 1,
               "the scripted fail-stop tripped a breaker");
        expect(brk.breakerLogLines >= 2,
               "the breaker logged its transitions");

        if (failures != 0) {
            std::fprintf(stderr, "overload_campaign: %d checks failed\n",
                         failures);
            return 1;
        }
        std::printf("\nAll campaign checks passed.\n");
    }
    return 0;
}
