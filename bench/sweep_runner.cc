/**
 * @file
 * Deterministic parallel sweep runner.
 *
 * Fans the stock design-space grid (core::defaultSweepGrid) across a
 * thread pool and writes the simulated metrics as JSON. The JSON is a
 * pure function of the simulation — no timestamps, host names, or
 * timings — so any two runs (any thread count) produce byte-identical
 * files; wall-clock telemetry goes to stderr and, optionally, to a
 * separate timing record via benchout=. (BENCH_e2e.json is owned by
 * `serve_sweep e2eout=`, the calibrated fast-forward benchmark.)
 *
 * Usage:
 *   sweep_runner [threads=N] [quick=1] [out=sweep.json]
 *                [benchout=BENCH_grid.json]
 *
 *   threads=0 (default) uses all hardware threads; threads=1 runs the
 *   grid inline — the reference order the parallel runs must match.
 */

#include <chrono>
#include <cstdio>
#include <string>

#include "core/inference_engine.hh"
#include "core/sweep.hh"
#include "llm/model_config.hh"
#include "sim/config.hh"
#include "sim/thread_pool.hh"

using namespace cxlpnm;

namespace
{

double
wallSeconds()
{
    using namespace std::chrono;
    return duration<double>(steady_clock::now().time_since_epoch())
        .count();
}

bool
writeFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    auto cfg = Config::fromArgs({argv + 1, argv + argc});
    const unsigned threads =
        static_cast<unsigned>(cfg.getInt("threads", 0));
    const bool quick = cfg.getBool("quick", false);
    const std::string out = cfg.getString("out", "");
    const std::string benchout = cfg.getString("benchout", "");

    const auto points = core::defaultSweepGrid(quick);
    std::fprintf(stderr, "sweep_runner: %zu points, threads=%u%s\n",
                 points.size(),
                 threads == 0 ? ThreadPool().threadCount() : threads,
                 quick ? " (quick)" : "");

    const double t0 = wallSeconds();
    const auto results = core::runSweep(points, threads);
    const double elapsed = wallSeconds() - t0;

    const std::string json = core::sweepResultsJson(results);
    if (out.empty()) {
        std::fputs(json.c_str(), stdout);
    } else if (!writeFile(out, json)) {
        std::fprintf(stderr, "sweep_runner: cannot write %s\n",
                     out.c_str());
        return 1;
    }
    std::fprintf(stderr, "sweep_runner: %zu points in %.2f s wall\n",
                 results.size(), elapsed);

    if (!benchout.empty()) {
        // Machine-readable end-to-end timing record (intentionally NOT
        // part of the deterministic sweep output). Includes the fig10
        // smoke: one OPT-13B 64-in/1024-out single-device run, the
        // paper's headline workload, timed wall-clock.
        const double f0 = wallSeconds();
        llm::InferenceRequest smoke;
        smoke.inputTokens = 64;
        smoke.outputTokens = 1024;
        core::PnmPlatformConfig pcfg;
        pcfg.channelGrouping = 8;
        const auto run = core::runPnmSingleDevice(
            llm::ModelConfig::opt13b(), smoke, pcfg);
        const double fig10 = wallSeconds() - f0;
        std::fprintf(stderr,
                     "sweep_runner: fig10 smoke %.2f s wall "
                     "(%.3f simulated s)\n",
                     fig10, run.totalSeconds);

        char buf[512];
        std::snprintf(buf, sizeof buf,
                      "{\n"
                      "  \"benchmark\": \"sweep_grid\",\n"
                      "  \"points\": %zu,\n"
                      "  \"threads\": %u,\n"
                      "  \"quick\": %s,\n"
                      "  \"sweep_wall_seconds\": %.3f,\n"
                      "  \"fig10_smoke_wall_seconds\": %.3f,\n"
                      "  \"fig10_smoke_simulated_seconds\": %.6f\n"
                      "}\n",
                      results.size(), threads, quick ? "true" : "false",
                      elapsed, fig10, run.totalSeconds);
        if (!writeFile(benchout, buf)) {
            std::fprintf(stderr, "sweep_runner: cannot write %s\n",
                         benchout.c_str());
            return 1;
        }
    }
    return 0;
}
