/**
 * @file
 * Ablation for §V-C enhancement #3: tile dimension l = 128 vs DFX's 64.
 *
 * The adder-tree lanes consume tileDim FP16 weights per cycle per lane.
 * At l=64 the trees can absorb 16*64*2 B/cycle = 2.05 TB/s; at l=128,
 * 4.10 TB/s. Against the module's 1.088 TB/s peak both suffice on
 * average, but l=128 restores the 2x headroom DFX had over its 0.46
 * TB/s HBM2 and keeps GEMV compute off the critical path entirely.
 */

#include <cstdio>

#include "bench_common.hh"
#include "accel/config.hh"
#include "accel/timing.hh"
#include "core/inference_engine.hh"
#include "llm/model_config.hh"

using namespace cxlpnm;

int
main()
{
    bench::header("Ablation: adder-tree tile dimension 64 vs 128");

    const auto model = llm::ModelConfig::opt13b();
    llm::InferenceRequest req;
    req.inputTokens = 64;
    req.outputTokens = 32;

    for (int tile : {64, 128, 256}) {
        core::PnmPlatformConfig pcfg;
        pcfg.channelGrouping = 8;
        pcfg.accel.tileDim = tile;

        const double consume =
            2.0 * pcfg.accel.adderTreeMultipliers() *
            pcfg.accel.freqHz; // bytes/s the trees can absorb
        const auto r = runPnmSingleDevice(model, req, pcfg);
        const double gen = r.genSeconds.back();

        // Compute cycles of the dominant GEMV (FC1) under this tile.
        isa::Instruction fc1;
        fc1.op = isa::Opcode::MpuMv;
        fc1.m = model.ffnDim;
        fc1.n = model.dModel;
        const double fc1_us =
            accel::timing::computeCycles(fc1, pcfg.accel).value() /
            pcfg.accel.freqHz * 1e6;

        std::printf("tile %3d: %4d MACs, absorb %5.2f TB/s "
                    "(headroom %4.2fx), FC1 compute %6.1f us, "
                    "gen %7.3f ms/token\n",
                    tile, pcfg.accel.adderTreeMultipliers(),
                    consume / TB, consume / (1.088 * TB), fc1_us,
                    gen * 1e3);
    }

    std::printf("\nGen latency is bandwidth-bound in all cases (the "
                "paper's design point);\nl=128 doubles the compute "
                "headroom so attention head dims (multiples of\n128, "
                "§V-C) map onto whole lanes.\n");
    return 0;
}
