/**
 * @file
 * §IX (Discussion) reproduction: scalability to a hypothetical LLM
 * needing 1.25 TB of memory.
 *
 * Paper anchors: 3 CXL-PNM devices vs 16 GPUs (87% lower hardware
 * cost), and device-to-device communication consuming ~30% (GPU) vs
 * ~10% (CXL-PNM) of runtime.
 */

#include <cmath>
#include <cstdio>

#include "bench_common.hh"
#include "core/inference_engine.hh"
#include "gpu/inference.hh"
#include "llm/model_config.hh"
#include "llm/workload.hh"

using namespace cxlpnm;

int
main()
{
    bench::header("Discussion: hypothetical 1.25 TB LLM");

    // A GPT-3-architecture model scaled to ~625 B parameters
    // (1.25 TB of FP16 weights): wider and deeper than GPT-3.
    llm::ModelConfig model = llm::ModelConfig::gpt3();
    model.name = "hypo-625b";
    model.numLayers = 124;
    model.dModel = 20480;
    model.numHeads = 160;
    model.ffnDim = 4 * model.dModel;
    model.vocabSize = 50176; // keeps every tensor shardable by 4
    std::printf("model: %.0f B params, %.2f TB FP16 weights\n",
                model.paramCount() / 1e9, model.weightBytes() / TB);

    // Device counts by capacity.
    const auto gspec = gpu::GpuSpec::a100_80g();
    const auto pnm_cap =
        dram::DramTechSpec::lpddr5x().capacityPerModule();
    // Count by parameter capacity, as §IX does.
    const int gpus = static_cast<int>(
        std::ceil(static_cast<double>(model.weightBytes()) /
                  gspec.memBytes));
    const int pnms = static_cast<int>(
        std::ceil(model.weightBytes() / pnm_cap));
    std::printf("devices needed: %d x A100-80G vs %d x CXL-PNM\n", gpus,
                pnms);

    const double gpu_cost = gpus * 10000.0; // Table III device price
    const double pnm_cost = pnms * 7000.0;
    bench::anchor("GPU device count (paper 16)", 16, gpus, 0.0);
    bench::anchor("CXL-PNM device count (paper 3)", 3, pnms, 0.0);
    bench::anchor("CXL-PNM cost reduction (paper 0.87)", 0.87,
                  1.0 - pnm_cost / gpu_cost, 0.05);

    // Communication share of runtime under tensor parallelism.
    llm::InferenceRequest req;
    req.inputTokens = 64;
    req.outputTokens = 16; // rate is stationary; keep the run short
    const auto g = gpu::runGpuInference(model, req, gspec,
                                        gpu::GpuCalibration{}, gpus);
    // Estimate the GPU comm share from one gen stage.
    const auto stage = gpu::runStage(
        llm::genStageOps(model, req.inputTokens + 1), gspec,
        gpu::GpuCalibration{}, gpus, false);
    const double g_comm = stage.commSeconds / stage.seconds;

    core::PnmPlatformConfig pcfg;
    pcfg.channelGrouping = 16;
    // 4 shards (the next power of two above 3 keeps heads divisible).
    const auto p = runPnmAppliance(model, req, pcfg,
                                   core::ParallelismPlan{4, 1});

    std::printf("\ncomm share of runtime: GPU %.1f%%, CXL-PNM %.1f%%\n",
                g_comm * 100.0, p.commFraction * 100.0);
    // §IX gives a "conservative estimation" of 30% vs 10%; the shape
    // claim is that the GPU spends a large multiple of the CXL-PNM's
    // runtime share on device-to-device communication.
    bench::anchorAbs("GPU comm share (paper's estimate ~0.30)", 0.30,
                     g_comm, 0.12);
    bench::anchor("GPU/PNM comm-share ratio >= 3 (paper 3.0)", 3.0,
                  std::min(3.0, g_comm / p.commFraction), 0.01);
    (void)g;
    return 0;
}
