/**
 * @file
 * Table I reproduction: DDR5 / GDDR6 / HBM3 / LPDDR5X CXL-module
 * comparison, derived from per-pin and packaging parameters under the
 * FHHL form-factor constraint (§IV).
 */

#include <cstdio>

#include "bench_common.hh"
#include "dram/dram_spec.hh"

using namespace cxlpnm;
using dram::DramTechSpec;

int
main()
{
    bench::header("Table I: DRAM technologies for a CXL memory module");

    const DramTechSpec specs[] = {
        DramTechSpec::ddr5(),
        DramTechSpec::gddr6(),
        DramTechSpec::hbm3(),
        DramTechSpec::lpddr5x(),
    };
    const double base = DramTechSpec::lpddr5x().powerPerModule();

    std::printf("%-22s", "");
    for (const auto &s : specs)
        std::printf("%12s", s.name.c_str());
    std::printf("\n");

    auto row = [&](const char *label, auto get, const char *fmt) {
        std::printf("%-22s", label);
        for (const auto &s : specs)
            std::printf(fmt, get(s));
        std::printf("\n");
    };

    row("Bandwidth/pin (Gb/s)",
        [](const DramTechSpec &s) { return s.gbitPerSecPerPin / 1e9; },
        "%12.1f");
    row("I/O width/package",
        [](const DramTechSpec &s) { return double(s.dqPinsPerPackage); },
        "%12.0f");
    row("Bandwidth/package(GB/s)",
        [](const DramTechSpec &s) { return s.bandwidthPerPackage() / GB; },
        "%12.1f");
    row("Capacity/package (GB)",
        [](const DramTechSpec &s) { return s.capacityPerPackage() / GB; },
        "%12.0f");
    row("Packages/module",
        [](const DramTechSpec &s) { return double(s.packagesPerModule); },
        "%12.0f");
    row("I/O width/module",
        [](const DramTechSpec &s) { return double(s.ioWidthPerModule()); },
        "%12.0f");
    row("Bandwidth/module(TB/s)",
        [](const DramTechSpec &s) { return s.bandwidthPerModule() / TB; },
        "%12.3f");
    row("Capacity/module (GB)",
        [](const DramTechSpec &s) { return s.capacityPerModule() / GB; },
        "%12.0f");
    row("Core voltage (V)",
        [](const DramTechSpec &s) { return s.coreVoltage; }, "%12.2f");
    row("IO voltage (V)",
        [](const DramTechSpec &s) { return s.ioVoltage; }, "%12.2f");
    row("Power/module (norm.)",
        [&](const DramTechSpec &s) { return s.powerPerModule() / base; },
        "%12.2f");

    bench::header("Table I anchors");
    bench::anchor("DDR5 module GB/s (paper 89.6)", 89.6,
                  DramTechSpec::ddr5().bandwidthPerModule() / GB, 0.01);
    bench::anchor("GDDR6 module TB/s (paper 1.5)", 1.536,
                  DramTechSpec::gddr6().bandwidthPerModule() / TB, 0.01);
    bench::anchor("HBM3 module TB/s (paper 4.1)", 4.096,
                  DramTechSpec::hbm3().bandwidthPerModule() / TB, 0.01);
    bench::anchor("LPDDR5X module TB/s (paper 1.1)", 1.088,
                  DramTechSpec::lpddr5x().bandwidthPerModule() / TB,
                  0.01);
    bench::anchor("LPDDR5X module GB (paper 512)", 512.0,
                  DramTechSpec::lpddr5x().capacityPerModule() / GB,
                  0.01);
    bench::anchor("DDR5 norm. power (paper 0.35)", 0.35,
                  DramTechSpec::ddr5().powerPerModule() / base, 0.02);
    bench::anchor("GDDR6 norm. power (paper 0.96)", 0.96,
                  DramTechSpec::gddr6().powerPerModule() / base, 0.02);
    bench::anchor("HBM3 norm. power (paper 3.00)", 3.0,
                  DramTechSpec::hbm3().powerPerModule() / base, 0.02);

    std::printf("\n1 TB variant (§IV): %s -> %.2f TB capacity\n",
                DramTechSpec::lpddr5x1Tb().name.c_str(),
                DramTechSpec::lpddr5x1Tb().capacityPerModule() / TB);
    return 0;
}
