/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries: tabular
 * output and paper-vs-measured reporting.
 */

#ifndef CXLPNM_BENCH_COMMON_HH
#define CXLPNM_BENCH_COMMON_HH

#include <cstdio>
#include <string>

namespace cxlpnm
{
namespace bench
{

inline void
header(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

/** Print one paper-vs-measured ratio line with a pass band. */
inline void
anchor(const char *what, double paper, double measured, double tol_frac)
{
    const double lo = paper * (1.0 - tol_frac);
    const double hi = paper * (1.0 + tol_frac);
    const bool ok = measured >= lo && measured <= hi;
    std::printf("  %-46s paper %8.3f  measured %8.3f  [%s]\n", what,
                paper, measured, ok ? "within band" : "OUTSIDE BAND");
}

/** Absolute-tolerance variant for anchors near zero. */
inline void
anchorAbs(const char *what, double paper, double measured, double tol)
{
    const bool ok =
        measured >= paper - tol && measured <= paper + tol;
    std::printf("  %-46s paper %8.3f  measured %8.3f  [%s]\n", what,
                paper, measured, ok ? "within band" : "OUTSIDE BAND");
}

} // namespace bench
} // namespace cxlpnm

#endif // CXLPNM_BENCH_COMMON_HH
