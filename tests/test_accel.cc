/**
 * @file
 * Accelerator tests: register-file management, functional semantics of
 * every instruction against the double-precision reference, timing-model
 * structure, and the pipelined execution behaviour (bandwidth-bound GEMV
 * emerging from DMA/compute overlap).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "accel/accelerator.hh"
#include "accel/functional.hh"
#include "accel/timing.hh"
#include "cxl/arbiter.hh"
#include "dram/module.hh"
#include "numeric/linalg.hh"
#include "sim/logging.hh"

namespace cxlpnm
{
namespace accel
{
namespace
{

using isa::Instruction;
using isa::Opcode;
using isa::Program;

// ---- Register file ----

TEST(RegisterFileTest, AllocTrackUsageAndFree)
{
    RegisterFileManager rf(1024);
    auto a = rf.alloc(8, 8, "a"); // 128 bytes
    auto b = rf.alloc(16, 16, "b"); // 512 bytes
    EXPECT_EQ(rf.usedBytes(), 640u);
    EXPECT_EQ(rf.liveRegisters(), 2u);
    EXPECT_EQ(rf.shape(a).rows, 8u);
    EXPECT_EQ(rf.shape(b).bytes(), 512u);
    rf.free(a);
    EXPECT_EQ(rf.usedBytes(), 512u);
    EXPECT_EQ(rf.peakBytes(), 640u);
    rf.reset();
    EXPECT_EQ(rf.usedBytes(), 0u);
}

TEST(RegisterFileTest, ExhaustionIsFatal)
{
    setLogLevel(LogLevel::Silent);
    RegisterFileManager rf(100);
    EXPECT_THROW(rf.alloc(64, 64, "too big"), FatalError);
    EXPECT_THROW(rf.alloc(0, 4, "zero"), FatalError);
    setLogLevel(LogLevel::Info);
}

TEST(RegisterFileTest, TensorLazilyCreatedWithShape)
{
    RegisterFileManager rf(1 << 20);
    auto r = rf.alloc(3, 5, "r");
    HalfTensor &t = rf.tensor(r);
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 5u);
    t.at(2, 4) = Half(1.5f);
    EXPECT_FLOAT_EQ(rf.tensor(r).at(2, 4).toFloat(), 1.5f);
}

TEST(RegisterFileTest, InvalidIdPanics)
{
    setLogLevel(LogLevel::Silent);
    RegisterFileManager rf(1 << 20);
    EXPECT_THROW(rf.tensor(42), PanicError);
    EXPECT_THROW(rf.free(42), PanicError);
    EXPECT_THROW(rf.shape(42), PanicError);
    setLogLevel(LogLevel::Info);
}

// ---- Functional semantics ----

/** Fixture with RF + functional memory, no event queue needed. */
class FunctionalTest : public ::testing::Test
{
  protected:
    FunctionalTest() : rf(64ull * MiB), mem(16ull * MiB) {}

    /** Random Half tensor in a register. */
    isa::RegId
    regWith(std::size_t rows, std::size_t cols, std::uint64_t seed,
            double stddev = 1.0)
    {
        auto id = rf.alloc(rows, cols, "t");
        rf.tensor(id).fillGaussian(seed, stddev);
        return id;
    }

    Tensor<double>
    asDouble(isa::RegId id)
    {
        return rf.tensor(id).cast<double>();
    }

    RegisterFileManager rf;
    FunctionalMemory mem;
};

TEST_F(FunctionalTest, AddTreeReduceMatchesSumForPowersOfTwo)
{
    std::vector<Half> v;
    for (int i = 1; i <= 8; ++i)
        v.push_back(Half(static_cast<float>(i)));
    EXPECT_FLOAT_EQ(functional::addTreeReduce(v.data(), 8).toFloat(),
                    36.0f);
    // Non-power-of-two sizes pass the odd element up a level.
    EXPECT_FLOAT_EQ(functional::addTreeReduce(v.data(), 5).toFloat(),
                    15.0f);
    EXPECT_FLOAT_EQ(functional::addTreeReduce(v.data(), 1).toFloat(),
                    1.0f);
    EXPECT_TRUE(functional::addTreeReduce(v.data(), 0).isZero());
}

TEST_F(FunctionalTest, DmaLoadStoreRoundTrip)
{
    auto src = regWith(4, 6, 11);
    Instruction st;
    st.op = Opcode::DmaStore;
    st.src0 = src;
    st.m = 4;
    st.n = 6;
    st.memAddr = 4096;
    functional::execute(st, rf, &mem);

    auto dst = rf.alloc(4, 6, "dst");
    Instruction ld;
    ld.op = Opcode::DmaLoad;
    ld.dst = dst;
    ld.m = 4;
    ld.n = 6;
    ld.memAddr = 4096;
    functional::execute(ld, rf, &mem);

    EXPECT_EQ(maxAbsDiff(rf.tensor(src), rf.tensor(dst)), 0.0);
}

TEST_F(FunctionalTest, MvMatchesReference)
{
    const std::uint32_t m = 24, n = 40;
    auto matr = regWith(m, n, 1, 0.5);
    auto x = regWith(1, n, 2, 0.5);
    auto y = rf.alloc(1, m, "y");

    Instruction i;
    i.op = Opcode::MpuMv;
    i.dst = y;
    i.src0 = x;
    i.src1 = matr;
    i.m = m;
    i.n = n;
    functional::execute(i, rf, nullptr);

    // Reference: y = M . x.
    Tensor<double> ref(1, m);
    auto md = asDouble(matr);
    auto xd = asDouble(x);
    for (std::uint32_t r = 0; r < m; ++r) {
        double acc = 0.0;
        for (std::uint32_t c = 0; c < n; ++c)
            acc += md.at(r, c) * xd.at(0, c);
        ref.at(0, r) = acc;
    }
    EXPECT_LT(maxRelDiff(asDouble(y), ref), 2e-2); // fp16 tree error
}

TEST_F(FunctionalTest, MvStreamsMatrixFromMemoryWithBias)
{
    const std::uint32_t m = 16, n = 32;
    HalfTensor w(m, n);
    w.fillGaussian(3, 0.5);
    mem.writeTensor(0x1000, w);

    auto x = regWith(1, n, 4, 0.5);
    auto bias = regWith(1, m, 5, 0.1);
    auto y = rf.alloc(1, m, "y");

    Instruction i;
    i.op = Opcode::MpuMv;
    i.flags = isa::FlagMemOperand | isa::FlagBias;
    i.dst = y;
    i.src0 = x;
    i.aux = bias;
    i.m = m;
    i.n = n;
    i.memAddr = 0x1000;
    functional::execute(i, rf, &mem);

    auto wd = w.cast<double>();
    auto xd = asDouble(x);
    auto bd = asDouble(bias);
    Tensor<double> ref(1, m);
    for (std::uint32_t r = 0; r < m; ++r) {
        double acc = bd.at(0, r);
        for (std::uint32_t c = 0; c < n; ++c)
            acc += wd.at(r, c) * xd.at(0, c);
        ref.at(0, r) = acc;
    }
    EXPECT_LT(maxRelDiff(asDouble(y), ref), 2e-2);
}

TEST_F(FunctionalTest, MmPeaMatchesGemm)
{
    const std::uint32_t m = 8, k = 32, n = 12;
    auto a = regWith(m, k, 6, 0.5);
    auto b = regWith(k, n, 7, 0.5);
    auto out = rf.alloc(m, n, "out");

    Instruction i;
    i.op = Opcode::MpuMmPea;
    i.dst = out;
    i.src0 = a;
    i.src1 = b;
    i.m = m;
    i.n = n;
    i.k = k;
    functional::execute(i, rf, nullptr);

    Tensor<double> ref(m, n);
    linalg::gemm(asDouble(a), asDouble(b), ref);
    EXPECT_LT(maxRelDiff(asDouble(out), ref), 5e-3);
}

TEST_F(FunctionalTest, MmPeaTransBAndScale)
{
    const std::uint32_t m = 4, k = 16, n = 6;
    auto a = regWith(m, k, 8, 0.5);
    auto bt = regWith(n, k, 9, 0.5); // stored transposed
    auto out = rf.alloc(m, n, "out");

    Instruction i;
    i.op = Opcode::MpuMmPea;
    i.flags = isa::FlagTransB;
    i.dst = out;
    i.src0 = a;
    i.src1 = bt;
    i.m = m;
    i.n = n;
    i.k = k;
    i.scale = 0.25f;
    functional::execute(i, rf, nullptr);

    Tensor<double> ref(m, n);
    linalg::gemm(asDouble(a), linalg::transpose(asDouble(bt)), ref);
    for (std::size_t r = 0; r < ref.rows(); ++r)
        for (std::size_t c = 0; c < ref.cols(); ++c)
            ref.at(r, c) *= 0.25;
    EXPECT_LT(maxRelDiff(asDouble(out), ref), 5e-3);
}

TEST_F(FunctionalTest, MaskedMmAppliesCausalMask)
{
    const std::uint32_t m = 6, k = 8, n = 6;
    auto a = regWith(m, k, 10, 0.5);
    auto b = regWith(n, k, 11, 0.5);
    auto out = rf.alloc(m, n, "out");

    Instruction i;
    i.op = Opcode::MpuMaskedMmPea;
    i.flags = isa::FlagTransB;
    i.dst = out;
    i.src0 = a;
    i.src1 = b;
    i.m = m;
    i.n = n;
    i.k = k;
    i.imm = 0; // strict causal
    functional::execute(i, rf, nullptr);

    for (std::uint32_t r = 0; r < m; ++r) {
        for (std::uint32_t c = 0; c < n; ++c) {
            if (c > r) {
                EXPECT_TRUE(rf.tensor(out).at(r, c).isInf());
            }
        }
    }
}

TEST_F(FunctionalTest, MaskedMmRedumaxProducesRowMaxima)
{
    const std::uint32_t m = 5, k = 8, n = 5;
    auto a = regWith(m, k, 12, 0.5);
    auto b = regWith(n, k, 13, 0.5);
    auto out = rf.alloc(m, n, "out");
    auto mx = rf.alloc(1, m, "mx");

    Instruction i;
    i.op = Opcode::MpuMaskedMmRedumaxPea;
    i.flags = isa::FlagTransB;
    i.dst = out;
    i.src0 = a;
    i.src1 = b;
    i.aux = mx;
    i.m = m;
    i.n = n;
    i.k = k;
    functional::execute(i, rf, nullptr);

    for (std::uint32_t r = 0; r < m; ++r) {
        float expect = -std::numeric_limits<float>::infinity();
        for (std::uint32_t c = 0; c <= r; ++c)
            expect = std::max(expect,
                              rf.tensor(out).at(r, c).toFloat());
        EXPECT_FLOAT_EQ(rf.tensor(mx).at(0, r).toFloat(), expect);
    }
}

TEST_F(FunctionalTest, Conv2dKernel1IsFullyConnected)
{
    const std::uint32_t m = 4, k = 16, n = 8;
    auto a = regWith(m, k, 14, 0.5);
    auto w = regWith(k, n, 15, 0.5);
    auto out = rf.alloc(m, n, "out");

    Instruction i;
    i.op = Opcode::MpuConv2dPea;
    i.dst = out;
    i.src0 = a;
    i.src1 = w;
    i.m = m;
    i.n = n;
    i.k = k;
    i.imm = 1;
    functional::execute(i, rf, nullptr);

    Tensor<double> ref(m, n);
    linalg::gemm(asDouble(a), asDouble(w), ref);
    EXPECT_LT(maxRelDiff(asDouble(out), ref), 5e-3);
}

TEST_F(FunctionalTest, Conv2dGeluFusesActivation)
{
    const std::uint32_t m = 4, k = 8, n = 8;
    auto a = regWith(m, k, 16, 0.5);
    auto w = regWith(k, n, 17, 0.5);
    auto out = rf.alloc(m, n, "out");

    Instruction i;
    i.op = Opcode::MpuConv2dGeluPea;
    i.dst = out;
    i.src0 = a;
    i.src1 = w;
    i.m = m;
    i.n = n;
    i.k = k;
    functional::execute(i, rf, nullptr);

    Tensor<double> ref(m, n);
    linalg::gemm(asDouble(a), asDouble(w), ref);
    linalg::geluInPlace(ref);
    EXPECT_LT(maxAbsDiff(asDouble(out), ref), 2e-2);
}

TEST_F(FunctionalTest, LayerNormMatchesReference)
{
    const std::uint32_t m = 3, n = 64;
    auto x = regWith(m, n, 18, 2.0);
    auto gamma = regWith(1, n, 19, 0.2);
    auto beta = regWith(1, n, 20, 0.2);
    auto out = rf.alloc(m, n, "out");

    Instruction i;
    i.op = Opcode::VpuLayerNorm;
    i.dst = out;
    i.src0 = x;
    i.src1 = gamma;
    i.aux = beta;
    i.m = m;
    i.n = n;
    i.scale = 1e-5f;
    functional::execute(i, rf, nullptr);

    Tensor<double> ref(m, n);
    linalg::layerNormRows(asDouble(x), asDouble(gamma), asDouble(beta),
                          1e-5, ref);
    EXPECT_LT(maxAbsDiff(asDouble(out), ref), 1e-2);
}

TEST_F(FunctionalTest, SoftmaxWithScaleMatchesReference)
{
    const std::uint32_t m = 4, n = 32;
    auto x = regWith(m, n, 21, 2.0);
    auto out = rf.alloc(m, n, "out");

    Instruction i;
    i.op = Opcode::VpuSoftmax;
    i.dst = out;
    i.src0 = x;
    i.m = m;
    i.n = n;
    i.scale = 0.125f;
    functional::execute(i, rf, nullptr);

    auto ref = asDouble(x);
    for (std::size_t r = 0; r < ref.rows(); ++r)
        for (std::size_t c = 0; c < ref.cols(); ++c)
            ref.at(r, c) *= 0.125;
    linalg::softmaxRows(ref);
    EXPECT_LT(maxAbsDiff(asDouble(out), ref), 2e-3);
}

TEST_F(FunctionalTest, SoftmaxHandlesMaskedMinusInfinity)
{
    const std::uint32_t n = 8;
    auto x = rf.alloc(1, n, "x");
    for (std::uint32_t c = 0; c < n; ++c) {
        rf.tensor(x).at(0, c) =
            c < 3 ? Half(1.0f) : -Half::infinity();
    }
    auto out = rf.alloc(1, n, "out");

    Instruction i;
    i.op = Opcode::VpuSoftmax;
    i.dst = out;
    i.src0 = x;
    i.m = 1;
    i.n = n;
    functional::execute(i, rf, nullptr);

    for (std::uint32_t c = 0; c < n; ++c) {
        const float v = rf.tensor(out).at(0, c).toFloat();
        if (c < 3)
            EXPECT_NEAR(v, 1.0 / 3.0, 1e-3);
        else
            EXPECT_EQ(v, 0.0f);
    }
}

TEST_F(FunctionalTest, VpuAddBroadcastsRow)
{
    auto a = regWith(4, 8, 22);
    auto row = regWith(1, 8, 23);
    auto out = rf.alloc(4, 8, "out");

    Instruction i;
    i.op = Opcode::VpuAdd;
    i.dst = out;
    i.src0 = a;
    i.src1 = row;
    i.m = 4;
    i.n = 8;
    functional::execute(i, rf, nullptr);

    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 8; ++c)
            EXPECT_FLOAT_EQ(
                rf.tensor(out).at(r, c).toFloat(),
                (rf.tensor(a).at(r, c) + rf.tensor(row).at(0, c))
                    .toFloat());
}

TEST_F(FunctionalTest, TransposeSemantics)
{
    auto a = regWith(3, 7, 24);
    auto out = rf.alloc(7, 3, "out");
    Instruction i;
    i.op = Opcode::MpuTranspose;
    i.dst = out;
    i.src0 = a;
    i.m = 3;
    i.n = 7;
    functional::execute(i, rf, nullptr);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 7; ++c)
            EXPECT_EQ(rf.tensor(out).at(c, r).bits(),
                      rf.tensor(a).at(r, c).bits());
}

// ---- Timing model ----

TEST(TimingTest, MvCyclesFollowLaneTileStructure)
{
    AccelConfig cfg;
    Instruction i;
    i.op = Opcode::MpuMv;
    i.m = 20480; // FC1 output for d=5120
    i.n = 5120;
    // ceil(20480/16) * ceil(5120/128) = 1280 * 40 = 51200 (+fill).
    EXPECT_EQ(timing::computeCycles(i, cfg).value(),
              51200u + cfg.pipelineFillCycles);
}

TEST(TimingTest, PeaCyclesFollowTileStructure)
{
    AccelConfig cfg;
    Instruction i;
    i.op = Opcode::MpuMmPea;
    i.m = 64;
    i.n = 5120;
    i.k = 5120;
    // ceil(64/64)*ceil(5120/32)*5120 = 160*5120 = 819200 (+fill).
    EXPECT_EQ(timing::computeCycles(i, cfg).value(),
              819200u + cfg.pipelineFillCycles);
}

TEST(TimingTest, TileEdgeWasteEmergesFromCeils)
{
    AccelConfig cfg;
    Instruction a, b;
    a.op = b.op = Opcode::MpuMmPea;
    a.m = 64;
    b.m = 65; // one row over a tile boundary doubles row tiles
    a.n = b.n = 32;
    a.k = b.k = 128;
    EXPECT_GT(timing::computeCycles(b, cfg).value(),
              1.9 * timing::computeCycles(a, cfg).value() - 20);
}

TEST(TimingTest, DmaBytesPerOperandShape)
{
    Instruction mv;
    mv.op = Opcode::MpuMv;
    mv.flags = isa::FlagMemOperand;
    mv.m = 100;
    mv.n = 200;
    EXPECT_EQ(timing::dmaBytes(mv), 2u * 100 * 200);

    Instruction mm;
    mm.op = Opcode::MpuMmPea;
    mm.flags = isa::FlagMemOperand;
    mm.m = 64;
    mm.n = 128;
    mm.k = 256;
    EXPECT_EQ(timing::dmaBytes(mm), 2u * 256 * 128);

    Instruction rfonly;
    rfonly.op = Opcode::MpuMmPea;
    rfonly.m = 64;
    rfonly.n = 128;
    rfonly.k = 256;
    EXPECT_EQ(timing::dmaBytes(rfonly), 0u);

    Instruction st;
    st.op = Opcode::DmaStore;
    st.m = 4;
    st.n = 4;
    EXPECT_EQ(timing::dmaBytes(st), 32u);
    EXPECT_FALSE(timing::dmaIsRead(st));
}

TEST(TimingTest, MacAccountingMatchesShapes)
{
    Instruction mv;
    mv.op = Opcode::MpuMv;
    mv.m = 10;
    mv.n = 20;
    EXPECT_EQ(timing::macOps(mv), 200u);

    Instruction mm;
    mm.op = Opcode::MpuMmRedumaxPea;
    mm.m = 2;
    mm.n = 3;
    mm.k = 4;
    EXPECT_EQ(timing::macOps(mm), 24u);

    Instruction ln;
    ln.op = Opcode::VpuLayerNorm;
    ln.m = 2;
    ln.n = 10;
    EXPECT_EQ(timing::macOps(ln), 0u);
    EXPECT_EQ(timing::vectorOps(ln), 60u);
}

// ---- Pipelined execution ----

/** Full device-side stack: DRAM + arbiter + accelerator. */
class AccelPipelineTest : public ::testing::Test
{
  protected:
    AccelPipelineTest()
        : root(nullptr, ""),
          mem(eq, &root, "mem", dram::DramTechSpec::lpddr5x()),
          arb(eq, &root, "arb", mem, {}),
          fmem(16ull * MiB),
          accel(eq, &root, "accel", AccelConfig{}, arb, &fmem)
    {}

    EventQueue eq;
    stats::StatGroup root;
    dram::MultiChannelMemory mem;
    cxl::HostPnmArbiter arb;
    FunctionalMemory fmem;
    Accelerator accel;
};

TEST_F(AccelPipelineTest, RunsAProgramFunctionally)
{
    auto &rf = accel.registerFile();
    const std::uint32_t m = 8, n = 16;
    HalfTensor w(m, n);
    w.fillGaussian(31, 0.5);
    fmem.writeTensor(0, w);

    auto x = rf.alloc(1, n, "x");
    rf.tensor(x).fillGaussian(32, 0.5);
    auto y = rf.alloc(1, m, "y");

    Program p;
    Instruction i;
    i.op = Opcode::MpuMv;
    i.flags = isa::FlagMemOperand;
    i.dst = y;
    i.src0 = x;
    i.m = m;
    i.n = n;
    i.memAddr = 0;
    p.append(i);

    bool done = false;
    accel.run(p, [&] { done = true; });
    EXPECT_TRUE(accel.busy());
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_FALSE(accel.busy());
    EXPECT_GT(accel.lastRunTicks(), 0u);
    EXPECT_EQ(accel.totalDmaBytes(), 2u * m * n);
    EXPECT_EQ(accel.totalMacs(), static_cast<std::uint64_t>(m) * n);

    // And the math is right.
    auto wd = w.cast<double>();
    auto xd = rf.tensor(x).cast<double>();
    for (std::uint32_t r = 0; r < m; ++r) {
        double acc = 0.0;
        for (std::uint32_t c = 0; c < n; ++c)
            acc += wd.at(r, c) * xd.at(0, c);
        EXPECT_NEAR(rf.tensor(y).at(0, r).toFloat(), acc,
                    std::abs(acc) * 0.02 + 0.02);
    }
}

TEST_F(AccelPipelineTest, EmptyProgramCompletes)
{
    Program p;
    bool done = false;
    accel.run(p, [&] { done = true; });
    eq.run();
    EXPECT_TRUE(done);
}

TEST_F(AccelPipelineTest, RunWhileBusyPanics)
{
    setLogLevel(LogLevel::Silent);
    Program p;
    Instruction i;
    i.op = Opcode::VpuGelu;
    auto r = accel.registerFile().alloc(1, 8, "r");
    i.dst = i.src0 = r;
    i.m = 1;
    i.n = 8;
    p.append(i);
    accel.run(p, nullptr);
    EXPECT_THROW(accel.run(p, nullptr), PanicError);
    eq.run();
    setLogLevel(LogLevel::Info);
}

TEST_F(AccelPipelineTest, StreamingGemvIsBandwidthBound)
{
    // A large streamed GEMV: DMA time should dominate compute and the
    // run time should approach bytes / sustained module bandwidth.
    // Weights exceed the functional image, so run timing-only.
    Accelerator accel(eq, &root, "accel2", AccelConfig{}, arb, nullptr);
    auto &rf = accel.registerFile();
    const std::uint32_t m = 1024, n = 2048; // 4 MiB of weights
    auto x = rf.alloc(1, n, "x");
    auto y = rf.alloc(1, m, "y");

    Program p;
    for (int rep = 0; rep < 8; ++rep) {
        Instruction i;
        i.op = Opcode::MpuMv;
        i.flags = isa::FlagMemOperand;
        i.dst = y;
        i.src0 = x;
        i.m = m;
        i.n = n;
        i.memAddr = static_cast<Addr>(rep) * 2 * m * n;
        p.append(i);
    }

    Tick done = 0;
    accel.run(p, [&] { done = eq.now(); });
    eq.run();

    const double bytes = 8.0 * 2 * m * n;
    const double bw_sec = bytes / mem.sustainedBandwidth();
    // Within 25%: dispatch overhead and latency add a little.
    EXPECT_GT(ticksToSeconds(done), bw_sec);
    EXPECT_LT(ticksToSeconds(done), bw_sec * 1.25 + 100e-6);
}

TEST_F(AccelPipelineTest, DmaPrefetchOverlapsCompute)
{
    // Two instructions: a compute-heavy PEA op (no memory operand)
    // followed by a streamed op. With prefetch depth 2 the second op's
    // DMA runs during the first op's compute, so the total is close to
    // max(compute, dma) + second compute, not the sum of everything.
    // Timing-only (the streamed operand exceeds the functional image).
    Accelerator accel(eq, &root, "accel2", AccelConfig{}, arb, nullptr);
    auto &rf = accel.registerFile();
    const std::uint32_t m = 256, k = 2048, n = 256;
    auto a = rf.alloc(m, k, "a");
    auto b = rf.alloc(k, n, "b");
    auto o = rf.alloc(m, n, "o");
    auto x = rf.alloc(1, 4096, "x");
    auto y = rf.alloc(1, 4096, "y");

    Program p;
    Instruction gemm;
    gemm.op = Opcode::MpuMmPea;
    gemm.dst = o;
    gemm.src0 = a;
    gemm.src1 = b;
    gemm.m = m;
    gemm.n = n;
    gemm.k = k;
    p.append(gemm);

    Instruction mv;
    mv.op = Opcode::MpuMv;
    mv.flags = isa::FlagMemOperand;
    mv.dst = y;
    mv.src0 = x;
    mv.m = 4096;
    mv.n = 4096;
    mv.memAddr = 0;
    p.append(mv);

    Tick done = 0;
    accel.run(p, [&] { done = eq.now(); });
    eq.run();

    AccelConfig cfg;
    const double gemm_sec =
        (timing::computeCycles(gemm, cfg).value() +
         cfg.dispatchOverheadCycles) / cfg.freqHz;
    const double mv_dma_sec =
        (2.0 * 4096 * 4096) / mem.sustainedBandwidth();
    const double mv_cmp_sec =
        (timing::computeCycles(mv, cfg).value() +
         cfg.dispatchOverheadCycles) / cfg.freqHz;

    // Serial would be gemm + dma + compute; overlapped is roughly
    // max(gemm, dma) + compute.
    const double serial = gemm_sec + mv_dma_sec + mv_cmp_sec;
    const double overlapped =
        std::max(gemm_sec, mv_dma_sec) + mv_cmp_sec;
    EXPECT_LT(ticksToSeconds(done), serial * 0.95);
    EXPECT_NEAR(ticksToSeconds(done), overlapped, overlapped * 0.15);
}

} // namespace
} // namespace accel
} // namespace cxlpnm
