/**
 * @file
 * Whole-device integration tests: codegen program structure, KV-cache
 * placement verified through the functional memory image, concurrent
 * host/accelerator access through the hardware arbiter, and the stats
 * hierarchy.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/inference_engine.hh"
#include "core/platform.hh"
#include "llm/synthetic.hh"
#include "numeric/linalg.hh"
#include "sim/logging.hh"

namespace cxlpnm
{
namespace
{

class IntegrationFixture : public ::testing::Test
{
  protected:
    IntegrationFixture() : root(nullptr, "")
    {
        core::PnmPlatformConfig cfg;
        cfg.functionalBytes = 24ull * MiB;
        dev = std::make_unique<core::PnmDevice>(eq, &root, "dev", cfg);
        dev->library().loadModel(llm::ModelConfig::tiny(), 42,
                                 [this] { loaded = true; });
        eq.run();
    }

    EventQueue eq;
    stats::StatGroup root;
    std::unique_ptr<core::PnmDevice> dev;
    bool loaded = false;
};

TEST_F(IntegrationFixture, GenProgramHasExpectedStructure)
{
    auto &lib = dev->library();
    std::uint32_t tok = 0;
    lib.prefill({1, 2, 3}, [&](std::uint32_t t) { tok = t; });
    eq.run();
    lib.decode(tok, [&](std::uint32_t) {});
    eq.run();

    // Gen program: DmaLoad + L*(ln,3 MV,2 store,score,softmax,ctx,
    // proj,add,ln,fc1,gelu,fc2,add) + lnf + head MV + store = 2 + 16L
    // + 3 for the tiny 2-layer model.
    const auto cfg = llm::ModelConfig::tiny();
    EXPECT_EQ(lib.lastProgramSize(),
              1 + 16u * cfg.numLayers + 3u);
}

TEST_F(IntegrationFixture, KvCacheRowsLandAtExpectedAddresses)
{
    auto &lib = dev->library();
    auto *fmem = dev->functionalMemory();
    const auto cfg = llm::ModelConfig::tiny();
    const std::uint32_t d = cfg.dModel;

    std::uint32_t tok = 0;
    lib.prefill({7, 9}, [&](std::uint32_t t) { tok = t; });
    eq.run();
    lib.decode(tok, [&](std::uint32_t) {});
    eq.run();

    // Three context rows should now exist in layer 0's K cache, and
    // none should be all-zero (biases make that overwhelmingly
    // unlikely with these weights).
    const Addr kbase = lib.weightMap().layers[0].kCache;
    for (std::uint32_t row = 0; row < 3; ++row) {
        HalfTensor k = fmem->readTensor(kbase + 2ull * row * d, 1, d);
        double norm = 0.0;
        for (std::uint32_t c = 0; c < d; ++c)
            norm += std::abs(static_cast<double>(k.at(0, c)));
        EXPECT_GT(norm, 0.0) << "empty K row " << row;
    }
}

TEST_F(IntegrationFixture, HostAccessesProceedDuringInference)
{
    // D3 end to end: the host streams reads from device memory while
    // the accelerator generates; with the hardware arbiter both finish
    // and the host is never blocked behind a whole task.
    auto &lib = dev->library();
    int host_reads_done = 0;
    constexpr int n_reads = 50;

    std::vector<std::uint32_t> out;
    lib.generate({1, 2, 3}, 4, [&](std::vector<std::uint32_t> t) {
        out = std::move(t);
    });
    const Tick base = eq.now();
    for (int i = 0; i < n_reads; ++i) {
        eq.scheduleOneShot("hostRead", base + i * 10 * tickPerUs,
                           [&, i] {
            dev->memPort().hostRead(64 * i, 64,
                                    [&] { ++host_reads_done; });
        });
    }
    eq.run();
    EXPECT_EQ(out.size(), 4u);
    EXPECT_EQ(host_reads_done, n_reads);
    // Host latency stayed in the sub-microsecond NUMA regime.
    EXPECT_LT(dev->memPort().meanLatencyNs(), 2000.0);
}

TEST_F(IntegrationFixture, StatsHierarchyCoversTheDevice)
{
    std::ostringstream os;
    root.dumpStats(os);
    const std::string s = os.str();
    // One line per interesting counter, dotted through the hierarchy.
    EXPECT_NE(s.find("dev.accel.instructions"), std::string::npos);
    EXPECT_NE(s.find("dev.accel.dmaBytes"), std::string::npos);
    EXPECT_NE(s.find("dev.mem.ch0.bytesRead"), std::string::npos);
    EXPECT_NE(s.find("dev.arbiter.pnmRequests"), std::string::npos);
    EXPECT_NE(s.find("dev.driver.launches"), std::string::npos);
    EXPECT_NE(s.find("dev.library.stagesRun"), std::string::npos);

    // Reset zeroes everything.
    root.resetStats();
    std::ostringstream os2;
    root.dumpStats(os2);
    EXPECT_NE(os2.str().find("dev.accel.instructions 0"),
              std::string::npos);
}

TEST_F(IntegrationFixture, RegisterFilePeakStaysWithinTableTwo)
{
    auto &lib = dev->library();
    std::uint32_t tok = 0;
    lib.prefill({1, 2, 3, 4, 5, 6, 7, 8},
                [&](std::uint32_t t) { tok = t; });
    eq.run();
    lib.decode(tok, [&](std::uint32_t) {});
    eq.run();
    auto &rf = dev->accel().registerFile();
    EXPECT_LE(rf.peakBytes(), rf.capacityBytes());
    EXPECT_GT(rf.peakBytes(), 0u);
}

TEST(IntegrationScale, Opt13bSumProgramFitsRegisterFile)
{
    // The big-model sum stage must respect the 63 MB RF (the codegen
    // tiles per head precisely so this holds).
    llm::InferenceRequest req;
    req.inputTokens = 64;
    req.outputTokens = 1;
    core::PnmPlatformConfig cfg;
    cfg.channelGrouping = 16;
    const auto r =
        core::runPnmSingleDevice(llm::ModelConfig::opt13b(), req, cfg);
    EXPECT_GT(r.sumSeconds, 0.0);
    // If the RF overflowed, loadModel/prefill would have thrown.
}

} // namespace
} // namespace cxlpnm
