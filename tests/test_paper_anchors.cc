/**
 * @file
 * Integration tests pinning the paper's headline comparisons. These
 * run reduced token counts (the per-token rates are stationary after
 * a few tokens) so the suite stays fast while still asserting the
 * ratios the benches reproduce at full scale.
 */

#include <gtest/gtest.h>

#include "core/inference_engine.hh"
#include "gpu/inference.hh"
#include "llm/model_config.hh"

namespace cxlpnm
{
namespace
{

struct Pair
{
    gpu::GpuInferenceResult gpu;
    core::PnmRunResult pnm;
};

Pair
runBoth(const llm::ModelConfig &m, std::uint64_t out, int devices = 1)
{
    llm::InferenceRequest req;
    req.inputTokens = 64;
    req.outputTokens = out;
    core::PnmPlatformConfig pcfg;
    pcfg.channelGrouping = 16;
    Pair p;
    p.gpu = gpu::runGpuInference(m, req, gpu::GpuSpec::a100_40g(),
                                 gpu::GpuCalibration{}, devices);
    p.pnm = runPnmSingleDevice(m, req, pcfg);
    return p;
}

TEST(PaperAnchorTest, Fig10Opt13bThroughputGap)
{
    // Paper: CXL-PNM delivers 10.8% lower throughput than the A100 on
    // OPT-13B. Steady-state per-token rate at 48 tokens.
    const auto r = runBoth(llm::ModelConfig::opt13b(), 48);
    const double g = r.gpu.genSeconds.back();
    const double p = r.pnm.genSeconds.back();
    EXPECT_GT(p / g, 1.05); // PNM slower...
    EXPECT_LT(p / g, 1.20); // ...by roughly the paper's 12%.
}

TEST(PaperAnchorTest, Fig10Opt13bPowerAnchors)
{
    // Enough output tokens that the (lower-power) sum stage no longer
    // dilutes the generation-phase average the paper measures.
    const auto r = runBoth(llm::ModelConfig::opt13b(), 192);
    EXPECT_NEAR(r.gpu.avgPowerW, 253.0, 30.0);  // paper: 253 W
    EXPECT_NEAR(r.pnm.avgPowerW, 77.1, 8.0);    // paper: 77.1 W
}

TEST(PaperAnchorTest, Fig10EnergyEfficiencyRatio)
{
    // Paper: 2.9x tokens/J for CXL-PNM on OPT-13B.
    const auto r = runBoth(llm::ModelConfig::opt13b(), 48);
    const double ratio =
        (r.gpu.genSeconds.back() * r.gpu.avgPowerW) /
        (r.pnm.genSeconds.back() * r.pnm.avgPowerW);
    EXPECT_GT(ratio, 2.4);
    EXPECT_LT(ratio, 3.7);
}

TEST(PaperAnchorTest, Fig10SmallModelOrdering)
{
    // Paper: the CXL-PNM advantage shrinks monotonically with model
    // size (-59% / -38% / -2% for 1.3B / 2.7B / 6.7B).
    double gaps[3];
    const llm::ModelConfig models[] = {llm::ModelConfig::opt1_3b(),
                                       llm::ModelConfig::opt2_7b(),
                                       llm::ModelConfig::opt6_7b()};
    for (int i = 0; i < 3; ++i) {
        const auto r = runBoth(models[i], 24);
        gaps[i] = 1.0 - r.pnm.genSeconds.back() /
            r.gpu.genSeconds.back();
    }
    EXPECT_GT(gaps[0], gaps[1]);
    EXPECT_GT(gaps[1], gaps[2]);
    EXPECT_GT(gaps[0], 0.45); // 1.3B: large win
    EXPECT_LT(gaps[2], 0.20); // 6.7B: near parity
}

TEST(PaperAnchorTest, Opt30bCapacityCliff)
{
    // Paper: 138.8x lower latency when the GPU must offload OPT-30B.
    const auto r = runBoth(llm::ModelConfig::opt30b(), 4);
    const double ratio =
        r.gpu.genSeconds.back() / r.pnm.genSeconds.back();
    EXPECT_GT(ratio, 80.0);
    EXPECT_LT(ratio, 200.0);
    EXPECT_GT(r.gpu.copyFraction, 0.95); // Fig. 3
}

TEST(PaperAnchorTest, Fig11DataParallelAppliance)
{
    // Paper: +53% throughput for DP8 vs the 8-GPU DGX on OPT-66B.
    llm::InferenceRequest req;
    req.inputTokens = 64;
    req.outputTokens = 16;
    core::PnmPlatformConfig pcfg;
    pcfg.channelGrouping = 16;

    const auto g =
        gpu::runGpuInference(llm::ModelConfig::opt66b(), req,
                             gpu::GpuSpec::a100_40g(),
                             gpu::GpuCalibration{}, 8);
    const auto dp8 = runPnmAppliance(llm::ModelConfig::opt66b(), req,
                                     pcfg, core::ParallelismPlan{1, 8});
    // Steady-state rates (sum-stage amortisation differs at this short
    // token count; the fig11 bench checks the full-scale aggregate).
    const double gain = (8.0 / dp8.tokenLatencySeconds) /
        (1.0 / g.genSeconds.back());
    EXPECT_GT(gain, 1.3);
    EXPECT_LT(gain, 2.0);

    // Paper: 4.4x energy efficiency (band widened for the short run).
    const double eff = dp8.tokensPerJoule / g.tokensPerJoule();
    EXPECT_GT(eff, 3.0);
    EXPECT_LT(eff, 6.0);
}

TEST(PaperAnchorTest, Fig11TensorParallelLatency)
{
    // Paper: MP8 cuts per-token latency 23% below the GPU appliance.
    llm::InferenceRequest req;
    req.inputTokens = 64;
    req.outputTokens = 16;
    core::PnmPlatformConfig pcfg;
    pcfg.channelGrouping = 16;
    const auto m = llm::ModelConfig::opt66b();

    const auto g = gpu::runGpuInference(m, req, gpu::GpuSpec::a100_40g(),
                                        gpu::GpuCalibration{}, 8);
    const auto mp8 =
        runPnmAppliance(m, req, pcfg, core::ParallelismPlan{8, 1});
    const double g_token = g.totalSeconds / req.outputTokens;
    EXPECT_LT(mp8.tokenLatencySeconds, g_token);        // PNM wins
    EXPECT_GT(mp8.tokenLatencySeconds, 0.6 * g_token);  // modestly
}

} // namespace
} // namespace cxlpnm
