/**
 * @file
 * Exhaustive-ish tests of the software binary16 implementation:
 * round-trips over all bit patterns, rounding edge cases, subnormals,
 * special values, and arithmetic versus double references.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "numeric/fp16.hh"
#include "sim/random.hh"

namespace cxlpnm
{
namespace
{

TEST(Fp16Test, KnownEncodings)
{
    EXPECT_EQ(Half(1.0f).bits(), 0x3c00);
    EXPECT_EQ(Half(-1.0f).bits(), 0xbc00);
    EXPECT_EQ(Half(2.0f).bits(), 0x4000);
    EXPECT_EQ(Half(0.5f).bits(), 0x3800);
    EXPECT_EQ(Half(0.0f).bits(), 0x0000);
    EXPECT_EQ(Half(-0.0f).bits(), 0x8000);
    EXPECT_EQ(Half(65504.0f).bits(), 0x7bff); // max finite
    EXPECT_EQ(Half(0.099976f).bits() & 0xfc00, 0x2c00); // ~0.1 exp field
}

TEST(Fp16Test, AllBitPatternsRoundTripThroughFloat)
{
    // half -> float is exact, so float(h) -> half must reproduce the
    // original bits for every non-NaN pattern (NaN keeps NaN-ness).
    for (std::uint32_t b = 0; b <= 0xffff; ++b) {
        Half h = Half::fromBits(static_cast<std::uint16_t>(b));
        Half back(h.toFloat());
        if (h.isNan()) {
            EXPECT_TRUE(back.isNan()) << "bits " << b;
        } else {
            EXPECT_EQ(back.bits(), h.bits()) << "bits " << b;
        }
    }
}

TEST(Fp16Test, RoundToNearestEvenTies)
{
    // 1 + 2^-11 is exactly halfway between 1.0 (even) and 1+2^-10: ties
    // to even -> 1.0.
    EXPECT_EQ(Half(1.0f + std::ldexp(1.0f, -11)).bits(), 0x3c00);
    // 1 + 3*2^-11 is halfway between 1+2^-10 (odd lsb) and 1+2^-9:
    // rounds up to even lsb.
    EXPECT_EQ(Half(1.0f + 3 * std::ldexp(1.0f, -11)).bits(), 0x3c02);
    // Clearly above halfway rounds up.
    EXPECT_EQ(Half(1.0f + std::ldexp(1.0f, -11) + std::ldexp(1.0f, -13))
                  .bits(),
              0x3c01);
    // Clearly below halfway rounds down.
    EXPECT_EQ(Half(1.0f + std::ldexp(1.0f, -11) - std::ldexp(1.0f, -13))
                  .bits(),
              0x3c00);
}

TEST(Fp16Test, OverflowBehaviour)
{
    EXPECT_EQ(Half(65520.0f).bits(), 0x7c00);  // ties up to inf
    EXPECT_EQ(Half(65519.0f).bits(), 0x7bff);  // below halfway: max
    EXPECT_EQ(Half(1e6f).bits(), 0x7c00);
    EXPECT_EQ(Half(-1e6f).bits(), 0xfc00);
    EXPECT_TRUE(Half(70000.0f).isInf());
}

TEST(Fp16Test, SubnormalRange)
{
    const float min_sub = std::ldexp(1.0f, -24);
    const float min_norm = std::ldexp(1.0f, -14);

    EXPECT_EQ(Half(min_sub).bits(), 0x0001);
    EXPECT_TRUE(Half(min_sub).isSubnormal());
    EXPECT_EQ(Half(min_norm).bits(), 0x0400);
    EXPECT_FALSE(Half(min_norm).isSubnormal());
    EXPECT_EQ(Half(512 * min_sub).bits(), 0x0200);
    EXPECT_EQ(Half(-3 * min_sub).bits(), 0x8003);

    // Exact round trips for every subnormal.
    for (std::uint16_t m = 1; m < 0x400; ++m) {
        Half h = Half::fromBits(m);
        EXPECT_FLOAT_EQ(h.toFloat(), m * min_sub);
    }
}

TEST(Fp16Test, UnderflowToZero)
{
    const float half_min_sub = std::ldexp(1.0f, -25);
    EXPECT_EQ(Half(half_min_sub).bits(), 0x0000);      // tie to even
    EXPECT_EQ(Half(half_min_sub * 1.5f).bits(), 0x0001); // above: up
    EXPECT_EQ(Half(std::ldexp(1.0f, -30)).bits(), 0x0000);
    EXPECT_EQ(Half(-std::ldexp(1.0f, -30)).bits(), 0x8000);
}

TEST(Fp16Test, SpecialValues)
{
    EXPECT_TRUE(Half(std::numeric_limits<float>::infinity()).isInf());
    EXPECT_TRUE(Half(std::numeric_limits<float>::quiet_NaN()).isNan());
    EXPECT_TRUE(std::isinf(Half::infinity().toFloat()));
    EXPECT_TRUE(std::isnan(Half::quietNan().toFloat()));
    EXPECT_FALSE(Half::quietNan() == Half::quietNan());
    EXPECT_TRUE(Half(0.0f) == Half(-0.0f));
    EXPECT_FLOAT_EQ(Half::max().toFloat(), 65504.0f);
}

TEST(Fp16Test, ArithmeticMatchesDirectRounding)
{
    // Via-float arithmetic must equal rounding the exact result.
    EXPECT_EQ((Half(1.5f) + Half(2.25f)).bits(), Half(3.75f).bits());
    EXPECT_EQ((Half(3.0f) * Half(7.0f)).bits(), Half(21.0f).bits());
    EXPECT_EQ((Half(1.0f) / Half(3.0f)).bits(), Half(1.0f / 3.0f).bits());
    EXPECT_EQ((-Half(2.0f)).bits(), Half(-2.0f).bits());
    // Saturating overflow to inf.
    EXPECT_TRUE((Half::max() + Half::max()).isInf());
}

TEST(Fp16Test, RandomArithmeticCloseToDouble)
{
    SplitMix64 rng(42);
    for (int i = 0; i < 5000; ++i) {
        double a = rng.nextDouble(-100.0, 100.0);
        double b = rng.nextDouble(-100.0, 100.0);
        Half ha(a), hb(b);
        double ra = ha.toFloat(), rb = hb.toFloat();

        // One op accumulates at most 0.5 ulp of the result plus input
        // quantisation; bound loosely at 2^-9 relative.
        double sum = static_cast<double>((ha + hb).toFloat());
        EXPECT_NEAR(sum, ra + rb,
                    std::abs(ra + rb) * 0x1p-9 + 0x1p-9);
        double prod = static_cast<double>((ha * hb).toFloat());
        EXPECT_NEAR(prod, ra * rb, std::abs(ra * rb) * 0x1p-9 + 0x1p-9);
    }
}

TEST(Fp16Test, FmaRoundsOnce)
{
    // Choose values where (a*b) rounded then +c differs from fused:
    // a = 1 + 2^-10, b = 1 + 2^-10 -> a*b = 1 + 2^-9 + 2^-20.
    Half a = Half::fromBits(0x3c01);
    Half b = Half::fromBits(0x3c01);
    Half c(-1.0f);
    // Fused: (1 + 2^-9 + 2^-20) - 1 = 2^-9 + 2^-20 -> rounds to
    // 0x1.004p-9 -> nearest half of 2^-9*(1+2^-11) is 2^-9 (tie down?
    // no: 2^-20 = 2^-9 * 2^-11 which is exactly the half-ulp of the
    // 2^-9 binade... ulp(2^-9)=2^-19, half-ulp 2^-20: tie -> even).
    Half fused = fmaHalf(a, b, c);
    EXPECT_FLOAT_EQ(fused.toFloat(), std::ldexp(1.0f, -9));
    // Unfused: a*b rounds 1+2^-9+2^-20 to 1+2^-9 (tie to even on the
    // last bit? ulp(1)=2^-10; value = 1 + 2.002*2^-10 -> rounds to
    // 1+2*2^-10), then -1 gives exactly 2^-9. Same here; the cases
    // differ for magnitudes near the subnormal boundary:
    Half tiny = Half::fromBits(0x0001); // 2^-24
    Half r1 = fmaHalf(tiny, Half(0.5f), Half(0.0f));
    // Exact product 2^-25 ties to even -> 0.
    EXPECT_TRUE(r1.isZero());
}

TEST(Fp16Test, ComparisonOperators)
{
    EXPECT_TRUE(Half(1.0f) < Half(2.0f));
    EXPECT_FALSE(Half(2.0f) < Half(1.0f));
    EXPECT_TRUE(Half(-1.0f) < Half(0.0f));
    EXPECT_FALSE(Half::quietNan() < Half(1.0f));
}

TEST(Fp16Test, LutMatchesReferenceOnAllEncodings)
{
    // The widening LUT must agree with the exact bit-manipulation
    // routine on every one of the 65,536 encodings, bit for bit —
    // including every NaN payload, +-inf, all subnormals, and +-0.
    for (std::uint32_t b = 0; b <= 0xffff; ++b) {
        const auto bits = static_cast<std::uint16_t>(b);
        const float lut = Half::fromBits(bits).toFloat();
        const float ref = Half::halfToFloat(bits);
        EXPECT_EQ(std::bit_cast<std::uint32_t>(lut),
                  std::bit_cast<std::uint32_t>(ref))
            << "half bits 0x" << std::hex << b;
    }
}

TEST(Fp16Test, FastFromFloatMatchesReferenceOnAllHalfImages)
{
    // Round-trip every encoding: fromFloat(halfToFloat(h)) == h for all
    // finite non-NaN h, and fast == reference everywhere (NaNs keep the
    // same payload mapping in both).
    for (std::uint32_t b = 0; b <= 0xffff; ++b) {
        const auto bits = static_cast<std::uint16_t>(b);
        const Half h = Half::fromBits(bits);
        const float f = h.toFloat();
        EXPECT_EQ(Half::fromFloat(f), Half::fromFloatReference(f))
            << "half bits 0x" << std::hex << b;
        if (!h.isNan()) {
            EXPECT_EQ(Half::fromFloat(f), bits)
                << "half bits 0x" << std::hex << b;
        }
    }
}

TEST(Fp16Test, FastFromFloatMatchesReferenceOnRoundingBoundaries)
{
    // For every pair of adjacent finite halves, the exact midpoint and
    // its float neighbours on each side exercise all round/tie
    // decisions; the fast converter must match the reference on each.
    auto check = [](float f) {
        EXPECT_EQ(Half::fromFloat(f), Half::fromFloatReference(f))
            << "float bits 0x" << std::hex
            << std::bit_cast<std::uint32_t>(f);
    };
    for (std::uint32_t b = 0; b < 0x7bff; ++b) {
        const float lo = Half::halfToFloat(static_cast<std::uint16_t>(b));
        const float hi =
            Half::halfToFloat(static_cast<std::uint16_t>(b + 1));
        const float mid = (lo + hi) / 2; // exact in float
        check(mid);
        check(std::nextafterf(mid, lo));
        check(std::nextafterf(mid, hi));
        check(-mid);
        check(std::nextafterf(-mid, -lo));
        check(std::nextafterf(-mid, -hi));
    }
    // Overflow threshold: 65520 ties up to inf, just below stays max.
    check(65520.0f);
    check(std::nextafterf(65520.0f, 0.0f));
    check(std::nextafterf(65520.0f, 1e30f));
    // Underflow threshold around 2^-25.
    check(std::ldexp(1.0f, -25));
    check(std::nextafterf(std::ldexp(1.0f, -25), 0.0f));
    check(std::nextafterf(std::ldexp(1.0f, -25), 1.0f));
    check(std::numeric_limits<float>::infinity());
    check(-std::numeric_limits<float>::infinity());
    check(std::numeric_limits<float>::max());
    check(std::numeric_limits<float>::denorm_min());
}

TEST(Fp16Test, FastFromFloatMatchesReferenceOnRandomFloats)
{
    SplitMix64 rng(1234);
    for (int i = 0; i < 200000; ++i) {
        const auto u = static_cast<std::uint32_t>(rng.next());
        const float f = std::bit_cast<float>(u);
        EXPECT_EQ(Half::fromFloat(f), Half::fromFloatReference(f))
            << "float bits 0x" << std::hex << u;
    }
}

TEST(Fp16Test, SpanConversionsMatchScalar)
{
    // Span kernels (possibly F16C/AVX2) must produce the same bits as
    // the scalar definitions, including over vector-width remainders.
    SplitMix64 rng(99);
    for (std::size_t n : {0ul, 1ul, 7ul, 8ul, 9ul, 31ul, 64ul, 1000ul}) {
        std::vector<Half> hs(n), outH(n), outM(n);
        std::vector<float> fs(n), fs2(n), outF(n);
        for (std::size_t i = 0; i < n; ++i) {
            hs[i] = Half::fromBits(
                static_cast<std::uint16_t>(rng.next()));
            if (hs[i].isNan()) // NaN bit patterns may legally vary
                hs[i] = Half::one(); // through hardware converters
            fs[i] = static_cast<float>(rng.nextDouble(-300.0, 300.0));
            fs2[i] = static_cast<float>(rng.nextDouble(-300.0, 300.0));
        }

        fp16::toFloatSpan(hs.data(), outF.data(), n);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(std::bit_cast<std::uint32_t>(outF[i]),
                      std::bit_cast<std::uint32_t>(hs[i].toFloat()));

        fp16::fromFloatSpan(fs.data(), outH.data(), n);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(outH[i].bits(), Half(fs[i]).bits());

        fp16::mulToHalfSpan(fs.data(), fs2.data(), outM.data(), n);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(outM[i].bits(), Half(fs[i] * fs2[i]).bits());

        if (n % 2 == 0 && n > 0) {
            std::vector<Half> sums(n / 2);
            fp16::addPairsToHalfSpan(fs.data(), sums.data(), n / 2);
            for (std::size_t i = 0; i < n / 2; ++i)
                EXPECT_EQ(sums[i].bits(),
                          Half(fs[2 * i] + fs[2 * i + 1]).bits());
        }
    }
}

} // namespace
} // namespace cxlpnm
