/**
 * @file
 * Overload-protection tests (serve/admission, serve/overload,
 * serve/breaker plus their scheduler/dispatcher integration): the
 * token-bucket admission gate, deadline-aware shedding and queue
 * timeouts, the brownout ladder, circuit-breaker state machine and
 * its byte-deterministic transition log, the bursty (MMPP) arrival
 * mode, multi-tenant accounting, snapshot v2 round-trips with the
 * overload front door, and - first of all - the regression pin that
 * with every overload knob off the serving stack reproduces the
 * pre-overload goldens bit for bit.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "serve/cost_model.hh"
#include "serve/dispatcher.hh"
#include "serve/request_generator.hh"
#include "serve/snapshot.hh"
#include "sim/fault.hh"
#include "sim/thread_pool.hh"

namespace cxlpnm
{
namespace serve
{
namespace
{

/** Hand-built cost model: overload logic needs no event sim. */
BatchCostModel
syntheticCost()
{
    BatchCostModel c;
    c.sumCurve.addSample(1, 1.0e-3);
    c.sumCurve.addSample(1024, 10.0e-3);
    c.genWeightSeconds = 10.0e-3;
    c.genKvPerTokenSeconds = 2.0e-6;
    c.perTokenComputeSeconds = 0.2e-3;
    return c;
}

std::string
statsDump(const ServeMetrics &m)
{
    std::ostringstream os;
    m.dumpStats(os);
    return os.str();
}

ServeRequest
makeReq(std::uint64_t id, double arrival, std::uint64_t in = 24,
        std::uint64_t out = 8, std::uint64_t tenant = 0,
        double deadline = 0.0)
{
    ServeRequest r;
    r.id = id;
    r.arrivalSeconds = arrival;
    r.inputTokens = in;
    r.outputTokens = out;
    r.tenant = tenant;
    r.deadlineSeconds = deadline;
    return r;
}

// ---- the PR 7 regression pin: knobs off => bit-identical serving ----

TEST(OverloadRegression, GoldenScenarioAUnchanged)
{
    const auto model = llm::ModelConfig::tiny();
    TraceConfig t;
    t.arrivals = ArrivalProcess::Poisson;
    t.requestsPerSec = 30.0;
    t.numRequests = 48;
    t.input = LengthDistribution::fixed(24);
    t.output = LengthDistribution::fixed(32);
    t.seed = 7;
    MetricsConfig mcfg;
    mcfg.sloTokenSeconds = 0.05;
    mcfg.sloTtftSeconds = 2.0;
    ServeMetrics metrics(nullptr, "serve", mcfg);
    SchedulerConfig cfg;
    cfg.maxBatch = 8;
    BatchScheduler s(model, syntheticCost(),
                     model.kvCacheBytes(24 + 32) * 6, cfg, metrics);
    RequestGenerator gen(t);
    while (!gen.exhausted())
        s.submit(gen.next());
    s.drain();
    const auto r = metrics.report(s.clockSeconds());

    // Bit-exact values captured from the pre-overload build. Any
    // drift here means an "off" overload knob changed served bytes.
    EXPECT_EQ(s.clockSeconds(), 2.8797286099706731);
    EXPECT_EQ(r.completed, 48u);
    EXPECT_EQ(r.tokensGenerated, 1536u);
    EXPECT_EQ(r.ttftP50, 0.5);
    EXPECT_EQ(r.tokenLatencyP99, 0.013000000000000001);
    EXPECT_EQ(r.meanQueueDepth, 21.136531365313655);
    EXPECT_EQ(r.sloFraction, 1.0);
    EXPECT_EQ(r.goodputTokensPerSec, 533.38359548250708);
    // The new counters exist but count the same work.
    EXPECT_EQ(r.submitted, 48u);
    EXPECT_EQ(r.shedRequests, 0u);
    EXPECT_EQ(r.throttledRequests, 0u);
}

TEST(OverloadRegression, GoldenScenarioBUnchanged)
{
    const auto model = llm::ModelConfig::tiny();
    TraceConfig t;
    t.arrivals = ArrivalProcess::Poisson;
    t.requestsPerSec = 50.0;
    t.numRequests = 64;
    t.input = LengthDistribution::uniform(16, 40);
    t.output = LengthDistribution::fixed(24);
    t.seed = 11;
    t.prefixReuse = 0.5;
    t.prefixGroups = 3;
    t.prefixTokens = 16;
    ServeMetrics metrics(nullptr, "serve", MetricsConfig{});
    SchedulerConfig cfg;
    cfg.maxBatch = 6;
    cfg.paged.enabled = true;
    cfg.paged.blockTokens = 8;
    core::ParallelismPlan plan;
    plan.modelParallel = 1;
    plan.dataParallel = 2;
    ApplianceDispatcher disp(model, syntheticCost(), plan,
                             model.kvCacheBytes(8) * 40, cfg, metrics);
    RequestGenerator gen(t);
    while (!gen.exhausted())
        disp.submit(gen.next());
    disp.drain();
    const auto r = metrics.report(disp.clockSeconds());

    EXPECT_EQ(disp.clockSeconds(), 1.6875197126099701);
    EXPECT_EQ(r.completed, 64u);
    EXPECT_EQ(r.tokensGenerated, 1536u);
    EXPECT_EQ(r.prefixHitBlocks, 58u);
    EXPECT_EQ(r.preemptionsForCapacity, 2u);
    EXPECT_EQ(r.ttftP50, 0.10000000000000001);
    EXPECT_EQ(r.tokenLatencyP99, 0.013000000000000001);
    EXPECT_EQ(r.kvFragmentation, 0.077123902904302696);
    EXPECT_FALSE(disp.overloadConfigured());
}

TEST(OverloadRegression, OffModeStatsDumpHasNoOverloadGroup)
{
    const auto model = llm::ModelConfig::tiny();
    ServeMetrics metrics(nullptr, "serve");
    SchedulerConfig cfg;
    BatchScheduler s(model, syntheticCost(),
                     model.kvCacheBytes(32) * 4, cfg, metrics);
    s.submit(makeReq(0, 0.0));
    s.drain();
    // noteSubmitted fires on every submit but must not create the
    // overload stat sub-group: off-mode stat dumps stay byte-stable.
    EXPECT_EQ(metrics.report(s.clockSeconds()).submitted, 1u);
    EXPECT_EQ(statsDump(metrics).find("overload"), std::string::npos);
    metrics.enableOverloadStats();
    EXPECT_NE(statsDump(metrics).find("overload"), std::string::npos);
}

// ---- admission control ----

TEST(Admission, TokenBucketRefillAndBurst)
{
    TokenBucket b(2.0, 4.0); // 2 tokens/s, burst 4, starts full
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(b.tryTake(0.0)) << i;
    EXPECT_FALSE(b.tryTake(0.0));
    EXPECT_FALSE(b.tryTake(0.4)); // 0.8 tokens refilled: still < 1
    EXPECT_TRUE(b.tryTake(1.0));  // 2.0 refilled
    EXPECT_TRUE(b.tryTake(1.0));
    EXPECT_FALSE(b.tryTake(1.0));
    // Refill clamps at the burst.
    EXPECT_TRUE(b.tryTake(100.0));
    EXPECT_EQ(b.fill(), 3.0);
}

TEST(Admission, GateDecisionsAndNames)
{
    AdmissionConfig cfg;
    cfg.enabled = true;
    cfg.tenantRatePerSec = 1.0;
    cfg.tenantBurst = 1.0;
    cfg.maxQueueDepth = 2;
    cfg.kvHeadroomFraction = 0.5;
    AdmissionController ctl(cfg);

    const auto r0 = makeReq(0, 0.0, 24, 8, /*tenant=*/0);
    EXPECT_EQ(ctl.decide(r0, 0.0, 0, 0.0), AdmissionDecision::Admit);
    // Tenant 0's bucket is now empty; tenant 1's is untouched.
    EXPECT_EQ(ctl.decide(r0, 0.0, 0, 0.0),
              AdmissionDecision::Throttled);
    const auto r1 = makeReq(1, 0.0, 24, 8, /*tenant=*/1);
    EXPECT_EQ(ctl.decide(r1, 0.0, 5, 0.0),
              AdmissionDecision::QueueFull);
    const auto r2 = makeReq(2, 0.0, 24, 8, /*tenant=*/2);
    EXPECT_EQ(ctl.decide(r2, 0.0, 0, 0.9),
              AdmissionDecision::KvSaturated);
    EXPECT_EQ(ctl.decide(r2, 10.0, 1, 0.2), AdmissionDecision::Admit);

    EXPECT_STREQ(admissionDecisionName(AdmissionDecision::Admit),
                 "admit");
    EXPECT_STREQ(admissionDecisionName(AdmissionDecision::Throttled),
                 "throttled");
    EXPECT_STREQ(admissionDecisionName(AdmissionDecision::QueueFull),
                 "queue_full");
    EXPECT_STREQ(admissionDecisionName(AdmissionDecision::KvSaturated),
                 "kv_saturated");
}

TEST(Admission, ConfigValidationThrowsTyped)
{
    AdmissionConfig a;
    a.enabled = true;
    a.tenantRatePerSec = -1.0;
    EXPECT_THROW(a.validate(), OverloadConfigError);
    a.tenantRatePerSec = 1.0;
    a.tenantBurst = 0.5;
    EXPECT_THROW(a.validate(), OverloadConfigError);

    ShedConfig s;
    s.enabled = true;
    s.queueTimeoutSeconds = -1.0;
    EXPECT_THROW(s.validate(), OverloadConfigError);
    s.queueTimeoutSeconds = 0.0;
    s.estimateMargin = 0.0;
    EXPECT_THROW(s.validate(), OverloadConfigError);

    BrownoutConfig b;
    b.enabled = true;
    b.queueLowWatermark = 10;
    b.queueHighWatermark = 5; // inverted watermarks
    EXPECT_THROW(b.validate(), OverloadConfigError);
    b.queueLowWatermark = 1;
    b.sustainIterations = 0;
    EXPECT_THROW(b.validate(), OverloadConfigError);

    CircuitBreakerConfig c;
    c.enabled = true;
    c.windowSize = 4;
    c.failureThreshold = 5; // threshold beyond the window
    EXPECT_THROW(c.validate(), OverloadConfigError);
    c.failureThreshold = 2;
    c.backoffBaseSeconds = 0.0;
    EXPECT_THROW(c.validate(), OverloadConfigError);
}

// ---- deadline shedding and queue timeouts ----

TEST(Shedding, DeadlineShedsStrictlyLateOnly)
{
    const auto model = llm::ModelConfig::tiny();
    const auto cost = syntheticCost();
    SchedulerConfig cfg;
    cfg.shed.enabled = true;

    // The admission-time estimate at zero wait is exactly the head's
    // own prefill; equality counts as met (the PR 4 pin), so a
    // deadline == estimate request runs and a hair-lower one sheds.
    const double estimate = cost.prefillSeconds(24, 0);
    {
        ServeMetrics metrics(nullptr, "serve");
        BatchScheduler s(model, cost, model.kvCacheBytes(32) * 4, cfg,
                         metrics);
        s.submit(makeReq(0, 0.0, 24, 8, 0, estimate));
        s.drain();
        EXPECT_EQ(metrics.report(s.clockSeconds()).completed, 1u);
        EXPECT_TRUE(s.shed().empty());
    }
    {
        ServeMetrics metrics(nullptr, "serve");
        BatchScheduler s(model, cost, model.kvCacheBytes(32) * 4, cfg,
                         metrics);
        s.submit(makeReq(0, 0.0, 24, 8, 0, estimate * 0.5));
        s.drain();
        const auto r = metrics.report(s.clockSeconds());
        EXPECT_EQ(r.completed, 0u);
        EXPECT_EQ(r.shedRequests, 1u);
        EXPECT_EQ(r.timedOutRequests, 0u);
        ASSERT_EQ(s.shed().size(), 1u);
        EXPECT_EQ(s.shed()[0].state, RequestState::Shed);
        EXPECT_EQ(s.shed()[0].finishSeconds, 0.0);
    }
}

TEST(Shedding, QueueTimeoutDropsWaitingRequests)
{
    const auto model = llm::ModelConfig::tiny();
    SchedulerConfig cfg;
    cfg.maxBatch = 1; // the second request must wait its turn out
    cfg.shed.enabled = true;
    cfg.shed.queueTimeoutSeconds = 0.02;
    ServeMetrics metrics(nullptr, "serve");
    BatchScheduler s(model, syntheticCost(),
                     model.kvCacheBytes(64) * 4, cfg, metrics);
    s.submit(makeReq(0, 0.0, 24, 16));
    s.submit(makeReq(1, 0.001, 24, 16));
    s.drain();
    const auto r = metrics.report(s.clockSeconds());
    EXPECT_EQ(r.completed, 1u);
    EXPECT_EQ(r.timedOutRequests, 1u);
    EXPECT_EQ(r.shedRequests, 0u);
    ASSERT_EQ(s.shed().size(), 1u);
    EXPECT_EQ(s.shed()[0].id, 1u);
    EXPECT_EQ(s.shed()[0].state, RequestState::Shed);
    // submitted = completed + timed out.
    EXPECT_EQ(r.submitted, r.completed + r.timedOutRequests);
}

// ---- brownout ladder ----

TEST(Brownout, LadderClimbsAndRecoversWithHysteresis)
{
    BrownoutConfig cfg;
    cfg.enabled = true;
    cfg.queueHighWatermark = 10;
    cfg.queueLowWatermark = 2;
    cfg.sustainIterations = 3;
    cfg.maxLevel = 2;
    cfg.contextCapFactor = 0.5;
    cfg.batchCapFactor = 0.5;
    BrownoutController b(cfg);

    EXPECT_FALSE(b.observe(12));
    EXPECT_FALSE(b.observe(12));
    EXPECT_TRUE(b.observe(12)); // 3 sustained -> level 1
    EXPECT_EQ(b.level(), 1u);
    // A mid-band sample resets both streaks (hysteresis).
    EXPECT_FALSE(b.observe(5));
    EXPECT_FALSE(b.observe(12));
    EXPECT_FALSE(b.observe(12));
    EXPECT_TRUE(b.observe(12)); // level 2 = maxLevel
    EXPECT_EQ(b.level(), 2u);
    EXPECT_FALSE(b.observe(12)); // pinned at the ceiling
    EXPECT_EQ(b.level(), 2u);

    EXPECT_EQ(b.contextCap(1000), 250u); // 1000 * 0.5^2
    EXPECT_EQ(b.batchCap(8), 2u);
    EXPECT_EQ(b.batchCap(1), 1u); // never below one slot

    EXPECT_FALSE(b.observe(1));
    EXPECT_FALSE(b.observe(1));
    EXPECT_TRUE(b.observe(1)); // sustained relief -> level 1
    EXPECT_EQ(b.level(), 1u);
    EXPECT_EQ(b.batchCap(8), 4u);
}

TEST(Brownout, EngagesUnderSchedulerQueuePressure)
{
    const auto model = llm::ModelConfig::tiny();
    SchedulerConfig cfg;
    cfg.maxBatch = 2;
    cfg.brownout.enabled = true;
    cfg.brownout.queueHighWatermark = 4;
    cfg.brownout.queueLowWatermark = 1;
    cfg.brownout.sustainIterations = 2;
    cfg.brownout.maxLevel = 2;
    ServeMetrics metrics(nullptr, "serve");
    BatchScheduler s(model, syntheticCost(),
                     model.kvCacheBytes(64) * 32, cfg, metrics);
    for (std::uint64_t i = 0; i < 24; ++i)
        s.submit(makeReq(i, 0.0, 24, 16));
    s.drain();
    const auto r = metrics.report(s.clockSeconds());
    EXPECT_GE(r.brownoutPeakLevel, 1u);
    EXPECT_EQ(r.completed, 24u); // degraded, but nothing dropped
}

// ---- circuit breaker ----

CircuitBreakerConfig
breakerCfg(double jitter = 0.0)
{
    CircuitBreakerConfig c;
    c.enabled = true;
    c.windowSize = 4;
    c.failureThreshold = 2;
    c.backoffBaseSeconds = 1.0;
    c.backoffMaxSeconds = 8.0;
    c.jitterFraction = jitter;
    c.seed = 9;
    return c;
}

TEST(Breaker, TripsOpensProbesAndCloses)
{
    CircuitBreaker b(breakerCfg(), 0);
    EXPECT_EQ(b.state(), BreakerState::Closed);
    b.noteIteration(true, 0.01, 0.1);
    b.noteIteration(false, 0.01, 0.2);
    EXPECT_EQ(b.state(), BreakerState::Closed);
    b.noteIteration(false, 0.01, 0.3); // 2 bad in window of 4: trip
    EXPECT_EQ(b.state(), BreakerState::Open);
    EXPECT_EQ(b.trips(), 1u);
    EXPECT_EQ(b.reopenAtSeconds(), 1.3); // backoff 1.0, no jitter

    EXPECT_FALSE(b.wouldAllow(0.5));
    EXPECT_FALSE(b.allowRoute(0.5));
    EXPECT_TRUE(b.wouldAllow(1.3));
    // wouldAllow is side-effect-free: still Open until allowRoute.
    EXPECT_EQ(b.state(), BreakerState::Open);

    EXPECT_TRUE(b.allowRoute(1.3)); // Open -> HalfOpen, probe slot
    EXPECT_EQ(b.state(), BreakerState::HalfOpen);
    // Exactly one probe: the slot is taken until resolved.
    EXPECT_FALSE(b.wouldAllow(1.4));
    EXPECT_FALSE(b.allowRoute(1.4));

    b.noteIteration(true, 0.01, 1.5); // probe succeeds
    EXPECT_EQ(b.state(), BreakerState::Closed);
    EXPECT_EQ(b.openCount(), 0u); // reset on recovery...
    EXPECT_EQ(b.trips(), 1u);     // ...but the lifetime count stays

    const std::string &log = b.log();
    EXPECT_NE(log.find("closed->open"), std::string::npos);
    EXPECT_NE(log.find("open->half_open"), std::string::npos);
    EXPECT_NE(log.find("half_open->closed probe_ok"),
              std::string::npos);
    EXPECT_STREQ(breakerStateName(BreakerState::HalfOpen),
                 "half_open");
}

TEST(Breaker, ProbeFailureDoublesBackoff)
{
    CircuitBreaker b(breakerCfg(), 0);
    b.noteIteration(false, 0.01, 0.0);
    b.noteIteration(false, 0.01, 0.0); // trip #1: backoff 1.0
    EXPECT_EQ(b.reopenAtSeconds(), 1.0);
    EXPECT_TRUE(b.allowRoute(1.0));
    b.noteIteration(false, 0.01, 1.1); // probe fails: backoff 2.0
    EXPECT_EQ(b.state(), BreakerState::Open);
    EXPECT_EQ(b.reopenAtSeconds(), 3.1);
    EXPECT_EQ(b.trips(), 2u);
    EXPECT_TRUE(b.allowRoute(3.1));
    b.noteIteration(false, 0.01, 3.2); // backoff 4.0
    EXPECT_EQ(b.reopenAtSeconds(), 7.2);
    EXPECT_NE(b.log().find("half_open->open probe_failed"),
              std::string::npos);
}

TEST(Breaker, JitterIsDeterministicPerSeedAndGroup)
{
    CircuitBreaker a1(breakerCfg(0.25), 0), a2(breakerCfg(0.25), 0);
    CircuitBreaker c(breakerCfg(0.25), 1);
    for (CircuitBreaker *b : {&a1, &a2, &c}) {
        b->noteIteration(false, 0.01, 0.0);
        b->noteIteration(false, 0.01, 0.0);
    }
    // Same seed + group: identical jitter. Different group: a
    // different stream (lockstep reopening is the failure mode).
    EXPECT_EQ(a1.reopenAtSeconds(), a2.reopenAtSeconds());
    EXPECT_NE(a1.reopenAtSeconds(), c.reopenAtSeconds());
    // Jitter is bounded by the configured fraction.
    EXPECT_GE(a1.reopenAtSeconds(), 1.0);
    EXPECT_LE(a1.reopenAtSeconds(), 1.25);
}

TEST(Breaker, LatencyBreachCountsAgainstWindow)
{
    auto cfg = breakerCfg();
    cfg.latencyThresholdSeconds = 0.05;
    CircuitBreaker b(cfg, 0);
    b.noteIteration(true, 0.2, 0.2); // slow but successful: a breach
    b.noteIteration(true, 0.2, 0.4);
    EXPECT_EQ(b.state(), BreakerState::Open);
    EXPECT_NE(b.log().find("closed->open"), std::string::npos);
}

TEST(Breaker, SnapshotStateRoundTrips)
{
    CircuitBreaker a(breakerCfg(0.25), 3);
    a.noteIteration(true, 0.01, 0.1);
    a.noteIteration(false, 0.01, 0.2);
    a.noteIteration(false, 0.01, 0.3); // tripped
    const auto s = a.snapshotState();
    CircuitBreaker b(breakerCfg(0.25), 3);
    b.restore(s);
    EXPECT_EQ(b.state(), a.state());
    EXPECT_EQ(b.trips(), a.trips());
    EXPECT_EQ(b.openCount(), a.openCount());
    EXPECT_EQ(b.reopenAtSeconds(), a.reopenAtSeconds());
    // The restored window drives identical future decisions.
    EXPECT_EQ(b.wouldAllow(5.0), a.wouldAllow(5.0));
}

// ---- fault kinds feeding the breaker ----

TEST(Faults, NewKindsHaveNames)
{
    EXPECT_STREQ(fault::faultKindName(fault::FaultKind::GroupFailStop),
                 "group_fail_stop");
    EXPECT_STREQ(fault::faultKindName(fault::FaultKind::IterationSlow),
                 "iteration_slow");
}

TEST(Faults, GroupFailStopUsesLongCooldown)
{
    const auto model = llm::ModelConfig::tiny();
    auto run = [&](fault::FaultKind kind) {
        SchedulerConfig cfg;
        cfg.ras.degradedCooldownSeconds = 0.5;
        cfg.ras.failStopCooldownSeconds = 5.0;
        ServeMetrics metrics(nullptr, "serve");
        metrics.registerDevice();
        BatchScheduler s(model, syntheticCost(),
                         model.kvCacheBytes(32) * 4, cfg, metrics);
        fault::FaultInjector inj(4);
        inj.arm(fault::FaultSpec::scriptedAccess("grp", kind, 0));
        s.attachFaultSite(inj.site("grp"));
        s.submit(makeReq(0, 0.0, 24, 8));
        s.drain();
        return metrics.report(s.clockSeconds());
    };
    const auto fail_stop = run(fault::FaultKind::GroupFailStop);
    const auto iter_fail = run(fault::FaultKind::IterationFail);
    EXPECT_EQ(fail_stop.degradedSeconds, 5.0);
    EXPECT_EQ(iter_fail.degradedSeconds, 0.5);
    EXPECT_EQ(fail_stop.completed, 1u); // retried and finished
    EXPECT_EQ(iter_fail.completed, 1u);
}

TEST(Faults, StragglerSlowdownTripsLatencyBreaker)
{
    const auto model = llm::ModelConfig::tiny();
    const auto cost = syntheticCost();
    // Normal single-request iterations stay well under 25 ms; a 4x
    // straggler blows through it.
    auto cfg = breakerCfg();
    cfg.failureThreshold = 1;
    cfg.latencyThresholdSeconds = 0.025;
    auto run = [&](bool slow) {
        SchedulerConfig scfg;
        ServeMetrics metrics(nullptr, "serve");
        BatchScheduler s(model, cost, model.kvCacheBytes(32) * 4,
                         scfg, metrics);
        CircuitBreaker b(cfg, 0);
        s.setBreaker(&b);
        fault::FaultInjector inj(4);
        // Access 0 is the cheap prefill iteration (~1.2 ms even x4);
        // access 1 is a ~10 ms decode step whose 4x stretch breaches.
        if (slow)
            inj.arm(fault::FaultSpec::scriptedAccess(
                "grp", fault::FaultKind::IterationSlow, 1));
        s.attachFaultSite(inj.site("grp"));
        s.submit(makeReq(0, 0.0, 24, 8));
        s.drain();
        return b.trips();
    };
    EXPECT_EQ(run(false), 0u);
    EXPECT_GE(run(true), 1u);
}

// ---- bursty (MMPP) arrivals, tenants, deadlines ----

TraceConfig
burstyTrace(std::size_t n)
{
    TraceConfig t;
    t.arrivals = ArrivalProcess::Bursty;
    t.requestsPerSec = 40.0;
    t.numRequests = n;
    t.input = LengthDistribution::fixed(24);
    t.output = LengthDistribution::fixed(8);
    t.seed = 21;
    t.burstOnSeconds = 0.25;
    t.burstOffSeconds = 0.5;
    t.burstOffRateFraction = 0.0;
    return t;
}

TEST(Bursty, DeterministicAndMonotone)
{
    const auto a = RequestGenerator::generate(burstyTrace(64));
    const auto b = RequestGenerator::generate(burstyTrace(64));
    ASSERT_EQ(a.size(), 64u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrivalSeconds, b[i].arrivalSeconds) << i;
        if (i > 0) {
            EXPECT_GE(a[i].arrivalSeconds, a[i - 1].arrivalSeconds);
        }
        EXPECT_TRUE(std::isfinite(a[i].arrivalSeconds));
    }
}

TEST(Bursty, ZeroOffDwellDegeneratesToFiniteStream)
{
    auto t = burstyTrace(32);
    t.burstOffSeconds = 0.0; // zero-dwell OFF: effectively Poisson
    const auto a = RequestGenerator::generate(t);
    ASSERT_EQ(a.size(), 32u);
    EXPECT_TRUE(std::isfinite(a.back().arrivalSeconds));
}

TEST(Bursty, TrickleOffPhaseStillArrives)
{
    auto t = burstyTrace(32);
    t.burstOffRateFraction = 0.1; // OFF phase trickles at 10%
    const auto a = RequestGenerator::generate(t);
    ASSERT_EQ(a.size(), 32u);
    for (std::size_t i = 1; i < a.size(); ++i)
        EXPECT_GE(a[i].arrivalSeconds, a[i - 1].arrivalSeconds);
}

TEST(Bursty, ValidationThrowsTyped)
{
    auto bad = burstyTrace(8);
    bad.burstOnSeconds = 0.0;
    EXPECT_THROW(RequestGenerator gen(bad), TraceConfigError);
    bad = burstyTrace(8);
    bad.burstOffSeconds = -1.0;
    EXPECT_THROW(RequestGenerator gen(bad), TraceConfigError);
    bad = burstyTrace(8);
    bad.burstOffRateFraction = 1.5;
    EXPECT_THROW(RequestGenerator gen(bad), TraceConfigError);
    auto t = burstyTrace(8);
    t.numTenants = 0;
    EXPECT_THROW(RequestGenerator gen(t), TraceConfigError);
    t = burstyTrace(8);
    t.ttftDeadlineSeconds = -0.5;
    EXPECT_THROW(RequestGenerator gen(t), TraceConfigError);
}

TEST(Tenants, StampingAndStreamStability)
{
    TraceConfig base;
    base.arrivals = ArrivalProcess::Poisson;
    base.requestsPerSec = 20.0;
    base.numRequests = 40;
    base.input = LengthDistribution::uniform(8, 40);
    base.output = LengthDistribution::fixed(8);
    base.seed = 5;

    auto multi = base;
    multi.numTenants = 3;
    multi.ttftDeadlineSeconds = 1.5;
    const auto m = RequestGenerator::generate(multi);
    bool seen_nonzero = false;
    for (const auto &r : m) {
        EXPECT_LT(r.tenant, 3u);
        EXPECT_EQ(r.deadlineSeconds, 1.5);
        seen_nonzero = seen_nonzero || r.tenant != 0;
    }
    EXPECT_TRUE(seen_nonzero);

    // Single tenant + deadlines must not perturb the RNG stream:
    // arrivals and lengths match the pre-overload trace bit for bit.
    auto stamped = base;
    stamped.numTenants = 1;
    stamped.ttftDeadlineSeconds = 1.5;
    const auto a = RequestGenerator::generate(base);
    const auto b = RequestGenerator::generate(stamped);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrivalSeconds, b[i].arrivalSeconds);
        EXPECT_EQ(a[i].inputTokens, b[i].inputTokens);
        EXPECT_EQ(a[i].outputTokens, b[i].outputTokens);
        EXPECT_EQ(b[i].tenant, 0u);
        EXPECT_EQ(b[i].deadlineSeconds, 1.5);
    }
}

// ---- dispatcher integration: the full front door ----

struct FrontDoorRun
{
    ServeReport report;
    std::string breakerLogs;
    std::uint64_t rejectedByAdmission = 0;
};

FrontDoorRun
runFrontDoor(bool with_faults)
{
    const auto model = llm::ModelConfig::tiny();
    ServeMetrics metrics(nullptr, "serve");
    SchedulerConfig cfg;
    cfg.maxBatch = 4;
    cfg.shed.enabled = true;
    cfg.shed.queueTimeoutSeconds = 0.5;
    cfg.brownout.enabled = true;
    cfg.brownout.queueHighWatermark = 6;
    cfg.brownout.queueLowWatermark = 1;
    cfg.brownout.sustainIterations = 2;
    core::ParallelismPlan plan;
    plan.modelParallel = 1;
    plan.dataParallel = 2;
    ApplianceDispatcher disp(model, syntheticCost(), plan,
                             model.kvCacheBytes(64) * 16, cfg,
                             metrics);
    AdmissionConfig acfg;
    acfg.enabled = true;
    acfg.tenantRatePerSec = 20.0;
    acfg.tenantBurst = 10.0;
    acfg.maxQueueDepth = 12;
    // One whole-group outage is enough to open that group's breaker.
    auto bcfg = breakerCfg();
    bcfg.failureThreshold = 1;
    disp.configureOverload(acfg, bcfg);

    fault::FaultInjector inj(17);
    if (with_faults) {
        inj.arm(fault::FaultSpec::scriptedAccess(
            "app.group0.iteration", fault::FaultKind::GroupFailStop,
            1));
        inj.arm(fault::FaultSpec::scriptedAccess(
            "app.group0.iteration", fault::FaultKind::GroupFailStop,
            2));
        disp.attachFaultInjector(&inj, "app");
    }

    TraceConfig t = burstyTrace(96);
    t.requestsPerSec = 300.0; // far past what two tiny groups serve
    t.numTenants = 3;
    t.ttftDeadlineSeconds = 0.25;
    RequestGenerator gen(t);
    while (!gen.exhausted())
        disp.submit(gen.next());
    disp.drain();

    FrontDoorRun r;
    r.report = metrics.report(disp.clockSeconds());
    for (std::size_t g = 0; g < disp.groupCount(); ++g)
        if (const auto *b = disp.breaker(g))
            r.breakerLogs += b->log();
    r.rejectedByAdmission = disp.rejectedByAdmission().size();
    return r;
}

TEST(FrontDoor, AccountingIdentityAndTenantBreakdown)
{
    const auto run = runFrontDoor(false);
    const auto &r = run.report;
    EXPECT_EQ(r.submitted, 96u);
    EXPECT_EQ(r.submitted,
              r.completed + r.shedRequests + r.timedOutRequests +
                  r.throttledRequests + r.rejected + r.requestsFailed);
    EXPECT_GT(r.throttledRequests, 0u);
    EXPECT_GT(r.shedRequests + r.timedOutRequests, 0u);
    EXPECT_EQ(r.throttledRequests, run.rejectedByAdmission);

    // Per-tenant rows partition the totals.
    std::uint64_t sub = 0, comp = 0, shed = 0, tmo = 0, thr = 0;
    for (const auto &tn : r.tenants) {
        sub += tn.submitted;
        comp += tn.completed;
        shed += tn.shed;
        tmo += tn.timedOut;
        thr += tn.throttled;
    }
    EXPECT_EQ(sub, r.submitted);
    EXPECT_EQ(comp, r.completed);
    EXPECT_EQ(shed, r.shedRequests);
    EXPECT_EQ(tmo, r.timedOutRequests);
    EXPECT_EQ(thr, r.throttledRequests);
    EXPECT_GE(r.tenants.size(), 2u);

    // Inclusive attainment can never exceed the finished-only figure.
    EXPECT_LE(r.sloAttainment, 1.0);
    EXPECT_GT(r.servedFraction, 0.0);
    EXPECT_LT(r.servedFraction, 1.0);
}

TEST(FrontDoor, ScriptedFailStopTripsBreakerDeterministically)
{
    const auto run = runFrontDoor(true);
    EXPECT_GE(run.report.breakerOpens, 1u);
    EXPECT_NE(run.breakerLogs.find("closed->open"),
              std::string::npos);
    // Identity holds under faults too (retried work may fail).
    const auto &r = run.report;
    EXPECT_EQ(r.submitted,
              r.completed + r.shedRequests + r.timedOutRequests +
                  r.throttledRequests + r.rejected + r.requestsFailed);
}

TEST(FrontDoor, BreakerLogByteIdenticalAcrossThreadCounts)
{
    const auto reference = runFrontDoor(true);
    ASSERT_FALSE(reference.breakerLogs.empty());
    for (unsigned threads : {1u, 4u, 8u}) {
        std::vector<FrontDoorRun> runs(6);
        ThreadPool::parallelFor(runs.size(), threads,
                                [&](std::size_t i) {
                                    runs[i] = runFrontDoor(true);
                                });
        for (const auto &run : runs) {
            EXPECT_EQ(run.breakerLogs, reference.breakerLogs);
            EXPECT_EQ(run.report.completed,
                      reference.report.completed);
            EXPECT_EQ(run.report.breakerOpens,
                      reference.report.breakerOpens);
        }
    }
}

TEST(FrontDoor, ConfigureOverloadRejectsBadConfig)
{
    const auto model = llm::ModelConfig::tiny();
    ServeMetrics metrics(nullptr, "serve");
    SchedulerConfig cfg;
    core::ParallelismPlan plan;
    plan.modelParallel = 1;
    plan.dataParallel = 2;
    ApplianceDispatcher disp(model, syntheticCost(), plan,
                             model.kvCacheBytes(64) * 16, cfg,
                             metrics);
    AdmissionConfig acfg;
    acfg.enabled = true;
    acfg.tenantRatePerSec = -2.0;
    EXPECT_THROW(disp.configureOverload(acfg, CircuitBreakerConfig{}),
                 OverloadConfigError);
}

// ---- snapshot v2: the overload front door round-trips ----

/** A full overloaded serving stack (dispatcher + generator). */
struct OverStack
{
    llm::ModelConfig model = llm::ModelConfig::tiny();
    ServeMetrics metrics;
    ApplianceDispatcher disp;
    RequestGenerator gen;

    OverStack()
        : metrics(nullptr, "serve"), disp(makeDisp(metrics)),
          gen(makeTrace())
    {
        AdmissionConfig acfg;
        acfg.enabled = true;
        acfg.tenantRatePerSec = 8.0;
        acfg.tenantBurst = 4.0;
        acfg.maxQueueDepth = 10;
        disp.configureOverload(acfg, breakerCfg(0.25));
    }

    static TraceConfig
    makeTrace()
    {
        TraceConfig t;
        t.arrivals = ArrivalProcess::Bursty;
        t.requestsPerSec = 90.0;
        t.numRequests = 60;
        t.input = LengthDistribution::fixed(24);
        t.output = LengthDistribution::fixed(8);
        t.seed = 31;
        t.burstOnSeconds = 0.2;
        t.burstOffSeconds = 0.2;
        t.numTenants = 3;
        t.ttftDeadlineSeconds = 0.6;
        return t;
    }

    ApplianceDispatcher
    makeDisp(ServeMetrics &m)
    {
        (void)m;
        SchedulerConfig cfg;
        cfg.maxBatch = 4;
        cfg.shed.enabled = true;
        cfg.shed.queueTimeoutSeconds = 0.6;
        cfg.brownout.enabled = true;
        cfg.brownout.queueHighWatermark = 5;
        cfg.brownout.queueLowWatermark = 1;
        cfg.brownout.sustainIterations = 2;
        core::ParallelismPlan plan;
        plan.modelParallel = 1;
        plan.dataParallel = 2;
        return ApplianceDispatcher(model, syntheticCost(), plan,
                                   model.kvCacheBytes(64) * 16, cfg,
                                   metrics);
    }

    void
    submitN(std::size_t n)
    {
        for (std::size_t i = 0; i < n && !gen.exhausted(); ++i)
            disp.submit(gen.next());
    }

    ServingSnapshot
    snapshot() const
    {
        ServingSnapshot s;
        s.groups = disp.state();
        s.metrics = metrics.state();
        s.hasGenerator = true;
        s.generator = gen.state();
        s.hasOverload = true;
        s.overload = disp.overloadState();
        return s;
    }

    void
    restore(const ServingSnapshot &s)
    {
        disp.restore(s.groups);
        metrics.restore(s.metrics);
        ASSERT_TRUE(s.hasGenerator);
        gen.restore(s.generator);
        ASSERT_TRUE(s.hasOverload);
        disp.restoreOverload(s.overload);
    }
};

TEST(OverloadSnapshot, V3TextRoundTripsByteExactly)
{
    OverStack st;
    st.submitN(30);
    const auto snap = st.snapshot();
    const std::string t1 = snapshotToText(snap);
    EXPECT_EQ(t1.rfind("cxlpnm-snapshot-v3", 0), 0u);
    const ServingSnapshot parsed = snapshotFromText(t1);
    const std::string t2 = snapshotToText(parsed);
    EXPECT_EQ(t1, t2);
    EXPECT_TRUE(parsed.hasOverload);
    EXPECT_EQ(parsed.overload.breakers.size(), 2u);
}

TEST(OverloadSnapshot, RestoredStackContinuesByteIdentically)
{
    OverStack uninterrupted, restored;
    uninterrupted.submitN(30);
    const std::string text = snapshotToText(uninterrupted.snapshot());
    {
        const ServingSnapshot snap = snapshotFromText(text);
        restored.restore(snap);
    }
    uninterrupted.submitN(1000); // the rest
    uninterrupted.disp.drain();
    restored.submitN(1000);
    restored.disp.drain();
    // The continuation contract: every downstream byte matches.
    EXPECT_EQ(snapshotToText(uninterrupted.snapshot()),
              snapshotToText(restored.snapshot()));
    EXPECT_EQ(statsDump(uninterrupted.metrics),
              statsDump(restored.metrics));
}

TEST(OverloadSnapshot, V1StillRestoresWithDefaults)
{
    // A knobs-off stack rendered at version 1 (the pre-overload
    // format) parses and restores: new fields take their defaults.
    const auto model = llm::ModelConfig::tiny();
    ServeMetrics metrics(nullptr, "serve");
    SchedulerConfig cfg;
    BatchScheduler s(model, syntheticCost(),
                     model.kvCacheBytes(32) * 4, cfg, metrics);
    s.submit(makeReq(0, 0.0, 24, 8));
    s.drain();
    ServingSnapshot snap;
    snap.groups.push_back(s.state());
    snap.metrics = metrics.state();

    const std::string v1 = renderSnapshot(snap, 1);
    EXPECT_EQ(v1.rfind("cxlpnm-snapshot-v1", 0), 0u);
    const ServingSnapshot parsed = snapshotFromText(v1);
    EXPECT_FALSE(parsed.hasOverload);
    ASSERT_EQ(parsed.groups.size(), 1u);
    ASSERT_EQ(parsed.groups[0].finished.size(), 1u);
    EXPECT_EQ(parsed.groups[0].finished[0].tenant, 0u);
    EXPECT_EQ(parsed.groups[0].finished[0].deadlineSeconds, 0.0);
    EXPECT_EQ(parsed.groups[0].brownout.level, 0u);
    // v1 carries no overload counters; they restore to zero.
    EXPECT_EQ(parsed.metrics.submitted, 0u);
}

TEST(OverloadSnapshot, MalformedInputThrowsTyped)
{
    OverStack st;
    st.submitN(20);
    const std::string good = snapshotToText(st.snapshot());

    EXPECT_THROW(renderSnapshot(st.snapshot(), 4), SnapshotError);

    // Bad magic.
    std::string bad = good;
    bad.replace(bad.find("v3"), 2, "v9");
    EXPECT_THROW(snapshotFromText(bad), SnapshotError);

    // Truncation, at every granularity.
    EXPECT_THROW(snapshotFromText(good.substr(0, good.size() / 2)),
                 SnapshotError);
    EXPECT_THROW(snapshotFromText(""), SnapshotError);

    // Out-of-range breaker state on the first "k " line.
    const std::size_t k = good.find("\nk ");
    ASSERT_NE(k, std::string::npos);
    bad = good;
    bad.replace(k, 3, "\nk 7");
    EXPECT_THROW(snapshotFromText(bad), SnapshotError);

    // Out-of-range request state: find a request line and push its
    // 9th field (the state) past Shed.
    const std::size_t r = good.find("\nr ");
    ASSERT_NE(r, std::string::npos);
    const std::size_t eol = good.find('\n', r + 1);
    std::string line = good.substr(r + 1, eol - r - 1);
    std::vector<std::string> toks;
    for (std::size_t p = 0; p < line.size();) {
        std::size_t sp = line.find(' ', p);
        if (sp == std::string::npos)
            sp = line.size();
        toks.push_back(line.substr(p, sp - p));
        p = sp + 1;
    }
    ASSERT_GT(toks.size(), 9u);
    toks[9] = "9"; // "r" is token 0, the state is field 9
    std::string rebuilt;
    for (std::size_t i = 0; i < toks.size(); ++i)
        rebuilt += (i != 0 ? " " : "") + toks[i];
    bad = good.substr(0, r + 1) + rebuilt + good.substr(eol);
    EXPECT_THROW(snapshotFromText(bad), SnapshotError);
}

} // namespace
} // namespace serve
} // namespace cxlpnm
