/**
 * @file
 * CXL layer tests: link timing, host/PNM arbitration policies (D3),
 * address interleaving (D4), and the CXL.mem / CXL.io ports.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cxl/arbiter.hh"
#include "cxl/interleave.hh"
#include "cxl/link.hh"
#include "cxl/ports.hh"
#include "dram/module.hh"
#include "sim/logging.hh"

namespace cxlpnm
{
namespace cxl
{
namespace
{

/** Shared fixture: an LPDDR5X module behind an arbiter and a link. */
class CxlFixture : public ::testing::Test
{
  protected:
    CxlFixture()
        : root(nullptr, ""),
          mem(eq, &root, "mem", dram::DramTechSpec::lpddr5x()),
          link(eq, &root, "link", CxlLinkParams{})
    {}

    EventQueue eq;
    stats::StatGroup root;
    dram::MultiChannelMemory mem;
    CxlLink link;
};

TEST(CxlLinkTest, Gen5x16UsableBandwidth)
{
    CxlLinkParams p;
    EXPECT_NEAR(p.peakBytesPerSec(), 64.0 * GB, 1e9);
    EXPECT_NEAR(p.usableBytesPerSec(), 54.4 * GB, 1e9);
}

TEST_F(CxlFixture, LinkTransferTiming)
{
    Tick done = 0;
    link.channel(Direction::Downstream)
        .transfer(1u << 20, [&] { done = eq.now(); });
    eq.run();
    const double expect =
        (1u << 20) / link.params().usableBytesPerSec() +
        link.params().portLatencyNs * 1e-9;
    EXPECT_NEAR(ticksToSeconds(done), expect, expect * 0.01);
}

TEST_F(CxlFixture, LinkDirectionsAreIndependent)
{
    Tick down = 0, up = 0;
    link.channel(Direction::Downstream)
        .transfer(8u << 20, [&] { down = eq.now(); });
    link.channel(Direction::Upstream)
        .transfer(8u << 20, [&] { up = eq.now(); });
    eq.run();
    // Full duplex: both finish at the same time, not serialised.
    EXPECT_EQ(down, up);
}

TEST_F(CxlFixture, HardwareArbiterPassesBothSidesConcurrently)
{
    HostPnmArbiter arb(eq, &root, "arb", mem, {});
    int host_done = 0, pnm_done = 0;

    arb.beginPnmTask(); // ignored by hardware policy
    dram::MemoryRequest h;
    h.addr = 0;
    h.bytes = 4096;
    h.onComplete = [&] { ++host_done; };
    arb.access(Requester::Host, std::move(h));

    dram::MemoryRequest p;
    p.addr = 1 << 20;
    p.bytes = 4096;
    p.onComplete = [&] { ++pnm_done; };
    arb.access(Requester::Pnm, std::move(p));
    eq.run();

    EXPECT_EQ(host_done, 1);
    EXPECT_EQ(pnm_done, 1);
    // Host waited only the grant pipeline (~5 ns).
    EXPECT_LT(arb.meanHostWaitNs(), 10.0);
}

TEST_F(CxlFixture, PollingArbiterBlocksHostDuringTask)
{
    HostPnmArbiter::Params params;
    params.policy = HostPnmArbiter::Policy::PollingHandshake;
    params.pollIntervalUs = 10.0;
    HostPnmArbiter arb(eq, &root, "arb", mem, params);

    Tick host_done = 0;
    arb.beginPnmTask();
    dram::MemoryRequest h;
    h.addr = 0;
    h.bytes = 64;
    h.onComplete = [&] { host_done = eq.now(); };
    arb.access(Requester::Host, std::move(h));

    // The accelerator task runs 100 us; the host stays blocked.
    eq.scheduleOneShot("endTask", 100 * tickPerUs,
                       [&] { arb.endPnmTask(); });
    eq.run();

    // Released only after task end + half a poll interval.
    EXPECT_GE(host_done, 100 * tickPerUs + 5 * tickPerUs);
    EXPECT_GT(arb.meanHostWaitNs(), 100000.0);
}

TEST_F(CxlFixture, PollingArbiterUnblockedWhenIdle)
{
    HostPnmArbiter::Params params;
    params.policy = HostPnmArbiter::Policy::PollingHandshake;
    HostPnmArbiter arb(eq, &root, "arb", mem, params);

    bool done = false;
    dram::MemoryRequest h;
    h.addr = 0;
    h.bytes = 64;
    h.onComplete = [&] { done = true; };
    arb.access(Requester::Host, std::move(h));
    eq.run();
    EXPECT_TRUE(done);
}

TEST_F(CxlFixture, NestedPnmTaskPanics)
{
    setLogLevel(LogLevel::Silent);
    HostPnmArbiter arb(eq, &root, "arb", mem, {});
    arb.beginPnmTask();
    EXPECT_THROW(arb.beginPnmTask(), PanicError);
    arb.endPnmTask();
    EXPECT_THROW(arb.endPnmTask(), PanicError);
    setLogLevel(LogLevel::Info);
}

// ---- Interleaver ----

TEST(InterleaveTest, MapUnmapBijectionSmall)
{
    AddressInterleaver il(4, 256);
    for (Addr a = 0; a < 8192; ++a) {
        auto t = il.map(a);
        EXPECT_LT(t.way, 4u);
        EXPECT_EQ(il.unmap(t), a);
    }
}

TEST(InterleaveTest, ConsecutiveGranulesRotateWays)
{
    AddressInterleaver il(8, 256);
    for (int g = 0; g < 16; ++g)
        EXPECT_EQ(il.map(g * 256).way, static_cast<std::uint32_t>(g % 8));
}

TEST(InterleaveTest, HostInterleaveFragmentsContiguousRegion)
{
    // D4: with host interleaving across 8 DIMMs, a PNM device on one
    // DIMM sees only 1/8 of a large contiguous buffer.
    AddressInterleaver host_il(8, 256);
    const double frac = host_il.contiguousSpanVisible(0, 1u << 20);
    EXPECT_NEAR(frac, 0.125, 1e-3);

    // CXL module-local view: one way == the whole module.
    AddressInterleaver module_il(1, 256);
    EXPECT_DOUBLE_EQ(module_il.contiguousSpanVisible(0, 1u << 20), 1.0);
}

/** Property sweep: bijectivity across configurations. */
class InterleaveParamTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 std::uint64_t>>
{};

TEST_P(InterleaveParamTest, BijectionAndUniformity)
{
    auto [ways, granule] = GetParam();
    AddressInterleaver il(ways, granule);
    std::vector<std::uint64_t> per_way(ways, 0);

    // Walk addresses with a stride coprime-ish to the granule.
    for (Addr a = 0; a < granule * ways * 16; a += 37) {
        auto t = il.map(a);
        EXPECT_EQ(il.unmap(t), a);
        per_way[t.way] += 1;
    }
    // Every way is used.
    for (std::uint32_t w = 0; w < ways; ++w)
        EXPECT_GT(per_way[w], 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, InterleaveParamTest,
    ::testing::Values(std::make_tuple(1u, 64ull),
                      std::make_tuple(2u, 256ull),
                      std::make_tuple(8u, 256ull),
                      std::make_tuple(8u, 4096ull),
                      std::make_tuple(64u, 256ull)));

// ---- Ports ----

TEST_F(CxlFixture, HostReadRoundTrip)
{
    HostPnmArbiter arb(eq, &root, "arb", mem, {});
    CxlMemPort port(eq, &root, "memport", link, arb);

    Tick done = 0;
    port.hostRead(0, 64, [&] { done = eq.now(); });
    eq.run();

    // 2 port crossings + DRAM access + grant: order ~200 ns.
    EXPECT_GT(done, 100 * tickPerNs);
    EXPECT_LT(done, 1000 * tickPerNs);
    EXPECT_GT(port.meanLatencyNs(), 0.0);
}

TEST_F(CxlFixture, HostWriteRoundTrip)
{
    HostPnmArbiter arb(eq, &root, "arb", mem, {});
    CxlMemPort port(eq, &root, "memport", link, arb);

    bool done = false;
    port.hostWrite(4096, 64, [&] { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(mem.channel(cxl::AddressInterleaver(64, 256).map(4096).way)
                  .bytesWritten(),
              64u);
}

TEST_F(CxlFixture, LargeHostReadIsBandwidthBound)
{
    HostPnmArbiter arb(eq, &root, "arb", mem, {});
    CxlMemPort port(eq, &root, "memport", link, arb);

    const std::uint64_t bytes = 64ull << 20;
    Tick done = 0;
    port.hostRead(0, bytes, [&] { done = eq.now(); });
    eq.run();

    // The 54.4 GB/s link, not the 0.92 TB/s DRAM, must dominate.
    const double link_sec = bytes / link.params().usableBytesPerSec();
    EXPECT_NEAR(ticksToSeconds(done), link_sec, link_sec * 0.1);
}

TEST_F(CxlFixture, IoPortRegisterAccessAndInterrupt)
{
    CxlIoPort io(eq, &root, "io", link);
    std::uint64_t reg42 = 0;
    io.setHandlers([&](Addr a) { return a == 42 ? reg42 : 0; },
                   [&](Addr a, std::uint64_t v) {
                       if (a == 42)
                           reg42 = v;
                   });

    bool wrote = false;
    io.writeRegister(42, 0xdead, [&] { wrote = true; });
    eq.run();
    EXPECT_TRUE(wrote);
    EXPECT_EQ(reg42, 0xdeadu);

    std::uint64_t readback = 0;
    io.readRegister(42, [&](std::uint64_t v) { readback = v; });
    eq.run();
    EXPECT_EQ(readback, 0xdeadu);

    Tick isr_at = 0;
    const Tick t0 = eq.now();
    io.raiseInterrupt([&] { isr_at = eq.now(); });
    eq.run();
    EXPECT_EQ(isr_at - t0,
              static_cast<Tick>(CxlIoPort::interruptLatencyNs
                                * tickPerNs));
}

TEST_F(CxlFixture, IoPortWithoutHandlersPanics)
{
    setLogLevel(LogLevel::Silent);
    CxlIoPort io(eq, &root, "io", link);
    EXPECT_THROW(io.writeRegister(0, 0, nullptr), PanicError);
    EXPECT_THROW(io.readRegister(0, [](std::uint64_t) {}), PanicError);
    setLogLevel(LogLevel::Info);
}

} // namespace
} // namespace cxl
} // namespace cxlpnm
