/**
 * @file
 * Cross-cutting property tests: randomized invariants for the
 * allocator, the arbiter, FP16 rounding, channel-grouping equivalence,
 * workload accounting and the sharded code generator.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "core/inference_engine.hh"
#include "cxl/arbiter.hh"
#include "dram/module.hh"
#include "llm/workload.hh"
#include "numeric/fp16.hh"
#include "runtime/allocator.hh"
#include "serve/request_generator.hh"
#include "sim/random.hh"

namespace cxlpnm
{
namespace
{

TEST(AllocatorPropertyTest, RandomAllocFreeKeepsInvariants)
{
    const std::uint64_t cap = 1 << 20;
    runtime::CxlMemAllocator alloc(0, cap);
    SplitMix64 rng(2026);
    std::map<Addr, std::uint64_t> live; // addr -> size

    for (int step = 0; step < 4000; ++step) {
        const bool do_alloc = live.empty() || rng.nextDouble() < 0.55;
        if (do_alloc) {
            const std::uint64_t sz = 1 + rng.nextBelow(4096);
            if (alloc.freeBytes() < sz + 4096)
                continue; // likely fragmented; skip
            const std::uint64_t align = 1ull << rng.nextBelow(9);
            Addr a;
            try {
                a = alloc.alloc(sz, align);
            } catch (const FatalError &) {
                continue; // fragmentation-induced failure is legal
            }
            EXPECT_EQ(a % align, 0u);
            EXPECT_LE(a + sz, cap);
            // No overlap with any live block.
            for (const auto &[b, bsz] : live)
                EXPECT_TRUE(a + sz <= b || b + bsz <= a)
                    << "overlap at step " << step;
            live.emplace(a, sz);
        } else {
            auto it = live.begin();
            std::advance(it, rng.nextBelow(live.size()));
            alloc.free(it->first);
            live.erase(it);
        }
        std::uint64_t used = 0;
        for (const auto &[b, bsz] : live)
            used += bsz;
        EXPECT_EQ(alloc.usedBytes(), used);
    }
    for (const auto &[b, bsz] : live)
        alloc.free(b);
    EXPECT_EQ(alloc.usedBytes(), 0u);
    EXPECT_EQ(alloc.largestFreeBlock(), cap); // fully coalesced
}

TEST(ArbiterPropertyTest, HardwarePolicyNeverStarvesHost)
{
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    dram::MultiChannelMemory mem(eq, &root, "mem",
                                 dram::DramTechSpec::lpddr5x());
    cxl::HostPnmArbiter arb(eq, &root, "arb", mem, {});
    SplitMix64 rng(7);

    int completed = 0;
    int issued = 0;
    // Random mix of host reads and PNM streams over 2 ms, with tasks.
    for (Tick t = 0; t < 2 * tickPerMs;
         t += 1 + rng.nextBelow(20 * tickPerUs)) {
        const bool host = rng.nextDouble() < 0.5;
        ++issued;
        eq.scheduleOneShot("req", t, [&, host] {
            dram::MemoryRequest r;
            r.addr = rng.nextBelow(1 << 24);
            r.bytes = host ? 64 : 4096 + rng.nextBelow(1 << 16);
            r.onComplete = [&] { ++completed; };
            arb.access(host ? cxl::Requester::Host
                            : cxl::Requester::Pnm,
                       std::move(r));
        });
    }
    eq.run();
    EXPECT_EQ(completed, issued);
    // Hardware policy: host waits only the grant pipeline.
    EXPECT_LT(arb.meanHostWaitNs(), 10.0);
}

TEST(Fp16PropertyTest, ArithmeticIsCorrectlyRounded)
{
    // Via-float arithmetic == rounding the exact (double) result for
    // +,-,*,/ (Figueroa: float's 24 bits >= 2*11+2). Random sweep over
    // magnitudes spanning subnormal to overflow.
    SplitMix64 rng(99);
    for (int i = 0; i < 20000; ++i) {
        const int ea = static_cast<int>(rng.nextBelow(40)) - 24;
        const int eb = static_cast<int>(rng.nextBelow(40)) - 24;
        Half a(static_cast<float>(
            std::ldexp(rng.nextDouble(-2.0, 2.0), ea)));
        Half b(static_cast<float>(
            std::ldexp(rng.nextDouble(-2.0, 2.0), eb)));
        if (a.isNan() || b.isNan() || b.isZero())
            continue;

        const double da = a.toFloat(), db = b.toFloat();
        EXPECT_EQ((a + b).bits(),
                  Half(static_cast<float>(da + db)).bits());
        EXPECT_EQ((a * b).bits(),
                  Half(static_cast<float>(da * db)).bits());
        EXPECT_EQ((a / b).bits(),
                  Half(static_cast<float>(da / db)).bits());
    }
}

/** Channel grouping must be timing-transparent for streaming. */
class GroupingTest : public ::testing::TestWithParam<int>
{};

TEST_P(GroupingTest, StreamCompletionTimeInvariant)
{
    auto run = [](int grouping) {
        EventQueue eq;
        stats::StatGroup root(nullptr, "");
        dram::MultiChannelMemory mem(eq, &root, "mem",
                                     dram::DramTechSpec::lpddr5x(),
                                     256, grouping);
        Tick done = 0;
        dram::MemoryRequest r;
        r.addr = 0;
        r.bytes = 64ull << 20;
        r.onComplete = [&] { done = eq.now(); };
        mem.access(std::move(r));
        eq.run();
        return done;
    };
    const Tick exact = run(1);
    const Tick grouped = run(GetParam());
    // Within 0.1% (rounding of per-channel shares).
    EXPECT_NEAR(static_cast<double>(grouped),
                static_cast<double>(exact), exact * 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Groupings, GroupingTest,
                         ::testing::Values(2, 8, 16, 64));

/** Workload accounting sweeps across the OPT family. */
class WorkloadSweepTest : public ::testing::TestWithParam<int>
{};

TEST_P(WorkloadSweepTest, AccountingInvariants)
{
    const auto cfg = llm::ModelConfig::optFamily()[GetParam()];

    // KV traffic is linear in context; weight traffic constant.
    const auto g1 = llm::summarize(llm::genStageOps(cfg, 100));
    const auto g2 = llm::summarize(llm::genStageOps(cfg, 200));
    EXPECT_EQ(g1.weightBytes, g2.weightBytes);
    EXPECT_NEAR(static_cast<double>(g2.kvBytes),
                2.0 * static_cast<double>(g1.kvBytes),
                g1.kvBytes * 0.01);

    // Sum-stage flops grow superlinearly in L_in (attention term).
    const auto s1 = llm::summarize(llm::sumStageOps(cfg, 64));
    const auto s2 = llm::summarize(llm::sumStageOps(cfg, 128));
    EXPECT_GT(s2.flops, 2.0 * s1.flops * 0.99);

    // Request flops are monotone in output tokens.
    llm::InferenceRequest a{64, 8}, b{64, 16};
    EXPECT_LT(llm::requestFlops(cfg, a), llm::requestFlops(cfg, b));
}

INSTANTIATE_TEST_SUITE_P(OptFamily, WorkloadSweepTest,
                         ::testing::Range(0, 9));

TEST(ShardPropertyTest, GenDmaTrafficScalesInversely)
{
    // A degree-k tensor shard should stream ~1/k of the weights per
    // token (norms/biases replicate, hence "approximately").
    llm::InferenceRequest req;
    req.inputTokens = 8;
    req.outputTokens = 2;
    core::PnmPlatformConfig cfg;
    cfg.channelGrouping = 8;
    const auto m = llm::ModelConfig::opt2_7b();

    const auto full = runPnmSingleDevice(m, req, cfg, 1);
    const auto half = runPnmSingleDevice(m, req, cfg, 2);
    const auto quarter = runPnmSingleDevice(m, req, cfg, 4);
    const double t1 = full.genSeconds.back();
    const double t2 = half.genSeconds.back();
    const double t4 = quarter.genSeconds.back();
    EXPECT_NEAR(t2 / t1, 0.5, 0.08);
    EXPECT_NEAR(t4 / t1, 0.25, 0.08);
}

TEST(GeneratorPropertyTest, ArrivalsMonotoneUnderExtremeRates)
{
    // The serving layer assumes submissions arrive in order; the
    // generator must hold that invariant at any rate, from one request
    // per ~11 days (gaps of ~1e6 s that dwarf the clock's ulp) to 1e12
    // req/s (gaps of ~1e-12 s that vanish beneath it), for both
    // arrival processes and across seeds.
    for (const double qps : {1e-6, 0.5, 1e6, 1e12}) {
        for (const auto proc : {serve::ArrivalProcess::Poisson,
                                serve::ArrivalProcess::Fixed}) {
            serve::TraceConfig cfg;
            cfg.arrivals = proc;
            cfg.requestsPerSec = qps;
            cfg.numRequests = 3000;
            cfg.seed = 1234;
            const auto t = serve::RequestGenerator::generate(cfg);
            ASSERT_EQ(t.size(), cfg.numRequests);
            double prev = 0.0;
            for (const auto &r : t) {
                ASSERT_TRUE(std::isfinite(r.arrivalSeconds))
                    << "qps " << qps;
                ASSERT_GE(r.arrivalSeconds, prev) << "qps " << qps;
                prev = r.arrivalSeconds;
            }
        }
    }
}

TEST(EventQueuePropertyTest, ManyOneShotsFireInOrder)
{
    EventQueue eq;
    SplitMix64 rng(5);
    std::vector<Tick> fire_times;
    for (int i = 0; i < 2000; ++i) {
        const Tick when = rng.nextBelow(1000000);
        eq.scheduleOneShot("p", when, [&eq, &fire_times] {
            fire_times.push_back(eq.now());
        });
    }
    eq.run();
    ASSERT_EQ(fire_times.size(), 2000u);
    for (std::size_t i = 1; i < fire_times.size(); ++i)
        EXPECT_LE(fire_times[i - 1], fire_times[i]);
}

} // namespace
} // namespace cxlpnm
