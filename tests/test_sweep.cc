/**
 * @file
 * Thread pool and deterministic-parallel-sweep tests: every index runs
 * exactly once, and the rendered sweep output is byte-identical no
 * matter how many worker threads execute the points.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "core/sweep.hh"
#include "llm/model_config.hh"
#include "sim/logging.hh"
#include "sim/thread_pool.hh"

namespace cxlpnm
{
namespace
{

TEST(ThreadPoolTest, ParallelForRunsEveryIndexOnce)
{
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        constexpr std::size_t n = 500;
        std::vector<std::atomic<int>> hits(n);
        ThreadPool::parallelFor(n, threads, [&](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i
                                         << " threads " << threads;
    }
}

TEST(ThreadPoolTest, SubmitAndWaitDrains)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.threadCount(), 3u);
    std::atomic<int> done{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { done.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(done.load(), 100);
    // The pool is reusable after a wait().
    pool.submit([&] { done.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(done.load(), 101);
}

TEST(ThreadPoolTest, ZeroThreadsDefaultsToHardware)
{
    ThreadPool pool;
    EXPECT_GE(pool.threadCount(), 1u);
}

/** A fast grid: tiny model, short requests, single device + appliance. */
std::vector<core::SweepPoint>
tinyGrid()
{
    std::vector<core::SweepPoint> points;
    core::PnmPlatformConfig cfg;
    cfg.channelGrouping = 8;
    for (std::uint64_t out : {2ull, 4ull, 8ull}) {
        core::SweepPoint p;
        p.model = llm::ModelConfig::tiny();
        p.req.inputTokens = 8;
        p.req.outputTokens = out;
        p.cfg = cfg;
        p.plan = core::ParallelismPlan{1, 1};
        p.name = "tiny/out" + std::to_string(out);
        points.push_back(std::move(p));
    }
    for (int mp : {2, 4}) {
        core::SweepPoint p;
        p.model = llm::ModelConfig::tiny();
        p.req.inputTokens = 8;
        p.req.outputTokens = 4;
        p.cfg = cfg;
        p.plan = core::ParallelismPlan{mp, 8 / mp};
        p.name = "tiny/mp" + std::to_string(mp);
        points.push_back(std::move(p));
    }
    return points;
}

TEST(SweepTest, OutputByteIdenticalAcrossThreadCounts)
{
    setLogLevel(LogLevel::Silent);
    const auto points = tinyGrid();
    const std::string ref =
        core::sweepResultsJson(core::runSweep(points, 1));
    EXPECT_FALSE(ref.empty());
    EXPECT_NE(ref.find("tiny/out2"), std::string::npos);
    for (unsigned threads : {2u, 4u, 8u}) {
        const std::string got =
            core::sweepResultsJson(core::runSweep(points, threads));
        EXPECT_EQ(got, ref) << "threads=" << threads;
    }
    // And re-running at the same thread count is stable too.
    EXPECT_EQ(core::sweepResultsJson(core::runSweep(points, 4)), ref);
    setLogLevel(LogLevel::Info);
}

TEST(SweepTest, ResultsStayInPointOrder)
{
    setLogLevel(LogLevel::Silent);
    const auto points = tinyGrid();
    const auto results = core::runSweep(points, 4);
    ASSERT_EQ(results.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(results[i].name, points[i].name);
        EXPECT_GT(results[i].requestLatencySeconds, 0.0);
        EXPECT_GT(results[i].throughputTokensPerSec, 0.0);
    }
    setLogLevel(LogLevel::Info);
}

} // namespace
} // namespace cxlpnm
