/**
 * @file
 * Two-tier (near / CXL-far) KV cache tests: the residency ledger and
 * its victim-buffer transition accounting, observer-driven
 * abandonment of mid-migration frees, both demotion policies, the
 * decode-ahead prefetch closed form, migration pricing through the
 * shared CXL link, the tiered scheduler end to end (admission beyond
 * near-only capacity, inert tier knobs at farBlocks = 0, prefetch
 * hiding link time, promote mode, far-born allocation, drain
 * invariants, seeded determinism), and the long-context trace
 * generator with its typed config validation.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "cxl/link.hh"
#include "serve/cost_model.hh"
#include "serve/kv_block_manager.hh"
#include "serve/metrics.hh"
#include "serve/request_generator.hh"
#include "serve/scheduler.hh"
#include "serve/tier/migration_engine.hh"
#include "serve/tier/prefetcher.hh"
#include "serve/tier/tier_policy.hh"
#include "serve/tier/tiered_pool.hh"
#include "sim/logging.hh"

namespace cxlpnm
{
namespace serve
{
namespace
{

using tier::DecodeAheadPrefetcher;
using tier::FarAccess;
using tier::LruDecodeDistancePolicy;
using tier::MigrationEngine;
using tier::PinnedRecentWindowPolicy;
using tier::Residency;
using tier::TierBlockMeta;
using tier::TierConfig;
using tier::TieredBlockPool;
using tier::TierPolicyContext;
using tier::TierPolicyKind;

BatchCostModel
syntheticCost()
{
    BatchCostModel c;
    c.sumCurve.addSample(1, 1.0e-3);
    c.sumCurve.addSample(1024, 10.0e-3);
    c.genWeightSeconds = 10.0e-3;
    c.genKvPerTokenSeconds = 2.0e-6;
    c.perTokenComputeSeconds = 0.2e-3;
    return c;
}

SchedulerConfig
tieredConfig(std::uint32_t block_tokens, std::uint64_t far_blocks,
             bool prefetch = true,
             FarAccess far_access = FarAccess::Stream)
{
    SchedulerConfig cfg;
    cfg.paged.enabled = true;
    cfg.paged.blockTokens = block_tokens;
    cfg.paged.tier.farBlocks = far_blocks;
    cfg.paged.tier.prefetch = prefetch;
    cfg.paged.tier.farAccess = far_access;
    return cfg;
}

ServeReport
runTrace(const TraceConfig &trace, const llm::ModelConfig &model,
         std::uint64_t kv_capacity, const SchedulerConfig &sched)
{
    ServeMetrics metrics(nullptr, "serve");
    BatchScheduler s(model, syntheticCost(), kv_capacity, sched,
                     metrics);
    RequestGenerator gen(trace);
    while (!gen.exhausted())
        s.submit(gen.next());
    s.drain();
    return metrics.report(s.clockSeconds());
}

// ---- residency ledger ----

TEST(TieredBlockPoolTest, VictimBufferTransitionsKeepTheLedgerTight)
{
    KvBlockManager mgr(6 * 64, 64);
    TieredBlockPool pool(mgr, 2);
    EXPECT_EQ(pool.stats().nearCapacity, 2u);
    EXPECT_EQ(pool.stats().farCapacity, 4u);

    const BlockId b0 = mgr.tryAllocate();
    const BlockId b1 = mgr.tryAllocate();
    const BlockId b2 = mgr.tryAllocate();
    const BlockId b3 = mgr.tryAllocate();
    pool.placeNear(b0);
    pool.placeNear(b1);
    EXPECT_EQ(pool.nearFree(), 0u);
    pool.placeFar(b2);
    EXPECT_EQ(pool.stats().farUsed(), 1u);

    // The victim buffer frees the frame at issue, not at completion:
    // a demote makes room for the newcomer immediately while holding
    // its far slot for the in-flight bytes.
    pool.beginDemote(b0);
    EXPECT_EQ(pool.residency(b0), Residency::DemoteInFlight);
    EXPECT_TRUE(pool.inFlight(b0));
    EXPECT_EQ(pool.nearFree(), 1u);
    EXPECT_EQ(pool.stats().farUsed(), 2u);
    pool.placeNear(b3); // reuses the vacated frame within the step
    EXPECT_EQ(pool.nearFree(), 0u);

    pool.finishDemote(b0);
    EXPECT_EQ(pool.residency(b0), Residency::Far);
    EXPECT_EQ(pool.stats().demoteInFlight, 0u);
    EXPECT_EQ(pool.stats().farBlocks, 2u);

    // A promotion claims its target frame at issue.
    pool.beginDemote(b3);
    pool.finishDemote(b3);
    pool.beginPromote(b0);
    EXPECT_EQ(pool.residency(b0), Residency::PromoteInFlight);
    EXPECT_EQ(pool.stats().nearUsed(), 2u); // b1 + the claimed frame
    EXPECT_EQ(pool.nearFree(), 0u);
    pool.finishPromote(b0);
    EXPECT_EQ(pool.residency(b0), Residency::Near);

    // farUsed() peaked while b0 and b2 were settled far and b3's
    // demotion still held its slot.
    EXPECT_EQ(pool.stats().peakFarBlocks, 3u);
    pool.checkConsistency();
}

TEST(TieredBlockPoolTest, IllegalTransitionsPanic)
{
    KvBlockManager mgr(4 * 64, 64);
    TieredBlockPool pool(mgr, 1);
    const BlockId a = mgr.tryAllocate();
    const BlockId b = mgr.tryAllocate();
    pool.placeNear(a);

    setLogLevel(LogLevel::Silent);
    EXPECT_THROW(pool.placeNear(a), PanicError);  // already placed
    EXPECT_THROW(pool.placeFar(a), PanicError);   // already placed
    EXPECT_THROW(pool.placeNear(b), PanicError);  // no free frame
    EXPECT_THROW(pool.beginDemote(b), PanicError); // not Near
    EXPECT_THROW(pool.finishDemote(a), PanicError); // not in flight
    EXPECT_THROW(pool.beginPromote(a), PanicError); // not Far
    EXPECT_THROW(pool.finishPromote(a), PanicError);

    pool.placeFar(b);
    // Near full: a promotion has no frame to claim.
    EXPECT_THROW(pool.beginPromote(b), PanicError);

    // Constructor bounds are user errors, not invariants.
    EXPECT_THROW(TieredBlockPool(mgr, 0), FatalError);
    EXPECT_THROW(TieredBlockPool(mgr, 5), FatalError);
    setLogLevel(LogLevel::Info);
}

TEST(TieredBlockPoolTest, FreeingMidMigrationAbandonsTheTransfer)
{
    KvBlockManager mgr(4 * 64, 64);
    TieredBlockPool pool(mgr, 2);
    const BlockId a = mgr.tryAllocate();
    const BlockId b = mgr.tryAllocate();
    pool.placeNear(a);
    pool.placeFar(b);

    // Preemption / prefix eviction frees the block while its demote
    // is on the wire: the observer drops the residency immediately
    // and the move is counted abandoned.
    pool.beginDemote(a);
    mgr.release(a);
    EXPECT_EQ(pool.residency(a), Residency::None);
    EXPECT_EQ(pool.stats().abandonedMigrations, 1u);
    EXPECT_EQ(pool.stats().demoteInFlight, 0u);

    pool.beginPromote(b);
    mgr.release(b);
    EXPECT_EQ(pool.residency(b), Residency::None);
    EXPECT_EQ(pool.stats().abandonedMigrations, 2u);
    EXPECT_EQ(pool.stats().promoteInFlight, 0u);
    pool.checkConsistency();

    // A reissued id starts from a clean ledger entry.
    const BlockId c = mgr.tryAllocate();
    EXPECT_EQ(pool.residency(c), Residency::None);
    pool.placeNear(c);
}

// ---- demotion policies ----

TEST(TierPolicyTest, LruPrefersOwnerlessThenColdestThenDeepest)
{
    KvBlockManager mgr(12 * 64, 64);
    TieredBlockPool pool(mgr, 6);
    std::vector<TierBlockMeta> meta(6);
    for (int i = 0; i < 5; ++i)
        pool.placeNear(mgr.tryAllocate()); // blocks 0..4

    // Request 7 holds chain [b0 b1 b2 b3] (b3 is the write head);
    // b4 belongs to the prefix cache only.
    for (BlockId b = 0; b < 4; ++b) {
        meta[b].owner = 7;
        meta[b].chainPos = b;
    }
    meta[0].lastTouch = 3;
    meta[1].lastTouch = 3;
    meta[2].lastTouch = 5;
    meta[3].lastTouch = 5;
    meta[3].writeHead = true;
    meta[4].lastTouch = 9; // recently touched but ownerless
    auto chain_len = [](std::uint64_t owner) {
        return owner == 7 ? 4u : 0u;
    };
    TierPolicyContext ctx{pool, meta, chain_len};
    LruDecodeDistancePolicy lru;

    // Ownerless capacity goes first regardless of recency.
    EXPECT_EQ(lru.selectDemotion(ctx), 4u);
    pool.beginDemote(4);
    pool.finishDemote(4);

    // b0 and b1 tie on lastTouch: the deeper decode distance (b0 sits
    // 3 behind the write head, b1 only 2) breaks the tie.
    EXPECT_EQ(lru.selectDemotion(ctx), 0u);
    pool.beginDemote(0);
    pool.finishDemote(0);
    EXPECT_EQ(lru.selectDemotion(ctx), 1u);
    pool.beginDemote(1);
    pool.finishDemote(1);

    // Only b2 (warm) and b3 (write head) remain: the write head is
    // never demoted, however cold.
    EXPECT_EQ(lru.selectDemotion(ctx), 2u);
    pool.beginDemote(2);
    pool.finishDemote(2);
    EXPECT_EQ(lru.selectDemotion(ctx), InvalidBlock);
    EXPECT_EQ(lru.pinViolations(), 0u);
}

TEST(TierPolicyTest, PinnedWindowProtectsTheTailAndCountsForcedBreaks)
{
    KvBlockManager mgr(8 * 64, 64);
    TieredBlockPool pool(mgr, 4);
    std::vector<TierBlockMeta> meta(4);
    for (int i = 0; i < 3; ++i)
        pool.placeNear(mgr.tryAllocate()); // blocks 0..2

    // One request's chain [b0 b1 b2]; window 2 pins chainPos >= 1.
    for (BlockId b = 0; b < 3; ++b) {
        meta[b].owner = 1;
        meta[b].chainPos = b;
    }
    meta[2].writeHead = true;
    auto chain_len = [](std::uint64_t) { return 3u; };
    TierPolicyContext ctx{pool, meta, chain_len};
    PinnedRecentWindowPolicy pinned(2);

    // Head-first within the unpinned prefix.
    EXPECT_EQ(pinned.selectDemotion(ctx), 0u);
    pool.beginDemote(0);
    pool.finishDemote(0);
    EXPECT_EQ(pinned.pinViolations(), 0u);

    // Only pinned blocks remain: breaking the pin beats deadlock, and
    // the break is counted. The write head still never goes.
    EXPECT_EQ(pinned.selectDemotion(ctx), 1u);
    EXPECT_EQ(pinned.pinViolations(), 1u);
    pool.beginDemote(1);
    pool.finishDemote(1);
    EXPECT_EQ(pinned.selectDemotion(ctx), InvalidBlock);
    EXPECT_EQ(pinned.pinViolations(), 1u);
}

// ---- decode-ahead prefetch closed form ----

TEST(PrefetcherTest, PipelineClosedFormMatchesHandComputation)
{
    const DecodeAheadPrefetcher pf(4, true);

    // Compute-bound: C=1.0, F=0.5 over 4 layers. cl=0.25 > fl=0.125,
    // pipeline end = 0.125 + 0.25 + 3*0.25 = 1.125.
    auto o = pf.overlap(1.0, 0.5);
    EXPECT_DOUBLE_EQ(o.exposedSeconds, 0.125);
    EXPECT_DOUBLE_EQ(o.hiddenSeconds, 0.375);

    // Link-bound: C=1.0, F=8.0. fl=2.0 > cl=0.25, pipeline end =
    // 2.0 + 0.25 + 3*2.0 = 8.25, exposed = 8.25 - 1.0.
    o = pf.overlap(1.0, 8.0);
    EXPECT_DOUBLE_EQ(o.exposedSeconds, 7.25);
    EXPECT_DOUBLE_EQ(o.hiddenSeconds, 0.75);

    // Idle settle (no compute to hide under): everything exposed.
    o = pf.overlap(0.0, 0.5);
    EXPECT_DOUBLE_EQ(o.exposedSeconds, 0.5);
    EXPECT_DOUBLE_EQ(o.hiddenSeconds, 0.0);

    // No far traffic: free.
    o = pf.overlap(1.0, 0.0);
    EXPECT_DOUBLE_EQ(o.exposedSeconds, 0.0);
    EXPECT_DOUBLE_EQ(o.hiddenSeconds, 0.0);
}

TEST(PrefetcherTest, DisabledOrSingleLayerExposesTheWholeLink)
{
    const DecodeAheadPrefetcher off(4, false);
    auto o = off.overlap(1.0, 0.5);
    EXPECT_DOUBLE_EQ(o.exposedSeconds, 0.5);
    EXPECT_DOUBLE_EQ(o.hiddenSeconds, 0.0);

    // One layer has nothing to pipeline against.
    const DecodeAheadPrefetcher single(1, true);
    o = single.overlap(1.0, 0.5);
    EXPECT_DOUBLE_EQ(o.exposedSeconds, 0.5);

    setLogLevel(LogLevel::Silent);
    EXPECT_THROW(DecodeAheadPrefetcher(0, true), FatalError);
    setLogLevel(LogLevel::Info);
}

// ---- migration engine ----

TEST(MigrationEngineTest, PricesAllTrafficThroughTheSharedLink)
{
    KvBlockManager mgr(4 * 64, 64);
    TieredBlockPool pool(mgr, 2);
    TierConfig cfg;
    cfg.farBlocks = 2;
    MigrationEngine eng(pool, cfg, 64, /*num_layers=*/4);

    const BlockId a = mgr.tryAllocate();
    pool.placeNear(a);

    eng.beginIteration(0.0);
    eng.demote(a);
    EXPECT_EQ(eng.pendingMigrations(), 1u);
    EXPECT_EQ(pool.residency(a), Residency::DemoteInFlight);

    // One demoted block + 128 streamed + 256 activation bytes all
    // share the link; with C far above F the pipeline hides all but
    // one layer's slice: exposed = F / L.
    const double link = cxl::transferSeconds(cfg.link, 64) +
        cxl::transferSeconds(cfg.link, 128) +
        cxl::transferSeconds(cfg.link, 256);
    const double exposed = eng.priceIteration(1.0, 128, 256);
    // exposed = (F/L + C) - C: equal to F/L up to one rounding step.
    EXPECT_NEAR(exposed, link / 4.0, 1e-15);

    const auto &iter = eng.endIteration(1.0 + exposed);
    EXPECT_EQ(pool.residency(a), Residency::Far);
    EXPECT_EQ(eng.pendingMigrations(), 0u);
    EXPECT_EQ(iter.demotions, 1u);
    EXPECT_EQ(iter.migratedBytes, 64u);
    EXPECT_EQ(iter.streamedBytes, 128u);
    EXPECT_DOUBLE_EQ(iter.exposedSeconds, exposed);
    EXPECT_DOUBLE_EQ(iter.hiddenSeconds, link - exposed);

    // Direction accounting: demotions go upstream, streams come down.
    EXPECT_EQ(eng.traffic().upBytes, 64u);
    EXPECT_EQ(eng.traffic().downBytes, 128u);
    EXPECT_EQ(eng.demotions(), 1u);
    EXPECT_DOUBLE_EQ(eng.exposedSeconds(), exposed);
}

TEST(MigrationEngineTest, AbandonedBlockSkipsCompletion)
{
    KvBlockManager mgr(4 * 64, 64);
    TieredBlockPool pool(mgr, 2);
    TierConfig cfg;
    cfg.farBlocks = 2;
    MigrationEngine eng(pool, cfg, 64, 2);

    const BlockId a = mgr.tryAllocate();
    pool.placeNear(a);
    eng.beginIteration(0.0);
    eng.demote(a);
    mgr.release(a); // preempted mid-flight: the observer drops it
    EXPECT_EQ(pool.stats().abandonedMigrations, 1u);

    const double exposed = eng.priceIteration(0.0, 0, 0);
    EXPECT_GT(exposed, 0.0); // the wire time was still spent
    eng.endIteration(exposed); // must not flip the reclaimed block
    EXPECT_EQ(pool.residency(a), Residency::None);
    pool.checkConsistency();
}

TEST(MigrationEngineTest, StepProtocolMisusePanics)
{
    KvBlockManager mgr(4 * 64, 64);
    TieredBlockPool pool(mgr, 2);
    TierConfig cfg;
    cfg.farBlocks = 2;
    MigrationEngine eng(pool, cfg, 64, 2);
    const BlockId a = mgr.tryAllocate();
    const BlockId b = mgr.tryAllocate();
    pool.placeNear(a);
    pool.placeNear(b);

    eng.beginIteration(0.0);
    eng.demote(a);
    eng.priceIteration(0.1, 0, 0);
    setLogLevel(LogLevel::Silent);
    EXPECT_THROW(eng.priceIteration(0.1, 0, 0), PanicError);
    EXPECT_THROW(eng.demote(b), PanicError); // issue after pricing
    EXPECT_THROW(eng.beginIteration(1.0), PanicError); // in flight
    setLogLevel(LogLevel::Info);
}

// ---- tiered scheduler end to end ----

TEST(TieredSchedulerTest, FarTierAdmitsContextsNearOnlyRejects)
{
    const auto model = llm::ModelConfig::tiny();
    // Near pool of 2 8-token blocks; the request's prompt alone needs
    // 4 blocks, so the untiered scheduler rejects it up front while 6
    // far blocks let the tiered one serve it.
    const std::uint64_t capacity = 2 * model.kvCacheBytes(8);
    TraceConfig trace;
    trace.arrivals = ArrivalProcess::Fixed;
    trace.requestsPerSec = 1.0e6;
    trace.numRequests = 1;
    trace.input = LengthDistribution::fixed(24);
    trace.output = LengthDistribution::fixed(8);

    SchedulerConfig near_only;
    near_only.paged.enabled = true;
    near_only.paged.blockTokens = 8;
    const auto rej = runTrace(trace, model, capacity, near_only);
    EXPECT_EQ(rej.completed, 0u);
    EXPECT_EQ(rej.rejected, 1u);

    const auto rep =
        runTrace(trace, model, capacity, tieredConfig(8, 6));
    EXPECT_EQ(rep.completed, 1u);
    EXPECT_EQ(rep.rejected, 0u);
    EXPECT_GT(rep.tierDemotions + rep.tierFarBornBlocks, 0u);
    EXPECT_GT(rep.peakFarBlocksInUse, 0u);
    EXPECT_LE(rep.peakNearBlocksInUse, 2u);
    EXPECT_GT(rep.tierMigratedBytes + rep.tierStreamedBytes, 0u);
}

TEST(TieredSchedulerTest, TierKnobsAreInertWithFarBlocksZero)
{
    // farBlocks = 0 disables the tier outright: every other tier knob
    // must change nothing against the plain paged scheduler.
    const auto model = llm::ModelConfig::tiny();
    const std::uint64_t capacity = 8 * model.kvCacheBytes(8);
    TraceConfig trace;
    trace.requestsPerSec = 500.0;
    trace.numRequests = 40;
    trace.input = LengthDistribution::uniform(8, 24);
    trace.output = LengthDistribution::uniform(4, 24);
    trace.seed = 11;

    SchedulerConfig paged;
    paged.paged.enabled = true;
    paged.paged.blockTokens = 8;
    auto knobs = paged;
    knobs.paged.tier.farBlocks = 0;
    knobs.paged.tier.policy = TierPolicyKind::PinnedRecentWindow;
    knobs.paged.tier.prefetch = false;
    knobs.paged.tier.farAccess = FarAccess::Promote;

    const auto a = runTrace(trace, model, capacity, paged);
    const auto b = runTrace(trace, model, capacity, knobs);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.preemptionsForCapacity, b.preemptionsForCapacity);
    EXPECT_DOUBLE_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_DOUBLE_EQ(a.timeAvgKvUtilization, b.timeAvgKvUtilization);
    EXPECT_EQ(b.tierDemotions, 0u);
    EXPECT_EQ(b.tierMigratedBytes, 0u);
    EXPECT_DOUBLE_EQ(b.tierExposedSeconds, 0.0);
}

TEST(TieredSchedulerTest, PrefetchHidesFarLinkTimeBehindCompute)
{
    const auto model = llm::ModelConfig::tiny();
    const std::uint64_t capacity = 2 * model.kvCacheBytes(8);
    TraceConfig trace;
    trace.arrivals = ArrivalProcess::Fixed;
    trace.requestsPerSec = 1.0e6;
    trace.numRequests = 1;
    trace.input = LengthDistribution::fixed(40);
    trace.output = LengthDistribution::fixed(16);

    const auto pf =
        runTrace(trace, model, capacity, tieredConfig(8, 8, true));
    const auto nopf =
        runTrace(trace, model, capacity, tieredConfig(8, 8, false));
    EXPECT_EQ(pf.completed, 1u);
    EXPECT_EQ(nopf.completed, 1u);
    // Identical traffic either way; prefetch only moves link seconds
    // off the critical path.
    EXPECT_EQ(pf.tierStreamedBytes, nopf.tierStreamedBytes);
    EXPECT_EQ(pf.tierMigratedBytes, nopf.tierMigratedBytes);
    EXPECT_GT(pf.tierStreamedBytes, 0u);
    EXPECT_GT(pf.tierHiddenSeconds, 0.0);
    EXPECT_DOUBLE_EQ(nopf.tierHiddenSeconds, 0.0);
    EXPECT_LT(pf.tierExposedSeconds, nopf.tierExposedSeconds);
    EXPECT_LT(pf.makespanSeconds, nopf.makespanSeconds);
}

TEST(TieredSchedulerTest, PromoteModePullsFarBlocksIntoFreedFrames)
{
    auto model = llm::ModelConfig::tiny();
    model.maxPositions = 256;
    ServeMetrics metrics(nullptr, "serve");
    BatchScheduler s(model, syntheticCost(),
                     6 * model.kvCacheBytes(8),
                     tieredConfig(8, 6, true, FarAccess::Promote),
                     metrics);
    // A short request crowds the near tier, then retires; the long
    // request's far-resident blocks must be promoted into the freed
    // frames instead of streaming forever.
    ServeRequest shorty;
    shorty.id = 0;
    shorty.inputTokens = 8;
    shorty.outputTokens = 16;
    ServeRequest grower;
    grower.id = 1;
    grower.inputTokens = 48;
    grower.outputTokens = 40;
    s.submit(shorty);
    s.submit(grower);
    s.drain();

    const auto rep = metrics.report(s.clockSeconds());
    EXPECT_EQ(rep.completed, 2u);
    EXPECT_GT(rep.tierPromotions, 0u);
    EXPECT_GT(rep.tierDemotions, 0u);

    // Drain settles every migration; the ledger must agree with the
    // per-block array.
    ASSERT_NE(s.tierPool(), nullptr);
    EXPECT_EQ(s.tierPool()->stats().promoteInFlight, 0u);
    EXPECT_EQ(s.tierPool()->stats().demoteInFlight, 0u);
    s.tierPool()->checkConsistency();
}

TEST(TieredSchedulerTest, WriteHeadsAreNeverDemotedSoBlocksAreBornFar)
{
    // A one-frame near tier: once the only near block is the write
    // head, the next allocation has no demotable victim and must be
    // placed directly far.
    const auto model = llm::ModelConfig::tiny();
    ServeMetrics metrics(nullptr, "serve");
    BatchScheduler s(model, syntheticCost(), model.kvCacheBytes(8),
                     tieredConfig(8, 4), metrics);
    ServeRequest r;
    r.id = 0;
    r.inputTokens = 8;
    r.outputTokens = 10;
    s.submit(r);
    s.drain();

    const auto rep = metrics.report(s.clockSeconds());
    EXPECT_EQ(rep.completed, 1u);
    EXPECT_GT(rep.tierFarBornBlocks, 0u);
    EXPECT_EQ(rep.peakNearBlocksInUse, 1u);
}

TEST(TieredSchedulerTest, TieredRunIsSeedDeterministic)
{
    const auto model = llm::ModelConfig::tiny();
    const std::uint64_t capacity = 4 * model.kvCacheBytes(8);
    TraceConfig trace;
    trace.requestsPerSec = 200.0;
    trace.numRequests = 16;
    trace.input = LengthDistribution::uniform(8, 40);
    trace.output = LengthDistribution::uniform(4, 16);
    trace.seed = 7;

    const auto cfg = tieredConfig(8, 12);
    const auto a = runTrace(trace, model, capacity, cfg);
    const auto b = runTrace(trace, model, capacity, cfg);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.tierDemotions, b.tierDemotions);
    EXPECT_EQ(a.tierPromotions, b.tierPromotions);
    EXPECT_EQ(a.tierFarBornBlocks, b.tierFarBornBlocks);
    EXPECT_EQ(a.tierMigratedBytes, b.tierMigratedBytes);
    EXPECT_EQ(a.tierStreamedBytes, b.tierStreamedBytes);
    EXPECT_EQ(a.tierAbandonedMigrations, b.tierAbandonedMigrations);
    EXPECT_EQ(a.peakNearBlocksInUse, b.peakNearBlocksInUse);
    EXPECT_EQ(a.peakFarBlocksInUse, b.peakFarBlocksInUse);
    EXPECT_DOUBLE_EQ(a.tierExposedSeconds, b.tierExposedSeconds);
    EXPECT_DOUBLE_EQ(a.tierHiddenSeconds, b.tierHiddenSeconds);
    EXPECT_DOUBLE_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_GT(a.tierDemotions, 0u); // the workload actually tiers

    auto other = trace;
    other.seed = 8;
    const auto c = runTrace(other, model, capacity, cfg);
    EXPECT_NE(a.makespanSeconds, c.makespanSeconds);
}

TEST(TieredSchedulerTest, PinnedPolicyServesTheSameWorkload)
{
    const auto model = llm::ModelConfig::tiny();
    const std::uint64_t capacity = 2 * model.kvCacheBytes(8);
    TraceConfig trace;
    trace.arrivals = ArrivalProcess::Fixed;
    trace.requestsPerSec = 1.0e6;
    trace.numRequests = 2;
    trace.input = LengthDistribution::fixed(32);
    trace.output = LengthDistribution::fixed(8);

    auto cfg = tieredConfig(8, 12);
    cfg.paged.tier.policy = TierPolicyKind::PinnedRecentWindow;
    cfg.paged.tier.pinnedWindowBlocks = 2;
    const auto rep = runTrace(trace, model, capacity, cfg);
    EXPECT_EQ(rep.completed, 2u);
    EXPECT_GT(rep.tierDemotions + rep.tierFarBornBlocks, 0u);
}

// ---- long-context trace generation ----

TEST(LongContextTraceTest, DrawsPromptsWithinTheConfiguredRange)
{
    TraceConfig t;
    t.numRequests = 64;
    t.longContext = true;
    t.longCtxMinTokens = 100;
    t.longCtxMaxTokens = 200;
    t.output = LengthDistribution::fixed(8);
    EXPECT_EQ(t.maxInputTokens(), 200u);
    EXPECT_NO_THROW(t.validate(256, 0));

    const auto reqs = RequestGenerator::generate(t);
    ASSERT_EQ(reqs.size(), 64u);
    std::uint64_t lo = ~0ull, hi = 0;
    for (const auto &r : reqs) {
        EXPECT_GE(r.inputTokens, 100u);
        EXPECT_LE(r.inputTokens, 200u);
        lo = std::min(lo, r.inputTokens);
        hi = std::max(hi, r.inputTokens);
    }
    EXPECT_LT(lo, hi); // uniform, not collapsed to a constant

    // Same seed, same trace; the mode is deterministic.
    const auto again = RequestGenerator::generate(t);
    for (std::size_t i = 0; i < reqs.size(); ++i)
        EXPECT_EQ(reqs[i].inputTokens, again[i].inputTokens);
}

TEST(LongContextTraceTest, InvalidConfigsThrowTypedErrors)
{
    TraceConfig t;
    t.longContext = true;
    t.longCtxMinTokens = 200;
    t.longCtxMaxTokens = 100; // inverted
    t.output = LengthDistribution::fixed(8);
    setLogLevel(LogLevel::Silent);
    EXPECT_THROW(t.validate(0, 0), TraceConfigError);
    // The generator itself refuses a malformed range, validated or not.
    EXPECT_THROW(RequestGenerator gen(t), TraceConfigError);

    t.longCtxMinTokens = 0;
    t.longCtxMaxTokens = 100;
    EXPECT_THROW(t.validate(0, 0), TraceConfigError);

    t.longCtxMinTokens = 100;
    // Worst case 108 tokens vs a 64-position model.
    EXPECT_THROW(t.validate(64, 0), TraceConfigError);
    // ... and vs a two-tier pool of 64 token slots.
    EXPECT_THROW(t.validate(0, 64), TraceConfigError);
    EXPECT_NO_THROW(t.validate(128, 128));

    // The typed error is still a FatalError for generic handlers.
    try {
        t.validate(64, 0);
        FAIL() << "validate did not throw";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("64 positions"),
                  std::string::npos);
    }
    setLogLevel(LogLevel::Info);
}

} // namespace
} // namespace serve
} // namespace cxlpnm
