/**
 * @file
 * Fleet-subsystem tests: the diurnal traffic driver (determinism,
 * schedule shape, validation), the common Backend surface over PNM
 * and GPU appliances, cluster routing (least-loaded, affinity,
 * draining, degraded-node avoidance), watermark autoscaling with
 * cooldown hysteresis, and the fleet-granularity TCO roll-up.
 */

#include <gtest/gtest.h>

#include "core/tco.hh"
#include "fleet/autoscaler.hh"
#include "fleet/backend.hh"
#include "fleet/cluster_router.hh"
#include "fleet/diurnal.hh"
#include "serve/cost_model.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"

namespace cxlpnm
{
namespace fleet
{
namespace
{

/** Hand-built cost model: fleet logic tests need no event sim. */
serve::BatchCostModel
syntheticCost()
{
    serve::BatchCostModel c;
    c.sumCurve.addSample(1, 1.0e-3);
    c.sumCurve.addSample(1024, 10.0e-3);
    c.genWeightSeconds = 10.0e-3;
    c.genKvPerTokenSeconds = 2.0e-6;
    c.perTokenComputeSeconds = 0.2e-3;
    return c;
}

serve::ServeRequest
makeRequest(std::uint64_t id, double t, std::uint64_t tenant = 0)
{
    serve::ServeRequest r;
    r.id = id;
    r.arrivalSeconds = t;
    r.inputTokens = 32;
    r.outputTokens = 16;
    r.tenant = tenant;
    return r;
}

BackendConfig
backendConfig(const std::string &name)
{
    BackendConfig cfg;
    cfg.name = name;
    cfg.plan = core::ParallelismPlan{1, 2};
    return cfg;
}

std::unique_ptr<DispatcherBackend>
syntheticBackend(const std::string &name,
                 BackendClass cls = BackendClass::Pnm)
{
    const auto model = llm::ModelConfig::tiny();
    BackendCostSpec spec;
    spec.devices = 2;
    spec.devicePriceUsd = 7000.0;
    spec.activePowerW = 160.0;
    spec.idlePowerW = 30.0;
    return std::make_unique<DispatcherBackend>(
        cls, model, syntheticCost(), 64ull << 30,
        backendConfig(name), spec);
}

// ---- diurnal traffic ----

TEST(DiurnalTest, DeterministicUnderSeed)
{
    DiurnalConfig cfg;
    cfg.baseRequestsPerSec = 5.0;
    cfg.amplitude = 0.8;
    cfg.periodSeconds = 120.0;
    cfg.numRequests = 200;
    cfg.seed = 7;
    cfg.numTenants = 4;
    cfg.input = serve::LengthDistribution::uniform(16, 64);
    cfg.output = serve::LengthDistribution::uniform(8, 32);

    const auto a = DiurnalGenerator::generate(cfg);
    const auto b = DiurnalGenerator::generate(cfg);
    ASSERT_EQ(a.size(), b.size());
    double last = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(a[i].arrivalSeconds, b[i].arrivalSeconds);
        EXPECT_EQ(a[i].inputTokens, b[i].inputTokens);
        EXPECT_EQ(a[i].outputTokens, b[i].outputTokens);
        EXPECT_EQ(a[i].tenant, b[i].tenant);
        EXPECT_GE(a[i].arrivalSeconds, last);
        last = a[i].arrivalSeconds;
        EXPECT_LT(a[i].tenant, 4u);
    }

    DiurnalConfig other = cfg;
    other.seed = 8;
    const auto c = DiurnalGenerator::generate(other);
    bool differs = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        differs = differs ||
            a[i].arrivalSeconds != c[i].arrivalSeconds;
    EXPECT_TRUE(differs);
}

TEST(DiurnalTest, PiecewiseScheduleShapesArrivals)
{
    DiurnalConfig cfg;
    cfg.segments = {{0.0, 20.0}, {10.0, 2.0}, {20.0, 20.0}};
    cfg.numRequests = 600;
    cfg.seed = 11;
    std::size_t peak = 0, trough = 0;
    for (const auto &r : DiurnalGenerator::generate(cfg)) {
        if (r.arrivalSeconds < 10.0)
            ++peak;
        else if (r.arrivalSeconds < 20.0)
            ++trough;
    }
    // 10x the rate must show up as far more arrivals per window.
    EXPECT_GT(peak, 3 * trough);
    EXPECT_GT(trough, 0u);
}

TEST(DiurnalTest, BurstyModulationStaysDeterministic)
{
    DiurnalConfig cfg;
    cfg.baseRequestsPerSec = 10.0;
    cfg.amplitude = 0.5;
    cfg.periodSeconds = 60.0;
    cfg.bursty = true;
    cfg.burstOnSeconds = 2.0;
    cfg.burstOffSeconds = 2.0;
    cfg.burstOffRateFraction = 0.0;
    cfg.numRequests = 300;
    cfg.seed = 3;
    const auto a = DiurnalGenerator::generate(cfg);
    const auto b = DiurnalGenerator::generate(cfg);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].arrivalSeconds, b[i].arrivalSeconds);
}

TEST(DiurnalTest, ValidatesConfig)
{
    setLogLevel(LogLevel::Silent);
    DiurnalConfig cfg;
    cfg.amplitude = 1.0; // trough rate would hit zero
    EXPECT_THROW(DiurnalGenerator gen(cfg), serve::TraceConfigError);
    cfg.amplitude = 0.5;
    cfg.numRequests = 0;
    EXPECT_THROW(DiurnalGenerator gen(cfg), serve::TraceConfigError);
    cfg.numRequests = 8;
    cfg.segments = {{5.0, 1.0}}; // must start at 0
    EXPECT_THROW(DiurnalGenerator gen(cfg), serve::TraceConfigError);
    cfg.segments = {{0.0, 1.0}, {0.0, 2.0}}; // must increase
    EXPECT_THROW(DiurnalGenerator gen(cfg), serve::TraceConfigError);
    cfg.segments.clear();
    cfg.bursty = true;
    cfg.burstOffRateFraction = 1.5;
    EXPECT_THROW(DiurnalGenerator gen(cfg), serve::TraceConfigError);
    setLogLevel(LogLevel::Info);
}

// ---- the Backend surface ----

TEST(BackendTest, UniformSurfaceServesAndReports)
{
    auto b = syntheticBackend("pnm0");
    EXPECT_EQ(b->backendClass(), BackendClass::Pnm);
    EXPECT_GT(b->capacityTokensPerSec(), 0.0);
    EXPECT_TRUE(b->healthyAt(0.0));
    EXPECT_EQ(b->outstandingTokens(), 0u);

    for (std::uint64_t i = 0; i < 6; ++i)
        b->submit(makeRequest(i, 0.01 * static_cast<double>(i)));
    EXPECT_GT(b->outstandingTokens(), 0u);
    b->drain();
    EXPECT_EQ(b->outstandingTokens(), 0u);
    EXPECT_EQ(b->tokensGenerated(), 6u * 16u);
    const auto report = b->report(b->clockSeconds());
    EXPECT_EQ(report.completed, 6u);
    EXPECT_EQ(b->backlogSeconds(), 0.0);
}

TEST(BackendTest, PnmAndGpuFactoriesExposeCost)
{
    const auto model = llm::ModelConfig::tiny();
    core::PnmPlatformConfig pcfg;
    const auto pnm_cost = serve::calibratePnmCostModel(model, pcfg, 64);
    PnmBackend pnm(model, pcfg, pnm_cost, backendConfig("pnm"));
    EXPECT_EQ(pnm.backendClass(), BackendClass::Pnm);
    EXPECT_EQ(pnm.costSpec().devices, 2);
    EXPECT_EQ(pnm.costSpec().devicePriceUsd, pcfg.priceUsd);
    EXPECT_GT(pnm.capacityTokensPerSec(), 0.0);

    const auto spec = gpu::GpuSpec::a100_40g();
    const auto gpu_cost = serve::calibrateGpuCostModel(
        model, spec, gpu::GpuCalibration{}, 64);
    GpuBackend g(model, spec, gpu_cost, backendConfig("gpu"));
    EXPECT_EQ(g.backendClass(), BackendClass::Gpu);
    EXPECT_EQ(g.costSpec().devicePriceUsd, spec.priceUsd);
    EXPECT_EQ(g.costSpec().idlePowerW, spec.idlePowerW * 2);
    EXPECT_GT(g.capacityTokensPerSec(), 0.0);

    // The paper's economics at the appliance level: the PNM box is
    // cheaper per device and burns far less power.
    EXPECT_LT(pnm.costSpec().devicePriceUsd,
              g.costSpec().devicePriceUsd);
    EXPECT_LT(pnm.costSpec().activePowerW, g.costSpec().activePowerW);
}

TEST(BackendTest, ValidatesConfig)
{
    setLogLevel(LogLevel::Silent);
    BackendConfig cfg;
    EXPECT_THROW(cfg.validate(), FleetConfigError); // no name
    cfg.name = "x";
    cfg.capacityContextTokens = 0;
    EXPECT_THROW(cfg.validate(), FleetConfigError);
    setLogLevel(LogLevel::Info);
}

// ---- cluster routing ----

TEST(RouterTest, LeastLoadedSpreadsWithoutAffinity)
{
    auto b0 = syntheticBackend("b0");
    auto b1 = syntheticBackend("b1");
    RouterConfig rcfg;
    rcfg.affinity = false;
    ClusterRouter router({b0.get(), b1.get()}, rcfg);

    for (std::uint64_t i = 0; i < 8; ++i)
        router.submit(makeRequest(i, 1e-4 * static_cast<double>(i)));
    router.drain();
    EXPECT_GT(router.routedTo(0), 0u);
    EXPECT_GT(router.routedTo(1), 0u);
    EXPECT_EQ(router.routedTo(0) + router.routedTo(1), 8u);
    EXPECT_EQ(b0->report(router.clockSeconds()).completed +
                  b1->report(router.clockSeconds()).completed,
              8u);
}

TEST(RouterTest, AffinityKeepsTenantsSticky)
{
    // One tenant, default slack: its first request lands on b0 and
    // every follow-up sticks there even while the empty b1 is the
    // least-loaded choice.
    {
        auto b0 = syntheticBackend("b0");
        auto b1 = syntheticBackend("b1");
        ClusterRouter router({b0.get(), b1.get()}, RouterConfig{});
        for (std::uint64_t i = 0; i < 8; ++i)
            router.submit(
                makeRequest(i, 0.05 * static_cast<double>(i)));
        router.drain();
        EXPECT_EQ(router.routedTo(0), 8u);
        EXPECT_EQ(router.routedTo(1), 0u);
        EXPECT_EQ(router.affinityHits(), 7u);
    }
    // Zero slack: load wins the moment the sticky backend falls
    // behind the least-loaded one, so traffic spreads again.
    {
        auto b0 = syntheticBackend("b0");
        auto b1 = syntheticBackend("b1");
        RouterConfig rcfg;
        rcfg.affinitySlackSeconds = 0.0;
        ClusterRouter router({b0.get(), b1.get()}, rcfg);
        for (std::uint64_t i = 0; i < 8; ++i)
            router.submit(
                makeRequest(i, 0.05 * static_cast<double>(i)));
        router.drain();
        EXPECT_GT(router.routedTo(0), 0u);
        EXPECT_GT(router.routedTo(1), 0u);
    }
}

TEST(RouterTest, DrainingBackendTakesNothingNew)
{
    auto b0 = syntheticBackend("b0");
    auto b1 = syntheticBackend("b1");
    RouterConfig rcfg;
    rcfg.affinity = false;
    ClusterRouter router({b0.get(), b1.get()}, rcfg);

    router.setState(1, BackendState::Draining);
    for (std::uint64_t i = 0; i < 6; ++i)
        router.submit(makeRequest(i, 0.01 * static_cast<double>(i)));
    router.drain();
    EXPECT_EQ(router.routedTo(0), 6u);
    EXPECT_EQ(router.routedTo(1), 0u);
}

TEST(RouterTest, RoutesAroundDegradedBackend)
{
    auto b0 = syntheticBackend("b0");
    auto b1 = syntheticBackend("b1");
    RouterConfig rcfg;
    rcfg.affinity = false;
    ClusterRouter router({b0.get(), b1.get()}, rcfg);

    // Fail-stop both of b0's device groups on their first iteration:
    // the whole appliance goes degraded (PR 3 RAS cooldown) and the
    // router must route around it while the cooldown lasts.
    fault::FaultInjector inj(9);
    inj.arm(fault::FaultSpec::scriptedAccess(
        "b0.group0.iteration", fault::FaultKind::GroupFailStop, 1));
    inj.arm(fault::FaultSpec::scriptedAccess(
        "b0.group1.iteration", fault::FaultKind::GroupFailStop, 1));
    b0->dispatcher().attachFaultInjector(&inj, "b0");

    // A same-instant burst routes b0/b1/b0/b1 before any iteration
    // runs, seeding work onto both of b0's groups so both trip; the
    // steady arrivals then land inside the cooldown window.
    for (std::uint64_t i = 0; i < 4; ++i)
        router.submit(makeRequest(i, 0.0));
    for (std::uint64_t i = 4; i < 10; ++i)
        router.submit(
            makeRequest(i, 0.5 * static_cast<double>(i - 3)));
    router.drain();

    EXPECT_GT(router.degradedSkips(), 0u);
    EXPECT_GT(router.routedTo(1), router.routedTo(0));
    const auto r0 = b0->report(router.clockSeconds());
    const auto r1 = b1->report(router.clockSeconds());
    EXPECT_EQ(r0.completed + r1.completed, 10u);
}

TEST(RouterTest, ValidatesConfig)
{
    setLogLevel(LogLevel::Silent);
    auto b0 = syntheticBackend("b0");
    RouterConfig bad;
    bad.affinitySlackSeconds = -1.0;
    EXPECT_THROW(ClusterRouter({b0.get()}, bad), FleetConfigError);
    EXPECT_THROW(ClusterRouter({}, RouterConfig{}), FleetConfigError);
    setLogLevel(LogLevel::Info);
}

// ---- autoscaling ----

TEST(AutoscalerTest, ScalesUpOnSustainedBacklog)
{
    auto b0 = syntheticBackend("b0");
    auto b1 = syntheticBackend("b1");
    RouterConfig rcfg;
    rcfg.affinity = false;
    ClusterRouter router({b0.get(), b1.get()}, rcfg);
    router.setState(1, BackendState::Offline);

    AutoscalerConfig acfg;
    acfg.highWatermarkSeconds = 0.05;
    acfg.lowWatermarkSeconds = 0.01;
    acfg.sustainSeconds = 0.0;
    acfg.cooldownSeconds = 0.0;
    Autoscaler scaler(router, acfg);

    // A same-instant burst piles backlog onto the only active box.
    for (std::uint64_t i = 0; i < 32; ++i)
        router.submit(makeRequest(i, 0.0));
    router.submit(makeRequest(32, 0.001)); // flushes the burst
    scaler.observe(0.001);

    ASSERT_EQ(scaler.scaleUps(), 1u);
    EXPECT_EQ(scaler.events().front().backend, 1u);
    EXPECT_EQ(router.state(1), BackendState::Active);

    router.drain();
    // Emptied fleet below the low watermark: drains the spare box.
    scaler.observe(router.clockSeconds() + 1.0);
    EXPECT_EQ(scaler.scaleDowns(), 1u);
    EXPECT_EQ(router.state(1), BackendState::Draining);
    // ... and a later observation retires the empty box to Offline.
    scaler.observe(router.clockSeconds() + 2.0);
    EXPECT_EQ(router.state(1), BackendState::Offline);
}

TEST(AutoscalerTest, CooldownPreventsFlapping)
{
    auto b0 = syntheticBackend("b0");
    auto b1 = syntheticBackend("b1");
    auto b2 = syntheticBackend("b2");
    RouterConfig rcfg;
    rcfg.affinity = false;
    ClusterRouter router({b0.get(), b1.get(), b2.get()}, rcfg);
    router.setState(1, BackendState::Offline);
    router.setState(2, BackendState::Offline);

    AutoscalerConfig acfg;
    acfg.highWatermarkSeconds = 0.05;
    acfg.lowWatermarkSeconds = 0.01;
    acfg.sustainSeconds = 0.0;
    acfg.cooldownSeconds = 100.0;
    Autoscaler scaler(router, acfg);

    for (std::uint64_t i = 0; i < 32; ++i)
        router.submit(makeRequest(i, 0.0));
    router.submit(makeRequest(32, 0.001));
    scaler.observe(0.001);
    scaler.observe(0.002); // still hot, but inside the cooldown
    EXPECT_EQ(scaler.scaleUps(), 1u);
    router.drain();
}

TEST(AutoscalerTest, LedgerSplitsActiveAndIdleSeconds)
{
    auto b0 = syntheticBackend("b0");
    auto b1 = syntheticBackend("b1");
    ClusterRouter router({b0.get(), b1.get()}, RouterConfig{});
    router.setState(1, BackendState::Offline);

    AutoscalerConfig acfg;
    acfg.enabled = false; // ledger only
    Autoscaler scaler(router, acfg);
    scaler.observe(4.0);
    scaler.finish(10.0);

    EXPECT_DOUBLE_EQ(scaler.activeSeconds(0), 10.0);
    EXPECT_DOUBLE_EQ(scaler.idleSeconds(0), 0.0);
    EXPECT_DOUBLE_EQ(scaler.activeSeconds(1), 0.0);
    EXPECT_DOUBLE_EQ(scaler.idleSeconds(1), 10.0);
}

TEST(AutoscalerTest, ValidatesConfig)
{
    setLogLevel(LogLevel::Silent);
    auto b0 = syntheticBackend("b0");
    ClusterRouter router({b0.get()}, RouterConfig{});
    AutoscalerConfig bad;
    bad.highWatermarkSeconds = 0.5;
    bad.lowWatermarkSeconds = 1.0;
    EXPECT_THROW(Autoscaler(router, bad), FleetConfigError);
    bad = AutoscalerConfig{};
    bad.minActive = 0;
    EXPECT_THROW(Autoscaler(router, bad), FleetConfigError);
    setLogLevel(LogLevel::Info);
}

// ---- fleet TCO ----

TEST(FleetTcoTest, RollsUpClassesAndFleet)
{
    core::FleetClassTcoInputs pnm;
    pnm.name = "pnm";
    pnm.appliances = 2;
    pnm.devicesPerAppliance = 8;
    pnm.devicePriceUsd = 7000.0;
    pnm.activePowerW = 641.7;
    pnm.idlePowerW = 120.0;
    pnm.activeSeconds = 2.0 * 3600.0;
    pnm.idleSeconds = 0.0;
    pnm.tokensGenerated = 2'000'000;

    core::FleetClassTcoInputs gpu = pnm;
    gpu.name = "gpu";
    gpu.devicePriceUsd = 10000.0;
    gpu.activePowerW = 1800.0;
    gpu.activeSeconds = 3600.0;
    gpu.idleSeconds = 3600.0;
    gpu.tokensGenerated = 1'000'000;

    const auto fleet = core::computeFleetTco({pnm, gpu}, 3600.0);
    ASSERT_EQ(fleet.classes.size(), 2u);
    const auto &p = fleet.classes[0];
    const auto &g = fleet.classes[1];

    EXPECT_NEAR(p.hardwareCostUsd, 2 * 8 * 7000.0, 1e-9);
    const double amort =
        p.hardwareCostUsd * 3600.0 / (3.0 * 365.25 * 86400.0);
    EXPECT_NEAR(p.amortizedHardwareUsd, amort, 1e-9);
    EXPECT_NEAR(p.energyKwh, 641.7 * 7200.0 / 3.6e6, 1e-9);
    EXPECT_NEAR(p.utilization, 1.0, 1e-12);
    EXPECT_NEAR(p.usdPerMtok, p.totalUsd / 2.0, 1e-12);

    EXPECT_NEAR(g.energyKwh, (1800.0 + 120.0) * 3600.0 / 3.6e6,
                1e-9);
    EXPECT_NEAR(g.utilization, 0.5, 1e-12);

    EXPECT_NEAR(fleet.tokensM, 3.0, 1e-12);
    EXPECT_NEAR(fleet.totalUsd, p.totalUsd + g.totalUsd, 1e-9);
    EXPECT_NEAR(fleet.usdPerMtok, fleet.totalUsd / 3.0, 1e-12);

    // The paper's TCO direction survives the fleet roll-up: the PNM
    // class produces tokens cheaper than the GPU class.
    EXPECT_LT(p.usdPerMtok, g.usdPerMtok);
}

TEST(FleetTcoTest, TypedErrorsOnBadInputs)
{
    setLogLevel(LogLevel::Silent);
    core::FleetClassTcoInputs c;
    c.name = "x";
    c.appliances = 1;
    c.tokensGenerated = 1;
    c.activeSeconds = 10.0;

    EXPECT_THROW(core::computeFleetTco({c}, 0.0), core::TcoError);
    EXPECT_THROW(core::computeFleetTco({c}, -1.0), core::TcoError);

    // Ledger overbooked past appliances * horizon.
    EXPECT_THROW(core::computeFleetTco({c}, 5.0), core::TcoError);

    core::FleetClassTcoInputs idle = c;
    idle.activeSeconds = 1.0;
    idle.tokensGenerated = 0;
    EXPECT_THROW(core::computeFleetTco({idle}, 10.0),
                 core::TcoError);

    core::FleetClassTcoInputs neg = c;
    neg.activeSeconds = -1.0;
    EXPECT_THROW(core::computeFleetTco({neg}, 10.0), core::TcoError);
    setLogLevel(LogLevel::Info);
}

} // namespace
} // namespace fleet
} // namespace cxlpnm
