/**
 * @file
 * Fault-injection + RAS recovery tests (§IX): injector schedule
 * semantics and seed-determinism, the event-level ECC stack (on-die
 * SEC, inline SEC-DED poison, latent-error escalation, ECS scrub),
 * CXL link-layer replay, the driver watchdog ladder (doorbell retry ->
 * device reset + program reload -> typed DeviceError), and graceful
 * serving degradation (request requeue, retry budgets, degraded
 * routing, availability accounting).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/platform.hh"
#include "dram/ecc.hh"
#include "dram/module.hh"
#include "serve/dispatcher.hh"
#include "serve/request_generator.hh"
#include "serve/scheduler.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"

namespace cxlpnm
{
namespace
{

using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultSpec;

// ---- injector schedule semantics ----

TEST(FaultInjectorTest, NullSitePollIsNone)
{
    EXPECT_EQ(fault::poll(nullptr, 123), FaultKind::None);
}

TEST(FaultInjectorTest, UnarmedSiteNeverFires)
{
    FaultInjector inj(1);
    fault::FaultSite *s = inj.site("quiet");
    for (Tick t = 0; t < 1000; ++t)
        EXPECT_EQ(s->poll(t), FaultKind::None);
    EXPECT_EQ(inj.totalFired(), 0u);
    EXPECT_EQ(s->accesses(), 1000u);
}

TEST(FaultInjectorTest, ProbabilisticFiresAtExpectedRate)
{
    FaultInjector inj(7);
    inj.arm(FaultSpec::probabilistic("mem", FaultKind::BitFlip, 0.1));
    fault::FaultSite *s = inj.site("mem");
    std::uint64_t fired = 0;
    for (int i = 0; i < 20000; ++i)
        fired += s->poll(i) == FaultKind::BitFlip;
    EXPECT_GT(fired, 1700u); // ~2000 expected
    EXPECT_LT(fired, 2300u);
    EXPECT_EQ(inj.firedCount(FaultKind::BitFlip), fired);
}

TEST(FaultInjectorTest, ScriptedTickFiresExactlyOnce)
{
    FaultInjector inj(7);
    inj.arm(FaultSpec::scriptedTick("x", FaultKind::DeviceHang, 500));
    fault::FaultSite *s = inj.site("x");
    EXPECT_EQ(s->poll(100), FaultKind::None);
    EXPECT_EQ(s->poll(499), FaultKind::None);
    EXPECT_EQ(s->poll(700), FaultKind::DeviceHang); // first at/after 500
    EXPECT_EQ(s->poll(800), FaultKind::None);       // once only
    EXPECT_EQ(inj.totalFired(), 1u);
}

TEST(FaultInjectorTest, ScriptedAccessFiresOnNthAccess)
{
    FaultInjector inj(7);
    inj.arm(FaultSpec::scriptedAccess("x", FaultKind::LinkCrc, 2));
    fault::FaultSite *s = inj.site("x");
    EXPECT_EQ(s->poll(0), FaultKind::None); // access 0
    EXPECT_EQ(s->poll(0), FaultKind::None); // access 1
    EXPECT_EQ(s->poll(0), FaultKind::LinkCrc); // access 2
    EXPECT_EQ(s->poll(0), FaultKind::None);
    ASSERT_EQ(inj.records().size(), 1u);
    EXPECT_EQ(inj.records()[0].access, 2u);
}

TEST(FaultInjectorTest, BurstFiresOnlyInsideWindow)
{
    FaultInjector inj(7);
    inj.arm(FaultSpec::burst("b", FaultKind::BitFlip, 1000, 2000, 1.0));
    fault::FaultSite *s = inj.site("b");
    EXPECT_EQ(s->poll(999), FaultKind::None);
    EXPECT_EQ(s->poll(1000), FaultKind::BitFlip);
    EXPECT_EQ(s->poll(1500), FaultKind::BitFlip);
    EXPECT_EQ(s->poll(2000), FaultKind::None); // window is half-open
    EXPECT_EQ(inj.totalFired(), 2u);
}

TEST(FaultInjectorTest, ArmBeforeSiteCreationAttachesOnRegistration)
{
    FaultInjector inj(7);
    inj.arm(FaultSpec::scriptedAccess("late", FaultKind::BitFlip, 0));
    fault::FaultSite *s = inj.site("late"); // spec armed before site
    EXPECT_EQ(s->poll(0), FaultKind::BitFlip);
}

TEST(FaultInjectorTest, SitePointerIsStableAndFindOrCreate)
{
    FaultInjector inj(7);
    fault::FaultSite *a = inj.site("s");
    fault::FaultSite *b = inj.site("s");
    EXPECT_EQ(a, b);
}

TEST(FaultInjectorTest, RejectsMalformedSpecs)
{
    setLogLevel(LogLevel::Silent);
    FaultInjector inj(7);
    EXPECT_THROW(
        inj.arm(FaultSpec::probabilistic("", FaultKind::BitFlip, 0.5)),
        FatalError);
    EXPECT_THROW(
        inj.arm(FaultSpec::probabilistic("x", FaultKind::None, 0.5)),
        FatalError);
    EXPECT_THROW(
        inj.arm(FaultSpec::probabilistic("x", FaultKind::BitFlip, 1.5)),
        FatalError);
    setLogLevel(LogLevel::Info);
}

TEST(FaultInjectorTest, SameSeedGivesByteIdenticalLog)
{
    auto campaign = [](std::uint64_t seed, bool reverse) {
        FaultInjector inj(seed);
        inj.arm(FaultSpec::probabilistic("a", FaultKind::BitFlip, 0.3));
        inj.arm(FaultSpec::probabilistic("b", FaultKind::LinkCrc, 0.2));
        // Registration order must not matter: per-site streams are
        // seeded from the site name, not the creation sequence.
        fault::FaultSite *a =
            reverse ? (inj.site("b"), inj.site("a")) : inj.site("a");
        fault::FaultSite *b = inj.site("b");
        for (Tick t = 0; t < 500; ++t) {
            a->poll(t);
            b->poll(t);
        }
        return inj.logString();
    };
    const std::string log1 = campaign(42, false);
    const std::string log2 = campaign(42, true);
    const std::string log3 = campaign(43, false);
    EXPECT_EQ(log1, log2);
    EXPECT_NE(log1, log3);
    EXPECT_FALSE(log1.empty());
}

// ---- event-level ECC stack (§IX mechanisms + corner configs) ----

TEST(EccEventTest, SingleBitCorrectedOnDieFirst)
{
    dram::EccEventState ecc{dram::EccConfig{}};
    EXPECT_EQ(ecc.onReadFault(false), dram::EccOutcome::CorrectedOnDie);
    EXPECT_EQ(ecc.corrected(), 1u);
    EXPECT_EQ(ecc.latentErrors(), 1u);
    EXPECT_EQ(ecc.poisoned(), 0u);
}

TEST(EccEventTest, InlineEccBacksUpDisabledOnDie)
{
    dram::EccConfig cfg;
    cfg.onDieEcc = false;
    dram::EccEventState ecc{cfg};
    EXPECT_EQ(ecc.onReadFault(false), dram::EccOutcome::CorrectedInline);
    EXPECT_EQ(ecc.correctedInline(), 1u);
}

TEST(EccEventTest, NoCorrectionMeansSilentCorruption)
{
    dram::EccConfig cfg;
    cfg.onDieEcc = false;
    cfg.inlineEcc = false;
    dram::EccEventState ecc{cfg};
    EXPECT_EQ(ecc.onReadFault(false),
              dram::EccOutcome::SilentCorruption);
    EXPECT_EQ(ecc.onReadFault(true), dram::EccOutcome::SilentCorruption);
    EXPECT_EQ(ecc.silentCorruptions(), 2u);
}

TEST(EccEventTest, DoubleBitDetectedByInlineBecomesPoison)
{
    dram::EccEventState ecc{dram::EccConfig{}};
    EXPECT_EQ(ecc.onReadFault(true), dram::EccOutcome::Poisoned);
    EXPECT_EQ(ecc.poisoned(), 1u);
    // SEC alone cannot even detect reliably: without inline SEC-DED a
    // double-bit error escapes silently.
    dram::EccConfig cfg;
    cfg.inlineEcc = false;
    dram::EccEventState weak{cfg};
    EXPECT_EQ(weak.onReadFault(true),
              dram::EccOutcome::SilentCorruption);
}

TEST(EccEventTest, LatentErrorsEscalateWithoutScrubbing)
{
    dram::EccConfig cfg;
    cfg.latentEscalationThreshold = 3;
    dram::EccEventState ecc{cfg};
    // Three corrected singles accumulate latent state...
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(ecc.onReadFault(false),
                  dram::EccOutcome::CorrectedOnDie);
    // ...and the fourth single lands on a latent codeword: double-bit.
    EXPECT_EQ(ecc.onReadFault(false), dram::EccOutcome::Poisoned);
    EXPECT_EQ(ecc.escalations(), 1u);
    EXPECT_EQ(ecc.latentErrors(), 0u); // offending codeword retired
}

TEST(EccEventTest, ScrubClearsLatentPopulation)
{
    dram::EccConfig cfg;
    cfg.latentEscalationThreshold = 3;
    dram::EccEventState ecc{cfg};
    for (int i = 0; i < 3; ++i)
        ecc.onReadFault(false);
    ecc.scrub();
    EXPECT_EQ(ecc.latentErrors(), 0u);
    EXPECT_EQ(ecc.scrubbedErrors(), 3u);
    EXPECT_EQ(ecc.scrubPasses(), 1u);
    // The same single that would have escalated is now just corrected.
    EXPECT_EQ(ecc.onReadFault(false), dram::EccOutcome::CorrectedOnDie);
    EXPECT_EQ(ecc.escalations(), 0u);
}

// ---- DRAM module integration: poison plumbing + ECS scheduling ----

TEST(ModuleFaultTest, DoubleBitReadPoisonsTheRequest)
{
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    dram::MultiChannelMemory mem(eq, &root, "mem",
                                 dram::DramTechSpec::lpddr5x());

    FaultInjector inj(5);
    inj.arm(FaultSpec::scriptedAccess("mem.read",
                                      FaultKind::DoubleBitFlip, 0));
    mem.attachFaultInjector(&inj);

    bool poison = false;
    bool done = false;
    dram::MemoryRequest req;
    req.addr = 0;
    req.bytes = 4096;
    req.isRead = true;
    req.poison = &poison;
    req.onComplete = [&] { done = true; };
    mem.access(std::move(req));
    eq.run();

    EXPECT_TRUE(done);
    EXPECT_TRUE(poison);
    ASSERT_NE(mem.eccEvents(), nullptr);
    EXPECT_EQ(mem.eccEvents()->poisoned(), 1u);
}

TEST(ModuleFaultTest, CorrectedErrorScheduledForScrub)
{
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    dram::MultiChannelMemory mem(eq, &root, "mem",
                                 dram::DramTechSpec::lpddr5x());

    FaultInjector inj(5);
    inj.arm(FaultSpec::scriptedAccess("mem.read", FaultKind::BitFlip, 0));
    dram::EccConfig ecc;
    ecc.scrubIntervalUs = 50.0;
    mem.attachFaultInjector(&inj, ecc);

    bool poison = false;
    dram::MemoryRequest req;
    req.addr = 0;
    req.bytes = 4096;
    req.isRead = true;
    req.poison = &poison;
    mem.access(std::move(req));
    eq.run(); // drains the access AND the lazily-scheduled scrub pass

    EXPECT_FALSE(poison); // corrected, not poisoned
    EXPECT_EQ(mem.eccEvents()->corrected(), 1u);
    EXPECT_EQ(mem.eccEvents()->scrubPasses(), 1u);
    EXPECT_EQ(mem.eccEvents()->latentErrors(), 0u);
    EXPECT_EQ(mem.eccEvents()->scrubbedErrors(), 1u);
    // The queue drained: lazy scrub scheduling must not self-perpetuate.
    EXPECT_TRUE(eq.empty());
}

// ---- CXL link-layer replay ----

TEST(LinkFaultTest, CrcErrorIsReplayedWithLatencyPenalty)
{
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    cxl::CxlLinkParams params;
    cxl::CxlLink link(eq, &root, "link", params);

    FaultInjector inj(11);
    inj.arm(FaultSpec::scriptedAccess("link.down.crc",
                                      FaultKind::LinkCrc, 0));
    link.attachFaultInjector(&inj);

    auto &down = link.channel(cxl::Direction::Downstream);
    bool poison = false;
    Tick done_at = 0;
    down.transfer(64, [&] { done_at = eq.now(); }, &poison);
    eq.run();

    EXPECT_FALSE(poison); // one replay fixed it
    EXPECT_EQ(down.crcErrors(), 1u);
    EXPECT_EQ(down.replays(), 1u);
    EXPECT_EQ(down.poisonedTransfers(), 0u);
    // The replay penalty is visible in the delivery time.
    const Tick penalty =
        static_cast<Tick>(params.crcReplayLatencyNs * tickPerNs);
    EXPECT_GE(done_at, penalty);
}

TEST(LinkFaultTest, ReplayBudgetExhaustionPoisonsUpstream)
{
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    cxl::CxlLinkParams params;
    params.maxCrcReplays = 2;
    cxl::CxlLink link(eq, &root, "link", params);

    FaultInjector inj(11);
    // Every poll corrupts: the replay budget cannot win.
    inj.arm(FaultSpec::probabilistic("link.up.crc", FaultKind::LinkCrc,
                                     1.0));
    link.attachFaultInjector(&inj);

    auto &up = link.channel(cxl::Direction::Upstream);
    bool poison = false;
    bool done = false;
    up.transfer(256, [&] { done = true; }, &poison);
    eq.run();

    EXPECT_TRUE(done);   // delivery still completes...
    EXPECT_TRUE(poison); // ...but carries poison
    EXPECT_EQ(up.replays(), 2u);
    EXPECT_EQ(up.poisonedTransfers(), 1u);
}

// ---- driver watchdog ladder on a full device ----

class DriverRasFixture : public ::testing::Test
{
  protected:
    DriverRasFixture() : root(nullptr, "")
    {
        core::PnmPlatformConfig cfg;
        cfg.functionalBytes = 24ull * MiB;
        dev = std::make_unique<core::PnmDevice>(eq, &root, "dev", cfg);
        bool loaded = false;
        dev->library().loadModel(llm::ModelConfig::tiny(), 42,
                                 [&] { loaded = true; });
        eq.run();
        EXPECT_TRUE(loaded);
    }

    /** One prefill; returns true when the token callback fired. */
    bool
    prefillCompletes()
    {
        bool done = false;
        dev->library().prefill({1, 2, 3}, [&](std::uint32_t) {
            done = true;
        });
        eq.run();
        return done;
    }

    EventQueue eq;
    stats::StatGroup root;
    std::unique_ptr<core::PnmDevice> dev;
};

TEST_F(DriverRasFixture, CleanRunLeavesRasCountersAtZero)
{
    FaultInjector inj(3); // attached but nothing armed
    dev->attachFaultInjector(&inj);
    EXPECT_TRUE(prefillCompletes());
    const auto &drv = dev->driver();
    EXPECT_EQ(drv.watchdogTimeouts(), 0u);
    EXPECT_EQ(drv.doorbellRetries(), 0u);
    EXPECT_EQ(drv.deviceResets(), 0u);
    EXPECT_EQ(drv.poisonedRuns(), 0u);
    EXPECT_EQ(inj.totalFired(), 0u);
}

TEST_F(DriverRasFixture, HangRecoveredByDoorbellRetry)
{
    FaultInjector inj(3);
    inj.arm(FaultSpec::scriptedAccess("dev.driver.launch",
                                      FaultKind::DeviceHang, 0));
    dev->attachFaultInjector(&inj);

    EXPECT_TRUE(prefillCompletes());
    const auto &drv = dev->driver();
    EXPECT_EQ(drv.watchdogTimeouts(), 1u);
    EXPECT_EQ(drv.doorbellRetries(), 1u);
    EXPECT_EQ(drv.deviceResets(), 0u);
}

TEST_F(DriverRasFixture, PersistentHangEscalatesToDeviceReset)
{
    FaultInjector inj(3);
    // Swallow the doorbell on the first launch and both retries; the
    // post-reset relaunch (access 3) goes through.
    for (std::uint64_t n = 0; n < 3; ++n)
        inj.arm(FaultSpec::scriptedAccess("dev.driver.launch",
                                          FaultKind::DeviceHang, n));
    dev->attachFaultInjector(&inj);

    EXPECT_TRUE(prefillCompletes());
    const auto &drv = dev->driver();
    EXPECT_EQ(drv.watchdogTimeouts(), 3u);
    EXPECT_EQ(drv.doorbellRetries(), 2u);
    EXPECT_EQ(drv.deviceResets(), 1u);
    EXPECT_EQ(drv.programReloads(), 1u);
}

TEST_F(DriverRasFixture, UnrecoverableHangSurfacesTypedError)
{
    FaultInjector inj(3);
    inj.arm(FaultSpec::probabilistic("dev.driver.launch",
                                     FaultKind::DeviceHang, 1.0));
    dev->attachFaultInjector(&inj);

    bool handled = false;
    dev->driver().setErrorHandler(
        [&](const runtime::DeviceError &e) {
            handled = true;
            EXPECT_EQ(e.code(), runtime::DeviceError::Code::Hang);
        });

    EXPECT_FALSE(prefillCompletes()); // the token never arrives
    EXPECT_TRUE(handled);
    EXPECT_EQ(dev->driver().deviceResets(), 1u); // ladder ran fully
}

TEST_F(DriverRasFixture, LostCompletionCaughtByWatchdog)
{
    FaultInjector inj(3);
    inj.arm(FaultSpec::scriptedAccess("dev.driver.launch",
                                      FaultKind::DropCompletion, 0));
    dev->attachFaultInjector(&inj);

    // The device finishes but the MSI-X is lost; the watchdog retries
    // the doorbell and the second run's interrupt delivers.
    EXPECT_TRUE(prefillCompletes());
    EXPECT_EQ(dev->driver().watchdogTimeouts(), 1u);
    EXPECT_EQ(dev->driver().doorbellRetries(), 1u);
}

TEST_F(DriverRasFixture, PoisonedRunsRetriedThenUncorrectable)
{
    FaultInjector inj(3);
    // Every DMA read suffers a double-bit error: each run completes
    // with the STATUS poison bit, the driver retries, then gives up.
    inj.arm(FaultSpec::probabilistic("dev.mem.read",
                                     FaultKind::DoubleBitFlip, 1.0));
    dev->attachFaultInjector(&inj);

    bool handled = false;
    dev->driver().setErrorHandler(
        [&](const runtime::DeviceError &e) {
            handled = true;
            EXPECT_EQ(e.code(),
                      runtime::DeviceError::Code::Uncorrectable);
        });

    EXPECT_FALSE(prefillCompletes());
    EXPECT_TRUE(handled);
    EXPECT_EQ(dev->driver().doorbellRetries(), 2u);
    EXPECT_GE(dev->driver().poisonedRuns(), 3u);
    ASSERT_NE(dev->memory().eccEvents(), nullptr);
    EXPECT_GT(dev->memory().eccEvents()->poisoned(), 0u);
}

TEST_F(DriverRasFixture, CorrectedBitFlipsAreInvisibleToTheRun)
{
    FaultInjector inj(3);
    inj.arm(FaultSpec::probabilistic("dev.mem.read", FaultKind::BitFlip,
                                     1.0));
    dev->attachFaultInjector(&inj);
    // Singles are corrected (and scrubbed before they can escalate at
    // the default threshold of 4? no - escalation applies; pick a huge
    // threshold via the platform config instead in campaigns). Here the
    // defaults DO escalate after 4 latent errors, so give the handler.
    bool handled = false;
    dev->driver().setErrorHandler(
        [&](const runtime::DeviceError &) { handled = true; });
    prefillCompletes();
    EXPECT_GT(dev->memory().eccEvents()->corrected(), 0u);
    // Either the run survived on corrections alone or escalation kicked
    // in; both are valid RAS outcomes, never a silent escape.
    EXPECT_EQ(dev->memory().eccEvents()->silentCorruptions(), 0u);
    (void)handled;
}

TEST_F(DriverRasFixture, ManyRetryBackoffStaysBoundedByTheCap)
{
    // A permanently hung device with a large retry budget drives the
    // exponential backoff far past any sane delay; without the
    // maxTimeoutUs cap the double->Tick conversion overflows 2^63 ps
    // around attempt 40 and the watchdog re-arms in the past. With the
    // cap, 150 retries complete with bounded, monotone simulated time.
    FaultInjector inj(3);
    inj.arm(FaultSpec::probabilistic("dev.driver.launch",
                                     FaultKind::DeviceHang, 1.0));
    dev->attachFaultInjector(&inj);
    runtime::WatchdogConfig wd;
    wd.timeoutUs = 10.0;
    wd.backoffFactor = 4.0; // 4^150 us uncapped: astronomically past 2^63
    wd.maxTimeoutUs = 1000.0;
    wd.maxRetries = 150;
    wd.maxResets = 0;
    dev->driver().setWatchdog(wd);

    bool handled = false;
    dev->driver().setErrorHandler(
        [&](const runtime::DeviceError &e) {
            handled = true;
            EXPECT_EQ(e.code(), runtime::DeviceError::Code::Hang);
        });

    const Tick before = eq.now();
    EXPECT_FALSE(prefillCompletes());
    EXPECT_TRUE(handled);
    EXPECT_EQ(dev->driver().doorbellRetries(), 150u);
    EXPECT_EQ(dev->driver().watchdogTimeouts(), 151u);
    // Time advanced (every timeout waited) but stayed within the cap's
    // budget: 151 timeouts of at most 1000 us each, plus slack.
    EXPECT_GT(eq.now(), before);
    EXPECT_LT(eq.now() - before, 200 * 1000 * tickPerUs);
}

// ---- device-level determinism: same seed, byte-identical fault log ----

TEST(FaultDeterminismTest, DeviceCampaignLogIsSeedStable)
{
    auto campaign = [](std::uint64_t seed) {
        EventQueue eq;
        stats::StatGroup root(nullptr, "");
        core::PnmPlatformConfig cfg;
        cfg.functionalBytes = 24ull * MiB;
        // Keep singles correctable forever so the run always completes.
        cfg.ecc.latentEscalationThreshold = ~0ull;
        core::PnmDevice dev(eq, &root, "dev", cfg);

        FaultInjector inj(seed);
        inj.arm(FaultSpec::probabilistic("dev.mem.read",
                                         FaultKind::BitFlip, 0.2));
        inj.arm(FaultSpec::probabilistic("dev.link.down.crc",
                                         FaultKind::LinkCrc, 0.05));
        dev.attachFaultInjector(&inj);

        dev.library().loadModel(llm::ModelConfig::tiny(), 42, nullptr);
        eq.run();
        std::vector<std::uint32_t> out;
        dev.library().generate({1, 2, 3}, 3,
                               [&](std::vector<std::uint32_t> t) {
                                   out = std::move(t);
                               });
        eq.run();
        EXPECT_EQ(out.size(), 3u);
        return inj.logString();
    };

    const std::string log1 = campaign(123);
    const std::string log2 = campaign(123);
    const std::string log3 = campaign(321);
    EXPECT_FALSE(log1.empty());
    EXPECT_EQ(log1, log2);
    EXPECT_NE(log1, log3);
}

// ---- serving-layer degradation ----

namespace sv = serve;

sv::BatchCostModel
syntheticCost()
{
    sv::BatchCostModel c;
    c.sumCurve.addSample(1, 1.0e-3);
    c.sumCurve.addSample(1024, 10.0e-3);
    c.genWeightSeconds = 10.0e-3;
    c.genKvPerTokenSeconds = 2.0e-6;
    c.perTokenComputeSeconds = 0.2e-3;
    return c;
}

sv::ServeRequest
mkReq(std::uint64_t id, double at, std::uint64_t in, std::uint64_t out)
{
    sv::ServeRequest r;
    r.id = id;
    r.arrivalSeconds = at;
    r.inputTokens = in;
    r.outputTokens = out;
    return r;
}

TEST(ServeFaultTest, FailedIterationRequeuesAndRecovers)
{
    sv::ServeMetrics metrics(nullptr, "serve");
    sv::SchedulerConfig cfg;
    cfg.ras.degradedCooldownSeconds = 0.25;
    sv::BatchScheduler s(llm::ModelConfig::tiny(), syntheticCost(),
                         1ull << 30, cfg, metrics);

    FaultInjector inj(9);
    inj.arm(FaultSpec::scriptedAccess("grp", FaultKind::IterationFail,
                                      0));
    s.attachFaultSite(inj.site("grp"));

    s.submit(mkReq(0, 0.0, 32, 4));
    s.submit(mkReq(1, 0.0, 32, 4));
    s.drain();

    const auto rep = metrics.report(s.clockSeconds());
    EXPECT_EQ(rep.iterationFailures, 1u);
    EXPECT_EQ(rep.requestRetries, 2u); // both batch members restarted
    EXPECT_EQ(rep.requestsFailed, 0u);
    EXPECT_EQ(rep.completed, 2u); // everyone finished on the retry
    EXPECT_DOUBLE_EQ(rep.degradedSeconds, 0.25);
    EXPECT_LT(rep.availability, 1.0);
    EXPECT_GT(rep.availability, 0.0);
    EXPECT_EQ(s.failed().size(), 0u);
}

TEST(ServeFaultTest, RetryBudgetExhaustionFailsRequests)
{
    sv::ServeMetrics metrics(nullptr, "serve");
    sv::SchedulerConfig cfg;
    cfg.ras.maxRequestRetries = 1;
    sv::BatchScheduler s(llm::ModelConfig::tiny(), syntheticCost(),
                         1ull << 30, cfg, metrics);

    FaultInjector inj(9);
    inj.arm(FaultSpec::probabilistic("grp", FaultKind::IterationFail,
                                     1.0));
    s.attachFaultSite(inj.site("grp"));

    s.submit(mkReq(0, 0.0, 32, 4));
    s.submit(mkReq(1, 0.0, 32, 4));
    s.drain(); // must terminate: the retry budget bounds the loop

    const auto rep = metrics.report(s.clockSeconds());
    EXPECT_EQ(rep.completed, 0u);
    EXPECT_EQ(rep.requestsFailed, 2u);
    EXPECT_EQ(s.failed().size(), 2u);
    for (const auto &r : s.failed()) {
        EXPECT_EQ(r.state, sv::RequestState::Failed);
        EXPECT_EQ(r.retries, 2u); // initial + 1 retry, both lost
    }
    // The KV pool fully recovered its reservations.
    EXPECT_EQ(s.kvPool().reservedBytes(), 0u);
}

TEST(ServeFaultTest, DispatcherRoutesAroundDegradedGroup)
{
    sv::ServeMetrics metrics(nullptr, "serve");
    sv::SchedulerConfig cfg;
    cfg.ras.maxRequestRetries = 0;        // first failure abandons
    cfg.ras.degradedCooldownSeconds = 5.0; // long cooldown window
    core::ParallelismPlan plan;
    plan.modelParallel = 1;
    plan.dataParallel = 2;
    sv::ApplianceDispatcher app(llm::ModelConfig::tiny(),
                                syntheticCost(), plan, 1ull << 30, cfg,
                                metrics);

    FaultInjector inj(9);
    inj.arm(FaultSpec::scriptedAccess("app.group0.iteration",
                                      FaultKind::IterationFail, 0));
    app.attachFaultInjector(&inj, "app");

    // A lands on group 0 (tie-break to the lowest index) and is lost
    // to the injected failure; B arrives inside group 0's cooldown.
    // Both groups are then idle, but the degraded one must lose the
    // tie: B runs on group 1.
    app.submit(mkReq(0, 0.0, 32, 2));
    app.submit(mkReq(1, 1.0, 32, 2));
    app.drain();

    EXPECT_EQ(app.group(0).failed().size(), 1u);
    EXPECT_EQ(app.group(0).finished().size(), 0u);
    EXPECT_EQ(app.group(1).finished().size(), 1u);
    const auto rep = metrics.report(app.clockSeconds());
    EXPECT_EQ(rep.completed, 1u);
    EXPECT_EQ(rep.requestsFailed, 1u);
}

TEST(ServeFaultTest, SameSeedCampaignHasIdenticalMetricsAndLog)
{
    auto campaign = [](std::uint64_t seed) {
        sv::ServeMetrics metrics(nullptr, "serve");
        sv::SchedulerConfig cfg;
        core::ParallelismPlan plan;
        plan.modelParallel = 1;
        plan.dataParallel = 2;
        sv::ApplianceDispatcher app(llm::ModelConfig::tiny(),
                                    syntheticCost(), plan, 1ull << 30,
                                    cfg, metrics);
        FaultInjector inj(seed);
        for (int g = 0; g < 2; ++g)
            inj.arm(FaultSpec::probabilistic(
                "app.group" + std::to_string(g) + ".iteration",
                FaultKind::IterationFail, 0.2));
        app.attachFaultInjector(&inj, "app");

        sv::TraceConfig trace;
        trace.requestsPerSec = 50.0;
        trace.numRequests = 60;
        trace.input = sv::LengthDistribution::uniform(16, 64);
        trace.output = sv::LengthDistribution::fixed(8);
        trace.seed = 1;
        sv::RequestGenerator gen(trace);
        while (!gen.exhausted())
            app.submit(gen.next());
        app.drain();
        return std::make_pair(metrics.report(app.clockSeconds()),
                              inj.logString());
    };

    const auto a = campaign(77);
    const auto b = campaign(77);
    EXPECT_EQ(a.second, b.second); // byte-identical fault log
    EXPECT_FALSE(a.second.empty());
    EXPECT_EQ(a.first.completed, b.first.completed);
    EXPECT_EQ(a.first.requestsFailed, b.first.requestsFailed);
    EXPECT_EQ(a.first.requestRetries, b.first.requestRetries);
    EXPECT_EQ(a.first.iterationFailures, b.first.iterationFailures);
    // Bit-identical doubles, not just close: the campaign re-runs the
    // exact same arithmetic.
    EXPECT_EQ(a.first.makespanSeconds, b.first.makespanSeconds);
    EXPECT_EQ(a.first.tokenLatencyP99, b.first.tokenLatencyP99);
    EXPECT_EQ(a.first.availability, b.first.availability);

    const auto c = campaign(78);
    EXPECT_NE(a.second, c.second);
}

} // namespace
} // namespace cxlpnm
