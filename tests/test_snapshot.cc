/**
 * @file
 * Warm-state snapshot/restore tests (serve/snapshot): run-to-T,
 * snapshot, restore onto a fresh identically-configured stack, and
 * continue - the continuation must be byte-identical to the
 * uninterrupted run (metrics dump, trace JSON, fault log, request
 * timelines, KV/tier ledgers). Plus the deterministic text format's
 * round-trip and typed-error contracts.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "serve/request_generator.hh"
#include "serve/snapshot.hh"
#include "sim/logging.hh"

namespace cxlpnm
{
namespace serve
{
namespace
{

/** Hand-built cost model: snapshot logic needs no event sim. */
BatchCostModel
syntheticCost()
{
    BatchCostModel c;
    c.sumCurve.addSample(1, 1.0e-3);
    c.sumCurve.addSample(1024, 10.0e-3);
    c.genWeightSeconds = 10.0e-3;
    c.genKvPerTokenSeconds = 2.0e-6;
    c.perTokenComputeSeconds = 0.2e-3;
    return c;
}

struct TempPath
{
    std::string path;
    explicit TempPath(const std::string &p) : path(p) {}
    ~TempPath() { std::remove(path.c_str()); }
};

std::string
statsDump(const ServeMetrics &m)
{
    std::ostringstream os;
    m.dumpStats(os);
    return os.str();
}

/**
 * One serving stack with every optional attachment, so a snapshot
 * taken from it exercises every section of the format. The trace is
 * fixed-rate so the first unsubmitted request's arrival time is known
 * exactly - the split point of the resume tests.
 */
struct Stack
{
    llm::ModelConfig model = llm::ModelConfig::tiny();
    ServeMetrics metrics;
    fault::FaultInjector inj;
    trace::Tracer tracer;
    BatchScheduler sched;
    RequestGenerator gen;

    Stack(const SchedulerConfig &cfg, std::uint64_t capacity,
          const TraceConfig &trace, std::uint64_t fault_seed,
          bool with_fault)
        : metrics(nullptr, "serve"), inj(fault_seed),
          sched(model, syntheticCost(), capacity, cfg, metrics),
          gen(trace)
    {
        if (with_fault) {
            inj.arm(fault::FaultSpec::probabilistic(
                "grp", fault::FaultKind::IterationFail, 0.08));
            sched.attachFaultSite(inj.site("grp"));
        }
        sched.attachTracer(&tracer, "app.serve");
    }

    /** Pull @p n arrivals out of the generator into the scheduler. */
    void
    submitN(std::size_t n)
    {
        for (std::size_t i = 0; i < n && !gen.exhausted(); ++i)
            sched.submit(gen.next());
    }

    void
    submitRest()
    {
        while (!gen.exhausted())
            sched.submit(gen.next());
    }

    ServingSnapshot
    snapshot(bool with_fault) const
    {
        ServingSnapshot s;
        s.groups.push_back(sched.state());
        s.metrics = metrics.state();
        s.hasFaults = with_fault;
        if (with_fault)
            s.faults = inj.state();
        s.hasTrace = true;
        s.trace = tracer.state();
        s.hasGenerator = true;
        s.generator = gen.state();
        return s;
    }

    void
    restore(const ServingSnapshot &s)
    {
        ASSERT_EQ(s.groups.size(), 1u);
        sched.restore(s.groups[0]);
        metrics.restore(s.metrics);
        if (s.hasFaults)
            inj.restore(s.faults);
        if (s.hasTrace)
            tracer.restore(s.trace);
        if (s.hasGenerator)
            gen.restore(s.generator);
    }
};

TraceConfig
fixedTrace(std::size_t n, double rate)
{
    TraceConfig t;
    t.arrivals = ArrivalProcess::Fixed;
    t.requestsPerSec = rate;
    t.numRequests = n;
    t.input = LengthDistribution::uniform(8, 40);
    t.output = LengthDistribution::uniform(4, 24);
    t.seed = 7;
    t.prefixReuse = 0.6;
    t.prefixGroups = 3;
    t.prefixTokens = 24;
    return t;
}

SchedulerConfig
tieredConfig()
{
    SchedulerConfig cfg;
    cfg.maxBatch = 4;
    cfg.paged.enabled = true;
    cfg.paged.blockTokens = 8;
    cfg.paged.preemption = true;
    cfg.paged.prefixCaching = true;
    cfg.paged.tier.farBlocks = 12;
    cfg.ras.maxRequestRetries = 2;
    cfg.ras.degradedCooldownSeconds = 0.02;
    return cfg;
}

/**
 * Reference run and split run over the same configuration; the split
 * run snapshots after @p split_n submissions + advanceTo(T), restores
 * onto a brand-new stack, and continues. Every observable artifact
 * must match the uninterrupted run byte-for-byte.
 */
void
expectResumeByteIdentical(const SchedulerConfig &cfg,
                          std::uint64_t capacity, bool with_fault)
{
    const std::size_t n = 40;
    const double rate = 50.0;
    const std::size_t split_n = 17;
    // Strictly between the last submitted arrival ((split_n-1)/rate)
    // and the first unsubmitted one (split_n/rate).
    const double T = (static_cast<double>(split_n) - 0.5) / rate;
    const TraceConfig trace = fixedTrace(n, rate);

    // Uninterrupted reference: same submission schedule, no
    // snapshot/restore (queue-depth samples count submitted-but-
    // future requests, so the schedule is part of the contract).
    Stack ref(cfg, capacity, trace, 99, with_fault);
    ref.submitN(split_n);
    ref.sched.advanceTo(T);
    ref.submitRest();
    ref.sched.drain();

    // First half.
    ServingSnapshot snap;
    {
        Stack a(cfg, capacity, trace, 99, with_fault);
        a.submitN(split_n);
        a.sched.advanceTo(T);
        snap = a.snapshot(with_fault);
        // The snapshot must round-trip through the text form; resume
        // from the decoded copy so the serializer is on the tested
        // path, not just the in-memory structs.
        snap = snapshotFromText(snapshotToText(snap));
    }

    // Fresh stack, restore, continue.
    Stack b(cfg, capacity, trace, 99, with_fault);
    b.restore(snap);
    if (cfg.paged.tier.enabled())
        b.sched.tierPool()->checkConsistency();
    b.submitRest();
    b.sched.drain();
    if (cfg.paged.tier.enabled())
        b.sched.tierPool()->checkConsistency();

    EXPECT_DOUBLE_EQ(b.sched.clockSeconds(), ref.sched.clockSeconds());
    EXPECT_EQ(statsDump(b.metrics), statsDump(ref.metrics));
    EXPECT_EQ(b.tracer.json(), ref.tracer.json());
    EXPECT_EQ(b.inj.logString(), ref.inj.logString());

    // Entire final states (request timelines, KV ledger, prefix trie,
    // tier residency, counters) compared through the serializer.
    ServingSnapshot fin_b = b.snapshot(with_fault);
    ServingSnapshot fin_ref = ref.snapshot(with_fault);
    EXPECT_EQ(snapshotToText(fin_b), snapshotToText(fin_ref));
}

// ---- resume byte-identity ----

TEST(SnapshotResumeTest, BytePoolRunResumesByteIdentically)
{
    SchedulerConfig cfg;
    cfg.maxBatch = 6;
    expectResumeByteIdentical(cfg, 1ull << 22, false);
}

TEST(SnapshotResumeTest, PagedPrefixRunResumesByteIdentically)
{
    SchedulerConfig cfg;
    cfg.maxBatch = 4;
    cfg.paged.enabled = true;
    cfg.paged.blockTokens = 8;
    const auto model = llm::ModelConfig::tiny();
    // ~20 blocks: tight enough to evict and preempt.
    expectResumeByteIdentical(cfg, 20 * model.kvCacheBytes(8), false);
}

TEST(SnapshotResumeTest, TieredFaultedRunResumesByteIdentically)
{
    const auto model = llm::ModelConfig::tiny();
    // 10 near frames + 12 far blocks: demotions, far streams, and
    // injected iteration faults all cross the snapshot point.
    expectResumeByteIdentical(tieredConfig(),
                              10 * model.kvCacheBytes(8), true);
}

TEST(SnapshotResumeTest, SnapshotAtTimeZeroEqualsFreshStart)
{
    SchedulerConfig cfg;
    const TraceConfig trace = fixedTrace(12, 50.0);

    ServingSnapshot snap;
    {
        Stack a(cfg, 1ull << 22, trace, 5, false);
        snap = a.snapshot(false); // nothing has happened yet
    }
    Stack b(cfg, 1ull << 22, trace, 5, false);
    b.restore(snap);
    b.submitRest();
    b.sched.drain();

    Stack ref(cfg, 1ull << 22, trace, 5, false);
    ref.submitRest();
    ref.sched.drain();
    EXPECT_EQ(statsDump(b.metrics), statsDump(ref.metrics));
    EXPECT_EQ(b.tracer.json(), ref.tracer.json());
}

// ---- text format ----

ServingSnapshot
richSnapshot()
{
    const auto model = llm::ModelConfig::tiny();
    Stack a(tieredConfig(), 10 * model.kvCacheBytes(8),
            fixedTrace(40, 50.0), 99, true);
    a.submitN(17);
    a.sched.advanceTo(0.33);
    ServingSnapshot s;
    s.groups.push_back(a.sched.state());
    s.metrics = a.metrics.state();
    s.hasFaults = true;
    s.faults = a.inj.state();
    s.hasTrace = true;
    s.trace = a.tracer.state();
    s.hasGenerator = true;
    s.generator = a.gen.state();
    return s;
}

TEST(SnapshotFormatTest, TextRoundTripsByteIdentically)
{
    const ServingSnapshot s = richSnapshot();
    const std::string text = snapshotToText(s);
    EXPECT_EQ(text.rfind("end\n"), text.size() - 4);
    EXPECT_EQ(snapshotToText(snapshotFromText(text)), text);
}

TEST(SnapshotFormatTest, MalformedSnapshotsThrowTypedErrors)
{
    EXPECT_THROW(snapshotFromText(""), SnapshotError);
    EXPECT_THROW(snapshotFromText("not-a-snapshot\n"), SnapshotError);

    const std::string good = snapshotToText(richSnapshot());
    // Truncation anywhere past the magic is a typed error.
    EXPECT_THROW(snapshotFromText(good.substr(0, good.size() / 2)),
                 SnapshotError);
    EXPECT_THROW(snapshotFromText(good.substr(0, good.size() - 4)),
                 SnapshotError);
    // A renamed field is a typed error, not a misparse.
    std::string bad = good;
    const std::size_t at = bad.find("\nkvpool ");
    ASSERT_NE(at, std::string::npos);
    bad.replace(at, 8, "\nkvpooL ");
    EXPECT_THROW(snapshotFromText(bad), SnapshotError);
}

TEST(SnapshotFormatTest, FileRoundTripAndMissingFileThrow)
{
    const ServingSnapshot s = richSnapshot();
    TempPath tmp("snapshot_roundtrip_test.txt");
    saveSnapshot(s, tmp.path);
    const ServingSnapshot back = loadSnapshot(tmp.path);
    EXPECT_EQ(snapshotToText(back), snapshotToText(s));

    EXPECT_THROW(loadSnapshot("no/such/snapshot/file.txt"),
                 SnapshotError);
}

// ---- structural-mismatch fatals ----

TEST(SnapshotRestoreTest, MismatchedConfigurationIsFatal)
{
    const auto model = llm::ModelConfig::tiny();
    const ServingSnapshot s = richSnapshot(); // paged + tiered state

    // Paged/tiered state into a byte-pool scheduler.
    {
        ServeMetrics m(nullptr, "serve");
        BatchScheduler plain(model, syntheticCost(), 1ull << 22, {},
                             m);
        EXPECT_THROW(plain.restore(s.groups[0]), FatalError);
    }
    // Same shape, different KV capacity.
    {
        ServeMetrics m(nullptr, "serve");
        BatchScheduler resized(model, syntheticCost(),
                               11 * model.kvCacheBytes(8),
                               tieredConfig(), m);
        EXPECT_THROW(resized.restore(s.groups[0]), FatalError);
    }
    // Fault state into an injector whose sites never registered.
    {
        fault::FaultInjector empty(99);
        EXPECT_THROW(empty.restore(s.faults), FatalError);
    }
}

// ---- dispatcher (multi-group) resume ----

TEST(SnapshotResumeTest, DispatcherResumeMatchesUninterrupted)
{
    const auto model = llm::ModelConfig::tiny();
    const auto cost = syntheticCost();
    core::ParallelismPlan plan;
    plan.dataParallel = 2;
    SchedulerConfig cfg;
    cfg.maxBatch = 4;
    const TraceConfig trace = fixedTrace(30, 50.0);
    const std::uint64_t cap = 1ull << 22;

    auto run_all = [&](ApplianceDispatcher &d, RequestGenerator &g,
                       std::size_t from) {
        std::size_t i = 0;
        while (!g.exhausted()) {
            const ServeRequest r = g.next();
            if (i++ >= from)
                d.submit(r);
        }
        d.drain();
    };

    ServeMetrics ref_m(nullptr, "serve");
    ApplianceDispatcher ref(model, cost, plan, cap, cfg, ref_m);
    {
        RequestGenerator g(trace);
        run_all(ref, g, 0);
    }

    // Split at 13 submissions.
    ServingSnapshot snap;
    {
        ServeMetrics m(nullptr, "serve");
        ApplianceDispatcher d(model, cost, plan, cap, cfg, m);
        RequestGenerator g(trace);
        for (std::size_t i = 0; i < 13; ++i)
            d.submit(g.next());
        snap.groups = d.state();
        snap.metrics = m.state();
        snap.hasGenerator = true;
        snap.generator = g.state();
        snap = snapshotFromText(snapshotToText(snap));
    }

    ServeMetrics m2(nullptr, "serve");
    ApplianceDispatcher d2(model, cost, plan, cap, cfg, m2);
    d2.restore(snap.groups);
    m2.restore(snap.metrics);
    RequestGenerator g2(trace);
    g2.restore(snap.generator);
    while (!g2.exhausted())
        d2.submit(g2.next());
    d2.drain();

    EXPECT_DOUBLE_EQ(d2.clockSeconds(), ref.clockSeconds());
    EXPECT_EQ(statsDump(m2), statsDump(ref_m));

    // Group-count mismatch is fatal, not silent.
    core::ParallelismPlan one;
    one.dataParallel = 1;
    ServeMetrics m3(nullptr, "serve");
    ApplianceDispatcher d3(model, cost, one, cap, cfg, m3);
    EXPECT_THROW(d3.restore(snap.groups), FatalError);
}

} // namespace
} // namespace serve
} // namespace cxlpnm
