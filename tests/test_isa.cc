/**
 * @file
 * ISA tests: encode/decode round-trips, program serialisation, opcode
 * classification, disassembly.
 */

#include <gtest/gtest.h>

#include "isa/isa.hh"
#include "sim/logging.hh"

namespace cxlpnm
{
namespace isa
{
namespace
{

Instruction
sampleInst()
{
    Instruction i;
    i.op = Opcode::MpuMmPea;
    i.flags = FlagTransB | FlagMemOperand;
    i.dst = 3;
    i.src0 = 1;
    i.src1 = NoReg;
    i.aux = 7;
    i.m = 64;
    i.n = 5120;
    i.k = 5120;
    i.imm = 0;
    i.scale = 0.088388f;
    i.memAddr = 0x123456789abull;
    return i;
}

TEST(IsaTest, EncodeDecodeRoundTrip)
{
    Instruction i = sampleInst();
    auto bytes = i.encode();
    Instruction j = Instruction::decode(bytes.data());
    EXPECT_EQ(i, j);
}

TEST(IsaTest, RoundTripAllOpcodes)
{
    const Opcode ops[] = {
        Opcode::Halt, Opcode::DmaLoad, Opcode::DmaStore, Opcode::MpuMv,
        Opcode::MpuTranspose, Opcode::MpuIm2col, Opcode::MpuMmPea,
        Opcode::MpuMmRedumaxPea, Opcode::MpuMaskedMmPea,
        Opcode::MpuMaskedMmRedumaxPea, Opcode::MpuConv2dPea,
        Opcode::MpuConv2dGeluPea, Opcode::VpuLayerNorm,
        Opcode::VpuSoftmax, Opcode::VpuGelu, Opcode::VpuAdd,
        Opcode::VpuMul, Opcode::VpuReduMax, Opcode::Sync,
    };
    for (Opcode op : ops) {
        Instruction i = sampleInst();
        i.op = op;
        auto bytes = i.encode();
        EXPECT_EQ(Instruction::decode(bytes.data()), i)
            << opcodeName(op);
    }
}

TEST(IsaTest, DecodeRejectsBadOpcode)
{
    setLogLevel(LogLevel::Silent);
    auto bytes = sampleInst().encode();
    bytes[0] = 0xee;
    EXPECT_THROW(Instruction::decode(bytes.data()), PanicError);
    setLogLevel(LogLevel::Info);
}

TEST(IsaTest, ProgramEncodeAppendsHaltTerminator)
{
    Program p;
    p.append(sampleInst());
    p.append(sampleInst());
    auto bytes = p.encode();
    EXPECT_EQ(bytes.size(), 3 * Instruction::encodedSize);

    Program q = Program::decode(bytes);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q[0], p[0]);
    EXPECT_EQ(q[1], p[1]);
}

TEST(IsaTest, ProgramDecodeRejectsRaggedBuffer)
{
    setLogLevel(LogLevel::Silent);
    std::vector<std::uint8_t> bytes(Instruction::encodedSize + 1, 0);
    EXPECT_THROW(Program::decode(bytes), FatalError);
    setLogLevel(LogLevel::Info);
}

TEST(IsaTest, OpcodeClassification)
{
    EXPECT_TRUE(isPeaOp(Opcode::MpuConv2dGeluPea));
    EXPECT_FALSE(isPeaOp(Opcode::MpuMv));
    EXPECT_TRUE(isMpuOp(Opcode::MpuMv));
    EXPECT_TRUE(isMpuOp(Opcode::MpuMaskedMmPea));
    EXPECT_FALSE(isMpuOp(Opcode::VpuGelu));
    EXPECT_TRUE(isVpuOp(Opcode::VpuSoftmax));
    EXPECT_FALSE(isVpuOp(Opcode::Sync));
    EXPECT_TRUE(isDmaOp(Opcode::DmaLoad));
    EXPECT_TRUE(isDmaOp(Opcode::DmaStore));
    EXPECT_FALSE(isDmaOp(Opcode::Halt));
}

TEST(IsaTest, DisassemblyMentionsKeyFields)
{
    Instruction i = sampleInst();
    const std::string s = i.toString();
    EXPECT_NE(s.find("MPU_MM_PEA"), std::string::npos);
    EXPECT_NE(s.find("transB"), std::string::npos);
    EXPECT_NE(s.find("m=64"), std::string::npos);
    EXPECT_NE(s.find("scale="), std::string::npos);

    Program p;
    p.append(i);
    EXPECT_NE(p.toString().find("0: MPU_MM_PEA"), std::string::npos);
}

TEST(IsaTest, TheSixNewPeaInstructionsExist)
{
    // The paper's §V-C lists exactly these six additions to DFX's ISA.
    EXPECT_STREQ(opcodeName(Opcode::MpuMmPea), "MPU_MM_PEA");
    EXPECT_STREQ(opcodeName(Opcode::MpuMmRedumaxPea),
                 "MPU_MM_REDUMAX_PEA");
    EXPECT_STREQ(opcodeName(Opcode::MpuMaskedMmPea), "MPU_MASKEDMM_PEA");
    EXPECT_STREQ(opcodeName(Opcode::MpuMaskedMmRedumaxPea),
                 "MPU_MASKEDMM_REDUMAX_PEA");
    EXPECT_STREQ(opcodeName(Opcode::MpuConv2dPea), "MPU_CONV2D_PEA");
    EXPECT_STREQ(opcodeName(Opcode::MpuConv2dGeluPea),
                 "MPU_CONV2D_GELU_PEA");
}

} // namespace
} // namespace isa
} // namespace cxlpnm
