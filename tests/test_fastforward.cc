/**
 * @file
 * Calibrated fast-forward tests: held-out anchor validation, profile
 * save/load round-trips (byte-determinism, fingerprint rejection,
 * malformed-input errors), AnalyticPricer parity with the built-in
 * cost path, CyclePricer exactness against direct engine stage runs,
 * and per-group pricer selection on the appliance dispatcher.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "serve/calibration.hh"
#include "serve/dispatcher.hh"
#include "serve/metrics.hh"
#include "serve/request_generator.hh"
#include "serve/scheduler.hh"

namespace cxlpnm
{
namespace serve
{
namespace
{

TraceConfig
saturatingTrace(std::size_t n, std::uint64_t in, std::uint64_t out)
{
    TraceConfig t;
    t.arrivals = ArrivalProcess::Fixed;
    t.requestsPerSec = 1.0e6;
    t.numRequests = n;
    t.input = LengthDistribution::fixed(in);
    t.output = LengthDistribution::fixed(out);
    return t;
}

/** Scratch file that removes itself. */
struct TempPath
{
    std::string path;
    explicit TempPath(const std::string &p) : path(p) {}
    ~TempPath() { std::remove(path.c_str()); }
};

// ---- execution modes ----

TEST(ExecModeTest, NamesRoundTripAndBadNamesThrow)
{
    EXPECT_EQ(execModeByName("cycle"), ExecMode::Cycle);
    EXPECT_EQ(execModeByName("analytic"), ExecMode::Analytic);
    EXPECT_EQ(execModeByName("mixed"), ExecMode::Mixed);
    EXPECT_STREQ(execModeName(ExecMode::Cycle), "cycle");
    EXPECT_STREQ(execModeName(ExecMode::Analytic), "analytic");
    EXPECT_STREQ(execModeName(ExecMode::Mixed), "mixed");
    EXPECT_THROW(execModeByName("warp"), CalibrationError);
    EXPECT_THROW(execModeByName(""), CalibrationError);
}

// ---- calibration with held-out anchors ----

TEST(FastForwardTest, AnchorsAreHeldOutAndWithinBudget)
{
    const auto model = llm::ModelConfig::tiny();
    core::PnmPlatformConfig pcfg;
    const auto p = calibrateWithAnchors(model, pcfg, 64);

    EXPECT_EQ(p.modelName, model.name);
    EXPECT_EQ(p.maxContext, 64u);
    ASSERT_EQ(p.anchors.size(), 4u);

    // The fit samples sum stages on the eighth-point grid and gen
    // stages at {hi/8, hi}; the sum anchors sit at odd sixteenth
    // points and the gen anchors at quarter points, all held out.
    EXPECT_EQ(p.anchors[0].kind, 's');
    EXPECT_EQ(p.anchors[0].tokens, 12u);
    EXPECT_EQ(p.anchors[1].tokens, 44u);
    EXPECT_EQ(p.anchors[2].kind, 'g');
    EXPECT_EQ(p.anchors[2].tokens, 16u);
    EXPECT_EQ(p.anchors[3].tokens, 48u);

    for (const auto &a : p.anchors) {
        EXPECT_GT(a.engineSeconds, 0.0);
        EXPECT_GT(a.modelSeconds, 0.0);
        EXPECT_GE(a.relErr, 0.0);
    }
    // The ISSUE acceptance bound: a few percent on held-out shapes.
    EXPECT_LE(p.maxRelErr(), 0.05);

    // Deterministic: calibrating twice gives bit-identical profiles.
    const auto q = calibrateWithAnchors(model, pcfg, 64);
    EXPECT_EQ(profileToText(p), profileToText(q));
}

TEST(FastForwardTest, TinyContextsClampAndDedupAnchors)
{
    const auto model = llm::ModelConfig::tiny();
    core::PnmPlatformConfig pcfg;
    // max_context below the clamp floor: clamped up to 4, anchors land
    // on s@{1,2} and g@{2,3} after the floors (1 for sum, 2 for gen).
    const auto p = calibrateWithAnchors(model, pcfg, 1);
    EXPECT_EQ(p.maxContext, 4u);
    ASSERT_EQ(p.anchors.size(), 4u);
    EXPECT_EQ(p.anchors[0].tokens, 1u);
    EXPECT_EQ(p.anchors[1].tokens, 2u);
    EXPECT_EQ(p.anchors[2].tokens, 2u);
    EXPECT_EQ(p.anchors[3].tokens, 3u);
}

// ---- profile serialization ----

TEST(FastForwardTest, ProfileTextRoundTripsByteIdentically)
{
    const auto model = llm::ModelConfig::tiny();
    core::PnmPlatformConfig pcfg;
    const auto p = calibrateWithAnchors(model, pcfg, 64);

    const std::string text = profileToText(p);
    const auto r = profileFromText(text);
    EXPECT_EQ(profileToText(r), text);
    EXPECT_EQ(r.modelName, p.modelName);
    EXPECT_EQ(r.channelGrouping, p.channelGrouping);
    EXPECT_EQ(r.tensorShard, p.tensorShard);
    EXPECT_EQ(r.maxContext, p.maxContext);
    EXPECT_DOUBLE_EQ(r.cost.genWeightSeconds, p.cost.genWeightSeconds);
    EXPECT_DOUBLE_EQ(r.cost.genKvPerTokenSeconds,
                     p.cost.genKvPerTokenSeconds);
    ASSERT_EQ(r.anchors.size(), p.anchors.size());
    for (std::size_t i = 0; i < r.anchors.size(); ++i) {
        EXPECT_EQ(r.anchors[i].kind, p.anchors[i].kind);
        EXPECT_EQ(r.anchors[i].tokens, p.anchors[i].tokens);
        EXPECT_DOUBLE_EQ(r.anchors[i].engineSeconds,
                         p.anchors[i].engineSeconds);
        EXPECT_DOUBLE_EQ(r.anchors[i].relErr, p.anchors[i].relErr);
    }
    // The fitted curve survives: identical predictions everywhere.
    for (std::uint64_t l : {1u, 7u, 16u, 33u, 64u, 128u})
        EXPECT_DOUBLE_EQ(r.cost.sumCurve.at(l), p.cost.sumCurve.at(l));
}

TEST(FastForwardTest, MalformedProfilesThrowTypedErrors)
{
    EXPECT_THROW(profileFromText(""), CalibrationError);
    EXPECT_THROW(profileFromText("not-a-profile\n"), CalibrationError);

    const auto model = llm::ModelConfig::tiny();
    core::PnmPlatformConfig pcfg;
    const auto p = calibrateWithAnchors(model, pcfg, 64);
    std::string text = profileToText(p);

    // Truncation anywhere is detected (the trailing "end" guard).
    EXPECT_THROW(profileFromText(text.substr(0, text.size() / 2)),
                 CalibrationError);
    // A wrong field name is detected.
    std::string bad = text;
    bad.replace(bad.find("gen_weight"), 10, "gen_wieght");
    EXPECT_THROW(profileFromText(bad), CalibrationError);
}

TEST(FastForwardTest, ProfileFileRoundTripAndFingerprintCheck)
{
    const auto model = llm::ModelConfig::tiny();
    core::PnmPlatformConfig pcfg;
    const auto p = calibrateWithAnchors(model, pcfg, 64);

    TempPath tmp("fastforward_profile_test.txt");
    saveProfile(p, tmp.path);
    const auto r = loadProfile(tmp.path, model, pcfg, 64, 1);
    EXPECT_EQ(profileToText(r), profileToText(p));

    // A stored profile refuses to price a different configuration.
    // (128 would clamp to tiny's maxPositions of 64 and match — a
    // request the profile genuinely covers; 32 does not.)
    const auto again = loadProfile(tmp.path, model, pcfg, 128, 1);
    EXPECT_EQ(again.maxContext, 64u);
    EXPECT_THROW(loadProfile(tmp.path, model, pcfg, 32, 1),
                 CalibrationError);
    EXPECT_THROW(loadProfile(tmp.path, model, pcfg, 64, 2),
                 CalibrationError);
    auto other = model;
    other.name = "other-model";
    EXPECT_THROW(loadProfile(tmp.path, other, pcfg, 64, 1),
                 CalibrationError);

    EXPECT_THROW(loadProfile("does-not-exist.txt", model, pcfg, 64, 1),
                 CalibrationError);
}

// ---- pricers ----

TEST(FastForwardTest, AnalyticPricerMatchesBuiltInPathBitForBit)
{
    const auto model = llm::ModelConfig::tiny();
    core::PnmPlatformConfig pcfg;
    const auto p = calibrateWithAnchors(model, pcfg, 64);
    const auto kv = pnmKvCapacityBytes(model, pcfg);
    const auto trace = saturatingTrace(24, 16, 12);

    ServeMetrics m_ref(nullptr, "ref");
    BatchScheduler ref(model, p.cost, kv, SchedulerConfig{}, m_ref);
    RequestGenerator g_ref(trace);
    while (!g_ref.exhausted())
        ref.submit(g_ref.next());
    ref.drain();

    AnalyticPricer pricer(p.cost);
    ServeMetrics m_ff(nullptr, "ff");
    BatchScheduler ff(model, p.cost, kv, SchedulerConfig{}, m_ff);
    ff.setPricer(&pricer);
    RequestGenerator g_ff(trace);
    while (!g_ff.exhausted())
        ff.submit(g_ff.next());
    ff.drain();

    EXPECT_EQ(ref.clockSeconds(), ff.clockSeconds());
    ASSERT_EQ(ref.finished().size(), ff.finished().size());
    for (std::size_t i = 0; i < ref.finished().size(); ++i) {
        EXPECT_EQ(ref.finished()[i].finishSeconds,
                  ff.finished()[i].finishSeconds);
        EXPECT_EQ(ref.finished()[i].firstTokenSeconds,
                  ff.finished()[i].firstTokenSeconds);
    }
}

TEST(FastForwardTest, CyclePricerTimesStagesExactlyAndMemoizes)
{
    const auto model = llm::ModelConfig::tiny();
    core::PnmPlatformConfig pcfg;
    const auto p = calibrateWithAnchors(model, pcfg, 64);
    CyclePricer pricer(model, pcfg, p.cost);

    // Prefill of an l-token prompt prices the exact engine sum stage
    // (plus comm terms, zero here: single shard).
    const double direct_sum = core::pnmSumStageSeconds(model, pcfg, 24);
    EXPECT_DOUBLE_EQ(pricer.prefillSeconds(24, 0), direct_sum);
    // A full-prefix cache hit still computes the last position.
    const double one = core::pnmSumStageSeconds(model, pcfg, 1);
    EXPECT_DOUBLE_EQ(pricer.prefillSeconds(24, 24), one);

    // Decode batch of one: one exact gen stage plus host/compute terms.
    const double direct_gen = core::pnmGenStageSeconds(model, pcfg, 32);
    const double d1 = pricer.decodeIterationSeconds({32});
    EXPECT_GE(d1, direct_gen);
    EXPECT_NEAR(d1,
                std::max(direct_gen,
                         p.cost.perTokenComputeSeconds) +
                    p.cost.perTokenHostSeconds,
                1e-12);

    // Batch of two at the same context: the second member adds only
    // its marginal KV traffic over the 2-token baseline, so the total
    // stays below two full stages (the whole point of batching).
    const double d2 = pricer.decodeIterationSeconds({32, 32});
    EXPECT_GT(d2, d1);
    EXPECT_LT(d2, 2.0 * d1);

    // Memoization: repeating shapes runs no new engine simulations.
    const auto runs = pricer.engineStageRuns();
    const auto hits = pricer.memoHits();
    EXPECT_DOUBLE_EQ(pricer.decodeIterationSeconds({32, 32}), d2);
    EXPECT_DOUBLE_EQ(pricer.prefillSeconds(24, 0), direct_sum);
    EXPECT_EQ(pricer.engineStageRuns(), runs);
    EXPECT_GT(pricer.memoHits(), hits);

    // Empty batch prices to zero.
    EXPECT_DOUBLE_EQ(pricer.decodeIterationSeconds({}), 0.0);
}

TEST(FastForwardTest, CyclePricedServeCompletesAndStaysDeterministic)
{
    const auto model = llm::ModelConfig::tiny();
    core::PnmPlatformConfig pcfg;
    const auto p = calibrateWithAnchors(model, pcfg, 64);
    const auto kv = pnmKvCapacityBytes(model, pcfg);
    const auto trace = saturatingTrace(16, 12, 8);

    auto run = [&] {
        CyclePricer pricer(model, pcfg, p.cost);
        ServeMetrics m(nullptr, "cyc");
        BatchScheduler s(model, p.cost, kv, SchedulerConfig{}, m);
        s.setPricer(&pricer);
        RequestGenerator gen(trace);
        while (!gen.exhausted())
            s.submit(gen.next());
        s.drain();
        EXPECT_EQ(s.finished().size(), 16u);
        // Far fewer engine runs than pricing calls: shapes repeat.
        EXPECT_GT(pricer.memoHits(), pricer.engineStageRuns());
        return s.clockSeconds();
    };
    const double a = run();
    const double b = run();
    EXPECT_EQ(a, b);
    EXPECT_GT(a, 0.0);
}

TEST(FastForwardTest, DispatcherSelectsPricerPerGroup)
{
    const auto model = llm::ModelConfig::tiny();
    core::PnmPlatformConfig pcfg;
    const auto p = calibrateWithAnchors(model, pcfg, 64);
    const auto kv = pnmKvCapacityBytes(model, pcfg);

    core::ParallelismPlan plan;
    plan.dataParallel = 2;

    // Mixed mode: group 0 cycle-accurate, group 1 analytic.
    CyclePricer cycle(model, pcfg, p.cost);
    AnalyticPricer analytic(p.cost);
    ServeMetrics metrics(nullptr, "mixed");
    ApplianceDispatcher disp(model, p.cost, plan, kv, SchedulerConfig{},
                             metrics);
    ASSERT_EQ(disp.groupCount(), 2u);
    disp.setPricer(0, &cycle);
    disp.setPricer(1, &analytic);

    RequestGenerator gen(saturatingTrace(20, 12, 8));
    while (!gen.exhausted())
        disp.submit(gen.next());
    disp.drain();

    std::size_t total = 0;
    for (std::size_t g = 0; g < disp.groupCount(); ++g)
        total += disp.group(g).finished().size();
    EXPECT_EQ(total, 20u);
    EXPECT_GT(cycle.engineStageRuns(), 0u);
}

} // namespace
} // namespace serve
} // namespace cxlpnm
