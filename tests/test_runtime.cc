/**
 * @file
 * Software-stack tests: allocator behaviour, driver register/doorbell/
 * interrupt/polling flows, and the full functional end-to-end check -
 * a tiny OPT-like model generated through driver -> codegen ->
 * accelerator must match the double-precision ReferenceModel.
 */

#include <gtest/gtest.h>

#include "core/platform.hh"
#include "llm/reference_model.hh"
#include "numeric/linalg.hh"
#include "runtime/allocator.hh"
#include "sim/logging.hh"

namespace cxlpnm
{
namespace runtime
{
namespace
{

// ---- Allocator ----

TEST(AllocatorTest, FirstFitAndAlignment)
{
    CxlMemAllocator a(0, 1 << 20);
    Addr x = a.alloc(100, 256);
    Addr y = a.alloc(100, 256);
    EXPECT_EQ(x % 256, 0u);
    EXPECT_EQ(y % 256, 0u);
    EXPECT_NE(x, y);
    EXPECT_EQ(a.usedBytes(), 200u);
    EXPECT_EQ(a.liveAllocations(), 2u);
}

TEST(AllocatorTest, FreeCoalescesNeighbours)
{
    CxlMemAllocator a(0, 4096);
    Addr x = a.alloc(1024, 1);
    Addr y = a.alloc(1024, 1);
    Addr z = a.alloc(1024, 1);
    (void)y;
    a.free(x);
    a.free(z);
    a.free(y); // middle free must merge everything back
    EXPECT_EQ(a.freeBytes(), 4096u);
    EXPECT_EQ(a.largestFreeBlock(), 4096u);
    // The whole region is allocatable again.
    EXPECT_NO_THROW(a.alloc(4096, 1));
}

TEST(AllocatorTest, ReusesFreedHole)
{
    CxlMemAllocator a(0, 4096);
    Addr x = a.alloc(1024, 1);
    a.alloc(1024, 1);
    a.free(x);
    Addr z = a.alloc(512, 1);
    EXPECT_EQ(z, x); // first fit lands in the hole
}

TEST(AllocatorTest, ExhaustionAndErrors)
{
    setLogLevel(LogLevel::Silent);
    CxlMemAllocator a(0, 1024);
    EXPECT_THROW(a.alloc(2048), FatalError);
    EXPECT_THROW(a.alloc(0), FatalError);
    EXPECT_THROW(a.alloc(10, 3), FatalError); // non-pow2 align
    EXPECT_THROW(a.free(0x999), PanicError);
    setLogLevel(LogLevel::Info);
}

TEST(AllocatorTest, NonZeroBase)
{
    CxlMemAllocator a(0x1000, 4096);
    Addr x = a.alloc(64);
    EXPECT_GE(x, 0x1000u);
}

// ---- Driver + library on a full device ----

class DeviceFixture : public ::testing::Test
{
  protected:
    DeviceFixture() : root(nullptr, "")
    {
        core::PnmPlatformConfig cfg;
        cfg.functionalBytes = 24ull * MiB;
        dev = std::make_unique<core::PnmDevice>(eq, &root, "dev", cfg);
    }

    /** Drive the queue until it drains. */
    void
    drain()
    {
        eq.run();
    }

    EventQueue eq;
    stats::StatGroup root;
    std::unique_ptr<core::PnmDevice> dev;
};

TEST_F(DeviceFixture, DriverRegisterReadWrite)
{
    auto &drv = dev->driver();
    bool wrote = false;
    drv.setParam(4, 0x1234, [&] { wrote = true; });
    drain();
    EXPECT_TRUE(wrote);
}

TEST_F(DeviceFixture, DriverRejectsBadParamIndex)
{
    setLogLevel(LogLevel::Silent);
    EXPECT_THROW(dev->driver().setParam(10, 0, nullptr), FatalError);
    setLogLevel(LogLevel::Info);
}

TEST_F(DeviceFixture, LoadModelPreloadsPersistentRegisters)
{
    bool loaded = false;
    dev->library().loadModel(llm::ModelConfig::tiny(), 42,
                             [&] { loaded = true; });
    drain();
    EXPECT_TRUE(loaded);
    // Norm parameters + biases live in the RF now.
    EXPECT_GT(dev->accel().registerFile().usedBytes(), 0u);
    // The allocator carved out weights, caches and buffers.
    EXPECT_GT(dev->library().allocator().usedBytes(), 0u);
}

TEST_F(DeviceFixture, InterruptAndPollingCompletionsBothWork)
{
    auto &lib = dev->library();
    bool loaded = false;
    lib.loadModel(llm::ModelConfig::tiny(), 42, [&] { loaded = true; });
    drain();
    ASSERT_TRUE(loaded);

    // Interrupt mode (default).
    std::uint32_t tok_a = 0xffffffff;
    lib.prefill({1, 2, 3}, [&](std::uint32_t t) { tok_a = t; });
    drain();
    EXPECT_NE(tok_a, 0xffffffffu);
    EXPECT_GT(dev->driver().interruptsTaken(), 0u);

    // Polling mode produces the same token on the same context.
    dev->driver().setCompletionMode(Completion::Polling);
    std::uint32_t tok_b = 0xffffffff;
    lib.prefill({1, 2, 3}, [&](std::uint32_t t) { tok_b = t; });
    drain();
    EXPECT_EQ(tok_b, tok_a);
    EXPECT_GT(dev->driver().pollsIssued(), 0u);
}

TEST_F(DeviceFixture, PrefillMatchesReferenceModel)
{
    const auto cfg = llm::ModelConfig::tiny();
    auto &lib = dev->library();
    bool loaded = false;
    lib.loadModel(cfg, 42, [&] { loaded = true; });
    drain();
    ASSERT_TRUE(loaded);

    const std::vector<std::uint32_t> prompt{10, 4, 200, 77};
    std::uint32_t device_tok = 0xffffffff;
    lib.prefill(prompt, [&](std::uint32_t t) { device_tok = t; });
    drain();

    llm::ReferenceModel ref(cfg, 42);
    auto logits = ref.prefill(prompt);
    const auto ref_tok =
        static_cast<std::uint32_t>(linalg::argmaxRow(logits, 0));
    EXPECT_EQ(device_tok, ref_tok);
}

TEST_F(DeviceFixture, GreedyGenerationMatchesReferenceModel)
{
    // The flagship functional test: 6 tokens generated end-to-end on
    // the simulated device (FP16 datapaths) match the double-precision
    // reference's greedy decode, token for token.
    const auto cfg = llm::ModelConfig::tiny();
    auto &lib = dev->library();
    bool loaded = false;
    lib.loadModel(cfg, 42, [&] { loaded = true; });
    drain();
    ASSERT_TRUE(loaded);

    const std::vector<std::uint32_t> prompt{3, 141, 59, 26, 5};
    std::vector<std::uint32_t> device_tokens;
    lib.generate(prompt, 6,
                 [&](std::vector<std::uint32_t> t) { device_tokens = t; });
    drain();

    llm::ReferenceModel ref(cfg, 42);
    const auto ref_tokens = ref.greedyGenerate(prompt, 6);
    EXPECT_EQ(device_tokens, ref_tokens);
    EXPECT_EQ(lib.contextLength(), prompt.size() + 6 - 1);
}

TEST_F(DeviceFixture, GenerationAdvancesSimulatedTime)
{
    const auto cfg = llm::ModelConfig::tiny();
    auto &lib = dev->library();
    lib.loadModel(cfg, 42, nullptr);
    drain();

    const Tick before = eq.now();
    std::vector<std::uint32_t> out;
    lib.generate({1, 2}, 3, [&](std::vector<std::uint32_t> t) {
        out = std::move(t);
    });
    drain();
    EXPECT_EQ(out.size(), 3u);
    // Sum + 2 gen stages with MMIO, DMA and interrupts: > 10 us.
    EXPECT_GT(eq.now() - before, 10 * tickPerUs);
}

TEST_F(DeviceFixture, LayerFunctionCodeHelpers)
{
    auto &lib = dev->library();
    auto &rf = dev->accel().registerFile();
    auto a = rf.alloc(4, 8, "a");
    auto b = rf.alloc(4, 8, "b");
    auto g = rf.alloc(1, 8, "g");
    auto bt = rf.alloc(1, 8, "bt");

    EXPECT_EQ(lib.layerNormCode(b, a, g, bt, 4, 8).size(), 1u);
    EXPECT_EQ(lib.softmaxCode(b, a, 4, 8).size(), 1u);
    EXPECT_EQ(lib.geluCode(b, a, 4, 8).size(), 1u);
    auto mm = lib.maskedMmCode(b, a, a, 4, 4, 8, 0.5f);
    EXPECT_EQ(mm.size(), 1u);
    EXPECT_EQ(mm[0].op, isa::Opcode::MpuMaskedMmPea);
    auto cv = lib.conv1dCode(b, a, 0x100, bt, 4, 8, 8);
    EXPECT_EQ(cv[0].op, isa::Opcode::MpuConv2dPea);
    EXPECT_TRUE(cv[0].has(isa::FlagMemOperand));
}

TEST_F(DeviceFixture, UsageErrors)
{
    setLogLevel(LogLevel::Silent);
    auto &lib = dev->library();
    EXPECT_THROW(lib.prefill({1}, nullptr), FatalError); // not loaded
    lib.loadModel(llm::ModelConfig::tiny(), 1, nullptr);
    drain();
    EXPECT_THROW(lib.decode(1, nullptr), FatalError); // before prefill
    EXPECT_THROW(lib.prefill({}, nullptr), FatalError);
    EXPECT_THROW(
        lib.loadModel(llm::ModelConfig::tiny(), 1, nullptr),
        FatalError); // double load
    setLogLevel(LogLevel::Info);
}

} // namespace
} // namespace runtime
} // namespace cxlpnm
