/**
 * @file
 * Tensor container and reference linear algebra tests, including
 * parameterized shape sweeps used as golden checks for the accelerator's
 * functional model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "numeric/linalg.hh"
#include "numeric/tensor.hh"
#include "sim/logging.hh"

namespace cxlpnm
{
namespace
{

TEST(TensorTest, ShapeAndIndexing)
{
    Tensor<double> t(3, 4);
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 4u);
    EXPECT_EQ(t.size(), 12u);
    EXPECT_EQ(t.bytes(), 12 * sizeof(double));
    t.at(2, 3) = 7.5;
    EXPECT_DOUBLE_EQ(t(2, 3), 7.5);
    EXPECT_DOUBLE_EQ(t(0, 0), 0.0);
}

TEST(TensorTest, OutOfBoundsPanics)
{
    setLogLevel(LogLevel::Silent);
    Tensor<double> t(2, 2);
    EXPECT_THROW(t.at(2, 0), PanicError);
    EXPECT_THROW(t.at(0, 2), PanicError);
    setLogLevel(LogLevel::Info);
}

TEST(TensorTest, FillGaussianIsDeterministic)
{
    Tensor<float> a(8, 8), b(8, 8);
    a.fillGaussian(123, 0.02);
    b.fillGaussian(123, 0.02);
    EXPECT_EQ(maxAbsDiff(a, b), 0.0);
    Tensor<float> c(8, 8);
    c.fillGaussian(124, 0.02);
    EXPECT_GT(maxAbsDiff(a, c), 0.0);
}

TEST(TensorTest, CastHalfRoundTripsWithinUlp)
{
    Tensor<double> d(4, 4);
    d.fillGaussian(5, 1.0);
    auto h = d.cast<Half>();
    auto back = h.cast<double>();
    EXPECT_LT(maxRelDiff(back, d), 0x1p-10); // half has 11-bit precision
}

TEST(LinalgTest, GemmSmallKnown)
{
    Tensor<double> a(2, 3), b(3, 2), out(2, 2);
    double av[] = {1, 2, 3, 4, 5, 6};
    double bv[] = {7, 8, 9, 10, 11, 12};
    for (int i = 0; i < 6; ++i) {
        a.data()[i] = av[i];
        b.data()[i] = bv[i];
    }
    linalg::gemm(a, b, out);
    EXPECT_DOUBLE_EQ(out(0, 0), 58.0);
    EXPECT_DOUBLE_EQ(out(0, 1), 64.0);
    EXPECT_DOUBLE_EQ(out(1, 0), 139.0);
    EXPECT_DOUBLE_EQ(out(1, 1), 154.0);
}

TEST(LinalgTest, GemmShapeMismatchPanics)
{
    setLogLevel(LogLevel::Silent);
    Tensor<double> a(2, 3), b(2, 2), out(2, 2);
    EXPECT_THROW(linalg::gemm(a, b, out), PanicError);
    setLogLevel(LogLevel::Info);
}

TEST(LinalgTest, GemvEqualsGemmRow)
{
    Tensor<double> x(1, 16), w(16, 8), y(1, 8);
    x.fillGaussian(1, 1.0);
    w.fillGaussian(2, 1.0);
    linalg::gemv(x, w, y);
    Tensor<double> y2(1, 8);
    linalg::gemm(x, w, y2);
    EXPECT_EQ(maxAbsDiff(y, y2), 0.0);
}

TEST(LinalgTest, SoftmaxRowsSumToOne)
{
    Tensor<double> t(5, 13);
    t.fillGaussian(3, 4.0);
    linalg::softmaxRows(t);
    for (std::size_t i = 0; i < t.rows(); ++i) {
        double sum = 0.0;
        for (std::size_t j = 0; j < t.cols(); ++j) {
            EXPECT_GE(t(i, j), 0.0);
            sum += t(i, j);
        }
        EXPECT_NEAR(sum, 1.0, 1e-12);
    }
}

TEST(LinalgTest, SoftmaxIsShiftInvariantAndStable)
{
    Tensor<double> a(1, 4), b(1, 4);
    double vals[] = {1000.0, 1001.0, 1002.0, 1003.0};
    for (int j = 0; j < 4; ++j) {
        a(0, j) = vals[j];
        b(0, j) = vals[j] - 1000.0;
    }
    linalg::softmaxRows(a);
    linalg::softmaxRows(b);
    EXPECT_LT(maxAbsDiff(a, b), 1e-12);
}

TEST(LinalgTest, MaskedSoftmaxZeroesFuture)
{
    Tensor<double> t(3, 5);
    t.fill(1.0);
    linalg::maskedSoftmaxRows(t, 0);
    // Row i may attend to cols 0..i only.
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 5; ++j) {
            if (j > i) {
                EXPECT_DOUBLE_EQ(t(i, j), 0.0);
            } else {
                EXPECT_NEAR(t(i, j), 1.0 / (i + 1), 1e-12);
            }
        }
    }
}

TEST(LinalgTest, MaskedSoftmaxWithOffsetForGenStage)
{
    // Gen stage: one query row attending to L_ctx keys; offset L_ctx-1
    // means nothing is masked.
    Tensor<double> t(1, 7);
    t.fill(0.0);
    linalg::maskedSoftmaxRows(t, 6);
    for (std::size_t j = 0; j < 7; ++j)
        EXPECT_NEAR(t(0, j), 1.0 / 7.0, 1e-12);
}

TEST(LinalgTest, GeluKnownValues)
{
    EXPECT_NEAR(linalg::gelu(0.0), 0.0, 1e-12);
    EXPECT_NEAR(linalg::gelu(1.0), 0.8411919906, 1e-6);
    EXPECT_NEAR(linalg::gelu(-1.0), -0.1588080094, 1e-6);
    // Asymptotics: identity for large x, zero for very negative x.
    EXPECT_NEAR(linalg::gelu(10.0), 10.0, 1e-6);
    EXPECT_NEAR(linalg::gelu(-10.0), 0.0, 1e-6);
}

TEST(LinalgTest, LayerNormNormalises)
{
    Tensor<double> x(2, 64), gamma(1, 64), beta(1, 64), out(2, 64);
    x.fillGaussian(9, 3.0);
    gamma.fill(1.0);
    beta.fill(0.0);
    linalg::layerNormRows(x, gamma, beta, 1e-5, out);
    for (std::size_t i = 0; i < 2; ++i) {
        double mean = 0.0, var = 0.0;
        for (std::size_t j = 0; j < 64; ++j)
            mean += out(i, j);
        mean /= 64;
        for (std::size_t j = 0; j < 64; ++j)
            var += (out(i, j) - mean) * (out(i, j) - mean);
        var /= 64;
        EXPECT_NEAR(mean, 0.0, 1e-10);
        EXPECT_NEAR(var, 1.0, 1e-3);
    }
}

TEST(LinalgTest, LayerNormAppliesGammaBeta)
{
    Tensor<double> x(1, 8), gamma(1, 8), beta(1, 8), out(1, 8);
    x.fillGaussian(11, 1.0);
    gamma.fill(2.0);
    beta.fill(0.5);
    linalg::layerNormRows(x, gamma, beta, 1e-5, out);
    double mean = 0.0;
    for (std::size_t j = 0; j < 8; ++j)
        mean += out(0, j);
    EXPECT_NEAR(mean / 8, 0.5, 1e-9); // beta shifts the mean
}

TEST(LinalgTest, TransposeRoundTrip)
{
    Tensor<double> a(3, 5);
    a.fillGaussian(13, 1.0);
    auto at = linalg::transpose(a);
    EXPECT_EQ(at.rows(), 5u);
    EXPECT_EQ(at.cols(), 3u);
    auto back = linalg::transpose(at);
    EXPECT_EQ(maxAbsDiff(a, back), 0.0);
}

TEST(LinalgTest, ArgmaxFindsPeak)
{
    Tensor<double> t(2, 10);
    t.fill(-1.0);
    t(0, 7) = 3.0;
    t(1, 0) = 0.5;
    EXPECT_EQ(linalg::argmaxRow(t, 0), 7u);
    EXPECT_EQ(linalg::argmaxRow(t, 1), 0u);
}

/** Parameterized GEMM property sweep across shapes. */
class GemmShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{};

TEST_P(GemmShapeTest, AssociativityWithIdentityAndLinearity)
{
    auto [m, k, n] = GetParam();
    Tensor<double> a(m, k), b(k, n), out(m, n);
    a.fillGaussian(m * 31 + k, 1.0);
    b.fillGaussian(k * 17 + n, 1.0);
    linalg::gemm(a, b, out);

    // Identity: a * I == a.
    Tensor<double> eye(k, k), aeye(m, k);
    for (int i = 0; i < k; ++i)
        eye(i, i) = 1.0;
    linalg::gemm(a, eye, aeye);
    EXPECT_LT(maxAbsDiff(aeye, a), 1e-12);

    // Linearity: (2a) * b == 2 (a*b).
    Tensor<double> a2(m, k), out2(m, n);
    for (std::size_t i = 0; i < a.size(); ++i)
        a2.data()[i] = 2.0 * a.data()[i];
    linalg::gemm(a2, b, out2);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_NEAR(out2.data()[i], 2.0 * out.data()[i], 1e-9);

    // Transpose identity: (a b)^T == b^T a^T.
    auto ot = linalg::transpose(out);
    Tensor<double> ot2(n, m);
    linalg::gemm(linalg::transpose(b), linalg::transpose(a), ot2);
    EXPECT_LT(maxAbsDiff(ot, ot2), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 64, 8),
                      std::make_tuple(7, 13, 5), std::make_tuple(16, 16, 16),
                      std::make_tuple(3, 128, 1),
                      std::make_tuple(32, 8, 64)));

} // namespace
} // namespace cxlpnm
