/**
 * @file
 * Tests for the §IX RAS/ECC model and the textual assembler
 * (disassemble -> assemble round trips across generated programs).
 */

#include <gtest/gtest.h>

#include "dram/ecc.hh"
#include "isa/assembler.hh"
#include "sim/logging.hh"

namespace cxlpnm
{
namespace
{

// ---- ECC ----

TEST(EccTest, InlineEccCostsCapacityAndBandwidth)
{
    auto spec = dram::DramTechSpec::lpddr5x();
    dram::EccModel ecc(spec, dram::EccConfig{});

    // 8/9 code rate: ~56.9 GB of the 512 GB module holds parity.
    EXPECT_NEAR(ecc.capacityOverhead(), 1.0 / 9.0, 1e-9);
    EXPECT_NEAR(ecc.usableCapacityBytes() / GB, 512.0 * 8 / 9, 1.0);

    const double sustained = 0.913e12;
    const double eff = ecc.effectiveBandwidth(sustained);
    EXPECT_LT(eff, sustained * 8.0 / 9.0 + 1.0);
    EXPECT_GT(eff, sustained * 8.0 / 9.0 * 0.99);
}

TEST(EccTest, ProtectionOffIsFree)
{
    auto spec = dram::DramTechSpec::lpddr5x();
    dram::EccConfig cfg;
    cfg.onDieEcc = cfg.inlineEcc = cfg.linkEcc = cfg.scrubbing = false;
    dram::EccModel ecc(spec, cfg);
    EXPECT_DOUBLE_EQ(ecc.capacityOverhead(), 0.0);
    EXPECT_DOUBLE_EQ(ecc.effectiveBandwidth(1e12), 1e12);
    // ...but the raw error rate is catastrophic at datacenter scale.
    EXPECT_GT(ecc.uncorrectableErrorsPerDay(0.9e12), 1.0);
}

TEST(EccTest, FullProtectionReachesDatacenterScale)
{
    auto spec = dram::DramTechSpec::lpddr5x();
    dram::EccModel ecc(spec, dram::EccConfig{});
    // Streaming ~0.9 TB/s all day: far less than one uncorrectable
    // error per day (the §IX "enough ... for datacenter scale" claim).
    EXPECT_LT(ecc.uncorrectableErrorsPerDay(0.9e12), 1e-3);
}

TEST(EccTest, EachStageImprovesResidualRate)
{
    auto spec = dram::DramTechSpec::lpddr5x();
    dram::EccConfig none;
    none.onDieEcc = none.inlineEcc = none.linkEcc = false;
    dram::EccConfig ondie = none;
    ondie.onDieEcc = true;
    dram::EccConfig both = ondie;
    both.inlineEcc = true;

    const double p_none =
        dram::EccModel(spec, none).uncorrectableBitErrorRate();
    const double p_ondie =
        dram::EccModel(spec, ondie).uncorrectableBitErrorRate();
    const double p_both =
        dram::EccModel(spec, both).uncorrectableBitErrorRate();
    EXPECT_LT(p_ondie, p_none);
    EXPECT_LT(p_both, p_ondie);

    dram::EccConfig link = none;
    const double l_raw =
        dram::EccModel(spec, link).residualLinkErrorRate();
    link.linkEcc = true;
    const double l_ecc =
        dram::EccModel(spec, link).residualLinkErrorRate();
    EXPECT_LT(l_ecc, l_raw);
}

// ---- Assembler ----

TEST(AssemblerTest, SingleLineRoundTrip)
{
    isa::Instruction i;
    i.op = isa::Opcode::MpuMmRedumaxPea;
    i.flags = isa::FlagTransB | isa::FlagMultiHead |
        isa::FlagMemOperand;
    i.dst = 4;
    i.src0 = 2;
    i.aux = 9;
    i.m = 40;
    i.n = 512;
    i.k = 128;
    i.scale = 0.0883883f;
    i.memAddr = 0xabc000;

    const auto parsed = isa::assembleLine(i.toString());
    EXPECT_EQ(parsed, i);
}

TEST(AssemblerTest, SliceWithPackedOffsetsRoundTrips)
{
    isa::Instruction i;
    i.op = isa::Opcode::MpuSlice;
    i.dst = 1;
    i.src0 = 2;
    i.m = 64;
    i.n = 128;
    i.k = 3;              // source row offset
    i.imm = (256u << 16) | 128u;
    const auto parsed = isa::assembleLine(i.toString());
    EXPECT_EQ(parsed, i);
}

TEST(AssemblerTest, ProgramRoundTripWithCommentsAndNumbers)
{
    isa::Program p;
    isa::Instruction a;
    a.op = isa::Opcode::DmaLoad;
    a.dst = 0;
    a.m = 1;
    a.n = 64;
    a.memAddr = 0x1000;
    p.append(a);
    isa::Instruction b;
    b.op = isa::Opcode::VpuGelu;
    b.dst = b.src0 = 0;
    b.m = 1;
    b.n = 64;
    p.append(b);

    // toString emits "N: ..." lines; add comments and blanks.
    const std::string text =
        "# acceleration code\n\n" + p.toString() + "\n";
    const auto q = isa::assemble(text);
    ASSERT_EQ(q.size(), p.size());
    for (std::size_t n = 0; n < p.size(); ++n)
        EXPECT_EQ(q[n], p[n]);
}

TEST(AssemblerTest, DisassembleMatchesToString)
{
    isa::Program p;
    isa::Instruction i;
    i.op = isa::Opcode::Sync;
    p.append(i);
    EXPECT_EQ(isa::disassemble(p), i.toString() + "\n");
}

TEST(AssemblerTest, RejectsGarbage)
{
    setLogLevel(LogLevel::Silent);
    EXPECT_THROW(isa::assembleLine("FOO dst=r0"), FatalError);
    EXPECT_THROW(isa::assembleLine("MPU_MV dst=x3 [m=1 n=2 k=0]"),
                 FatalError);
    EXPECT_THROW(isa::assembleLine("MPU_MV dst=r1 src0=r0 src1=-"),
                 FatalError); // missing dims
    EXPECT_THROW(isa::assembleLine("MPU_MV dst=r1 wibble [m=1 n=1 k=0]"),
                 FatalError);
    setLogLevel(LogLevel::Info);
}

} // namespace
} // namespace cxlpnm
