/**
 * @file
 * Edge-case and error-path coverage across modules: buffer bounds,
 * malformed inputs, lifecycle corner cases, and stat bookkeeping that
 * the main suites do not reach.
 */

#include <gtest/gtest.h>

#include "accel/functional_memory.hh"
#include "core/inference_engine.hh"
#include "core/platform.hh"
#include "cxl/interleave.hh"
#include "dram/module.hh"
#include "isa/isa.hh"
#include "llm/workload.hh"
#include "numeric/linalg.hh"
#include "sim/logging.hh"

namespace cxlpnm
{
namespace
{

TEST(FunctionalMemoryTest, BoundsAreEnforced)
{
    setLogLevel(LogLevel::Silent);
    accel::FunctionalMemory mem(1024);
    std::uint8_t buf[16] = {};
    EXPECT_NO_THROW(mem.write(1008, buf, 16));
    EXPECT_THROW(mem.write(1009, buf, 16), FatalError);
    EXPECT_THROW(mem.read(1020, buf, 8), FatalError);
    EXPECT_THROW(mem.readTensor(1000, 4, 4), FatalError);
    setLogLevel(LogLevel::Info);
}

TEST(FunctionalMemoryTest, TensorRoundTripPreservesBits)
{
    accel::FunctionalMemory mem(4096);
    HalfTensor t(3, 7);
    t.fillGaussian(1, 2.0);
    t.at(0, 0) = Half::quietNan();
    t.at(1, 1) = -Half::infinity();
    t.at(2, 2) = Half::minSubnormal();
    mem.writeTensor(100, t);
    HalfTensor back = mem.readTensor(100, 3, 7);
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(back.data()[i].bits(), t.data()[i].bits());
}

TEST(ProgramDecodeTest, StopsAtEmbeddedHalt)
{
    isa::Program p;
    isa::Instruction a;
    a.op = isa::Opcode::Sync;
    p.append(a);
    auto bytes = p.encode(); // Sync + Halt terminator
    // Append garbage after the halt: decode must not see it.
    isa::Instruction junk;
    junk.op = isa::Opcode::VpuGelu;
    junk.m = junk.n = 4;
    auto extra = junk.encode();
    bytes.insert(bytes.end(), extra.begin(), extra.end());
    const auto q = isa::Program::decode(bytes);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q[0].op, isa::Opcode::Sync);
}

TEST(InterleaveTest, UnmapRejectsBadWay)
{
    setLogLevel(LogLevel::Silent);
    cxl::AddressInterleaver il(4, 256);
    cxl::InterleaveTarget t;
    t.way = 4;
    EXPECT_THROW(il.unmap(t), PanicError);
    setLogLevel(LogLevel::Info);
}

TEST(InterleaveTest, DegenerateConfigsRejected)
{
    setLogLevel(LogLevel::Silent);
    EXPECT_THROW(cxl::AddressInterleaver(0, 256), FatalError);
    EXPECT_THROW(cxl::AddressInterleaver(4, 0), FatalError);
    setLogLevel(LogLevel::Info);
}

TEST(ModuleTest, WritesCountTowardTotals)
{
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    dram::MultiChannelMemory mem(eq, &root, "mem",
                                 dram::DramTechSpec::lpddr5x());
    dram::MemoryRequest w;
    w.addr = 0;
    w.bytes = 1 << 16;
    w.isRead = false;
    mem.access(std::move(w));
    eq.run();
    EXPECT_EQ(mem.totalBytes(), 1u << 16);
    EXPECT_EQ(mem.channel(0).bytesRead(), 0u);
    EXPECT_GT(mem.channel(0).bytesWritten(), 0u);
}

TEST(ModuleTest, BadChannelGroupingIsFatal)
{
    setLogLevel(LogLevel::Silent);
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    // 64 channels are not divisible by 7.
    EXPECT_THROW(dram::MultiChannelMemory(eq, &root, "mem",
                                          dram::DramTechSpec::lpddr5x(),
                                          256, 7),
                 FatalError);
    setLogLevel(LogLevel::Info);
}

TEST(DriverTest, UnmappedRegisterPanics)
{
    setLogLevel(LogLevel::Silent);
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    core::PnmPlatformConfig cfg;
    core::PnmDevice dev(eq, &root, "dev", cfg);
    bool threw = false;
    dev.ioPort().writeRegister(0xdead0, 1, nullptr);
    try {
        eq.run();
    } catch (const PanicError &) {
        threw = true;
    }
    EXPECT_TRUE(threw);
    setLogLevel(LogLevel::Info);
}

TEST(DriverTest, ExecuteWithoutProgramIsTypedError)
{
    // execute() before loadProgram() must fail synchronously with a
    // typed DeviceError, not a deferred doorbell panic.
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    core::PnmPlatformConfig cfg;
    core::PnmDevice dev(eq, &root, "dev", cfg);
    try {
        dev.driver().execute(nullptr);
        FAIL() << "execute() without a program did not throw";
    } catch (const runtime::DeviceError &e) {
        EXPECT_EQ(e.code(), runtime::DeviceError::Code::NoProgram);
    }
    // The error left no pending completion: a later, correct sequence
    // still works.
    eq.run();
    EXPECT_EQ(dev.driver().launches(), 0u);
}

TEST(LibraryTest, ShardRequiresTimingOnlyDevice)
{
    setLogLevel(LogLevel::Silent);
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    core::PnmPlatformConfig cfg;
    cfg.functionalBytes = 8 * MiB; // functional -> sharding forbidden
    core::PnmDevice dev(eq, &root, "dev", cfg);
    EXPECT_THROW(dev.library().setTensorShard(2), FatalError);
    setLogLevel(LogLevel::Info);
}

TEST(LibraryTest, ContextOverflowIsFatal)
{
    setLogLevel(LogLevel::Silent);
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    core::PnmPlatformConfig cfg;
    cfg.functionalBytes = 24 * MiB;
    core::PnmDevice dev(eq, &root, "dev", cfg);

    auto model = llm::ModelConfig::tiny();
    model.maxPositions = 4;
    dev.library().loadModel(model, 1, nullptr);
    eq.run();
    std::uint32_t tok = 0;
    dev.library().prefill({1, 2, 3}, [&](std::uint32_t t) { tok = t; });
    eq.run();
    dev.library().decode(tok, [&](std::uint32_t t) { tok = t; });
    eq.run(); // context now 4 == maxPositions
    EXPECT_THROW(dev.library().decode(tok, nullptr), FatalError);
    setLogLevel(LogLevel::Info);
}

TEST(HalfTest, NegationFlipsOnlySignBit)
{
    for (std::uint32_t b : {0x0000u, 0x3c00u, 0x7c00u, 0x0001u}) {
        Half h = Half::fromBits(static_cast<std::uint16_t>(b));
        EXPECT_EQ((-h).bits(), b ^ 0x8000u);
    }
}

TEST(LinalgTest, GemmBiasRejectsBadBias)
{
    setLogLevel(LogLevel::Silent);
    Tensor<double> a(2, 3), b(3, 2), bias(2, 2), out(2, 2);
    EXPECT_THROW(linalg::gemmBias(a, b, bias, out), PanicError);
    setLogLevel(LogLevel::Info);
}

TEST(StatsTest, AverageDumpIncludesMinMax)
{
    stats::StatGroup root(nullptr, "root");
    stats::Average a(&root, "lat", "latency");
    a.sample(3.0);
    std::ostringstream os;
    root.dumpStats(os);
    EXPECT_NE(os.str().find("root.lat::min 3"), std::string::npos);
    EXPECT_NE(os.str().find("root.lat::max 3"), std::string::npos);
}

TEST(EventQueueTest, UnfiredOneShotsFreedAtDestruction)
{
    // Covered by ASAN-free runs; structurally: destroying a queue with
    // pending one-shots must not crash or double-free.
    auto *eq = new EventQueue();
    for (int i = 0; i < 100; ++i)
        eq->scheduleOneShot("pending", 1000 + i, [] {});
    delete eq; // reclaims the one-shots
    SUCCEED();
}

TEST(InferenceRequestTest, ValidationRejectsImpossibleRequests)
{
    const auto m = llm::ModelConfig::tiny(); // maxPositions = 64

    llm::InferenceRequest ok;
    ok.inputTokens = 32;
    ok.outputTokens = 32; // exactly fills the positional range
    EXPECT_TRUE(ok.fits(m));
    EXPECT_NO_THROW(ok.validate(m));
    EXPECT_EQ(ok.totalTokens(), 64u);

    setLogLevel(LogLevel::Silent);

    llm::InferenceRequest no_output = ok;
    no_output.outputTokens = 0;
    EXPECT_FALSE(no_output.fits(m));
    EXPECT_THROW(no_output.validate(m), FatalError);

    llm::InferenceRequest no_input = ok;
    no_input.inputTokens = 0;
    EXPECT_FALSE(no_input.fits(m));
    EXPECT_THROW(no_input.validate(m), FatalError);

    llm::InferenceRequest too_long = ok;
    too_long.outputTokens = 33; // 65 > 64 positions
    EXPECT_FALSE(too_long.fits(m));
    EXPECT_THROW(too_long.validate(m), FatalError);

    // The engines reject before touching any device state.
    EXPECT_THROW(core::runPnmSingleDevice(m, too_long,
                                          core::PnmPlatformConfig{}),
                 FatalError);
    setLogLevel(LogLevel::Info);
}

} // namespace
} // namespace cxlpnm
