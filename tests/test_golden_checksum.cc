/**
 * @file
 * Bit-exactness regression guard: a fixed OPT-125M-style decoder run on
 * the functional device must produce byte-identical FP16 state across
 * refactors of the numeric hot paths (FP16 conversion LUTs, blocked
 * kernels, operand packing). The golden hash below was recorded from the
 * seed implementation; any change to it means the simulated hardware no
 * longer computes the same bits.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/platform.hh"
#include "llm/model_config.hh"
#include "sim/logging.hh"

namespace cxlpnm
{
namespace
{

/** FNV-1a over a little stream of 16-bit words. */
class Fnv1a
{
  public:
    void
    add16(std::uint16_t v)
    {
        addByte(static_cast<std::uint8_t>(v & 0xff));
        addByte(static_cast<std::uint8_t>(v >> 8));
    }

    void
    add32(std::uint32_t v)
    {
        add16(static_cast<std::uint16_t>(v & 0xffff));
        add16(static_cast<std::uint16_t>(v >> 16));
    }

    std::uint64_t value() const { return h_; }

  private:
    void
    addByte(std::uint8_t b)
    {
        h_ ^= b;
        h_ *= 0x100000001b3ull;
    }

    std::uint64_t h_ = 0xcbf29ce484222325ull;
};

/** A small decoder with the OPT-125M shape family (scaled to test size). */
llm::ModelConfig
opt125mStyle()
{
    llm::ModelConfig c;
    c.name = "opt-125m-style";
    c.numLayers = 4;
    c.dModel = 128;
    c.numHeads = 8;
    c.ffnDim = 512;
    c.vocabSize = 512;
    c.maxPositions = 128;
    return c;
}

TEST(GoldenChecksum, FixedDecoderRunIsBitStable)
{
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    core::PnmPlatformConfig cfg;
    cfg.functionalBytes = 24ull * MiB;
    core::PnmDevice dev(eq, &root, "dev", cfg);

    const auto model = opt125mStyle();
    bool loaded = false;
    dev.library().loadModel(model, /*seed=*/7, [&] { loaded = true; });
    eq.run();
    ASSERT_TRUE(loaded);

    const std::vector<std::uint32_t> prompt{5, 17, 42};
    constexpr std::uint32_t n_gen = 8;
    std::vector<std::uint32_t> out;
    dev.library().generate(prompt, n_gen,
                           [&](std::vector<std::uint32_t> t) {
        out = std::move(t);
    });
    eq.run();
    ASSERT_EQ(out.size(), n_gen);

    Fnv1a h;
    for (std::uint32_t t : out)
        h.add32(t);

    // Every populated KV-cache row of every layer, bit for bit, plus the
    // final logits. Any numeric deviation anywhere in the decoder
    // (embeddings, LN, QKV, attention, FFN) perturbs these.
    auto *fmem = dev.functionalMemory();
    const std::uint32_t ctx =
        static_cast<std::uint32_t>(prompt.size()) + n_gen - 1;
    const auto &wm = dev.library().weightMap();
    for (const auto &layer : wm.layers) {
        HalfTensor k = fmem->readTensor(layer.kCache, ctx, model.dModel);
        HalfTensor v = fmem->readTensor(layer.vCache, ctx, model.dModel);
        for (std::size_t i = 0; i < k.size(); ++i)
            h.add16(k.data()[i].bits());
        for (std::size_t i = 0; i < v.size(); ++i)
            h.add16(v.data()[i].bits());
    }
    HalfTensor logits =
        fmem->readTensor(wm.outputBuffer, 1, model.vocabSize);
    for (std::size_t i = 0; i < logits.size(); ++i)
        h.add16(logits.data()[i].bits());

    // Recorded from the seed implementation (pre-LUT, pre-blocking).
    // If this fails, the functional simulator's FP16 results are no
    // longer bit-identical to the original datapath definition.
    EXPECT_EQ(h.value(), 0x305df77b2121831eull)
        << "golden hash now 0x" << std::hex << h.value();
}

} // namespace
} // namespace cxlpnm
