/**
 * @file
 * Tracing tests: Tracer determinism and Chrome-trace output format,
 * write-time per-track ordering, the null-tracer overhead contract
 * (identical timing with tracing on or off), and byte-determinism of
 * full traced runs at both the device and the serving layer.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/inference_engine.hh"
#include "serve/cost_model.hh"
#include "serve/dispatcher.hh"
#include "serve/request_generator.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace cxlpnm
{
namespace
{

// ---- Tracer unit behaviour ----

TEST(TracerTest, TrackInterningIsStableAndOneBased)
{
    trace::Tracer t;
    const auto a = t.track("alpha", "cat");
    const auto b = t.track("beta");
    EXPECT_EQ(a, 1u);
    EXPECT_EQ(b, 2u);
    EXPECT_EQ(t.track("alpha"), a); // idempotent
    EXPECT_EQ(t.trackCount(), 2u);
    EXPECT_NE(a, trace::InvalidTrack);
}

TEST(TracerTest, EmitsChromeTraceJsonWithMicrosecondTimestamps)
{
    trace::Tracer t;
    const auto tr = t.track("unit", "test");
    // 2.5 us and 1 us duration, expressed in ticks (picoseconds).
    t.complete(tr, "span", 2 * tickPerUs + tickPerUs / 2,
               3 * tickPerUs + tickPerUs / 2);
    t.instant(tr, "mark", 7 * tickPerUs);
    t.counter(tr, 8 * tickPerUs, 0.25);

    const std::string js = t.json();
    EXPECT_NE(js.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
    EXPECT_NE(js.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(js.find("\"ph\":\"M\""), std::string::npos); // metadata
    EXPECT_NE(js.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(js.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(js.find("\"ph\":\"C\""), std::string::npos);
    // Integer-math microsecond rendering, six fractional digits.
    EXPECT_NE(js.find("\"ts\":2.500000"), std::string::npos);
    EXPECT_NE(js.find("\"dur\":1.000000"), std::string::npos);
    EXPECT_NE(js.find("\"value\":0.25"), std::string::npos);
    EXPECT_NE(js.find("\"cat\":\"test\""), std::string::npos);
    EXPECT_EQ(t.eventCount(), 3u);
}

TEST(TracerTest, EscapesJsonSpecialsInNames)
{
    trace::Tracer t;
    const auto tr = t.track("quo\"te\\track");
    t.instant(tr, "line\nbreak\ttab", 0);
    const std::string js = t.json();
    EXPECT_NE(js.find("quo\\\"te\\\\track"), std::string::npos);
    EXPECT_NE(js.find("line\\nbreak\\ttab"), std::string::npos);
}

TEST(TracerTest, IdenticalSequencesGiveIdenticalBytes)
{
    auto build = [](Tick skew) {
        trace::Tracer t;
        const auto a = t.track("a", "x");
        const auto b = t.track("b");
        for (Tick i = 0; i < 50; ++i) {
            t.complete(a, "work", i * 100 + skew, i * 100 + 60 + skew);
            t.instant(b, "tick", i * 100 + skew);
            t.counter(b, i * 100 + skew, static_cast<double>(i) / 3.0);
        }
        return t.json();
    };
    EXPECT_EQ(build(0), build(0));
    EXPECT_NE(build(0), build(1));
}

TEST(TracerTest, WriteOrdersRecordsByTimestampPerTrack)
{
    trace::Tracer t;
    const auto tr = t.track("ooo");
    // Emitted out of order: the writer must sort by timestamp.
    t.instant(tr, "late_mark", 9 * tickPerUs);
    t.complete(tr, "early_span", 1 * tickPerUs, 2 * tickPerUs);
    t.instant(tr, "middle_mark", 5 * tickPerUs);
    const std::string js = t.json();
    const auto early = js.find("early_span");
    const auto middle = js.find("middle_mark");
    const auto late = js.find("late_mark");
    ASSERT_NE(early, std::string::npos);
    ASSERT_NE(middle, std::string::npos);
    ASSERT_NE(late, std::string::npos);
    EXPECT_LT(early, middle);
    EXPECT_LT(middle, late);
}

TEST(TracerTest, RejectsInvalidSpansAndTracks)
{
    setLogLevel(LogLevel::Silent);
    trace::Tracer t;
    const auto tr = t.track("x");
    EXPECT_THROW(t.complete(tr, "neg", 10, 5), PanicError);
    EXPECT_THROW(t.instant(trace::InvalidTrack, "bad", 0), PanicError);
    setLogLevel(LogLevel::Info);
}

TEST(TracerTest, SummaryIsDeterministicAndNamesTracks)
{
    trace::Tracer t;
    const auto a = t.track("busy.track");
    t.complete(a, "s0", 0, 80);
    t.complete(a, "s1", 100, 120);
    std::ostringstream s1, s2;
    t.summary(s1, 2);
    t.summary(s2, 2);
    EXPECT_EQ(s1.str(), s2.str());
    EXPECT_NE(s1.str().find("busy.track"), std::string::npos);
    EXPECT_NE(s1.str().find("s0"), std::string::npos);
}

// ---- traced device runs ----

core::PnmPlatformConfig
tinyPlatform()
{
    core::PnmPlatformConfig cfg;
    cfg.functionalBytes = 24ull * MiB;
    return cfg;
}

TEST(DeviceTraceTest, TracedRunIsByteDeterministic)
{
    auto run = [] {
        trace::Tracer t;
        llm::InferenceRequest req;
        req.inputTokens = 8;
        req.outputTokens = 3;
        core::runPnmSingleDevice(llm::ModelConfig::tiny(), req,
                                 tinyPlatform(), 1, &t);
        return t.json();
    };
    const std::string a = run();
    EXPECT_EQ(a, run());
    // Every layer contributed: request, driver, accel pipeline,
    // channels, link, arbiter.
    EXPECT_NE(a.find("host.request"), std::string::npos);
    EXPECT_NE(a.find("pnm0.driver"), std::string::npos);
    EXPECT_NE(a.find("pnm0.accel.mpu"), std::string::npos);
    EXPECT_NE(a.find("pnm0.accel.dma"), std::string::npos);
    EXPECT_NE(a.find("pnm0.mem.ch0"), std::string::npos);
    EXPECT_NE(a.find("pnm0.link.down"), std::string::npos);
    EXPECT_NE(a.find("pnm0.arbiter"), std::string::npos);
}

TEST(DeviceTraceTest, TracingDoesNotPerturbTiming)
{
    llm::InferenceRequest req;
    req.inputTokens = 8;
    req.outputTokens = 3;
    const auto model = llm::ModelConfig::tiny();

    trace::Tracer t;
    const auto plain =
        core::runPnmSingleDevice(model, req, tinyPlatform());
    const auto traced =
        core::runPnmSingleDevice(model, req, tinyPlatform(), 1, &t);

    EXPECT_GT(t.eventCount(), 0u);
    // Bit-identical results: the null-tracer gate must be the only
    // difference between the two runs.
    EXPECT_EQ(plain.sumSeconds, traced.sumSeconds);
    EXPECT_EQ(plain.totalSeconds, traced.totalSeconds);
    EXPECT_EQ(plain.energyJoules, traced.energyJoules);
    ASSERT_EQ(plain.genSeconds.size(), traced.genSeconds.size());
    for (std::size_t i = 0; i < plain.genSeconds.size(); ++i)
        EXPECT_EQ(plain.genSeconds[i], traced.genSeconds[i]);
}

TEST(DeviceTraceTest, EventDispatchInstantsAreOptIn)
{
    llm::InferenceRequest req;
    req.inputTokens = 8;
    req.outputTokens = 2;
    const auto model = llm::ModelConfig::tiny();

    trace::Tracer off;
    core::runPnmSingleDevice(model, req, tinyPlatform(), 1, &off);
    trace::Tracer on;
    on.setEventDispatch(true);
    core::runPnmSingleDevice(model, req, tinyPlatform(), 1, &on);

    EXPECT_GT(on.eventCount(), off.eventCount());
    EXPECT_NE(on.json().find("sim.events"), std::string::npos);
}

// ---- traced serving runs ----

serve::BatchCostModel
syntheticCost()
{
    serve::BatchCostModel c;
    c.sumCurve.addSample(1, 1.0e-3);
    c.sumCurve.addSample(1024, 10.0e-3);
    c.genWeightSeconds = 10.0e-3;
    c.genKvPerTokenSeconds = 2.0e-6;
    c.perTokenComputeSeconds = 0.2e-3;
    return c;
}

std::string
tracedServeRun(std::uint64_t seed)
{
    serve::ServeMetrics metrics(nullptr, "serve");
    core::ParallelismPlan plan;
    plan.modelParallel = 1;
    plan.dataParallel = 2;
    serve::ApplianceDispatcher app(llm::ModelConfig::tiny(),
                                   syntheticCost(), plan, 1ull << 30,
                                   serve::SchedulerConfig{}, metrics);
    trace::Tracer tracer;
    app.attachTracer(&tracer, "app");

    serve::TraceConfig trace;
    trace.requestsPerSec = 40.0;
    trace.numRequests = 24;
    trace.input = serve::LengthDistribution::uniform(8, 32);
    trace.output = serve::LengthDistribution::fixed(6);
    trace.seed = seed;
    serve::RequestGenerator gen(trace);
    while (!gen.exhausted())
        app.submit(gen.next());
    app.drain();
    return tracer.json();
}

TEST(ServeTraceTest, ApplianceTraceIsByteDeterministic)
{
    const std::string a = tracedServeRun(5);
    EXPECT_EQ(a, tracedServeRun(5));
    EXPECT_NE(a, tracedServeRun(6));
    // Lifecycle instants, iteration spans and counters all present.
    EXPECT_NE(a.find("route#"), std::string::npos);
    EXPECT_NE(a.find("arrive#"), std::string::npos);
    EXPECT_NE(a.find("admit#"), std::string::npos);
    EXPECT_NE(a.find("first_token#"), std::string::npos);
    EXPECT_NE(a.find("retire#"), std::string::npos);
    EXPECT_NE(a.find("\"iter\""), std::string::npos);
    EXPECT_NE(a.find("app.group0.kv_utilization"), std::string::npos);
    EXPECT_NE(a.find("app.group1.queue_depth"), std::string::npos);
}

TEST(ServeTraceTest, TracingDoesNotPerturbServingMetrics)
{
    auto run = [](bool traced) {
        serve::ServeMetrics metrics(nullptr, "serve");
        serve::BatchScheduler s(llm::ModelConfig::tiny(),
                                syntheticCost(), 1ull << 30,
                                serve::SchedulerConfig{}, metrics);
        trace::Tracer tracer;
        if (traced)
            s.attachTracer(&tracer, "grp");
        serve::TraceConfig trace;
        trace.requestsPerSec = 25.0;
        trace.numRequests = 16;
        trace.output = serve::LengthDistribution::fixed(4);
        trace.seed = 3;
        serve::RequestGenerator gen(trace);
        while (!gen.exhausted())
            s.submit(gen.next());
        s.drain();
        return metrics.report(s.clockSeconds());
    };
    const auto plain = run(false);
    const auto traced = run(true);
    EXPECT_EQ(plain.completed, traced.completed);
    EXPECT_EQ(plain.makespanSeconds, traced.makespanSeconds);
    EXPECT_EQ(plain.tokenLatencyP99, traced.tokenLatencyP99);
    EXPECT_EQ(plain.meanBatchSize, traced.meanBatchSize);
}

} // namespace
} // namespace cxlpnm
