/**
 * @file
 * Chunked-prefill + disaggregated prefill/decode tests: the off-mode
 * bit-identity guard (chunk_tokens=0 / disagg off change nothing),
 * chunked prefill conservation, end-to-end KV handover over the CXL
 * link (every multi-token request prefills on a prefill group and
 * decodes on a decode group, with the transferred bytes priced through
 * the link budget), prefix-affinity adversarial routing (a hot prefix
 * on a decode group must not strand an arrival), and the v3 snapshot
 * format: mid-chunk requests and in-flight handovers round-trip and
 * resume byte-identically, malformed disagg sections throw typed
 * SnapshotError, and v2/v1 renders still restore with defaults.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "serve/request_generator.hh"
#include "serve/snapshot.hh"
#include "sim/logging.hh"

namespace cxlpnm
{
namespace serve
{
namespace
{

/** Hand-built cost model: handover logic needs no event sim. */
BatchCostModel
syntheticCost()
{
    BatchCostModel c;
    c.sumCurve.addSample(1, 1.0e-3);
    c.sumCurve.addSample(1024, 10.0e-3);
    c.genWeightSeconds = 10.0e-3;
    c.genKvPerTokenSeconds = 2.0e-6;
    c.perTokenComputeSeconds = 0.2e-3;
    return c;
}

std::string
statsDump(const ServeMetrics &m)
{
    std::ostringstream os;
    m.dumpStats(os);
    return os.str();
}

/** n spaced arrivals, fixed shape, hand-built so reference and split
 *  runs share the exact submission schedule. */
std::vector<ServeRequest>
spacedRequests(std::size_t n, std::uint64_t in, std::uint64_t out,
               double gap)
{
    std::vector<ServeRequest> reqs;
    for (std::size_t i = 0; i < n; ++i) {
        ServeRequest r;
        r.id = i;
        r.arrivalSeconds = gap * static_cast<double>(i);
        r.inputTokens = in;
        r.outputTokens = out;
        reqs.push_back(r);
    }
    return reqs;
}

ServingSnapshot
dispatcherSnapshot(const ApplianceDispatcher &d, const ServeMetrics &m)
{
    ServingSnapshot s;
    s.groups = d.state();
    s.metrics = m.state();
    if (d.disaggConfigured()) {
        s.hasDisagg = true;
        s.disagg = d.disaggState();
    }
    return s;
}

// ---- off-mode bit-identity ----

TEST(DisaggOffModeTest, DisabledConfigureChangesNothing)
{
    // configureDisagg with enabled=false (and chunkTokens left 0) must
    // leave every observable byte - final state text and stats dump -
    // identical to a dispatcher that never heard of disaggregation.
    const auto model = llm::ModelConfig::tiny();
    const auto cost = syntheticCost();
    core::ParallelismPlan plan;
    plan.dataParallel = 2;
    const auto reqs = spacedRequests(10, 16, 6, 0.02);

    auto run = [&](bool call_configure, std::string *text) {
        ServeMetrics m(nullptr, "serve");
        ApplianceDispatcher d(model, cost, plan, 1ull << 22, {}, m);
        if (call_configure) {
            ApplianceDispatcher::DisaggConfig dc; // enabled = false
            d.configureDisagg(dc);
            EXPECT_FALSE(d.disaggConfigured());
        }
        for (const auto &r : reqs)
            d.submit(r);
        d.drain();
        *text = snapshotToText(dispatcherSnapshot(d, m));
        return statsDump(m);
    };

    std::string text_off, text_cfg;
    const std::string stats_off = run(false, &text_off);
    const std::string stats_cfg = run(true, &text_cfg);
    EXPECT_EQ(stats_off, stats_cfg);
    EXPECT_EQ(text_off, text_cfg);
}

// ---- chunked prefill conservation ----

TEST(ChunkedPrefillTest, ChunkingPreservesWorkAndCountsChunks)
{
    // An 80-token prompt at a 32-token budget takes exactly
    // ceil(80/32) = 3 chunk iterations; chunking must change when
    // tokens land, never whether they land.
    const auto model = llm::ModelConfig::opt13b();
    const auto cost = syntheticCost();
    const auto reqs = spacedRequests(6, 80, 4, 0.01);

    auto run = [&](std::uint64_t chunk) {
        SchedulerConfig cfg;
        cfg.chunkTokens = chunk;
        ServeMetrics m(nullptr, "serve");
        BatchScheduler s(model, cost, 64ull << 30, cfg, m);
        for (const auto &r : reqs)
            s.submit(r);
        s.drain();
        return m.report(s.clockSeconds());
    };

    const auto mono = run(0);
    const auto chunked = run(32);
    EXPECT_EQ(mono.completed, 6u);
    EXPECT_EQ(chunked.completed, 6u);
    EXPECT_EQ(chunked.tokensGenerated, mono.tokensGenerated);
    EXPECT_EQ(mono.chunkedPrefills, 0u);
    EXPECT_EQ(mono.chunkIterations, 0u);
    EXPECT_EQ(chunked.chunkedPrefills, 6u);
    EXPECT_EQ(chunked.chunkIterations, 18u);
}

// ---- disaggregated prefill/decode end to end ----

TEST(DisaggDispatcherTest, EveryRequestHandsOverAndDecodesElsewhere)
{
    // 1 prefill + 1 decode group, no chunking: every multi-token
    // request must prefill on group 0, cross the link once, and finish
    // on group 1 - with the transferred KV bytes priced through the
    // link budget.
    const auto model = llm::ModelConfig::tiny();
    const auto cost = syntheticCost();
    core::ParallelismPlan plan;
    plan.dataParallel = 2;
    const auto reqs = spacedRequests(12, 16, 8, 0.03);

    ServeMetrics metrics(nullptr, "serve");
    ApplianceDispatcher disp(model, cost, plan, 1ull << 22, {},
                             metrics);
    ApplianceDispatcher::DisaggConfig dc;
    dc.enabled = true;
    dc.prefillGroups = 1;
    disp.configureDisagg(dc);
    EXPECT_TRUE(disp.disaggConfigured());

    for (const auto &r : reqs)
        disp.submit(r);
    disp.drain();

    // The prefill group finishes nothing; the decode group everything.
    EXPECT_TRUE(disp.group(0).finished().empty());
    ASSERT_EQ(disp.group(1).finished().size(), 12u);
    for (const auto &r : disp.group(1).finished()) {
        // The continuation contract: prefill complete, first token
        // stamped on the prefill side, strictly before retirement.
        EXPECT_EQ(r.prefilledTokens, r.inputTokens);
        EXPECT_GE(r.firstTokenSeconds, 0.0);
        EXPECT_GT(r.finishSeconds, r.firstTokenSeconds);
    }

    const auto rep = metrics.report(disp.clockSeconds());
    EXPECT_EQ(rep.completed, 12u);
    EXPECT_EQ(rep.handovers, 12u);
    // Each handover moves KV for the prompt plus the first token.
    EXPECT_EQ(rep.handoverBytes, 12 * model.kvCacheBytes(16 + 1));
    EXPECT_GT(rep.handoverLinkSeconds, 0.0);
    const cxl::TransferAccount &t = disp.handoverTraffic();
    EXPECT_EQ(t.downBytes, rep.handoverBytes);
    EXPECT_EQ(t.downTransfers, 12u);
    EXPECT_EQ(t.upBytes, 0u);
}

TEST(DisaggDispatcherTest, PrefixAffinityNeverStrandsArrivals)
{
    // Adversarial: prefix caching and disaggregation both on. Once a
    // continuation seeds a hot prefix on a DECODE group, monolithic
    // affinity routing would steer the next group mate there - but a
    // fresh arrival owes a prefill, so it must still go to the prefill
    // group and cross the link like everyone else. Nothing may strand.
    const auto model = llm::ModelConfig::tiny();
    const auto cost = syntheticCost();
    core::ParallelismPlan plan;
    plan.dataParallel = 3;
    SchedulerConfig cfg;
    cfg.paged.enabled = true;
    cfg.paged.blockTokens = 8;

    ServeMetrics metrics(nullptr, "serve");
    ApplianceDispatcher disp(model, cost, plan,
                             32 * model.kvCacheBytes(8), cfg, metrics);
    ApplianceDispatcher::DisaggConfig dc;
    dc.enabled = true;
    dc.prefillGroups = 1;
    disp.configureDisagg(dc);

    for (std::size_t i = 0; i < 8; ++i) {
        ServeRequest r;
        r.id = i;
        r.arrivalSeconds = 0.05 * static_cast<double>(i);
        r.inputTokens = 16;
        r.outputTokens = 32;
        r.prefixGroup = 7;
        r.sharedPrefixTokens = 12;
        disp.submit(r);
    }
    disp.drain();

    EXPECT_TRUE(disp.group(0).finished().empty());
    const std::size_t decoded = disp.group(1).finished().size() +
        disp.group(2).finished().size();
    EXPECT_EQ(decoded, 8u);
    const auto rep = metrics.report(disp.clockSeconds());
    EXPECT_EQ(rep.completed, 8u);
    EXPECT_EQ(rep.handovers, 8u);
    // The shared prefix was hot somewhere (prefill group across
    // arrivals, decode group across continuations).
    EXPECT_GT(rep.prefixHitBlocks, 0u);
}

// ---- snapshot v3: mid-chunk state ----

TEST(DisaggSnapshotTest, MidChunkRequestRoundTripsAndResumes)
{
    // Freeze a scheduler while a 48-token prompt is partway through
    // its 16-token chunks; the snapshot must carry the chunk progress
    // and the resumed run must land every timestamp bit-identically.
    const auto model = llm::ModelConfig::tiny();
    const auto cost = syntheticCost();
    SchedulerConfig cfg;
    cfg.chunkTokens = 16;
    ServeRequest req;
    req.id = 0;
    req.inputTokens = 48;
    req.outputTokens = 4;
    const double split = 1.5 * cost.prefillSeconds(16, 0);

    ServeMetrics m_ref(nullptr, "serve");
    BatchScheduler ref(model, cost, 1ull << 22, cfg, m_ref);
    ref.submit(req);
    ref.advanceTo(split);
    ref.drain();

    ServeMetrics m_a(nullptr, "serve");
    BatchScheduler a(model, cost, 1ull << 22, cfg, m_a);
    a.submit(req);
    a.advanceTo(split);
    ServingSnapshot snap;
    snap.groups.push_back(a.state());
    snap.metrics = m_a.state();

    const std::string text = snapshotToText(snap);
    EXPECT_EQ(text.rfind("cxlpnm-snapshot-v3", 0), 0u);
    const ServingSnapshot back = snapshotFromText(text);
    EXPECT_EQ(snapshotToText(back), text);
    ASSERT_EQ(back.groups.size(), 1u);
    ASSERT_EQ(back.groups[0].batch.size(), 1u);
    const ServeRequest &mid = back.groups[0].batch[0];
    EXPECT_GT(mid.prefilledTokens, 0u);
    EXPECT_LT(mid.prefilledTokens, mid.inputTokens);
    EXPECT_EQ(mid.generated, 0u); // still prefilling: no token yet

    ServeMetrics m_b(nullptr, "serve");
    BatchScheduler b(model, cost, 1ull << 22, cfg, m_b);
    b.restore(back.groups[0]);
    m_b.restore(back.metrics);
    b.drain();

    EXPECT_DOUBLE_EQ(b.clockSeconds(), ref.clockSeconds());
    EXPECT_EQ(statsDump(m_b), statsDump(m_ref));
    ASSERT_EQ(b.finished().size(), 1u);
    EXPECT_DOUBLE_EQ(b.finished()[0].ttftSeconds(),
                     ref.finished()[0].ttftSeconds());
}

// ---- snapshot v3: in-flight handovers ----

/** Submit @p reqs[from..) into @p d and drain. */
void
submitFrom(ApplianceDispatcher &d,
           const std::vector<ServeRequest> &reqs, std::size_t from)
{
    for (std::size_t i = from; i < reqs.size(); ++i)
        d.submit(reqs[i]);
    d.drain();
}

TEST(DisaggSnapshotTest, InFlightHandoversAreCapturedAndResume)
{
    // The dispatcher pumps handoffs at the head of submit, so between
    // submits a finished prefill sits in its group's handoff list -
    // exactly the state a snapshot must capture. Resume must be
    // byte-identical to the uninterrupted run.
    const auto model = llm::ModelConfig::tiny();
    const auto cost = syntheticCost();
    core::ParallelismPlan plan;
    plan.dataParallel = 2;
    ApplianceDispatcher::DisaggConfig dc;
    dc.enabled = true;
    dc.prefillGroups = 1;
    const auto reqs = spacedRequests(8, 16, 6, 0.05);
    const std::size_t split_n = 3;

    ServeMetrics m_ref(nullptr, "serve");
    ApplianceDispatcher ref(model, cost, plan, 1ull << 22, {}, m_ref);
    ref.configureDisagg(dc);
    for (std::size_t i = 0; i < split_n; ++i)
        ref.submit(reqs[i]);
    submitFrom(ref, reqs, split_n);

    ServingSnapshot snap;
    {
        ServeMetrics m_a(nullptr, "serve");
        ApplianceDispatcher a(model, cost, plan, 1ull << 22, {}, m_a);
        a.configureDisagg(dc);
        for (std::size_t i = 0; i < split_n; ++i)
            a.submit(reqs[i]);
        snap = dispatcherSnapshot(a, m_a);
    }
    // The split point really does hold an unpumped handover.
    std::size_t in_flight = 0;
    for (const auto &g : snap.groups)
        in_flight += g.handoffs.size();
    EXPECT_GT(in_flight, 0u);
    ASSERT_TRUE(snap.hasDisagg);
    EXPECT_GT(snap.disagg.handovers + in_flight, 0u);

    const std::string text = snapshotToText(snap);
    const ServingSnapshot back = snapshotFromText(text);
    EXPECT_EQ(snapshotToText(back), text);

    ServeMetrics m_b(nullptr, "serve");
    ApplianceDispatcher b(model, cost, plan, 1ull << 22, {}, m_b);
    b.configureDisagg(dc);
    b.restore(back.groups);
    m_b.restore(back.metrics);
    ASSERT_TRUE(back.hasDisagg);
    b.restoreDisagg(back.disagg);
    submitFrom(b, reqs, split_n);

    EXPECT_DOUBLE_EQ(b.clockSeconds(), ref.clockSeconds());
    EXPECT_EQ(statsDump(m_b), statsDump(m_ref));
    EXPECT_EQ(snapshotToText(dispatcherSnapshot(b, m_b)),
              snapshotToText(dispatcherSnapshot(ref, m_ref)));
    EXPECT_EQ(b.disaggState().handovers, ref.disaggState().handovers);
}

// ---- snapshot v3: malformed input and version compatibility ----

/** A v3 snapshot exercising every disagg section: chunk progress,
 *  an in-flight handover, and nonzero handover accounting. */
ServingSnapshot
disaggSnapshot()
{
    const auto model = llm::ModelConfig::tiny();
    const auto cost = syntheticCost();
    core::ParallelismPlan plan;
    plan.dataParallel = 2;
    SchedulerConfig cfg;
    cfg.chunkTokens = 16;
    ServeMetrics metrics(nullptr, "serve");
    ApplianceDispatcher disp(model, cost, plan, 1ull << 22, cfg,
                             metrics);
    ApplianceDispatcher::DisaggConfig dc;
    dc.enabled = true;
    dc.prefillGroups = 1;
    disp.configureDisagg(dc);
    for (const auto &r : spacedRequests(4, 48, 6, 0.05))
        disp.submit(r);
    return dispatcherSnapshot(disp, metrics);
}

TEST(DisaggSnapshotTest, MalformedDisaggSectionsThrowTyped)
{
    const std::string good = snapshotToText(disaggSnapshot());
    ASSERT_NE(good.find("handoffs"), std::string::npos);
    ASSERT_NE(good.find("disaggfront"), std::string::npos);
    ASSERT_NE(good.find("handovertraffic"), std::string::npos);

    // A renamed section keyword is a typed error, not a misparse.
    for (const char *field :
         {"handoffs", "disagg ", "disaggfront", "handovertraffic",
          "handoverfront"}) {
        std::string bad = good;
        const std::size_t at = bad.find(field);
        ASSERT_NE(at, std::string::npos) << field;
        bad[at] = 'X';
        EXPECT_THROW(snapshotFromText(bad), SnapshotError) << field;
    }
    // Truncation inside the disagg front-door section.
    EXPECT_THROW(
        snapshotFromText(good.substr(0, good.find("handovertraffic"))),
        SnapshotError);
}

TEST(DisaggSnapshotTest, OlderRendersRestoreWithDefaults)
{
    const ServingSnapshot s = disaggSnapshot();

    // A v2 render drops chunk progress, handoff lists, and every
    // disagg section - and must still parse, with defaults.
    const std::string v2 = renderSnapshot(s, 2);
    EXPECT_EQ(v2.rfind("cxlpnm-snapshot-v2", 0), 0u);
    const ServingSnapshot from_v2 = snapshotFromText(v2);
    EXPECT_FALSE(from_v2.hasDisagg);
    EXPECT_EQ(from_v2.disagg.handovers, 0u);
    for (const auto &g : from_v2.groups) {
        EXPECT_TRUE(g.handoffs.empty());
        for (const auto &r : g.batch)
            EXPECT_EQ(r.prefilledTokens, 0u);
        for (const auto &r : g.queue)
            EXPECT_EQ(r.prefilledTokens, 0u);
    }

    // v1 (pre-overload) still parses too.
    const std::string v1 = renderSnapshot(s, 1);
    EXPECT_EQ(v1.rfind("cxlpnm-snapshot-v1", 0), 0u);
    EXPECT_FALSE(snapshotFromText(v1).hasDisagg);
}

} // namespace
} // namespace serve
} // namespace cxlpnm
