/**
 * @file
 * Core platform tests: device assembly, energy model anchors, the
 * single-device inference engine, appliance parallelism plans, and the
 * TCO model reproducing Table III's arithmetic.
 */

#include <gtest/gtest.h>

#include "core/inference_engine.hh"
#include "core/platform.hh"
#include "core/tco.hh"
#include "llm/model_config.hh"
#include "sim/logging.hh"

namespace cxlpnm
{
namespace core
{
namespace
{

TEST(PlatformTest, DeviceAssembles)
{
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    PnmPlatformConfig cfg;
    PnmDevice dev(eq, &root, "dev", cfg);

    EXPECT_EQ(dev.memory().channelCount(), 64u);
    EXPECT_NEAR(dev.memory().capacityBytes() / GB, 512.0, 1.0);
    EXPECT_EQ(dev.accel().config().peCount(), 2048);
    EXPECT_EQ(dev.functionalMemory(), nullptr); // timing-only default
}

TEST(PlatformTest, FunctionalImageWhenRequested)
{
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    PnmPlatformConfig cfg;
    cfg.functionalBytes = 8 * MiB;
    PnmDevice dev(eq, &root, "dev", cfg);
    ASSERT_NE(dev.functionalMemory(), nullptr);
    EXPECT_EQ(dev.functionalMemory()->size(), 8 * MiB);
}

TEST(PlatformTest, ChannelGroupingPreservesBandwidth)
{
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    PnmPlatformConfig a, b;
    b.channelGrouping = 8;
    PnmDevice da(eq, &root, "a", a);
    PnmDevice db(eq, &root, "b", b);
    EXPECT_EQ(db.memory().channelCount(), 8u);
    EXPECT_NEAR(da.memory().sustainedBandwidth(),
                db.memory().sustainedBandwidth(), 1.0);
}

TEST(PlatformTest, MaxPowerWithinBudget)
{
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    PnmDevice dev(eq, &root, "dev", PnmPlatformConfig{});
    // Table II: platform total ~150 W budget.
    EXPECT_LT(dev.maxPowerW(), 150.0);
    EXPECT_GT(dev.maxPowerW(), 50.0);
}

TEST(PlatformTest, EnergyModelDecomposes)
{
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    PnmDevice dev(eq, &root, "dev", PnmPlatformConfig{});

    PnmDevice::Activity before{}, after{};
    after.dramBytes = 1000000000ull; // 1 GB moved
    after.macs = 1000000000ull;
    after.vecOps = 0;

    const double idle_only =
        dev.energyJoules(before, before, tickPerSec);
    const double with_work =
        dev.energyJoules(before, after, tickPerSec);
    EXPECT_GT(idle_only, 0.0);       // statics accrue
    EXPECT_GT(with_work, idle_only); // dynamics add
    // 1 s of idle ~= static power (30 W controller + DRAM background).
    EXPECT_NEAR(idle_only, 34.8, 2.0);
}

TEST(InferenceEngineTest, TinyModelRunsQuickly)
{
    llm::InferenceRequest req;
    req.inputTokens = 4;
    req.outputTokens = 4;
    PnmPlatformConfig cfg;
    const auto r =
        runPnmSingleDevice(llm::ModelConfig::tiny(), req, cfg);
    EXPECT_EQ(r.genSeconds.size(), 4u);
    EXPECT_GT(r.sumSeconds, 0.0);
    EXPECT_GT(r.energyJoules, 0.0);
    EXPECT_GT(r.avgPowerW, 0.0);
    EXPECT_GT(r.programInstructions, 0u);
}

TEST(InferenceEngineTest, GenTimeTracksWeightBytes)
{
    // The headline behaviour: gen latency ~ weights / sustained BW.
    llm::InferenceRequest req;
    req.inputTokens = 8;
    req.outputTokens = 2;
    PnmPlatformConfig cfg;
    cfg.channelGrouping = 8;

    const auto m = llm::ModelConfig::opt1_3b();
    const auto r = runPnmSingleDevice(m, req, cfg);
    const double bw_bound =
        static_cast<double>(m.weightBytes()) / (0.913e12);
    EXPECT_GT(r.genSeconds.back(), bw_bound);
    EXPECT_LT(r.genSeconds.back(), bw_bound * 1.5);
}

TEST(InferenceEngineTest, TensorShardReducesPerDeviceTime)
{
    llm::InferenceRequest req;
    req.inputTokens = 8;
    req.outputTokens = 2;
    PnmPlatformConfig cfg;
    cfg.channelGrouping = 8;

    const auto m = llm::ModelConfig::opt2_7b();
    const auto full = runPnmSingleDevice(m, req, cfg, 1);
    const auto shard = runPnmSingleDevice(m, req, cfg, 4);
    // A quarter of the weights: 3-4.5x faster per gen stage.
    const double ratio = full.genSeconds.back() /
        shard.genSeconds.back();
    EXPECT_GT(ratio, 2.8);
    EXPECT_LT(ratio, 4.6);
}

TEST(ApplianceTest, DataParallelScalesThroughput)
{
    llm::InferenceRequest req;
    req.inputTokens = 8;
    req.outputTokens = 4;
    PnmPlatformConfig cfg;
    cfg.channelGrouping = 8;
    const auto m = llm::ModelConfig::opt1_3b();

    const auto dp1 = runPnmAppliance(m, req, cfg, {1, 1});
    const auto dp8 = runPnmAppliance(m, req, cfg, {1, 8});
    EXPECT_NEAR(dp8.throughputTokensPerSec,
                8.0 * dp1.throughputTokensPerSec,
                0.01 * dp8.throughputTokensPerSec);
    // Same request latency; 8x the energy.
    EXPECT_NEAR(dp8.requestLatencySeconds, dp1.requestLatencySeconds,
                1e-9);
    EXPECT_NEAR(dp8.energyJoules, 8.0 * dp1.energyJoules,
                0.01 * dp8.energyJoules);
}

TEST(ApplianceTest, ModelParallelCutsLatencyAddsComm)
{
    llm::InferenceRequest req;
    req.inputTokens = 8;
    req.outputTokens = 4;
    PnmPlatformConfig cfg;
    cfg.channelGrouping = 8;
    const auto m = llm::ModelConfig::opt2_7b();

    const auto dp = runPnmAppliance(m, req, cfg, {1, 8});
    const auto mp = runPnmAppliance(m, req, cfg, {8, 1});
    EXPECT_LT(mp.tokenLatencySeconds, dp.tokenLatencySeconds);
    EXPECT_EQ(dp.commFraction, 0.0);
    EXPECT_GT(mp.commFraction, 0.0);
    // MP8 single stream yields less aggregate throughput than DP8.
    EXPECT_LT(mp.throughputTokensPerSec, dp.throughputTokensPerSec);
}

TEST(ApplianceTest, DegeneratePlansMatchSingleDeviceSemantics)
{
    llm::InferenceRequest req;
    req.inputTokens = 8;
    req.outputTokens = 4;
    PnmPlatformConfig cfg;
    cfg.channelGrouping = 8;
    const auto m = llm::ModelConfig::opt1_3b();

    // 1x1: an appliance of one whole device is just that device -
    // no tensor split, so no d2d reductions at all.
    const auto solo = runPnmAppliance(m, req, cfg, {1, 1});
    const auto single = runPnmSingleDevice(m, req, cfg, 1);
    EXPECT_EQ(solo.commFraction, 0.0);
    EXPECT_NEAR(solo.requestLatencySeconds, single.totalSeconds,
                1e-2 * single.totalSeconds);
    EXPECT_NEAR(solo.throughputTokensPerSec,
                req.outputTokens / solo.requestLatencySeconds, 1e-6);

    // 8x1: all eight devices on one stream. Tensor split means the
    // reductions show up, and with dataParallel=1 the aggregate
    // throughput is just the single stream's.
    const auto mp = runPnmAppliance(m, req, cfg, {8, 1});
    EXPECT_GT(mp.commFraction, 0.0);
    EXPECT_LT(mp.commFraction, 1.0);
    EXPECT_NEAR(mp.throughputTokensPerSec,
                req.outputTokens / mp.requestLatencySeconds, 1e-6);
    EXPECT_LT(mp.requestLatencySeconds, solo.requestLatencySeconds);
}

TEST(ApplianceTest, RejectsBadPlan)
{
    setLogLevel(LogLevel::Silent);
    llm::InferenceRequest req;
    PnmPlatformConfig cfg;
    EXPECT_THROW(runPnmAppliance(llm::ModelConfig::tiny(), req, cfg,
                                 {0, 8}),
                 FatalError);
    setLogLevel(LogLevel::Info);
}

TEST(D2dModelTest, ReductionCostComponents)
{
    D2dModel d2d;
    cxl::CxlLinkParams link;
    const double fixed_only = d2d.reductionSeconds(1.0, link);
    EXPECT_NEAR(fixed_only, d2d.fixedSeconds, 1e-9);
    const double mb = d2d.reductionSeconds(1e6, link);
    EXPECT_NEAR(mb, d2d.fixedSeconds + 2e6 / link.usableBytesPerSec(),
                1e-9);
}

// ---- TCO (Table III arithmetic with the paper's own inputs) ----

TEST(TcoTest, ReproducesTableThreeGpuColumn)
{
    TcoInputs in;
    in.name = "GPU appliance";
    in.devices = 8;
    in.devicePriceUsd = 10000.0;
    in.appliancePowerW = 1800.0;           // 43.2 kWh/day
    in.throughputTokensPerSec = 42.824;    // 3.7 M tokens/day
    const auto r = computeTco(in);

    EXPECT_NEAR(r.hardwareCostUsd, 80000.0, 1.0);
    EXPECT_NEAR(r.tokensPerDayM, 3.7, 0.01);
    EXPECT_NEAR(r.kwhPerDay, 43.2, 0.01);
    EXPECT_NEAR(r.usdPerDay, 4.47, 0.01);  // Table III
    EXPECT_NEAR(r.co2KgPerDay, 2.46, 0.01);
    EXPECT_NEAR(r.tokensPerUsdM, 0.83, 0.01);
    EXPECT_NEAR(r.tokensPerKgM, 1.5, 0.02);
}

TEST(TcoTest, ReproducesTableThreePnmColumn)
{
    TcoInputs in;
    in.name = "CXL-PNM appliance";
    in.devices = 8;
    in.devicePriceUsd = 7000.0;
    in.appliancePowerW = 641.7;            // 15.4 kWh/day
    in.throughputTokensPerSec = 65.39;     // 5.65 M tokens/day
    const auto r = computeTco(in);

    EXPECT_NEAR(r.hardwareCostUsd, 56000.0, 1.0);
    EXPECT_NEAR(r.tokensPerDayM, 5.65, 0.01);
    EXPECT_NEAR(r.kwhPerDay, 15.4, 0.05);
    EXPECT_NEAR(r.usdPerDay, 1.59, 0.01);  // Table III
    EXPECT_NEAR(r.co2KgPerDay, 0.88, 0.01);
    EXPECT_NEAR(r.tokensPerUsdM, 3.54, 0.05);
    EXPECT_NEAR(r.tokensPerKgM, 6.42, 0.08);
}

TEST(TcoTest, RejectsBadInputs)
{
    setLogLevel(LogLevel::Silent);
    TcoInputs in;
    in.devices = 0;
    EXPECT_THROW(computeTco(in), TcoError);
    in.devices = -4;
    EXPECT_THROW(computeTco(in), TcoError);
    in.devices = 8;
    in.throughputTokensPerSec = 0.0;
    EXPECT_THROW(computeTco(in), TcoError);
    in.throughputTokensPerSec = -1.0;
    EXPECT_THROW(computeTco(in), TcoError);
    // The typed error stays catchable as the base FatalError, so
    // existing drivers keep working.
    in.throughputTokensPerSec = 0.0;
    EXPECT_THROW(computeTco(in), FatalError);
    setLogLevel(LogLevel::Info);
}

} // namespace
} // namespace core
} // namespace cxlpnm
