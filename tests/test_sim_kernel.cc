/**
 * @file
 * Unit tests for the simulation kernel: event queue ordering and
 * rescheduling, clock domains, stats, logging, config parsing, RNG.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "sim/clock_domain.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace cxlpnm
{
namespace
{

class QuietLogs : public ::testing::Test
{
  protected:
    void SetUp() override { setLogLevel(LogLevel::Silent); }
    void TearDown() override { setLogLevel(LogLevel::Info); }
};

using EventQueueTest = QuietLogs;
using LoggingTest = QuietLogs;

TEST_F(EventQueueTest, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    Event a("a", [&] { order.push_back(1); });
    Event b("b", [&] { order.push_back(2); });
    Event c("c", [&] { order.push_back(3); });

    eq.schedule(c, 30);
    eq.schedule(a, 10);
    eq.schedule(b, 20);
    EXPECT_EQ(eq.size(), 3u);
    EXPECT_EQ(eq.nextTick(), 10u);

    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
    EXPECT_TRUE(eq.empty());
}

TEST_F(EventQueueTest, SameTickOrderedByPriorityThenSequence)
{
    EventQueue eq;
    std::vector<int> order;
    Event lo("lo", [&] { order.push_back(1); }, 10);
    Event hi1("hi1", [&] { order.push_back(2); }, 50);
    Event hi2("hi2", [&] { order.push_back(3); }, 50);

    eq.schedule(hi1, 5);
    eq.schedule(hi2, 5);
    eq.schedule(lo, 5);
    eq.run();
    // Priority 10 fires first; equal priorities fire in schedule order.
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(EventQueueTest, ScheduleInPastPanics)
{
    EventQueue eq;
    Event a("a", [] {});
    Event b("b", [] {});
    eq.schedule(a, 100);
    eq.run();
    EXPECT_THROW(eq.schedule(b, 50), PanicError);
}

TEST_F(EventQueueTest, DoubleSchedulePanics)
{
    EventQueue eq;
    Event a("a", [] {});
    eq.schedule(a, 10);
    EXPECT_THROW(eq.schedule(a, 20), PanicError);
}

TEST_F(EventQueueTest, DescheduleRemovesWithoutFiring)
{
    EventQueue eq;
    int fired = 0;
    Event a("a", [&] { ++fired; });
    eq.schedule(a, 10);
    eq.deschedule(a);
    EXPECT_FALSE(a.scheduled());
    eq.run();
    EXPECT_EQ(fired, 0);
}

TEST_F(EventQueueTest, RescheduleMovesEvent)
{
    EventQueue eq;
    Tick fired_at = 0;
    Event a("a", [&] { fired_at = eq.now(); });
    eq.schedule(a, 10);
    eq.reschedule(a, 42);
    eq.run();
    EXPECT_EQ(fired_at, 42u);
}

TEST_F(EventQueueTest, EventsCanRescheduleThemselves)
{
    EventQueue eq;
    int count = 0;
    Event tick("tick", [&] {
        if (++count < 5)
            eq.schedule(tick, eq.now() + 7);
    });
    eq.schedule(tick, 0);
    eq.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.now(), 28u);
}

TEST_F(EventQueueTest, RunWithLimitStopsAndAdvancesClock)
{
    EventQueue eq;
    int fired = 0;
    Event a("a", [&] { ++fired; });
    Event b("b", [&] { ++fired; });
    eq.schedule(a, 10);
    eq.schedule(b, 100);
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 50u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST_F(EventQueueTest, DestructorDeschedules)
{
    EventQueue eq;
    {
        Event a("a", [] {});
        eq.schedule(a, 10);
    }
    EXPECT_TRUE(eq.empty());
}

TEST_F(EventQueueTest, SameTickFifoSurvivesArbitraryInterleavings)
{
    // Regression guard for the heap implementation: same-tick,
    // same-priority events must fire in *schedule* order even after the
    // heap has been churned by deschedules and reschedules in between.
    // A deterministic pseudo-random interleaving of operations over a
    // pool of events, replayed against a simple reference list.
    SplitMix64 rng(0xfeedbeef);
    for (int round = 0; round < 50; ++round) {
        EventQueue eq;
        constexpr int pool = 40;
        std::vector<std::unique_ptr<Event>> events;
        std::vector<int> fired;
        for (int i = 0; i < pool; ++i) {
            events.push_back(std::make_unique<Event>(
                "e" + std::to_string(i), [&fired, i] {
                fired.push_back(i);
            }));
        }

        // Reference: list of (tick, schedule-time) pairs in schedule
        // order; expected firing order sorts stably by tick.
        struct Ref { Tick when; int id; };
        std::vector<Ref> ref;

        auto scheduled = [&](int i) {
            return events[i]->scheduled();
        };
        auto refErase = [&](int i) {
            for (auto it = ref.begin(); it != ref.end(); ++it) {
                if (it->id == i) {
                    ref.erase(it);
                    return;
                }
            }
        };

        for (int op = 0; op < 400; ++op) {
            const int i = static_cast<int>(rng.nextBelow(pool));
            const Tick when = rng.nextBelow(5); // heavy tick collisions
            switch (rng.nextBelow(3)) {
              case 0: // schedule (if idle)
                if (!scheduled(i)) {
                    eq.schedule(*events[i], when);
                    ref.push_back({when, i});
                }
                break;
              case 1: // deschedule (if pending)
                if (scheduled(i)) {
                    eq.deschedule(*events[i]);
                    refErase(i);
                }
                break;
              case 2: // reschedule either way
                eq.reschedule(*events[i], when);
                refErase(i);
                ref.push_back({when, i});
                break;
            }
        }

        std::stable_sort(ref.begin(), ref.end(),
                         [](const Ref &a, const Ref &b) {
            return a.when < b.when;
        });
        std::vector<int> expect;
        for (const Ref &r : ref)
            expect.push_back(r.id);

        eq.run();
        EXPECT_EQ(fired, expect) << "round " << round;
    }
}

TEST_F(EventQueueTest, OneShotNotLeakedWhenCallbackThrows)
{
    // step() must keep ownership of a firing one-shot across a throwing
    // callback (the panic/fatal paths) — asan would flag the leak.
    EventQueue eq;
    eq.scheduleOneShot("boom", 5, [] { panic("callback failure"); });
    EXPECT_THROW(eq.run(), PanicError);
    EXPECT_TRUE(eq.empty());

    // And a one-shot still pending at queue destruction is reclaimed.
    {
        EventQueue eq2;
        eq2.scheduleOneShot("pending", 10, [] {});
    }

    // A one-shot that reschedules itself panics without double-free.
    EventQueue eq3;
    eq3.scheduleOneShot("again", 1, [&eq3] {
        eq3.scheduleOneShot("inner", 2, [] {});
    });
    eq3.run(); // legal: scheduling a *different* one-shot is fine
    EXPECT_TRUE(eq3.empty());
}

TEST_F(EventQueueTest, OneShotRecyclePoolReachesSteadyState)
{
    // The pool grows to the concurrent working set, then steady-state
    // dispatch performs no fresh allocations: every further one-shot
    // is served from the pool.
    EventQueue eq;
    constexpr std::size_t burst = 16;
    for (std::size_t i = 0; i < burst; ++i)
        eq.scheduleOneShot("warm", eq.now() + 1 + i, [] {});
    eq.run();
    EXPECT_EQ(eq.oneShotHeapAllocs(), burst);
    EXPECT_EQ(eq.oneShotPoolSize(), burst);

    const auto allocs = eq.oneShotHeapAllocs();
    for (int round = 0; round < 8; ++round) {
        for (std::size_t i = 0; i < burst; ++i)
            eq.scheduleOneShot("steady", eq.now() + 1 + i, [] {});
        eq.run();
    }
    EXPECT_EQ(eq.oneShotHeapAllocs(), allocs);
    EXPECT_EQ(eq.oneShotPoolReuses(), 8u * burst);
    EXPECT_EQ(eq.oneShotPoolSize(), burst);

    // A burst wider than the pool allocates exactly the shortfall.
    for (std::size_t i = 0; i < 2 * burst; ++i)
        eq.scheduleOneShot("wide", eq.now() + 1 + i, [] {});
    eq.run();
    EXPECT_EQ(eq.oneShotHeapAllocs(), 2 * burst);
}

TEST_F(EventQueueTest, RecycledOneShotsReleaseCapturesAndStayOrdered)
{
    EventQueue eq;

    // Parking a fired one-shot must drop its captured state — holding
    // the callback alive in the pool would pin arbitrary resources.
    auto token = std::make_shared<int>(7);
    eq.scheduleOneShot("cap", 1, [token] {});
    EXPECT_EQ(token.use_count(), 2);
    eq.run();
    EXPECT_EQ(token.use_count(), 1);

    // Recycling is timing- and order-invariant: a reused event fires
    // at its new tick with its new priority exactly like a fresh one.
    std::vector<int> order;
    eq.scheduleOneShot("late", eq.now() + 5,
                       [&] { order.push_back(2); },
                       Event::reportPriority);
    eq.scheduleOneShot("early", eq.now() + 5,
                       [&] { order.push_back(1); });
    eq.run();
    EXPECT_GT(eq.oneShotPoolReuses(), 0u);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ClockDomainTest, PeriodAndConversionsAt1GHz)
{
    ClockDomain clk(1e9);
    EXPECT_EQ(clk.period(), 1000u); // 1 ns in ps
    EXPECT_EQ(clk.cyclesToTicks(Cycles(5)), 5000u);
    EXPECT_EQ(clk.ticksToCycles(5000).value(), 5u);
    EXPECT_EQ(clk.ticksToCycles(5001).value(), 6u); // rounds up
    EXPECT_EQ(clk.nextEdge(1500), 2000u);
    EXPECT_EQ(clk.nextEdge(2000), 2000u);
}

TEST(ClockDomainTest, RejectsBadFrequencies)
{
    setLogLevel(LogLevel::Silent);
    EXPECT_THROW(ClockDomain(-1.0), FatalError);
    EXPECT_THROW(ClockDomain(2e12), FatalError); // above tick resolution
    setLogLevel(LogLevel::Info);
}

TEST(TypesTest, TickSecondConversionsRoundTrip)
{
    EXPECT_DOUBLE_EQ(ticksToSeconds(tickPerMs), 1e-3);
    EXPECT_EQ(secondsToTicks(2.5e-6), 2500000u);
}

TEST(StatsTest, ScalarAccumulatesAndDumps)
{
    stats::StatGroup root(nullptr, "root");
    stats::Scalar s(&root, "bytes", "bytes moved");
    s += 10;
    s += 32;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 43.0);

    std::ostringstream os;
    root.dumpStats(os);
    EXPECT_NE(os.str().find("root.bytes 43"), std::string::npos);

    root.resetStats();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(StatsTest, AverageTracksMinMaxMean)
{
    stats::StatGroup root(nullptr, "root");
    stats::Average a(&root, "lat", "latency");
    a.sample(10.0);
    a.sample(30.0);
    a.sample(20.0);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
    EXPECT_DOUBLE_EQ(a.min(), 10.0);
    EXPECT_DOUBLE_EQ(a.max(), 30.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(StatsTest, HistogramBucketsAndOverflow)
{
    stats::StatGroup root(nullptr, "root");
    stats::Histogram h(&root, "h", "hist", 0.0, 10.0, 5);
    h.sample(-1.0);
    h.sample(0.0);
    h.sample(1.9);
    h.sample(9.99);
    h.sample(10.0);
    h.sample(100.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.buckets()[0], 2u);
    EXPECT_EQ(h.buckets()[4], 1u);
    EXPECT_EQ(h.count(), 6u);
}

TEST(StatsTest, HistogramExactEdgeSamplesClassifyRightOpen)
{
    // Bucket i covers [lo + i*width, lo + (i+1)*width): a sample
    // exactly on an interior edge belongs to the bucket the edge
    // opens, even when (v - lo) / width rounds just under the integer
    // (the historical bug: lo=0, hi=1.2, 3 buckets, v=0.8 landed in
    // bucket 1 instead of 2).
    stats::StatGroup root(nullptr, "root");
    const double lo = 0.0, hi = 1.2;
    const std::size_t n = 3;
    stats::Histogram h(&root, "h", "hist", lo, hi, n);
    const double width = (hi - lo) / static_cast<double>(n);

    for (std::size_t i = 1; i < n; ++i)
        h.sample(lo + width * static_cast<double>(i));
    EXPECT_EQ(h.buckets()[0], 0u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[2], 1u);

    h.sample(0.8); // the decimal-literal twin of edge 2
    EXPECT_EQ(h.buckets()[2], 2u);
    h.sample(lo);
    EXPECT_EQ(h.buckets()[0], 1u);
    // The upper bound itself is out of range, exactly like the
    // percentile resolution treats it.
    h.sample(hi);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.underflow(), 0u);
}

TEST(StatsTest, HistogramEdgeSampleAgreesWithPercentileEdges)
{
    // An exact-edge sample must resolve to the same bucket whose upper
    // edge percentile() reports - classification and reporting use the
    // same computed edges.
    stats::StatGroup root(nullptr, "root");
    const double lo = 0.0, hi = 1.2;
    stats::Histogram h(&root, "h", "hist", lo, hi, 3);
    const double width = (hi - lo) / 3.0;

    h.sample(lo + width * 2.0); // opens bucket 2
    EXPECT_EQ(h.buckets()[2], 1u);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), lo + width * 3.0);

    // Awkward widths from SLO-style ranges: 0..2.0 s over 4000 buckets
    // (width 5e-4 is not a binary fraction). Every 100th edge must
    // classify into the bucket it opens.
    stats::Histogram t(&root, "t", "tok", 0.0, 2.0, 4000);
    const double tw = 2.0 / 4000.0;
    for (std::size_t i = 100; i < 4000; i += 100)
        t.sample(0.0 + tw * static_cast<double>(i));
    const auto &b = t.buckets();
    for (std::size_t i = 100; i < 4000; i += 100)
        EXPECT_EQ(b[i], 1u) << "edge " << i;
    EXPECT_EQ(t.underflow(), 0u);
    EXPECT_EQ(t.overflow(), 0u);
}

TEST(StatsTest, HistogramPercentileNearestRank)
{
    stats::StatGroup root(nullptr, "root");
    stats::Histogram h(&root, "h", "hist", 0.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0); // empty: 0

    h.sample(-1.0);  // underflow
    h.sample(1.0);   // bucket [0, 2)
    h.sample(1.5);   // bucket [0, 2)
    h.sample(5.0);   // bucket [4, 6)
    h.sample(100.0); // overflow

    // Nearest rank over 5 samples: rank = ceil(q * 5), min 1.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);  // underflow -> lo
    EXPECT_DOUBLE_EQ(h.percentile(0.2), 0.0);  // still the underflow
    EXPECT_DOUBLE_EQ(h.percentile(0.4), 2.0);  // bucket upper edge
    EXPECT_DOUBLE_EQ(h.percentile(0.6), 2.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.8), 6.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 10.0); // overflow -> hi

    EXPECT_THROW(h.percentile(-0.1), PanicError);
    EXPECT_THROW(h.percentile(1.1), PanicError);
}

TEST(StatsTest, HistogramAutoExtendDoublesRangeInsteadOfClamping)
{
    // Long-context regression: a latency far past the configured
    // range must keep resolving to a real (coarser) value instead of
    // clamping at `hi` the way the fixed-range histogram does.
    stats::StatGroup root(nullptr, "root");
    stats::Histogram ext(&root, "e", "auto", 0.0, 10.0, 5,
                         /*auto_extend=*/true);
    stats::Histogram fix(&root, "f", "fixed", 0.0, 10.0, 5);

    for (auto *h : {&ext, &fix}) {
        h->sample(1.0);
        h->sample(9.0);
        h->sample(25.0); // past hi: extend 10 -> 20 -> 40
    }

    EXPECT_EQ(ext.extensions(), 2u);
    EXPECT_DOUBLE_EQ(ext.hi(), 40.0);
    EXPECT_EQ(ext.overflow(), 0u);
    EXPECT_EQ(ext.count(), 3u);
    // Bucket pairs merged twice: width is now 8, and the old samples
    // sit in buckets whose edges still bound them.
    EXPECT_EQ(ext.buckets().size(), 5u);
    EXPECT_EQ(ext.buckets()[0], 1u); // 1.0 in [0, 8)
    EXPECT_EQ(ext.buckets()[1], 1u); // 9.0 in [8, 16)
    EXPECT_EQ(ext.buckets()[3], 1u); // 25.0 in [24, 32)
    EXPECT_DOUBLE_EQ(ext.percentile(1.0), 32.0); // real, coarse

    EXPECT_EQ(fix.extensions(), 0u);
    EXPECT_EQ(fix.overflow(), 1u);
    EXPECT_DOUBLE_EQ(fix.percentile(1.0), 10.0); // clamped at hi
}

TEST(StatsTest, HistogramResetRestoresTheInitialRange)
{
    stats::StatGroup root(nullptr, "root");
    stats::Histogram h(&root, "h", "hist", 0.0, 10.0, 5, true);
    h.sample(77.0);
    EXPECT_GT(h.extensions(), 0u);

    h.reset();
    EXPECT_EQ(h.extensions(), 0u);
    EXPECT_DOUBLE_EQ(h.hi(), 10.0);
    EXPECT_EQ(h.count(), 0u);
    h.sample(5.0); // original 2-wide buckets again
    EXPECT_EQ(h.buckets()[2], 1u);
}

TEST(StatsTest, NestedGroupsProduceDottedNames)
{
    stats::StatGroup root(nullptr, "");
    stats::StatGroup dev(&root, "device0");
    stats::StatGroup mc(&dev, "mc");
    stats::Scalar s(&mc, "reads", "reads");
    s += 7;
    std::ostringstream os;
    root.dumpStats(os);
    EXPECT_NE(os.str().find("device0.mc.reads 7"), std::string::npos);
}

TEST(SimObjectTest, BindsQueueAndSchedules)
{
    EventQueue eq;
    stats::StatGroup root(nullptr, "");

    struct Obj : SimObject
    {
        int fired = 0;
        Event ev;
        Obj(EventQueue &q, stats::StatGroup *p)
            : SimObject(q, p, "obj"), ev("obj.ev", [this] { ++fired; })
        {}
    };

    Obj obj(eq, &root);
    obj.scheduleIn(obj.ev, 100);
    eq.run();
    EXPECT_EQ(obj.fired, 1);
    EXPECT_EQ(obj.now(), 100u);
}

TEST_F(LoggingTest, PanicAndFatalThrowDistinctTypes)
{
    EXPECT_THROW(panic("boom"), PanicError);
    EXPECT_THROW(fatal("bad config"), FatalError);
    EXPECT_THROW(panic_if(true, "x"), PanicError);
    EXPECT_NO_THROW(panic_if(false, "x"));
    EXPECT_NO_THROW(fatal_if(false, "x"));
}

TEST(ConfigTest, ParsesTypedValues)
{
    auto cfg = Config::fromArgs({"model=opt-13b", "devices=8",
                                 "bw=1.1e12", "verbose=true"});
    EXPECT_EQ(cfg.getString("model", ""), "opt-13b");
    EXPECT_EQ(cfg.getInt("devices", 0), 8);
    EXPECT_DOUBLE_EQ(cfg.getDouble("bw", 0.0), 1.1e12);
    EXPECT_TRUE(cfg.getBool("verbose", false));
    EXPECT_EQ(cfg.getInt("missing", 42), 42);
    EXPECT_FALSE(cfg.has("missing"));
}

TEST(ConfigTest, RejectsMalformedInput)
{
    setLogLevel(LogLevel::Silent);
    EXPECT_THROW(Config::fromArgs({"novalue"}), FatalError);
    EXPECT_THROW(Config::fromArgs({"=x"}), FatalError);
    auto cfg = Config::fromArgs({"n=abc"});
    EXPECT_THROW(cfg.getInt("n", 0), FatalError);
    EXPECT_THROW(cfg.getBool("n", false), FatalError);
    setLogLevel(LogLevel::Info);
}

TEST(RandomTest, DeterministicAcrossInstances)
{
    SplitMix64 a(12345);
    SplitMix64 b(12345);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RandomTest, DoublesInUnitInterval)
{
    SplitMix64 rng(7);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(RandomTest, NextBelowRespectsBound)
{
    SplitMix64 rng(99);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(RandomTest, GaussianHasPlausibleMoments)
{
    SplitMix64 rng(2024);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double g = rng.nextGaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

} // namespace
} // namespace cxlpnm
