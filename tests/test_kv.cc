/**
 * @file
 * Paged KV-cache tests: the ref-counted block manager, the radix
 * prefix cache (chain sharing, copy-on-write tails, LRU eviction,
 * per-group tail keys), check-and-reserve admission on the byte pool,
 * and the paged scheduler end to end - admission beyond worst-case
 * byte gating, the preempt -> requeue -> recompute path, shared-prefix
 * hit accounting, and seeded determinism of the whole hit/evict
 * sequence.
 */

#include <gtest/gtest.h>

#include "serve/cost_model.hh"
#include "serve/dispatcher.hh"
#include "serve/kv_block_manager.hh"
#include "serve/kv_pool.hh"
#include "serve/metrics.hh"
#include "serve/prefix_cache.hh"
#include "serve/request_generator.hh"
#include "serve/scheduler.hh"
#include "serve/tier/tiered_pool.hh"
#include "sim/logging.hh"

namespace cxlpnm
{
namespace serve
{
namespace
{

BatchCostModel
syntheticCost()
{
    BatchCostModel c;
    c.sumCurve.addSample(1, 1.0e-3);
    c.sumCurve.addSample(1024, 10.0e-3);
    c.genWeightSeconds = 10.0e-3;
    c.genKvPerTokenSeconds = 2.0e-6;
    c.perTokenComputeSeconds = 0.2e-3;
    return c;
}

TraceConfig
saturatingTrace(std::size_t n, std::uint64_t in, std::uint64_t out)
{
    TraceConfig t;
    t.arrivals = ArrivalProcess::Fixed;
    t.requestsPerSec = 1.0e6;
    t.numRequests = n;
    t.input = LengthDistribution::fixed(in);
    t.output = LengthDistribution::fixed(out);
    return t;
}

ServeReport
runTrace(const TraceConfig &trace, const llm::ModelConfig &model,
         std::uint64_t kv_capacity, const SchedulerConfig &sched)
{
    ServeMetrics metrics(nullptr, "serve");
    BatchScheduler s(model, syntheticCost(), kv_capacity, sched,
                     metrics);
    RequestGenerator gen(trace);
    while (!gen.exhausted())
        s.submit(gen.next());
    s.drain();
    return metrics.report(s.clockSeconds());
}

SchedulerConfig
pagedConfig(std::uint32_t block_tokens, bool preemption = true)
{
    SchedulerConfig cfg;
    cfg.paged.enabled = true;
    cfg.paged.blockTokens = block_tokens;
    cfg.paged.preemption = preemption;
    return cfg;
}

// ---- KvCachePool::tryReserve edges ----

TEST(KvPoolTryReserveTest, ExactFitAndRefusalLeaveThePoolConsistent)
{
    KvCachePool pool(1000);
    EXPECT_TRUE(pool.tryReserve(1000)); // exact fit succeeds
    EXPECT_EQ(pool.reservedBytes(), 1000u);
    EXPECT_FALSE(pool.tryReserve(1)); // full pool refuses...
    EXPECT_EQ(pool.reservedBytes(), 1000u); // ...without side effects
    EXPECT_TRUE(pool.tryReserve(0)); // zero bytes always fit
    pool.release(1000);
    EXPECT_FALSE(pool.tryReserve(1001)); // over capacity refuses
    EXPECT_EQ(pool.reservedBytes(), 0u);
    EXPECT_TRUE(pool.tryReserve(999));
    EXPECT_FALSE(pool.tryReserve(2)); // one byte short
    EXPECT_TRUE(pool.tryReserve(1));

    setLogLevel(LogLevel::Silent);
    EXPECT_THROW(KvCachePool(0), FatalError); // zero-capacity pool
    setLogLevel(LogLevel::Info);
}

// ---- block manager ----

TEST(KvBlockManagerTest, CarvesCapacityAndRefCountsBlocks)
{
    // 10 whole blocks plus a remainder that must not become a block.
    KvBlockManager mgr(10 * 64 + 63, 64);
    EXPECT_EQ(mgr.totalBlocks(), 10u);
    EXPECT_EQ(mgr.freeBlocks(), 10u);
    EXPECT_EQ(mgr.blockBytes(), 64u);
    EXPECT_DOUBLE_EQ(mgr.utilization(), 0.0);

    const BlockId a = mgr.tryAllocate();
    ASSERT_NE(a, InvalidBlock);
    EXPECT_EQ(mgr.refCount(a), 1u);
    mgr.addRef(a);
    EXPECT_EQ(mgr.refCount(a), 2u);
    EXPECT_EQ(mgr.usedBlocks(), 1u);

    EXPECT_FALSE(mgr.release(a)); // one holder left, stays allocated
    EXPECT_EQ(mgr.usedBlocks(), 1u);
    EXPECT_TRUE(mgr.release(a)); // last ref frees it
    EXPECT_EQ(mgr.usedBlocks(), 0u);
    EXPECT_EQ(mgr.peakUsedBlocks(), 1u);
    EXPECT_EQ(mgr.allocations(), 1u);
    EXPECT_EQ(mgr.frees(), 1u);
}

TEST(KvBlockManagerTest, ExhaustionReturnsInvalidNotFatal)
{
    KvBlockManager mgr(3 * 32, 32);
    std::vector<BlockId> held;
    for (int i = 0; i < 3; ++i) {
        const BlockId b = mgr.tryAllocate();
        ASSERT_NE(b, InvalidBlock);
        held.push_back(b);
    }
    EXPECT_EQ(mgr.tryAllocate(), InvalidBlock);
    EXPECT_DOUBLE_EQ(mgr.utilization(), 1.0);
    mgr.release(held.back());
    EXPECT_NE(mgr.tryAllocate(), InvalidBlock); // freed block reusable
}

TEST(KvBlockManagerTest, FreeBlockMisuseIsFatal)
{
    KvBlockManager mgr(4 * 16, 16);
    const BlockId b = mgr.tryAllocate();
    EXPECT_TRUE(mgr.release(b));
    setLogLevel(LogLevel::Silent);
    EXPECT_THROW(mgr.release(b), FatalError); // double free
    EXPECT_THROW(mgr.addRef(b), FatalError);  // ref on a free block
    EXPECT_THROW(KvBlockManager(64, 0), FatalError);
    EXPECT_THROW(KvBlockManager(32, 64), FatalError); // < one block
    setLogLevel(LogLevel::Info);
}

// ---- prefix cache ----

TEST(PrefixCacheTest, ChainLookupSharesFullBlocksAndCowsTheTail)
{
    KvBlockManager mgr(8 * 16, 16);
    PrefixCache cache(mgr);

    // Donor request: two full shared blocks plus a 5-token tail that
    // lives at the head of its third (private) block.
    const std::vector<std::uint64_t> keys = {11, 22};
    const std::uint64_t tail_key = 33;
    std::vector<BlockId> blocks;
    for (int i = 0; i < 3; ++i)
        blocks.push_back(mgr.tryAllocate());
    cache.insert(keys, blocks, 5, tail_key, blocks[2]);
    EXPECT_EQ(cache.entries(), 3u);
    EXPECT_EQ(cache.insertions(), 3u);
    EXPECT_EQ(mgr.refCount(blocks[0]), 2u); // donor + cache

    // A second group member hits both full blocks and the tail.
    auto m = cache.lookup(keys, 5, tail_key);
    ASSERT_EQ(m.blocks.size(), 2u);
    EXPECT_EQ(m.blocks[0], blocks[0]);
    EXPECT_EQ(m.blocks[1], blocks[1]);
    EXPECT_EQ(m.partialTokens, 5u); // tail must be COW'd by caller
    EXPECT_EQ(mgr.refCount(blocks[0]), 3u); // lookup ref'd for caller
    EXPECT_EQ(mgr.refCount(blocks[2]), 2u); // tail donor NOT ref'd

    // A different tail length is a different node: no tail hit.
    auto m2 = cache.lookup(keys, 7, tail_key);
    EXPECT_EQ(m2.blocks.size(), 2u);
    EXPECT_EQ(m2.partialTokens, 0u);
    for (BlockId b : m2.blocks)
        mgr.release(b);

    // Prefix of the chain matches partially.
    auto m3 = cache.lookup({11, 99}, 0, 0);
    EXPECT_EQ(m3.blocks.size(), 1u);
    mgr.release(m3.blocks[0]);

    EXPECT_EQ(cache.peekCachedTokens(keys, 5, tail_key, 16),
              2u * 16u + 5u);
    for (BlockId b : m.blocks)
        mgr.release(b);
}

TEST(PrefixCacheTest, TailKeysKeepPrefixGroupsApart)
{
    // Regression: a shared prefix shorter than one block hangs its
    // tail off the trie root. Without the tail content key, every
    // group's tail would land on the same node and groups would
    // falsely hit each other's cached tail.
    KvBlockManager mgr(4 * 16, 16);
    PrefixCache cache(mgr);

    const BlockId donor = mgr.tryAllocate();
    cache.insert({}, {donor}, 6, /*tail_key=*/100, donor);

    EXPECT_EQ(cache.lookup({}, 6, 100).partialTokens, 6u); // own group
    EXPECT_EQ(cache.lookup({}, 6, 200).partialTokens, 0u); // other
    EXPECT_EQ(cache.peekCachedTokens({}, 6, 200, 16), 0u);
    EXPECT_EQ(cache.peekCachedTokens({}, 6, 100, 16), 6u);
}

TEST(PrefixCacheTest, EvictsLruLeavesOnlyAndNeverLiveBlocks)
{
    KvBlockManager mgr(8 * 16, 16);
    PrefixCache cache(mgr);

    std::vector<BlockId> chain = {mgr.tryAllocate(), mgr.tryAllocate()};
    cache.insert({1, 2}, chain, 0, 0, InvalidBlock);
    // Caller drops its refs; only the cache holds the chain now.
    for (BlockId b : chain)
        mgr.release(b);
    EXPECT_EQ(mgr.usedBlocks(), 2u);

    // A second, more recently used chain whose block the caller keeps.
    const BlockId live = mgr.tryAllocate();
    cache.insert({9}, {live}, 0, 0, InvalidBlock);

    // Evicts the cold chain leaf-first (never the mid-chain parent
    // while its child exists, never the live block).
    EXPECT_TRUE(cache.evictOne());
    EXPECT_EQ(mgr.usedBlocks(), 2u); // chain[1] went, live + chain[0]
    EXPECT_EQ(mgr.refCount(chain[0]), 1u);
    EXPECT_TRUE(cache.evictOne());
    EXPECT_EQ(mgr.usedBlocks(), 1u);
    EXPECT_FALSE(cache.evictOne()); // `live` is pinned by the caller
    EXPECT_EQ(cache.entries(), 1u);
    EXPECT_EQ(cache.evictions(), 2u);
    mgr.release(live);
}

TEST(PrefixCacheTest, EvictGuardSkipsBlocksMidTierMigration)
{
    // Adversarial interleaving of LRU eviction with a tier demotion:
    // the cache's oldest evictable block goes in flight between tiers
    // before eviction runs. Freeing it would hand the frame to a new
    // allocation while the transfer still owns the bytes, so the
    // guard must skip it - and the scan must continue to the
    // next-oldest candidate instead of giving up.
    KvBlockManager mgr(6 * 16, 16);
    tier::TieredBlockPool pool(mgr, 4);
    PrefixCache cache(mgr);
    cache.setEvictGuard(
        [&pool](BlockId b) { return !pool.inFlight(b); });

    const BlockId a = mgr.tryAllocate();
    const BlockId b = mgr.tryAllocate();
    pool.placeNear(a);
    pool.placeNear(b);
    cache.insert({1}, {a}, 0, 0, InvalidBlock); // a is the LRU leaf
    cache.insert({2}, {b}, 0, 0, InvalidBlock);
    mgr.release(a);
    mgr.release(b);
    EXPECT_EQ(mgr.usedBlocks(), 2u);

    pool.beginDemote(a); // a's bytes are on the wire
    EXPECT_TRUE(cache.evictOne());
    // The LRU order says a, the guard says b: a must survive with its
    // in-flight state intact.
    EXPECT_EQ(mgr.usedBlocks(), 1u);
    EXPECT_EQ(mgr.refCount(a), 1u);
    EXPECT_EQ(pool.residency(a), tier::Residency::DemoteInFlight);
    EXPECT_EQ(pool.stats().abandonedMigrations, 0u);

    // Every remaining candidate vetoed: eviction reports failure
    // rather than freeing a protected block.
    EXPECT_FALSE(cache.evictOne());

    // Once the transfer settles the block is fair game again; its
    // free drops the (now Far) residency through the observer.
    pool.finishDemote(a);
    EXPECT_TRUE(cache.evictOne());
    EXPECT_EQ(mgr.usedBlocks(), 0u);
    EXPECT_EQ(pool.residency(a), tier::Residency::None);
    EXPECT_EQ(pool.stats().abandonedMigrations, 0u);
    pool.checkConsistency();
}

TEST(PrefixCacheTest, EvictionDuringDemotionAbandonsOnlyWithoutGuard)
{
    // The complementary fault the guard exists to prevent: with no
    // guard installed, evicting a mid-demotion block reclaims it and
    // the pool must count the transfer abandoned (the engine will
    // skip its completion). The ledger stays consistent either way.
    KvBlockManager mgr(4 * 16, 16);
    tier::TieredBlockPool pool(mgr, 2);
    PrefixCache cache(mgr);

    const BlockId a = mgr.tryAllocate();
    pool.placeNear(a);
    cache.insert({1}, {a}, 0, 0, InvalidBlock);
    mgr.release(a);

    pool.beginDemote(a);
    EXPECT_TRUE(cache.evictOne()); // no guard: the free goes through
    EXPECT_EQ(pool.residency(a), tier::Residency::None);
    EXPECT_EQ(pool.stats().abandonedMigrations, 1u);
    pool.checkConsistency();
}

// ---- paged scheduler end to end ----

TEST(PagedSchedulerTest, AdmitsBeyondWorstCaseByteGating)
{
    const auto model = llm::ModelConfig::tiny();
    ServeRequest probe;
    probe.inputTokens = 8;
    probe.outputTokens = 48;
    // Two worst-case requests deep, on a workload where most outputs
    // are far shorter than the worst case: byte admission reserves
    // for the longest possible generation and caps the batch at 2,
    // while paged admission holds only each request's actual context
    // and packs several short requests into the same pool.
    const std::uint64_t capacity = 2 * probe.worstCaseKvBytes(model);
    auto trace = saturatingTrace(24, 8, 48);
    trace.output = LengthDistribution::bimodal(4, 48, 0.875);

    const auto byte = runTrace(trace, model, capacity, {});
    const auto paged = runTrace(trace, model, capacity, pagedConfig(8));

    EXPECT_EQ(byte.completed, 24u);
    EXPECT_EQ(paged.completed, 24u);
    EXPECT_GT(paged.meanBatchSize, byte.meanBatchSize);
    EXPECT_GT(paged.throughputTokensPerSec,
              byte.throughputTokensPerSec);
    EXPECT_LT(paged.makespanSeconds, byte.makespanSeconds);
}

TEST(PagedSchedulerTest, PreemptedRequestResumesAndCompletes)
{
    const auto model = llm::ModelConfig::tiny();
    // Pool of 5 8-token blocks; three 8-in/24-out requests each end at
    // 4 blocks, so decode growth must preempt to make room and the
    // victims must recompute after resuming.
    const std::uint64_t capacity = 5 * model.kvCacheBytes(8);
    const auto rep =
        runTrace(saturatingTrace(3, 8, 24), model, capacity,
                 pagedConfig(8));

    EXPECT_EQ(rep.completed, 3u);
    EXPECT_EQ(rep.requestsFailed, 0u);
    EXPECT_GT(rep.preemptionsForCapacity, 0u);
    EXPECT_GT(rep.recomputeTokens, 0u);
}

TEST(PagedSchedulerTest, PreemptionOffStallsInsteadOfEvicting)
{
    // One long request grows toward 7 blocks on a 7-block pool; a
    // short one (2 blocks, never grows) arrives mid-run. The grower
    // must stall - not evict anyone - until the short one retires,
    // and both complete without a single preemption.
    const auto model = llm::ModelConfig::tiny();
    ServeMetrics metrics(nullptr, "serve");
    BatchScheduler s(model, syntheticCost(),
                     7 * model.kvCacheBytes(8),
                     pagedConfig(8, /*preemption=*/false), metrics);
    ServeRequest grower;
    grower.id = 0;
    grower.inputTokens = 8;
    grower.outputTokens = 41; // final context 49 tokens = 7 blocks
    ServeRequest shorty;
    shorty.id = 1;
    shorty.arrivalSeconds = 0.3; // lands while the grower holds ~5
    shorty.inputTokens = 8;
    shorty.outputTokens = 7; // fits its 2 admission blocks for good
    s.submit(grower);
    s.submit(shorty);
    s.drain();

    const auto rep = metrics.report(s.clockSeconds());
    EXPECT_EQ(rep.completed, 2u);
    EXPECT_EQ(rep.preemptionsForCapacity, 0u);
    EXPECT_EQ(rep.recomputeTokens, 0u);
}

TEST(PagedSchedulerTest, AllGrowersStalledWithNoPreemptionIsFatal)
{
    // Two concurrent growers that jointly need more blocks than the
    // pool holds cannot make progress without eviction; with
    // preemption disabled the scheduler must fail loudly instead of
    // spinning.
    const auto model = llm::ModelConfig::tiny();
    ServeMetrics metrics(nullptr, "serve");
    BatchScheduler s(model, syntheticCost(),
                     5 * model.kvCacheBytes(8),
                     pagedConfig(8, /*preemption=*/false), metrics);
    for (std::uint64_t id = 0; id < 2; ++id) {
        ServeRequest r;
        r.id = id;
        r.inputTokens = 8;
        r.outputTokens = 24; // each wants 4 blocks, 8 > 5 jointly
        s.submit(r);
    }
    setLogLevel(LogLevel::Silent);
    EXPECT_THROW(s.drain(), FatalError);
    setLogLevel(LogLevel::Info);
}

TEST(PagedSchedulerTest, OverlargeRequestIsRejectedUpFront)
{
    const auto model = llm::ModelConfig::tiny();
    ServeMetrics metrics(nullptr, "serve");
    BatchScheduler s(model, syntheticCost(), 2 * model.kvCacheBytes(8),
                     pagedConfig(8), metrics);
    ServeRequest r;
    r.inputTokens = 16; // needs 3 blocks at its first token already
    r.outputTokens = 8;
    s.submit(r);
    s.drain();
    EXPECT_EQ(s.rejected().size(), 1u);
}

TEST(PagedSchedulerTest, SharedPrefixHitsCutPrefillAndRegister)
{
    const auto model = llm::ModelConfig::tiny();
    const std::uint64_t capacity = 24 * model.kvCacheBytes(8);
    auto trace = saturatingTrace(16, 16, 8);
    trace.prefixReuse = 1.0;
    trace.prefixGroups = 1;
    trace.prefixTokens = 12; // one full 8-token block + 4-token tail

    const auto rep = runTrace(trace, model, capacity, pagedConfig(8));
    EXPECT_EQ(rep.completed, 16u);
    EXPECT_GT(rep.prefixHitRate, 0.0);
    EXPECT_GT(rep.cachedPrefixTokens, 0u);
    EXPECT_GT(rep.sharedPrefixTokens, rep.cachedPrefixTokens);
    EXPECT_GT(rep.cowCopies, 0u); // the 4-token tail is COW'd

    auto cold = trace;
    cold.prefixReuse = 0.0;
    const auto base = runTrace(cold, model, capacity, pagedConfig(8));
    EXPECT_DOUBLE_EQ(base.prefixHitRate, 0.0);
    // Cached prefills are cheaper, so the shared workload drains
    // strictly faster on the same capacity.
    EXPECT_LT(rep.makespanSeconds, base.makespanSeconds);
}

TEST(PagedSchedulerTest, TimeWeightedKvUtilizationIsConsistent)
{
    const auto model = llm::ModelConfig::tiny();
    const std::uint64_t capacity = 6 * model.kvCacheBytes(8);
    const auto rep = runTrace(saturatingTrace(8, 8, 16), model,
                              capacity, pagedConfig(8));
    EXPECT_GT(rep.timeAvgKvUtilization, 0.0);
    EXPECT_LE(rep.timeAvgKvUtilization, rep.peakKvUtilization + 1e-12);
    EXPECT_GT(rep.peakKvBlocksInUse, 0u);
    EXPECT_GT(rep.meanKvBlocksInUse, 0.0);
    EXPECT_LE(rep.meanKvBlocksInUse,
              static_cast<double>(rep.peakKvBlocksInUse));
}

TEST(PagedSchedulerTest, HitAndEvictSequenceIsSeedDeterministic)
{
    const auto model = llm::ModelConfig::tiny();
    TraceConfig trace;
    trace.requestsPerSec = 500.0;
    trace.numRequests = 80;
    trace.input = LengthDistribution::uniform(8, 24);
    trace.output = LengthDistribution::uniform(4, 24);
    trace.seed = 11;
    trace.prefixReuse = 0.7;
    trace.prefixGroups = 3;
    trace.prefixTokens = 12;
    // Tight enough that eviction and preemption both fire.
    const std::uint64_t capacity = 8 * model.kvCacheBytes(8);

    const auto a = runTrace(trace, model, capacity, pagedConfig(8));
    const auto b = runTrace(trace, model, capacity, pagedConfig(8));
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.prefixHitBlocks, b.prefixHitBlocks);
    EXPECT_EQ(a.cachedPrefixTokens, b.cachedPrefixTokens);
    EXPECT_EQ(a.cacheEvictions, b.cacheEvictions);
    EXPECT_EQ(a.cowCopies, b.cowCopies);
    EXPECT_EQ(a.preemptionsForCapacity, b.preemptionsForCapacity);
    EXPECT_EQ(a.recomputeTokens, b.recomputeTokens);
    EXPECT_DOUBLE_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_DOUBLE_EQ(a.timeAvgKvUtilization, b.timeAvgKvUtilization);

    auto other = trace;
    other.seed = 12;
    const auto c = runTrace(other, model, capacity, pagedConfig(8));
    EXPECT_NE(a.makespanSeconds, c.makespanSeconds);
}

// ---- cache-affinity routing ----

// ---- chunked prefill: the head-of-line fix ----

TEST(ChunkedPrefillTest, ShortRequestNoLongerPaysTheLongPrefill)
{
    // The TTFT head-of-line symptom: a short request sharing an
    // iteration with a long prompt pays that prompt's entire prefill
    // before its own first token. With a chunk budget the long prompt
    // is admitted piecewise, so the short request's first token costs
    // one chunk of interference, not the whole 1024-token prefill.
    const auto model = llm::ModelConfig::opt13b();
    const auto cost = syntheticCost();
    const double long_prefill = cost.prefillSeconds(1024, 0);

    auto shortTtft = [&](const SchedulerConfig &sched) {
        ServeMetrics metrics(nullptr, "serve");
        BatchScheduler s(model, cost, 64ull << 30, sched, metrics);
        ServeRequest big;
        big.id = 0;
        big.inputTokens = 1024;
        big.outputTokens = 4;
        ServeRequest small;
        small.id = 1;
        small.inputTokens = 8;
        small.outputTokens = 4;
        s.submit(big);
        s.submit(small);
        s.drain();
        EXPECT_EQ(s.finished().size(), 2u);
        for (const auto &r : s.finished())
            if (r.id == 1)
                return r.ttftSeconds();
        ADD_FAILURE() << "short request never finished";
        return -1.0;
    };

    SchedulerConfig mono;
    const double mono_ttft = shortTtft(mono);
    SchedulerConfig chunked;
    chunked.chunkTokens = 32;
    const double chunked_ttft = shortTtft(chunked);

    // Monolithic: the short request's first token waits out the full
    // long prefill (the symptom the old regression pinned).
    EXPECT_GE(mono_ttft, long_prefill - 1e-12);
    // Chunked: it no longer does - strictly under one long prefill,
    // and strictly better than the monolithic schedule.
    EXPECT_LT(chunked_ttft, long_prefill);
    EXPECT_LT(chunked_ttft, mono_ttft);
}

TEST(DispatcherTest, RoutesPrefixGroupMembersToTheCachedScheduler)
{
    const auto model = llm::ModelConfig::tiny();
    core::ParallelismPlan plan;
    plan.modelParallel = 1;
    plan.dataParallel = 2;
    const std::uint64_t capacity = 32 * model.kvCacheBytes(8);

    ServeMetrics metrics(nullptr, "appliance");
    ApplianceDispatcher disp(model, syntheticCost(), plan, capacity,
                             pagedConfig(8), metrics);

    auto member = [](std::uint64_t id, double at) {
        ServeRequest r;
        r.id = id;
        r.arrivalSeconds = at;
        r.inputTokens = 16;
        r.outputTokens = 32;
        r.prefixGroup = 7;
        r.sharedPrefixTokens = 12;
        return r;
    };
    // First member lands on group 0 (least-load tie, lowest index)
    // and seeds its prefix in that scheduler's cache.
    disp.submit(member(0, 0.0));
    // While it is still running, a group mate arrives. Pure least-load
    // would send it to the idle group 1; cache affinity must keep it
    // on group 0, where its prefix is hot.
    disp.submit(member(1, 0.05));
    disp.drain();

    EXPECT_EQ(disp.group(0).finished().size(), 2u);
    EXPECT_EQ(disp.group(1).finished().size(), 0u);
    EXPECT_GT(metrics.prefixHitBlocks(), 0u);
}

} // namespace
} // namespace serve
} // namespace cxlpnm
