/**
 * @file
 * DRAM subsystem tests: Table I derivations per technology, channel
 * timing behaviour, module striping, and the power model.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "dram/channel.hh"
#include "dram/dram_spec.hh"
#include "dram/module.hh"
#include "dram/power.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace cxlpnm
{
namespace dram
{
namespace
{

// ---- Table I: per-package rows ----

TEST(DramSpecTest, Ddr5PackageRow)
{
    auto s = DramTechSpec::ddr5();
    EXPECT_NEAR(s.bandwidthPerPackage(), 2.8 * GB, 1e6);
    EXPECT_NEAR(s.capacityPerPackage(), 16.0 * GB, 1e6);
}

TEST(DramSpecTest, Gddr6PackageRow)
{
    auto s = DramTechSpec::gddr6();
    EXPECT_NEAR(s.bandwidthPerPackage(), 96.0 * GB, 1e6);
    EXPECT_NEAR(s.capacityPerPackage(), 2.0 * GB, 1e6);
}

TEST(DramSpecTest, Hbm3PackageRow)
{
    auto s = DramTechSpec::hbm3();
    EXPECT_NEAR(s.bandwidthPerPackage(), 819.2 * GB, 1e9);
    EXPECT_NEAR(s.capacityPerPackage(), 16.0 * GB, 1e6);
}

TEST(DramSpecTest, Lpddr5xPackageRow)
{
    auto s = DramTechSpec::lpddr5x();
    EXPECT_NEAR(s.bandwidthPerPackage(), 136.0 * GB, 1e9);
    EXPECT_NEAR(s.capacityPerPackage(), 64.0 * GB, 1e6);
}

// ---- Table I: per-module rows ----

TEST(DramSpecTest, ModuleRowsMatchTableOne)
{
    auto d = DramTechSpec::ddr5();
    EXPECT_EQ(d.ioWidthPerModule(), 128);
    EXPECT_NEAR(d.bandwidthPerModule(), 89.6 * GB, 1e9);
    EXPECT_NEAR(d.capacityPerModule(), 512.0 * GB, 1e9);

    auto g = DramTechSpec::gddr6();
    EXPECT_EQ(g.ioWidthPerModule(), 512);
    EXPECT_NEAR(g.bandwidthPerModule(), 1.536 * TB, 1e9);
    EXPECT_NEAR(g.capacityPerModule(), 32.0 * GB, 1e9);

    auto h = DramTechSpec::hbm3();
    EXPECT_EQ(h.ioWidthPerModule(), 5120);
    EXPECT_NEAR(h.bandwidthPerModule(), 4.096 * TB, 1e10);
    EXPECT_NEAR(h.capacityPerModule(), 80.0 * GB, 1e9);

    auto l = DramTechSpec::lpddr5x();
    EXPECT_EQ(l.ioWidthPerModule(), 1024);
    EXPECT_NEAR(l.bandwidthPerModule(), 1.088 * TB, 1e9);
    EXPECT_NEAR(l.capacityPerModule(), 512.0 * GB, 1e9);
}

TEST(DramSpecTest, NormalisedModulePowerMatchesTableOne)
{
    const double base = DramTechSpec::lpddr5x().powerPerModule();
    EXPECT_NEAR(DramTechSpec::ddr5().powerPerModule() / base, 0.35, 0.01);
    EXPECT_NEAR(DramTechSpec::gddr6().powerPerModule() / base, 0.96, 0.01);
    EXPECT_NEAR(DramTechSpec::hbm3().powerPerModule() / base, 3.00, 0.01);
    EXPECT_NEAR(base, 40.0, 1.0); // Table II: DRAM total power ~40 W
}

TEST(DramSpecTest, LpddrEnergyPerBitBelowGddr6)
{
    // §I: LPDDR5X has 14% lower pJ/bit than GDDR6.
    auto l = DramTechSpec::lpddr5x();
    auto g = DramTechSpec::gddr6();
    EXPECT_NEAR(l.energyPerBitPj / g.energyPerBitPj, 0.86, 0.01);
}

TEST(DramSpecTest, OneTerabyteVariant)
{
    auto t = DramTechSpec::lpddr5x1Tb();
    EXPECT_NEAR(t.capacityPerModule(), 1.024 * TB, 1e9);
    // Same interface: bandwidth unchanged.
    EXPECT_NEAR(t.bandwidthPerModule(),
                DramTechSpec::lpddr5x().bandwidthPerModule(), 1.0);
}

TEST(DramSpecTest, StreamEfficiencyInCalibratedBand)
{
    // The sustained/peak ratio the whole evaluation rests on (~0.84).
    auto l = DramTechSpec::lpddr5x();
    EXPECT_GT(l.streamEfficiency(), 0.80);
    EXPECT_LT(l.streamEfficiency(), 0.88);
}

// ---- Channel timing ----

TEST(ChannelTest, SingleBurstTiming)
{
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    auto spec = DramTechSpec::lpddr5x();
    MemoryChannel ch(eq, &root, "ch", spec, 17.0 * GB);

    Tick done = 0;
    ChannelRequest r;
    r.bytes = 1u << 20; // 1 MiB
    r.onComplete = [&] { done = eq.now(); };
    ch.access(std::move(r));
    eq.run();

    // 1 MiB at 17 GB/s * eff, plus access latency.
    const double expect_sec =
        (1u << 20) / (17.0 * GB * spec.streamEfficiency()) +
        spec.accessLatencyNs * 1e-9;
    EXPECT_NEAR(ticksToSeconds(done), expect_sec, expect_sec * 0.01);
    EXPECT_EQ(ch.bytesRead(), 1u << 20);
}

TEST(ChannelTest, BackToBackBurstsPipeline)
{
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    auto spec = DramTechSpec::lpddr5x();
    MemoryChannel ch(eq, &root, "ch", spec, 17.0 * GB);

    Tick t1 = 0, t2 = 0;
    ChannelRequest a, b;
    a.bytes = b.bytes = 1u << 20;
    a.onComplete = [&] { t1 = eq.now(); };
    b.onComplete = [&] { t2 = eq.now(); };
    ch.access(std::move(a));
    ch.access(std::move(b));
    eq.run();

    // The second burst waits for bus occupancy only, not for the first
    // completion callback: gap == one occupancy, not occupancy+latency.
    const Tick occupancy = t2 - t1;
    const double occ_sec =
        (1u << 20) / (17.0 * GB * spec.streamEfficiency());
    EXPECT_NEAR(ticksToSeconds(occupancy), occ_sec, occ_sec * 0.01);
}

TEST(ChannelTest, WritesAreCountedSeparately)
{
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    auto spec = DramTechSpec::lpddr5x();
    MemoryChannel ch(eq, &root, "ch", spec, 17.0 * GB);

    ChannelRequest w;
    w.bytes = 4096;
    w.isRead = false;
    ch.access(std::move(w));
    eq.run();
    EXPECT_EQ(ch.bytesWritten(), 4096u);
    EXPECT_EQ(ch.bytesRead(), 0u);
}

TEST(ChannelTest, ZeroByteAccessPanics)
{
    setLogLevel(LogLevel::Silent);
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    auto spec = DramTechSpec::lpddr5x();
    MemoryChannel ch(eq, &root, "ch", spec, 17.0 * GB);
    EXPECT_THROW(ch.access(ChannelRequest{}), PanicError);
    setLogLevel(LogLevel::Info);
}

// ---- Module ----

TEST(ModuleTest, LpddrModuleHas64Channels)
{
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    MultiChannelMemory mem(eq, &root, "mem", DramTechSpec::lpddr5x());
    EXPECT_EQ(mem.channelCount(), 64u);
    EXPECT_NEAR(mem.peakBandwidth(), 1.088 * TB, 1e9);
    EXPECT_NEAR(mem.capacityBytes(), 512.0 * GB, 1e9);
}

TEST(ModuleTest, StreamingRequestAchievesSustainedBandwidth)
{
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    MultiChannelMemory mem(eq, &root, "mem", DramTechSpec::lpddr5x());

    const std::uint64_t bytes = 256ull << 20; // 256 MiB weight stream
    Tick done = 0;
    MemoryRequest r;
    r.addr = 0;
    r.bytes = bytes;
    r.onComplete = [&] { done = eq.now(); };
    mem.access(std::move(r));
    eq.run();

    const double achieved = bytes / ticksToSeconds(done);
    // Within 2% of sustained module bandwidth (latency amortised).
    EXPECT_NEAR(achieved, mem.sustainedBandwidth(),
                mem.sustainedBandwidth() * 0.02);
}

TEST(ModuleTest, SmallRequestHitsOneChannel)
{
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    MultiChannelMemory mem(eq, &root, "mem", DramTechSpec::lpddr5x());

    MemoryRequest r;
    r.addr = 256 * 5; // granule 5 -> channel 5
    r.bytes = 64;
    bool done = false;
    r.onComplete = [&] { done = true; };
    mem.access(std::move(r));
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(mem.channel(5).bytesRead(), 64u);
    EXPECT_EQ(mem.totalBytes(), 64u);
}

TEST(ModuleTest, UnalignedRequestSplitsAcrossAdjacentChannels)
{
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    MultiChannelMemory mem(eq, &root, "mem", DramTechSpec::lpddr5x());

    MemoryRequest r;
    r.addr = 256 - 16; // 16 bytes in ch0's granule, 48 into ch1
    r.bytes = 64;
    mem.access(std::move(r));
    eq.run();
    EXPECT_EQ(mem.channel(0).bytesRead(), 16u);
    EXPECT_EQ(mem.channel(1).bytesRead(), 48u);
}

TEST(ModuleTest, ClosedFormStripingMatchesGranuleWalk)
{
    // The module computes per-channel shares in closed form; this
    // replays random (addr, bytes) requests and checks the resulting
    // per-channel byte counters against a literal granule-by-granule
    // walk (the original O(bytes/granule) definition).
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    MultiChannelMemory mem(eq, &root, "mem", DramTechSpec::lpddr5x());
    const std::size_t n = mem.channelCount();
    constexpr std::uint64_t granule = 256;

    std::vector<std::uint64_t> expect(n, 0);
    SplitMix64 rng(31337);
    for (int i = 0; i < 200; ++i) {
        MemoryRequest r;
        r.addr = rng.nextBelow(1ull << 20);
        r.bytes = 1 + rng.nextBelow(512 * 1024); // spans 0..2k granules
        r.isRead = true;

        std::uint64_t remaining = r.bytes;
        std::uint64_t g = r.addr / granule;
        std::uint64_t offset = r.addr % granule;
        while (remaining > 0) {
            const std::uint64_t take =
                std::min(remaining, granule - offset);
            expect[g % n] += take;
            remaining -= take;
            offset = 0;
            ++g;
        }

        mem.access(std::move(r));
    }
    eq.run();
    for (std::size_t c = 0; c < n; ++c)
        EXPECT_EQ(mem.channel(c).bytesRead(), expect[c]) << "ch" << c;
}

TEST(ModuleTest, OutOfRangeAccessIsFatal)
{
    setLogLevel(LogLevel::Silent);
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    MultiChannelMemory mem(eq, &root, "mem", DramTechSpec::lpddr5x());
    MemoryRequest r;
    r.addr = mem.capacityBytes() - 32;
    r.bytes = 64;
    EXPECT_THROW(mem.access(std::move(r)), FatalError);
    setLogLevel(LogLevel::Info);
}

// ---- Power ----

TEST(DramPowerTest, StreamingPowerNear40W)
{
    auto spec = DramTechSpec::lpddr5x();
    DramPowerModel p(spec);
    // Full-stream power is the Table II "DRAM total power ~40W" row.
    const double w = p.streamingPowerW(spec.bandwidthPerModule());
    EXPECT_NEAR(w, 40.0, 2.0);
}

TEST(DramPowerTest, EnergyDecomposition)
{
    auto spec = DramTechSpec::lpddr5x();
    DramPowerModel p(spec);
    const std::uint64_t bytes = 1000000000ull; // 1 GB
    const double te = p.transferEnergyJ(bytes);
    EXPECT_NEAR(te, 8e9 * spec.energyPerBitPj * 1e-12, 1e-6);
    // One second of background + the transfer.
    const double total = p.energyJ(bytes, tickPerSec);
    EXPECT_NEAR(total, te + p.backgroundPowerW(), 1e-9);
}

} // namespace
} // namespace dram
} // namespace cxlpnm
