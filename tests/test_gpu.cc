/**
 * @file
 * GPU baseline model tests: spec presets, efficiency curves, roofline
 * kernel timing, NCCL model, offload path, tensor parallelism and the
 * power model, with property sweeps for monotonicity.
 */

#include <gtest/gtest.h>

#include "gpu/inference.hh"
#include "llm/model_config.hh"
#include "sim/logging.hh"

namespace cxlpnm
{
namespace gpu
{
namespace
{

TEST(GpuSpecTest, A100Presets)
{
    auto s = GpuSpec::a100_40g();
    EXPECT_EQ(s.memBytes, 40ull * 1000 * 1000 * 1000);
    EXPECT_NEAR(s.memBandwidth, 1.555e12, 1e9);
    EXPECT_NEAR(s.peakFp16Flops, 312e12, 1e12);
    EXPECT_DOUBLE_EQ(s.priceUsd, 10000.0); // Table III

    EXPECT_GT(GpuSpec::a100_80g().memBandwidth, s.memBandwidth);
    EXPECT_NEAR(GpuSpec::h100().memBandwidth, 4.096e12, 1e10);
}

TEST(GpuCalibTest, BandwidthEfficiencyCurveShape)
{
    GpuCalibration c;
    // Monotone increasing, saturating at bwEffMax, floored for tiny
    // kernels.
    EXPECT_GE(c.bandwidthEfficiency(1.0), 0.03);
    EXPECT_LT(c.bandwidthEfficiency(1e6),
              c.bandwidthEfficiency(50e6));
    EXPECT_LT(c.bandwidthEfficiency(50e6),
              c.bandwidthEfficiency(500e6));
    EXPECT_LE(c.bandwidthEfficiency(1e12), c.bwEffMax);
    EXPECT_NEAR(c.bandwidthEfficiency(1e9), c.bwEffMax, 1e-6);
}

TEST(GpuCalibTest, ComputeEfficiencyCurveShape)
{
    GpuCalibration c;
    EXPECT_NEAR(c.computeEfficiency(1e3), c.computeEffFloor, 1e-9);
    EXPECT_LT(c.computeEfficiency(4e9), c.computeEfficiency(40e9));
    EXPECT_LE(c.computeEfficiency(1e15), c.gemmComputeEffMax);
}

TEST(GpuCalibTest, AllReduceCostModel)
{
    GpuCalibration c;
    EXPECT_DOUBLE_EQ(c.allReduceSec(1e6, 1), 0.0); // no peers
    // Latency grows with the GPU count (log term) and the size.
    EXPECT_LT(c.allReduceSec(1e3, 2), c.allReduceSec(1e3, 8));
    EXPECT_LT(c.allReduceSec(1e3, 8), c.allReduceSec(100e6, 8));
    // Small-message 8-GPU all-reduce is ~50 us (Fig. 11 anchor).
    EXPECT_NEAR(c.allReduceSec(18432.0, 8), 50e-6, 10e-6);
}

TEST(KernelModelTest, MemoryVsComputeBound)
{
    const auto spec = GpuSpec::a100_40g();
    GpuCalibration calib;

    // GEMV: huge weight traffic, tiny flops -> memory bound.
    llm::Op gemv;
    gemv.kind = llm::OpKind::Fc1;
    gemv.m = 1;
    gemv.n = 20480;
    gemv.k = 5120;
    gemv.weightBytes = 2ull * 20480 * 5120;
    auto kt = kernelTime(gemv, spec, calib, 1);
    EXPECT_TRUE(kt.memBound);
    EXPECT_LT(kt.computeUtil, 0.01);

    // Big GEMM: compute bound.
    llm::Op gemm = gemv;
    gemm.m = 2048;
    auto kt2 = kernelTime(gemm, spec, calib, 1);
    EXPECT_FALSE(kt2.memBound);
    EXPECT_GT(kt2.computeUtil, 0.3);
}

TEST(KernelModelTest, TensorParallelismSplitsWork)
{
    const auto spec = GpuSpec::a100_40g();
    GpuCalibration calib;
    llm::Op op;
    op.kind = llm::OpKind::Fc1;
    op.m = 1;
    op.n = 20480;
    op.k = 5120;
    op.weightBytes = 2ull * 20480 * 5120;

    auto t1 = kernelTime(op, spec, calib, 1);
    auto t8 = kernelTime(op, spec, calib, 8);
    // 8-way split is faster but sub-linear (efficiency knee).
    EXPECT_LT(t8.seconds, t1.seconds);
    EXPECT_GT(t8.seconds, t1.seconds / 8.0);
}

TEST(GpuInferenceTest, ModelFitsLogicMatchesPaper)
{
    llm::InferenceRequest req;
    req.inputTokens = 64;
    req.outputTokens = 1024;
    const auto spec = GpuSpec::a100_40g();
    EXPECT_TRUE(modelFits(llm::ModelConfig::opt13b(), req, spec, 1));
    EXPECT_FALSE(modelFits(llm::ModelConfig::opt30b(), req, spec, 1));
    EXPECT_FALSE(modelFits(llm::ModelConfig::opt66b(), req, spec, 1));
    // Eight GPUs hold OPT-66B (the paper's DGX setup).
    EXPECT_TRUE(modelFits(llm::ModelConfig::opt66b(), req, spec, 8));
}

TEST(GpuInferenceTest, OffloadDominatedByCopies)
{
    llm::InferenceRequest req;
    req.inputTokens = 64;
    req.outputTokens = 8;
    const auto r =
        runGpuInference(llm::ModelConfig::opt30b(), req,
                        GpuSpec::a100_40g(), GpuCalibration{}, 1);
    EXPECT_GT(r.copyFraction, 0.95); // Fig. 3
    // Offloaded decode is seconds per token.
    EXPECT_GT(r.genSeconds.back(), 5.0);
}

TEST(GpuInferenceTest, InMemoryModelHasNoCopies)
{
    llm::InferenceRequest req;
    req.inputTokens = 64;
    req.outputTokens = 8;
    const auto r =
        runGpuInference(llm::ModelConfig::opt13b(), req,
                        GpuSpec::a100_40g(), GpuCalibration{}, 1);
    EXPECT_DOUBLE_EQ(r.copyFraction, 0.0);
    EXPECT_GT(r.genSeconds.back(), 0.0);
    EXPECT_LT(r.genSeconds.back(), 0.05);
}

TEST(GpuInferenceTest, GenLatencyGrowsWithContext)
{
    llm::InferenceRequest req;
    req.inputTokens = 64;
    req.outputTokens = 512;
    const auto r =
        runGpuInference(llm::ModelConfig::opt6_7b(), req,
                        GpuSpec::a100_40g(), GpuCalibration{}, 1);
    // KV cache grows, so later tokens are slower.
    EXPECT_GT(r.genSeconds.back(), r.genSeconds.front());
}

TEST(GpuInferenceTest, PowerWithinDeviceEnvelope)
{
    llm::InferenceRequest req;
    req.inputTokens = 64;
    req.outputTokens = 64;
    const auto spec = GpuSpec::a100_40g();
    for (const auto &m : {llm::ModelConfig::opt1_3b(),
                          llm::ModelConfig::opt13b()}) {
        const auto r =
            runGpuInference(m, req, spec, GpuCalibration{}, 1);
        EXPECT_GE(r.avgPowerW, spec.idlePowerW);
        EXPECT_LE(r.avgPowerW, spec.tdpW);
    }
}

TEST(GpuInferenceTest, RejectsZeroDevices)
{
    setLogLevel(LogLevel::Silent);
    llm::InferenceRequest req;
    EXPECT_THROW(runGpuInference(llm::ModelConfig::opt13b(), req,
                                 GpuSpec::a100_40g(),
                                 GpuCalibration{}, 0),
                 FatalError);
    setLogLevel(LogLevel::Info);
}

/** Property sweep: more GPUs never makes a fitting model slower. */
class TpSweepTest : public ::testing::TestWithParam<int>
{};

TEST_P(TpSweepTest, ThroughputScalesReasonably)
{
    const int tp = GetParam();
    llm::InferenceRequest req;
    req.inputTokens = 64;
    req.outputTokens = 16;
    const auto m = llm::ModelConfig::opt66b();
    const auto base = runGpuInference(m, req, GpuSpec::a100_40g(),
                                      GpuCalibration{}, 8);
    const auto r = runGpuInference(m, req, GpuSpec::a100_40g(),
                                   GpuCalibration{}, tp);
    if (tp >= 8) {
        // More devices than the baseline: no worse than 8 with slack
        // for extra all-reduce latency.
        EXPECT_LT(r.totalSeconds, base.totalSeconds * 1.3);
    } else {
        // Fewer devices must offload or run slower.
        EXPECT_GT(r.totalSeconds, base.totalSeconds * 0.9);
    }
}

INSTANTIATE_TEST_SUITE_P(Degrees, TpSweepTest,
                         ::testing::Values(4, 8, 16));

} // namespace
} // namespace gpu
} // namespace cxlpnm
