/**
 * @file
 * LLM substrate tests: model parameter accounting against published
 * sizes, workload op-graph structure and totals, synthetic weight
 * determinism, and reference-model sanity (KV-cache consistency:
 * incremental decode == recomputing from scratch).
 */

#include <gtest/gtest.h>

#include "llm/model_config.hh"
#include "llm/reference_model.hh"
#include "llm/synthetic.hh"
#include "llm/workload.hh"
#include "numeric/linalg.hh"
#include "sim/logging.hh"

namespace cxlpnm
{
namespace llm
{
namespace
{

TEST(ModelConfigTest, ParameterCountsMatchPublishedSizes)
{
    // Within 3% of the nominal size (names round the true counts).
    EXPECT_NEAR(ModelConfig::opt125m().paramCount() / 1e6, 125, 35);
    EXPECT_NEAR(ModelConfig::opt1_3b().paramCount() / 1e9, 1.3, 0.05);
    EXPECT_NEAR(ModelConfig::opt2_7b().paramCount() / 1e9, 2.7, 0.1);
    EXPECT_NEAR(ModelConfig::opt6_7b().paramCount() / 1e9, 6.7, 0.2);
    EXPECT_NEAR(ModelConfig::opt13b().paramCount() / 1e9, 13.0, 0.3);
    EXPECT_NEAR(ModelConfig::opt30b().paramCount() / 1e9, 30.0, 0.9);
    EXPECT_NEAR(ModelConfig::opt66b().paramCount() / 1e9, 66.0, 1.5);
    EXPECT_NEAR(ModelConfig::opt175b().paramCount() / 1e9, 175.0, 4.0);
}

TEST(ModelConfigTest, Gpt35MemoryFootprintMatchesPaper)
{
    // §I: GPT-3.5 (175B) requires 326 GB for FP16 parameters. The
    // paper's figure is binary (175e9 * 2 B / 2^30 = 326), so compare
    // in GiB.
    EXPECT_NEAR(static_cast<double>(ModelConfig::gpt3().weightBytes()) /
                    GiB,
                326.0, 10.0);
}

TEST(ModelConfigTest, WeightBytesVsGpuCapacity)
{
    // The memory-capacity story of §VIII: 13B fits a 40 GB GPU,
    // 30B/66B do not.
    EXPECT_LT(ModelConfig::opt13b().weightBytes(), 40.0 * GB);
    EXPECT_GT(ModelConfig::opt30b().weightBytes(), 40.0 * GB);
    EXPECT_GT(ModelConfig::opt66b().weightBytes(), 40.0 * GB);
    // And a single 512 GB CXL-PNM device holds all of them.
    EXPECT_LT(ModelConfig::opt66b().weightBytes(), 512.0 * GB);
}

TEST(ModelConfigTest, HeadDimIsMultipleOf128ForBigModels)
{
    // §V-C justifies tile dim 128 because head dims are multiples of
    // 128 in large models.
    EXPECT_EQ(ModelConfig::opt13b().headDim(), 128u);
    EXPECT_EQ(ModelConfig::opt66b().headDim(), 128u);
    EXPECT_EQ(ModelConfig::opt175b().headDim(), 128u);
}

TEST(ModelConfigTest, KvCacheBytesFormula)
{
    auto cfg = ModelConfig::opt13b();
    // 2 (K,V) * tokens * d * 2 B * layers.
    EXPECT_EQ(cfg.kvCacheBytes(1),
              2ull * 5120 * 2 * 40);
    EXPECT_EQ(cfg.kvCacheBytes(1088), 1088 * cfg.kvCacheBytes(1));
}

TEST(ModelConfigTest, ByNameAndFamily)
{
    EXPECT_EQ(ModelConfig::byName("opt-66b").dModel, 9216u);
    EXPECT_EQ(ModelConfig::byName("tiny").numLayers, 2u);
    EXPECT_EQ(ModelConfig::optFamily().size(), 9u);
    setLogLevel(LogLevel::Silent);
    EXPECT_THROW(ModelConfig::byName("llama-7b"), FatalError);
    setLogLevel(LogLevel::Info);
}

TEST(ModelConfigTest, Gpt35InferenceFlopsMatchPaper)
{
    // §I: GPT-3.5 needs ~1,425 TFLOPs for L_in = L_out = 2048... i.e.
    // a full 2048-in/2048-out inference. Our op-graph accounting should
    // land in the same ballpark (the paper's number is approximate).
    auto cfg = ModelConfig::gpt3();
    cfg.maxPositions = 4096;
    InferenceRequest req;
    req.inputTokens = 2048;
    req.outputTokens = 2048;
    const double tflops = requestFlops(cfg, req) / 1e12;
    EXPECT_GT(tflops, 1000.0);
    EXPECT_LT(tflops, 2200.0);
}

TEST(WorkloadTest, SumStageIsGemmShaped)
{
    auto ops = sumStageOps(ModelConfig::opt13b(), 64);
    auto stats = summarize(ops);
    EXPECT_GT(stats.gemmOps, 0u);
    EXPECT_EQ(stats.gemvOps, 1u); // only the single-row LM head
    // Sum stage streams every layer's weights once plus the LM head.
    const auto cfg = ModelConfig::opt13b();
    EXPECT_GT(stats.weightBytes,
              cfg.numLayers * cfg.layerWeightBytes());
    // No KV streaming in the sum stage (cache is built, not read).
    EXPECT_EQ(stats.kvBytes, 0u);
}

TEST(WorkloadTest, GenStageIsGemvShapedAndStreamsAllWeights)
{
    const auto cfg = ModelConfig::opt13b();
    auto ops = genStageOps(cfg, 512);
    auto stats = summarize(ops);
    // Every weight matmul is a GEMV (m == 1): QKV, proj, fc1, fc2 per
    // layer + LM head.
    EXPECT_EQ(stats.gemvOps, 4u * cfg.numLayers + 1u);
    // Weight traffic ~ all layer weights + tied head.
    const double expected = cfg.numLayers * cfg.layerWeightBytes() +
        2.0 * cfg.vocabSize * cfg.dModel;
    EXPECT_NEAR(static_cast<double>(stats.weightBytes), expected,
                expected * 0.01);
    // KV traffic: K and V of 512 tokens per layer.
    EXPECT_EQ(stats.kvBytes, cfg.kvCacheBytes(512));
}

TEST(WorkloadTest, GenWeightTrafficIndependentOfContext)
{
    const auto cfg = ModelConfig::opt6_7b();
    const auto a = summarize(genStageOps(cfg, 65));
    const auto b = summarize(genStageOps(cfg, 1024));
    EXPECT_EQ(a.weightBytes, b.weightBytes);
    EXPECT_LT(a.kvBytes, b.kvBytes);
}

TEST(WorkloadTest, RequestAggregates)
{
    const auto cfg = ModelConfig::tiny();
    InferenceRequest req;
    req.inputTokens = 4;
    req.outputTokens = 3;
    // Weight traffic: sum stage + 3 gen stages, each streaming all
    // weights once.
    const auto sum_w = summarize(sumStageOps(cfg, 4)).weightBytes;
    const auto gen_w = summarize(genStageOps(cfg, 5)).weightBytes;
    EXPECT_EQ(requestWeightTraffic(cfg, req), sum_w + 3 * gen_w);
    EXPECT_GT(requestFlops(cfg, req), 0.0);
}

TEST(WorkloadTest, OpKindNamesAreStable)
{
    EXPECT_STREQ(opKindName(OpKind::Qkv), "QKV");
    EXPECT_STREQ(opKindName(OpKind::AttnSoftmax), "AttnSoftmax");
    EXPECT_STREQ(opKindName(OpKind::LmHead), "LMHead");
}

TEST(SyntheticTest, WeightsAreDeterministicAndSlotDependent)
{
    const auto cfg = ModelConfig::tiny();
    auto a = makeWeight(cfg, 7, 0, WeightSlot::WQkv);
    auto b = makeWeight(cfg, 7, 0, WeightSlot::WQkv);
    EXPECT_EQ(maxAbsDiff(a, b), 0.0);

    auto c = makeWeight(cfg, 7, 1, WeightSlot::WQkv);
    EXPECT_GT(maxAbsDiff(a, c), 0.0);
    auto d = makeWeight(cfg, 8, 0, WeightSlot::WQkv);
    EXPECT_GT(maxAbsDiff(a, d), 0.0);
}

TEST(SyntheticTest, ShapesMatchSpec)
{
    const auto cfg = ModelConfig::tiny();
    std::uint32_t r, c;
    weightShape(cfg, WeightSlot::WFc1, r, c);
    EXPECT_EQ(r, 64u);
    EXPECT_EQ(c, 256u);
    weightShape(cfg, WeightSlot::TokEmbed, r, c);
    EXPECT_EQ(r, 256u);
    EXPECT_EQ(c, 64u);
    auto g = makeWeight(cfg, 1, -1, WeightSlot::LnfGamma);
    EXPECT_EQ(g.rows(), 1u);
    EXPECT_EQ(g.cols(), 64u);
    // Gammas are centred on 1.
    double mean = 0.0;
    for (std::size_t i = 0; i < g.size(); ++i)
        mean += g.data()[i].toFloat();
    EXPECT_NEAR(mean / g.size(), 1.0, 0.02);
}

TEST(ReferenceModelTest, PrefillProducesFiniteLogits)
{
    ReferenceModel m(ModelConfig::tiny(), 42);
    auto logits = m.prefill({1, 2, 3, 4});
    EXPECT_EQ(logits.cols(), 256u);
    for (std::size_t j = 0; j < logits.cols(); ++j)
        EXPECT_TRUE(std::isfinite(logits.at(0, j)));
    EXPECT_EQ(m.contextLength(), 4u);
}

TEST(ReferenceModelTest, IncrementalDecodeMatchesFullRecompute)
{
    // The KV-cache path must be exact: decoding token-by-token gives
    // the same logits as prefilling the whole sequence at once.
    const auto cfg = ModelConfig::tiny();
    ReferenceModel inc(cfg, 42);
    auto l1 = inc.prefill({5, 6, 7});
    auto l2 = inc.decodeStep(8);
    auto l3 = inc.decodeStep(9);

    ReferenceModel full(cfg, 42);
    auto lf = full.prefill({5, 6, 7, 8, 9});
    EXPECT_LT(maxAbsDiff(l3, lf), 1e-9);
    (void)l1;
    (void)l2;
}

TEST(ReferenceModelTest, GreedyGenerationIsDeterministic)
{
    const auto cfg = ModelConfig::tiny();
    ReferenceModel a(cfg, 123), b(cfg, 123);
    auto ta = a.greedyGenerate({10, 20, 30}, 8);
    auto tb = b.greedyGenerate({10, 20, 30}, 8);
    EXPECT_EQ(ta, tb);
    EXPECT_EQ(ta.size(), 8u);

    // A different seed gives a different continuation (weights differ).
    ReferenceModel c(cfg, 124);
    auto tc = c.greedyGenerate({10, 20, 30}, 8);
    EXPECT_NE(ta, tc);
}

TEST(ReferenceModelTest, RejectsBadUsage)
{
    setLogLevel(LogLevel::Silent);
    ReferenceModel m(ModelConfig::tiny(), 1);
    EXPECT_THROW(m.decodeStep(1), FatalError); // before prefill
    EXPECT_THROW(m.prefill({}), FatalError);
    EXPECT_THROW(m.prefill({999}), FatalError); // vocab overflow
    setLogLevel(LogLevel::Info);
}

/** Parameterized: gen-stage weight traffic tracks model size. */
class FamilyTrafficTest
    : public ::testing::TestWithParam<int>
{};

TEST_P(FamilyTrafficTest, GenTrafficApproxWeightBytes)
{
    const auto fam = ModelConfig::optFamily();
    const auto &cfg = fam[GetParam()];
    const auto stats = summarize(genStageOps(cfg, 128));
    // One gen stage streams ~every parameter once (embeddings are
    // gathered, not streamed, so allow a band).
    EXPECT_GT(static_cast<double>(stats.weightBytes),
              0.85 * cfg.weightBytes());
    EXPECT_LT(static_cast<double>(stats.weightBytes),
              1.05 * cfg.weightBytes());
}

INSTANTIATE_TEST_SUITE_P(OptFamily, FamilyTrafficTest,
                         ::testing::Range(2, 9)); // 1.3b..175b

} // namespace
} // namespace llm
} // namespace cxlpnm
