/**
 * @file
 * Serving-subsystem tests: trace generation, KV-pool admission
 * gating, the continuous-batching scheduler (including the acceptance
 * properties: admission never exceeds KV capacity, continuous
 * batching beats one-request-at-a-time at saturation, determinism
 * under a fixed seed), the appliance dispatcher, and the calibrated
 * cost models on the tiny model.
 */

#include <gtest/gtest.h>

#include "gpu/inference.hh"
#include "serve/cost_model.hh"
#include "serve/dispatcher.hh"
#include "serve/kv_pool.hh"
#include "serve/metrics.hh"
#include "serve/request_generator.hh"
#include "serve/scheduler.hh"
#include "sim/logging.hh"

namespace cxlpnm
{
namespace serve
{
namespace
{

/** Hand-built cost model: scheduler logic tests need no event sim. */
BatchCostModel
syntheticCost()
{
    BatchCostModel c;
    c.sumCurve.addSample(1, 1.0e-3);
    c.sumCurve.addSample(1024, 10.0e-3);
    c.genWeightSeconds = 10.0e-3; // dominated by weight streaming
    c.genKvPerTokenSeconds = 2.0e-6;
    c.perTokenComputeSeconds = 0.2e-3;
    return c;
}

TraceConfig
saturatingTrace(std::size_t n, std::uint64_t in, std::uint64_t out)
{
    TraceConfig t;
    t.arrivals = ArrivalProcess::Fixed;
    t.requestsPerSec = 1.0e6; // everything arrives (almost) at once
    t.numRequests = n;
    t.input = LengthDistribution::fixed(in);
    t.output = LengthDistribution::fixed(out);
    return t;
}

ServeReport
runTrace(const TraceConfig &trace, const BatchCostModel &cost,
         const llm::ModelConfig &model, std::uint64_t kv_capacity,
         const SchedulerConfig &sched, const MetricsConfig &mcfg = {})
{
    ServeMetrics metrics(nullptr, "serve", mcfg);
    BatchScheduler s(model, cost, kv_capacity, sched, metrics);
    RequestGenerator gen(trace);
    while (!gen.exhausted())
        s.submit(gen.next());
    s.drain();
    return metrics.report(s.clockSeconds());
}

// ---- request generation ----

TEST(RequestGeneratorTest, ArrivalsAreMonotoneAndSeeded)
{
    TraceConfig cfg;
    cfg.requestsPerSec = 25.0;
    cfg.numRequests = 200;
    cfg.input = LengthDistribution::uniform(16, 128);
    cfg.output = LengthDistribution::bimodal(32, 512, 0.7);
    cfg.seed = 42;

    const auto a = RequestGenerator::generate(cfg);
    const auto b = RequestGenerator::generate(cfg);
    ASSERT_EQ(a.size(), 200u);
    EXPECT_DOUBLE_EQ(a.front().arrivalSeconds, 0.0);
    double prev = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_GE(a[i].arrivalSeconds, prev);
        prev = a[i].arrivalSeconds;
        EXPECT_GE(a[i].inputTokens, 16u);
        EXPECT_LE(a[i].inputTokens, 128u);
        EXPECT_TRUE(a[i].outputTokens == 32 || a[i].outputTokens == 512);
        // Same seed: bit-identical trace.
        EXPECT_DOUBLE_EQ(a[i].arrivalSeconds, b[i].arrivalSeconds);
        EXPECT_EQ(a[i].inputTokens, b[i].inputTokens);
        EXPECT_EQ(a[i].outputTokens, b[i].outputTokens);
    }

    cfg.seed = 43;
    const auto c = RequestGenerator::generate(cfg);
    EXPECT_NE(a.back().arrivalSeconds, c.back().arrivalSeconds);
}

TEST(RequestGeneratorTest, FixedProcessPacesExactly)
{
    TraceConfig cfg;
    cfg.arrivals = ArrivalProcess::Fixed;
    cfg.requestsPerSec = 4.0;
    cfg.numRequests = 5;
    const auto t = RequestGenerator::generate(cfg);
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_NEAR(t[i].arrivalSeconds, 0.25 * i, 1e-12);
}

TEST(RequestGeneratorTest, PoissonMeanGapTracksRate)
{
    TraceConfig cfg;
    cfg.requestsPerSec = 50.0;
    cfg.numRequests = 4000;
    const auto t = RequestGenerator::generate(cfg);
    const double mean_gap =
        t.back().arrivalSeconds / (cfg.numRequests - 1);
    EXPECT_NEAR(mean_gap, 1.0 / 50.0, 0.002);
}

// ---- KV pool ----

TEST(KvPoolTest, GatesReservationsAndTracksPeak)
{
    KvCachePool pool(1000);
    EXPECT_TRUE(pool.canReserve(1000));
    pool.reserve(600);
    EXPECT_FALSE(pool.canReserve(401));
    pool.reserve(400);
    EXPECT_EQ(pool.reservedBytes(), 1000u);
    EXPECT_DOUBLE_EQ(pool.utilization(), 1.0);
    pool.release(700);
    EXPECT_EQ(pool.reservedBytes(), 300u);
    EXPECT_EQ(pool.peakReservedBytes(), 1000u);
    EXPECT_DOUBLE_EQ(pool.peakUtilization(), 1.0);

    setLogLevel(LogLevel::Silent);
    EXPECT_THROW(pool.reserve(701), FatalError);
    EXPECT_THROW(pool.release(301), FatalError);
    EXPECT_THROW(KvCachePool(0), FatalError);
    setLogLevel(LogLevel::Info);
}

// ---- cost model pieces ----

TEST(CostCurveTest, InterpolatesAndExtrapolates)
{
    CostCurve c;
    c.addSample(10, 1.0);
    c.addSample(20, 2.0);
    EXPECT_DOUBLE_EQ(c.at(15), 1.5);
    EXPECT_DOUBLE_EQ(c.at(10), 1.0);
    EXPECT_DOUBLE_EQ(c.at(30), 3.0); // extrapolate up
    EXPECT_DOUBLE_EQ(c.at(5), 0.5);  // extrapolate down
    EXPECT_DOUBLE_EQ(c.at(0), 0.0);  // clamped at zero

    setLogLevel(LogLevel::Silent);
    EXPECT_THROW(c.addSample(20, 3.0), FatalError);
    EXPECT_THROW(CostCurve{}.at(1), FatalError);
    setLogLevel(LogLevel::Info);
}

TEST(BatchCostModelTest, BatchedDecodeSharesTheWeightStream)
{
    const auto cost = syntheticCost();
    const double one = cost.decodeSeconds(256);
    const double two = cost.decodeIterationSeconds({256, 256});
    EXPECT_GT(two, one);        // more KV traffic
    EXPECT_LT(two, 2.0 * one);  // but the weights stream once
}

TEST(BatchCostModelTest, ComputeFloorBoundsLargeBatches)
{
    auto cost = syntheticCost();
    cost.perTokenComputeSeconds = 1.0e-3;
    const std::vector<std::uint64_t> batch(64, 8);
    EXPECT_GE(cost.decodeIterationSeconds(batch), 64 * 1.0e-3);
}

TEST(BatchCostModelTest, ModelParallelCommAddsPerIterationCost)
{
    auto cost = syntheticCost();
    const auto model = llm::ModelConfig::opt2_7b();
    const double before = cost.decodeSeconds(128);
    addModelParallelComm(cost, model, cxl::CxlLinkParams{},
                         core::D2dModel{}, 8);
    EXPECT_GT(cost.decodeSeconds(128), before);
    EXPECT_GT(cost.prefillSeconds(64), syntheticCost().prefillSeconds(64));
}

// ---- scheduler: the acceptance properties ----

TEST(SchedulerTest, AdmissionNeverExceedsKvCapacity)
{
    const auto model = llm::ModelConfig::tiny();
    ServeRequest probe;
    probe.inputTokens = 8;
    probe.outputTokens = 16;
    // Room for three concurrent requests, not the whole trace.
    const std::uint64_t capacity = 3 * probe.worstCaseKvBytes(model);

    SchedulerConfig sched;
    sched.maxBatch = 64; // KV, not the batch cap, must be the gate
    const auto report = runTrace(saturatingTrace(40, 8, 16),
                                 syntheticCost(), model, capacity,
                                 sched);

    EXPECT_EQ(report.completed, 40u);
    EXPECT_EQ(report.rejected, 0u);
    EXPECT_GT(report.meanQueueDepth, 0.0); // admission throttled
    EXPECT_LE(report.peakKvUtilization, 1.0);
    // Never more than the three that fit.
    EXPECT_LE(report.meanBatchSize, 3.0);
}

TEST(SchedulerTest, PoolPeakStaysWithinCapacity)
{
    const auto model = llm::ModelConfig::tiny();
    ServeRequest probe;
    probe.inputTokens = 8;
    probe.outputTokens = 16;
    const std::uint64_t capacity =
        3 * probe.worstCaseKvBytes(model) + 1;

    ServeMetrics metrics(nullptr, "serve");
    BatchScheduler s(model, syntheticCost(), capacity, {}, metrics);
    RequestGenerator gen(saturatingTrace(25, 8, 16));
    while (!gen.exhausted())
        s.submit(gen.next());
    s.drain();
    EXPECT_LE(s.kvPool().peakReservedBytes(), capacity);
    EXPECT_GT(s.kvPool().peakReservedBytes(), 0u);
    EXPECT_EQ(s.kvPool().reservedBytes(), 0u); // all released
    EXPECT_EQ(s.finished().size(), 25u);
}

TEST(SchedulerTest, OversizedRequestsAreRejectedNotWedged)
{
    const auto model = llm::ModelConfig::tiny(); // maxPositions = 64
    ServeMetrics metrics(nullptr, "serve");
    BatchScheduler s(model, syntheticCost(), 1ull << 30, {}, metrics);

    ServeRequest too_long;
    too_long.inputTokens = 60;
    too_long.outputTokens = 60; // 120 > 64 positions
    s.submit(too_long);

    ServeRequest zero_out;
    zero_out.inputTokens = 8;
    zero_out.outputTokens = 0;
    s.submit(zero_out);

    ServeRequest ok;
    ok.inputTokens = 8;
    ok.outputTokens = 8;
    s.submit(ok);

    s.drain();
    EXPECT_EQ(s.rejected().size(), 2u);
    EXPECT_EQ(s.finished().size(), 1u);
    EXPECT_EQ(metrics.rejected(), 2u);
}

TEST(SchedulerTest, ContinuousBatchingBeatsSerialAtSaturation)
{
    const auto model = llm::ModelConfig::opt13b();
    const auto trace = saturatingTrace(32, 64, 96);
    const std::uint64_t capacity = 64ull << 30;

    SchedulerConfig serial;
    serial.continuousBatching = false;
    SchedulerConfig continuous;
    continuous.maxBatch = 16;

    const auto s = runTrace(trace, syntheticCost(), model, capacity,
                            serial);
    const auto c = runTrace(trace, syntheticCost(), model, capacity,
                            continuous);

    EXPECT_EQ(s.completed, 32u);
    EXPECT_EQ(c.completed, 32u);
    // The whole point of the subsystem: strictly higher throughput.
    EXPECT_GT(c.throughputTokensPerSec, s.throughputTokensPerSec);
    EXPECT_LT(c.makespanSeconds, s.makespanSeconds);
    EXPECT_GT(c.meanBatchSize, 1.0);
    EXPECT_NEAR(s.meanBatchSize, 1.0, 1e-9);
}

TEST(SchedulerTest, MetricsAreDeterministicUnderAFixedSeed)
{
    const auto model = llm::ModelConfig::opt13b();
    TraceConfig trace;
    trace.requestsPerSec = 30.0;
    trace.numRequests = 120;
    trace.input = LengthDistribution::uniform(16, 128);
    trace.output = LengthDistribution::uniform(32, 256);
    trace.seed = 7;

    MetricsConfig mcfg;
    mcfg.sloTokenSeconds = 0.05;
    auto run = [&] {
        return runTrace(trace, syntheticCost(), model, 64ull << 30,
                        SchedulerConfig{}, mcfg);
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.tokensGenerated, b.tokensGenerated);
    EXPECT_DOUBLE_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_DOUBLE_EQ(a.throughputTokensPerSec,
                     b.throughputTokensPerSec);
    EXPECT_DOUBLE_EQ(a.tokenLatencyP95, b.tokenLatencyP95);
    EXPECT_DOUBLE_EQ(a.ttftP95, b.ttftP95);
    EXPECT_DOUBLE_EQ(a.meanBatchSize, b.meanBatchSize);
    EXPECT_DOUBLE_EQ(a.peakKvUtilization, b.peakKvUtilization);
    EXPECT_DOUBLE_EQ(a.goodputTokensPerSec, b.goodputTokensPerSec);

    trace.seed = 8;
    const auto c = runTrace(trace, syntheticCost(), model, 64ull << 30,
                            SchedulerConfig{}, mcfg);
    EXPECT_NE(a.makespanSeconds, c.makespanSeconds);
}

TEST(SchedulerTest, BlockedHeadNeverLetsLaterRequestsJumpTheQueue)
{
    // Strict-FCFS regression: while the queue head does not fit the
    // KV pool, no later request may be admitted - even one small
    // enough to fit immediately. The small request's first token must
    // therefore wait for the blocked head's.
    const auto model = llm::ModelConfig::tiny();
    ServeRequest small;
    small.inputTokens = 8;
    small.outputTokens = 4;
    ServeRequest big;
    big.inputTokens = 8;
    big.outputTokens = 32;
    // Fits the running `big` plus `small`, but not two `big`s.
    const std::uint64_t capacity = big.worstCaseKvBytes(model) +
        small.worstCaseKvBytes(model);

    ServeMetrics metrics(nullptr, "serve");
    BatchScheduler s(model, syntheticCost(), capacity, {}, metrics);
    ServeRequest r0 = big;    // admitted at t=0
    r0.id = 0;
    ServeRequest r1 = big;    // blocked behind r0
    r1.id = 1;
    ServeRequest r2 = small;  // would fit, must still wait for r1
    r2.id = 2;
    s.submit(r0);
    s.submit(r1);
    s.submit(r2);
    s.drain();

    ASSERT_EQ(s.finished().size(), 3u);
    const ServeRequest *req[3] = {nullptr, nullptr, nullptr};
    for (const auto &r : s.finished())
        req[r.id] = &r;
    // r1 was only admissible once r0 finished...
    EXPECT_GE(req[1]->admitSeconds,
              req[0]->finishSeconds - 1e-12);
    // ...and r2, though it fit all along, never overtook r1.
    EXPECT_GE(req[2]->admitSeconds, req[1]->admitSeconds);
    EXPECT_GE(req[2]->firstTokenSeconds, req[1]->firstTokenSeconds);
}

TEST(SchedulerTest, TtftIncludesQueueingDelay)
{
    const auto model = llm::ModelConfig::tiny();
    ServeMetrics metrics(nullptr, "serve");
    SchedulerConfig serial;
    serial.continuousBatching = false;
    BatchScheduler s(model, syntheticCost(), 1ull << 30, serial,
                     metrics);

    ServeRequest first;
    first.id = 0;
    first.inputTokens = 8;
    first.outputTokens = 32;
    ServeRequest second = first;
    second.id = 1;
    s.submit(first);
    s.submit(second);
    s.drain();

    ASSERT_EQ(s.finished().size(), 2u);
    const auto &a = s.finished()[0];
    const auto &b = s.finished()[1];
    // Second request waited for the first to finish end to end.
    EXPECT_GE(b.ttftSeconds(),
              a.finishSeconds - a.arrivalSeconds - 1e-12);
}

// ---- KV accounting under adversarial fault orderings ----

TEST(KvAccountingTest, FaultAtEveryIterationIndexLeavesNoReservation)
{
    // Sweep the failing iteration across the whole run - including the
    // iterations on which requests join, produce their last token, and
    // retire - and require the pool to balance after every drain. The
    // drain itself panics on leaked reservations, so completing at all
    // is the real assertion.
    for (std::uint64_t n = 0; n < 12; ++n) {
        ServeMetrics metrics(nullptr, "serve");
        SchedulerConfig cfg;
        cfg.ras.maxRequestRetries = 1;
        cfg.ras.degradedCooldownSeconds = 0.05;
        BatchScheduler s(llm::ModelConfig::tiny(), syntheticCost(),
                         1ull << 30, cfg, metrics);
        fault::FaultInjector inj(17);
        inj.arm(fault::FaultSpec::scriptedAccess(
            "grp", fault::FaultKind::IterationFail, n));
        s.attachFaultSite(inj.site("grp"));

        for (std::uint64_t id = 0; id < 4; ++id) {
            ServeRequest r;
            r.id = id;
            r.arrivalSeconds = 0.01 * static_cast<double>(id);
            r.inputTokens = 8;
            r.outputTokens = 2 + id;
            s.submit(r);
        }
        s.drain();
        EXPECT_EQ(s.kvPool().reservedBytes(), 0u) << "fault at " << n;
        EXPECT_EQ(s.finished().size() + s.failed().size() +
                      s.rejected().size(),
                  4u)
            << "fault at " << n;
    }
}

TEST(KvAccountingTest, RetryExhaustionUnderTightPoolBalances)
{
    // Every iteration fails, so every request walks the full requeue ->
    // readmit -> fail path; the pool is sized for two requests, so the
    // failures interleave with fresh admissions from the queue.
    ServeRequest probe;
    probe.inputTokens = 8;
    probe.outputTokens = 4;
    const auto model = llm::ModelConfig::tiny();
    const std::uint64_t capacity = 2 * probe.worstCaseKvBytes(model);

    ServeMetrics metrics(nullptr, "serve");
    SchedulerConfig cfg;
    cfg.ras.maxRequestRetries = 2;
    cfg.ras.degradedCooldownSeconds = 0.01;
    BatchScheduler s(model, syntheticCost(), capacity, cfg, metrics);
    fault::FaultInjector inj(23);
    inj.arm(fault::FaultSpec::probabilistic(
        "grp", fault::FaultKind::IterationFail, 1.0));
    s.attachFaultSite(inj.site("grp"));

    for (std::uint64_t id = 0; id < 6; ++id) {
        ServeRequest r = probe;
        r.id = id;
        s.submit(r);
    }
    s.drain();
    EXPECT_EQ(s.kvPool().reservedBytes(), 0u);
    EXPECT_EQ(s.failed().size(), 6u);
    EXPECT_EQ(s.finished().size(), 0u);
    for (const auto &r : s.failed())
        EXPECT_EQ(r.retries, 3u); // initial + 2 retries, all lost
}

TEST(KvAccountingTest, IntermittentFaultsNeverLeakAcrossSeeds)
{
    const auto model = llm::ModelConfig::tiny();
    ServeRequest probe;
    probe.inputTokens = 8;
    probe.outputTokens = 6;
    const std::uint64_t capacity = 3 * probe.worstCaseKvBytes(model);

    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        ServeMetrics metrics(nullptr, "serve");
        SchedulerConfig cfg;
        cfg.ras.maxRequestRetries = 1;
        cfg.ras.degradedCooldownSeconds = 0.02;
        BatchScheduler s(model, syntheticCost(), capacity, cfg,
                         metrics);
        fault::FaultInjector inj(seed);
        inj.arm(fault::FaultSpec::probabilistic(
            "grp", fault::FaultKind::IterationFail, 0.4));
        s.attachFaultSite(inj.site("grp"));

        RequestGenerator gen(saturatingTrace(12, 8, 6));
        while (!gen.exhausted())
            s.submit(gen.next());
        s.drain();
        EXPECT_EQ(s.kvPool().reservedBytes(), 0u) << "seed " << seed;
        EXPECT_EQ(s.finished().size() + s.failed().size(), 12u)
            << "seed " << seed;
    }
}

// ---- SLO edge classification ----

TEST(MetricsTest, DeadlineExactlyMetCountsTowardGoodput)
{
    // A mean per-token latency exactly equal to the deadline meets the
    // SLO (<=, not <). Use binary-exact values so "exactly equal" is
    // not at the mercy of decimal rounding.
    MetricsConfig mcfg;
    mcfg.sloTokenSeconds = 0.125;
    ServeMetrics metrics(nullptr, "serve", mcfg);

    ServeRequest r;
    r.id = 0;
    r.outputTokens = 3;
    r.state = RequestState::Finished;
    r.arrivalSeconds = 0.0;
    r.admitSeconds = 0.0;
    r.firstTokenSeconds = 0.0;
    r.finishSeconds = 0.25; // two gaps of exactly 0.125 s
    metrics.finishRequest(r);

    const auto rep = metrics.report(1.0);
    EXPECT_EQ(rep.completed, 1u);
    EXPECT_DOUBLE_EQ(rep.sloFraction, 1.0);
    EXPECT_GT(rep.goodputTokensPerSec, 0.0);

    // A hair past the deadline misses it.
    ServeMetrics strict(nullptr, "serve2", mcfg);
    r.finishSeconds = 0.25 * (1.0 + 1e-12);
    strict.finishRequest(r);
    EXPECT_DOUBLE_EQ(strict.report(1.0).sloFraction, 0.0);
}

TEST(MetricsTest, ChunkedTtftStampsAtLastChunkAndEqualDeadlineIsMet)
{
    // Chunked prefill defers the first token to the iteration on which
    // the LAST chunk completes: a 32-token prompt at a 16-token budget
    // takes exactly two chunk iterations, the second priced with the
    // first chunk's tokens already resident. TTFT is the exact sum of
    // the two iteration costs - not the first chunk's, not a decode
    // step later.
    const auto model = llm::ModelConfig::tiny();
    const auto cost = syntheticCost();
    SchedulerConfig sched;
    sched.chunkTokens = 16;
    const double expected =
        cost.prefillSeconds(16, 0) + cost.prefillSeconds(32, 16);

    // A TTFT deadline exactly equal to the stamp meets the SLO (<=,
    // not <) - the TTFT twin of the per-token equality pin above.
    MetricsConfig mcfg;
    mcfg.sloTtftSeconds = expected;
    ServeMetrics metrics(nullptr, "serve", mcfg);
    BatchScheduler s(model, cost, 1ull << 30, sched, metrics);
    ServeRequest r;
    r.id = 0;
    r.inputTokens = 32;
    r.outputTokens = 2;
    s.submit(r);
    s.drain();

    ASSERT_EQ(s.finished().size(), 1u);
    EXPECT_DOUBLE_EQ(s.finished()[0].ttftSeconds(), expected);
    const auto rep = metrics.report(s.clockSeconds());
    EXPECT_EQ(rep.completed, 1u);
    EXPECT_EQ(rep.chunkedPrefills, 1u);
    EXPECT_EQ(rep.chunkIterations, 2u);
    EXPECT_DOUBLE_EQ(rep.sloFraction, 1.0);

    // A hair under the deadline misses it.
    MetricsConfig tight = mcfg;
    tight.sloTtftSeconds = expected * (1.0 - 1e-12);
    ServeMetrics strict(nullptr, "serve2", tight);
    BatchScheduler s2(model, cost, 1ull << 30, sched, strict);
    s2.submit(r);
    s2.drain();
    EXPECT_DOUBLE_EQ(strict.report(s2.clockSeconds()).sloFraction,
                     0.0);
}

// ---- dispatcher ----

TEST(DispatcherTest, SpreadsLoadAcrossDataParallelGroups)
{
    const auto model = llm::ModelConfig::opt13b();
    core::ParallelismPlan plan;
    plan.modelParallel = 1;
    plan.dataParallel = 4;

    ServeMetrics metrics(nullptr, "appliance");
    ApplianceDispatcher disp(model, syntheticCost(), plan, 64ull << 30,
                             SchedulerConfig{}, metrics);

    RequestGenerator gen(saturatingTrace(40, 64, 32));
    while (!gen.exhausted())
        disp.submit(gen.next());
    disp.drain();

    std::size_t total = 0;
    for (std::size_t g = 0; g < disp.groupCount(); ++g) {
        EXPECT_FALSE(disp.group(g).finished().empty())
            << "group " << g << " got no work";
        total += disp.group(g).finished().size();
    }
    EXPECT_EQ(total, 40u);
    EXPECT_EQ(metrics.completed(), 40u);

    // Four groups at saturation finish ~4x faster than one.
    ServeMetrics solo_metrics(nullptr, "solo");
    BatchScheduler solo(model, syntheticCost(), 64ull << 30,
                        SchedulerConfig{}, solo_metrics);
    RequestGenerator gen2(saturatingTrace(40, 64, 32));
    while (!gen2.exhausted())
        solo.submit(gen2.next());
    solo.drain();
    EXPECT_LT(disp.clockSeconds(), solo.clockSeconds());
}

// ---- calibrated cost models ----

TEST(CalibrationTest, PnmTinyModelCalibratesAndServes)
{
    const auto model = llm::ModelConfig::tiny();
    core::PnmPlatformConfig pcfg;
    const auto cost = calibratePnmCostModel(model, pcfg, 64);

    EXPECT_GT(cost.genWeightSeconds, 0.0);
    EXPECT_GE(cost.genKvPerTokenSeconds, 0.0);
    EXPECT_GT(cost.prefillSeconds(8), 0.0);
    // Stage hooks are self-consistent: batch-of-one decode matches a
    // direct stage measurement within the linear-fit error.
    const double direct = core::pnmGenStageSeconds(model, pcfg, 32);
    EXPECT_NEAR(cost.decodeSeconds(32), direct, 0.5 * direct);

    const auto report = runTrace(saturatingTrace(12, 8, 8), cost,
                                 model, pnmKvCapacityBytes(model, pcfg),
                                 SchedulerConfig{});
    EXPECT_EQ(report.completed, 12u);
    EXPECT_GT(report.throughputTokensPerSec, 0.0);
}

TEST(CalibrationTest, GpuModelCalibratesFromRoofline)
{
    const auto model = llm::ModelConfig::opt13b();
    const auto spec = gpu::GpuSpec::a100_40g();
    const auto cost =
        calibrateGpuCostModel(model, spec, gpu::GpuCalibration{}, 512);

    EXPECT_GT(cost.genWeightSeconds, 0.0);
    EXPECT_GT(cost.perTokenHostSeconds, 0.0);
    // A batch of one decode should be in the ballpark of the known
    // memory-bound bound: weights / bandwidth.
    const double floor = model.weightBytes() / spec.memBandwidth;
    EXPECT_GT(cost.decodeSeconds(128), floor);

    // OPT-13B leaves ~15 GB of a 40 GB A100 for KV.
    const auto kv = gpuKvCapacityBytes(model, spec);
    EXPECT_LT(kv, spec.memBytes);
    EXPECT_GT(kv, 0u);
    // The PNM device keeps two orders of magnitude more KV headroom.
    const auto pnm_kv =
        pnmKvCapacityBytes(model, core::PnmPlatformConfig{});
    EXPECT_GT(pnm_kv, 10 * kv);
}

TEST(CalibrationTest, GpuAnalyticMatchesKernelSimulation)
{
    // The fitted analytic model must reproduce the roofline kernel
    // simulation it was calibrated from: one request priced as
    // prefill + per-token decode should land within 5% of the
    // end-to-end gpu::runGpuInference latency.
    const auto model = llm::ModelConfig::opt13b();
    const auto spec = gpu::GpuSpec::a100_40g();
    const gpu::GpuCalibration calib{};

    llm::InferenceRequest req;
    req.inputTokens = 64;
    req.outputTokens = 32;

    const auto cost = calibrateGpuCostModel(model, spec, calib,
                                            req.totalTokens());
    double predicted = cost.prefillSeconds(req.inputTokens);
    for (std::uint64_t i = 0; i < req.outputTokens; ++i)
        predicted += cost.decodeSeconds(req.inputTokens + i);

    const auto sim =
        gpu::runGpuInference(model, req, spec, calib, /*devices=*/1);
    ASSERT_GT(sim.totalSeconds, 0.0);
    const double rel =
        std::abs(predicted - sim.totalSeconds) / sim.totalSeconds;
    EXPECT_LE(rel, 0.05)
        << "analytic " << predicted << " s vs simulated "
        << sim.totalSeconds << " s";
}

} // namespace
} // namespace serve
} // namespace cxlpnm
