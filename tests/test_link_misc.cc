/**
 * @file
 * Remaining coverage: link-channel pipelining and congestion, DFX-like
 * accelerator configurations through the timing model, DRAM power
 * decomposition, ECC scrub accounting, and numeric conversions.
 */

#include <gtest/gtest.h>

#include "accel/timing.hh"
#include "cxl/link.hh"
#include "dram/ecc.hh"
#include "dram/power.hh"
#include "numeric/tensor.hh"
#include "sim/logging.hh"

namespace cxlpnm
{
namespace
{

TEST(LinkChannelTest, BackToBackTransfersPipeline)
{
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    cxl::CxlLinkParams p;
    cxl::CxlLink link(eq, &root, "link", p);

    Tick t1 = 0, t2 = 0;
    auto &down = link.channel(cxl::Direction::Downstream);
    down.transfer(1 << 20, [&] { t1 = eq.now(); });
    down.transfer(1 << 20, [&] { t2 = eq.now(); });
    eq.run();

    // Second completion exactly one occupancy later (latency shared).
    const double occ = (1 << 20) / p.usableBytesPerSec();
    EXPECT_NEAR(ticksToSeconds(t2 - t1), occ, occ * 0.01);
    EXPECT_EQ(down.bytesMoved(), 2u << 20);
}

TEST(LinkChannelTest, DrainTickTracksQueuedWork)
{
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    cxl::CxlLink link(eq, &root, "link", cxl::CxlLinkParams{});
    auto &up = link.channel(cxl::Direction::Upstream);
    EXPECT_EQ(up.drainTick(), 0u);
    up.transfer(1 << 24, nullptr);
    EXPECT_GT(up.drainTick(), 0u);
}

TEST(LinkChannelTest, RejectsDegenerateUse)
{
    setLogLevel(LogLevel::Silent);
    EventQueue eq;
    stats::StatGroup root(nullptr, "");
    cxl::CxlLink link(eq, &root, "link", cxl::CxlLinkParams{});
    EXPECT_THROW(link.channel(cxl::Direction::Downstream)
                     .transfer(0, nullptr),
                 PanicError);
    setLogLevel(LogLevel::Info);
}

TEST(DfxConfigTest, OriginalDfxGeometryThroughTimingModel)
{
    // The paper's baseline (§V-C): DFX has adder trees only, tile
    // dimension 64. Expressed as an AccelConfig, the timing model shows
    // why the enhancements matter.
    accel::AccelConfig dfx;
    dfx.tileDim = 64;
    dfx.peRows = 0; // no PE array
    dfx.peCols = 0;

    accel::AccelConfig pnm; // the paper's platform

    // GEMV: tile 64 halves the per-cycle absorb rate.
    isa::Instruction mv;
    mv.op = isa::Opcode::MpuMv;
    mv.m = 20480;
    mv.n = 5120;
    EXPECT_NEAR(static_cast<double>(
                    accel::timing::computeCycles(mv, dfx).value()),
                2.0 * accel::timing::computeCycles(mv, pnm).value(),
                64.0);

    // Peak rates per Table II derivations.
    EXPECT_NEAR(pnm.adderTreePeakFlops() / dfx.adderTreePeakFlops(),
                2.0, 1e-9);
    EXPECT_DOUBLE_EQ(dfx.peArrayPeakFlops(), 0.0);
}

TEST(DramPowerTest, BackgroundDominatesWhenIdle)
{
    dram::DramPowerModel p(dram::DramTechSpec::lpddr5x());
    // A second with no traffic: pure background power.
    const double idle = p.energyJ(0, tickPerSec);
    EXPECT_NEAR(idle, p.backgroundPowerW(), 1e-9);
    // Streaming adds the pJ/bit term on top.
    EXPECT_GT(p.energyJ(1u << 30, tickPerSec), idle);
}

TEST(EccTest, ScrubTaxIsExactlyConfigured)
{
    auto spec = dram::DramTechSpec::lpddr5x();
    dram::EccConfig cfg;
    cfg.inlineEcc = false;
    cfg.scrubbing = true;
    cfg.scrubBandwidthFraction = 0.01;
    dram::EccModel ecc(spec, cfg);
    EXPECT_NEAR(ecc.effectiveBandwidth(1e12), 0.99e12, 1e6);
}

TEST(TensorTest, CastBetweenPrecisions)
{
    Tensor<float> f(2, 2);
    f.at(0, 0) = 1.5f;
    f.at(1, 1) = -2.25f;
    auto d = f.cast<double>();
    EXPECT_DOUBLE_EQ(d.at(0, 0), 1.5);
    auto h = d.cast<Half>();
    EXPECT_FLOAT_EQ(h.at(1, 1).toFloat(), -2.25f);
    // Values beyond half range saturate to inf through the cast.
    Tensor<double> big(1, 1);
    big.at(0, 0) = 1e9;
    EXPECT_TRUE(big.cast<Half>().at(0, 0).isInf());
}

TEST(CyclesTest, ArithmeticAndComparison)
{
    Cycles a(10), b(3);
    EXPECT_EQ((a + b).value(), 13u);
    EXPECT_EQ((a - b).value(), 7u);
    EXPECT_TRUE(b < a);
    a += Cycles(5);
    EXPECT_EQ(a.value(), 15u);
    EXPECT_EQ(Cycles(15), a);
}

TEST(AccelConfigTest, TableTwoDerivations)
{
    accel::AccelConfig c;
    EXPECT_EQ(c.peCount(), 2048);
    EXPECT_EQ(c.adderTreeMultipliers(), 2048);
    EXPECT_EQ(c.adderTreeAdders(), 2032);
    EXPECT_NEAR(c.peArrayPeakFlops(), 4.096e12, 1e9);
    EXPECT_NEAR(c.adderTreePeakFlops(), 4.096e12, 1e9);
}

} // namespace
} // namespace cxlpnm
