/**
 * @file
 * The CXL-PNM device driver (§VI, Fig. 9).
 *
 * Host-side: exposes the CXL.mem region for direct load/store access to
 * model parameters (the DAX-device mapping), and CXL.io register APIs to
 * configure control registers, program the instruction buffer, ring the
 * doorbell and receive completion by MSI-X interrupt (ISR) or by polling
 * the status register.
 *
 * Device-side: a small control-unit register file bound to the
 * accelerator - doorbell decodes the instruction buffer and launches the
 * program; completion raises the interrupt line and sets STATUS.
 */

#ifndef CXLPNM_RUNTIME_DRIVER_HH
#define CXLPNM_RUNTIME_DRIVER_HH

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "accel/accelerator.hh"
#include "cxl/ports.hh"
#include "isa/isa.hh"
#include "sim/fault.hh"
#include "sim/sim_object.hh"
#include "sim/trace.hh"

namespace cxlpnm
{
namespace runtime
{

/** Device register map (CXL.io BAR offsets). */
namespace reg
{
constexpr Addr Ctrl = 0x00;
constexpr Addr Status = 0x08;     // bit0: done
constexpr Addr Doorbell = 0x10;   // write 1 to launch
constexpr Addr InstrBase = 0x18;  // instruction buffer window
/** Ten 32-bit model-parameter registers (§VI step 1). */
constexpr Addr Param0 = 0x40;
constexpr int paramCount = 10;
constexpr Addr InstrBuffer = 0x1000;
} // namespace reg

/** Completion notification mechanism. */
enum class Completion { Interrupt, Polling };

/**
 * Typed error surfaced by the driver: misuse (execute before a
 * program is loaded) or an unrecoverable device condition after the
 * RAS machinery exhausted its retry/reset budget.
 */
class DeviceError : public std::runtime_error
{
  public:
    enum class Code
    {
        NoProgram,     // execute() before loadProgram()
        Hang,          // watchdog retries and resets all failed
        Uncorrectable, // poisoned data survived every retry
    };

    DeviceError(Code code, const std::string &what)
        : std::runtime_error(what), code_(code)
    {}

    Code code() const { return code_; }

  private:
    Code code_;
};

/** Watchdog / recovery policy for execute(). */
struct WatchdogConfig
{
    /** Initial completion timeout; doubles (backoffFactor) per retry. */
    double timeoutUs = 10000.0;
    double backoffFactor = 2.0;
    /**
     * Ceiling on the backed-off timeout. Without one, timeoutUs *
     * backoffFactor^attempt grows without bound and the double->Tick
     * conversion overflows once the delay passes 2^63 ps (undefined
     * behaviour, then events scheduled in the past). Non-positive
     * values fall back to the built-in ~1 simulated hour cap.
     */
    double maxTimeoutUs = 10e6;
    /** Doorbell retries before escalating to a device reset. */
    int maxRetries = 2;
    /** Device resets (with program reload) before giving up. */
    int maxResets = 1;
};

/** Host driver + device control-unit registers for one CXL-PNM device. */
class PnmDriver : public SimObject
{
  public:
    PnmDriver(EventQueue &eq, stats::StatGroup *parent, std::string name,
              cxl::CxlIoPort &io, cxl::CxlMemPort &mem,
              accel::Accelerator &accel);

    /** Select interrupt (default) or polling completion. */
    void setCompletionMode(Completion mode) { mode_ = mode; }
    void setPollIntervalUs(double us) { pollIntervalUs_ = us; }

    /**
     * Enable the execute() watchdog: a timer armed at every doorbell
     * that, on expiry, retries the doorbell with exponential backoff
     * and, after maxRetries, performs a device reset + program reload.
     * Also turns completion-status checking on: a run that finished
     * with the STATUS error (poison) bit set is retried the same way.
     */
    void setWatchdog(const WatchdogConfig &wd);

    /**
     * Receives the typed error when recovery is exhausted. Without a
     * handler an unrecoverable device error is a simulator panic.
     */
    void setErrorHandler(std::function<void(const DeviceError &)> h)
    {
        errorHandler_ = std::move(h);
    }

    /**
     * Attach fault injection (site "<name>.launch": DeviceHang drops
     * the whole launch, DropCompletion loses only the interrupt) and
     * enable the watchdog with its current configuration.
     */
    void attachFaultInjector(fault::FaultInjector *inj);

    /**
     * Program the instruction buffer over CXL.io (write-combined burst)
     * and remember the program for the doorbell.
     */
    void loadProgram(const isa::Program &prog,
                     std::function<void()> on_complete);

    /** Write one of the ten model-parameter control registers. */
    void setParam(int index, std::uint32_t value,
                  std::function<void()> on_complete);

    /**
     * Ring the doorbell: the device decodes the loaded program, the
     * accelerator executes it, and @p on_complete runs on the host after
     * the ISR (or the successful poll).
     */
    void execute(std::function<void()> on_complete);

    /** Host load/store into the device's memory (CXL.mem path). */
    void readMemory(Addr addr, std::uint64_t bytes,
                    std::function<void()> on_complete);
    void writeMemory(Addr addr, std::uint64_t bytes,
                     std::function<void()> on_complete);

    std::uint64_t launches() const
    {
        return static_cast<std::uint64_t>(launches_.value());
    }
    std::uint64_t interruptsTaken() const
    {
        return static_cast<std::uint64_t>(interrupts_.value());
    }
    std::uint64_t pollsIssued() const
    {
        return static_cast<std::uint64_t>(polls_.value());
    }

    // --- RAS observability ---
    std::uint64_t watchdogTimeouts() const
    {
        return static_cast<std::uint64_t>(timeouts_.value());
    }
    std::uint64_t doorbellRetries() const
    {
        return static_cast<std::uint64_t>(retries_.value());
    }
    std::uint64_t deviceResets() const
    {
        return static_cast<std::uint64_t>(resets_.value());
    }
    std::uint64_t programReloads() const
    {
        return static_cast<std::uint64_t>(reloads_.value());
    }
    std::uint64_t poisonedRuns() const
    {
        return static_cast<std::uint64_t>(poisonedRuns_.value());
    }

  private:
    void deviceRegWrite(Addr addr, std::uint64_t value);
    std::uint64_t deviceRegRead(Addr addr) const;
    void launch();
    void pollOnce();
    void ringDoorbell();
    void armWatchdog();
    void watchdogFired();
    void resetDevice();
    /** Host-side completion: check status, retry or hand off. */
    void completeAttempt();
    void failExecute(DeviceError::Code code, const std::string &what);

    cxl::CxlIoPort &io_;
    cxl::CxlMemPort &mem_;
    accel::Accelerator &accel_;

    Completion mode_ = Completion::Interrupt;
    double pollIntervalUs_ = 5.0;

    // RAS machinery.
    WatchdogConfig wd_;
    bool watchdogEnabled_ = false;
    fault::FaultSite *launchSite_ = nullptr;
    std::function<void(const DeviceError &)> errorHandler_;
    Event watchdogEvent_;
    int attempt_ = 0;    // doorbell retries since the last clean start
    int resetsDone_ = 0; // resets within the current execute()

    /** Lazily registered execute/watchdog trace track. */
    trace::TrackId traceTrack_ = trace::InvalidTrack;
    trace::Tracer *traceTracer();
    Tick executeStart_ = 0;
    /** Host-retained program image for post-reset reload. */
    std::vector<std::uint8_t> hostProgram_;
    bool programLoaded_ = false;

    // Device-side state.
    std::vector<std::uint8_t> instrBuffer_;
    isa::Program current_;
    std::uint64_t statusReg_ = 0;
    std::uint64_t ctrlReg_ = 0;
    std::uint32_t params_[reg::paramCount] = {};

    std::function<void()> userCompletion_;

    stats::Scalar launches_;
    stats::Scalar interrupts_;
    stats::Scalar polls_;
    stats::Scalar timeouts_;
    stats::Scalar retries_;
    stats::Scalar resets_;
    stats::Scalar reloads_;
    stats::Scalar poisonedRuns_;
};

} // namespace runtime
} // namespace cxlpnm

#endif // CXLPNM_RUNTIME_DRIVER_HH
