#include "runtime/pnm_library.hh"

#include <cmath>
#include <memory>
#include <utility>

#include "accel/functional_memory.hh"
#include "numeric/linalg.hh"
#include "sim/logging.hh"

namespace cxlpnm
{
namespace runtime
{

using isa::Instruction;
using isa::Opcode;
using isa::Program;
using isa::RegId;

PnmLibrary::PnmLibrary(EventQueue &eq, stats::StatGroup *parent,
                       std::string name, PnmDriver &driver,
                       accel::Accelerator &accel,
                       std::uint64_t device_capacity)
    : SimObject(eq, parent, std::move(name)),
      driver_(driver),
      accel_(accel),
      alloc_(0, device_capacity),
      stagesRun_(this, "stagesRun", "sum/gen stages executed"),
      tokensGenerated_(this, "tokensGenerated", "tokens produced")
{}

void
PnmLibrary::setLayerRange(std::uint32_t first, std::uint32_t count)
{
    fatal_if(loaded_, "setLayerRange after loadModel");
    firstLayer_ = first;
    layerCount_ = count;
}

void
PnmLibrary::setTensorShard(int degree)
{
    fatal_if(loaded_, "setTensorShard after loadModel");
    fatal_if(degree < 1, "bad tensor shard degree");
    fatal_if(degree > 1 && accel_.functionalMemory() != nullptr,
             "tensor sharding is timing-only (functional reductions "
             "happen on the host)");
    shard_ = static_cast<std::uint32_t>(degree);
}

void
PnmLibrary::layoutModel()
{
    const std::uint32_t d = cfg_.dModel;
    const std::uint32_t f = cfg_.ffnDim;
    const std::uint32_t mp = cfg_.maxPositions;

    map_ = WeightMap{};
    map_.tokEmbed = alloc_.alloc(2ull * cfg_.vocabSize * d);
    map_.posEmbed = alloc_.alloc(2ull * mp * d);
    map_.lnfGamma = alloc_.alloc(2ull * d);
    map_.lnfBeta = alloc_.alloc(2ull * d);
    map_.inputBuffer = alloc_.alloc(2ull * mp * d);
    map_.outputBuffer = alloc_.alloc(
        std::max<std::uint64_t>(2ull * cfg_.vocabSize, 2ull * mp * d));

    map_.layers.resize(cfg_.numLayers);
    for (std::uint32_t l = firstLayer_;
         l < firstLayer_ + layerCount_; ++l) {
        LayerAddrs &a = map_.layers[l];
        a.wQkvT = alloc_.alloc(2ull * 3 * d * d / shard_);
        a.wProjT = alloc_.alloc(2ull * d * d / shard_);
        a.wFc1T = alloc_.alloc(2ull * f * d / shard_);
        a.wFc2T = alloc_.alloc(2ull * d * f / shard_);
        a.bQkv = alloc_.alloc(2ull * 3 * d);
        a.bProj = alloc_.alloc(2ull * d);
        a.bFc1 = alloc_.alloc(2ull * f);
        a.bFc2 = alloc_.alloc(2ull * d);
        a.ln1Gamma = alloc_.alloc(2ull * d);
        a.ln1Beta = alloc_.alloc(2ull * d);
        a.ln2Gamma = alloc_.alloc(2ull * d);
        a.ln2Beta = alloc_.alloc(2ull * d);
        a.kCache = alloc_.alloc(2ull * mp * d);
        a.vCache = alloc_.alloc(2ull * mp * d);
    }
}

namespace
{

HalfTensor
transposed(const HalfTensor &t)
{
    HalfTensor out(t.cols(), t.rows());
    for (std::size_t r = 0; r < t.rows(); ++r)
        for (std::size_t c = 0; c < t.cols(); ++c)
            out.at(c, r) = t.at(r, c);
    return out;
}

} // namespace

void
PnmLibrary::materializeWeights()
{
    accel::FunctionalMemory *fmem = accel_.functionalMemory();
    if (fmem == nullptr)
        return; // timing-only: the layout is all that matters

    using llm::WeightSlot;
    auto w = [&](int layer, WeightSlot slot) {
        return llm::makeWeight(cfg_, seed_, layer, slot);
    };

    fmem->writeTensor(map_.tokEmbed, w(-1, WeightSlot::TokEmbed));
    fmem->writeTensor(map_.posEmbed, w(-1, WeightSlot::PosEmbed));
    fmem->writeTensor(map_.lnfGamma, w(-1, WeightSlot::LnfGamma));
    fmem->writeTensor(map_.lnfBeta, w(-1, WeightSlot::LnfBeta));

    for (std::uint32_t l = firstLayer_;
         l < firstLayer_ + layerCount_; ++l) {
        const LayerAddrs &a = map_.layers[l];
        const int li = static_cast<int>(l);
        // FC weights are stored output-major (transposed) so both the
        // adder-tree MV and the PEA TransB path read them directly.
        fmem->writeTensor(a.wQkvT, transposed(w(li, WeightSlot::WQkv)));
        fmem->writeTensor(a.wProjT, transposed(w(li, WeightSlot::WProj)));
        fmem->writeTensor(a.wFc1T, transposed(w(li, WeightSlot::WFc1)));
        fmem->writeTensor(a.wFc2T, transposed(w(li, WeightSlot::WFc2)));
        fmem->writeTensor(a.bQkv, w(li, WeightSlot::BQkv));
        fmem->writeTensor(a.bProj, w(li, WeightSlot::BProj));
        fmem->writeTensor(a.bFc1, w(li, WeightSlot::BFc1));
        fmem->writeTensor(a.bFc2, w(li, WeightSlot::BFc2));
        fmem->writeTensor(a.ln1Gamma, w(li, WeightSlot::Ln1Gamma));
        fmem->writeTensor(a.ln1Beta, w(li, WeightSlot::Ln1Beta));
        fmem->writeTensor(a.ln2Gamma, w(li, WeightSlot::Ln2Gamma));
        fmem->writeTensor(a.ln2Beta, w(li, WeightSlot::Ln2Beta));
    }
}

Program
PnmLibrary::buildPreloadProgram() const
{
    const std::uint32_t d = cfg_.dModel;
    const std::uint32_t f = cfg_.ffnDim;
    Program p;
    auto load = [&](RegId dst, Addr addr, std::uint32_t m,
                    std::uint32_t n) {
        Instruction i;
        i.op = Opcode::DmaLoad;
        i.dst = dst;
        i.m = m;
        i.n = n;
        i.memAddr = addr;
        p.append(i);
    };

    for (std::uint32_t l = firstLayer_;
         l < firstLayer_ + layerCount_; ++l) {
        const LayerAddrs &a = map_.layers[l];
        const PersistentRegs::Layer &r =
            pregs_.layers[l - firstLayer_];
        load(r.ln1G, a.ln1Gamma, 1, d);
        load(r.ln1B, a.ln1Beta, 1, d);
        load(r.ln2G, a.ln2Gamma, 1, d);
        load(r.ln2B, a.ln2Beta, 1, d);
        load(r.bQkv, a.bQkv, 1, 3 * (d / shard_));
        load(r.bQ, a.bQkv, 1, d / shard_);
        load(r.bK, a.bQkv + 2ull * (d / shard_), 1, d / shard_);
        load(r.bV, a.bQkv + 4ull * (d / shard_), 1, d / shard_);
        load(r.bProj, a.bProj, 1, d);
        load(r.bFc1, a.bFc1, 1, f / shard_);
        load(r.bFc2, a.bFc2, 1, d);
    }
    load(pregs_.lnfG, map_.lnfGamma, 1, d);
    load(pregs_.lnfB, map_.lnfBeta, 1, d);
    return p;
}

void
PnmLibrary::loadModel(const llm::ModelConfig &cfg, std::uint64_t seed,
                      std::function<void()> on_done)
{
    fatal_if(loaded_, "model already loaded");
    cfg_ = cfg;
    seed_ = seed;
    if (layerCount_ == 0)
        layerCount_ = cfg_.numLayers;
    fatal_if(firstLayer_ + layerCount_ > cfg_.numLayers,
             "layer range exceeds the model");
    fatal_if(cfg_.numHeads % shard_ != 0 || cfg_.dModel % shard_ != 0 ||
                 cfg_.ffnDim % shard_ != 0 ||
                 cfg_.vocabSize % shard_ != 0,
             "tensor shard degree ", shard_,
             " must divide heads/dims/vocab");

    layoutModel();
    materializeWeights();

    // Persistent registers for biases and norm parameters. Column-
    // parallel outputs (QKV, FC1, LM head) shrink with the shard;
    // row-parallel outputs (proj, FC2) and the norms stay full-width.
    auto &rf = accel_.registerFile();
    const std::uint32_t d = cfg_.dModel;
    const std::uint32_t f = cfg_.ffnDim;
    const std::uint32_t ds = d / shard_;
    const std::uint32_t fs = f / shard_;
    pregs_.layers.resize(layerCount_);
    for (std::uint32_t i = 0; i < layerCount_; ++i) {
        PersistentRegs::Layer &r = pregs_.layers[i];
        r.ln1G = rf.alloc(1, d, "ln1G");
        r.ln1B = rf.alloc(1, d, "ln1B");
        r.ln2G = rf.alloc(1, d, "ln2G");
        r.ln2B = rf.alloc(1, d, "ln2B");
        r.bQkv = rf.alloc(1, 3 * ds, "bQkv");
        r.bQ = rf.alloc(1, ds, "bQ");
        r.bK = rf.alloc(1, ds, "bK");
        r.bV = rf.alloc(1, ds, "bV");
        r.bProj = rf.alloc(1, d, "bProj");
        r.bFc1 = rf.alloc(1, fs, "bFc1");
        r.bFc2 = rf.alloc(1, d, "bFc2");
    }
    pregs_.lnfG = rf.alloc(1, d, "lnfG");
    pregs_.lnfB = rf.alloc(1, d, "lnfB");

    // Gen-stage working registers (reused every token).
    gregs_.x = rf.alloc(1, d, "gen.x");
    gregs_.xn = rf.alloc(1, d, "gen.xn");
    gregs_.q = rf.alloc(1, ds, "gen.q");
    gregs_.k = rf.alloc(1, ds, "gen.k");
    gregs_.v = rf.alloc(1, ds, "gen.v");
    gregs_.rowmax = rf.alloc(1, cfg_.numHeads / shard_, "gen.rowmax");
    gregs_.ctx = rf.alloc(1, ds, "gen.ctx");
    gregs_.tmp = rf.alloc(1, d, "gen.tmp");
    gregs_.ff = rf.alloc(1, fs, "gen.ff");
    gregs_.logits = rf.alloc(1, cfg_.vocabSize / shard_, "gen.logits");
    gregs_.scores = isa::NoReg; // sized per token

    loaded_ = true;
    seqLen_ = 0;

    // Set the architectural control registers (layer count, token
    // limits, buffer addresses - §VI step 1) then run the preload.
    driver_.setParam(0, cfg_.numLayers, nullptr);
    driver_.setParam(1, cfg_.maxPositions, nullptr);
    driver_.setParam(2, static_cast<std::uint32_t>(map_.inputBuffer),
                     nullptr);
    driver_.setParam(3, static_cast<std::uint32_t>(map_.outputBuffer),
                     nullptr);

    const Program preload = buildPreloadProgram();
    driver_.loadProgram(preload, [this, on_done] {
        driver_.execute([on_done] {
            if (on_done)
                on_done();
        });
    });
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

namespace
{

Instruction
vpuOp(Opcode op, RegId dst, RegId src0, std::uint32_t m, std::uint32_t n)
{
    Instruction i;
    i.op = op;
    i.dst = dst;
    i.src0 = src0;
    i.m = m;
    i.n = n;
    return i;
}

} // namespace

isa::Program
PnmLibrary::layerNormCode(RegId dst, RegId src, RegId gamma, RegId beta,
                          std::uint32_t m, std::uint32_t n) const
{
    Program p;
    Instruction i = vpuOp(Opcode::VpuLayerNorm, dst, src, m, n);
    i.src1 = gamma;
    i.aux = beta;
    i.scale = 1e-5f;
    p.append(i);
    return p;
}

isa::Program
PnmLibrary::conv1dCode(RegId dst, RegId src, Addr weights, RegId bias,
                       std::uint32_t m, std::uint32_t n,
                       std::uint32_t k) const
{
    Program p;
    Instruction i;
    i.op = Opcode::MpuConv2dPea;
    i.flags = isa::FlagTransB | isa::FlagMemOperand;
    if (bias != isa::NoReg) {
        i.flags |= isa::FlagBias;
        i.aux = bias;
    }
    i.dst = dst;
    i.src0 = src;
    i.m = m;
    i.n = n;
    i.k = k;
    i.imm = 1;
    i.memAddr = weights;
    p.append(i);
    return p;
}

isa::Program
PnmLibrary::maskedMmCode(RegId dst, RegId a, RegId b, std::uint32_t m,
                         std::uint32_t n, std::uint32_t k,
                         float scale) const
{
    Program p;
    Instruction i;
    i.op = Opcode::MpuMaskedMmPea;
    i.flags = isa::FlagTransB | isa::FlagCausal;
    i.dst = dst;
    i.src0 = a;
    i.src1 = b;
    i.m = m;
    i.n = n;
    i.k = k;
    i.imm = 0;
    i.scale = scale;
    p.append(i);
    return p;
}

isa::Program
PnmLibrary::softmaxCode(RegId dst, RegId src, std::uint32_t m,
                        std::uint32_t n) const
{
    Program p;
    p.append(vpuOp(Opcode::VpuSoftmax, dst, src, m, n));
    return p;
}

isa::Program
PnmLibrary::geluCode(RegId dst, RegId src, std::uint32_t m,
                     std::uint32_t n) const
{
    Program p;
    p.append(vpuOp(Opcode::VpuGelu, dst, src, m, n));
    return p;
}

isa::Program
PnmLibrary::buildSumProgram(std::uint32_t l_in)
{
    auto &rf = accel_.registerFile();
    const std::uint32_t d = cfg_.dModel;
    const std::uint32_t ds = d / shard_;
    const std::uint32_t fs = cfg_.ffnDim / shard_;
    const std::uint32_t hs = cfg_.numHeads / shard_;
    const std::uint32_t dh = cfg_.headDim();
    const float inv_sqrt_dh =
        1.0f / std::sqrt(static_cast<float>(dh));

    // Stage-local registers. They must outlive the program's
    // *execution*, so the previous stage's set is recycled here and the
    // new set is retained in sumTemps_.
    for (RegId id : sumTemps_)
        rf.free(id);
    sumTemps_.clear();

    std::vector<RegId> temps;
    auto tmp = [&](std::uint32_t r, std::uint32_t c, const char *nm) {
        RegId id = rf.alloc(r, c, nm);
        temps.push_back(id);
        return id;
    };

    const RegId x = tmp(l_in, d, "sum.x");
    const RegId xn = tmp(l_in, d, "sum.xn");
    const RegId qkv = tmp(l_in, 3 * ds, "sum.qkv");
    const RegId q = tmp(l_in, ds, "sum.q");
    const RegId k = tmp(l_in, ds, "sum.k");
    const RegId v = tmp(l_in, ds, "sum.v");
    const RegId qh = tmp(l_in, dh, "sum.qh");
    const RegId kh = tmp(l_in, dh, "sum.kh");
    const RegId vh = tmp(l_in, dh, "sum.vh");
    const RegId scores = tmp(l_in, l_in, "sum.scores");
    const RegId mx = tmp(1, l_in, "sum.mx");
    const RegId ctxh = tmp(l_in, dh, "sum.ctxh");
    const RegId attn = tmp(l_in, ds, "sum.attn");
    const RegId tProj = tmp(l_in, d, "sum.tProj");
    const RegId tFf = tmp(l_in, fs, "sum.tFf");
    const RegId last = tmp(1, d, "sum.last");
    const RegId lastn = tmp(1, d, "sum.lastn");

    Program p;

    // Input activations (host wrote embeddings to the input buffer).
    {
        Instruction i;
        i.op = Opcode::DmaLoad;
        i.dst = x;
        i.m = l_in;
        i.n = d;
        i.memAddr = map_.inputBuffer;
        p.append(i);
    }

    auto slice = [&](RegId dst, RegId src, std::uint32_t m,
                     std::uint32_t n, std::uint32_t src_col,
                     std::uint32_t dst_col, std::uint32_t src_row = 0) {
        Instruction i;
        i.op = Opcode::MpuSlice;
        i.dst = dst;
        i.src0 = src;
        i.m = m;
        i.n = n;
        i.k = src_row;
        i.imm = (src_col << 16) | dst_col;
        p.append(i);
    };

    auto conv = [&](RegId dst, RegId src, Addr w, RegId bias,
                    std::uint32_t m, std::uint32_t n, std::uint32_t kk,
                    bool gelu) {
        Instruction i;
        i.op = gelu ? Opcode::MpuConv2dGeluPea : Opcode::MpuConv2dPea;
        i.flags = isa::FlagTransB | isa::FlagMemOperand | isa::FlagBias;
        i.dst = dst;
        i.src0 = src;
        i.aux = bias;
        i.m = m;
        i.n = n;
        i.k = kk;
        i.imm = 1;
        i.memAddr = w;
        p.append(i);
    };

    for (std::uint32_t l = firstLayer_;
         l < firstLayer_ + layerCount_; ++l) {
        const LayerAddrs &a = map_.layers[l];
        const PersistentRegs::Layer &pr =
            pregs_.layers[l - firstLayer_];

        // ln1 -> qkv (fused FC via CONV2D_PEA).
        {
            Instruction i = vpuOp(Opcode::VpuLayerNorm, xn, x, l_in, d);
            i.src1 = pr.ln1G;
            i.aux = pr.ln1B;
            i.scale = 1e-5f;
            p.append(i);
        }
        conv(qkv, xn, a.wQkvT, pr.bQkv, l_in, 3 * ds, d, false);
        slice(q, qkv, l_in, ds, 0, 0);
        slice(k, qkv, l_in, ds, ds, 0);
        slice(v, qkv, l_in, ds, 2 * ds, 0);

        // Write K/V rows 0..l_in-1 into the caches.
        for (RegId src : {k, v}) {
            Instruction i;
            i.op = Opcode::DmaStore;
            i.src0 = src;
            i.m = l_in;
            i.n = ds;
            i.memAddr = src == k ? a.kCache : a.vCache;
            i.flags = 0;
            p.append(i);
        }

        // Per-head masked attention (this shard's heads).
        for (std::uint32_t head = 0; head < hs; ++head) {
            slice(qh, q, l_in, dh, head * dh, 0);
            slice(kh, k, l_in, dh, head * dh, 0);
            slice(vh, v, l_in, dh, head * dh, 0);
            {
                Instruction i;
                i.op = Opcode::MpuMaskedMmRedumaxPea;
                i.flags = isa::FlagTransB | isa::FlagCausal;
                i.dst = scores;
                i.src0 = qh;
                i.src1 = kh;
                i.aux = mx;
                i.m = l_in;
                i.n = l_in;
                i.k = dh;
                i.imm = 0;
                i.scale = inv_sqrt_dh;
                p.append(i);
            }
            {
                Instruction i =
                    vpuOp(Opcode::VpuSoftmax, scores, scores, l_in,
                          l_in);
                i.aux = mx; // row maxima from REDUMAX
                p.append(i);
            }
            {
                Instruction i;
                i.op = Opcode::MpuMmPea;
                i.dst = ctxh;
                i.src0 = scores;
                i.src1 = vh;
                i.m = l_in;
                i.n = dh;
                i.k = l_in;
                p.append(i);
            }
            slice(attn, ctxh, l_in, dh, 0, head * dh);
        }

        conv(tProj, attn, a.wProjT, pr.bProj, l_in, d, ds, false);
        {
            Instruction i = vpuOp(Opcode::VpuAdd, x, x, l_in, d);
            i.src1 = tProj;
            p.append(i);
        }

        // FFN.
        {
            Instruction i = vpuOp(Opcode::VpuLayerNorm, xn, x, l_in, d);
            i.src1 = pr.ln2G;
            i.aux = pr.ln2B;
            i.scale = 1e-5f;
            p.append(i);
        }
        conv(tFf, xn, a.wFc1T, pr.bFc1, l_in, fs, d, true); // fused GELU
        conv(xn, tFf, a.wFc2T, pr.bFc2, l_in, d, fs, false);
        {
            Instruction i = vpuOp(Opcode::VpuAdd, x, x, l_in, d);
            i.src1 = xn;
            p.append(i);
        }
    }

    if (firstLayer_ + layerCount_ == cfg_.numLayers) {
        // Final LN on the last token + tied LM head.
        slice(last, x, 1, d, 0, 0, l_in - 1);
        {
            Instruction i = vpuOp(Opcode::VpuLayerNorm, lastn, last, 1,
                                  d);
            i.src1 = pregs_.lnfG;
            i.aux = pregs_.lnfB;
            i.scale = 1e-5f;
            p.append(i);
        }
        const RegId logits =
            tmp(1, cfg_.vocabSize / shard_, "sum.logits");
        {
            Instruction i;
            i.op = Opcode::MpuMv;
            i.flags = isa::FlagMemOperand;
            i.dst = logits;
            i.src0 = lastn;
            i.m = cfg_.vocabSize / shard_;
            i.n = d;
            i.memAddr = map_.tokEmbed;
            p.append(i);
        }
        Instruction st;
        st.op = Opcode::DmaStore;
        st.src0 = logits;
        st.m = 1;
        st.n = cfg_.vocabSize / shard_;
        st.memAddr = map_.outputBuffer;
        p.append(st);
    } else {
        // Model-parallel handoff: ship the activations out.
        Instruction st;
        st.op = Opcode::DmaStore;
        st.src0 = x;
        st.m = l_in;
        st.n = d;
        st.memAddr = map_.outputBuffer;
        p.append(st);
    }

    sumTemps_ = std::move(temps);
    return p;
}

isa::Program
PnmLibrary::buildGenProgram(std::uint32_t ctx_len)
{
    auto &rf = accel_.registerFile();
    const std::uint32_t d = cfg_.dModel;
    const std::uint32_t ds = d / shard_;
    const std::uint32_t fs = cfg_.ffnDim / shard_;
    const std::uint32_t hs = cfg_.numHeads / shard_;
    const std::uint32_t dh = cfg_.headDim();
    const float inv_sqrt_dh =
        1.0f / std::sqrt(static_cast<float>(dh));

    // Context-length-dependent score register.
    if (gregs_.scores != isa::NoReg)
        rf.free(gregs_.scores);
    gregs_.scores = rf.alloc(hs, ctx_len, "gen.scores");

    Program p;
    {
        Instruction i;
        i.op = Opcode::DmaLoad;
        i.dst = gregs_.x;
        i.m = 1;
        i.n = d;
        i.memAddr = map_.inputBuffer;
        p.append(i);
    }

    auto mv = [&](RegId dst, RegId src, Addr w, RegId bias,
                  std::uint32_t m, std::uint32_t n) {
        Instruction i;
        i.op = Opcode::MpuMv;
        i.flags = isa::FlagMemOperand;
        if (bias != isa::NoReg) {
            i.flags |= isa::FlagBias;
            i.aux = bias;
        }
        i.dst = dst;
        i.src0 = src;
        i.m = m;
        i.n = n;
        i.memAddr = w;
        p.append(i);
    };

    for (std::uint32_t l = firstLayer_;
         l < firstLayer_ + layerCount_; ++l) {
        const LayerAddrs &a = map_.layers[l];
        const PersistentRegs::Layer &pr =
            pregs_.layers[l - firstLayer_];

        {
            Instruction i =
                vpuOp(Opcode::VpuLayerNorm, gregs_.xn, gregs_.x, 1, d);
            i.src1 = pr.ln1G;
            i.aux = pr.ln1B;
            i.scale = 1e-5f;
            p.append(i);
        }
        // Q/K/V as three adder-tree GEMVs over rows of WqkvT (this
        // shard's ds output rows each).
        mv(gregs_.q, gregs_.xn, a.wQkvT, pr.bQ, ds, d);
        mv(gregs_.k, gregs_.xn, a.wQkvT + 2ull * ds * d, pr.bK, ds, d);
        mv(gregs_.v, gregs_.xn, a.wQkvT + 4ull * ds * d, pr.bV, ds, d);

        // Append K/V at row ctx_len-1 of this shard's cache slice.
        for (bool is_k : {true, false}) {
            Instruction i;
            i.op = Opcode::DmaStore;
            i.src0 = is_k ? gregs_.k : gregs_.v;
            i.m = 1;
            i.n = ds;
            i.memAddr = (is_k ? a.kCache : a.vCache) +
                2ull * (ctx_len - 1) * ds;
            p.append(i);
        }

        // Fused multi-head attention over the streamed KV cache.
        {
            Instruction i;
            i.op = Opcode::MpuMmRedumaxPea;
            i.flags = isa::FlagMultiHead | isa::FlagTransB |
                isa::FlagMemOperand;
            i.dst = gregs_.scores;
            i.src0 = gregs_.q;
            i.aux = gregs_.rowmax;
            i.m = hs;
            i.n = ctx_len;
            i.k = dh;
            i.scale = inv_sqrt_dh;
            i.memAddr = a.kCache;
            p.append(i);
        }
        {
            Instruction i = vpuOp(Opcode::VpuSoftmax, gregs_.scores,
                                  gregs_.scores, hs, ctx_len);
            i.aux = gregs_.rowmax;
            p.append(i);
        }
        {
            Instruction i;
            i.op = Opcode::MpuMmPea;
            i.flags = isa::FlagMultiHead | isa::FlagMemOperand;
            i.dst = gregs_.ctx; // flat 1 x ds
            i.src0 = gregs_.scores;
            i.m = hs;
            i.n = dh;
            i.k = ctx_len;
            i.memAddr = a.vCache;
            p.append(i);
        }

        // Row-parallel projection: full-width partial sums (the host
        // reduces across shards).
        mv(gregs_.tmp, gregs_.ctx, a.wProjT, pr.bProj, d, ds);
        {
            Instruction i = vpuOp(Opcode::VpuAdd, gregs_.x, gregs_.x, 1,
                                  d);
            i.src1 = gregs_.tmp;
            p.append(i);
        }

        {
            Instruction i =
                vpuOp(Opcode::VpuLayerNorm, gregs_.xn, gregs_.x, 1, d);
            i.src1 = pr.ln2G;
            i.aux = pr.ln2B;
            i.scale = 1e-5f;
            p.append(i);
        }
        mv(gregs_.ff, gregs_.xn, a.wFc1T, pr.bFc1, fs, d);
        p.append(vpuOp(Opcode::VpuGelu, gregs_.ff, gregs_.ff, 1, fs));
        mv(gregs_.tmp, gregs_.ff, a.wFc2T, pr.bFc2, d, fs);
        {
            Instruction i = vpuOp(Opcode::VpuAdd, gregs_.x, gregs_.x, 1,
                                  d);
            i.src1 = gregs_.tmp;
            p.append(i);
        }
    }

    if (firstLayer_ + layerCount_ == cfg_.numLayers) {
        {
            Instruction i =
                vpuOp(Opcode::VpuLayerNorm, gregs_.xn, gregs_.x, 1, d);
            i.src1 = pregs_.lnfG;
            i.aux = pregs_.lnfB;
            i.scale = 1e-5f;
            p.append(i);
        }
        mv(gregs_.logits, gregs_.xn, map_.tokEmbed, isa::NoReg,
           cfg_.vocabSize / shard_, d);
        Instruction st;
        st.op = Opcode::DmaStore;
        st.src0 = gregs_.logits;
        st.m = 1;
        st.n = cfg_.vocabSize / shard_;
        st.memAddr = map_.outputBuffer;
        p.append(st);
    } else {
        Instruction st;
        st.op = Opcode::DmaStore;
        st.src0 = gregs_.x;
        st.m = 1;
        st.n = d;
        st.memAddr = map_.outputBuffer;
        p.append(st);
    }
    return p;
}

// ---------------------------------------------------------------------
// Execution flow (Fig. 9 steps 1-4)
// ---------------------------------------------------------------------

std::uint32_t
PnmLibrary::readArgmaxFromOutput()
{
    accel::FunctionalMemory *fmem = accel_.functionalMemory();
    if (fmem == nullptr)
        return 0; // timing-only mode
    HalfTensor logits =
        fmem->readTensor(map_.outputBuffer, 1, cfg_.vocabSize);
    std::uint32_t best = 0;
    float best_v = logits.at(0, 0).toFloat();
    for (std::uint32_t j = 1; j < cfg_.vocabSize; ++j) {
        const float v = logits.at(0, j).toFloat();
        if (v > best_v) {
            best_v = v;
            best = j;
        }
    }
    return best;
}

void
PnmLibrary::runStage(const isa::Program &prog,
                     std::function<void(std::uint32_t)> on_token)
{
    lastProgramSize_ = prog.size();
    stagesRun_ += 1;
    driver_.loadProgram(prog, [this, on_token] {
        driver_.execute([this, on_token] {
            // Read the logits back over CXL.mem, then argmax on the
            // host (sampling is host-side, as in the paper's flow).
            driver_.readMemory(
                map_.outputBuffer, 2ull * cfg_.vocabSize,
                [this, on_token] {
                    if (on_token)
                        on_token(readArgmaxFromOutput());
                });
        });
    });
}

void
PnmLibrary::prefill(const std::vector<std::uint32_t> &prompt,
                    std::function<void(std::uint32_t)> on_token)
{
    fatal_if(!loaded_, "prefill before loadModel");
    fatal_if(prompt.empty(), "empty prompt");
    fatal_if(prompt.size() > cfg_.maxPositions, "prompt too long");
    seqLen_ = 0;

    const std::uint32_t l_in = static_cast<std::uint32_t>(prompt.size());
    accel::FunctionalMemory *fmem = accel_.functionalMemory();
    if (fmem != nullptr) {
        // Host-side embedding gather into the input buffer.
        const auto tok = llm::makeWeight(cfg_, seed_, -1,
                                         llm::WeightSlot::TokEmbed);
        const auto pos = llm::makeWeight(cfg_, seed_, -1,
                                         llm::WeightSlot::PosEmbed);
        HalfTensor x(l_in, cfg_.dModel);
        for (std::uint32_t r = 0; r < l_in; ++r) {
            fatal_if(prompt[r] >= cfg_.vocabSize, "token out of range");
            for (std::uint32_t c = 0; c < cfg_.dModel; ++c)
                x.at(r, c) = tok.at(prompt[r], c) + pos.at(r, c);
        }
        fmem->writeTensor(map_.inputBuffer, x);
    }

    const Program p = buildSumProgram(l_in);
    seqLen_ = l_in;
    // Host writes the embeddings over CXL.mem, then runs the stage.
    driver_.writeMemory(map_.inputBuffer, 2ull * l_in * cfg_.dModel,
                        [this, p, on_token] {
                            runStage(p, [this, on_token](
                                            std::uint32_t t) {
                                tokensGenerated_ += 1;
                                on_token(t);
                            });
                        });
}

void
PnmLibrary::decode(std::uint32_t token,
                   std::function<void(std::uint32_t)> on_token)
{
    fatal_if(!loaded_, "decode before loadModel");
    fatal_if(seqLen_ == 0, "decode before prefill");
    fatal_if(seqLen_ >= cfg_.maxPositions, "context overflow");

    accel::FunctionalMemory *fmem = accel_.functionalMemory();
    if (fmem != nullptr) {
        const auto tok = llm::makeWeight(cfg_, seed_, -1,
                                         llm::WeightSlot::TokEmbed);
        const auto pos = llm::makeWeight(cfg_, seed_, -1,
                                         llm::WeightSlot::PosEmbed);
        fatal_if(token >= cfg_.vocabSize, "token out of range");
        HalfTensor x(1, cfg_.dModel);
        for (std::uint32_t c = 0; c < cfg_.dModel; ++c)
            x.at(0, c) = tok.at(token, c) +
                pos.at(static_cast<std::uint32_t>(seqLen_), c);
        fmem->writeTensor(map_.inputBuffer, x);
    }

    const std::uint32_t ctx = static_cast<std::uint32_t>(seqLen_) + 1;
    const Program p = buildGenProgram(ctx);
    seqLen_ = ctx;
    driver_.writeMemory(map_.inputBuffer, 2ull * cfg_.dModel,
                        [this, p, on_token] {
                            runStage(p, [this, on_token](
                                            std::uint32_t t) {
                                tokensGenerated_ += 1;
                                on_token(t);
                            });
                        });
}

void
PnmLibrary::generate(const std::vector<std::uint32_t> &prompt,
                     std::size_t n,
                     std::function<void(std::vector<std::uint32_t>)>
                         on_done)
{
    auto out = std::make_shared<std::vector<std::uint32_t>>();
    auto step = std::make_shared<std::function<void(std::uint32_t)>>();
    *step = [this, out, n, on_done, step](std::uint32_t tok) {
        out->push_back(tok);
        if (out->size() >= n) {
            on_done(*out);
            // Break the self-referential closure after it returns.
            eventQueue().scheduleOneShot(name() + ".genCleanup", now(),
                                         [step] { *step = nullptr; });
            return;
        }
        decode(tok, *step);
    };
    prefill(prompt, *step);
}

} // namespace runtime
} // namespace cxlpnm
