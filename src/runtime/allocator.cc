#include "runtime/allocator.hh"

#include "sim/logging.hh"

namespace cxlpnm
{
namespace runtime
{

namespace
{

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

Addr
alignUp(Addr a, std::uint64_t align)
{
    return (a + align - 1) & ~(align - 1);
}

} // namespace

CxlMemAllocator::CxlMemAllocator(Addr base, std::uint64_t capacity)
    : base_(base), capacity_(capacity)
{
    fatal_if(capacity == 0, "allocator over empty region");
    freeList_.emplace(base_, capacity_);
}

Addr
CxlMemAllocator::alloc(std::uint64_t bytes, std::uint64_t align)
{
    fatal_if(bytes == 0, "zero-byte allocation");
    fatal_if(!isPow2(align), "alignment ", align, " is not a power of 2");

    for (auto it = freeList_.begin(); it != freeList_.end(); ++it) {
        const Addr block_start = it->first;
        const std::uint64_t block_size = it->second;
        const Addr user = alignUp(block_start, align);
        const std::uint64_t pad = user - block_start;
        if (pad + bytes > block_size)
            continue;

        // Claim [block_start, user+bytes); give back both remainders.
        freeList_.erase(it);
        if (pad > 0)
            freeList_.emplace(block_start, pad);
        const std::uint64_t tail = block_size - pad - bytes;
        if (tail > 0)
            freeList_.emplace(user + bytes, tail);

        live_.emplace(user, std::make_pair(user, bytes));
        used_ += bytes;
        return user;
    }
    fatal("CXL memory exhausted: ", bytes, " bytes requested, ",
          freeBytes(), " free (fragmented into ", freeList_.size(),
          " blocks)");
}

void
CxlMemAllocator::free(Addr addr)
{
    auto it = live_.find(addr);
    panic_if(it == live_.end(), "free of unknown address ", addr);
    Addr start = it->second.first;
    std::uint64_t size = it->second.second;
    used_ -= size;
    live_.erase(it);

    // Coalesce with the successor then the predecessor.
    auto next = freeList_.lower_bound(start);
    if (next != freeList_.end() && start + size == next->first) {
        size += next->second;
        freeList_.erase(next);
    }
    if (!freeList_.empty()) {
        auto prev = freeList_.lower_bound(start);
        if (prev != freeList_.begin()) {
            --prev;
            if (prev->first + prev->second == start) {
                start = prev->first;
                size += prev->second;
                freeList_.erase(prev);
            }
        }
    }
    freeList_.emplace(start, size);
}

std::uint64_t
CxlMemAllocator::largestFreeBlock() const
{
    std::uint64_t best = 0;
    for (const auto &[start, size] : freeList_)
        best = std::max(best, size);
    return best;
}

} // namespace runtime
} // namespace cxlpnm
