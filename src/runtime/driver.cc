#include "runtime/driver.hh"

#include <utility>

#include "sim/logging.hh"

namespace cxlpnm
{
namespace runtime
{

PnmDriver::PnmDriver(EventQueue &eq, stats::StatGroup *parent,
                     std::string name, cxl::CxlIoPort &io,
                     cxl::CxlMemPort &mem, accel::Accelerator &accel)
    : SimObject(eq, parent, std::move(name)),
      io_(io),
      mem_(mem),
      accel_(accel),
      launches_(this, "launches", "programs launched via doorbell"),
      interrupts_(this, "interrupts", "MSI-X completions taken"),
      polls_(this, "polls", "status-register polls issued")
{
    io_.setHandlers(
        [this](Addr a) { return deviceRegRead(a); },
        [this](Addr a, std::uint64_t v) { deviceRegWrite(a, v); });
    io_.setBulkHandler(
        [this](Addr a, const std::vector<std::uint8_t> &bytes) {
            panic_if(a != reg::InstrBuffer,
                     "bulk write outside the instruction buffer");
            instrBuffer_ = bytes;
        });
}

std::uint64_t
PnmDriver::deviceRegRead(Addr addr) const
{
    switch (addr) {
      case reg::Ctrl: return ctrlReg_;
      case reg::Status: return statusReg_;
      case reg::InstrBase: return reg::InstrBuffer;
      default:
        if (addr >= reg::Param0 &&
            addr < reg::Param0 + 8 * reg::paramCount &&
            (addr - reg::Param0) % 8 == 0) {
            return params_[(addr - reg::Param0) / 8];
        }
        panic("read of unmapped device register 0x", addr);
    }
}

void
PnmDriver::deviceRegWrite(Addr addr, std::uint64_t value)
{
    switch (addr) {
      case reg::Ctrl:
        ctrlReg_ = value;
        return;
      case reg::Doorbell:
        launch();
        return;
      default:
        if (addr >= reg::Param0 &&
            addr < reg::Param0 + 8 * reg::paramCount &&
            (addr - reg::Param0) % 8 == 0) {
            params_[(addr - reg::Param0) / 8] =
                static_cast<std::uint32_t>(value);
            return;
        }
        panic("write of unmapped device register 0x", addr);
    }
}

void
PnmDriver::loadProgram(const isa::Program &prog,
                       std::function<void()> on_complete)
{
    io_.writeBulk(reg::InstrBuffer, prog.encode(),
                  std::move(on_complete));
}

void
PnmDriver::setParam(int index, std::uint32_t value,
                    std::function<void()> on_complete)
{
    fatal_if(index < 0 || index >= reg::paramCount,
             "control register index ", index, " out of range");
    io_.writeRegister(reg::Param0 + 8 * index, value,
                      std::move(on_complete));
}

void
PnmDriver::execute(std::function<void()> on_complete)
{
    panic_if(userCompletion_ != nullptr, "execute() while one is pending");
    userCompletion_ = std::move(on_complete);
    io_.writeRegister(reg::Doorbell, 1, nullptr);
}

void
PnmDriver::launch()
{
    // Device side: decode the instruction buffer, clear STATUS, run.
    panic_if(instrBuffer_.empty(), "doorbell with empty instruction buffer");
    current_ = isa::Program::decode(instrBuffer_);
    statusReg_ = 0;
    launches_ += 1;

    accel_.run(current_, [this] {
        statusReg_ = 1; // done bit
        if (mode_ == Completion::Interrupt) {
            io_.raiseInterrupt([this] {
                // ISR body: acknowledge and hand off to the library.
                interrupts_ += 1;
                auto cb = std::move(userCompletion_);
                userCompletion_ = nullptr;
                if (cb)
                    cb();
            });
        }
        // Polling mode: the host's poll loop discovers STATUS below.
    });

    if (mode_ == Completion::Polling) {
        // First poll right after the doorbell acknowledges.
        eventQueue().scheduleOneShot(name() + ".poll0", now(),
                                     [this] { pollOnce(); });
    }
}

void
PnmDriver::pollOnce()
{
    polls_ += 1;
    io_.readRegister(reg::Status, [this](std::uint64_t status) {
        if (status & 1) {
            auto cb = std::move(userCompletion_);
            userCompletion_ = nullptr;
            if (cb)
                cb();
            return;
        }
        eventQueue().scheduleOneShot(
            name() + ".poll",
            now() + static_cast<Tick>(pollIntervalUs_ * tickPerUs),
            [this] { pollOnce(); });
    });
}

} // namespace runtime
} // namespace cxlpnm

// readMemory/writeMemory are thin forwards; defined out of line to keep
// the header light.
namespace cxlpnm
{
namespace runtime
{

void
PnmDriver::readMemory(Addr addr, std::uint64_t bytes,
                      std::function<void()> on_complete)
{
    mem_.hostRead(addr, bytes, std::move(on_complete));
}

void
PnmDriver::writeMemory(Addr addr, std::uint64_t bytes,
                       std::function<void()> on_complete)
{
    mem_.hostWrite(addr, bytes, std::move(on_complete));
}

} // namespace runtime
} // namespace cxlpnm
