#include "runtime/driver.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace cxlpnm
{
namespace runtime
{

PnmDriver::PnmDriver(EventQueue &eq, stats::StatGroup *parent,
                     std::string name, cxl::CxlIoPort &io,
                     cxl::CxlMemPort &mem, accel::Accelerator &accel)
    : SimObject(eq, parent, std::move(name)),
      io_(io),
      mem_(mem),
      accel_(accel),
      watchdogEvent_(this->name() + ".watchdog",
                     [this] { watchdogFired(); }),
      launches_(this, "launches", "programs launched via doorbell"),
      interrupts_(this, "interrupts", "MSI-X completions taken"),
      polls_(this, "polls", "status-register polls issued"),
      timeouts_(this, "watchdogTimeouts", "execute() watchdog expiries"),
      retries_(this, "doorbellRetries", "doorbell retries after faults"),
      resets_(this, "deviceResets", "full device resets performed"),
      reloads_(this, "programReloads", "programs reloaded after reset"),
      poisonedRuns_(this, "poisonedRuns",
                    "runs completing with the STATUS poison bit")
{
    io_.setHandlers(
        [this](Addr a) { return deviceRegRead(a); },
        [this](Addr a, std::uint64_t v) { deviceRegWrite(a, v); });
    io_.setBulkHandler(
        [this](Addr a, const std::vector<std::uint8_t> &bytes) {
            panic_if(a != reg::InstrBuffer,
                     "bulk write outside the instruction buffer");
            instrBuffer_ = bytes;
        });
}

void
PnmDriver::setWatchdog(const WatchdogConfig &wd)
{
    wd_ = wd;
    watchdogEnabled_ = true;
}

void
PnmDriver::attachFaultInjector(fault::FaultInjector *inj)
{
    launchSite_ =
        inj != nullptr ? inj->site(fullName() + ".launch") : nullptr;
    if (inj != nullptr)
        watchdogEnabled_ = true;
}

std::uint64_t
PnmDriver::deviceRegRead(Addr addr) const
{
    switch (addr) {
      case reg::Ctrl: return ctrlReg_;
      case reg::Status: return statusReg_;
      case reg::InstrBase: return reg::InstrBuffer;
      default:
        if (addr >= reg::Param0 &&
            addr < reg::Param0 + 8 * reg::paramCount &&
            (addr - reg::Param0) % 8 == 0) {
            return params_[(addr - reg::Param0) / 8];
        }
        panic("read of unmapped device register 0x", addr);
    }
}

void
PnmDriver::deviceRegWrite(Addr addr, std::uint64_t value)
{
    switch (addr) {
      case reg::Ctrl:
        ctrlReg_ = value;
        return;
      case reg::Doorbell:
        launch();
        return;
      default:
        if (addr >= reg::Param0 &&
            addr < reg::Param0 + 8 * reg::paramCount &&
            (addr - reg::Param0) % 8 == 0) {
            params_[(addr - reg::Param0) / 8] =
                static_cast<std::uint32_t>(value);
            return;
        }
        panic("write of unmapped device register 0x", addr);
    }
}

void
PnmDriver::loadProgram(const isa::Program &prog,
                       std::function<void()> on_complete)
{
    // Retain the image host-side: a device reset wipes the instruction
    // buffer and the recovery path reloads from this copy.
    hostProgram_ = prog.encode();
    programLoaded_ = true;
    io_.writeBulk(reg::InstrBuffer, hostProgram_, std::move(on_complete));
}

void
PnmDriver::setParam(int index, std::uint32_t value,
                    std::function<void()> on_complete)
{
    fatal_if(index < 0 || index >= reg::paramCount,
             "control register index ", index, " out of range");
    io_.writeRegister(reg::Param0 + 8 * index, value,
                      std::move(on_complete));
}

trace::Tracer *
PnmDriver::traceTracer()
{
    trace::Tracer *tr = eventQueue().tracer();
    if (tr != nullptr && traceTrack_ == trace::InvalidTrack)
        traceTrack_ = tr->track(fullName(), "runtime");
    return tr;
}

void
PnmDriver::execute(std::function<void()> on_complete)
{
    if (!programLoaded_) {
        throw DeviceError(DeviceError::Code::NoProgram,
                          name() + ": execute() before loadProgram()");
    }
    panic_if(userCompletion_ != nullptr, "execute() while one is pending");
    userCompletion_ = std::move(on_complete);
    attempt_ = 0;
    resetsDone_ = 0;
    executeStart_ = now();
    ringDoorbell();
}

void
PnmDriver::ringDoorbell()
{
    if (auto *tr = traceTracer())
        tr->instant(traceTrack_, "doorbell", now());
    io_.writeRegister(reg::Doorbell, 1, nullptr);
    if (watchdogEnabled_)
        armWatchdog();
}

void
PnmDriver::armWatchdog()
{
    // Exponential backoff with a hard ceiling: unbounded, the product
    // overflows the double->Tick conversion after ~63 doublings and the
    // watchdog would reschedule itself into the past. Saturate at the
    // configured ceiling (or ~1 simulated hour) and keep now() + delay
    // representable.
    const double cap_us =
        wd_.maxTimeoutUs > 0.0 ? wd_.maxTimeoutUs : 3.6e9;
    const double us = std::min(
        cap_us, wd_.timeoutUs * std::pow(wd_.backoffFactor, attempt_));
    const double ticks = us * static_cast<double>(tickPerUs);
    const Tick headroom = MaxTick - now();
    Tick delay;
    if (!(ticks < static_cast<double>(headroom)))
        delay = headroom; // also catches inf/NaN from extreme configs
    else
        delay = static_cast<Tick>(ticks);
    eventQueue().reschedule(watchdogEvent_, now() + delay);
}

void
PnmDriver::launch()
{
    // Device side: decode the instruction buffer, clear STATUS, run.
    panic_if(instrBuffer_.empty(), "doorbell with empty instruction buffer");

    const fault::FaultKind fk = fault::poll(launchSite_, now());
    if (fk == fault::FaultKind::DeviceHang) {
        // Doorbell lost inside the control unit: nothing starts and no
        // completion will ever arrive. Only the watchdog recovers this.
        return;
    }
    const bool dropCompletion = fk == fault::FaultKind::DropCompletion;

    current_ = isa::Program::decode(instrBuffer_);
    statusReg_ = 0;
    launches_ += 1;

    accel_.run(current_, [this, dropCompletion] {
        // bit0: done; bit1: a DMA read returned poisoned data.
        const bool poisoned = accel_.runPoisoned();
        statusReg_ = poisoned ? 0x3 : 0x1;
        if (poisoned)
            poisonedRuns_ += 1;
        if (mode_ == Completion::Interrupt && !dropCompletion) {
            io_.raiseInterrupt([this] {
                interrupts_ += 1;
                completeAttempt();
            });
        }
        // Polling mode: the host's poll loop discovers STATUS below
        // regardless of a lost MSI-X.
    });

    if (mode_ == Completion::Polling) {
        // First poll right after the doorbell acknowledges.
        eventQueue().scheduleOneShot(name() + ".poll0", now(),
                                     [this] { pollOnce(); });
    }
}

void
PnmDriver::pollOnce()
{
    if (userCompletion_ == nullptr)
        return; // a parallel poll loop (doorbell retry) already finished
    polls_ += 1;
    io_.readRegister(reg::Status, [this](std::uint64_t status) {
        if (status & 1) {
            completeAttempt();
            return;
        }
        eventQueue().scheduleOneShot(
            name() + ".poll",
            now() + static_cast<Tick>(pollIntervalUs_ * tickPerUs),
            [this] { pollOnce(); });
    });
}

void
PnmDriver::completeAttempt()
{
    if (userCompletion_ == nullptr)
        return; // duplicate completion (retried run raced the original)
    if (watchdogEvent_.scheduled())
        eventQueue().deschedule(watchdogEvent_);

    if (watchdogEnabled_ && (statusReg_ & 0x2) != 0) {
        // Poisoned run: the data path hit an uncorrectable error. A
        // transient fault may not recur, so retry from the doorbell;
        // after the budget, surface it as uncorrectable.
        if (auto *tr = traceTracer())
            tr->instant(traceTrack_, "poisoned_run", now());
        if (attempt_ < wd_.maxRetries) {
            ++attempt_;
            retries_ += 1;
            ringDoorbell();
            return;
        }
        failExecute(DeviceError::Code::Uncorrectable,
                    "run poisoned after exhausting doorbell retries");
        return;
    }

    if (auto *tr = traceTracer())
        tr->complete(traceTrack_, "execute", executeStart_, now());
    auto cb = std::move(userCompletion_);
    userCompletion_ = nullptr;
    attempt_ = 0;
    resetsDone_ = 0;
    if (cb)
        cb();
}

void
PnmDriver::watchdogFired()
{
    if (userCompletion_ == nullptr)
        return; // completed in the same tick
    if (accel_.busy()) {
        // The device is making progress - a legitimately long program,
        // not a hang. Re-arm without escalating.
        armWatchdog();
        return;
    }
    timeouts_ += 1;
    if (auto *tr = traceTracer())
        tr->instant(traceTrack_, "watchdog_timeout", now());
    if (attempt_ < wd_.maxRetries) {
        ++attempt_;
        retries_ += 1;
        ringDoorbell();
        return;
    }
    if (resetsDone_ < wd_.maxResets) {
        ++resetsDone_;
        resetDevice();
        return;
    }
    failExecute(DeviceError::Code::Hang,
                "device unresponsive after retries and reset");
}

void
PnmDriver::resetDevice()
{
    if (auto *tr = traceTracer())
        tr->instant(traceTrack_, "device_reset", now());
    resets_ += 1;
    accel_.abort();
    statusReg_ = 0;
    ctrlReg_ = 0;
    instrBuffer_.clear();
    attempt_ = 0;
    // Reload the retained program image, then relaunch.
    reloads_ += 1;
    io_.writeBulk(reg::InstrBuffer, hostProgram_,
                  [this] { ringDoorbell(); });
}

void
PnmDriver::failExecute(DeviceError::Code code, const std::string &what)
{
    if (auto *tr = traceTracer())
        tr->complete(traceTrack_, "execute_failed", executeStart_, now());
    userCompletion_ = nullptr;
    attempt_ = 0;
    resetsDone_ = 0;
    const DeviceError err(code, name() + ": " + what);
    if (errorHandler_) {
        errorHandler_(err);
        return;
    }
    panic("unrecoverable device error: ", err.what());
}

} // namespace runtime
} // namespace cxlpnm

// readMemory/writeMemory are thin forwards; defined out of line to keep
// the header light.
namespace cxlpnm
{
namespace runtime
{

void
PnmDriver::readMemory(Addr addr, std::uint64_t bytes,
                      std::function<void()> on_complete)
{
    mem_.hostRead(addr, bytes, std::move(on_complete));
}

void
PnmDriver::writeMemory(Addr addr, std::uint64_t bytes,
                       std::function<void()> on_complete)
{
    mem_.hostWrite(addr, bytes, std::move(on_complete));
}

} // namespace runtime
} // namespace cxlpnm
