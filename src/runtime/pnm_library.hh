/**
 * @file
 * The CXL-PNM library (§VI): the user-facing API the paper exposes to
 * Python, here as C++. It allocates device memory for model parameters
 * and KV caches, loads (synthetic) weights through the driver, generates
 * acceleration code (instruction sequences) for whole inference stages
 * and for the individual layer functions the paper lists (LayerNorm,
 * Conv1D/FC, MaskedMM, Softmax, GELU), and drives execution through the
 * doorbell/ISR flow of Fig. 9.
 */

#ifndef CXLPNM_RUNTIME_PNM_LIBRARY_HH
#define CXLPNM_RUNTIME_PNM_LIBRARY_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "llm/model_config.hh"
#include "llm/synthetic.hh"
#include "runtime/allocator.hh"
#include "runtime/driver.hh"

namespace cxlpnm
{
namespace runtime
{

/** Device-memory addresses of one layer's parameters. */
struct LayerAddrs
{
    Addr wQkvT = 0; // (3d x d): rows = Q outputs, K outputs, V outputs
    Addr wProjT = 0; // (d x d)
    Addr wFc1T = 0;  // (f x d)
    Addr wFc2T = 0;  // (d x f)
    Addr bQkv = 0;   // (1 x 3d)
    Addr bProj = 0;
    Addr bFc1 = 0;
    Addr bFc2 = 0;
    Addr ln1Gamma = 0, ln1Beta = 0;
    Addr ln2Gamma = 0, ln2Beta = 0;
    Addr kCache = 0; // (maxPositions x d)
    Addr vCache = 0;
};

/** Full device-memory layout of a loaded model. */
struct WeightMap
{
    Addr tokEmbed = 0; // (vocab x d), also the tied LM head
    Addr posEmbed = 0; // (maxPositions x d)
    Addr lnfGamma = 0, lnfBeta = 0;
    Addr inputBuffer = 0;  // staging for host-written activations
    Addr outputBuffer = 0; // logits land here
    std::vector<LayerAddrs> layers;
};

/** RF-resident registers that persist across stages. */
struct PersistentRegs
{
    struct Layer
    {
        isa::RegId ln1G, ln1B, ln2G, ln2B;
        isa::RegId bQkv; // (1 x 3d) for the sum stage
        isa::RegId bQ, bK, bV; // (1 x d) each for gen-stage MVs
        isa::RegId bProj, bFc1, bFc2;
    };
    std::vector<Layer> layers;
    isa::RegId lnfG = isa::NoReg, lnfB = isa::NoReg;
};

/** The library: one instance manages one CXL-PNM device. */
class PnmLibrary : public SimObject
{
  public:
    PnmLibrary(EventQueue &eq, stats::StatGroup *parent, std::string name,
               PnmDriver &driver, accel::Accelerator &accel,
               std::uint64_t device_capacity);

    /**
     * Allocate and load a model. With a functional accelerator the
     * synthetic weights are materialised into device memory; in
     * timing-only mode just the layout and persistent registers are set
     * up. @p on_done fires after the preload program completes.
     */
    void loadModel(const llm::ModelConfig &cfg, std::uint64_t seed,
                   std::function<void()> on_done);

    /**
     * Layer-range restriction for pipeline-parallel setups: this
     * device executes layers [first, first+count) only. Must be called
     * before loadModel; by default the device runs every layer.
     */
    void setLayerRange(std::uint32_t first, std::uint32_t count);

    /**
     * Tensor-parallel shard (§VIII-A "model parallelism"): this device
     * holds 1/degree of every layer's weights and heads, mirroring
     * FasterTransformer's column/row-parallel split. Timing-only (the
     * functional model requires degree 1, since the cross-device
     * reductions happen on the host). Must precede loadModel.
     */
    void setTensorShard(int degree);

    /** Sum stage over the prompt; yields the next (greedy) token. */
    void prefill(const std::vector<std::uint32_t> &prompt,
                 std::function<void(std::uint32_t)> on_token);

    /** One gen stage; yields the next (greedy) token. */
    void decode(std::uint32_t token,
                std::function<void(std::uint32_t)> on_token);

    /** Prefill then generate @p n tokens greedily. */
    void generate(const std::vector<std::uint32_t> &prompt,
                  std::size_t n,
                  std::function<void(std::vector<std::uint32_t>)> on_done);

    const WeightMap &weightMap() const { return map_; }
    const llm::ModelConfig &model() const { return cfg_; }
    std::size_t contextLength() const { return seqLen_; }
    CxlMemAllocator &allocator() { return alloc_; }

    /** Instruction count of the last stage program (for tests). */
    std::size_t lastProgramSize() const { return lastProgramSize_; }

    // --- Paper's layer-function API (§VI, Fig. 9) ---
    // Each builds a self-contained acceleration-code sequence against
    // caller-provided registers, mirroring the Python library calls.
    isa::Program layerNormCode(isa::RegId dst, isa::RegId src,
                               isa::RegId gamma, isa::RegId beta,
                               std::uint32_t m, std::uint32_t n) const;
    isa::Program conv1dCode(isa::RegId dst, isa::RegId src, Addr weights,
                            isa::RegId bias, std::uint32_t m,
                            std::uint32_t n, std::uint32_t k) const;
    isa::Program maskedMmCode(isa::RegId dst, isa::RegId a, isa::RegId b,
                              std::uint32_t m, std::uint32_t n,
                              std::uint32_t k, float scale) const;
    isa::Program softmaxCode(isa::RegId dst, isa::RegId src,
                             std::uint32_t m, std::uint32_t n) const;
    isa::Program geluCode(isa::RegId dst, isa::RegId src, std::uint32_t m,
                          std::uint32_t n) const;

  private:
    struct GenRegs
    {
        isa::RegId x, xn, q, k, v, scores, rowmax, ctx, tmp, ff, logits;
    };

    void layoutModel();
    void materializeWeights();
    isa::Program buildPreloadProgram() const;
    isa::Program buildSumProgram(std::uint32_t l_in);
    isa::Program buildGenProgram(std::uint32_t ctx_len);

    /** Host-side embedding gather + input-buffer write, then run. */
    void runStage(const isa::Program &prog,
                  std::function<void(std::uint32_t)> on_token);
    std::uint32_t readArgmaxFromOutput();

    PnmDriver &driver_;
    accel::Accelerator &accel_;
    CxlMemAllocator alloc_;

    llm::ModelConfig cfg_;
    std::uint64_t seed_ = 0;
    bool loaded_ = false;
    std::uint32_t firstLayer_ = 0;
    std::uint32_t layerCount_ = 0;
    std::uint32_t shard_ = 1;

    WeightMap map_;
    PersistentRegs pregs_;
    GenRegs gregs_{};
    /** Sum-stage temporaries; recycled when the next stage is built. */
    std::vector<isa::RegId> sumTemps_;
    std::size_t seqLen_ = 0;
    std::size_t lastProgramSize_ = 0;

    stats::Scalar stagesRun_;
    stats::Scalar tokensGenerated_;
};

} // namespace runtime
} // namespace cxlpnm

#endif // CXLPNM_RUNTIME_PNM_LIBRARY_HH
