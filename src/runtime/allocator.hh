/**
 * @file
 * First-fit region allocator over a CXL memory device's address space -
 * the CXL-PNM library's equivalent of its "memory allocation" API (§VI):
 * model parameters, KV caches and I/O buffers are carved out of the
 * module's 512 GB.
 */

#ifndef CXLPNM_RUNTIME_ALLOCATOR_HH
#define CXLPNM_RUNTIME_ALLOCATOR_HH

#include <cstdint>
#include <map>

#include "sim/types.hh"

namespace cxlpnm
{
namespace runtime
{

/** First-fit allocator with coalescing free list. */
class CxlMemAllocator
{
  public:
    /** Manage [base, base+capacity). */
    CxlMemAllocator(Addr base, std::uint64_t capacity);

    /**
     * Allocate @p bytes aligned to @p align (power of two).
     * Fatal on exhaustion - the caller sized the module wrong.
     */
    Addr alloc(std::uint64_t bytes, std::uint64_t align = 256);

    /** Return a block; panics on double free / unknown address. */
    void free(Addr addr);

    std::uint64_t capacity() const { return capacity_; }
    std::uint64_t usedBytes() const { return used_; }
    std::uint64_t
    freeBytes() const
    {
        return capacity_ - used_;
    }

    /** Largest single allocation currently satisfiable. */
    std::uint64_t largestFreeBlock() const;

    std::size_t liveAllocations() const { return live_.size(); }

  private:
    Addr base_;
    std::uint64_t capacity_;
    std::uint64_t used_ = 0;

    /** Free blocks: start -> size, non-adjacent (coalesced). */
    std::map<Addr, std::uint64_t> freeList_;
    /** Live blocks: user addr -> (block start, block size). */
    std::map<Addr, std::pair<Addr, std::uint64_t>> live_;
};

} // namespace runtime
} // namespace cxlpnm

#endif // CXLPNM_RUNTIME_ALLOCATOR_HH
