#include "gpu/inference.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace cxlpnm
{
namespace gpu
{

KernelTiming
kernelTime(const llm::Op &op, const GpuSpec &spec,
           const GpuCalibration &calib, int tp)
{
    KernelTiming t;
    t.launchSeconds = calib.kernelLaunchSec;

    // Tensor parallelism splits weights/KV/flops; elementwise ops
    // replicate (each GPU normalises its own activations).
    const bool split = op.k != 0 || op.kvBytes != 0;
    const double div = split ? tp : 1.0;

    // Device-memory traffic: weights + KV shards + activations in/out.
    const double act_bytes =
        2.0 * (static_cast<double>(op.m) * (op.k ? op.k : op.n) +
               static_cast<double>(op.m) * op.n);
    const double bytes =
        (static_cast<double>(op.weightBytes) + op.kvBytes) / div +
        act_bytes;
    const double flops = op.flops() / div;

    // The efficiency knee models GEMV kernels that underuse HBM at low
    // occupancy; pure-activation (elementwise) kernels stream whatever
    // little they touch at full efficiency and are launch-bound.
    const bool act_only = op.weightBytes == 0 && op.kvBytes == 0;
    const double bw_eff = act_only
        ? calib.bwEffMax
        : calib.bandwidthEfficiency(bytes);
    t.memSeconds = bytes / (spec.memBandwidth * bw_eff);
    t.computeSeconds = op.k
        ? flops / (spec.peakFp16Flops * calib.computeEfficiency(flops))
        : 0.0;

    t.memBound = t.memSeconds >= t.computeSeconds;
    t.seconds =
        std::max(t.memSeconds, t.computeSeconds) + t.launchSeconds;
    t.computeUtil = flops / (t.seconds * spec.peakFp16Flops);
    return t;
}

StageResult
runStage(const std::vector<llm::Op> &ops, const GpuSpec &spec,
         const GpuCalibration &calib, int tp, bool offload)
{
    StageResult r;
    int layers_seen = 0;
    int last_layer = -2;

    for (const llm::Op &op : ops) {
        const KernelTiming kt = kernelTime(op, spec, calib, tp);
        r.kernelSeconds += kt.seconds - kt.launchSeconds;
        r.launchSeconds += kt.launchSeconds;
        r.seconds += kt.seconds;
        r.bytes += (static_cast<double>(op.weightBytes) + op.kvBytes) /
            (op.k != 0 || op.kvBytes != 0 ? tp : 1);
        r.flops += op.flops() / (op.k ? tp : 1);
        r.maxComputeUtil = std::max(r.maxComputeUtil, kt.computeUtil);

        // Category buckets include each kernel's launch slot, the way
        // an op-level profiler attributes time.
        if (op.isGemm())
            r.gemmKernelSeconds += kt.seconds;
        else if (op.k != 0 || op.kvBytes != 0)
            r.gemvKernelSeconds += kt.seconds;
        else
            r.otherKernelSeconds += kt.seconds;

        if (op.layer >= 0 && op.layer != last_layer) {
            last_layer = op.layer;
            ++layers_seen;
        }
    }

    // Padding kernels up to kernelsPerLayer (small fusions, dropout
    // stubs, cache writes) contribute launch overhead only.
    const int modeled_per_layer = 12; // ops emitted per layer above
    const int extra =
        std::max(0, calib.kernelsPerLayer - modeled_per_layer);
    const double extra_launch =
        static_cast<double>(layers_seen) * extra * calib.kernelLaunchSec;
    r.launchSeconds += extra_launch;
    r.seconds += extra_launch;

    // Tensor-parallel sync: two all-reduces of the activations per
    // layer (after attention projection and after FC2).
    if (tp > 1) {
        std::uint64_t m_tokens = 1;
        for (const llm::Op &op : ops)
            if (op.kind == llm::OpKind::Qkv)
                m_tokens = op.m;
        const double msg =
            2.0 * static_cast<double>(m_tokens) *
            (ops.empty() ? 0 : 1) *
            [&] {
                for (const llm::Op &op : ops)
                    if (op.kind == llm::OpKind::Proj)
                        return static_cast<double>(op.n);
                return 0.0;
            }();
        const double ar = calib.allReduceSec(msg, tp);
        r.commSeconds = 2.0 * layers_seen * ar;
        r.seconds += r.commSeconds;
    }

    // Offload: stream this stage's full weight set from pageable host
    // memory, serialised with compute (Fig. 3 shows ~no overlap).
    if (offload) {
        double wbytes = 0.0;
        for (const llm::Op &op : ops)
            wbytes += static_cast<double>(op.weightBytes) / tp;
        r.copySeconds = wbytes / calib.pageableCopyBytesPerSec;
        r.seconds += r.copySeconds;
    }
    return r;
}

bool
modelFits(const llm::ModelConfig &cfg, const llm::InferenceRequest &req,
          const GpuSpec &spec, int devices)
{
    const double shard =
        static_cast<double>(cfg.weightBytes()) / devices +
        static_cast<double>(
            cfg.kvCacheBytes(req.inputTokens + req.outputTokens)) /
            devices;
    // ~6% reserved for activations, workspace and the framework.
    return shard * 1.06 < static_cast<double>(spec.memBytes);
}

GpuInferenceResult
runGpuInference(const llm::ModelConfig &cfg,
                const llm::InferenceRequest &req, const GpuSpec &spec,
                const GpuCalibration &calib, int devices)
{
    fatal_if(devices < 1, "need at least one GPU");
    req.validate(cfg);
    GpuInferenceResult res;
    res.devices = devices;
    const bool offload = !modelFits(cfg, req, spec, devices);

    double copy_sec = 0.0;
    double comm_sec = 0.0;
    double busy_bytes_sec = 0.0; // integral of achieved-bandwidth
    double gemv_sec = 0.0;

    // --- Sum stage ---
    const auto sum_ops = llm::sumStageOps(cfg, req.inputTokens);
    const StageResult sum = runStage(sum_ops, spec, calib, devices,
                                     offload);
    res.sumSeconds = sum.seconds;
    res.sumMaxComputeUtil = sum.maxComputeUtil;
    copy_sec += sum.copySeconds;
    comm_sec += sum.commSeconds;
    busy_bytes_sec += sum.bytes;
    gemv_sec += sum.gemvKernelSeconds;

    // --- Gen stages ---
    res.genSeconds.reserve(req.outputTokens);
    double gen_total = 0.0;
    for (std::uint64_t t = 0; t < req.outputTokens; ++t) {
        const auto ops = llm::genStageOps(cfg, req.inputTokens + t + 1);
        const StageResult g =
            runStage(ops, spec, calib, devices, offload);
        const double token_sec = g.seconds + calib.frameworkPerTokenSec;
        res.genSeconds.push_back(token_sec);
        gen_total += token_sec;
        copy_sec += g.copySeconds;
        comm_sec += g.commSeconds;
        busy_bytes_sec += g.bytes;
        gemv_sec += g.gemvKernelSeconds;
        res.genMaxComputeUtil =
            std::max(res.genMaxComputeUtil, g.maxComputeUtil);
    }

    res.totalSeconds = res.sumSeconds + gen_total;
    res.copyFraction =
        res.totalSeconds > 0.0 ? copy_sec / res.totalSeconds : 0.0;
    res.gemvTimeFraction =
        res.totalSeconds > 0.0 ? gemv_sec / res.totalSeconds : 0.0;

    // --- Energy: utilisation-weighted power model (per GPU) ---
    const double bw_util =
        busy_bytes_sec / (res.totalSeconds * spec.memBandwidth);
    const double flops_total =
        llm::requestFlops(cfg, req) / devices;
    const double compute_util =
        flops_total / (res.totalSeconds * spec.peakFp16Flops);
    const double comm_frac = comm_sec / res.totalSeconds;
    const double act = calib.powerBwWeight * bw_util +
        calib.powerComputeWeight * compute_util +
        calib.powerCommWeight * comm_frac;
    res.avgPowerW =
        spec.idlePowerW + (spec.tdpW - spec.idlePowerW) *
            std::min(1.0, act);
    res.energyJoules = res.avgPowerW * res.totalSeconds * devices;
    return res;
}

} // namespace gpu
} // namespace cxlpnm
