/**
 * @file
 * GPU device specifications and the calibration constants of the GPU
 * performance/power model.
 *
 * The paper *measures* its GPU numbers on real A100s/DGX; we model them.
 * Every calibration constant below is pinned to a measured anchor from
 * the paper (see DESIGN.md §5) and documented in place.
 */

#ifndef CXLPNM_GPU_GPU_SPEC_HH
#define CXLPNM_GPU_GPU_SPEC_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace cxlpnm
{
namespace gpu
{

/** One GPU device model. */
struct GpuSpec
{
    std::string name;
    std::uint64_t memBytes = 0;
    double memBandwidth = 0.0;   // bytes/s
    double peakFp16Flops = 0.0;  // dense FP16 tensor-core FLOP/s
    double idlePowerW = 0.0;
    double tdpW = 0.0;
    double priceUsd = 0.0;

    /** A100-SXM4-40GB: the paper's DGX populates these (§VII). */
    static GpuSpec a100_40g();
    /** A100-SXM4-80GB (capacity discussion of §III). */
    static GpuSpec a100_80g();
    /** H100-SXM5 (Table I HBM3 host). */
    static GpuSpec h100();
};

/** Calibrated efficiency/overhead model of the GPU software stack. */
struct GpuCalibration
{
    /**
     * GEMV kernels reach bw * bwEffMax * (1 - exp(-bytes/bwEffScale)).
     * Anchor: Fig. 10's small-model latency gaps (OPT-1.3B/2.7B/6.7B at
     * -59%/-38%/-2% vs CXL-PNM) pin both the asymptote and the knee.
     */
    double bwEffMax = 0.92;
    double bwEffScaleBytes = 30e6;

    /**
     * Fraction of peak FP16 FLOPs large GEMMs achieve.
     * Anchor: Fig. 4 sum-stage utilisation "up to 94%" for the largest
     * kernels; average layer GEMMs land near 0.5 of peak.
     */
    double gemmComputeEffMax = 0.94;
    double gemmComputeEffScaleFlops = 8e9;
    /** Floor so memory-bound GEMVs are never compute-throttled. */
    double computeEffFloor = 0.05;

    /** Per-kernel launch/driver overhead. Anchor: Fig. 10 small models. */
    double kernelLaunchSec = 8e-6;
    /** Kernels per decoder layer (QKV, attention pieces, norms, FFN). */
    int kernelsPerLayer = 12;

    /**
     * Host-side framework work per generated token (sampling, cache
     * bookkeeping, kernel-graph maintenance). Anchor: Fig. 10 OPT-13B
     * throughput gap of ~10.8%.
     */
    double frameworkPerTokenSec = 2e-3;

    /**
     * Effective host-to-device copy bandwidth when a model does not fit
     * and weights stream from pageable host memory each stage
     * (DeepSpeed/FlexGen offload path). Anchor: Fig. 3 (~99% of time in
     * memcpy) and the 138.8x OPT-30B claim in §VIII-A.
     */
    double pageableCopyBytesPerSec = 6.5e9;

    /**
     * NCCL all-reduce cost: alpha(n) = base + perHop * log2(n), plus
     * size * 2(n-1)/n / busBandwidth. Anchor: Fig. 11 GPU MP8 latency.
     */
    double allReduceBaseSec = 10e-6;
    double allReducePerHopSec = 13.3e-6;
    double nvlinkBusBandwidth = 235e9;

    /**
     * Average-power weights: P = idle + (tdp - idle) *
     * (wBw * bwUtil + wCompute * computeUtil + wComm * commFraction).
     * Anchor: 253 W measured for OPT-13B generation (§VIII-A) and
     * Table III's 43.2 kWh/day for the 8-GPU appliance.
     */
    double powerBwWeight = 0.87;
    double powerComputeWeight = 0.50;
    double powerCommWeight = 0.60;

    /** Achieved bandwidth efficiency for a kernel moving @p bytes. */
    double bandwidthEfficiency(double bytes) const;
    /** Achieved compute efficiency for a GEMM of @p flops. */
    double computeEfficiency(double flops) const;
    /** All-reduce time for @p bytes across @p n GPUs. */
    double allReduceSec(double bytes, int n) const;
};

} // namespace gpu
} // namespace cxlpnm

#endif // CXLPNM_GPU_GPU_SPEC_HH
