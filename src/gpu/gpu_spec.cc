#include "gpu/gpu_spec.hh"

#include <cmath>

namespace cxlpnm
{
namespace gpu
{

GpuSpec
GpuSpec::a100_40g()
{
    GpuSpec s;
    s.name = "A100-SXM4-40GB";
    s.memBytes = 40ull * 1000 * 1000 * 1000;
    s.memBandwidth = 1.555e12;
    s.peakFp16Flops = 312e12;
    s.idlePowerW = 90.0;
    s.tdpW = 400.0;
    s.priceUsd = 10000.0; // Table III
    return s;
}

GpuSpec
GpuSpec::a100_80g()
{
    GpuSpec s = a100_40g();
    s.name = "A100-SXM4-80GB";
    s.memBytes = 80ull * 1000 * 1000 * 1000;
    s.memBandwidth = 2.039e12;
    s.priceUsd = 15000.0;
    return s;
}

GpuSpec
GpuSpec::h100()
{
    GpuSpec s;
    s.name = "H100-SXM5-80GB";
    s.memBytes = 80ull * 1000 * 1000 * 1000;
    s.memBandwidth = 4.096e12; // 5 HBM3 stacks (Table I)
    s.peakFp16Flops = 989e12;
    s.idlePowerW = 100.0;
    s.tdpW = 700.0;
    s.priceUsd = 30000.0;
    return s;
}

double
GpuCalibration::bandwidthEfficiency(double bytes) const
{
    // Floor: even tiny kernels stream at a few percent of peak once
    // resident; below that they are launch-latency-bound anyway.
    return std::max(bwEffMax * (1.0 - std::exp(-bytes / bwEffScaleBytes)),
                    0.03);
}

double
GpuCalibration::computeEfficiency(double flops) const
{
    return std::max(gemmComputeEffMax *
                        (1.0 - std::exp(-flops /
                                        gemmComputeEffScaleFlops)),
                    computeEffFloor);
}

double
GpuCalibration::allReduceSec(double bytes, int n) const
{
    if (n <= 1)
        return 0.0;
    const double alpha =
        allReduceBaseSec + allReducePerHopSec * std::log2(n);
    const double beta =
        bytes * (2.0 * (n - 1) / n) / nvlinkBusBandwidth;
    return alpha + beta;
}

} // namespace gpu
} // namespace cxlpnm
