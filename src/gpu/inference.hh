/**
 * @file
 * GPU inference execution model: per-kernel roofline timing with the
 * calibrated efficiency curves, tensor-parallel multi-GPU execution with
 * NCCL all-reduces, and the host-offload path for models that do not fit
 * device memory (§III, Figs. 3/4/10/11 baselines).
 */

#ifndef CXLPNM_GPU_INFERENCE_HH
#define CXLPNM_GPU_INFERENCE_HH

#include <cstdint>
#include <vector>

#include "gpu/gpu_spec.hh"
#include "llm/workload.hh"

namespace cxlpnm
{
namespace gpu
{

/** Timing of one kernel on one GPU. */
struct KernelTiming
{
    double seconds = 0.0;      // end-to-end incl. launch
    double memSeconds = 0.0;   // memory-traffic component
    double computeSeconds = 0.0;
    double launchSeconds = 0.0;
    bool memBound = false;
    /** Achieved / peak FP16 FLOPs over the kernel's residence. */
    double computeUtil = 0.0;
};

/**
 * Roofline time of @p op on @p spec under tensor parallelism degree
 * @p tp (weights, KV and flops split tp ways; elementwise ops are not
 * split).
 */
KernelTiming kernelTime(const llm::Op &op, const GpuSpec &spec,
                        const GpuCalibration &calib, int tp);

/** Aggregate execution of one stage (sum stage or one gen stage). */
struct StageResult
{
    double seconds = 0.0;       // total wall time of the stage
    double kernelSeconds = 0.0; // GPU busy (sum of kernel times)
    double launchSeconds = 0.0;
    double commSeconds = 0.0;   // NCCL all-reduces
    double copySeconds = 0.0;   // host->device weight streaming
    double gemvKernelSeconds = 0.0;
    double gemmKernelSeconds = 0.0;
    double otherKernelSeconds = 0.0;
    double bytes = 0.0;         // device-memory traffic (per GPU)
    double flops = 0.0;         // per GPU
    double maxComputeUtil = 0.0;
};

/**
 * Execute a stage op list.
 * @param tp      Tensor-parallel degree (1 = single GPU).
 * @param offload Stream all stage weights from pageable host memory
 *                first (model does not fit in device memory).
 */
StageResult runStage(const std::vector<llm::Op> &ops, const GpuSpec &spec,
                     const GpuCalibration &calib, int tp, bool offload);

/** End-to-end result of one inference request. */
struct GpuInferenceResult
{
    double sumSeconds = 0.0;
    std::vector<double> genSeconds; // per output token
    double totalSeconds = 0.0;
    double energyJoules = 0.0;
    double avgPowerW = 0.0;     // per GPU
    int devices = 1;

    /** Fraction of total time in host->device copies (Fig. 3). */
    double copyFraction = 0.0;
    /** Fraction of total time in GEMV-shaped kernels (Fig. 4b). */
    double gemvTimeFraction = 0.0;
    /** Peak compute utilisation across sum-stage GEMMs (Fig. 4a). */
    double sumMaxComputeUtil = 0.0;
    /** Peak compute utilisation across gen-stage GEMVs (Fig. 4a). */
    double genMaxComputeUtil = 0.0;

    double
    throughputTokensPerSec() const
    {
        return totalSeconds > 0.0 ? genSeconds.size() / totalSeconds
                                  : 0.0;
    }

    /** Latency of the whole request. */
    double latencySeconds() const { return totalSeconds; }

    /** Tokens per joule (the paper's tokens/energy metric). */
    double
    tokensPerJoule() const
    {
        return energyJoules > 0.0 ? genSeconds.size() / energyJoules
                                  : 0.0;
    }
};

/**
 * Run a full request on @p devices GPUs with tensor parallelism
 * (FasterTransformer-style). Chooses the offload path automatically when
 * the per-GPU weight shard does not fit.
 */
GpuInferenceResult runGpuInference(const llm::ModelConfig &cfg,
                                   const llm::InferenceRequest &req,
                                   const GpuSpec &spec,
                                   const GpuCalibration &calib,
                                   int devices);

/** Whether the model (weights+KV at max context) fits one GPU shard. */
bool modelFits(const llm::ModelConfig &cfg,
               const llm::InferenceRequest &req, const GpuSpec &spec,
               int devices);

} // namespace gpu
} // namespace cxlpnm

#endif // CXLPNM_GPU_INFERENCE_HH
