#include "fleet/autoscaler.hh"

namespace cxlpnm
{
namespace fleet
{

void
AutoscalerConfig::validate() const
{
    if (!(highWatermarkSeconds > lowWatermarkSeconds) ||
        lowWatermarkSeconds < 0.0)
        throw FleetConfigError(
            "autoscaler: watermarks must satisfy 0 <= low < high");
    if (sustainSeconds < 0.0 || cooldownSeconds < 0.0)
        throw FleetConfigError(
            "autoscaler: sustain/cooldown windows cannot be negative");
    if (minActive == 0)
        throw FleetConfigError(
            "autoscaler: need at least one Active backend");
}

Autoscaler::Autoscaler(ClusterRouter &router,
                       const AutoscalerConfig &cfg)
    : router_(router), cfg_(cfg)
{
    cfg_.validate();
    active_.assign(router_.backendCount(), 0.0);
    idle_.assign(router_.backendCount(), 0.0);
}

void
Autoscaler::integrate(double now)
{
    const double dt = now - lastNow_;
    if (dt <= 0.0)
        return;
    for (std::size_t i = 0; i < router_.backendCount(); ++i) {
        if (router_.state(i) == BackendState::Offline)
            idle_[i] += dt;
        else
            active_[i] += dt;
    }
    lastNow_ = now;
}

void
Autoscaler::observe(double now)
{
    integrate(now);

    // Retire Draining backends that finished their in-flight work:
    // powered down to idle from here on.
    for (std::size_t i = 0; i < router_.backendCount(); ++i)
        if (router_.state(i) == BackendState::Draining &&
            router_.backend(i).outstandingTokens() == 0)
            router_.setState(i, BackendState::Offline);

    if (!cfg_.enabled)
        return;

    const double backlog = router_.backlogSeconds();
    const bool cooled = now - lastActionAt_ >= cfg_.cooldownSeconds;

    if (backlog >= cfg_.highWatermarkSeconds) {
        belowSince_ = -1.0;
        if (aboveSince_ < 0.0)
            aboveSince_ = now;
        if (now - aboveSince_ >= cfg_.sustainSeconds && cooled) {
            // Power up the lowest-index backend not currently Active.
            for (std::size_t i = 0; i < router_.backendCount(); ++i) {
                if (router_.state(i) == BackendState::Active)
                    continue;
                router_.setState(i, BackendState::Active);
                events_.push_back({now, true, i, backlog});
                lastActionAt_ = now;
                aboveSince_ = -1.0;
                break;
            }
        }
    } else if (backlog <= cfg_.lowWatermarkSeconds) {
        aboveSince_ = -1.0;
        if (belowSince_ < 0.0)
            belowSince_ = now;
        if (now - belowSince_ >= cfg_.sustainSeconds && cooled &&
            router_.activeCount() > cfg_.minActive) {
            // Drain the highest-index Active backend.
            for (std::size_t i = router_.backendCount(); i-- > 0;) {
                if (router_.state(i) != BackendState::Active)
                    continue;
                router_.setState(i, BackendState::Draining);
                events_.push_back({now, false, i, backlog});
                lastActionAt_ = now;
                belowSince_ = -1.0;
                break;
            }
        }
    } else {
        aboveSince_ = -1.0;
        belowSince_ = -1.0;
    }
}

void
Autoscaler::finish(double horizon_seconds)
{
    integrate(horizon_seconds);
}

std::uint64_t
Autoscaler::scaleUps() const
{
    std::uint64_t n = 0;
    for (const auto &e : events_)
        if (e.up)
            ++n;
    return n;
}

std::uint64_t
Autoscaler::scaleDowns() const
{
    std::uint64_t n = 0;
    for (const auto &e : events_)
        if (!e.up)
            ++n;
    return n;
}

} // namespace fleet
} // namespace cxlpnm
