#include "fleet/diurnal.hh"

#include <cmath>

#include "sim/logging.hh"

namespace cxlpnm
{
namespace fleet
{

double
DiurnalConfig::rateAt(double t) const
{
    if (!segments.empty()) {
        double r = segments.front().requestsPerSec;
        for (const auto &s : segments) {
            if (s.startSeconds > t)
                break;
            r = s.requestsPerSec;
        }
        return r;
    }
    return baseRequestsPerSec *
        (1.0 +
         amplitude *
             std::sin(2.0 * M_PI * t / periodSeconds + phaseRadians));
}

double
DiurnalConfig::peakRate() const
{
    if (!segments.empty()) {
        double r = 0.0;
        for (const auto &s : segments)
            r = std::max(r, s.requestsPerSec);
        return r;
    }
    return baseRequestsPerSec * (1.0 + amplitude);
}

void
DiurnalConfig::validate() const
{
    if (numRequests == 0)
        throw serve::TraceConfigError(
            "diurnal trace: numRequests must be positive");
    if (segments.empty()) {
        if (!(baseRequestsPerSec > 0.0))
            throw serve::TraceConfigError(
                "diurnal trace: base rate must be positive");
        if (amplitude < 0.0 || amplitude >= 1.0)
            throw serve::TraceConfigError(
                "diurnal trace: amplitude must lie in [0, 1) so the "
                "trough rate stays positive");
        if (!(periodSeconds > 0.0))
            throw serve::TraceConfigError(
                "diurnal trace: period must be positive");
    } else {
        if (segments.front().startSeconds != 0.0)
            throw serve::TraceConfigError(
                "diurnal trace: the first segment must start at 0");
        for (std::size_t i = 0; i < segments.size(); ++i) {
            if (!(segments[i].requestsPerSec > 0.0))
                throw serve::TraceConfigError(
                    "diurnal trace: segment rates must be positive");
            if (i > 0 && segments[i].startSeconds <=
                             segments[i - 1].startSeconds)
                throw serve::TraceConfigError(
                    "diurnal trace: segment starts must strictly "
                    "increase");
        }
    }
    if (bursty) {
        if (!(burstOnSeconds > 0.0) || !(burstOffSeconds > 0.0))
            throw serve::TraceConfigError(
                "diurnal trace: burst dwell times must be positive");
        if (burstOffRateFraction < 0.0 || burstOffRateFraction > 1.0)
            throw serve::TraceConfigError(
                "diurnal trace: burst OFF rate fraction must lie in "
                "[0, 1]");
    }
    if (numTenants == 0)
        throw serve::TraceConfigError(
            "diurnal trace: need at least one tenant");
    if (ttftDeadlineSeconds < 0.0)
        throw serve::TraceConfigError(
            "diurnal trace: deadline cannot be negative");
}

DiurnalGenerator::DiurnalGenerator(const DiurnalConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed)
{
    cfg_.validate();
}

void
DiurnalGenerator::advancePhase()
{
    phaseOn_ = !phaseOn_;
    const double mean =
        phaseOn_ ? cfg_.burstOnSeconds : cfg_.burstOffSeconds;
    phaseEndClock_ = phaseEndClock_ -
        mean * std::log(1.0 - rng_.nextDouble());
}

serve::ServeRequest
DiurnalGenerator::next()
{
    fatal_if(exhausted(), "diurnal generator exhausted");

    // Lewis-Shedler thinning: candidate points at the peak rate,
    // accepted with probability (schedule x burst phase) / peak.
    const double peak = cfg_.peakRate();
    for (;;) {
        clock_ -= std::log(1.0 - rng_.nextDouble()) / peak;
        if (cfg_.bursty)
            while (clock_ >= phaseEndClock_)
                advancePhase();
        double rate = cfg_.rateAt(clock_);
        if (cfg_.bursty && !phaseOn_)
            rate *= cfg_.burstOffRateFraction;
        if (rng_.nextDouble() * peak < rate)
            break;
    }

    serve::ServeRequest req;
    req.id = produced_;
    req.arrivalSeconds = clock_;
    req.inputTokens = cfg_.input.draw(rng_);
    req.outputTokens = cfg_.output.draw(rng_);
    if (cfg_.numTenants > 1)
        req.tenant = rng_.nextBelow(cfg_.numTenants);
    req.deadlineSeconds = cfg_.ttftDeadlineSeconds;
    ++produced_;
    return req;
}

std::vector<serve::ServeRequest>
DiurnalGenerator::generate(const DiurnalConfig &cfg)
{
    DiurnalGenerator gen(cfg);
    std::vector<serve::ServeRequest> out;
    out.reserve(cfg.numRequests);
    while (!gen.exhausted())
        out.push_back(gen.next());
    return out;
}

} // namespace fleet
} // namespace cxlpnm
