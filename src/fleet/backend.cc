#include "fleet/backend.hh"

#include <vector>

#include "serve/cost_model.hh"

namespace cxlpnm
{
namespace fleet
{

const char *
backendClassName(BackendClass c)
{
    switch (c) {
      case BackendClass::Pnm:
        return "pnm";
      case BackendClass::Gpu:
        return "gpu";
    }
    return "?";
}

BackendCostSpec
pnmCostSpec(const core::PnmPlatformConfig &pcfg, int devices)
{
    // Table III: 15.4 kWh/day for the 8-device appliance sustains
    // 641.7 W, i.e. 80.2 W per LPDDR-based device.
    BackendCostSpec s;
    s.devices = devices;
    s.devicePriceUsd = pcfg.priceUsd;
    s.activePowerW = 80.2 * devices;
    s.idlePowerW = 15.0 * devices;
    return s;
}

BackendCostSpec
gpuCostSpec(const gpu::GpuSpec &spec, int devices)
{
    // Table III: 43.2 kWh/day for the 8-GPU DGX sustains 1800 W,
    // i.e. 225 W per GPU under the generation workload.
    BackendCostSpec s;
    s.devices = devices;
    s.devicePriceUsd = spec.priceUsd;
    s.activePowerW = 225.0 * devices;
    s.idlePowerW = spec.idlePowerW * devices;
    return s;
}

void
BackendConfig::validate() const
{
    if (name.empty())
        throw FleetConfigError("backend needs a name");
    if (plan.modelParallel < 1 || plan.dataParallel < 1)
        throw FleetConfigError("backend \"" + name +
                               "\" has a bad parallelism plan");
    if (capacityContextTokens == 0)
        throw FleetConfigError(
            "backend \"" + name +
            "\" needs a positive capacity context");
}

DispatcherBackend::DispatcherBackend(
    BackendClass cls, const llm::ModelConfig &model,
    const serve::BatchCostModel &cost,
    std::uint64_t kv_capacity_bytes, const BackendConfig &cfg,
    const BackendCostSpec &cost_spec)
    : name_(cfg.name), cls_(cls), costSpec_(cost_spec)
{
    cfg.validate();
    metrics_ = std::make_unique<serve::ServeMetrics>(
        nullptr, cfg.name, cfg.metrics);
    app_ = std::make_unique<serve::ApplianceDispatcher>(
        model, cost, cfg.plan, kv_capacity_bytes, cfg.sched,
        *metrics_);

    // Saturation estimate: every data-parallel group decodes a full
    // batch at the typical context, one token per member per
    // iteration.
    const std::vector<std::uint64_t> contexts(
        cfg.sched.maxBatch, cfg.capacityContextTokens);
    const double iter = cost.decodeIterationSeconds(contexts);
    if (!(iter > 0.0))
        throw FleetConfigError("backend \"" + cfg.name +
                               "\" has a degenerate cost model");
    capacity_ = cfg.plan.dataParallel *
        static_cast<double>(cfg.sched.maxBatch) / iter;
}

std::uint64_t
DispatcherBackend::outstandingTokens() const
{
    std::uint64_t t = 0;
    for (std::size_t g = 0; g < app_->groupCount(); ++g)
        t += app_->group(g).outstandingTokens();
    return t;
}

std::size_t
DispatcherBackend::queueDepth() const
{
    std::size_t d = 0;
    for (std::size_t g = 0; g < app_->groupCount(); ++g)
        d += app_->group(g).queueDepth();
    return d;
}

bool
DispatcherBackend::healthyAt(double t) const
{
    for (std::size_t g = 0; g < app_->groupCount(); ++g)
        if (!app_->group(g).degradedAt(t))
            return true;
    return false;
}

PnmBackend::PnmBackend(const llm::ModelConfig &model,
                       const core::PnmPlatformConfig &pcfg,
                       const serve::BatchCostModel &cost,
                       const BackendConfig &cfg)
    : DispatcherBackend(
          BackendClass::Pnm, model, cost,
          serve::pnmKvCapacityBytes(model, pcfg,
                                    cfg.plan.modelParallel),
          cfg,
          pnmCostSpec(pcfg,
                      cfg.plan.modelParallel * cfg.plan.dataParallel))
{
}

GpuBackend::GpuBackend(const llm::ModelConfig &model,
                       const gpu::GpuSpec &spec,
                       const serve::BatchCostModel &cost,
                       const BackendConfig &cfg)
    : DispatcherBackend(
          BackendClass::Gpu, model, cost,
          serve::gpuKvCapacityBytes(model, spec,
                                    cfg.plan.modelParallel),
          cfg,
          gpuCostSpec(spec,
                      cfg.plan.modelParallel * cfg.plan.dataParallel))
{
}

} // namespace fleet
} // namespace cxlpnm
