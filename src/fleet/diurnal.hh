/**
 * @file
 * Diurnal traffic for the fleet simulator: a non-homogeneous Poisson
 * arrival stream whose rate follows a day/night schedule (sinusoidal
 * or piecewise-constant), with the serving layer's MMPP burst model
 * optionally modulating on top - the load shape autoscaling exists
 * for. Layered on the RequestGenerator building blocks (SplitMix64,
 * LengthDistribution, tenant/deadline stamping) but with its own RNG
 * stream, so every pre-existing RequestGenerator trace stays
 * bit-identical. Fully deterministic under a seed: arrivals come from
 * Lewis-Shedler thinning against the schedule's peak rate, a single
 * RNG stream, no wall clock.
 */

#ifndef CXLPNM_FLEET_DIURNAL_HH
#define CXLPNM_FLEET_DIURNAL_HH

#include <cstdint>
#include <vector>

#include "serve/request_generator.hh"

namespace cxlpnm
{
namespace fleet
{

/** One piecewise-constant schedule step (rate from its start on). */
struct DiurnalSegment
{
    double startSeconds = 0.0;
    double requestsPerSec = 0.0;
};

/** A day/night request schedule plus the per-request draws. */
struct DiurnalConfig
{
    /**
     * Sinusoidal schedule (the default):
     *   r(t) = base * (1 + amplitude * sin(2*pi*t/period + phase)),
     * amplitude in [0, 1) so the trough rate stays positive.
     */
    double baseRequestsPerSec = 1.0;
    double amplitude = 0.5;
    double periodSeconds = 86400.0;
    double phaseRadians = 0.0;

    /**
     * Piecewise-constant schedule: when non-empty it replaces the
     * sinusoid. Segments must start at 0, strictly increase, and
     * carry positive rates; the last one extends forever.
     */
    std::vector<DiurnalSegment> segments;

    /**
     * MMPP burst modulation on top of the schedule (the serving
     * layer's two-phase model): exponential ON/OFF dwells; the
     * schedule rate applies while ON and is scaled by
     * burstOffRateFraction while OFF. Off by default.
     */
    bool bursty = false;
    double burstOnSeconds = 1.0;
    double burstOffSeconds = 1.0;
    double burstOffRateFraction = 0.0;

    std::size_t numRequests = 128;
    std::uint64_t seed = 1;
    serve::LengthDistribution input =
        serve::LengthDistribution::fixed(64);
    serve::LengthDistribution output =
        serve::LengthDistribution::fixed(256);
    /** Tenant ids drawn uniformly from [0, numTenants). */
    std::uint64_t numTenants = 1;
    /** TTFT deadline stamped on every request (0 = none). */
    double ttftDeadlineSeconds = 0.0;

    /** Schedule rate at @p t (bursts excluded). */
    double rateAt(double t) const;
    /** Peak schedule rate (the thinning bound). */
    double peakRate() const;

    /** @throws serve::TraceConfigError on a schedule no generator
     *  could draw from (bad amplitude/period/segments/counts). */
    void validate() const;
};

/**
 * Streams one diurnal trace; arrival times are monotonically
 * non-decreasing and the whole stream is a pure function of the
 * config.
 */
class DiurnalGenerator
{
  public:
    /** Validates @p cfg (throws serve::TraceConfigError). */
    explicit DiurnalGenerator(const DiurnalConfig &cfg);

    bool exhausted() const { return produced_ >= cfg_.numRequests; }

    /** Next request; fatal when exhausted. */
    serve::ServeRequest next();

    /** Materialise the whole trace (convenience for benches/tests). */
    static std::vector<serve::ServeRequest>
    generate(const DiurnalConfig &cfg);

  private:
    /** Flip the MMPP phase and draw the new dwell time. */
    void advancePhase();

    DiurnalConfig cfg_;
    SplitMix64 rng_;
    std::size_t produced_ = 0;
    double clock_ = 0.0;
    bool phaseOn_ = true;
    double phaseEndClock_ = 0.0;
};

} // namespace fleet
} // namespace cxlpnm

#endif // CXLPNM_FLEET_DIURNAL_HH
