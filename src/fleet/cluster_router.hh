/**
 * @file
 * Cluster-level request routing across N heterogeneous Backends: one
 * per-tenant FIFO staging tier serviced round-robin (so same-instant
 * bursts cannot let one tenant monopolise the fleet), least-loaded
 * routing on *normalized* backlog (outstanding tokens over the
 * backend's capacity estimate, i.e. drain seconds - the figure that
 * makes a 2-group PNM box and an 8-GPU box comparable), tenant
 * affinity with a bounded-slack escape hatch, and degraded-node
 * drain: a backend whose device groups all sit in post-failure
 * cooldown (the PR 3 fault/RAS signal), or one an operator / the
 * autoscaler marked Draining, receives no new work while it finishes
 * what it holds.
 */

#ifndef CXLPNM_FLEET_CLUSTER_ROUTER_HH
#define CXLPNM_FLEET_CLUSTER_ROUTER_HH

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "fleet/backend.hh"

namespace cxlpnm
{
namespace fleet
{

/** Provisioning state of one backend, owned by the router. */
enum class BackendState
{
    Active,   // takes new work
    Draining, // finishes in-flight work, takes nothing new
    Offline,  // powered down to idle (autoscaled away)
};

const char *backendStateName(BackendState s);

/** Routing policy knobs. */
struct RouterConfig
{
    /**
     * Tenant affinity: keep routing a tenant to its previous backend
     * (KV prefix locality at fleet granularity) as long as that
     * backend's backlog is within affinitySlackSeconds of the
     * least-loaded candidate; beyond the slack, load wins.
     */
    bool affinity = true;
    double affinitySlackSeconds = 2.0;

    /** @throws FleetConfigError on a negative slack. */
    void validate() const;
};

/** Routes one fleet-wide arrival stream across backends. */
class ClusterRouter
{
  public:
    /** Non-owning; every backend must outlive the router.
     *  @throws FleetConfigError on an empty fleet or bad config. */
    ClusterRouter(std::vector<Backend *> backends,
                  const RouterConfig &cfg = {});

    std::size_t backendCount() const { return backends_.size(); }
    Backend &backend(std::size_t i) { return *backends_.at(i); }
    const Backend &backend(std::size_t i) const
    {
        return *backends_.at(i);
    }

    BackendState state(std::size_t i) const { return states_.at(i); }
    void setState(std::size_t i, BackendState s)
    {
        states_.at(i) = s;
    }

    std::size_t activeCount() const;
    /** Saturation estimate of the Active backends, tokens/s. */
    double activeCapacityTokensPerSec() const;

    /**
     * Stage an arrival in its tenant's queue. Arrivals must come in
     * arrival-time order; a later arrival instant flushes everything
     * staged at earlier instants through routing first.
     */
    void submit(const serve::ServeRequest &req);

    /** Flush the staging tier and drain every backend. */
    void drain();

    /** The fleet finishes when its slowest backend does. */
    double clockSeconds() const;

    /**
     * Fleet-normalized load: outstanding tokens on Active backends
     * over their summed capacity - the backlog drain time the
     * autoscaler holds against its watermarks.
     */
    double backlogSeconds() const;

    /** Requests routed to backend @p i so far. */
    std::uint64_t routedTo(std::size_t i) const
    {
        return routed_.at(i);
    }
    /** Routes decided by tenant affinity rather than load. */
    std::uint64_t affinityHits() const { return affinityHits_; }
    /** Routes that skipped an unhealthy (degraded) Active backend. */
    std::uint64_t degradedSkips() const { return degradedSkips_; }

  private:
    /** Advance non-offline backends to @p now and route everything
     *  staged, one request per tenant per round-robin pass. */
    void flush(double now);

    /** Route one request at @p now (the decision proper). */
    void route(const serve::ServeRequest &req, double now);

    std::vector<Backend *> backends_;
    RouterConfig cfg_;
    std::vector<BackendState> states_;
    std::vector<std::uint64_t> routed_;
    std::uint64_t affinityHits_ = 0;
    std::uint64_t degradedSkips_ = 0;

    /** Tenant -> backend of the latest route (ordered map so flush
     *  order never depends on hash layout). */
    std::map<std::uint64_t, std::size_t> affinity_;

    /** Per-tenant staging queues plus the round-robin cursor. */
    std::map<std::uint64_t, std::deque<serve::ServeRequest>> pending_;
    std::size_t pendingN_ = 0;
    std::size_t rrCursor_ = 0;
    double pendingTime_ = 0.0;
    double lastArrival_ = 0.0;
};

} // namespace fleet
} // namespace cxlpnm

#endif // CXLPNM_FLEET_CLUSTER_ROUTER_HH
