/**
 * @file
 * Watermark autoscaling for the fleet simulator: the router's
 * normalized backlog (drain seconds) is observed at every arrival;
 * when it holds above the high watermark for a sustained window the
 * lowest-index non-Active backend is powered back up, when it holds
 * below the low watermark the highest-index Active backend is marked
 * Draining (it finishes its in-flight work, then powers down to
 * idle). A cooldown between actions gives the fleet time to absorb
 * each step - the hysteresis that keeps the scaler from flapping on
 * MMPP bursts.
 *
 * The autoscaler also keeps the fleet TCO ledger: appliance-seconds
 * at active power (Active/Draining) vs idle power (Offline), per
 * backend, integrated over the observation clock. Deterministic: all
 * decisions are pure functions of arrival-time observations.
 */

#ifndef CXLPNM_FLEET_AUTOSCALER_HH
#define CXLPNM_FLEET_AUTOSCALER_HH

#include <cstdint>
#include <vector>

#include "fleet/cluster_router.hh"

namespace cxlpnm
{
namespace fleet
{

/** Watermarks, hysteresis, and the provisioning floor. */
struct AutoscalerConfig
{
    /** False: observe() only keeps the TCO ledger (static fleet). */
    bool enabled = true;
    /** Backlog drain seconds that trigger a scale-up. */
    double highWatermarkSeconds = 8.0;
    /** Backlog drain seconds that allow a scale-down. */
    double lowWatermarkSeconds = 1.0;
    /** The watermark must hold this long before acting. */
    double sustainSeconds = 5.0;
    /** Minimum gap between consecutive scaling actions. */
    double cooldownSeconds = 20.0;
    /** Never scale below this many Active backends. */
    std::size_t minActive = 1;

    /** @throws FleetConfigError on inverted watermarks or negative
     *  windows. */
    void validate() const;
};

/** One scaling action, for reports and gates. */
struct AutoscalerEvent
{
    double seconds = 0.0;
    bool up = false;
    std::size_t backend = 0;
    /** The backlog figure that triggered the action. */
    double backlogSeconds = 0.0;
};

/** Flexes a ClusterRouter's backends on sustained watermarks. */
class Autoscaler
{
  public:
    /** @throws FleetConfigError via AutoscalerConfig::validate(). */
    Autoscaler(ClusterRouter &router, const AutoscalerConfig &cfg);

    /**
     * One observation at @p now (monotone non-decreasing; call per
     * arrival). Integrates the power ledger, retires Draining
     * backends that emptied (-> Offline), and applies the watermark
     * logic.
     */
    void observe(double now);

    /** Close the ledger at the measurement horizon. */
    void finish(double horizon_seconds);

    const std::vector<AutoscalerEvent> &events() const
    {
        return events_;
    }
    std::uint64_t scaleUps() const;
    std::uint64_t scaleDowns() const;

    /** Appliance-seconds at active power (Active/Draining). */
    double activeSeconds(std::size_t i) const
    {
        return active_.at(i);
    }
    /** Appliance-seconds powered down to idle (Offline). */
    double idleSeconds(std::size_t i) const { return idle_.at(i); }

  private:
    /** Advance the ledger to @p now. */
    void integrate(double now);

    ClusterRouter &router_;
    AutoscalerConfig cfg_;
    std::vector<double> active_;
    std::vector<double> idle_;
    std::vector<AutoscalerEvent> events_;
    double lastNow_ = 0.0;
    double aboveSince_ = -1.0;
    double belowSince_ = -1.0;
    double lastActionAt_ = -1.0e300;
};

} // namespace fleet
} // namespace cxlpnm

#endif // CXLPNM_FLEET_AUTOSCALER_HH
