#include "fleet/cluster_router.hh"

#include <algorithm>
#include <limits>

namespace cxlpnm
{
namespace fleet
{

const char *
backendStateName(BackendState s)
{
    switch (s) {
      case BackendState::Active:
        return "active";
      case BackendState::Draining:
        return "draining";
      case BackendState::Offline:
        return "offline";
    }
    return "?";
}

void
RouterConfig::validate() const
{
    if (affinitySlackSeconds < 0.0)
        throw FleetConfigError(
            "router: affinity slack cannot be negative");
}

ClusterRouter::ClusterRouter(std::vector<Backend *> backends,
                             const RouterConfig &cfg)
    : backends_(std::move(backends)), cfg_(cfg)
{
    cfg_.validate();
    if (backends_.empty())
        throw FleetConfigError("router: the fleet is empty");
    for (const Backend *b : backends_)
        if (b == nullptr)
            throw FleetConfigError("router: null backend");
    states_.assign(backends_.size(), BackendState::Active);
    routed_.assign(backends_.size(), 0);
}

std::size_t
ClusterRouter::activeCount() const
{
    std::size_t n = 0;
    for (const BackendState s : states_)
        if (s == BackendState::Active)
            ++n;
    return n;
}

double
ClusterRouter::activeCapacityTokensPerSec() const
{
    double c = 0.0;
    for (std::size_t i = 0; i < backends_.size(); ++i)
        if (states_[i] == BackendState::Active)
            c += backends_[i]->capacityTokensPerSec();
    return c;
}

double
ClusterRouter::backlogSeconds() const
{
    const double cap = activeCapacityTokensPerSec();
    if (!(cap > 0.0))
        return 0.0;
    std::uint64_t tokens = 0;
    for (std::size_t i = 0; i < backends_.size(); ++i)
        if (states_[i] == BackendState::Active)
            tokens += backends_[i]->outstandingTokens();
    return static_cast<double>(tokens) / cap;
}

void
ClusterRouter::submit(const serve::ServeRequest &req)
{
    fatal_if(req.arrivalSeconds < lastArrival_,
             "router: arrivals must be submitted in order");
    lastArrival_ = req.arrivalSeconds;
    if (pendingN_ > 0 && req.arrivalSeconds > pendingTime_)
        flush(pendingTime_);
    pendingTime_ = req.arrivalSeconds;
    pending_[req.tenant].push_back(req);
    ++pendingN_;
}

void
ClusterRouter::flush(double now)
{
    if (pendingN_ == 0)
        return;
    // Bring every provisioned backend to the decision instant so the
    // load probes compare current queues, not stale clocks. Offline
    // boxes are powered down; their clocks stay where they stopped.
    for (std::size_t i = 0; i < backends_.size(); ++i)
        if (states_[i] != BackendState::Offline)
            backends_[i]->advanceTo(now);

    std::vector<std::uint64_t> tenants;
    tenants.reserve(pending_.size());
    for (const auto &kv : pending_)
        tenants.push_back(kv.first);

    // One request per tenant per pass, starting the pass at a
    // rotating cursor: a burst from one tenant cannot starve the
    // others, and no tenant is permanently first in line.
    const std::size_t start =
        tenants.empty() ? 0 : rrCursor_ % tenants.size();
    while (pendingN_ > 0) {
        for (std::size_t k = 0; k < tenants.size(); ++k) {
            auto &q = pending_[tenants[(start + k) % tenants.size()]];
            if (q.empty())
                continue;
            route(q.front(), now);
            q.pop_front();
            --pendingN_;
        }
    }
    pending_.clear();
    ++rrCursor_;
}

void
ClusterRouter::route(const serve::ServeRequest &req, double now)
{
    // Candidate tiers: healthy Active backends first; if every Active
    // backend is degraded, load still picks among them (the fleet
    // never deadlocks); only with nothing Active at all does work
    // fall onto a Draining backend.
    std::vector<std::size_t> candidates;
    bool sawDegradedActive = false;
    for (std::size_t i = 0; i < backends_.size(); ++i) {
        if (states_[i] != BackendState::Active)
            continue;
        if (backends_[i]->healthyAt(now))
            candidates.push_back(i);
        else
            sawDegradedActive = true;
    }
    if (sawDegradedActive && !candidates.empty())
        ++degradedSkips_;
    if (candidates.empty()) {
        for (std::size_t i = 0; i < backends_.size(); ++i)
            if (states_[i] == BackendState::Active)
                candidates.push_back(i);
    }
    if (candidates.empty()) {
        for (std::size_t i = 0; i < backends_.size(); ++i)
            if (states_[i] == BackendState::Draining)
                candidates.push_back(i);
    }
    panic_if(candidates.empty(),
             "router: no backend left to route to");

    // Least normalized backlog (drain seconds) across the candidates.
    std::size_t best = candidates.front();
    double bestLoad = std::numeric_limits<double>::infinity();
    for (const std::size_t i : candidates) {
        const double load = backends_[i]->backlogSeconds();
        if (load < bestLoad) {
            bestLoad = load;
            best = i;
        }
    }

    // Affinity: stick with the tenant's previous backend while its
    // backlog stays within the slack of the least-loaded choice.
    std::size_t chosen = best;
    if (cfg_.affinity) {
        const auto it = affinity_.find(req.tenant);
        if (it != affinity_.end() && it->second != best &&
            std::find(candidates.begin(), candidates.end(),
                      it->second) != candidates.end() &&
            backends_[it->second]->backlogSeconds() <=
                bestLoad + cfg_.affinitySlackSeconds) {
            chosen = it->second;
            ++affinityHits_;
        }
        affinity_[req.tenant] = chosen;
    }

    ++routed_[chosen];
    backends_[chosen]->submit(req);
}

void
ClusterRouter::drain()
{
    flush(pendingTime_);
    for (Backend *b : backends_)
        b->drain();
}

double
ClusterRouter::clockSeconds() const
{
    double t = 0.0;
    for (const Backend *b : backends_)
        t = std::max(t, b->clockSeconds());
    return t;
}

} // namespace fleet
} // namespace cxlpnm
