/**
 * @file
 * The common Backend contract of the rack-scale fleet simulator: one
 * serving appliance - a CXL-PNM box or a GPU (DGX-style) box - behind
 * a uniform submit / capacity / health / cost surface, so the cluster
 * router, the autoscaler, and the fleet TCO roll-up never care which
 * silicon is underneath.
 *
 * Both concrete backends wrap the same ApplianceDispatcher (the
 * serving layer has priced GPUs through calibrateGpuCostModel since
 * the platform=gpu demo path); what the Backend extraction adds is the
 * uniform capacity estimate, the health probe the router drains on,
 * and the cost attributes (device price, active/idle power) the fleet
 * TCO aggregates. This is the seam the ROADMAP calls out for hybrid
 * prefill-on-GPU / decode-on-PNM experiments: a router sees only
 * Backend, so phase-specialised backends slot in without touching it.
 */

#ifndef CXLPNM_FLEET_BACKEND_HH
#define CXLPNM_FLEET_BACKEND_HH

#include <cstdint>
#include <memory>
#include <string>

#include "core/platform.hh"
#include "gpu/gpu_spec.hh"
#include "serve/dispatcher.hh"
#include "sim/logging.hh"

namespace cxlpnm
{
namespace fleet
{

/**
 * A fleet configuration that cannot be simulated: malformed backend,
 * router, traffic, or autoscaler parameters. Thrown instead of a
 * fatal so drivers can print a message and exit cleanly (the same
 * contract as TraceConfigError / CalibrationError / TcoError).
 */
class FleetConfigError : public FatalError
{
  public:
    using FatalError::FatalError;
};

/** Which silicon an appliance is built from (the TCO class key). */
enum class BackendClass
{
    Pnm,
    Gpu,
};

const char *backendClassName(BackendClass c);

/** Cost attributes of one appliance, fed to the fleet TCO roll-up. */
struct BackendCostSpec
{
    int devices = 8;
    double devicePriceUsd = 0.0;
    /** Whole-appliance sustained power while serving, watts. */
    double activePowerW = 0.0;
    /** Whole-appliance power while provisioned but idle, watts. */
    double idlePowerW = 0.0;
};

/**
 * Table III-anchored cost spec of a CXL-PNM appliance: device price
 * from the platform config ($7000), 80.2 W/device sustained (the
 * paper's 15.4 kWh/day for 8 devices), 15 W/device idle (LPDDR
 * retention + controller, a modeling choice - no paper anchor).
 */
BackendCostSpec pnmCostSpec(const core::PnmPlatformConfig &pcfg,
                            int devices);

/**
 * Table III-anchored cost spec of a GPU appliance: device price and
 * idle power from the GpuSpec ($10000 / 90 W for the A100-40G),
 * 225 W/device sustained (the paper's 43.2 kWh/day for 8 GPUs).
 */
BackendCostSpec gpuCostSpec(const gpu::GpuSpec &spec, int devices);

/** Construction-time knobs shared by every backend kind. */
struct BackendConfig
{
    std::string name;
    /** MP x DP device layout inside the appliance. */
    core::ParallelismPlan plan{1, 2};
    serve::SchedulerConfig sched;
    serve::MetricsConfig metrics;
    /**
     * Attended context the capacity estimate is quoted at (a typical
     * mid-decode request); bounds nothing, only normalizes routing.
     */
    std::uint64_t capacityContextTokens = 128;

    /** @throws FleetConfigError on a malformed plan or context. */
    void validate() const;
};

/** One appliance behind the uniform fleet surface. */
class Backend
{
  public:
    virtual ~Backend() = default;

    virtual const std::string &name() const = 0;
    virtual BackendClass backendClass() const = 0;

    /** Device price and active/idle power, for the fleet TCO. */
    virtual const BackendCostSpec &costSpec() const = 0;

    /**
     * Analytic saturation estimate, tokens/s: every device group
     * decoding a full batch at the configured typical context. The
     * router normalizes outstanding work against this so a 2-group
     * PNM box and an 8-GPU box compare on backlog drain time, not
     * raw token counts.
     */
    virtual double capacityTokensPerSec() const = 0;

    // --- serving surface ---
    virtual void submit(const serve::ServeRequest &req) = 0;
    /** Advance the appliance's clock with no new work. */
    virtual void advanceTo(double t) = 0;
    virtual void drain() = 0;
    virtual double clockSeconds() const = 0;

    // --- load probes ---
    /** Tokens of work not yet computed, over all device groups. */
    virtual std::uint64_t outstandingTokens() const = 0;
    /** Queued-but-not-running requests, over all device groups. */
    virtual std::size_t queueDepth() const = 0;
    /** Backlog drain time at saturation, seconds (the router's and
     *  autoscaler's normalized load figure). */
    double
    backlogSeconds() const
    {
        return static_cast<double>(outstandingTokens()) /
            capacityTokensPerSec();
    }

    // --- health ---
    /** False while every device group sits in a post-failure
     *  cooldown window (the PR 3 fault/RAS signal) at @p t. */
    virtual bool healthyAt(double t) const = 0;

    // --- results ---
    virtual std::uint64_t tokensGenerated() const = 0;
    virtual serve::ServeReport report(double makespan) const = 0;
};

/**
 * The shared dispatcher-backed implementation: owns the appliance's
 * metrics collector and ApplianceDispatcher, and derives the capacity
 * estimate from the (already calibrated) batch cost model. Concrete
 * backends differ only in construction.
 */
class DispatcherBackend : public Backend
{
  public:
    DispatcherBackend(BackendClass cls, const llm::ModelConfig &model,
                      const serve::BatchCostModel &cost,
                      std::uint64_t kv_capacity_bytes,
                      const BackendConfig &cfg,
                      const BackendCostSpec &cost_spec);

    const std::string &name() const override { return name_; }
    BackendClass backendClass() const override { return cls_; }
    const BackendCostSpec &costSpec() const override
    {
        return costSpec_;
    }
    double capacityTokensPerSec() const override { return capacity_; }

    void submit(const serve::ServeRequest &req) override
    {
        app_->submit(req);
    }
    void advanceTo(double t) override { app_->advanceTo(t); }
    void drain() override { app_->drain(); }
    double clockSeconds() const override
    {
        return app_->clockSeconds();
    }

    std::uint64_t outstandingTokens() const override;
    std::size_t queueDepth() const override;
    bool healthyAt(double t) const override;

    std::uint64_t tokensGenerated() const override
    {
        return metrics_->tokensGenerated();
    }
    serve::ServeReport report(double makespan) const override
    {
        return metrics_->report(makespan);
    }

    /** The wrapped appliance, for fault attachment / pricer setup /
     *  per-group inspection in drivers and tests. */
    serve::ApplianceDispatcher &dispatcher() { return *app_; }
    const serve::ApplianceDispatcher &dispatcher() const
    {
        return *app_;
    }
    serve::ServeMetrics &metrics() { return *metrics_; }

  private:
    std::string name_;
    BackendClass cls_;
    BackendCostSpec costSpec_;
    double capacity_ = 0.0;
    /** unique_ptrs: ServeMetrics and the dispatcher hold references
     *  into each other, so the backend must be address-stable. */
    std::unique_ptr<serve::ServeMetrics> metrics_;
    std::unique_ptr<serve::ApplianceDispatcher> app_;
};

/**
 * A CXL-PNM appliance: KV capacity from the LPDDR device config,
 * Table III cost spec, the given (PNM-calibrated) cost model.
 */
class PnmBackend : public DispatcherBackend
{
  public:
    PnmBackend(const llm::ModelConfig &model,
               const core::PnmPlatformConfig &pcfg,
               const serve::BatchCostModel &cost,
               const BackendConfig &cfg);
};

/**
 * A GPU appliance: KV capacity from HBM minus the weight shard,
 * Table III cost spec, the given (roofline-calibrated) cost model.
 */
class GpuBackend : public DispatcherBackend
{
  public:
    GpuBackend(const llm::ModelConfig &model, const gpu::GpuSpec &spec,
               const serve::BatchCostModel &cost,
               const BackendConfig &cfg);
};

} // namespace fleet
} // namespace cxlpnm

#endif // CXLPNM_FLEET_BACKEND_HH
