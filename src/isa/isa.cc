#include "isa/isa.hh"

#include <bit>
#include <cstring>
#include <sstream>

#include "sim/logging.hh"

namespace cxlpnm
{
namespace isa
{

namespace
{

template <typename T>
void
put(std::uint8_t *p, std::size_t &off, T v)
{
    std::memcpy(p + off, &v, sizeof(T));
    off += sizeof(T);
}

template <typename T>
T
get(const std::uint8_t *p, std::size_t &off)
{
    T v;
    std::memcpy(&v, p + off, sizeof(T));
    off += sizeof(T);
    return v;
}

bool
validOpcode(std::uint8_t b)
{
    switch (static_cast<Opcode>(b)) {
      case Opcode::Halt:
      case Opcode::DmaLoad:
      case Opcode::DmaStore:
      case Opcode::MpuMv:
      case Opcode::MpuTranspose:
      case Opcode::MpuIm2col:
      case Opcode::MpuSlice:
      case Opcode::MpuMmPea:
      case Opcode::MpuMmRedumaxPea:
      case Opcode::MpuMaskedMmPea:
      case Opcode::MpuMaskedMmRedumaxPea:
      case Opcode::MpuConv2dPea:
      case Opcode::MpuConv2dGeluPea:
      case Opcode::VpuLayerNorm:
      case Opcode::VpuSoftmax:
      case Opcode::VpuGelu:
      case Opcode::VpuAdd:
      case Opcode::VpuMul:
      case Opcode::VpuReduMax:
      case Opcode::Sync:
        return true;
    }
    return false;
}

} // namespace

std::array<std::uint8_t, Instruction::encodedSize>
Instruction::encode() const
{
    std::array<std::uint8_t, encodedSize> out{};
    std::size_t off = 0;
    put(out.data(), off, static_cast<std::uint8_t>(op));
    put(out.data(), off, flags);
    put(out.data(), off, dst);
    put(out.data(), off, src0);
    put(out.data(), off, src1);
    put(out.data(), off, aux);
    put(out.data(), off, m);
    put(out.data(), off, n);
    put(out.data(), off, k);
    put(out.data(), off, imm);
    put(out.data(), off, std::bit_cast<std::uint32_t>(scale));
    // 2 bytes of padding keep memAddr naturally aligned in the buffer.
    off += 2;
    put(out.data(), off, memAddr);
    panic_if(off != encodedSize, "instruction encoding size drift");
    return out;
}

Instruction
Instruction::decode(const std::uint8_t *bytes)
{
    std::size_t off = 0;
    Instruction i;
    const auto opb = get<std::uint8_t>(bytes, off);
    panic_if(!validOpcode(opb), "invalid opcode byte 0x",
             static_cast<int>(opb), " in instruction buffer");
    i.op = static_cast<Opcode>(opb);
    i.flags = get<std::uint8_t>(bytes, off);
    i.dst = get<RegId>(bytes, off);
    i.src0 = get<RegId>(bytes, off);
    i.src1 = get<RegId>(bytes, off);
    i.aux = get<RegId>(bytes, off);
    i.m = get<std::uint32_t>(bytes, off);
    i.n = get<std::uint32_t>(bytes, off);
    i.k = get<std::uint32_t>(bytes, off);
    i.imm = get<std::uint32_t>(bytes, off);
    i.scale = std::bit_cast<float>(get<std::uint32_t>(bytes, off));
    off += 2;
    i.memAddr = get<Addr>(bytes, off);
    return i;
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Halt: return "HALT";
      case Opcode::DmaLoad: return "DMA_LOAD";
      case Opcode::DmaStore: return "DMA_STORE";
      case Opcode::MpuMv: return "MPU_MV";
      case Opcode::MpuTranspose: return "MPU_TRANSPOSE";
      case Opcode::MpuIm2col: return "MPU_IM2COL";
      case Opcode::MpuSlice: return "MPU_SLICE";
      case Opcode::MpuMmPea: return "MPU_MM_PEA";
      case Opcode::MpuMmRedumaxPea: return "MPU_MM_REDUMAX_PEA";
      case Opcode::MpuMaskedMmPea: return "MPU_MASKEDMM_PEA";
      case Opcode::MpuMaskedMmRedumaxPea:
        return "MPU_MASKEDMM_REDUMAX_PEA";
      case Opcode::MpuConv2dPea: return "MPU_CONV2D_PEA";
      case Opcode::MpuConv2dGeluPea: return "MPU_CONV2D_GELU_PEA";
      case Opcode::VpuLayerNorm: return "VPU_LAYERNORM";
      case Opcode::VpuSoftmax: return "VPU_SOFTMAX";
      case Opcode::VpuGelu: return "VPU_GELU";
      case Opcode::VpuAdd: return "VPU_ADD";
      case Opcode::VpuMul: return "VPU_MUL";
      case Opcode::VpuReduMax: return "VPU_REDU_MAX";
      case Opcode::Sync: return "SYNC";
    }
    return "<bad>";
}

bool
isPeaOp(Opcode op)
{
    switch (op) {
      case Opcode::MpuMmPea:
      case Opcode::MpuMmRedumaxPea:
      case Opcode::MpuMaskedMmPea:
      case Opcode::MpuMaskedMmRedumaxPea:
      case Opcode::MpuConv2dPea:
      case Opcode::MpuConv2dGeluPea:
        return true;
      default:
        return false;
    }
}

bool
isVpuOp(Opcode op)
{
    switch (op) {
      case Opcode::VpuLayerNorm:
      case Opcode::VpuSoftmax:
      case Opcode::VpuGelu:
      case Opcode::VpuAdd:
      case Opcode::VpuMul:
      case Opcode::VpuReduMax:
        return true;
      default:
        return false;
    }
}

bool
isDmaOp(Opcode op)
{
    return op == Opcode::DmaLoad || op == Opcode::DmaStore;
}

bool
isMpuOp(Opcode op)
{
    return op == Opcode::MpuMv || op == Opcode::MpuTranspose ||
        op == Opcode::MpuIm2col || op == Opcode::MpuSlice || isPeaOp(op);
}

std::string
Instruction::toString() const
{
    std::ostringstream os;
    os << opcodeName(op);
    auto reg = [](RegId r) {
        return r == NoReg ? std::string("-")
                          : "r" + std::to_string(r);
    };
    os << " dst=" << reg(dst) << " src0=" << reg(src0) << " src1="
       << reg(src1);
    if (aux != NoReg)
        os << " aux=" << reg(aux);
    os << " [m=" << m << " n=" << n << " k=" << k << "]";
    if (has(FlagTransB))
        os << " transB";
    if (has(FlagBias))
        os << " bias";
    if (has(FlagMultiHead))
        os << " multihead";
    if (has(FlagCausal))
        os << " causal+" << imm;
    else if (imm != 0)
        os << " imm=" << imm;
    if (has(FlagMemOperand) || isDmaOp(op))
        os << " @0x" << std::hex << memAddr << std::dec;
    if (scale != 1.0f)
        os << " scale=" << scale;
    return os.str();
}

std::vector<std::uint8_t>
Program::encode() const
{
    std::vector<std::uint8_t> out;
    out.reserve((insts_.size() + 1) * Instruction::encodedSize);
    for (const Instruction &i : insts_) {
        auto e = i.encode();
        out.insert(out.end(), e.begin(), e.end());
    }
    // Terminator.
    Instruction halt;
    auto e = halt.encode();
    out.insert(out.end(), e.begin(), e.end());
    return out;
}

Program
Program::decode(const std::vector<std::uint8_t> &bytes)
{
    fatal_if(bytes.size() % Instruction::encodedSize != 0,
             "instruction buffer size ", bytes.size(),
             " is not a multiple of ", Instruction::encodedSize);
    Program p;
    for (std::size_t off = 0; off < bytes.size();
         off += Instruction::encodedSize) {
        Instruction i = Instruction::decode(bytes.data() + off);
        if (i.op == Opcode::Halt)
            break;
        p.append(i);
    }
    return p;
}

std::string
Program::toString() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < insts_.size(); ++i)
        os << i << ": " << insts_[i].toString() << "\n";
    return os.str();
}

} // namespace isa
} // namespace cxlpnm
