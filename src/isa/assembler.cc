#include "isa/assembler.hh"

#include <cstdlib>
#include <sstream>
#include <vector>

#include "sim/logging.hh"

namespace cxlpnm
{
namespace isa
{

namespace
{

/** Mnemonic -> opcode (inverse of opcodeName). */
bool
opcodeFromName(const std::string &name, Opcode &out)
{
    static const Opcode all[] = {
        Opcode::Halt, Opcode::DmaLoad, Opcode::DmaStore, Opcode::MpuMv,
        Opcode::MpuTranspose, Opcode::MpuIm2col, Opcode::MpuSlice,
        Opcode::MpuMmPea, Opcode::MpuMmRedumaxPea,
        Opcode::MpuMaskedMmPea, Opcode::MpuMaskedMmRedumaxPea,
        Opcode::MpuConv2dPea, Opcode::MpuConv2dGeluPea,
        Opcode::VpuLayerNorm, Opcode::VpuSoftmax, Opcode::VpuGelu,
        Opcode::VpuAdd, Opcode::VpuMul, Opcode::VpuReduMax,
        Opcode::Sync,
    };
    for (Opcode op : all) {
        if (name == opcodeName(op)) {
            out = op;
            return true;
        }
    }
    return false;
}

RegId
parseReg(const std::string &tok, const std::string &line)
{
    if (tok == "-")
        return NoReg;
    fatal_if(tok.empty() || tok[0] != 'r',
             "bad register token '", tok, "' in: ", line);
    char *end = nullptr;
    const long v = std::strtol(tok.c_str() + 1, &end, 10);
    fatal_if(*end != '\0' || v < 0 || v >= NoReg,
             "bad register token '", tok, "' in: ", line);
    return static_cast<RegId>(v);
}

std::uint64_t
parseU64(const std::string &tok, const std::string &line)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(tok.c_str(), &end, 0);
    fatal_if(end == tok.c_str() || *end != '\0',
             "bad number '", tok, "' in: ", line);
    return v;
}

} // namespace

Instruction
assembleLine(const std::string &line)
{
    std::istringstream is(line);
    std::string mnemonic;
    is >> mnemonic;
    fatal_if(mnemonic.empty(), "empty instruction line");

    Instruction inst;
    fatal_if(!opcodeFromName(mnemonic, inst.op),
             "unknown mnemonic '", mnemonic, "'");

    std::string tok;
    bool saw_dims = false;
    while (is >> tok) {
        auto val = [&](const char *key) -> std::string {
            const std::string k(key);
            panic_if(tok.rfind(k, 0) != 0, "internal token mismatch");
            return tok.substr(k.size());
        };
        if (tok.rfind("dst=", 0) == 0) {
            inst.dst = parseReg(val("dst="), line);
        } else if (tok.rfind("src0=", 0) == 0) {
            inst.src0 = parseReg(val("src0="), line);
        } else if (tok.rfind("src1=", 0) == 0) {
            inst.src1 = parseReg(val("src1="), line);
        } else if (tok.rfind("aux=", 0) == 0) {
            inst.aux = parseReg(val("aux="), line);
        } else if (tok.rfind("[m=", 0) == 0) {
            inst.m = static_cast<std::uint32_t>(
                parseU64(tok.substr(3), line));
            saw_dims = true;
        } else if (tok.rfind("n=", 0) == 0) {
            inst.n = static_cast<std::uint32_t>(
                parseU64(val("n="), line));
        } else if (tok.rfind("k=", 0) == 0) {
            std::string v = val("k=");
            if (!v.empty() && v.back() == ']')
                v.pop_back();
            inst.k = static_cast<std::uint32_t>(parseU64(v, line));
        } else if (tok == "transB") {
            inst.flags |= FlagTransB;
        } else if (tok == "bias") {
            inst.flags |= FlagBias;
        } else if (tok == "multihead") {
            inst.flags |= FlagMultiHead;
        } else if (tok.rfind("causal+", 0) == 0) {
            inst.flags |= FlagCausal;
            inst.imm = static_cast<std::uint32_t>(
                parseU64(tok.substr(7), line));
        } else if (tok.rfind("imm=", 0) == 0) {
            inst.imm = static_cast<std::uint32_t>(
                parseU64(val("imm="), line));
        } else if (tok.rfind("scale=", 0) == 0) {
            inst.scale = std::strtof(val("scale=").c_str(), nullptr);
        } else if (tok.rfind("@0x", 0) == 0) {
            inst.memAddr = std::strtoull(tok.c_str() + 1, nullptr, 16);
            if (!isDmaOp(inst.op))
                inst.flags |= FlagMemOperand;
        } else {
            fatal("unrecognised token '", tok, "' in: ", line);
        }
    }
    fatal_if(!saw_dims && inst.op != Opcode::Halt &&
                 inst.op != Opcode::Sync,
             "missing [m= n= k=] dims in: ", line);
    return inst;
}

Program
assemble(const std::string &text)
{
    Program p;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        // Strip an optional "N:" prefix (Program::toString format).
        const auto colon = line.find(": ");
        std::string body = line;
        if (colon != std::string::npos &&
            line.find_first_not_of("0123456789") == colon) {
            body = line.substr(colon + 2);
        }
        // Trim.
        const auto b = body.find_first_not_of(" \t");
        if (b == std::string::npos)
            continue;
        body = body.substr(b);
        if (body.empty() || body[0] == '#')
            continue;
        p.append(assembleLine(body));
    }
    return p;
}

std::string
disassemble(const Program &prog)
{
    std::string out;
    for (const Instruction &i : prog.instructions()) {
        out += i.toString();
        out += "\n";
    }
    return out;
}

} // namespace isa
} // namespace cxlpnm
