/**
 * @file
 * Instruction set of the CXL-PNM LLM inference accelerator (§V-C).
 *
 * The ISA follows DFX's coarse-grained style: one instruction describes a
 * whole tensor operation (a GEMV, a GEMM tile sequence, a LayerNorm),
 * with operands in the on-chip register files and an optional streaming
 * operand in device memory (weights fetched by the DMA engine).
 *
 * On top of the DFX-derived base (adder-tree GEMV, VPU ops, DMA), the six
 * PE-array instructions the paper adds are:
 *   MPU_MM_PEA, MPU_MM_REDUMAX_PEA, MPU_MASKEDMM_PEA,
 *   MPU_MASKEDMM_REDUMAX_PEA, MPU_CONV2D_PEA, MPU_CONV2D_GELU_PEA.
 */

#ifndef CXLPNM_ISA_ISA_HH
#define CXLPNM_ISA_ISA_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace cxlpnm
{
namespace isa
{

/** Operation codes. Values are the encoded byte and are ABI-stable. */
enum class Opcode : std::uint8_t
{
    Halt = 0x00,

    // Data movement between device memory and the register files.
    DmaLoad = 0x10,
    DmaStore = 0x11,

    // Adder-tree (GEMV) path, inherited from DFX.
    MpuMv = 0x20,

    // Matrix manipulation unit.
    MpuTranspose = 0x28,
    MpuIm2col = 0x29,
    /** Column-range copy: dst[:, lo16(imm)..] = src0[:, hi16(imm)..]. */
    MpuSlice = 0x2a,

    // PE-array path: the six instructions added by the paper.
    MpuMmPea = 0x30,
    MpuMmRedumaxPea = 0x31,
    MpuMaskedMmPea = 0x32,
    MpuMaskedMmRedumaxPea = 0x33,
    MpuConv2dPea = 0x34,
    MpuConv2dGeluPea = 0x35,

    // Vector processing unit.
    VpuLayerNorm = 0x40,
    VpuSoftmax = 0x41,
    VpuGelu = 0x42,
    VpuAdd = 0x43,
    VpuMul = 0x44,
    VpuReduMax = 0x45,

    // Pipeline barrier (drain DMA + compute).
    Sync = 0x50,
};

/** Instruction flags (bitmask). */
enum Flag : std::uint8_t
{
    /** Second operand is used transposed (B^T). */
    FlagTransB = 0x01,
    /** aux register holds a bias row added to the result. */
    FlagBias = 0x02,
    /** The big (matrix) operand streams from device memory. */
    FlagMemOperand = 0x04,
    /** Apply the causal mask with offset imm (masked MM variants). */
    FlagCausal = 0x08,
    /**
     * Multi-head batched interpretation of a PEA op over the KV cache
     * (gen stage): with m = heads and k = headDim, the B operand is the
     * (context x dModel) K or V cache and each output row is one head's
     * result. TransB selects the Q.K^T (score) form; without it the
     * scores.V (context) form is computed.
     */
    FlagMultiHead = 0x10,
};

/** Register-file register identifier (matrix, vector or scalar RF). */
using RegId = std::uint16_t;

/** A sentinel for "no register". */
constexpr RegId NoReg = 0xffff;

/**
 * One coarse-grained instruction.
 *
 * Field meaning by opcode family:
 *  - DmaLoad:  dst <- mem[memAddr], shape m x n.
 *  - DmaStore: mem[memAddr] <- src0 (shape from the register).
 *  - MpuMv:    dst(1 x m) = src0-or-mem (m x n matrix) . src1(1 x n).
 *  - MpuMm*:   dst(m x n) = src0(m x k) . B(k x n); B is src1 or memory;
 *              FlagTransB means B is stored (n x k).
 *  - Conv2d*:  1-D sequence convolution expressed as im2col + MM; for
 *              kernel size 1 it degenerates to a fully-connected layer.
 *  - Vpu*:     elementwise/row ops on registers; imm/scale as documented
 *              in the functional model.
 *
 * 'scale' is applied where the operation defines it (attention score
 * scaling inside softmax, 1/sqrt(d_head)).
 */
struct Instruction
{
    Opcode op = Opcode::Halt;
    std::uint8_t flags = 0;
    RegId dst = NoReg;
    RegId src0 = NoReg;
    RegId src1 = NoReg;
    /** Bias register, reduction output register, etc. */
    RegId aux = NoReg;
    std::uint32_t m = 0;
    std::uint32_t n = 0;
    std::uint32_t k = 0;
    /** Causal-mask offset, im2col kernel size, ... */
    std::uint32_t imm = 0;
    float scale = 1.0f;
    /** Device-memory operand address (FlagMemOperand / DMA ops). */
    Addr memAddr = 0;

    bool has(Flag f) const { return (flags & f) != 0; }

    /** Encoded size in the instruction buffer, bytes. */
    static constexpr std::size_t encodedSize = 40;

    /** Serialise to the 40-byte instruction-buffer format. */
    std::array<std::uint8_t, encodedSize> encode() const;

    /** Decode from the instruction-buffer format. Panics on bad opcode. */
    static Instruction decode(const std::uint8_t *bytes);

    /** Human-readable disassembly. */
    std::string toString() const;

    bool operator==(const Instruction &) const = default;
};

/** Opcode predicates used by the timing and functional models. */
bool isPeaOp(Opcode op);
bool isVpuOp(Opcode op);
bool isDmaOp(Opcode op);
bool isMpuOp(Opcode op);

/** Mnemonic for an opcode. */
const char *opcodeName(Opcode op);

/** A decoded program: a HALT-terminated instruction sequence. */
class Program
{
  public:
    Program() = default;

    void
    append(const Instruction &inst)
    {
        insts_.push_back(inst);
    }

    const std::vector<Instruction> &instructions() const { return insts_; }
    std::size_t size() const { return insts_.size(); }
    bool empty() const { return insts_.empty(); }

    const Instruction &operator[](std::size_t i) const { return insts_[i]; }

    /** Serialise the whole program for the instruction buffer. */
    std::vector<std::uint8_t> encode() const;

    /** Decode a buffer (stops at Halt or end). */
    static Program decode(const std::vector<std::uint8_t> &bytes);

    std::string toString() const;

  private:
    std::vector<Instruction> insts_;
};

} // namespace isa
} // namespace cxlpnm

#endif // CXLPNM_ISA_ISA_HH
