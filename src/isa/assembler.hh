/**
 * @file
 * A textual assembler/disassembler for the accelerator ISA.
 *
 * The format is exactly what Instruction::toString() prints, e.g.
 *
 *   MPU_MV dst=r3 src0=r1 src1=- [m=5120 n=5120 k=0] bias aux=r7 @0x1000
 *   VPU_SOFTMAX dst=r4 src0=r4 src1=- [m=40 n=512 k=0] scale=0.0884
 *
 * so programs round-trip text -> Program -> text. Used by tests, by the
 * driver_tour example and for debugging generated acceleration code.
 */

#ifndef CXLPNM_ISA_ASSEMBLER_HH
#define CXLPNM_ISA_ASSEMBLER_HH

#include <string>

#include "isa/isa.hh"

namespace cxlpnm
{
namespace isa
{

/**
 * Parse one instruction line. Fatal on malformed input (unknown
 * mnemonic, bad register token, missing dims).
 */
Instruction assembleLine(const std::string &line);

/**
 * Assemble a whole program: one instruction per line; blank lines and
 * lines starting with '#' or "N:" line numbers are tolerated.
 */
Program assemble(const std::string &text);

/** Disassemble (Program::toString without line numbers). */
std::string disassemble(const Program &prog);

} // namespace isa
} // namespace cxlpnm

#endif // CXLPNM_ISA_ASSEMBLER_HH
