/**
 * @file
 * Total-cost-of-ownership model (Table III): hardware cost, electricity,
 * CO2 emission, and the derived cost/CO2 efficiencies for a sustained
 * inference service — plus the fleet-granularity extension (amortized
 * hardware + metered energy rolled up into cost per million tokens,
 * per backend class and fleet-wide) used by the rack-scale simulator.
 */

#ifndef CXLPNM_CORE_TCO_HH
#define CXLPNM_CORE_TCO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace cxlpnm
{
namespace core
{

/**
 * A TCO configuration the model cannot price: zero/negative device
 * counts, throughput, or horizon. Thrown instead of a fatal so drivers
 * can print a message and exit cleanly (the same contract as
 * TraceConfigError / CalibrationError).
 */
class TcoError : public FatalError
{
  public:
    using FatalError::FatalError;
};

/** What the TCO model needs about an appliance. */
struct TcoInputs
{
    std::string name;
    int devices = 8;
    double devicePriceUsd = 0.0;
    /** Sustained appliance power (all devices), watts. */
    double appliancePowerW = 0.0;
    /** Sustained service throughput, tokens/s. */
    double throughputTokensPerSec = 0.0;

    /**
     * Idaho's 10.35 cents/kWh, the cheapest U.S. rate the paper
     * assumes (§VIII-B).
     */
    double electricityUsdPerKwh = 0.1035;
    /**
     * Grid carbon intensity implied by Table III
     * (43.2 kWh -> 2.46 kg CO2): 0.05694 kg/kWh (hydro-heavy Idaho).
     */
    double co2KgPerKwh = 0.05694;
};

/** Table III rows. */
struct TcoReport
{
    double hardwareCostUsd = 0.0;
    double tokensPerDayM = 0.0;   // millions of tokens/day
    double kwhPerDay = 0.0;
    double usdPerDay = 0.0;       // operating (electricity) cost
    double co2KgPerDay = 0.0;
    double tokensPerUsdM = 0.0;   // M tokens per operating dollar
    double tokensPerKgM = 0.0;    // M tokens per kg CO2
};

/** Evaluate the Table III economics for one appliance.
 *  @throws TcoError on non-positive devices or throughput. */
TcoReport computeTco(const TcoInputs &in);

// ---- fleet granularity ----

/**
 * One backend class's aggregate contribution to the fleet bill: the
 * appliances provisioned (the hardware you bought), the device-time
 * they spent serving vs sitting provisioned-but-idle, and the tokens
 * they produced over the measurement horizon. Produced by the fleet
 * simulator's autoscaler ledger; priced by computeFleetTco().
 */
struct FleetClassTcoInputs
{
    std::string name;
    /** Appliances provisioned (peak, the hardware owned). */
    int appliances = 0;
    int devicesPerAppliance = 8;
    double devicePriceUsd = 0.0;
    /** Whole-appliance power while actively serving, watts. */
    double activePowerW = 0.0;
    /** Whole-appliance power while provisioned but idle, watts. */
    double idlePowerW = 0.0;
    /** Appliance-seconds spent active, summed over the class. */
    double activeSeconds = 0.0;
    /** Appliance-seconds spent provisioned but idle. */
    double idleSeconds = 0.0;
    std::uint64_t tokensGenerated = 0;

    /** Straight-line hardware amortization window. */
    double amortizationYears = 3.0;
    double electricityUsdPerKwh = 0.1035;
    double co2KgPerKwh = 0.05694;
};

/** Per-class fleet economics over the measurement horizon. */
struct FleetClassTcoReport
{
    std::string name;
    int appliances = 0;
    double hardwareCostUsd = 0.0;     // purchase price of the class
    double amortizedHardwareUsd = 0.0; // ... prorated to the horizon
    double energyKwh = 0.0;
    double energyUsd = 0.0;
    double co2Kg = 0.0;
    double totalUsd = 0.0;            // amortized hardware + energy
    double tokensM = 0.0;             // millions of tokens generated
    /** (amortized hardware + energy) / Mtok; 0 with no tokens. */
    double usdPerMtok = 0.0;
    /** activeSeconds / (appliances * horizon). */
    double utilization = 0.0;
};

/** The fleet roll-up: per-class rows plus the fleet-wide figure. */
struct FleetTcoReport
{
    std::vector<FleetClassTcoReport> classes;
    double horizonSeconds = 0.0;
    double totalUsd = 0.0;
    double tokensM = 0.0;
    double usdPerMtok = 0.0;
    double energyKwh = 0.0;
    double co2Kg = 0.0;
};

/**
 * Price a fleet over @p horizon_seconds: per class, straight-line
 * hardware amortization prorated to the horizon plus metered
 * active/idle electricity, divided through the tokens generated.
 * @throws TcoError on a non-positive horizon, malformed class inputs
 * (negative counts/prices/seconds, active+idle time exceeding
 * appliances * horizon), or a fleet that generated no tokens at all.
 */
FleetTcoReport
computeFleetTco(const std::vector<FleetClassTcoInputs> &classes,
                double horizon_seconds);

} // namespace core
} // namespace cxlpnm

#endif // CXLPNM_CORE_TCO_HH
