/**
 * @file
 * Total-cost-of-ownership model (Table III): hardware cost, electricity,
 * CO2 emission, and the derived cost/CO2 efficiencies for a sustained
 * inference service.
 */

#ifndef CXLPNM_CORE_TCO_HH
#define CXLPNM_CORE_TCO_HH

#include <string>

namespace cxlpnm
{
namespace core
{

/** What the TCO model needs about an appliance. */
struct TcoInputs
{
    std::string name;
    int devices = 8;
    double devicePriceUsd = 0.0;
    /** Sustained appliance power (all devices), watts. */
    double appliancePowerW = 0.0;
    /** Sustained service throughput, tokens/s. */
    double throughputTokensPerSec = 0.0;

    /**
     * Idaho's 10.35 cents/kWh, the cheapest U.S. rate the paper
     * assumes (§VIII-B).
     */
    double electricityUsdPerKwh = 0.1035;
    /**
     * Grid carbon intensity implied by Table III
     * (43.2 kWh -> 2.46 kg CO2): 0.05694 kg/kWh (hydro-heavy Idaho).
     */
    double co2KgPerKwh = 0.05694;
};

/** Table III rows. */
struct TcoReport
{
    double hardwareCostUsd = 0.0;
    double tokensPerDayM = 0.0;   // millions of tokens/day
    double kwhPerDay = 0.0;
    double usdPerDay = 0.0;       // operating (electricity) cost
    double co2KgPerDay = 0.0;
    double tokensPerUsdM = 0.0;   // M tokens per operating dollar
    double tokensPerKgM = 0.0;    // M tokens per kg CO2
};

/** Evaluate the Table III economics for one appliance. */
TcoReport computeTco(const TcoInputs &in);

} // namespace core
} // namespace cxlpnm

#endif // CXLPNM_CORE_TCO_HH
