#include "core/platform.hh"

#include <utility>

namespace cxlpnm
{
namespace core
{

PnmDevice::PnmDevice(EventQueue &eq, stats::StatGroup *parent,
                     std::string name, const PnmPlatformConfig &cfg)
    : SimObject(eq, parent, std::move(name)),
      cfg_(cfg),
      dramPower_(cfg.dramSpec)
{
    if (cfg_.functionalBytes > 0) {
        fmem_ = std::make_unique<accel::FunctionalMemory>(
            cfg_.functionalBytes);
    }
    mem_ = std::make_unique<dram::MultiChannelMemory>(
        eq, this, "mem", cfg_.dramSpec, 256, cfg_.channelGrouping);
    link_ = std::make_unique<cxl::CxlLink>(eq, this, "link", cfg_.link);
    arbiter_ = std::make_unique<cxl::HostPnmArbiter>(
        eq, this, "arbiter", *mem_, cfg_.arbiter);
    memPort_ = std::make_unique<cxl::CxlMemPort>(eq, this, "cxlmem",
                                                 *link_, *arbiter_);
    ioPort_ =
        std::make_unique<cxl::CxlIoPort>(eq, this, "cxlio", *link_);
    accel_ = std::make_unique<accel::Accelerator>(
        eq, this, "accel", cfg_.accel, *arbiter_, fmem_.get());
    driver_ = std::make_unique<runtime::PnmDriver>(
        eq, this, "driver", *ioPort_, *memPort_, *accel_);

    // The library sizes the allocator to the functional image when one
    // exists (so every address it hands out is materialisable) and to
    // the full module otherwise.
    const std::uint64_t managed = cfg_.functionalBytes > 0
        ? cfg_.functionalBytes
        : mem_->capacityBytes();
    library_ = std::make_unique<runtime::PnmLibrary>(
        eq, this, "library", *driver_, *accel_, managed);
}

void
PnmDevice::attachFaultInjector(fault::FaultInjector *inj)
{
    mem_->attachFaultInjector(inj, cfg_.ecc);
    link_->attachFaultInjector(inj);
    driver_->attachFaultInjector(inj);
}

PnmDevice::Activity
PnmDevice::activity() const
{
    Activity a;
    a.dramBytes = mem_->totalBytes();
    a.macs = accel_->totalMacs();
    a.vecOps = accel_->totalVectorOps();
    return a;
}

double
PnmDevice::energyJoules(const Activity &before, const Activity &after,
                        Tick duration, const PnmPowerParams &pp) const
{
    const double sec = ticksToSeconds(duration);
    const std::uint64_t bytes = after.dramBytes - before.dramBytes;
    const std::uint64_t macs = after.macs - before.macs;
    const std::uint64_t vecops = after.vecOps - before.vecOps;

    const double dram = dramPower_.energyJ(bytes, duration);
    const double statics = (pp.cxlStaticW + pp.accelStaticW) * sec;
    const double dma = bytes * pp.dmaPjPerByte * 1e-12;
    const double mac = macs * pp.macPj * 1e-12;
    const double vpu = vecops * pp.vpuPj * 1e-12;
    return dram + statics + dma + mac + vpu;
}

double
PnmDevice::maxPowerW(const PnmPowerParams &pp) const
{
    // Controller at full stream + PE array saturated, plus DRAM at
    // full bandwidth: the ~150 W platform budget of Table II.
    const double bw = mem_->sustainedBandwidth();
    const double controller = pp.cxlStaticW + pp.accelStaticW +
        bw * pp.dmaPjPerByte * 1e-12 +
        cfg_.accel.peArrayPeakFlops() / 2.0 * pp.macPj * 1e-12;
    return controller + dramPower_.streamingPowerW(bw);
}

} // namespace core
} // namespace cxlpnm
