/**
 * @file
 * End-to-end inference execution on CXL-PNM devices (the event-driven
 * counterpart of gpu::runGpuInference), plus appliance composition with
 * model/data parallelism (§VIII).
 */

#ifndef CXLPNM_CORE_INFERENCE_ENGINE_HH
#define CXLPNM_CORE_INFERENCE_ENGINE_HH

#include <cstdint>
#include <vector>

#include "core/platform.hh"
#include "llm/workload.hh"
#include "sim/trace.hh"

namespace cxlpnm
{
namespace core
{

/** Result of running one request on one device (or one MP shard). */
struct PnmRunResult
{
    double sumSeconds = 0.0;
    std::vector<double> genSeconds; // per output token
    double totalSeconds = 0.0;
    double energyJoules = 0.0;      // one device
    double avgPowerW = 0.0;
    std::size_t programInstructions = 0;

    double
    throughputTokensPerSec() const
    {
        return totalSeconds > 0.0 ? genSeconds.size() / totalSeconds
                                  : 0.0;
    }

    double
    tokensPerJoule() const
    {
        return energyJoules > 0.0 ? genSeconds.size() / energyJoules
                                  : 0.0;
    }
};

/**
 * Run a request on one CXL-PNM device (timing mode), optionally as a
 * tensor-parallel shard of degree @p tensor_shard (the device holds
 * 1/shard of every layer, FasterTransformer-style). Creates its own
 * event queue and device; returns per-stage timings and energy.
 *
 * A non-null @p tracer records the run: it attaches after the model
 * load completes (load traffic would dwarf the request itself), adds
 * request-level sum/gen spans on a "host.request" track, and every
 * device component (channels, link, arbiter, accelerator, driver)
 * contributes its own tracks. Tracing never affects timing.
 */
PnmRunResult runPnmSingleDevice(const llm::ModelConfig &model,
                                const llm::InferenceRequest &req,
                                const PnmPlatformConfig &cfg,
                                int tensor_shard = 1,
                                trace::Tracer *tracer = nullptr);

/**
 * Per-stage cost hooks for the serving simulator (src/serve): time one
 * stage in isolation on a freshly assembled device instead of a whole
 * request. Both create their own event queue, load the model, and
 * return simulated seconds for just the stage of interest.
 */

/** One sum (prefill) stage over @p l_in prompt tokens. */
double pnmSumStageSeconds(const llm::ModelConfig &model,
                          const PnmPlatformConfig &cfg,
                          std::uint64_t l_in, int tensor_shard = 1);

/**
 * One gen (decode) stage whose attended context (prompt + generated,
 * including the token being produced) is @p context tokens. Requires
 * 2 <= context <= model.maxPositions: the context is established with
 * a prefill of context-1 tokens, then the timed decode extends it.
 */
double pnmGenStageSeconds(const llm::ModelConfig &model,
                          const PnmPlatformConfig &cfg,
                          std::uint64_t context, int tensor_shard = 1);

/** How an appliance's 8 devices are partitioned (§VIII-A). */
struct ParallelismPlan
{
    /**
     * Devices per model instance (tensor-parallel degree). §VIII-A
     * calls this "model parallelism"; the reported latencies and the
     * observation that communication volume is independent of the
     * degree identify it as a tensor split of every layer.
     */
    int modelParallel = 1;
    int dataParallel = 8; // concurrent model instances

    int devices() const { return modelParallel * dataParallel; }
};

/** Appliance-level result. */
struct PnmApplianceResult
{
    ParallelismPlan plan;
    /** Latency of one request (sum + all gen stages). */
    double requestLatencySeconds = 0.0;
    /** Mean per-token latency across the gen stages. */
    double tokenLatencySeconds = 0.0;
    /** Aggregate throughput over all parallel streams, tokens/s. */
    double throughputTokensPerSec = 0.0;
    /** All-devices energy for one batch of requests. */
    double energyJoules = 0.0;
    double tokensPerJoule = 0.0;
    double avgAppliancePowerW = 0.0;
    /** Fraction of request latency spent in device-to-device hops. */
    double commFraction = 0.0;
};

/** Cross-device reduction cost via host-orchestrated DMA (§V-C). */
struct D2dModel
{
    /** Doorbell + ISR + descriptor handling per reduction. */
    double fixedSeconds = 25e-6;
    /**
     * One reduction gathers partial activations from every shard and
     * scatters the result back; links are per-device, so the payload
     * crosses two link hops regardless of degree.
     */
    double
    reductionSeconds(double bytes, const cxl::CxlLinkParams &link) const
    {
        return fixedSeconds + 2.0 * bytes / link.usableBytesPerSec();
    }
};

/**
 * Run a request on an appliance of plan.devices() CXL-PNM devices.
 * Model parallelism tensor-splits every layer across modelParallel
 * devices with two host-orchestrated reductions per layer; data
 * parallelism runs dataParallel independent streams.
 */
PnmApplianceResult runPnmAppliance(const llm::ModelConfig &model,
                                   const llm::InferenceRequest &req,
                                   const PnmPlatformConfig &cfg,
                                   const ParallelismPlan &plan,
                                   const D2dModel &d2d = {});

} // namespace core
} // namespace cxlpnm

#endif // CXLPNM_CORE_INFERENCE_ENGINE_HH
