#include "core/tco.hh"

#include "sim/logging.hh"

namespace cxlpnm
{
namespace core
{

TcoReport
computeTco(const TcoInputs &in)
{
    fatal_if(in.devices <= 0, "appliance needs devices");
    fatal_if(in.throughputTokensPerSec <= 0.0,
             "throughput must be positive");

    constexpr double sec_per_day = 86400.0;
    TcoReport r;
    r.hardwareCostUsd = in.devices * in.devicePriceUsd;
    r.tokensPerDayM =
        in.throughputTokensPerSec * sec_per_day / 1e6;
    r.kwhPerDay = in.appliancePowerW * 24.0 / 1000.0;
    r.usdPerDay = r.kwhPerDay * in.electricityUsdPerKwh;
    r.co2KgPerDay = r.kwhPerDay * in.co2KgPerKwh;
    r.tokensPerUsdM = r.tokensPerDayM / r.usdPerDay;
    r.tokensPerKgM = r.tokensPerDayM / r.co2KgPerDay;
    return r;
}

} // namespace core
} // namespace cxlpnm
