#include "core/tco.hh"

#include "sim/logging.hh"

namespace cxlpnm
{
namespace core
{

TcoReport
computeTco(const TcoInputs &in)
{
    if (in.devices <= 0)
        throw TcoError("tco: appliance \"" + in.name +
                       "\" needs a positive device count");
    if (!(in.throughputTokensPerSec > 0.0))
        throw TcoError("tco: appliance \"" + in.name +
                       "\" needs positive throughput");

    constexpr double sec_per_day = 86400.0;
    TcoReport r;
    r.hardwareCostUsd = in.devices * in.devicePriceUsd;
    r.tokensPerDayM =
        in.throughputTokensPerSec * sec_per_day / 1e6;
    r.kwhPerDay = in.appliancePowerW * 24.0 / 1000.0;
    r.usdPerDay = r.kwhPerDay * in.electricityUsdPerKwh;
    r.co2KgPerDay = r.kwhPerDay * in.co2KgPerKwh;
    r.tokensPerUsdM = r.tokensPerDayM / r.usdPerDay;
    r.tokensPerKgM = r.tokensPerDayM / r.co2KgPerDay;
    return r;
}

FleetTcoReport
computeFleetTco(const std::vector<FleetClassTcoInputs> &classes,
                double horizon_seconds)
{
    if (!(horizon_seconds > 0.0))
        throw TcoError("fleet tco: horizon must be positive");

    constexpr double sec_per_year = 365.25 * 86400.0;
    constexpr double j_per_kwh = 3.6e6;

    FleetTcoReport fleet;
    fleet.horizonSeconds = horizon_seconds;
    std::uint64_t tokens = 0;
    for (const auto &c : classes) {
        if (c.appliances < 0 || c.devicesPerAppliance <= 0)
            throw TcoError("fleet tco: class \"" + c.name +
                           "\" has a bad appliance/device count");
        if (c.devicePriceUsd < 0.0 || c.activePowerW < 0.0 ||
            c.idlePowerW < 0.0)
            throw TcoError("fleet tco: class \"" + c.name +
                           "\" has a negative price or power");
        if (c.activeSeconds < 0.0 || c.idleSeconds < 0.0)
            throw TcoError("fleet tco: class \"" + c.name +
                           "\" has negative appliance-seconds");
        // A hair of slack for float accumulation in the ledger.
        if (c.activeSeconds + c.idleSeconds >
            c.appliances * horizon_seconds * (1.0 + 1e-9))
            throw TcoError(
                "fleet tco: class \"" + c.name +
                "\" books more appliance-seconds than the horizon "
                "holds");
        if (!(c.amortizationYears > 0.0))
            throw TcoError("fleet tco: class \"" + c.name +
                           "\" needs a positive amortization window");

        FleetClassTcoReport r;
        r.name = c.name;
        r.appliances = c.appliances;
        r.hardwareCostUsd = static_cast<double>(c.appliances) *
            c.devicesPerAppliance * c.devicePriceUsd;
        r.amortizedHardwareUsd = r.hardwareCostUsd * horizon_seconds /
            (c.amortizationYears * sec_per_year);
        r.energyKwh = (c.activePowerW * c.activeSeconds +
                       c.idlePowerW * c.idleSeconds) /
            j_per_kwh;
        r.energyUsd = r.energyKwh * c.electricityUsdPerKwh;
        r.co2Kg = r.energyKwh * c.co2KgPerKwh;
        r.totalUsd = r.amortizedHardwareUsd + r.energyUsd;
        r.tokensM = static_cast<double>(c.tokensGenerated) / 1e6;
        r.usdPerMtok = r.tokensM > 0.0 ? r.totalUsd / r.tokensM : 0.0;
        r.utilization = c.appliances > 0
            ? c.activeSeconds / (c.appliances * horizon_seconds)
            : 0.0;

        fleet.totalUsd += r.totalUsd;
        fleet.energyKwh += r.energyKwh;
        fleet.co2Kg += r.co2Kg;
        tokens += c.tokensGenerated;
        fleet.classes.push_back(std::move(r));
    }
    if (tokens == 0)
        throw TcoError("fleet tco: the fleet generated no tokens");
    fleet.tokensM = static_cast<double>(tokens) / 1e6;
    fleet.usdPerMtok = fleet.totalUsd / fleet.tokensM;
    return fleet;
}

} // namespace core
} // namespace cxlpnm
