/**
 * @file
 * Deterministic parallel design-space sweeps over PNM simulation points.
 *
 * A sweep point is one fully self-contained simulation run (model,
 * request, platform, parallelism plan). Points never share state: each
 * run constructs a private EventQueue, StatGroup, and device tree, so
 * fanning points across a ThreadPool cannot perturb results — the
 * rendered output is byte-identical for any worker count (a tier-1 test
 * asserts this). See DESIGN.md §9.
 */

#ifndef CXLPNM_CORE_SWEEP_HH
#define CXLPNM_CORE_SWEEP_HH

#include <string>
#include <vector>

#include "core/inference_engine.hh"
#include "core/platform.hh"
#include "llm/model_config.hh"
#include "llm/workload.hh"

namespace cxlpnm
{
namespace core
{

/** One independent simulation point of a sweep. */
struct SweepPoint
{
    std::string name;
    llm::ModelConfig model;
    llm::InferenceRequest req;
    PnmPlatformConfig cfg;
    /** devices() == 1 runs a single device, otherwise an appliance. */
    ParallelismPlan plan{1, 1};
};

/** Simulated (deterministic) metrics of one point. */
struct SweepResult
{
    std::string name;
    double requestLatencySeconds = 0.0;
    double tokenLatencySeconds = 0.0;
    double throughputTokensPerSec = 0.0;
    double energyJoules = 0.0;
    double tokensPerJoule = 0.0;
};

/**
 * The stock grid: OPT models x parallelism plans with the paper's
 * 64-token prompt. @p quick trims output tokens for smoke runs.
 */
std::vector<SweepPoint> defaultSweepGrid(bool quick);

/**
 * Run every point, fanned over @p threads workers (0 = hardware
 * concurrency, 1 = inline on the caller). Results are returned in
 * point order regardless of completion order.
 */
std::vector<SweepResult> runSweep(const std::vector<SweepPoint> &points,
                                  unsigned threads);

/**
 * Render results as JSON. Purely a function of the results (fixed
 * formatting, no timestamps or host info), so equal results render to
 * byte-identical text.
 */
std::string sweepResultsJson(const std::vector<SweepResult> &results);

} // namespace core
} // namespace cxlpnm

#endif // CXLPNM_CORE_SWEEP_HH
