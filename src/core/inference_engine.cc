#include "core/inference_engine.hh"

#include <algorithm>
#include <memory>

#include "sim/logging.hh"

namespace cxlpnm
{
namespace core
{

namespace
{

/** Shared device-bringup for the whole-request and per-stage paths. */
struct LoadedDevice
{
    EventQueue eq;
    stats::StatGroup root{nullptr, ""};
    std::unique_ptr<PnmDevice> dev;

    LoadedDevice(const llm::ModelConfig &model,
                 const PnmPlatformConfig &cfg, int tensor_shard)
    {
        dev = std::make_unique<PnmDevice>(eq, &root, "pnm0", cfg);
        if (tensor_shard > 1)
            dev->library().setTensorShard(tensor_shard);
        bool done = false;
        dev->library().loadModel(model, /*seed=*/1, [&] { done = true; });
        eq.run();
        panic_if(!done, "model load did not complete");
    }

    runtime::PnmLibrary &library() { return dev->library(); }

    /** Run a prefill of @p l_in zero tokens; returns stage seconds. */
    double
    prefill(std::uint64_t l_in)
    {
        const std::vector<std::uint32_t> prompt(l_in, 0);
        bool done = false;
        const Tick t0 = eq.now();
        library().prefill(prompt, [&](std::uint32_t) { done = true; });
        eq.run();
        panic_if(!done, "prefill did not complete");
        return ticksToSeconds(eq.now() - t0);
    }

    /** Run one decode stage; returns stage seconds. */
    double
    decode()
    {
        bool done = false;
        const Tick t0 = eq.now();
        library().decode(0, [&](std::uint32_t) { done = true; });
        eq.run();
        panic_if(!done, "decode did not complete");
        return ticksToSeconds(eq.now() - t0);
    }
};

} // namespace

PnmRunResult
runPnmSingleDevice(const llm::ModelConfig &model,
                   const llm::InferenceRequest &req,
                   const PnmPlatformConfig &cfg, int tensor_shard,
                   trace::Tracer *tracer)
{
    req.validate(model);

    LoadedDevice ld(model, cfg, tensor_shard);

    // Attach tracing only after bringup: the weight upload is orders
    // of magnitude more traffic than one request and would swamp the
    // trace. Components register their tracks lazily on first use.
    ld.eq.setTracer(tracer);
    trace::TrackId reqTrack = trace::InvalidTrack;
    if (tracer != nullptr)
        reqTrack = tracer->track("host.request", "core");

    PnmRunResult res;
    const auto before = ld.dev->activity();
    const Tick t_start = ld.eq.now();

    // Sum stage over a synthetic prompt, then the gen stages.
    res.sumSeconds = ld.prefill(req.inputTokens);
    if (tracer != nullptr)
        tracer->complete(reqTrack, "sum", t_start, ld.eq.now());
    res.genSeconds.reserve(req.outputTokens);
    for (std::uint64_t t = 0; t < req.outputTokens; ++t) {
        const Tick g0 = ld.eq.now();
        res.genSeconds.push_back(ld.decode());
        if (tracer != nullptr)
            tracer->complete(reqTrack, "gen", g0, ld.eq.now());
    }

    const Tick duration = ld.eq.now() - t_start;
    res.totalSeconds = ticksToSeconds(duration);
    res.energyJoules =
        ld.dev->energyJoules(before, ld.dev->activity(), duration);
    res.avgPowerW = res.totalSeconds > 0.0
        ? res.energyJoules / res.totalSeconds
        : 0.0;
    res.programInstructions = ld.library().lastProgramSize();
    return res;
}

double
pnmSumStageSeconds(const llm::ModelConfig &model,
                   const PnmPlatformConfig &cfg, std::uint64_t l_in,
                   int tensor_shard)
{
    fatal_if(l_in == 0, "sum stage needs at least one prompt token");
    fatal_if(l_in > model.maxPositions, "prompt of ", l_in,
             " tokens exceeds max positions ", model.maxPositions);
    LoadedDevice ld(model, cfg, tensor_shard);
    return ld.prefill(l_in);
}

double
pnmGenStageSeconds(const llm::ModelConfig &model,
                   const PnmPlatformConfig &cfg, std::uint64_t context,
                   int tensor_shard)
{
    fatal_if(context < 2, "gen stage needs a preceding context");
    fatal_if(context > model.maxPositions, "context of ", context,
             " tokens exceeds max positions ", model.maxPositions);
    LoadedDevice ld(model, cfg, tensor_shard);
    ld.prefill(context - 1);
    return ld.decode();
}

PnmApplianceResult
runPnmAppliance(const llm::ModelConfig &model,
                const llm::InferenceRequest &req,
                const PnmPlatformConfig &cfg,
                const ParallelismPlan &plan, const D2dModel &d2d)
{
    fatal_if(plan.modelParallel < 1 || plan.dataParallel < 1,
             "bad parallelism plan");
    const int mp = plan.modelParallel;

    // All tensor shards are architecturally identical and execute
    // concurrently; simulate one.
    PnmRunResult shard = runPnmSingleDevice(model, req, cfg, mp);

    // Two host-orchestrated reductions per layer per stage (after the
    // attention projection and after FC2), as with NCCL on the GPU
    // side - §VIII-A notes the volume is independent of the degree.
    const double red_sum = d2d.reductionSeconds(
        2.0 * req.inputTokens * model.dModel, cfg.link);
    const double red_gen =
        d2d.reductionSeconds(2.0 * model.dModel, cfg.link);
    const double comm_sum =
        mp > 1 ? 2.0 * model.numLayers * red_sum : 0.0;
    const double comm_gen =
        mp > 1 ? 2.0 * model.numLayers * red_gen : 0.0;

    PnmApplianceResult res;
    res.plan = plan;

    const double sum_lat = shard.sumSeconds + comm_sum;
    double gen_total = 0.0;
    for (double g : shard.genSeconds)
        gen_total += g + comm_gen;
    res.requestLatencySeconds = sum_lat + gen_total;
    res.tokenLatencySeconds = shard.genSeconds.empty()
        ? 0.0
        : gen_total / shard.genSeconds.size();
    res.throughputTokensPerSec = plan.dataParallel *
        static_cast<double>(req.outputTokens) /
        res.requestLatencySeconds;
    res.commFraction =
        (comm_sum + comm_gen * req.outputTokens) /
        res.requestLatencySeconds;

    // Energy: every shard device is active for the shard run and idles
    // during reductions; statics accrue over the whole request.
    const PnmPowerParams pp;
    const double idle_w = pp.cxlStaticW + pp.accelStaticW +
        dram::DramPowerModel(cfg.dramSpec).backgroundPowerW();
    const double idle_sec =
        std::max(0.0, res.requestLatencySeconds - shard.totalSeconds);
    const double per_device = shard.energyJoules + idle_w * idle_sec;
    res.energyJoules = per_device * plan.devices();
    const double tokens_total =
        static_cast<double>(req.outputTokens) * plan.dataParallel;
    res.tokensPerJoule = tokens_total / res.energyJoules;
    res.avgAppliancePowerW =
        res.energyJoules / res.requestLatencySeconds;
    return res;
}

} // namespace core
} // namespace cxlpnm
