/**
 * @file
 * The assembled CXL-PNM platform (§V): one PnmDevice binds the LPDDR5X
 * module, the CXL-PNM controller (link + CXL.mem/CXL.io IPs + host/PNM
 * arbiter + memory controllers), the LLM inference accelerator, and the
 * software stack (driver + library).
 */

#ifndef CXLPNM_CORE_PLATFORM_HH
#define CXLPNM_CORE_PLATFORM_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "accel/accelerator.hh"
#include "accel/functional_memory.hh"
#include "cxl/arbiter.hh"
#include "cxl/link.hh"
#include "cxl/ports.hh"
#include "dram/module.hh"
#include "dram/power.hh"
#include "runtime/driver.hh"
#include "runtime/pnm_library.hh"

namespace cxlpnm
{
namespace core
{

/** Everything configurable about one CXL-PNM device. */
struct PnmPlatformConfig
{
    dram::DramTechSpec dramSpec = dram::DramTechSpec::lpddr5x();
    accel::AccelConfig accel;
    cxl::CxlLinkParams link;
    cxl::HostPnmArbiter::Params arbiter;

    /**
     * Size of the functional memory image; 0 selects timing-only
     * simulation (no data is computed, suitable for 512 GB models).
     */
    std::uint64_t functionalBytes = 0;

    /**
     * Coarsen the DRAM channel model by this factor for long
     * performance runs (identical bandwidth, fewer events).
     */
    int channelGrouping = 1;

    /** Table III: CXL-PNM device price. */
    double priceUsd = 7000.0;

    /** ECC stack (§IX) used when a fault injector is attached. */
    dram::EccConfig ecc;
};

/** Energy parameters of the CXL-PNM controller (7 nm, Table II). */
struct PnmPowerParams
{
    /** CXL IPs + PHY static power. */
    double cxlStaticW = 12.0;
    /** Accelerator static power (SRAM leakage, clock tree). */
    double accelStaticW = 18.0;
    /** DMA/NoC + register-file energy per byte streamed. */
    double dmaPjPerByte = 11.0;
    /** Energy per FP16 MAC. */
    double macPj = 3.2;
    /** Energy per VPU element op. */
    double vpuPj = 1.5;
};

/** One CXL-PNM device: module + controller + accelerator + software. */
class PnmDevice : public SimObject
{
  public:
    PnmDevice(EventQueue &eq, stats::StatGroup *parent, std::string name,
              const PnmPlatformConfig &cfg);

    dram::MultiChannelMemory &memory() { return *mem_; }
    cxl::CxlLink &link() { return *link_; }
    cxl::HostPnmArbiter &arbiter() { return *arbiter_; }
    cxl::CxlMemPort &memPort() { return *memPort_; }
    cxl::CxlIoPort &ioPort() { return *ioPort_; }
    accel::Accelerator &accel() { return *accel_; }
    runtime::PnmDriver &driver() { return *driver_; }
    runtime::PnmLibrary &library() { return *library_; }
    accel::FunctionalMemory *functionalMemory() { return fmem_.get(); }

    const PnmPlatformConfig &config() const { return cfg_; }

    /**
     * Attach fault injection across the whole device: DRAM read bit
     * flips behind the §IX ECC stack, CXL flit CRC errors with
     * link-layer replay, and doorbell launch faults guarded by the
     * driver watchdog. Sites are "<name>.mem.read",
     * "<name>.link.{down,up}.crc" and "<name>.driver.launch".
     */
    void attachFaultInjector(fault::FaultInjector *inj);

    /** Activity snapshot for energy accounting. */
    struct Activity
    {
        std::uint64_t dramBytes = 0;
        std::uint64_t macs = 0;
        std::uint64_t vecOps = 0;
    };
    Activity activity() const;

    /** Energy spent by this device over an interval. */
    double energyJoules(const Activity &before, const Activity &after,
                        Tick duration,
                        const PnmPowerParams &pp = {}) const;

    /** Max (TDP-like) platform power: controller + DRAM (Table II). */
    double maxPowerW(const PnmPowerParams &pp = {}) const;

  private:
    PnmPlatformConfig cfg_;
    std::unique_ptr<accel::FunctionalMemory> fmem_;
    std::unique_ptr<dram::MultiChannelMemory> mem_;
    std::unique_ptr<cxl::CxlLink> link_;
    std::unique_ptr<cxl::HostPnmArbiter> arbiter_;
    std::unique_ptr<cxl::CxlMemPort> memPort_;
    std::unique_ptr<cxl::CxlIoPort> ioPort_;
    std::unique_ptr<accel::Accelerator> accel_;
    std::unique_ptr<runtime::PnmDriver> driver_;
    std::unique_ptr<runtime::PnmLibrary> library_;
    dram::DramPowerModel dramPower_;
};

} // namespace core
} // namespace cxlpnm

#endif // CXLPNM_CORE_PLATFORM_HH
