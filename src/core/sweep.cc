#include "core/sweep.hh"

#include <cstdio>

#include "sim/thread_pool.hh"

namespace cxlpnm
{
namespace core
{

namespace
{

SweepResult
runPoint(const SweepPoint &p)
{
    SweepResult r;
    r.name = p.name;
    if (p.plan.devices() > 1) {
        const PnmApplianceResult a =
            runPnmAppliance(p.model, p.req, p.cfg, p.plan);
        r.requestLatencySeconds = a.requestLatencySeconds;
        r.tokenLatencySeconds = a.tokenLatencySeconds;
        r.throughputTokensPerSec = a.throughputTokensPerSec;
        r.energyJoules = a.energyJoules;
        r.tokensPerJoule = a.tokensPerJoule;
    } else {
        const PnmRunResult s = runPnmSingleDevice(p.model, p.req, p.cfg);
        r.requestLatencySeconds = s.totalSeconds;
        double gen = 0.0;
        for (double t : s.genSeconds)
            gen += t;
        r.tokenLatencySeconds =
            s.genSeconds.empty() ? 0.0 : gen / s.genSeconds.size();
        r.throughputTokensPerSec = s.throughputTokensPerSec();
        r.energyJoules = s.energyJoules;
        r.tokensPerJoule = s.tokensPerJoule();
    }
    return r;
}

/** Shortest round-trip formatting: equal doubles -> equal text. */
std::string
num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

} // namespace

std::vector<SweepPoint>
defaultSweepGrid(bool quick)
{
    const std::uint64_t out = quick ? 64 : 256;
    std::vector<SweepPoint> points;

    PnmPlatformConfig cfg;
    cfg.channelGrouping = 8; // coarse channel model, as in fig10

    llm::InferenceRequest req;
    req.inputTokens = 64;
    req.outputTokens = out;

    // Single-device frontier across the OPT family that fits one module.
    for (const char *name : {"opt-6.7b", "opt-13b", "opt-30b"}) {
        SweepPoint p;
        p.model = llm::ModelConfig::byName(name);
        p.req = req;
        p.cfg = cfg;
        p.plan = ParallelismPlan{1, 1};
        p.name = std::string(name) + "/mp1";
        points.push_back(std::move(p));
    }

    // Appliance parallelism ladder on OPT-30B (the §VIII study shape).
    for (int mp : {2, 4, 8}) {
        SweepPoint p;
        p.model = llm::ModelConfig::opt30b();
        p.req = req;
        p.cfg = cfg;
        p.plan = ParallelismPlan{mp, 8 / mp};
        p.name = "opt-30b/mp" + std::to_string(mp) + "dp" +
            std::to_string(8 / mp);
        points.push_back(std::move(p));
    }

    return points;
}

std::vector<SweepResult>
runSweep(const std::vector<SweepPoint> &points, unsigned threads)
{
    // Results land in a pre-sized slot per point: completion order (a
    // scheduling artifact) cannot reorder or interleave them.
    std::vector<SweepResult> results(points.size());
    ThreadPool::parallelFor(points.size(), threads,
                            [&](std::size_t i) {
        results[i] = runPoint(points[i]);
    });
    return results;
}

std::string
sweepResultsJson(const std::vector<SweepResult> &results)
{
    std::string out = "{\n  \"points\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SweepResult &r = results[i];
        out += "    {\"name\": \"" + r.name + "\"";
        out += ", \"request_latency_s\": " + num(r.requestLatencySeconds);
        out += ", \"token_latency_s\": " + num(r.tokenLatencySeconds);
        out += ", \"throughput_tok_s\": " + num(r.throughputTokensPerSec);
        out += ", \"energy_j\": " + num(r.energyJoules);
        out += ", \"tokens_per_joule\": " + num(r.tokensPerJoule);
        out += i + 1 < results.size() ? "},\n" : "}\n";
    }
    out += "  ]\n}\n";
    return out;
}

} // namespace core
} // namespace cxlpnm
