#include "dram/channel.hh"

#include <utility>

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace cxlpnm
{
namespace dram
{

MemoryChannel::MemoryChannel(EventQueue &eq, stats::StatGroup *parent,
                             std::string name, const DramTechSpec &spec,
                             double peak_bytes_per_sec)
    : SimObject(eq, parent, std::move(name)),
      spec_(spec),
      peakBw_(peak_bytes_per_sec),
      efficiency_(spec.streamEfficiency()),
      accessLatency_(static_cast<Tick>(spec.accessLatencyNs * tickPerNs)),
      dispatchEvent_(this->name() + ".dispatch", [this] { dispatch(); }),
      bytesRead_(this, "bytesRead", "bytes read from this channel"),
      bytesWritten_(this, "bytesWritten", "bytes written to this channel"),
      requests_(this, "requests", "bursts served"),
      busyTicks_(this, "busyTicks", "ticks the data bus was occupied")
{
    fatal_if(peak_bytes_per_sec <= 0.0,
             "channel peak bandwidth must be positive");
    fatal_if(efficiency_ <= 0.0 || efficiency_ > 1.0,
             "channel efficiency out of (0,1]: ", efficiency_);
}

void
MemoryChannel::access(ChannelRequest req)
{
    panic_if(req.bytes == 0, "zero-byte channel access");

    // Injected array errors surface on reads; the ECC stack decides
    // whether the requester ever notices.
    if (faultSite_ != nullptr && eccEvents_ != nullptr && req.isRead) {
        const fault::FaultKind k = faultSite_->poll(now());
        if (k == fault::FaultKind::BitFlip ||
            k == fault::FaultKind::DoubleBitFlip) {
            const EccOutcome o = eccEvents_->onReadFault(
                k == fault::FaultKind::DoubleBitFlip);
            if (o == EccOutcome::Poisoned && req.poison != nullptr)
                *req.poison = true;
        }
    }

    // Claim the next free bus slot; bursts pipeline back to back.
    const double sec = static_cast<double>(req.bytes) /
        sustainedBandwidth();
    const Tick occupancy = secondsToTicks(sec) + 1;
    const Tick start = std::max(now(), busyUntil_);
    busyUntil_ = start + occupancy;

    if (auto *tr = eventQueue().tracer()) {
        if (traceTrack_ == trace::InvalidTrack)
            traceTrack_ = tr->track(fullName(), "dram");
        tr->complete(traceTrack_, req.isRead ? "rd" : "wr", start,
                     busyUntil_);
    }

    busyTicks_ += static_cast<double>(occupancy);
    requests_ += 1;
    if (req.isRead)
        bytesRead_ += static_cast<double>(req.bytes);
    else
        bytesWritten_ += static_cast<double>(req.bytes);

    const Tick done = busyUntil_ + accessLatency_;
    if (req.onComplete) {
        panic_if(!pending_.empty() && done < pending_.back().first,
                 "non-monotone completion tick on ", fullName());
        const bool was_idle = pending_.empty();
        pending_.emplace_back(done, std::move(req.onComplete));
        // With completions already in flight the dispatch event is
        // armed at the (still unchanged) front tick; only an idle
        // channel needs to arm it.
        if (was_idle)
            eventQueue().reschedule(dispatchEvent_, done);
    }
}

void
MemoryChannel::dispatch()
{
    // Deliver every completion due now; later ones re-arm the event.
    while (!pending_.empty() && pending_.front().first <= now()) {
        auto cb = std::move(pending_.front().second);
        pending_.pop_front();
        cb();
    }
    if (!pending_.empty() && !dispatchEvent_.scheduled())
        eventQueue().reschedule(dispatchEvent_, pending_.front().first);
}

} // namespace dram
} // namespace cxlpnm
