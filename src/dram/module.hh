/**
 * @file
 * The memory side of a CXL module: all DRAM channels of all packages,
 * with module-local address interleaving.
 *
 * For the LPDDR5X module of the paper this is 64 x16 channels (8 packages
 * x 8 channels) at 17 GB/s each = 1.1 TB/s peak. Because the module's own
 * controller interleaves across all channels (§V-A, fix for D4), a
 * streaming request is striped over every channel and completes when the
 * slowest stripe drains.
 */

#ifndef CXLPNM_DRAM_MODULE_HH
#define CXLPNM_DRAM_MODULE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dram/channel.hh"
#include "dram/dram_spec.hh"
#include "dram/ecc.hh"
#include "sim/fault.hh"
#include "sim/sim_object.hh"

namespace cxlpnm
{
namespace dram
{

/** A (possibly large, streaming) memory request against the module. */
struct MemoryRequest
{
    Addr addr = 0;
    std::uint64_t bytes = 0;
    bool isRead = true;
    std::function<void()> onComplete;
    /**
     * Optional poison sink: set to true before onComplete fires when
     * the ECC stack detected an uncorrectable error in this request.
     */
    bool *poison = nullptr;
};

/** All DRAM on one CXL memory module, behind local interleaving. */
class MultiChannelMemory : public SimObject
{
  public:
    /**
     * @param spec     DRAM technology populating the module.
     * @param granule  Interleave granule in bytes (DMA stripe unit).
     * @param channel_grouping Model g physical channels as one
     *        bandwidth server (identical aggregate bandwidth, g x fewer
     *        simulation events). 1 = exact channel count.
     */
    MultiChannelMemory(EventQueue &eq, stats::StatGroup *parent,
                       std::string name, const DramTechSpec &spec,
                       std::uint64_t granule = 256,
                       int channel_grouping = 1);

    /** Issue a request; callback fires when every stripe has completed. */
    void access(MemoryRequest req);

    /**
     * Attach fault injection: the site "<name>.read" is polled once
     * per module-level read (so fault rates are independent of channel
     * grouping) and classified through an event-level ECC stack built
     * from @p ecc. ECS scrub passes are scheduled lazily whenever
     * corrected errors leave latent state behind. With no injector
     * attached (the default) the module is bit-identical to the
     * fault-free model.
     */
    void attachFaultInjector(fault::FaultInjector *inj,
                             const EccConfig &ecc = {});

    /** Event-level RAS counters; null before attachFaultInjector. */
    const EccEventState *eccEvents() const { return eccEvents_.get(); }

    const DramTechSpec &spec() const { return spec_; }
    std::size_t channelCount() const { return channels_.size(); }
    std::uint64_t capacityBytes() const { return capacity_; }

    /** Peak aggregated data rate, bytes/s. */
    double peakBandwidth() const;
    /** Sustained aggregated data rate (stream efficiency applied). */
    double sustainedBandwidth() const;

    /** Bytes moved in either direction so far. */
    std::uint64_t totalBytes() const;

    const MemoryChannel &channel(std::size_t i) const
    {
        return *channels_[i];
    }

  private:
    void scrubPass();

    DramTechSpec spec_;
    std::uint64_t granule_;
    std::uint64_t capacity_;
    std::vector<std::unique_ptr<MemoryChannel>> channels_;
    /** Per-access stripe shares, reused to avoid per-request allocation. */
    std::vector<std::uint64_t> shareScratch_;

    /** Fault injection (null = fault-free, the default). */
    fault::FaultSite *faultSite_ = nullptr;
    std::unique_ptr<EccEventState> eccEvents_;
    /** Lazily registered ECC/ECS annotation track. */
    trace::TrackId traceTrack_ = trace::InvalidTrack;
    Tick scrubInterval_ = 0;
    Event scrubEvent_;

    stats::Scalar requests_;
    stats::Average requestBytes_;
};

} // namespace dram
} // namespace cxlpnm

#endif // CXLPNM_DRAM_MODULE_HH
