/**
 * @file
 * DRAM energy accounting: transfer energy (pJ/bit) plus background power
 * integrated over time. Used by the platform EnergyModel to attribute the
 * "DRAM total power ~40 W" row of Table II and the appliance energy
 * numbers of Table III.
 */

#ifndef CXLPNM_DRAM_POWER_HH
#define CXLPNM_DRAM_POWER_HH

#include <cstdint>

#include "dram/dram_spec.hh"
#include "sim/types.hh"

namespace cxlpnm
{
namespace dram
{

/** Energy model for one module's DRAM devices. */
class DramPowerModel
{
  public:
    explicit DramPowerModel(const DramTechSpec &spec) : spec_(spec) {}

    /** Joules to move @p bytes across the interface. */
    double
    transferEnergyJ(std::uint64_t bytes) const
    {
        return static_cast<double>(bytes) * 8.0 *
            spec_.energyPerBitPj * 1e-12;
    }

    /** Background (refresh/periphery) power of the whole module, W. */
    double
    backgroundPowerW() const
    {
        return spec_.staticPowerPerPackageW * spec_.packagesPerModule;
    }

    /** Joules for an interval with a known traffic volume. */
    double
    energyJ(std::uint64_t bytes, Tick duration) const
    {
        return transferEnergyJ(bytes) +
            backgroundPowerW() * ticksToSeconds(duration);
    }

    /** Average power while streaming at @p bytes_per_sec, W. */
    double
    streamingPowerW(double bytes_per_sec) const
    {
        return bytes_per_sec * 8.0 * spec_.energyPerBitPj * 1e-12 +
            backgroundPowerW();
    }

  private:
    DramTechSpec spec_;
};

} // namespace dram
} // namespace cxlpnm

#endif // CXLPNM_DRAM_POWER_HH
