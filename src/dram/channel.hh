/**
 * @file
 * Cycle-level timing model of one DRAM channel.
 *
 * The channel is a FIFO bandwidth server: a request occupies the data bus
 * for bytes / (peak bandwidth * stream efficiency), and its requester is
 * notified one first-access latency after the bus slot ends. Back-to-back
 * bursts pipeline (bus occupancy is the only serialising resource).
 * Stream efficiency is derived from the technology's refresh parameters
 * and scheduling overhead (DramTechSpec::streamEfficiency), which is how
 * the module's sustained ~0.92 TB/s out of 1.1 TB/s peak emerges rather
 * than being asserted.
 */

#ifndef CXLPNM_DRAM_CHANNEL_HH
#define CXLPNM_DRAM_CHANNEL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>

#include "dram/dram_spec.hh"
#include "dram/ecc.hh"
#include "sim/fault.hh"
#include "sim/sim_object.hh"
#include "sim/trace.hh"

namespace cxlpnm
{
namespace dram
{

/** A read or write burst presented to a channel. */
struct ChannelRequest
{
    std::uint64_t bytes = 0;
    bool isRead = true;
    /** Invoked at completion time. */
    std::function<void()> onComplete;
    /**
     * Optional poison sink: set to true before onComplete fires when
     * the ECC stack detected an uncorrectable error in this burst.
     * Null when the requester does not track poison.
     */
    bool *poison = nullptr;
};

/** One DRAM channel (e.g. a 16-bit LPDDR5X channel at 17 GB/s peak). */
class MemoryChannel : public SimObject
{
  public:
    /**
     * @param peak_bytes_per_sec Peak data rate of this channel.
     * @param spec               Technology (latency/efficiency source).
     */
    MemoryChannel(EventQueue &eq, stats::StatGroup *parent,
                  std::string name, const DramTechSpec &spec,
                  double peak_bytes_per_sec);

    /** Enqueue a burst; the callback fires when the data has arrived. */
    void access(ChannelRequest req);

    /**
     * Attach fault injection to this channel: @p site is polled once
     * per read burst and raw errors are classified by @p ecc (shared
     * with sibling channels of the same module). Either may be null to
     * leave the channel fault-free. Used by standalone channels; a
     * MultiChannelMemory injects at module level instead so fault
     * rates do not scale with channel grouping.
     */
    void
    attachFaults(fault::FaultSite *site, EccEventState *ecc)
    {
        faultSite_ = site;
        eccEvents_ = ecc;
    }

    /** Peak data rate, bytes/s. */
    double peakBandwidth() const { return peakBw_; }
    /** Sustained data rate under streaming, bytes/s. */
    double sustainedBandwidth() const { return peakBw_ * efficiency_; }

    /** Tick at which all currently queued traffic will have drained. */
    Tick drainTick() const { return busyUntil_; }

    std::uint64_t bytesRead() const
    {
        return static_cast<std::uint64_t>(bytesRead_.value());
    }
    std::uint64_t bytesWritten() const
    {
        return static_cast<std::uint64_t>(bytesWritten_.value());
    }

    /** Total ticks the data bus was occupied. */
    Tick busyTicks() const
    {
        return static_cast<Tick>(busyTicks_.value());
    }

  private:
    void dispatch();

    const DramTechSpec &spec_;
    double peakBw_;
    double efficiency_;
    Tick accessLatency_;

    /** Fault injection (null = fault-free, the default). */
    fault::FaultSite *faultSite_ = nullptr;
    EccEventState *eccEvents_ = nullptr;

    /** Lazily registered bus-busy trace track. */
    trace::TrackId traceTrack_ = trace::InvalidTrack;

    /**
     * Completion callbacks in delivery order. The channel is a FIFO
     * bandwidth server with a constant access latency, so delivery
     * ticks are provably non-decreasing in enqueue order (asserted in
     * access()) and a plain deque replaces the old tick-keyed multimap:
     * no per-request node allocation, O(1) front/back. The dispatch
     * event is armed only while a completion is in flight — an idle
     * channel costs nothing per tick — and re-arming is skipped when
     * the event already sits at the (unchanged) front delivery tick.
     */
    std::deque<std::pair<Tick, std::function<void()>>> pending_;
    Tick busyUntil_ = 0;
    Event dispatchEvent_;

    stats::Scalar bytesRead_;
    stats::Scalar bytesWritten_;
    stats::Scalar requests_;
    stats::Scalar busyTicks_;
};

} // namespace dram
} // namespace cxlpnm

#endif // CXLPNM_DRAM_CHANNEL_HH
