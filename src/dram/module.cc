#include "dram/module.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace cxlpnm
{
namespace dram
{

MultiChannelMemory::MultiChannelMemory(EventQueue &eq,
                                       stats::StatGroup *parent,
                                       std::string name,
                                       const DramTechSpec &spec,
                                       std::uint64_t granule,
                                       int channel_grouping)
    : SimObject(eq, parent, std::move(name)),
      spec_(spec),
      granule_(granule * std::max(1, channel_grouping)),
      capacity_(static_cast<std::uint64_t>(spec.capacityPerModule())),
      scrubEvent_(this->name() + ".scrub", [this] { scrubPass(); }),
      requests_(this, "requests", "module-level requests"),
      requestBytes_(this, "requestBytes", "bytes per module request")
{
    fatal_if(granule_ == 0, "interleave granule must be non-zero");

    // One MemoryChannel per DRAM channel: packages x channels/package.
    // Channel width is the package's pin count divided into 16-bit
    // channels for LPDDR; for the other technologies we model the package
    // as a single channel of its full width (that is how the controller
    // sees it).
    const bool per16 = spec_.name.rfind("LPDDR", 0) == 0;
    const int chans_per_pkg =
        per16 ? std::max(1, spec_.dqPinsPerPackage / 16) : 1;
    const int physical = chans_per_pkg * spec_.packagesPerModule;
    const int grouping = std::max(1, channel_grouping);
    fatal_if(physical % grouping != 0, "channel grouping ", grouping,
             " does not divide ", physical, " channels");
    const int total = physical / grouping;
    const double chan_bw =
        spec_.bandwidthPerPackage() / chans_per_pkg * grouping;
    channels_.reserve(total);
    for (int i = 0; i < total; ++i) {
        channels_.push_back(std::make_unique<MemoryChannel>(
            eq, this, "ch" + std::to_string(i), spec_, chan_bw));
    }
}

void
MultiChannelMemory::attachFaultInjector(fault::FaultInjector *inj,
                                        const EccConfig &ecc)
{
    if (inj == nullptr) {
        faultSite_ = nullptr;
        eccEvents_.reset();
        return;
    }
    faultSite_ = inj->site(fullName() + ".read");
    eccEvents_ = std::make_unique<EccEventState>(ecc);
    scrubInterval_ =
        static_cast<Tick>(ecc.scrubIntervalUs * tickPerUs);
}

void
MultiChannelMemory::scrubPass()
{
    if (auto *tr = eventQueue().tracer()) {
        if (traceTrack_ == trace::InvalidTrack)
            traceTrack_ = tr->track(fullName(), "dram");
        tr->instant(traceTrack_, "ecs_scrub", now());
    }
    eccEvents_->scrub();
    // ECS stays quiet until new latent errors appear; scheduling
    // lazily keeps the event queue drainable at end of simulation.
}

double
MultiChannelMemory::peakBandwidth() const
{
    return channels_.size() * channels_[0]->peakBandwidth();
}

double
MultiChannelMemory::sustainedBandwidth() const
{
    return channels_.size() * channels_[0]->sustainedBandwidth();
}

std::uint64_t
MultiChannelMemory::totalBytes() const
{
    std::uint64_t sum = 0;
    for (const auto &ch : channels_)
        sum += ch->bytesRead() + ch->bytesWritten();
    return sum;
}

void
MultiChannelMemory::access(MemoryRequest req)
{
    panic_if(req.bytes == 0, "zero-byte module access");
    fatal_if(req.addr + req.bytes > capacity_,
             "module access [", req.addr, ", ", req.addr + req.bytes,
             ") exceeds capacity ", capacity_);

    requests_ += 1;
    requestBytes_.sample(static_cast<double>(req.bytes));

    // Fault injection happens once per module-level read, before the
    // stripes are formed: the ECC outcome is a property of the request,
    // not of how many channels served it.
    if (faultSite_ != nullptr && req.isRead) {
        const fault::FaultKind k = faultSite_->poll(now());
        if (k == fault::FaultKind::BitFlip ||
            k == fault::FaultKind::DoubleBitFlip) {
            const EccOutcome o = eccEvents_->onReadFault(
                k == fault::FaultKind::DoubleBitFlip);
            if (o == EccOutcome::Poisoned && req.poison != nullptr)
                *req.poison = true;
            if (auto *tr = eventQueue().tracer()) {
                if (traceTrack_ == trace::InvalidTrack)
                    traceTrack_ = tr->track(fullName(), "dram");
                tr->instant(traceTrack_,
                            std::string("ecc_") + eccOutcomeName(o),
                            now());
            }
            // Corrected errors leave latent state for ECS to clean up.
            if (eccEvents_->scrubbing() &&
                eccEvents_->latentErrors() > 0 &&
                !scrubEvent_.scheduled())
                scheduleIn(scrubEvent_, scrubInterval_);
        }
    }

    // Stripe the request across channels at granule_ granularity,
    // starting from the channel the base address maps to. Each channel
    // receives one coalesced burst (its total share), since a streaming
    // DMA issues its stripes contiguously. Shares are computed in
    // closed form — O(channels), not O(bytes/granule): a partial head
    // chunk on the first channel, whole granules dealt round-robin
    // (each channel gets the same base count, the next `extra` channels
    // in rotation one more), then a partial tail chunk.
    const std::size_t n = channels_.size();
    std::vector<std::uint64_t> &share = shareScratch_;
    share.assign(n, 0);
    const std::uint64_t first = req.addr / granule_;
    const std::uint64_t head = req.addr % granule_;

    const std::uint64_t chunk0 = std::min(req.bytes, granule_ - head);
    share[first % n] += chunk0;
    const std::uint64_t rest = req.bytes - chunk0;
    const std::uint64_t nfull = rest / granule_;
    const std::uint64_t tail = rest % granule_;
    if (nfull > 0) {
        const std::uint64_t base = nfull / n;
        const std::uint64_t extra = nfull % n;
        if (base > 0) {
            for (std::size_t c = 0; c < n; ++c)
                share[c] += base * granule_;
        }
        for (std::uint64_t e = 0; e < extra; ++e)
            share[(first + 1 + e) % n] += granule_;
    }
    if (tail > 0)
        share[(first + 1 + nfull) % n] += tail;

    // Completion when the last stripe lands: one shared fan-in record
    // per request (counter and callback together) instead of the two
    // separate control blocks this used to allocate.
    struct FanIn
    {
        std::size_t outstanding = 0;
        std::function<void()> cb;
    };
    auto fan = std::make_shared<FanIn>();
    fan->cb = std::move(req.onComplete);
    for (std::size_t c = 0; c < n; ++c) {
        if (share[c] != 0)
            ++fan->outstanding;
    }
    panic_if(fan->outstanding == 0, "request produced no stripes");

    for (std::size_t c = 0; c < n; ++c) {
        if (share[c] == 0)
            continue;
        ChannelRequest cr;
        cr.bytes = share[c];
        cr.isRead = req.isRead;
        cr.onComplete = [fan] {
            if (--fan->outstanding == 0 && fan->cb)
                fan->cb();
        };
        channels_[c]->access(std::move(cr));
    }
}

} // namespace dram
} // namespace cxlpnm
