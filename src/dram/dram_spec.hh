/**
 * @file
 * DRAM technology and packaging models behind Table I of the paper.
 *
 * Each DramTechSpec captures per-pin signalling, per-package geometry and
 * electrical parameters for one DRAM technology (DDR5, GDDR6, HBM3,
 * LPDDR5X). Module-level capacity/bandwidth/power are *derived* from the
 * package parameters and a form-factor constraint (packages per FHHL CXL
 * module), exactly as §IV of the paper argues them.
 */

#ifndef CXLPNM_DRAM_DRAM_SPEC_HH
#define CXLPNM_DRAM_DRAM_SPEC_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace cxlpnm
{
namespace dram
{

/** One DRAM technology + packaging option. */
struct DramTechSpec
{
    std::string name;

    /** Signalling rate per DQ pin, bits/s. */
    double gbitPerSecPerPin = 0.0;
    /** DQ pins per DRAM package. */
    int dqPinsPerPackage = 0;
    /** Capacity of one DRAM die, bits. */
    double bitsPerDie = 0.0;
    /** Dies 3D-stacked (or wire-bonded) per package. */
    int diesPerPackage = 0;
    /**
     * Packages that fit on one full-height/half-length CXL module along
     * with the controller, limited by PCB area or trace count (§IV).
     */
    int packagesPerModule = 0;

    double coreVoltage = 0.0;
    double ioVoltage = 0.0;

    /**
     * Typical per-package power under full-bandwidth streaming, watts.
     * Chosen so the module totals reproduce Table I's normalised power
     * column (DDR5 0.35 / GDDR6 0.96 / HBM3 3.00 / LPDDR5X 1.00).
     */
    double packagePowerW = 0.0;

    /**
     * Transfer energy, pJ per bit moved across the interface. The paper
     * cites LPDDR5X at 14% lower pJ/bit than GDDR6.
     */
    double energyPerBitPj = 0.0;
    /** Idle/background power per package (refresh, DLL, periphery), W. */
    double staticPowerPerPackageW = 0.0;

    /** Channel timing: average refresh window and refresh stall. */
    double trefiNs = 0.0;
    double trfcNs = 0.0;
    /** First-access latency (activate + CAS + data return), ns. */
    double accessLatencyNs = 0.0;
    /**
     * Fraction of non-refresh cycles lost to bank conflicts, bus
     * turnaround and scheduling gaps under streaming traffic.
     */
    double schedulingOverhead = 0.0;

    // --- Derived package-level values (Table I middle rows) ---

    /** Bytes/s of one package. */
    double
    bandwidthPerPackage() const
    {
        return gbitPerSecPerPin * dqPinsPerPackage / 8.0;
    }

    /** Bytes of one package. */
    double
    capacityPerPackage() const
    {
        return bitsPerDie * diesPerPackage / 8.0;
    }

    // --- Derived module-level values (Table I bottom rows) ---

    int
    ioWidthPerModule() const
    {
        return dqPinsPerPackage * packagesPerModule;
    }

    double
    bandwidthPerModule() const
    {
        return bandwidthPerPackage() * packagesPerModule;
    }

    double
    capacityPerModule() const
    {
        return capacityPerPackage() * packagesPerModule;
    }

    double
    powerPerModule() const
    {
        return packagePowerW * packagesPerModule;
    }

    /**
     * Sustained fraction of peak bandwidth under streaming access:
     * (1 - tRFC/tREFI) * (1 - schedulingOverhead).
     */
    double
    streamEfficiency() const
    {
        double refresh = trefiNs > 0.0 ? 1.0 - trfcNs / trefiNs : 1.0;
        return refresh * (1.0 - schedulingOverhead);
    }

    // --- Technology presets (Table I columns) ---

    /** DDR5 x4 package, 8-high TSV stack (server RDIMM-class). */
    static DramTechSpec ddr5();
    /** GDDR6 x32 package, single die. */
    static DramTechSpec gddr6();
    /** HBM3 MPGA stack as integrated in an H100-class SiP. */
    static DramTechSpec hbm3();
    /** LPDDR5X x128 package: 8 channels x 4 wire-bonded 16 Gb dies. */
    static DramTechSpec lpddr5x();
    /**
     * Capacity-extended LPDDR5X variant discussed in §IV: four dies per
     * stack doubled, 128 GB/package -> a 1 TB module.
     */
    static DramTechSpec lpddr5x1Tb();
};

} // namespace dram
} // namespace cxlpnm

#endif // CXLPNM_DRAM_DRAM_SPEC_HH
