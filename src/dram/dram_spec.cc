#include "dram/dram_spec.hh"

namespace cxlpnm
{
namespace dram
{

DramTechSpec
DramTechSpec::ddr5()
{
    DramTechSpec s;
    s.name = "DDR5";
    s.gbitPerSecPerPin = 5.6e9;
    s.dqPinsPerPackage = 4;     // x4 server package
    s.bitsPerDie = 16e9;        // 16 Gb
    s.diesPerPackage = 8;       // 8-high TSV stack
    s.packagesPerModule = 32;   // FHHL PCB area limit (§IV)
    s.coreVoltage = 1.1;
    s.ioVoltage = 1.1;
    s.packagePowerW = 0.4375;   // 32 pkg -> 14 W -> 0.35x LPDDR5X module
    s.energyPerBitPj = 15.0;
    s.staticPowerPerPackageW = 0.10;
    s.trefiNs = 3900.0;
    s.trfcNs = 410.0;
    s.accessLatencyNs = 85.0;
    s.schedulingOverhead = 0.08;
    return s;
}

DramTechSpec
DramTechSpec::gddr6()
{
    DramTechSpec s;
    s.name = "GDDR6";
    s.gbitPerSecPerPin = 24e9;
    s.dqPinsPerPackage = 32;    // x32 graphics package
    s.bitsPerDie = 16e9;
    s.diesPerPackage = 1;       // no multi-rank stacking (§IV)
    s.packagesPerModule = 16;   // PCB trace count limit (§IV)
    s.coreVoltage = 1.35;
    s.ioVoltage = 1.35;
    s.packagePowerW = 2.4;      // 16 pkg -> 38.4 W -> 0.96x module
    s.energyPerBitPj = 4.65;    // LPDDR5X is 14% lower (paper §I)
    s.staticPowerPerPackageW = 0.25;
    s.trefiNs = 1900.0;
    s.trfcNs = 110.0;
    s.accessLatencyNs = 60.0;
    s.schedulingOverhead = 0.10;
    return s;
}

DramTechSpec
DramTechSpec::hbm3()
{
    DramTechSpec s;
    s.name = "HBM3";
    s.gbitPerSecPerPin = 6.4e9;
    s.dqPinsPerPackage = 1024;
    s.bitsPerDie = 16e9;
    s.diesPerPackage = 8;       // 8-high TSV stack
    s.packagesPerModule = 5;    // H100-class SiP integration limit
    s.coreVoltage = 1.1;
    s.ioVoltage = 0.4;
    s.packagePowerW = 24.0;     // 5 stacks -> 120 W -> 3.00x module
    s.energyPerBitPj = 3.0;
    s.staticPowerPerPackageW = 1.5;
    s.trefiNs = 3900.0;
    s.trfcNs = 350.0;
    s.accessLatencyNs = 70.0;
    s.schedulingOverhead = 0.08;
    return s;
}

DramTechSpec
DramTechSpec::lpddr5x()
{
    DramTechSpec s;
    s.name = "LPDDR5X";
    s.gbitPerSecPerPin = 8.5e9;
    s.dqPinsPerPackage = 128;   // 8 x16 channels per package
    s.bitsPerDie = 16e9;
    s.diesPerPackage = 32;      // 8 stacks x 4 wire-bonded dies
    s.packagesPerModule = 8;    // trace-count limit on FHHL (§IV)
    s.coreVoltage = 1.05;
    s.ioVoltage = 0.5;
    s.packagePowerW = 5.0;      // 8 pkg -> 40 W (Table II DRAM power)
    s.energyPerBitPj = 4.0;     // 14% below GDDR6's 4.65
    s.staticPowerPerPackageW = 0.60;
    s.trefiNs = 3906.0;
    s.trfcNs = 380.0;
    s.accessLatencyNs = 95.0;
    s.schedulingOverhead = 0.07;
    return s;
}

DramTechSpec
DramTechSpec::lpddr5x1Tb()
{
    DramTechSpec s = lpddr5x();
    s.name = "LPDDR5X-1TB";
    s.diesPerPackage = 64;      // 8 stacks x 8 dies (future stacking)
    s.packagePowerW = 5.8;      // extra ranks add background power
    s.staticPowerPerPackageW = 1.0;
    return s;
}

} // namespace dram
} // namespace cxlpnm
