/**
 * @file
 * RAS / error-correction model for datacenter-scale CXL memory (§IX,
 * "Error Correcting Capability").
 *
 * LPDDR5X cannot afford side-band ECC (its wide datapath would need
 * too many extra devices per transaction), so the paper's platform
 * combines:
 *  - on-die ECC        : SEC inside each DRAM die, invisible capacity;
 *  - inline ECC        : parity stored in the same devices as data,
 *                        costing a fraction of the visible capacity and
 *                        extra transfer per codeword;
 *  - link ECC          : detects/corrects interface transfer errors;
 *  - ECS               : periodic error check and scrub in the
 *                        background, consuming a little bandwidth.
 *
 * EccModel turns a protection configuration into the quantities the
 * platform model needs: usable capacity, effective bandwidth, and the
 * post-correction error rates that justify "enough error detection and
 * correction ... targeting datacenter scale memory".
 */

#ifndef CXLPNM_DRAM_ECC_HH
#define CXLPNM_DRAM_ECC_HH

#include <cstdint>

#include "dram/dram_spec.hh"

namespace cxlpnm
{
namespace dram
{

/** Protection scheme configuration. */
struct EccConfig
{
    bool onDieEcc = true;
    bool inlineEcc = true;
    bool linkEcc = true;
    bool scrubbing = true;

    /**
     * Inline-ECC code rate: data bytes per stored byte. 32 B of parity
     * per 256 B codeword (SEC-DED over 64-bit words) -> 8/9.
     */
    double inlineCodeRate = 8.0 / 9.0;

    /**
     * ECS scrub interval: every row refreshed-and-checked once per
     * 24 h, JEDEC-style, expressed as a bandwidth tax.
     */
    double scrubBandwidthFraction = 0.001;

    /** Raw (pre-correction) bit error rate of the DRAM array. */
    double rawBitErrorRate = 1e-15;
    /** Raw transfer error rate of the interface per bit. */
    double rawLinkErrorRate = 1e-12;

    // --- event-level (fault-injection) parameters ---

    /**
     * ECS pass latency for the event-level model. Real ECS visits every
     * row in ~24 h; the simulated interval is compressed so campaigns
     * of simulated seconds still exercise scrubbing. Only consulted
     * when a FaultInjector is attached.
     */
    double scrubIntervalUs = 500.0;

    /**
     * Latent (corrected-but-unscrubbed) errors tolerated before a new
     * single-bit upset is assumed to align with an old one and become
     * an uncorrectable double-bit error. This is what makes disabling
     * ECS observable in an injection campaign.
     */
    std::uint64_t latentEscalationThreshold = 4;
};

/** Outcome of one read access under the event-level ECC stack. */
enum class EccOutcome
{
    Clean,           // no raw error this access
    CorrectedOnDie,  // single-bit, fixed by the on-die SEC
    CorrectedInline, // single-bit, fixed by inline SEC-DED
    Poisoned,        // double-bit, detected -> poison to the requester
    SilentCorruption,// escaped every enabled mechanism
};

inline const char *
eccOutcomeName(EccOutcome o)
{
    switch (o) {
      case EccOutcome::Clean: return "clean";
      case EccOutcome::CorrectedOnDie: return "corrected_on_die";
      case EccOutcome::CorrectedInline: return "corrected_inline";
      case EccOutcome::Poisoned: return "poisoned";
      case EccOutcome::SilentCorruption: return "silent_corruption";
    }
    return "<bad>";
}

/**
 * Event-level ECC state machine for one module. Classifies injected
 * raw errors (from sim/fault) into corrected / poisoned / silent
 * outcomes and tracks the latent-error population that ECS scrubbing
 * exists to bound. Purely deterministic: no randomness of its own.
 */
class EccEventState
{
  public:
    explicit EccEventState(const EccConfig &cfg) : cfg_(cfg) {}

    const EccConfig &config() const { return cfg_; }

    /** Classify an injected raw array error on a read access. */
    EccOutcome
    onReadFault(bool double_bit)
    {
        // A single-bit upset aligned with an unscrubbed latent error
        // behaves like a double-bit error in that codeword.
        if (!double_bit && latent_ >= cfg_.latentEscalationThreshold) {
            double_bit = true;
            ++escalations_;
        }
        if (!double_bit) {
            ++latent_; // corrected in the read path, still in the array
            if (cfg_.onDieEcc) {
                ++correctedOnDie_;
                return EccOutcome::CorrectedOnDie;
            }
            if (cfg_.inlineEcc) {
                ++correctedInline_;
                return EccOutcome::CorrectedInline;
            }
            ++silent_;
            return EccOutcome::SilentCorruption;
        }
        // Double-bit: SEC cannot correct; inline SEC-DED detects and
        // poisons the response so the requester can recover.
        latent_ = 0; // the offending codeword is retired/repaired
        if (cfg_.inlineEcc) {
            ++poisoned_;
            return EccOutcome::Poisoned;
        }
        ++silent_;
        return EccOutcome::SilentCorruption;
    }

    /** One ECS pass: every latent error is corrected in place. */
    void
    scrub()
    {
        ++scrubPasses_;
        scrubbed_ += latent_;
        latent_ = 0;
    }

    bool scrubbing() const { return cfg_.scrubbing; }
    std::uint64_t latentErrors() const { return latent_; }
    std::uint64_t correctedOnDie() const { return correctedOnDie_; }
    std::uint64_t correctedInline() const { return correctedInline_; }
    std::uint64_t corrected() const
    {
        return correctedOnDie_ + correctedInline_;
    }
    std::uint64_t poisoned() const { return poisoned_; }
    std::uint64_t silentCorruptions() const { return silent_; }
    std::uint64_t scrubbedErrors() const { return scrubbed_; }
    std::uint64_t scrubPasses() const { return scrubPasses_; }
    std::uint64_t escalations() const { return escalations_; }

  private:
    EccConfig cfg_;
    std::uint64_t latent_ = 0;
    std::uint64_t correctedOnDie_ = 0;
    std::uint64_t correctedInline_ = 0;
    std::uint64_t poisoned_ = 0;
    std::uint64_t silent_ = 0;
    std::uint64_t scrubbed_ = 0;
    std::uint64_t scrubPasses_ = 0;
    std::uint64_t escalations_ = 0;
};

/** Derived RAS figures for one module. */
class EccModel
{
  public:
    EccModel(const DramTechSpec &spec, const EccConfig &cfg)
        : spec_(spec), cfg_(cfg)
    {}

    const EccConfig &config() const { return cfg_; }

    /** Capacity visible to software after inline-ECC reservation. */
    double
    usableCapacityBytes() const
    {
        const double raw = spec_.capacityPerModule();
        return cfg_.inlineEcc ? raw * cfg_.inlineCodeRate : raw;
    }

    /** Fraction of raw capacity dedicated to parity. */
    double
    capacityOverhead() const
    {
        return cfg_.inlineEcc ? 1.0 - cfg_.inlineCodeRate : 0.0;
    }

    /**
     * Effective data bandwidth after inline-ECC codeword expansion and
     * the scrub tax.
     */
    double
    effectiveBandwidth(double sustained_bytes_per_sec) const
    {
        double bw = sustained_bytes_per_sec;
        if (cfg_.inlineEcc)
            bw *= cfg_.inlineCodeRate;
        if (cfg_.scrubbing)
            bw *= 1.0 - cfg_.scrubBandwidthFraction;
        return bw;
    }

    /**
     * Uncorrectable array-error rate per bit read. On-die ECC corrects
     * single-bit errors within its 128-bit word; inline ECC corrects a
     * further single symbol per codeword, so the residual rate is the
     * probability of multi-bit alignment, ~(p^2) per stage.
     */
    double
    uncorrectableBitErrorRate() const
    {
        double p = cfg_.rawBitErrorRate;
        if (cfg_.onDieEcc)
            p = p * p * 128.0; // two hits in one 128-bit word
        if (cfg_.inlineEcc)
            p = p * p * 2048.0; // two symbol hits in one codeword
        return p;
    }

    /** Residual interface error rate after link ECC retry. */
    double
    residualLinkErrorRate() const
    {
        const double p = cfg_.rawLinkErrorRate;
        return cfg_.linkEcc ? p * p * 256.0 : p;
    }

    /**
     * Expected uncorrectable errors per day when streaming at
     * @p bytes_per_sec (the platform's FIT-style health figure).
     */
    double
    uncorrectableErrorsPerDay(double bytes_per_sec) const
    {
        const double bits_per_day = bytes_per_sec * 8.0 * 86400.0;
        return bits_per_day * (uncorrectableBitErrorRate() +
                               residualLinkErrorRate());
    }

  private:
    DramTechSpec spec_;
    EccConfig cfg_;
};

} // namespace dram
} // namespace cxlpnm

#endif // CXLPNM_DRAM_ECC_HH
