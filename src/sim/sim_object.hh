/**
 * @file
 * SimObject: the base class for every named, timed component. Binds a
 * component to the simulation's EventQueue and to the stats hierarchy.
 */

#ifndef CXLPNM_SIM_SIM_OBJECT_HH
#define CXLPNM_SIM_SIM_OBJECT_HH

#include <string>
#include <utility>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace cxlpnm
{

/**
 * A named component living on an event queue. The StatGroup base makes
 * every SimObject a node in the stats tree; pass the parent object (or a
 * root group) at construction.
 */
class SimObject : public stats::StatGroup
{
  public:
    /**
     * @param eq     Event queue driving this component.
     * @param parent Parent stats group (usually the owning SimObject).
     * @param name   Component name (leaf of the dotted stats path).
     */
    SimObject(EventQueue &eq, stats::StatGroup *parent, std::string name)
        : stats::StatGroup(parent, std::move(name)), eventq_(eq)
    {}

    EventQueue &eventQueue() { return eventq_; }
    Tick now() const { return eventq_.now(); }

    /** Schedule @p ev at now() + @p delay. */
    void
    scheduleIn(Event &ev, Tick delay)
    {
        eventq_.schedule(ev, eventq_.now() + delay);
    }

  private:
    EventQueue &eventq_;
};

} // namespace cxlpnm

#endif // CXLPNM_SIM_SIM_OBJECT_HH
