#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "sim/logging.hh"

namespace cxlpnm
{
namespace stats
{

StatBase::StatBase(StatGroup *parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    panic_if(parent == nullptr, "stat '", name_, "' needs a parent group");
    parent->addStat(this);
}

void
Scalar::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << value_ << " # " << desc() << "\n";
}

void
Average::sample(double v)
{
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    ++count_;
}

void
Average::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << "::mean " << mean() << " # " << desc()
       << "\n";
    os << prefix << name() << "::count " << count_ << " # samples\n";
    if (count_) {
        os << prefix << name() << "::min " << min_ << " # minimum\n";
        os << prefix << name() << "::max " << max_ << " # maximum\n";
    }
}

void
Average::reset()
{
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
    count_ = 0;
}

Histogram::Histogram(StatGroup *parent, std::string name, std::string desc,
                     double lo, double hi, std::size_t buckets,
                     bool auto_extend)
    : StatBase(parent, std::move(name), std::move(desc)),
      lo_(lo), hi_(hi), initialHi_(hi), autoExtend_(auto_extend),
      buckets_(buckets, 0)
{
    panic_if(buckets == 0, "histogram '", this->name(), "' with 0 buckets");
    panic_if(hi <= lo, "histogram '", this->name(), "' with hi <= lo");
}

void
Histogram::extend()
{
    // New bucket i spans exactly old buckets 2i and 2i+1 (the width
    // doubles with the range), so past samples stay in buckets whose
    // edges still bound them - percentiles coarsen but never move
    // outside a sample's true bucket.
    const std::size_t n = buckets_.size();
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t a = 2 * i;
        std::uint64_t merged = a < n ? buckets_[a] : 0;
        if (a + 1 < n)
            merged += buckets_[a + 1];
        buckets_[i] = merged;
    }
    hi_ = lo_ + 2.0 * (hi_ - lo_);
    ++extensions_;
}

void
Histogram::sample(double v)
{
    ++count_;
    sum_ += v;
    if (autoExtend_ && v >= hi_ && std::isfinite(v)) {
        while (v >= hi_)
            extend();
    }
    if (v < lo_) {
        ++underflow_;
    } else if (v >= hi_) {
        ++overflow_;
    } else {
        // Bucket i covers [lo + i*width, lo + (i+1)*width) with the
        // same edges dump() prints and percentile() reports. The
        // division can land an exact-edge sample one bucket off (e.g.
        // (0.8 - 0) / 0.4 evaluating just under 2), so correct the
        // index against the computed edges instead of trusting the
        // quotient.
        const double width =
            (hi_ - lo_) / static_cast<double>(buckets_.size());
        auto idx = static_cast<std::size_t>((v - lo_) / width);
        idx = std::min(idx, buckets_.size() - 1);
        if (idx + 1 < buckets_.size() &&
            v >= lo_ + width * static_cast<double>(idx + 1))
            ++idx;
        else if (idx > 0 && v < lo_ + width * static_cast<double>(idx))
            --idx;
        ++buckets_[idx];
    }
}

double
Histogram::percentile(double q) const
{
    panic_if(q < 0.0 || q > 1.0, "percentile '", name(),
             "' quantile out of [0,1]");
    if (count_ == 0)
        return 0.0;
    // Nearest rank: the smallest sample index covering fraction q.
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    rank = std::max<std::uint64_t>(rank, 1);

    std::uint64_t cum = underflow_;
    if (rank <= cum)
        return lo_;
    const double width =
        (hi_ - lo_) / static_cast<double>(buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        cum += buckets_[i];
        if (rank <= cum)
            return lo_ + width * static_cast<double>(i + 1);
    }
    return hi_;
}

void
Histogram::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << "::count " << count_ << " # " << desc()
       << "\n";
    os << prefix << name() << "::mean " << mean() << " # mean\n";
    os << prefix << name() << "::underflow " << underflow_ << " # < "
       << lo_ << "\n";
    const double width =
        (hi_ - lo_) / static_cast<double>(buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        os << prefix << name() << "::bucket[" << lo_ + width * i << ","
           << lo_ + width * (i + 1) << ") " << buckets_[i] << "\n";
    }
    os << prefix << name() << "::overflow " << overflow_ << " # >= "
       << hi_ << "\n";
}

Histogram::State
Histogram::state() const
{
    State s;
    s.hi = hi_;
    s.extensions = extensions_;
    s.buckets = buckets_;
    s.underflow = underflow_;
    s.overflow = overflow_;
    s.count = count_;
    s.sum = sum_;
    return s;
}

void
Histogram::restore(const State &s)
{
    fatal_if(s.buckets.size() != buckets_.size(),
             "histogram restore: ", s.buckets.size(),
             " buckets for a histogram configured with ",
             buckets_.size());
    hi_ = s.hi;
    extensions_ = s.extensions;
    buckets_ = s.buckets;
    underflow_ = s.underflow;
    overflow_ = s.overflow;
    count_ = s.count;
    sum_ = s.sum;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = overflow_ = count_ = 0;
    sum_ = 0.0;
    // A reset histogram matches a freshly constructed one, extensions
    // included.
    hi_ = initialHi_;
    extensions_ = 0;
}

StatGroup::StatGroup(StatGroup *parent, std::string name)
    : parent_(parent), name_(std::move(name))
{
    if (parent_)
        parent_->addChild(this);
}

StatGroup::~StatGroup()
{
    if (parent_)
        parent_->removeChild(this);
}

std::string
StatGroup::fullName() const
{
    if (!parent_)
        return name_;
    std::string p = parent_->fullName();
    return p.empty() ? name_ : p + "." + name_;
}

void
StatGroup::dumpStats(std::ostream &os) const
{
    std::string prefix = fullName();
    if (!prefix.empty())
        prefix += ".";
    for (const StatBase *s : stats_)
        s->dump(os, prefix);
    for (const StatGroup *g : children_)
        g->dumpStats(os);
}

void
StatGroup::resetStats()
{
    for (StatBase *s : stats_)
        s->reset();
    for (StatGroup *g : children_)
        g->resetStats();
}

void
StatGroup::addStat(StatBase *stat)
{
    stats_.push_back(stat);
}

void
StatGroup::addChild(StatGroup *child)
{
    children_.push_back(child);
}

void
StatGroup::removeChild(StatGroup *child)
{
    std::erase(children_, child);
}

} // namespace stats
} // namespace cxlpnm
