/**
 * @file
 * Clock domains translate between cycles and ticks. Every timed component
 * belongs to one domain (accelerator core @ 1 GHz, LPDDR5X channel,
 * PCIe/CXL link, GPU SM clock, ...).
 */

#ifndef CXLPNM_SIM_CLOCK_DOMAIN_HH
#define CXLPNM_SIM_CLOCK_DOMAIN_HH

#include <cstdint>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace cxlpnm
{

/** A fixed-frequency clock. */
class ClockDomain
{
  public:
    /** @param freq_hz Frequency in Hz; must divide 1 THz for exactness. */
    explicit ClockDomain(double freq_hz)
        : freqHz_(freq_hz),
          period_(static_cast<Tick>(
              static_cast<double>(tickPerSec) / freq_hz + 0.5))
    {
        fatal_if(freq_hz <= 0.0, "clock frequency must be positive");
        fatal_if(freq_hz > static_cast<double>(tickPerSec),
                 "clock frequency ", freq_hz,
                 " Hz exceeds tick resolution (1 THz)");
    }

    double frequency() const { return freqHz_; }

    /** Clock period in ticks (rounded to nearest picosecond). */
    Tick period() const { return period_; }

    /** Ticks spanned by @p c cycles. */
    Tick
    cyclesToTicks(Cycles c) const
    {
        return c.value() * period_;
    }

    /** Whole cycles elapsed after @p t ticks (rounded up). */
    Cycles
    ticksToCycles(Tick t) const
    {
        return Cycles((t + period_ - 1) / period_);
    }

    /** First tick >= @p now aligned to a clock edge. */
    Tick
    nextEdge(Tick now) const
    {
        return ((now + period_ - 1) / period_) * period_;
    }

  private:
    double freqHz_;
    Tick period_;
};

} // namespace cxlpnm

#endif // CXLPNM_SIM_CLOCK_DOMAIN_HH
