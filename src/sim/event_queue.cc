#include "sim/event_queue.hh"

#include <memory>
#include <utility>

#include "sim/logging.hh"

namespace cxlpnm
{

Event::Event(std::string name, std::function<void()> callback, int priority)
    : name_(std::move(name)), callback_(std::move(callback)),
      priority_(priority)
{
    panic_if(!callback_, "event '", name_, "' constructed without callback");
}

Event::~Event()
{
    if (queue_)
        queue_->deschedule(*this);
}

Tick
Event::when() const
{
    panic_if(!queue_, "when() on unscheduled event '", name_, "'");
    return when_;
}

void
EventQueue::schedule(Event &ev, Tick when)
{
    panic_if(ev.queue_ != nullptr,
             "event '", ev.name_, "' scheduled while already pending");
    panic_if(when < now_, "event '", ev.name_, "' scheduled at tick ", when,
             " in the past (now ", now_, ")");

    ev.queue_ = this;
    ev.when_ = when;
    ev.sequence_ = nextSequence_++;
    queue_.emplace(Key{when, ev.priority_, ev.sequence_}, &ev);
}

EventQueue::~EventQueue()
{
    // Reclaim one-shot events that never fired. Regular events are owned
    // by their components; just detach them.
    for (auto &[key, ev] : queue_) {
        ev->queue_ = nullptr;
        if (ev->oneShot_)
            delete ev;
    }
    queue_.clear();
}

void
EventQueue::scheduleOneShot(std::string name, Tick when,
                            std::function<void()> fn, int priority)
{
    auto *ev = new Event(std::move(name), std::move(fn), priority);
    ev->oneShot_ = true;
    schedule(*ev, when);
}

void
EventQueue::deschedule(Event &ev)
{
    panic_if(ev.queue_ != this,
             "deschedule of event '", ev.name_, "' not in this queue");
    queue_.erase(Key{ev.when_, ev.priority_, ev.sequence_});
    ev.queue_ = nullptr;
}

void
EventQueue::reschedule(Event &ev, Tick when)
{
    if (ev.queue_)
        deschedule(ev);
    schedule(ev, when);
}

Tick
EventQueue::nextTick() const
{
    return queue_.empty() ? MaxTick : queue_.begin()->first.when;
}

bool
EventQueue::step()
{
    if (queue_.empty())
        return false;

    auto it = queue_.begin();
    Event *ev = it->second;
    now_ = it->first.when;
    queue_.erase(it);
    ev->queue_ = nullptr;
    ++fired_;
    // Hold one-shot ownership across the callback: a throwing handler
    // (the panic/fatal paths) must not leak the event.
    std::unique_ptr<Event> reclaim(ev->oneShot_ ? ev : nullptr);
    ev->callback_();
    if (ev->oneShot_ && ev->queue_ != nullptr) {
        reclaim.release(); // it is back in the queue, owned there
        panic("one-shot event '", ev->name_, "' rescheduled itself");
    }
    return true;
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t n = 0;
    while (!queue_.empty() && queue_.begin()->first.when <= limit) {
        step();
        ++n;
    }
    if (now_ < limit && limit != MaxTick)
        now_ = limit;
    return n;
}

} // namespace cxlpnm
