#include "sim/event_queue.hh"

#include <algorithm>
#include <memory>
#include <utility>

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace cxlpnm
{

void
EventQueue::setTracer(trace::Tracer *t)
{
    tracer_ = t;
    traceTrack_ = t ? t->track("sim.events", "sim") : 0;
}

Event::Event(std::string name, std::function<void()> callback, int priority)
    : name_(std::move(name)), callback_(std::move(callback)),
      priority_(priority)
{
    panic_if(!callback_, "event '", name_, "' constructed without callback");
}

Event::~Event()
{
    if (queue_)
        queue_->deschedule(*this);
}

Tick
Event::when() const
{
    panic_if(!queue_, "when() on unscheduled event '", name_, "'");
    return when_;
}

bool
EventQueue::before(const Event *a, const Event *b)
{
    if (a->when_ != b->when_)
        return a->when_ < b->when_;
    if (a->priority_ != b->priority_)
        return a->priority_ < b->priority_;
    return a->sequence_ < b->sequence_;
}

void
EventQueue::siftUp(std::size_t i)
{
    Event *ev = heap_[i];
    while (i > 0) {
        const std::size_t parent = (i - 1) / heapArity;
        if (!before(ev, heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        heap_[i]->heapIndex_ = i;
        i = parent;
    }
    heap_[i] = ev;
    ev->heapIndex_ = i;
}

void
EventQueue::siftDown(std::size_t i)
{
    Event *ev = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
        const std::size_t first = i * heapArity + 1;
        if (first >= n)
            break;
        std::size_t best = first;
        const std::size_t last = std::min(first + heapArity, n);
        for (std::size_t c = first + 1; c < last; ++c) {
            if (before(heap_[c], heap_[best]))
                best = c;
        }
        if (!before(heap_[best], ev))
            break;
        heap_[i] = heap_[best];
        heap_[i]->heapIndex_ = i;
        i = best;
    }
    heap_[i] = ev;
    ev->heapIndex_ = i;
}

Event *
EventQueue::removeAt(std::size_t i)
{
    Event *removed = heap_[i];
    Event *moved = heap_.back();
    heap_.pop_back();
    if (i < heap_.size()) {
        heap_[i] = moved;
        moved->heapIndex_ = i;
        // The hole's replacement may need to travel either direction.
        siftDown(i);
        siftUp(moved->heapIndex_);
    }
    removed->queue_ = nullptr;
    return removed;
}

void
EventQueue::schedule(Event &ev, Tick when)
{
    panic_if(ev.queue_ != nullptr,
             "event '", ev.name_, "' scheduled while already pending");
    panic_if(when < now_, "event '", ev.name_, "' scheduled at tick ", when,
             " in the past (now ", now_, ")");

    ev.queue_ = this;
    ev.when_ = when;
    ev.sequence_ = nextSequence_++;
    heap_.push_back(&ev);
    siftUp(heap_.size() - 1);
}

EventQueue::~EventQueue()
{
    // Reclaim one-shot events that never fired. Regular events are owned
    // by their components; just detach them.
    for (Event *ev : heap_) {
        ev->queue_ = nullptr;
        if (ev->oneShot_)
            delete ev;
    }
    heap_.clear();
    for (Event *ev : oneShotPool_)
        delete ev;
    oneShotPool_.clear();
}

void
EventQueue::scheduleOneShot(std::string name, Tick when,
                            std::function<void()> fn, int priority)
{
    Event *ev;
    if (!oneShotPool_.empty()) {
        ev = oneShotPool_.back();
        oneShotPool_.pop_back();
        ++oneShotReuses_;
        // Assignment into the recycled slots reuses their existing
        // string/function storage where the capacity fits.
        ev->name_ = std::move(name);
        ev->callback_ = std::move(fn);
        ev->priority_ = priority;
        panic_if(!ev->callback_,
                 "event '", ev->name_, "' scheduled without callback");
    } else {
        ev = new Event(std::move(name), std::move(fn), priority);
        ev->oneShot_ = true;
        ++oneShotAllocs_;
    }
    schedule(*ev, when);
}

void
EventQueue::recycleOneShot(Event *ev)
{
    // Drop the callback now so its captures die at the same point a
    // fresh-allocation implementation would have destroyed them (right
    // after the dispatch), not whenever the slot is next reused.
    ev->callback_ = nullptr;
    oneShotPool_.push_back(ev);
}

void
EventQueue::deschedule(Event &ev)
{
    panic_if(ev.queue_ != this,
             "deschedule of event '", ev.name_, "' not in this queue");
    removeAt(ev.heapIndex_);
}

void
EventQueue::reschedule(Event &ev, Tick when)
{
    if (ev.queue_)
        deschedule(ev);
    schedule(ev, when);
}

Tick
EventQueue::nextTick() const
{
    return heap_.empty() ? MaxTick : heap_.front()->when_;
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;

    now_ = heap_.front()->when_;
    Event *ev = removeAt(0);
    ++fired_;
    if (tracer_ != nullptr && tracer_->eventDispatch())
        tracer_->instant(traceTrack_, ev->name_, now_);
    // Hold one-shot ownership across the callback: a throwing handler
    // (the panic/fatal paths) must not leak the event — it lands in the
    // recycle pool either way and the queue destructor frees the pool.
    struct Reclaim
    {
        EventQueue *q;
        Event *ev;
        ~Reclaim()
        {
            if (ev)
                q->recycleOneShot(ev);
        }
    } reclaim{this, ev->oneShot_ ? ev : nullptr};
    ev->callback_();
    if (ev->oneShot_ && ev->queue_ != nullptr) {
        reclaim.ev = nullptr; // it is back in the queue, owned there
        panic("one-shot event '", ev->name_, "' rescheduled itself");
    }
    return true;
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t n = 0;
    while (!heap_.empty() && heap_.front()->when_ <= limit) {
        step();
        ++n;
    }
    if (now_ < limit && limit != MaxTick)
        now_ = limit;
    return n;
}

} // namespace cxlpnm
