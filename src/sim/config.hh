/**
 * @file
 * A flat, dotted-key configuration store used by examples and benches to
 * override model parameters from the command line ("key=value" tokens).
 * Subsystem parameter structs remain the source of truth; Config is the
 * bridge from text to those structs.
 */

#ifndef CXLPNM_SIM_CONFIG_HH
#define CXLPNM_SIM_CONFIG_HH

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace cxlpnm
{

/** String-keyed configuration with typed accessors and defaults. */
class Config
{
  public:
    Config() = default;

    /**
     * Parse "key=value" tokens (e.g. argv tail). Tokens without '=' are
     * rejected with fatal(); empty keys likewise.
     */
    static Config fromArgs(const std::vector<std::string> &tokens);

    /** Set/overwrite a key. */
    void set(const std::string &key, const std::string &value);

    bool has(const std::string &key) const;

    /** Typed getters; fatal() on malformed values. */
    std::string getString(const std::string &key,
                          const std::string &def) const;
    std::int64_t getInt(const std::string &key, std::int64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;

    /** Keys in sorted order (for help/debug dumps). */
    std::vector<std::string> keys() const;

  private:
    std::optional<std::string> raw(const std::string &key) const;

    std::map<std::string, std::string> values_;
};

} // namespace cxlpnm

#endif // CXLPNM_SIM_CONFIG_HH
