/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The queue keeps (tick, priority, sequence)-ordered callbacks. Events
 * scheduled for the same tick fire in priority order, then in scheduling
 * order, which makes simulations deterministic regardless of container
 * iteration details.
 */

#ifndef CXLPNM_SIM_EVENT_QUEUE_HH
#define CXLPNM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace cxlpnm
{

namespace trace
{
class Tracer;
}

class EventQueue;

/**
 * A schedulable callback. An Event object is reusable: it can be scheduled,
 * fire, and be scheduled again, but it can be in the queue at most once at
 * a time. Lifetime is owned by the creating component (typically a member
 * of a SimObject), never by the queue.
 */
class Event
{
  public:
    /** Default priorities; lower value fires earlier within a tick. */
    static constexpr int defaultPriority = 100;
    /** Stat-dump/report events fire after all model activity in a tick. */
    static constexpr int reportPriority = 1000;

    /**
     * @param name     Debug name, shown in panic messages.
     * @param callback Invoked when the event fires.
     * @param priority Intra-tick ordering; lower fires first.
     */
    Event(std::string name, std::function<void()> callback,
          int priority = defaultPriority);

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;
    ~Event();

    const std::string &name() const { return name_; }
    int priority() const { return priority_; }
    bool scheduled() const { return queue_ != nullptr; }

    /** Tick this event will fire at; panics unless scheduled. */
    Tick when() const;

  private:
    friend class EventQueue;

    std::string name_;
    std::function<void()> callback_;
    int priority_;

    /** Owned by the queue and deleted after firing (scheduleOneShot). */
    bool oneShot_ = false;

    /** Non-null while in a queue. */
    EventQueue *queue_ = nullptr;
    Tick when_ = 0;
    std::uint64_t sequence_ = 0;
    /** Position in the owning queue's heap; valid while scheduled. */
    std::size_t heapIndex_ = 0;
};

/**
 * The event queue itself. One queue drives one simulation; components are
 * handed a reference at construction.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    ~EventQueue();

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p ev at absolute tick @p when (>= now). Panics if the
     * event is already scheduled or the tick is in the past.
     */
    void schedule(Event &ev, Tick when);

    /**
     * Fire @p fn once at tick @p when. The queue owns the backing event
     * and frees it after it fires (or at queue destruction). Handy for
     * fire-and-forget latencies where no reusable Event member exists.
     *
     * Fired one-shots are recycled through an internal free list, so a
     * steady-state simulation performs no heap allocation per dispatch:
     * the Event object, its name storage, and (capture-size permitting)
     * its std::function buffer are all reused. Recycling happens after
     * the callback returns — timing, ordering, and observable behaviour
     * are identical to a fresh allocation.
     */
    void scheduleOneShot(std::string name, Tick when,
                         std::function<void()> fn,
                         int priority = Event::defaultPriority);

    /** One-shot events that required a fresh heap allocation. */
    std::uint64_t oneShotHeapAllocs() const { return oneShotAllocs_; }
    /** One-shot events served from the recycle pool instead. */
    std::uint64_t oneShotPoolReuses() const { return oneShotReuses_; }
    /** Events currently parked in the recycle pool. */
    std::size_t oneShotPoolSize() const { return oneShotPool_.size(); }

    /** Remove a scheduled event without firing it. */
    void deschedule(Event &ev);

    /** Deschedule (if scheduled) then schedule at a new tick. */
    void reschedule(Event &ev, Tick when);

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** Tick of the next pending event; MaxTick when empty. */
    Tick nextTick() const;

    /**
     * Run until the queue drains or @p limit is passed, whichever is
     * first. Returns the number of events fired.
     */
    std::uint64_t run(Tick limit = MaxTick);

    /** Fire events until (and including) tick @p until. */
    std::uint64_t runUntil(Tick until) { return run(until); }

    /** Fire exactly one event, if any. Returns true if one fired. */
    bool step();

    /** Total events fired since construction. */
    std::uint64_t eventsFired() const { return fired_; }

    /**
     * Tracer shared by every component on this queue; null (the
     * default) disables tracing. Components reach it through
     * `eventQueue().tracer()` and must treat null as "off". The
     * queue does not own the tracer.
     */
    trace::Tracer *tracer() const { return tracer_; }
    void setTracer(trace::Tracer *t);

  private:
    /**
     * Index-tracking d-ary min-heap ordered by (when, priority,
     * sequence): each Event carries its own heap slot (heapIndex_), so
     * deschedule/reschedule are O(log n) with no per-node allocation —
     * the backing vector is reused across the whole run. The sequence
     * tiebreak keeps same-tick same-priority events firing in schedule
     * order, exactly as the old ordered-map implementation did.
     */
    static constexpr std::size_t heapArity = 4;

    static bool before(const Event *a, const Event *b);
    void siftUp(std::size_t i);
    void siftDown(std::size_t i);
    /** Detach heap_[i] from the heap and restore the heap property. */
    Event *removeAt(std::size_t i);
    /** Park a fired one-shot in the pool, releasing its captures. */
    void recycleOneShot(Event *ev);

    std::vector<Event *> heap_;
    Tick now_ = 0;
    std::uint64_t nextSequence_ = 0;
    std::uint64_t fired_ = 0;

    /** Recycle pool for fired one-shot events (see scheduleOneShot). */
    std::vector<Event *> oneShotPool_;
    std::uint64_t oneShotAllocs_ = 0;
    std::uint64_t oneShotReuses_ = 0;

    trace::Tracer *tracer_ = nullptr;
    /** Dispatch-instant track; registered by setTracer. */
    std::uint32_t traceTrack_ = 0;
};

} // namespace cxlpnm

#endif // CXLPNM_SIM_EVENT_QUEUE_HH
