/**
 * @file
 * Deterministic fault injection for RAS testing (§IX).
 *
 * A FaultInjector owns a registry of named fault *sites* - points in
 * the simulated stack where an error can be made to occur (a DRAM read
 * burst, a CXL flit transfer, a doorbell launch, a serving iteration).
 * Components obtain their site once and poll it on every access; with
 * no injector attached the poll is a null-pointer check and the
 * simulation is bit-identical to a fault-free run.
 *
 * Three schedules arm a site:
 *  - Probabilistic : each access faults with probability p;
 *  - Scripted      : fire once at a given tick (AtTick) or on the
 *                    N-th access to the site (AtAccess);
 *  - Burst         : every access inside a tick window faults with
 *                    probability p (an error storm, e.g. a cosmic-ray
 *                    shower or a marginal link).
 *
 * Every random draw comes from a per-site SplitMix64 stream seeded by
 * mixing the injector seed with the site name, so a given seed yields a
 * byte-identical fault log regardless of site registration order or
 * how many sibling simulations run on other threads.
 */

#ifndef CXLPNM_SIM_FAULT_HH
#define CXLPNM_SIM_FAULT_HH

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/random.hh"
#include "sim/types.hh"

namespace cxlpnm
{
namespace fault
{

/** What kind of error a site produces when it fires. */
enum class FaultKind
{
    None = 0,
    BitFlip,       // single-bit upset in a DRAM read burst
    DoubleBitFlip, // two flipped bits in one ECC codeword
    LinkCrc,       // flit CRC error on a CXL link channel
    DeviceHang,    // doorbell launch that never completes
    DropCompletion,// device finishes but the completion is lost
    IterationFail, // serving-level batch iteration failure
    GroupFailStop, // whole device group fail-stops (long outage)
    IterationSlow, // straggler: one batch iteration runs slowed down
};

const char *faultKindName(FaultKind k);

/** When an armed fault fires. */
enum class Schedule
{
    Probabilistic, // per access, probability `probability`
    AtTick,        // once, on the first access at or after `atTick`
    AtAccess,      // once, on access number `atAccess` (0-based)
    Burst,         // inside [burstStart, burstEnd) ticks, probability
                   // `probability` per access
};

/** One armed fault: a site name, a kind, and a schedule. */
struct FaultSpec
{
    std::string site;
    FaultKind kind = FaultKind::BitFlip;
    Schedule schedule = Schedule::Probabilistic;

    /** Probabilistic/Burst: chance per access in [0, 1]. */
    double probability = 0.0;
    /** AtTick: first access at or after this tick fires (once). */
    Tick atTick = 0;
    /** AtAccess: 0-based access index that fires (once). */
    std::uint64_t atAccess = 0;
    /** Burst: tick window. */
    Tick burstStart = 0;
    Tick burstEnd = 0;

    static FaultSpec probabilistic(std::string site, FaultKind kind,
                                   double p);
    static FaultSpec scriptedTick(std::string site, FaultKind kind,
                                  Tick t);
    static FaultSpec scriptedAccess(std::string site, FaultKind kind,
                                    std::uint64_t n);
    static FaultSpec burst(std::string site, FaultKind kind, Tick start,
                           Tick end, double p);
};

class FaultInjector;

/**
 * One injection point. Components hold a FaultSite* (null when no
 * injector is attached) and poll it per access; the first armed spec
 * that fires wins and is appended to the injector's log.
 */
class FaultSite
{
  public:
    const std::string &name() const { return name_; }
    std::uint64_t accesses() const { return accesses_; }

    /** Evaluate all armed schedules for this access. */
    FaultKind poll(Tick now);

  private:
    friend class FaultInjector;

    FaultSite(FaultInjector &owner, std::string name,
              std::uint64_t seed);

    struct Armed
    {
        FaultSpec spec;
        bool fired = false; // AtTick/AtAccess fire once
    };

    FaultInjector &owner_;
    std::string name_;
    SplitMix64 rng_;
    std::uint64_t accesses_ = 0;
    std::vector<Armed> armed_;
};

/** Convenience null-safe poll. */
inline FaultKind
poll(FaultSite *site, Tick now)
{
    return site != nullptr ? site->poll(now) : FaultKind::None;
}

/** The per-simulation fault authority: registry, schedules, log. */
class FaultInjector
{
  public:
    explicit FaultInjector(std::uint64_t seed);

    std::uint64_t seed() const { return seed_; }

    /**
     * Arm a fault. The site need not exist yet; the spec attaches when
     * the owning component registers it.
     */
    void arm(const FaultSpec &spec);

    /**
     * Find or create a site. The returned pointer is stable for the
     * injector's lifetime.
     */
    FaultSite *site(const std::string &name);

    /** One fired fault, in firing order. */
    struct Record
    {
        std::uint64_t seq = 0;
        Tick tick = 0;
        std::string site;
        FaultKind kind = FaultKind::None;
        /** Access index at the site when the fault fired. */
        std::uint64_t access = 0;
    };

    const std::vector<Record> &records() const { return log_; }
    std::uint64_t firedCount(FaultKind k) const;
    std::uint64_t totalFired() const { return log_.size(); }

    /** One site's mutable state (warm-state snapshot/restore). */
    struct SiteState
    {
        std::string name;
        std::uint64_t rngState = 0;
        std::uint64_t accesses = 0;
        /** Per armed spec, in arming order: already fired? */
        std::vector<bool> fired;
    };

    /** Injector state: per-site progress plus the fired-fault log.
     *  Armed specs and the seed are configuration, not state - a
     *  restore target must be built with the same seed and specs. */
    struct State
    {
        std::vector<SiteState> sites;
        std::vector<Record> log;
    };

    State state() const;

    /**
     * Restore @p s. Every site in @p s must already exist with the
     * same number of armed specs (i.e. the injector was rebuilt with
     * the same configuration and its components re-registered their
     * sites); fatal otherwise.
     */
    void restore(const State &s);

    /** Byte-stable textual fault log (the determinism artifact). */
    void writeLog(std::ostream &os) const;
    std::string logString() const;

  private:
    friend class FaultSite;

    void record(const std::string &site, FaultKind kind, Tick tick,
                std::uint64_t access);

    std::uint64_t seed_;
    /** Ordered map: stable iteration for debugging dumps. */
    std::map<std::string, std::unique_ptr<FaultSite>> sites_;
    /** Specs armed before their site exists. */
    std::vector<FaultSpec> pending_;
    std::vector<Record> log_;
};

} // namespace fault
} // namespace cxlpnm

#endif // CXLPNM_SIM_FAULT_HH
