/**
 * @file
 * Chrome-trace / Perfetto-compatible tracing for the simulator.
 *
 * A Tracer collects duration spans ("ph":"X"), instant events
 * ("ph":"i") and counter samples ("ph":"C") on named tracks and writes
 * them as Trace Event Format JSON that chrome://tracing and
 * ui.perfetto.dev load directly. Timestamps are *simulated* time:
 * callers pass Ticks (picoseconds) and the writer renders microseconds
 * with pure integer math, so the emitted bytes are a function of the
 * simulation alone — same seed, same trace, regardless of host, build
 * or worker-thread count (the same discipline as the fault log).
 *
 * Determinism contract:
 *  - Track IDs are assigned in first-registration order, which is
 *    itself deterministic (component construction / first activity).
 *  - Records are buffered and stable-ordered at write time by
 *    (timestamp, track, emission sequence), so per-track timestamps
 *    are monotonically non-decreasing in the output.
 *  - No wall-clock, pointers, or iteration-order-dependent state is
 *    ever emitted.
 *
 * Overhead contract: tracing is off by default. The gate is a null
 * Tracer pointer — e.g. `eventQueue().tracer()` — checked at each
 * instrumentation site, so a disabled run costs one predictable
 * branch per site and perturbs neither simulated timing nor numerics
 * (the golden checksum is bit-identical either way).
 */

#ifndef CXLPNM_SIM_TRACE_HH
#define CXLPNM_SIM_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace cxlpnm
{
namespace trace
{

/**
 * Stable identifier of one timeline, rendered as a Perfetto "thread".
 * 0 is reserved as the unset/invalid value so call sites can cache a
 * TrackId member and lazily register on first use.
 */
using TrackId = std::uint32_t;

constexpr TrackId InvalidTrack = 0;

/** Convenience gate for instrumentation sites:
 *  `if (CXLPNM_TRACING(tr)) tr->instant(...);` compiles to a single
 *  pointer test when tracing is disabled. */
#define CXLPNM_TRACING(tracer_ptr) ((tracer_ptr) != nullptr)

class Tracer
{
  public:
    Tracer() = default;
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /**
     * Intern a track by name (idempotent: same name, same id). The id
     * is the 1-based registration order, so a deterministic call
     * sequence yields deterministic ids. @p category becomes the
     * "cat" field of the track's events.
     */
    TrackId track(const std::string &name, const char *category = "");

    /** Duration span [start, end] on @p t; end >= start required. */
    void complete(TrackId t, const std::string &name, Tick start,
                  Tick end);

    /** Zero-duration marker at @p ts. */
    void instant(TrackId t, const std::string &name, Tick ts);

    /**
     * Counter sample at @p ts; the series is named after the track, so
     * dedicate one track per counter (e.g. "app.queue_depth").
     */
    void counter(TrackId t, Tick ts, double value);

    /**
     * When true, EventQueue::step emits one instant per dispatched
     * event. Off by default: per-event instants dominate trace size
     * on event-dense device runs.
     */
    bool eventDispatch() const { return eventDispatch_; }
    void setEventDispatch(bool on) { eventDispatch_ = on; }

    std::size_t eventCount() const { return records_.size(); }
    std::size_t trackCount() const { return tracks_.size(); }

    /** Serialize as Chrome Trace Event Format JSON. */
    void write(std::ostream &os) const;
    std::string json() const;

    /** Write JSON to @p path; false (with errno intact) on failure. */
    bool writeFile(const std::string &path) const;

    /**
     * Post-run profiling report: per-track busy % over the traced
     * window (complete spans only; overlapping spans are summed, so
     * pipelined tracks can exceed 100%) and the @p top_k longest
     * spans. Deterministic ordering.
     */
    void summary(std::ostream &os, std::size_t top_k = 5) const;

    enum class Phase : std::uint8_t { Complete, Instant, Counter };

    struct Track
    {
        std::string name;
        std::string category;
    };

    struct Record
    {
        Phase ph;
        TrackId track;
        Tick ts;
        Tick dur;     // Complete only
        double value; // Counter only
        std::string name;
    };

    /** Full collector state, for warm-state snapshot/restore: a
     *  restored tracer emits byte-identical JSON. */
    struct State
    {
        std::vector<Track> tracks;
        std::vector<Record> records;
        bool eventDispatch = false;
    };

    State
    state() const
    {
        return {tracks_, records_, eventDispatch_};
    }

    void
    restore(State s)
    {
        tracks_ = std::move(s.tracks);
        records_ = std::move(s.records);
        eventDispatch_ = s.eventDispatch;
        trackByName_.clear();
        for (std::size_t i = 0; i < tracks_.size(); ++i)
            trackByName_.emplace(tracks_[i].name,
                                 static_cast<TrackId>(i + 1));
    }

  private:
    std::vector<Track> tracks_;
    std::unordered_map<std::string, TrackId> trackByName_;
    std::vector<Record> records_;
    bool eventDispatch_ = false;
};

} // namespace trace
} // namespace cxlpnm

#endif // CXLPNM_SIM_TRACE_HH
