/**
 * @file
 * Status and error reporting in the gem5 tradition.
 *
 * panic()  - an internal simulator invariant was violated (a bug in this
 *            code base); aborts so a debugger/core dump is useful.
 * fatal()  - the simulation cannot continue because of a user error (bad
 *            configuration, impossible parameters); exits with status 1.
 * warn()   - something is modeled approximately; simulation continues.
 * inform() - plain status output.
 *
 * All take printf-free, iostream-free std::format-style messages built by
 * the caller; we accept a pre-formatted string to keep the interface tiny.
 */

#ifndef CXLPNM_SIM_LOGGING_HH
#define CXLPNM_SIM_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace cxlpnm
{

/**
 * Thrown by panic(): an internal invariant of the simulator was violated.
 * Tests catch this to exercise negative paths; main() treats it as a bug.
 */
class PanicError : public std::logic_error
{
  public:
    using std::logic_error::logic_error;
};

/** Thrown by fatal(): a user/configuration error; not a simulator bug. */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Verbosity control for inform()/warn(); errors always print. */
enum class LogLevel { Silent, Error, Warn, Info };

/** Process-wide log level (defaults to Info). */
LogLevel logLevel();
void setLogLevel(LogLevel level);

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/**
 * Build a message from stream-insertable parts:
 *   panic("bad tile dim ", dim, " at addr ", addr);
 */
template <typename... Args>
std::string
msgCat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace cxlpnm

#define panic(...) \
    ::cxlpnm::panicImpl(__FILE__, __LINE__, ::cxlpnm::msgCat(__VA_ARGS__))
#define fatal(...) \
    ::cxlpnm::fatalImpl(__FILE__, __LINE__, ::cxlpnm::msgCat(__VA_ARGS__))
#define warn(...) ::cxlpnm::warnImpl(::cxlpnm::msgCat(__VA_ARGS__))
#define inform(...) ::cxlpnm::informImpl(::cxlpnm::msgCat(__VA_ARGS__))

/** panic() unless an invariant holds. */
#define panic_if(cond, ...)                                               \
    do {                                                                  \
        if (cond)                                                         \
            panic("assertion '" #cond "' failed: ", ::cxlpnm::msgCat(     \
                __VA_ARGS__));                                            \
    } while (0)

/** fatal() unless a user-supplied configuration is sane. */
#define fatal_if(cond, ...)                                               \
    do {                                                                  \
        if (cond)                                                         \
            fatal(::cxlpnm::msgCat(__VA_ARGS__));                         \
    } while (0)

#endif // CXLPNM_SIM_LOGGING_HH
