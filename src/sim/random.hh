/**
 * @file
 * Deterministic pseudo-random number generation for synthetic weights and
 * randomized property tests. SplitMix64 is tiny, fast, and reproducible
 * across platforms (unlike std::mt19937 distributions, whose outputs are
 * implementation-defined for floating point).
 */

#ifndef CXLPNM_SIM_RANDOM_HH
#define CXLPNM_SIM_RANDOM_HH

#include <cstdint>

namespace cxlpnm
{

/** SplitMix64 generator (Steele, Lea, Flood 2014 public-domain recipe). */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    /** Raw generator state, for warm-state snapshot/restore. */
    std::uint64_t state() const { return state_; }
    void setState(std::uint64_t s) { state_ = s; }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    nextDouble(double lo, double hi)
    {
        return lo + (hi - lo) * nextDouble();
    }

    /** Uniform integer in [0, bound) via rejection-free scaling. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        // 128-bit multiply-shift keeps the bias below 2^-64.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /**
     * Approximately normal(0, 1) via the sum of 12 uniforms (Irwin-Hall).
     * Plenty for synthetic weight tensors.
     */
    double
    nextGaussian()
    {
        double s = 0.0;
        for (int i = 0; i < 12; ++i)
            s += nextDouble();
        return s - 6.0;
    }

  private:
    std::uint64_t state_;
};

} // namespace cxlpnm

#endif // CXLPNM_SIM_RANDOM_HH
