/**
 * @file
 * A minimal fixed-size worker pool for fanning *independent* simulation
 * points across host threads (the parallel sweep runner).
 *
 * The event-driven simulator itself stays single-threaded: one
 * EventQueue is always driven by exactly one thread. Parallelism lives
 * strictly above it — each submitted task builds its own queue, RNGs,
 * and devices, so results are bit-deterministic regardless of worker
 * count or scheduling (see DESIGN.md §9).
 */

#ifndef CXLPNM_SIM_THREAD_POOL_HH
#define CXLPNM_SIM_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cxlpnm
{

class ThreadPool
{
  public:
    /** @param threads Worker count; 0 means hardware_concurrency. */
    explicit ThreadPool(unsigned threads = 0);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Drains remaining tasks, then joins the workers. */
    ~ThreadPool();

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Enqueue @p fn for execution on some worker. Tasks must be
     * independent: they may not touch shared mutable state without
     * their own synchronisation. Exceptions escaping @p fn terminate
     * (tasks are expected to catch and record their own failures).
     */
    void submit(std::function<void()> fn);

    /** Block until every submitted task has finished. */
    void wait();

    /**
     * Run fn(i) for i in [0, n) on @p threads workers and wait.
     * With threads <= 1 the indices run inline on the caller, in
     * order — the reference execution the parallel path must match.
     */
    static void parallelFor(std::size_t n, unsigned threads,
                            const std::function<void(std::size_t)> &fn);

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable taskReady_;
    std::condition_variable allDone_;
    std::size_t inFlight_ = 0; // queued + executing
    bool stopping_ = false;
};

} // namespace cxlpnm

#endif // CXLPNM_SIM_THREAD_POOL_HH
