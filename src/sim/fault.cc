#include "sim/fault.hh"

#include <sstream>
#include <utility>

#include "sim/logging.hh"

namespace cxlpnm
{
namespace fault
{

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::None: return "none";
      case FaultKind::BitFlip: return "bit_flip";
      case FaultKind::DoubleBitFlip: return "double_bit_flip";
      case FaultKind::LinkCrc: return "link_crc";
      case FaultKind::DeviceHang: return "device_hang";
      case FaultKind::DropCompletion: return "drop_completion";
      case FaultKind::IterationFail: return "iteration_fail";
      case FaultKind::GroupFailStop: return "group_fail_stop";
      case FaultKind::IterationSlow: return "iteration_slow";
    }
    return "<bad>";
}

FaultSpec
FaultSpec::probabilistic(std::string site, FaultKind kind, double p)
{
    FaultSpec s;
    s.site = std::move(site);
    s.kind = kind;
    s.schedule = Schedule::Probabilistic;
    s.probability = p;
    return s;
}

FaultSpec
FaultSpec::scriptedTick(std::string site, FaultKind kind, Tick t)
{
    FaultSpec s;
    s.site = std::move(site);
    s.kind = kind;
    s.schedule = Schedule::AtTick;
    s.atTick = t;
    return s;
}

FaultSpec
FaultSpec::scriptedAccess(std::string site, FaultKind kind,
                          std::uint64_t n)
{
    FaultSpec s;
    s.site = std::move(site);
    s.kind = kind;
    s.schedule = Schedule::AtAccess;
    s.atAccess = n;
    return s;
}

FaultSpec
FaultSpec::burst(std::string site, FaultKind kind, Tick start, Tick end,
                 double p)
{
    FaultSpec s;
    s.site = std::move(site);
    s.kind = kind;
    s.schedule = Schedule::Burst;
    s.burstStart = start;
    s.burstEnd = end;
    s.probability = p;
    return s;
}

namespace
{

/** FNV-1a over the site name: registration-order-independent seeds. */
std::uint64_t
hashName(const std::string &name)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : name) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

FaultSite::FaultSite(FaultInjector &owner, std::string name,
                     std::uint64_t seed)
    : owner_(owner), name_(std::move(name)), rng_(seed)
{}

FaultKind
FaultSite::poll(Tick now)
{
    const std::uint64_t access = accesses_++;
    FaultKind hit = FaultKind::None;
    for (Armed &a : armed_) {
        bool fires = false;
        switch (a.spec.schedule) {
          case Schedule::Probabilistic:
            // Draw unconditionally so the stream stays aligned with the
            // access sequence even after another spec already fired.
            fires = rng_.nextDouble() < a.spec.probability;
            break;
          case Schedule::AtTick:
            fires = !a.fired && now >= a.spec.atTick;
            a.fired |= fires;
            break;
          case Schedule::AtAccess:
            fires = !a.fired && access == a.spec.atAccess;
            a.fired |= fires;
            break;
          case Schedule::Burst:
            if (now >= a.spec.burstStart && now < a.spec.burstEnd)
                fires = rng_.nextDouble() < a.spec.probability;
            break;
        }
        if (fires && hit == FaultKind::None)
            hit = a.spec.kind;
    }
    if (hit != FaultKind::None)
        owner_.record(name_, hit, now, access);
    return hit;
}

FaultInjector::FaultInjector(std::uint64_t seed) : seed_(seed) {}

void
FaultInjector::arm(const FaultSpec &spec)
{
    fatal_if(spec.site.empty(), "fault spec needs a site name");
    fatal_if(spec.kind == FaultKind::None, "cannot arm FaultKind::None");
    fatal_if(spec.probability < 0.0 || spec.probability > 1.0,
             "fault probability ", spec.probability, " out of [0,1]");
    auto it = sites_.find(spec.site);
    if (it != sites_.end()) {
        it->second->armed_.push_back({spec, false});
        return;
    }
    pending_.push_back(spec);
}

FaultSite *
FaultInjector::site(const std::string &name)
{
    auto it = sites_.find(name);
    if (it != sites_.end())
        return it->second.get();

    auto s = std::unique_ptr<FaultSite>(
        new FaultSite(*this, name, seed_ ^ hashName(name)));
    for (const FaultSpec &spec : pending_) {
        if (spec.site == name)
            s->armed_.push_back({spec, false});
    }
    FaultSite *raw = s.get();
    sites_.emplace(name, std::move(s));
    return raw;
}

std::uint64_t
FaultInjector::firedCount(FaultKind k) const
{
    std::uint64_t n = 0;
    for (const Record &r : log_)
        if (r.kind == k)
            ++n;
    return n;
}

FaultInjector::State
FaultInjector::state() const
{
    State s;
    // sites_ is an ordered map, so the state is name-sorted and its
    // serialized form deterministic.
    for (const auto &[name, site] : sites_) {
        SiteState ss;
        ss.name = name;
        ss.rngState = site->rng_.state();
        ss.accesses = site->accesses_;
        ss.fired.reserve(site->armed_.size());
        for (const auto &a : site->armed_)
            ss.fired.push_back(a.fired);
        s.sites.push_back(std::move(ss));
    }
    s.log = log_;
    return s;
}

void
FaultInjector::restore(const State &s)
{
    for (const SiteState &ss : s.sites) {
        auto it = sites_.find(ss.name);
        fatal_if(it == sites_.end(),
                 "fault restore: site '", ss.name,
                 "' does not exist; rebuild the stack with the same "
                 "configuration before restoring");
        FaultSite &site = *it->second;
        fatal_if(ss.fired.size() != site.armed_.size(),
                 "fault restore: site '", ss.name, "' has ",
                 site.armed_.size(), " armed specs, state has ",
                 ss.fired.size());
        site.rng_.setState(ss.rngState);
        site.accesses_ = ss.accesses;
        for (std::size_t i = 0; i < ss.fired.size(); ++i)
            site.armed_[i].fired = ss.fired[i];
    }
    log_ = s.log;
}

void
FaultInjector::record(const std::string &site, FaultKind kind, Tick tick,
                      std::uint64_t access)
{
    Record r;
    r.seq = log_.size();
    r.tick = tick;
    r.site = site;
    r.kind = kind;
    r.access = access;
    log_.push_back(std::move(r));
}

void
FaultInjector::writeLog(std::ostream &os) const
{
    for (const Record &r : log_) {
        os << "seq=" << r.seq << " tick=" << r.tick << " site=" << r.site
           << " kind=" << faultKindName(r.kind) << " access=" << r.access
           << "\n";
    }
}

std::string
FaultInjector::logString() const
{
    std::ostringstream os;
    writeLog(os);
    return os.str();
}

} // namespace fault
} // namespace cxlpnm
