#include "sim/thread_pool.hh"

#include <utility>

namespace cxlpnm
{

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    taskReady_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> fn)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push_back(std::move(fn));
        ++inFlight_;
    }
    taskReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            taskReady_.wait(lock, [this] {
                return stopping_ || !tasks_.empty();
            });
            if (tasks_.empty())
                return; // stopping_ and drained
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(std::size_t n, unsigned threads,
                        const std::function<void(std::size_t)> &fn)
{
    if (threads <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    ThreadPool pool(threads);
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
}

} // namespace cxlpnm
