#include "sim/config.hh"

#include <algorithm>
#include <cstdlib>

#include "sim/logging.hh"

namespace cxlpnm
{

Config
Config::fromArgs(const std::vector<std::string> &tokens)
{
    Config cfg;
    for (const std::string &tok : tokens) {
        auto eq = tok.find('=');
        fatal_if(eq == std::string::npos,
                 "config token '", tok, "' is not key=value");
        std::string key = tok.substr(0, eq);
        fatal_if(key.empty(), "config token '", tok, "' has empty key");
        cfg.set(key, tok.substr(eq + 1));
    }
    return cfg;
}

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::optional<std::string>
Config::raw(const std::string &key) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return std::nullopt;
    return it->second;
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    return raw(key).value_or(def);
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t def) const
{
    auto v = raw(key);
    if (!v)
        return def;
    char *end = nullptr;
    std::int64_t out = std::strtoll(v->c_str(), &end, 0);
    fatal_if(end == v->c_str() || *end != '\0',
             "config key '", key, "': '", *v, "' is not an integer");
    return out;
}

double
Config::getDouble(const std::string &key, double def) const
{
    auto v = raw(key);
    if (!v)
        return def;
    char *end = nullptr;
    double out = std::strtod(v->c_str(), &end);
    fatal_if(end == v->c_str() || *end != '\0',
             "config key '", key, "': '", *v, "' is not a number");
    return out;
}

bool
Config::getBool(const std::string &key, bool def) const
{
    auto v = raw(key);
    if (!v)
        return def;
    std::string s = *v;
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (s == "1" || s == "true" || s == "yes" || s == "on")
        return true;
    if (s == "0" || s == "false" || s == "no" || s == "off")
        return false;
    fatal("config key '", key, "': '", *v, "' is not a boolean");
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &[k, v] : values_)
        out.push_back(k);
    return out;
}

} // namespace cxlpnm
