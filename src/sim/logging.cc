#include "sim/logging.hh"

#include <iostream>

namespace cxlpnm
{

namespace
{
LogLevel g_level = LogLevel::Info;
} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::string full = msgCat("panic: ", msg, " @ ", file, ":", line);
    if (g_level >= LogLevel::Error)
        std::cerr << full << "\n";
    throw PanicError(full);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::string full = msgCat("fatal: ", msg, " @ ", file, ":", line);
    if (g_level >= LogLevel::Error)
        std::cerr << full << "\n";
    throw FatalError(full);
}

void
warnImpl(const std::string &msg)
{
    if (g_level >= LogLevel::Warn)
        std::cerr << "warn: " << msg << "\n";
}

void
informImpl(const std::string &msg)
{
    if (g_level >= LogLevel::Info)
        std::cout << "info: " << msg << "\n";
}

} // namespace cxlpnm
