#include "sim/logging.hh"

#include <atomic>
#include <iostream>

namespace cxlpnm
{

namespace
{
// Atomic so worker threads of the parallel sweep runner can consult the
// level while another thread (e.g. a test fixture) flips it.
std::atomic<LogLevel> g_level{LogLevel::Info};
} // namespace

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::string full = msgCat("panic: ", msg, " @ ", file, ":", line);
    if (logLevel() >= LogLevel::Error)
        std::cerr << full << "\n";
    throw PanicError(full);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::string full = msgCat("fatal: ", msg, " @ ", file, ":", line);
    if (logLevel() >= LogLevel::Error)
        std::cerr << full << "\n";
    throw FatalError(full);
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Warn)
        std::cerr << "warn: " << msg << "\n";
}

void
informImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Info)
        std::cout << "info: " << msg << "\n";
}

} // namespace cxlpnm
