/**
 * @file
 * Fundamental simulation quantities: ticks, cycles, frequencies and
 * byte-size helpers shared by every subsystem.
 *
 * One Tick is one picosecond of simulated time. A picosecond base lets us
 * represent every clock in the platform (1 GHz accelerator, LPDDR5X
 * 8.5 Gb/s pins, PCIe Gen5 32 GT/s) with integral periods and leaves
 * ~106 days of simulated time before a 64-bit tick counter overflows.
 */

#ifndef CXLPNM_SIM_TYPES_HH
#define CXLPNM_SIM_TYPES_HH

#include <compare>
#include <cstdint>

namespace cxlpnm
{

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** The largest representable tick; used as an "never happens" sentinel. */
constexpr Tick MaxTick = UINT64_MAX;

/** Ticks per common time units. */
constexpr Tick tickPerPs = 1;
constexpr Tick tickPerNs = 1000;
constexpr Tick tickPerUs = 1000 * 1000;
constexpr Tick tickPerMs = 1000ull * 1000 * 1000;
constexpr Tick tickPerSec = 1000ull * 1000 * 1000 * 1000;

/** Convert ticks to floating-point seconds (for stats/report output). */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickPerSec);
}

/** Convert floating-point seconds to ticks (rounding down). */
constexpr Tick
secondsToTicks(double s)
{
    return static_cast<Tick>(s * static_cast<double>(tickPerSec));
}

/**
 * A count of clock cycles in some clock domain. Strongly typed so cycle
 * counts are not silently mixed with ticks.
 */
class Cycles
{
  public:
    constexpr Cycles() : count_(0) {}
    constexpr explicit Cycles(std::uint64_t c) : count_(c) {}

    constexpr std::uint64_t value() const { return count_; }

    constexpr Cycles
    operator+(Cycles o) const
    {
        return Cycles(count_ + o.count_);
    }

    constexpr Cycles
    operator-(Cycles o) const
    {
        return Cycles(count_ - o.count_);
    }

    Cycles &
    operator+=(Cycles o)
    {
        count_ += o.count_;
        return *this;
    }

    constexpr bool operator==(const Cycles &) const = default;
    constexpr auto operator<=>(const Cycles &) const = default;

  private:
    std::uint64_t count_;
};

/** Byte-size helpers. Powers of two (binary prefixes). */
constexpr std::uint64_t KiB = 1024ull;
constexpr std::uint64_t MiB = 1024ull * KiB;
constexpr std::uint64_t GiB = 1024ull * MiB;

/** Decimal prefixes, used for bandwidth/capacity marketing units. */
constexpr double KB = 1e3;
constexpr double MB = 1e6;
constexpr double GB = 1e9;
constexpr double TB = 1e12;

/** Physical/device address within a CXL memory module or host space. */
using Addr = std::uint64_t;

} // namespace cxlpnm

#endif // CXLPNM_SIM_TYPES_HH
