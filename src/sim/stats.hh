/**
 * @file
 * A small gem5-flavoured statistics package.
 *
 * Components own Scalar/Average/Histogram members registered with a
 * StatGroup; groups nest, and the root group can dump everything in a
 * stable, diff-friendly text format.
 */

#ifndef CXLPNM_SIM_STATS_HH
#define CXLPNM_SIM_STATS_HH

#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

namespace cxlpnm
{
namespace stats
{

class StatGroup;

/** Base for all statistics: a name, a description, and a dump hook. */
class StatBase
{
  public:
    StatBase(StatGroup *parent, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Write "fullname value # desc" style lines. */
    virtual void dump(std::ostream &os,
                      const std::string &prefix) const = 0;
    /** Forget all samples. */
    virtual void reset() = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** A monotonically adjustable counter / accumulator. */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator++() { value_ += 1.0; return *this; }
    void set(double v) { value_ = v; }
    double value() const { return value_; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** Mean/min/max over explicit samples. */
class Average : public StatBase
{
  public:
    using StatBase::StatBase;

    /** Raw accumulator state, for warm-state snapshot/restore. The
     *  raw min/max keep their sentinel values at count 0 (unlike the
     *  masking getters), so a restored stat dumps byte-identically. */
    struct State
    {
        double sum = 0.0;
        double min = std::numeric_limits<double>::infinity();
        double max = -std::numeric_limits<double>::infinity();
        std::uint64_t count = 0;
    };

    void sample(double v);
    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }

    State state() const { return {sum_, min_, max_, count_}; }
    void
    restore(const State &s)
    {
        sum_ = s.sum;
        min_ = s.min;
        max_ = s.max;
        count_ = s.count;
    }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override;

  private:
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
    std::uint64_t count_ = 0;
};

/**
 * Fixed-width linear histogram with under/overflow buckets.
 *
 * With @p auto_extend the histogram doubles its range instead of
 * counting overflow: bucket pairs merge (halving resolution, keeping
 * the bucket count) until the sample fits. Percentiles then keep
 * resolving real values - at coarser granularity - where the fixed
 * range would silently clamp them at `hi` (long-context TTFT can be
 * orders of magnitude past any range chosen for chat traffic). The
 * flag is opt-in because extension changes the dumped bucket edges,
 * which fixed-range consumers diff byte-for-byte.
 */
class Histogram : public StatBase
{
  public:
    Histogram(StatGroup *parent, std::string name, std::string desc,
              double lo, double hi, std::size_t buckets,
              bool auto_extend = false);

    void sample(double v);
    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    /** Current (possibly extended) upper edge. */
    double hi() const { return hi_; }
    /** Range doublings performed so far (0 without auto-extend). */
    std::uint32_t extensions() const { return extensions_; }

    /**
     * Nearest-rank quantile @p q in [0, 1]. Samples are resolved to
     * their bucket's upper edge; quantiles landing in the underflow
     * bucket report the lower bound, in the overflow bucket the upper
     * bound. 0 samples report 0.
     */
    double percentile(double q) const;

    /** Sample state, for warm-state snapshot/restore; the bucket
     *  vector must match the histogram's configured bucket count. */
    struct State
    {
        double hi = 0.0;
        std::uint32_t extensions = 0;
        std::vector<std::uint64_t> buckets;
        std::uint64_t underflow = 0;
        std::uint64_t overflow = 0;
        std::uint64_t count = 0;
        double sum = 0.0;
    };

    State state() const;
    void restore(const State &s);

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override;

  private:
    /** Double the range once, merging adjacent bucket pairs. */
    void extend();

    double lo_;
    double hi_;
    const double initialHi_;
    const bool autoExtend_;
    std::uint32_t extensions_ = 0;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

/**
 * A named collection of stats and child groups. Components derive from or
 * own a StatGroup; the hierarchy mirrors the component hierarchy.
 */
class StatGroup
{
  public:
    /** @param parent Null for a root group. */
    StatGroup(StatGroup *parent, std::string name);
    virtual ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return name_; }

    /** Dotted path from the root group. */
    std::string fullName() const;

    /** Recursively dump all stats below this group. */
    void dumpStats(std::ostream &os) const;

    /** Recursively reset all stats below this group. */
    void resetStats();

  private:
    friend class StatBase;

    void addStat(StatBase *stat);
    void addChild(StatGroup *child);
    void removeChild(StatGroup *child);

    StatGroup *parent_;
    std::string name_;
    std::vector<StatBase *> stats_;
    std::vector<StatGroup *> children_;
};

} // namespace stats
} // namespace cxlpnm

#endif // CXLPNM_SIM_STATS_HH
