#include "sim/trace.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <ostream>
#include <sstream>

#include "sim/logging.hh"

namespace cxlpnm
{
namespace trace
{

namespace
{

/**
 * Ticks are picoseconds; the trace format wants microseconds. Render
 * "<us>.<6-digit ps remainder>" with integer math only, so the bytes
 * never depend on floating-point formatting.
 */
void
appendMicros(std::string &out, Tick t)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%llu.%06llu",
                  static_cast<unsigned long long>(t / 1000000ull),
                  static_cast<unsigned long long>(t % 1000000ull));
    out += buf;
}

void
appendEscaped(std::string &out, const std::string &s)
{
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

std::string
formatSeconds(Tick t)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%llu.%06llu",
                  static_cast<unsigned long long>(t / tickPerSec),
                  static_cast<unsigned long long>((t % tickPerSec) /
                                                  1000000ull));
    return buf;
}

} // namespace

TrackId
Tracer::track(const std::string &name, const char *category)
{
    auto it = trackByName_.find(name);
    if (it != trackByName_.end())
        return it->second;
    tracks_.push_back(Track{name, category ? category : ""});
    const auto id = static_cast<TrackId>(tracks_.size()); // 1-based
    trackByName_.emplace(name, id);
    return id;
}

void
Tracer::complete(TrackId t, const std::string &name, Tick start, Tick end)
{
    panic_if(t == InvalidTrack || t > tracks_.size(),
             "trace span '", name, "' on unregistered track");
    panic_if(end < start, "trace span '", name, "' ends before it starts");
    records_.push_back(Record{Phase::Complete, t, start, end - start, 0.0,
                              name});
}

void
Tracer::instant(TrackId t, const std::string &name, Tick ts)
{
    panic_if(t == InvalidTrack || t > tracks_.size(),
             "trace instant '", name, "' on unregistered track");
    records_.push_back(Record{Phase::Instant, t, ts, 0, 0.0, name});
}

void
Tracer::counter(TrackId t, Tick ts, double value)
{
    panic_if(t == InvalidTrack || t > tracks_.size(),
             "trace counter on unregistered track");
    records_.push_back(Record{Phase::Counter, t, ts, 0, value,
                              tracks_[t - 1].name});
}

void
Tracer::write(std::ostream &os) const
{
    // Stable order: (ts, track, emission sequence). The emission
    // sequence is the buffer index, so the sort is a total order and
    // per-track timestamps come out monotonically non-decreasing.
    std::vector<std::size_t> order(records_.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [this](std::size_t a, std::size_t b) {
                  const Record &ra = records_[a];
                  const Record &rb = records_[b];
                  if (ra.ts != rb.ts)
                      return ra.ts < rb.ts;
                  if (ra.track != rb.track)
                      return ra.track < rb.track;
                  return a < b;
              });

    std::string out;
    out.reserve(96 * (records_.size() + tracks_.size()) + 256);
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
           "\"args\":{\"name\":\"cxlpnm\"}}";
    for (std::size_t i = 0; i < tracks_.size(); ++i) {
        out += ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":";
        out += std::to_string(i + 1);
        out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
        appendEscaped(out, tracks_[i].name);
        out += "\"}}";
    }
    for (std::size_t i : order) {
        const Record &r = records_[i];
        const Track &tk = tracks_[r.track - 1];
        out += ",\n{\"ph\":\"";
        switch (r.ph) {
          case Phase::Complete: out += 'X'; break;
          case Phase::Instant: out += 'i'; break;
          case Phase::Counter: out += 'C'; break;
        }
        out += "\",\"pid\":1,\"tid\":";
        out += std::to_string(r.track);
        out += ",\"ts\":";
        appendMicros(out, r.ts);
        if (r.ph == Phase::Complete) {
            out += ",\"dur\":";
            appendMicros(out, r.dur);
        }
        if (r.ph == Phase::Instant)
            out += ",\"s\":\"t\"";
        out += ",\"name\":\"";
        appendEscaped(out, r.name);
        out += "\"";
        if (r.ph == Phase::Counter) {
            char buf[40];
            std::snprintf(buf, sizeof(buf), "%.9g", r.value);
            out += ",\"args\":{\"value\":";
            out += buf;
            out += "}";
        } else if (!tk.category.empty()) {
            out += ",\"cat\":\"";
            appendEscaped(out, tk.category);
            out += "\"";
        }
        out += "}";
    }
    out += "\n]}\n";
    os << out;
}

std::string
Tracer::json() const
{
    std::ostringstream ss;
    write(ss);
    return ss.str();
}

bool
Tracer::writeFile(const std::string &path) const
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        return false;
    write(f);
    return static_cast<bool>(f);
}

void
Tracer::summary(std::ostream &os, std::size_t top_k) const
{
    struct Busy
    {
        Tick busy = 0;
        std::uint64_t spans = 0;
    };
    std::vector<Busy> busy(tracks_.size());
    Tick t0 = MaxTick, t1 = 0;
    for (const Record &r : records_) {
        t0 = std::min(t0, r.ts);
        t1 = std::max(t1, r.ts + r.dur);
        if (r.ph == Phase::Complete) {
            busy[r.track - 1].busy += r.dur;
            ++busy[r.track - 1].spans;
        }
    }
    if (records_.empty())
        t0 = t1 = 0;
    const Tick window = t1 > t0 ? t1 - t0 : 1;

    os << "--- trace summary: " << records_.size() << " events on "
       << tracks_.size() << " tracks over " << formatSeconds(t1 - t0)
       << " s (simulated) ---\n";

    // Busy % per track, highest first; ties broken by track id so the
    // report is deterministic. Overlapping spans sum, so pipelined
    // tracks can exceed 100%.
    std::vector<std::size_t> by_busy;
    for (std::size_t i = 0; i < tracks_.size(); ++i)
        if (busy[i].spans > 0)
            by_busy.push_back(i);
    std::sort(by_busy.begin(), by_busy.end(),
              [&busy](std::size_t a, std::size_t b) {
                  if (busy[a].busy != busy[b].busy)
                      return busy[a].busy > busy[b].busy;
                  return a < b;
              });
    os << "busy fraction by track (duration spans only):\n";
    for (std::size_t i : by_busy) {
        char line[160];
        std::snprintf(line, sizeof(line),
                      "  %6.1f%%  %-40s %8llu spans, %s s busy\n",
                      100.0 * static_cast<double>(busy[i].busy) /
                          static_cast<double>(window),
                      tracks_[i].name.c_str(),
                      static_cast<unsigned long long>(busy[i].spans),
                      formatSeconds(busy[i].busy).c_str());
        os << line;
    }

    // Top-k longest spans (duration, then earliest, then track).
    std::vector<std::size_t> spans;
    for (std::size_t i = 0; i < records_.size(); ++i)
        if (records_[i].ph == Phase::Complete)
            spans.push_back(i);
    const std::size_t k = std::min(top_k, spans.size());
    std::partial_sort(spans.begin(), spans.begin() + k, spans.end(),
                      [this](std::size_t a, std::size_t b) {
                          const Record &ra = records_[a];
                          const Record &rb = records_[b];
                          if (ra.dur != rb.dur)
                              return ra.dur > rb.dur;
                          if (ra.ts != rb.ts)
                              return ra.ts < rb.ts;
                          return a < b;
                      });
    os << "top " << k << " longest spans:\n";
    for (std::size_t i = 0; i < k; ++i) {
        const Record &r = records_[spans[i]];
        char line[200];
        std::snprintf(line, sizeof(line),
                      "  %s s  %-24s @ %s [t=%s s]\n",
                      formatSeconds(r.dur).c_str(), r.name.c_str(),
                      tracks_[r.track - 1].name.c_str(),
                      formatSeconds(r.ts).c_str());
        os << line;
    }
}

} // namespace trace
} // namespace cxlpnm
