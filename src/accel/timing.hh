/**
 * @file
 * Per-instruction timing model of the accelerator.
 *
 * Cycle counts are structural: tiles mapped onto the PE array / adder
 * tree lanes / VPU lanes, plus a pipeline fill. Memory-boundness is NOT
 * decided here - the Accelerator overlaps these compute cycles with the
 * DMA engine's streaming, and whichever is longer dominates.
 */

#ifndef CXLPNM_ACCEL_TIMING_HH
#define CXLPNM_ACCEL_TIMING_HH

#include <cstdint>

#include "accel/config.hh"
#include "isa/isa.hh"

namespace cxlpnm
{
namespace accel
{
namespace timing
{

/** Compute cycles the instruction occupies its functional unit. */
Cycles computeCycles(const isa::Instruction &inst,
                     const AccelConfig &cfg);

/** Bytes the DMA engine streams from/to device memory for this inst. */
std::uint64_t dmaBytes(const isa::Instruction &inst);

/** Whether the DMA traffic is a read from device memory. */
bool dmaIsRead(const isa::Instruction &inst);

/** MAC operations performed (for energy accounting). */
std::uint64_t macOps(const isa::Instruction &inst);

/** Non-MAC vector element operations (for energy accounting). */
std::uint64_t vectorOps(const isa::Instruction &inst);

} // namespace timing
} // namespace accel
} // namespace cxlpnm

#endif // CXLPNM_ACCEL_TIMING_HH
