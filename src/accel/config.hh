/**
 * @file
 * Architectural parameters of the LLM inference accelerator (Table II),
 * DFX-derived with the paper's enhancements: a 64x32 FP16 PE array for
 * GEMM, adder-tree lanes widened to tile dimension l=128, and no router
 * (device-to-device communication is host-orchestrated over CXL).
 */

#ifndef CXLPNM_ACCEL_CONFIG_HH
#define CXLPNM_ACCEL_CONFIG_HH

#include <cstdint>

#include "sim/types.hh"

namespace cxlpnm
{
namespace accel
{

/** Table II configuration. */
struct AccelConfig
{
    /** Core clock, Hz (7 nm @ 1.0 GHz, 1.0 V). */
    double freqHz = 1.0e9;

    /** PE array geometry: 64 x 32 = 2,048 FP16 MACs (peak 4.09 TFLOPS). */
    int peRows = 64;
    int peCols = 32;

    /**
     * Adder-tree path: 16 lanes x 128 MACs = 2,048 multipliers and
     * 16 x 127 = 2,032 adders (Table II). Tile dimension l = 128 (§V-C
     * doubles DFX's 64 to exploit the 1.1 TB/s module).
     */
    int adderTreeLanes = 16;
    int tileDim = 128;

    /** VPU lanes (elementwise FP16 ops per cycle). */
    int vpuLanes = 128;

    /** Matrix/vector/scalar register file capacity (Table II: 63 MB). */
    std::uint64_t registerFileBytes = 63ull * MiB;
    /** DMA staging buffers (Table II: 1 MB). */
    std::uint64_t dmaBufferBytes = 1ull * MiB;

    /** Compute pipeline fill/drain per instruction, cycles. */
    int pipelineFillCycles = 16;

    /**
     * Control-unit dispatch overhead per instruction (descriptor decode,
     * RF bank arbitration, DMA programming). Calibration anchor: with
     * ~15 instructions per decoder layer this yields the ~30 us/layer
     * control overhead that reproduces the Fig. 10 OPT-13B latency gap.
     */
    int dispatchOverheadCycles = 2000;

    /**
     * Max instructions whose DMA may run ahead of execution. The DMA
     * engine's descriptor queue covers the 1 MB staging buffers twice
     * over; 4 keeps the module streaming across layer boundaries.
     */
    int prefetchDepth = 4;

    /** Peak MAC throughput of the PE array, FLOP/s (MAC = 2 FLOP). */
    double
    peArrayPeakFlops() const
    {
        return 2.0 * peRows * peCols * freqHz;
    }

    /** Peak MAC throughput of the adder trees, FLOP/s. */
    double
    adderTreePeakFlops() const
    {
        return 2.0 * adderTreeLanes * tileDim * freqHz;
    }

    int adderTreeMultipliers() const { return adderTreeLanes * tileDim; }
    int adderTreeAdders() const
    {
        return adderTreeLanes * (tileDim - 1);
    }
    int peCount() const { return peRows * peCols; }
};

} // namespace accel
} // namespace cxlpnm

#endif // CXLPNM_ACCEL_CONFIG_HH
