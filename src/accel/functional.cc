#include "accel/functional.hh"

#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "numeric/fp16.hh"
#include "numeric/linalg.hh"
#include "sim/logging.hh"

namespace cxlpnm
{
namespace accel
{
namespace functional
{

namespace
{

using isa::Flag;
using isa::Instruction;
using isa::Opcode;

/** Fetch the streaming matrix operand: register or device memory. */
HalfTensor
matrixOperand(const Instruction &inst, RegisterFileManager &rf,
              FunctionalMemory *mem, std::uint32_t rows,
              std::uint32_t cols)
{
    if (inst.has(isa::FlagMemOperand)) {
        panic_if(mem == nullptr,
                 "memory operand without functional memory: ",
                 inst.toString());
        return mem->readTensor(inst.memAddr, rows, cols);
    }
    HalfTensor &t = rf.tensor(inst.src1);
    panic_if(t.rows() != rows || t.cols() != cols,
             "operand shape (", t.rows(), "x", t.cols(),
             ") != expected (", rows, "x", cols, ") in ",
             inst.toString());
    return t;
}

void
addBiasRow(HalfTensor &out, const HalfTensor &bias)
{
    panic_if(bias.rows() != 1 || bias.cols() != out.cols(),
             "bias must be 1 x n");
    for (std::size_t i = 0; i < out.rows(); ++i)
        for (std::size_t j = 0; j < out.cols(); ++j)
            out.at(i, j) = out.at(i, j) + bias.at(0, j);
}

/**
 * In-place adder tree over widened (exact binary16-valued) floats:
 * each level forms Half(buf[2i] + buf[2i+1]) — an odd element carries
 * to the back of the next level — until one value remains. Identical
 * node-by-node to the original Half-typed reduction; the floats only
 * hold the exact widened value of each Half node.
 */
float
treeReduceRounded(float *buf, float *tmp, std::size_t n)
{
    while (n > 1) {
        const std::size_t pairs = n / 2;
        fp16::addPairsRoundedSpan(buf, tmp, pairs);
        if (n % 2)
            tmp[pairs] = buf[n - 1];
        n = (n + 1) / 2;
        std::swap(buf, tmp);
    }
    return buf[0];
}

/** Adder-tree GEMV: y(1 x m) = M(m x n) . x(n). */
void
execMv(const Instruction &inst, RegisterFileManager &rf,
       FunctionalMemory *mem)
{
    const auto m = inst.m, n = inst.n;
    HalfTensor mat = matrixOperand(inst, rf, mem, m, n);
    HalfTensor &x = rf.tensor(inst.src0);
    panic_if(x.rows() != 1 || x.cols() != n, "MV vector must be 1 x n");
    HalfTensor &y = rf.tensor(inst.dst);
    panic_if(y.rows() != 1 || y.cols() != m, "MV output must be 1 x m");

    // Widen the vector once and each matrix row once; the multiplier
    // array rounds every product to binary16 (mulRoundedSpan), and the
    // adder tree reduces in the exact original node order.
    std::vector<float> &xf = rf.scratchF(0, n);
    std::vector<float> &rowf = rf.scratchF(1, n);
    std::vector<float> &prods = rf.scratchF(2, n);
    std::vector<float> &tmp = rf.scratchF(3, (n + 1) / 2);
    fp16::toFloatSpan(x.data(), xf.data(), n);
    for (std::uint32_t i = 0; i < m; ++i) {
        fp16::toFloatSpan(mat.data() + static_cast<std::size_t>(i) * n,
                          rowf.data(), n);
        fp16::mulRoundedSpan(rowf.data(), xf.data(), prods.data(), n);
        y.at(0, i) = n == 0
            ? Half()
            : Half(treeReduceRounded(prods.data(), tmp.data(), n));
    }
    if (inst.has(isa::FlagBias))
        addBiasRow(y, rf.tensor(inst.aux));
}

/**
 * Multi-head batched PEA op against the KV cache (gen stage).
 * TransB (scores): out[h, j] = scale * sum_p A[0, h*k+p] * B[j, h*k+p]
 * with B = K cache (n x m*k). Without TransB (context):
 * out[h, j] = sum_p A[h, p] * B[p, h*n+j] with B = V cache (k x m*n).
 */
void
execPeaMultiHead(const Instruction &inst, RegisterFileManager &rf,
                 FunctionalMemory *mem)
{
    const auto heads = inst.m, n = inst.n, k = inst.k;
    const bool score = inst.has(isa::FlagTransB);
    const bool redumax = inst.op == Opcode::MpuMmRedumaxPea ||
        inst.op == Opcode::MpuMaskedMmRedumaxPea;
    const bool masked = inst.op == Opcode::MpuMaskedMmPea ||
        inst.op == Opcode::MpuMaskedMmRedumaxPea;

    HalfTensor &a = rf.tensor(inst.src0);
    HalfTensor b = score
        ? matrixOperand(inst, rf, mem, n, heads * k)
        : matrixOperand(inst, rf, mem, k, heads * n);

    // The output may be shaped (heads x n) or flat (1 x heads*n): the
    // concatenated per-head context vector is consumed as 1 x dModel.
    HalfTensor &out = rf.tensor(inst.dst);
    panic_if(out.rows() * out.cols() !=
                 static_cast<std::size_t>(heads) * n,
             "multi-head output must hold heads*n elements");

    HalfTensor *rowmax = nullptr;
    if (redumax) {
        rowmax = &rf.tensor(inst.aux);
        panic_if(rowmax->rows() != 1 || rowmax->cols() != heads,
                 "multi-head REDUMAX output must be 1 x heads");
    }

    if (score)
        panic_if(a.rows() != 1 || a.cols() != heads * k,
                 "multi-head score A must be 1 x heads*k");
    else
        panic_if(a.rows() != heads || a.cols() != k,
                 "multi-head context A must be heads x k");

    // Widen A (heads*k elements either way) and the whole KV operand
    // once. The per-element accumulation below visits exactly the same
    // float values in exactly the same p order as the original strided
    // at() loops — only the conversions and bounds checks are hoisted.
    const std::size_t an = static_cast<std::size_t>(heads) * k;
    const std::size_t bn = b.size();
    std::vector<float> &af = rf.scratchF(0, an);
    std::vector<float> &bf = rf.scratchF(1, bn);
    fp16::toFloatSpan(a.data(), af.data(), an);
    fp16::toFloatSpan(b.data(), bf.data(), bn);
    const std::size_t bstride = b.cols();

    for (std::uint32_t h = 0; h < heads; ++h) {
        float mx = -std::numeric_limits<float>::infinity();
        for (std::uint32_t j = 0; j < n; ++j) {
            Half r;
            if (masked && j > inst.imm) {
                r = -Half::infinity();
            } else {
                float acc = 0.0f;
                if (score) {
                    const float *ap = af.data() + h * k;
                    const float *bp =
                        bf.data() + j * bstride + h * k;
                    for (std::uint32_t p = 0; p < k; ++p)
                        acc += ap[p] * bp[p];
                } else {
                    const float *ap =
                        af.data() + static_cast<std::size_t>(h) * k;
                    const float *bp =
                        bf.data() + static_cast<std::size_t>(h) * n + j;
                    for (std::uint32_t p = 0; p < k; ++p)
                        acc += ap[p] * bp[p * bstride];
                }
                r = Half(acc * inst.scale);
            }
            out.data()[static_cast<std::size_t>(h) * n + j] = r;
            if (redumax && !r.isNan())
                mx = std::max(mx, r.toFloat());
        }
        if (redumax)
            rowmax->at(0, h) = Half(mx);
    }
}

/** PE-array GEMM family (plain/masked/redumax/conv/gelu variants). */
void
execPea(const Instruction &inst, RegisterFileManager &rf,
        FunctionalMemory *mem)
{
    if (inst.has(isa::FlagMultiHead)) {
        execPeaMultiHead(inst, rf, mem);
        return;
    }
    const auto m = inst.m, n = inst.n;
    std::uint32_t k = inst.k;

    HalfTensor &a0 = rf.tensor(inst.src0);
    HalfTensor a = a0; // value copy: im2col may widen it

    const bool conv = inst.op == Opcode::MpuConv2dPea ||
        inst.op == Opcode::MpuConv2dGeluPea;
    if (conv) {
        const std::uint32_t kernel = inst.imm ? inst.imm : 1;
        if (kernel > 1) {
            // 1-D same-padded im2col over the sequence (rows).
            HalfTensor widened(a.rows(), a.cols() * kernel);
            const int half_k = static_cast<int>(kernel) / 2;
            for (std::size_t r = 0; r < a.rows(); ++r) {
                for (std::uint32_t t = 0; t < kernel; ++t) {
                    const int src_r = static_cast<int>(r) +
                        static_cast<int>(t) - half_k;
                    for (std::size_t c = 0; c < a.cols(); ++c) {
                        Half v = (src_r < 0 ||
                                  src_r >= static_cast<int>(a.rows()))
                            ? Half()
                            : a.at(src_r, c);
                        widened.at(r, t * a.cols() + c) = v;
                    }
                }
            }
            a = std::move(widened);
            k = k * kernel;
        }
    }

    panic_if(a.rows() != m || a.cols() != k,
             "PEA A operand is ", a.rows(), "x", a.cols(),
             ", expected ", m, "x", k, ": ", inst.toString());

    const bool trans_b = inst.has(isa::FlagTransB);
    HalfTensor b = trans_b ? matrixOperand(inst, rf, mem, n, k)
                           : matrixOperand(inst, rf, mem, k, n);

    HalfTensor &out = rf.tensor(inst.dst);
    panic_if(out.rows() != m || out.cols() != n,
             "PEA output must be m x n");

    const bool masked = inst.op == Opcode::MpuMaskedMmPea ||
        inst.op == Opcode::MpuMaskedMmRedumaxPea;
    const bool redumax = inst.op == Opcode::MpuMmRedumaxPea ||
        inst.op == Opcode::MpuMaskedMmRedumaxPea;
    const bool fuse_gelu = inst.op == Opcode::MpuConv2dGeluPea;

    panic_if(redumax && inst.has(isa::FlagBias),
             "REDUMAX and BIAS both use the aux register: ",
             inst.toString());

    HalfTensor *rowmax = nullptr;
    if (redumax) {
        rowmax = &rf.tensor(inst.aux);
        panic_if(rowmax->rows() != 1 || rowmax->cols() != m,
                 "REDUMAX output must be 1 x m");
    }

    const HalfTensor *bias = nullptr;
    if (inst.has(isa::FlagBias)) {
        bias = &rf.tensor(inst.aux);
        panic_if(bias->rows() != 1 || bias->cols() != n,
                 "PEA bias must be 1 x n");
    }

    // Widen both operands once, and pack the strided (k x n) B into a
    // j-major layout so every dot product streams two contiguous rows.
    // The accumulation still runs p = 0..k-1 per element with a single
    // float accumulator — same values, same order, same bits as the
    // original at()-based loop.
    const std::size_t ak = static_cast<std::size_t>(m) * k;
    const std::size_t bk = static_cast<std::size_t>(n) * k;
    std::vector<float> &af = rf.scratchF(0, ak);
    std::vector<float> &btf = rf.scratchF(1, bk);
    fp16::toFloatSpan(a.data(), af.data(), ak);
    if (trans_b) {
        fp16::toFloatSpan(b.data(), btf.data(), bk); // already n x k
    } else {
        std::vector<float> &bf = rf.scratchF(2, bk);
        fp16::toFloatSpan(b.data(), bf.data(), bk);
        for (std::uint32_t p = 0; p < k; ++p)
            for (std::uint32_t j = 0; j < n; ++j)
                btf[static_cast<std::size_t>(j) * k + p] =
                    bf[static_cast<std::size_t>(p) * n + j];
    }
    std::vector<float> &biasf = rf.scratchF(3, bias ? n : 0);
    if (bias)
        fp16::toFloatSpan(bias->data(), biasf.data(), n);

    for (std::uint32_t i = 0; i < m; ++i) {
        float mx = -std::numeric_limits<float>::infinity();
        const float *ap = af.data() + static_cast<std::size_t>(i) * k;
        for (std::uint32_t j = 0; j < n; ++j) {
            Half r;
            if (masked && j > i + inst.imm) {
                r = -Half::infinity();
            } else {
                // FP16 multipliers, FP32 accumulator, one rounding.
                float acc = 0.0f;
                const float *bp =
                    btf.data() + static_cast<std::size_t>(j) * k;
                for (std::uint32_t p = 0; p < k; ++p)
                    acc += ap[p] * bp[p];
                if (bias) // bias precedes the fused activation
                    acc += biasf[j];
                r = Half(acc * inst.scale);
                if (fuse_gelu) {
                    r = Half(static_cast<float>(linalg::gelu(
                        static_cast<double>(r.toFloat()))));
                }
            }
            out.at(i, j) = r;
            if (redumax && !r.isNan())
                mx = std::max(mx, r.toFloat());
        }
        if (redumax)
            rowmax->at(0, i) = Half(mx);
    }
}

/** VPU row/elementwise operations. */
void
execVpu(const Instruction &inst, RegisterFileManager &rf)
{
    HalfTensor &in = rf.tensor(inst.src0);
    HalfTensor &out = rf.tensor(inst.dst);

    switch (inst.op) {
      case Opcode::VpuLayerNorm: {
          panic_if(out.rows() != in.rows() || out.cols() != in.cols(),
                   "layernorm shape mismatch");
          HalfTensor &gamma = rf.tensor(inst.src1);
          HalfTensor &beta = rf.tensor(inst.aux);
          const double eps = static_cast<double>(inst.scale);
          const double n = static_cast<double>(in.cols());
          for (std::size_t i = 0; i < in.rows(); ++i) {
              double mean = 0.0;
              for (std::size_t j = 0; j < in.cols(); ++j)
                  mean += static_cast<double>(in.at(i, j));
              mean /= n;
              double var = 0.0;
              for (std::size_t j = 0; j < in.cols(); ++j) {
                  const double d =
                      static_cast<double>(in.at(i, j)) - mean;
                  var += d * d;
              }
              var /= n;
              const double inv = 1.0 / std::sqrt(var + eps);
              for (std::size_t j = 0; j < in.cols(); ++j) {
                  const double v =
                      (static_cast<double>(in.at(i, j)) - mean) * inv *
                          static_cast<double>(gamma.at(0, j)) +
                      static_cast<double>(beta.at(0, j));
                  out.at(i, j) = Half(v);
              }
          }
          break;
      }
      case Opcode::VpuSoftmax: {
          panic_if(out.rows() != in.rows() || out.cols() != in.cols(),
                   "softmax shape mismatch");
          const double scale = static_cast<double>(inst.scale);
          for (std::size_t i = 0; i < in.rows(); ++i) {
              double mx = -std::numeric_limits<double>::infinity();
              for (std::size_t j = 0; j < in.cols(); ++j)
                  mx = std::max(
                      mx, static_cast<double>(in.at(i, j)) * scale);
              double sum = 0.0;
              std::vector<double> e(in.cols());
              for (std::size_t j = 0; j < in.cols(); ++j) {
                  const double v =
                      static_cast<double>(in.at(i, j)) * scale;
                  e[j] = std::isinf(v) && v < 0 ? 0.0 : std::exp(v - mx);
                  sum += e[j];
              }
              for (std::size_t j = 0; j < in.cols(); ++j)
                  out.at(i, j) = Half(e[j] / sum);
          }
          break;
      }
      case Opcode::VpuGelu:
        panic_if(out.rows() != in.rows() || out.cols() != in.cols(),
                 "gelu shape mismatch");
        for (std::size_t i = 0; i < in.rows(); ++i)
            for (std::size_t j = 0; j < in.cols(); ++j)
                out.at(i, j) = Half(linalg::gelu(
                    static_cast<double>(in.at(i, j))));
        break;
      case Opcode::VpuAdd:
      case Opcode::VpuMul: {
          HalfTensor &rhs = rf.tensor(inst.src1);
          const bool broadcast = rhs.rows() == 1 && in.rows() > 1;
          panic_if(!broadcast && (rhs.rows() != in.rows() ||
                                  rhs.cols() != in.cols()),
                   "vpu binary op shape mismatch");
          panic_if(rhs.cols() != in.cols(),
                   "vpu binary op column mismatch");
          for (std::size_t i = 0; i < in.rows(); ++i) {
              const std::size_t ri = broadcast ? 0 : i;
              for (std::size_t j = 0; j < in.cols(); ++j) {
                  out.at(i, j) = inst.op == Opcode::VpuAdd
                      ? in.at(i, j) + rhs.at(ri, j)
                      : in.at(i, j) * rhs.at(ri, j);
              }
          }
          break;
      }
      case Opcode::VpuReduMax: {
          panic_if(out.rows() != 1 || out.cols() != in.rows(),
                   "redumax output must be 1 x rows");
          for (std::size_t i = 0; i < in.rows(); ++i) {
              float mx = -std::numeric_limits<float>::infinity();
              for (std::size_t j = 0; j < in.cols(); ++j)
                  mx = std::max(mx, in.at(i, j).toFloat());
              out.at(0, i) = Half(mx);
          }
          break;
      }
      default:
        panic("not a VPU op: ", inst.toString());
    }
}

} // namespace

Half
addTreeReduce(const Half *values, std::size_t n)
{
    if (n == 0)
        return Half();
    // thread_local ping-pong scratch: no allocation in steady state,
    // and safe under the parallel sweep runner (one pair per thread).
    static thread_local std::vector<float> buf, tmp;
    if (buf.size() < n)
        buf.resize(n);
    if (tmp.size() < (n + 1) / 2)
        tmp.resize((n + 1) / 2);
    fp16::toFloatSpan(values, buf.data(), n);
    return Half(treeReduceRounded(buf.data(), tmp.data(), n));
}

void
execute(const isa::Instruction &inst, RegisterFileManager &rf,
        FunctionalMemory *mem)
{
    switch (inst.op) {
      case Opcode::Halt:
      case Opcode::Sync:
        break;
      case Opcode::DmaLoad: {
          panic_if(mem == nullptr, "DMA_LOAD without functional memory");
          HalfTensor &dst = rf.tensor(inst.dst);
          panic_if(dst.rows() != inst.m || dst.cols() != inst.n,
                   "DMA_LOAD register shape mismatch");
          dst = mem->readTensor(inst.memAddr, inst.m, inst.n);
          break;
      }
      case Opcode::DmaStore:
        panic_if(mem == nullptr, "DMA_STORE without functional memory");
        mem->writeTensor(inst.memAddr, rf.tensor(inst.src0));
        break;
      case Opcode::MpuMv:
        execMv(inst, rf, mem);
        break;
      case Opcode::MpuTranspose: {
          HalfTensor &in = rf.tensor(inst.src0);
          HalfTensor &out = rf.tensor(inst.dst);
          panic_if(out.rows() != in.cols() || out.cols() != in.rows(),
                   "transpose shape mismatch");
          for (std::size_t i = 0; i < in.rows(); ++i)
              for (std::size_t j = 0; j < in.cols(); ++j)
                  out.at(j, i) = in.at(i, j);
          break;
      }
      case Opcode::MpuIm2col:
        panic("MPU_IM2COL is only generated fused into CONV2D ops");
        break;
      case Opcode::MpuSlice: {
          // Column offsets in imm (hi16 source, lo16 dest); source row
          // offset in k (unused as a reduction dim here).
          const std::uint32_t src_off = inst.imm >> 16;
          const std::uint32_t dst_off = inst.imm & 0xffff;
          const std::uint32_t src_row = inst.k;
          HalfTensor &in = rf.tensor(inst.src0);
          HalfTensor &out = rf.tensor(inst.dst);
          panic_if(in.rows() < src_row + inst.m || out.rows() < inst.m,
                   "slice row overflow");
          panic_if(src_off + inst.n > in.cols(),
                   "slice source column overflow");
          panic_if(dst_off + inst.n > out.cols(),
                   "slice destination column overflow");
          for (std::uint32_t r = 0; r < inst.m; ++r)
              for (std::uint32_t c = 0; c < inst.n; ++c)
                  out.at(r, dst_off + c) = in.at(src_row + r,
                                                 src_off + c);
          break;
      }
      case Opcode::MpuMmPea:
      case Opcode::MpuMmRedumaxPea:
      case Opcode::MpuMaskedMmPea:
      case Opcode::MpuMaskedMmRedumaxPea:
      case Opcode::MpuConv2dPea:
      case Opcode::MpuConv2dGeluPea:
        execPea(inst, rf, mem);
        break;
      default:
        execVpu(inst, rf);
        break;
    }
}

} // namespace functional
} // namespace accel
} // namespace cxlpnm
