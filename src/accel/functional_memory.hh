/**
 * @file
 * Functional backing store for device memory.
 *
 * Performance simulation of a 512 GB module never touches data, but
 * functional verification (tiny models, driver tests) needs real bytes.
 * FunctionalMemory is a flat image covering the low @p bytes of the
 * device address space; accesses beyond it are a user error.
 */

#ifndef CXLPNM_ACCEL_FUNCTIONAL_MEMORY_HH
#define CXLPNM_ACCEL_FUNCTIONAL_MEMORY_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "numeric/tensor.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace cxlpnm
{
namespace accel
{

/** Byte-addressable functional image of (a prefix of) device memory. */
class FunctionalMemory
{
  public:
    explicit FunctionalMemory(std::uint64_t bytes)
        : data_(bytes, 0)
    {}

    std::uint64_t size() const { return data_.size(); }

    void
    write(Addr addr, const void *src, std::uint64_t bytes)
    {
        check(addr, bytes);
        std::memcpy(data_.data() + addr, src, bytes);
    }

    void
    read(Addr addr, void *dst, std::uint64_t bytes) const
    {
        check(addr, bytes);
        std::memcpy(dst, data_.data() + addr, bytes);
    }

    /** Store a Half tensor row-major at @p addr. */
    void
    writeTensor(Addr addr, const HalfTensor &t)
    {
        check(addr, t.bytes());
        for (std::size_t i = 0; i < t.size(); ++i) {
            const std::uint16_t b = t.data()[i].bits();
            std::memcpy(data_.data() + addr + 2 * i, &b, 2);
        }
    }

    /** Load a rows x cols Half tensor from @p addr. */
    HalfTensor
    readTensor(Addr addr, std::uint32_t rows, std::uint32_t cols) const
    {
        HalfTensor t(rows, cols);
        check(addr, t.bytes());
        for (std::size_t i = 0; i < t.size(); ++i) {
            std::uint16_t b;
            std::memcpy(&b, data_.data() + addr + 2 * i, 2);
            t.data()[i] = Half::fromBits(b);
        }
        return t;
    }

  private:
    void
    check(Addr addr, std::uint64_t bytes) const
    {
        fatal_if(addr + bytes > data_.size(),
                 "functional access [", addr, ", ", addr + bytes,
                 ") beyond functional image of ", data_.size(), " bytes");
    }

    std::vector<std::uint8_t> data_;
};

} // namespace accel
} // namespace cxlpnm

#endif // CXLPNM_ACCEL_FUNCTIONAL_MEMORY_HH
