/**
 * @file
 * Functional (bit-level FP16) semantics of the accelerator ISA.
 *
 * Numeric fidelity mirrors the hardware datapaths:
 *  - Adder-tree GEMV: FP16 multipliers feeding a pairwise FP16 adder
 *    tree (tree-order reduction, not sequential).
 *  - PE array GEMM: FP16 multiply with a wide (FP32) accumulator,
 *    rounded to FP16 once at writeback.
 *  - VPU: special-function units evaluate in high precision and round
 *    the result to FP16.
 */

#ifndef CXLPNM_ACCEL_FUNCTIONAL_HH
#define CXLPNM_ACCEL_FUNCTIONAL_HH

#include "accel/functional_memory.hh"
#include "accel/register_file.hh"
#include "isa/isa.hh"

namespace cxlpnm
{
namespace accel
{
namespace functional
{

/**
 * Execute one instruction against the register files and (optionally)
 * the functional memory image.
 *
 * @param inst Instruction to execute.
 * @param rf   Register storage.
 * @param mem  Functional device memory; may be null only if the
 *             instruction touches no memory operand.
 */
void execute(const isa::Instruction &inst, RegisterFileManager &rf,
             FunctionalMemory *mem);

/**
 * Pairwise FP16 tree reduction of @p n products - the adder-tree
 * datapath. Exposed for unit tests of the numeric behaviour.
 */
Half addTreeReduce(const Half *values, std::size_t n);

} // namespace functional
} // namespace accel
} // namespace cxlpnm

#endif // CXLPNM_ACCEL_FUNCTIONAL_HH
