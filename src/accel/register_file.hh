/**
 * @file
 * The register file manager (§V-C component 2): allocates named 2-D
 * registers out of the accelerator's 63 MB of on-chip SRAM and, in
 * functional mode, owns their FP16 contents.
 */

#ifndef CXLPNM_ACCEL_REGISTER_FILE_HH
#define CXLPNM_ACCEL_REGISTER_FILE_HH

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/isa.hh"
#include "numeric/tensor.hh"

namespace cxlpnm
{
namespace accel
{

/** Shape of an allocated register. */
struct RegShape
{
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;

    std::uint64_t
    bytes() const
    {
        return 2ull * rows * cols; // FP16
    }
};

/** Allocator + functional storage for the matrix/vector/scalar RFs. */
class RegisterFileManager
{
  public:
    explicit RegisterFileManager(std::uint64_t capacity_bytes)
        : capacity_(capacity_bytes)
    {}

    /**
     * Allocate a rows x cols FP16 register. Fatal when the request would
     * exceed on-chip capacity (codegen must tile instead).
     */
    isa::RegId alloc(std::uint32_t rows, std::uint32_t cols,
                     const std::string &debug_name = "");

    /** Release a register. */
    void free(isa::RegId id);

    /** Release every register (between inference requests). */
    void reset();

    bool valid(isa::RegId id) const { return regs_.count(id) != 0; }
    RegShape shape(isa::RegId id) const;

    /** Functional contents; created zero-filled on first touch. */
    HalfTensor &tensor(isa::RegId id);

    std::uint64_t usedBytes() const { return used_; }
    std::uint64_t capacityBytes() const { return capacity_; }
    std::size_t liveRegisters() const { return regs_.size(); }

    /** High-water mark of SRAM usage, bytes. */
    std::uint64_t peakBytes() const { return peak_; }

    /** Number of independent scratch slots per element type. */
    static constexpr std::size_t numScratchSlots = 8;

    /**
     * Reusable kernel scratch (widened operands, packed B tiles,
     * reduction ping-pong). Keyed by slot so a kernel can hold several
     * live buffers; grown monotonically, never shrunk, so steady-state
     * execution does no allocation. Slots are a fixed array so a
     * returned reference stays valid while other slots are fetched.
     * Models the fixed SRAM staging buffers next to the MPU — contents
     * are undefined between calls.
     */
    std::vector<float> &
    scratchF(std::size_t slot, std::size_t n)
    {
        if (scratchF_[slot].size() < n)
            scratchF_[slot].resize(n);
        return scratchF_[slot];
    }

    std::vector<Half> &
    scratchH(std::size_t slot, std::size_t n)
    {
        if (scratchH_[slot].size() < n)
            scratchH_[slot].resize(n);
        return scratchH_[slot];
    }

  private:
    struct Entry
    {
        RegShape shape;
        std::string name;
        HalfTensor data; // empty until touched
    };

    std::uint64_t capacity_;
    std::uint64_t used_ = 0;
    std::uint64_t peak_ = 0;
    isa::RegId next_ = 0;
    std::unordered_map<isa::RegId, Entry> regs_;
    std::array<std::vector<float>, numScratchSlots> scratchF_;
    std::array<std::vector<Half>, numScratchSlots> scratchH_;
};

} // namespace accel
} // namespace cxlpnm

#endif // CXLPNM_ACCEL_REGISTER_FILE_HH
