/**
 * @file
 * The LLM inference accelerator (§V-C): control unit, register-file
 * manager, MPU (adder trees + PE array), VPU and DMA engine, executing
 * coarse-grained programs.
 *
 * Pipeline model: instructions retire in order on a single compute
 * pipeline, but the DMA engine prefetches the streaming operand of up to
 * prefetchDepth upcoming instructions (double buffering). An
 * instruction's compute starts once its operand has fully streamed, so
 * for bandwidth-bound ops the DMA time dominates and for compute-bound
 * ops (PE-array GEMMs) the compute time dominates - the max() behaviour
 * emerges from the overlap.
 */

#ifndef CXLPNM_ACCEL_ACCELERATOR_HH
#define CXLPNM_ACCEL_ACCELERATOR_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "accel/config.hh"
#include "accel/functional_memory.hh"
#include "accel/register_file.hh"
#include "cxl/arbiter.hh"
#include "isa/isa.hh"
#include "sim/clock_domain.hh"
#include "sim/trace.hh"
#include "sim/sim_object.hh"

namespace cxlpnm
{
namespace accel
{

/** The accelerator core behind the CXL-PNM controller. */
class Accelerator : public SimObject
{
  public:
    /**
     * @param arbiter Path to the module's DRAM (PNM side).
     * @param fmem    Functional memory image, or null for timing-only
     *                simulation (no data is computed).
     */
    Accelerator(EventQueue &eq, stats::StatGroup *parent, std::string name,
                const AccelConfig &cfg, cxl::HostPnmArbiter &arbiter,
                FunctionalMemory *fmem);

    /** Execute a program; the callback fires at completion. */
    void run(const isa::Program &prog,
             std::function<void()> on_complete);

    /**
     * Abort the running program without completing it (device reset
     * path). Outstanding DMA completions are ignored; the completion
     * callback is dropped. No-op when idle.
     */
    void abort();

    /**
     * True when the last (or current) run observed an ECC poison on
     * one of its DMA reads - the device-side signal behind the
     * STATUS error bit.
     */
    bool runPoisoned() const { return runPoisoned_; }

    bool busy() const { return running_; }
    const AccelConfig &config() const { return cfg_; }
    RegisterFileManager &registerFile() { return rf_; }
    FunctionalMemory *functionalMemory() { return fmem_; }

    /** Wall-clock of the last completed run. */
    Tick lastRunTicks() const { return lastRunTicks_; }

    // Cumulative activity counters (energy/utilisation inputs).
    std::uint64_t totalMacs() const
    {
        return static_cast<std::uint64_t>(macs_.value());
    }
    std::uint64_t totalVectorOps() const
    {
        return static_cast<std::uint64_t>(vecOps_.value());
    }
    std::uint64_t totalDmaBytes() const
    {
        return static_cast<std::uint64_t>(dmaBytes_.value());
    }
    Tick computeBusyTicks() const
    {
        return static_cast<Tick>(computeBusy_.value());
    }

  private:
    void issueDma();
    void tryStartCompute();
    void computeDone();
    void finishRun();

    AccelConfig cfg_;
    ClockDomain clk_;
    cxl::HostPnmArbiter &arbiter_;
    FunctionalMemory *fmem_;
    RegisterFileManager rf_;

    const isa::Program *prog_ = nullptr;
    std::function<void()> onComplete_;
    bool running_ = false;
    Tick runStart_ = 0;
    Tick lastRunTicks_ = 0;

    std::size_t nextDmaIssue_ = 0;
    std::size_t nextExec_ = 0;
    std::vector<bool> dmaDone_;
    bool computeInFlight_ = false;
    Tick computeStart_ = 0;

    /**
     * Lazily registered pipeline trace tracks: DMA streams, the two
     * compute units, and control (run-level spans + Halt/Sync).
     */
    trace::TrackId dmaTrack_ = trace::InvalidTrack;
    trace::TrackId mpuTrack_ = trace::InvalidTrack;
    trace::TrackId vpuTrack_ = trace::InvalidTrack;
    trace::TrackId ctrlTrack_ = trace::InvalidTrack;
    void initTraceTracks(trace::Tracer *tr);
    bool runPoisoned_ = false;
    /** Bumped per run/abort so stale DMA completions are ignored. */
    std::uint64_t runGen_ = 0;
    Event computeEndEvent_;

    stats::Scalar instructions_;
    stats::Scalar macs_;
    stats::Scalar vecOps_;
    stats::Scalar dmaBytes_;
    stats::Scalar computeBusy_;
    stats::Scalar runs_;
};

} // namespace accel
} // namespace cxlpnm

#endif // CXLPNM_ACCEL_ACCELERATOR_HH
