#include "accel/accelerator.hh"

#include <utility>

#include "accel/functional.hh"
#include "accel/timing.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace cxlpnm
{
namespace accel
{

Accelerator::Accelerator(EventQueue &eq, stats::StatGroup *parent,
                         std::string name, const AccelConfig &cfg,
                         cxl::HostPnmArbiter &arbiter,
                         FunctionalMemory *fmem)
    : SimObject(eq, parent, std::move(name)),
      cfg_(cfg),
      clk_(cfg.freqHz),
      arbiter_(arbiter),
      fmem_(fmem),
      rf_(cfg.registerFileBytes),
      computeEndEvent_(this->name() + ".computeEnd",
                       [this] { computeDone(); }),
      instructions_(this, "instructions", "instructions executed"),
      macs_(this, "macs", "MAC operations performed"),
      vecOps_(this, "vecOps", "vector element operations performed"),
      dmaBytes_(this, "dmaBytes", "bytes streamed by the DMA engine"),
      computeBusy_(this, "computeBusyTicks",
                   "ticks a compute unit was occupied"),
      runs_(this, "runs", "programs executed")
{}

void
Accelerator::run(const isa::Program &prog,
                 std::function<void()> on_complete)
{
    panic_if(running_, "accelerator already running a program");
    prog_ = &prog;
    onComplete_ = std::move(on_complete);
    running_ = true;
    runStart_ = now();
    nextDmaIssue_ = 0;
    nextExec_ = 0;
    dmaDone_.assign(prog.size(), false);
    computeInFlight_ = false;
    runPoisoned_ = false;
    ++runGen_;
    runs_ += 1;

    if (prog.empty()) {
        // Complete asynchronously for a uniform caller contract.
        eventQueue().scheduleOneShot(name() + ".emptyRun", now(),
                                     [this] { finishRun(); });
        return;
    }
    issueDma();
    tryStartCompute();
}

void
Accelerator::abort()
{
    if (!running_)
        return;
    if (computeEndEvent_.scheduled())
        eventQueue().deschedule(computeEndEvent_);
    computeInFlight_ = false;
    running_ = false;
    prog_ = nullptr;
    onComplete_ = nullptr;
    ++runGen_; // orphan any in-flight DMA completions
}

void
Accelerator::initTraceTracks(trace::Tracer *tr)
{
    if (dmaTrack_ != trace::InvalidTrack)
        return;
    dmaTrack_ = tr->track(fullName() + ".dma", "accel");
    mpuTrack_ = tr->track(fullName() + ".mpu", "accel");
    vpuTrack_ = tr->track(fullName() + ".vpu", "accel");
    ctrlTrack_ = tr->track(fullName() + ".ctrl", "accel");
}

void
Accelerator::issueDma()
{
    while (running_ && nextDmaIssue_ < prog_->size() &&
           nextDmaIssue_ <
               nextExec_ + static_cast<std::size_t>(cfg_.prefetchDepth)) {
        const std::size_t i = nextDmaIssue_++;
        const isa::Instruction &inst = (*prog_)[i];
        const std::uint64_t bytes = timing::dmaBytes(inst);
        if (bytes == 0) {
            dmaDone_[i] = true;
            continue;
        }
        dmaBytes_ += static_cast<double>(bytes);
        dram::MemoryRequest req;
        req.addr = inst.memAddr;
        req.bytes = bytes;
        req.isRead = timing::dmaIsRead(inst);
        req.poison = &runPoisoned_;
        req.onComplete = [this, i, gen = runGen_, issued = now(),
                          rd = req.isRead] {
            // A completion from a run that was since aborted (device
            // reset) must not touch the new run's bookkeeping.
            if (gen != runGen_)
                return;
            if (auto *tr = eventQueue().tracer()) {
                initTraceTracks(tr);
                tr->complete(dmaTrack_, rd ? "dma_in" : "dma_out",
                             issued, now());
            }
            dmaDone_[i] = true;
            // A finished stream frees a staging buffer: let the DMA
            // engine pull the next descriptor immediately so the module
            // never idles behind compute.
            issueDma();
            tryStartCompute();
        };
        arbiter_.access(cxl::Requester::Pnm, std::move(req));
    }
}

void
Accelerator::tryStartCompute()
{
    if (!running_ || computeInFlight_ || nextExec_ >= prog_->size())
        return;
    if (!dmaDone_[nextExec_])
        return;

    const isa::Instruction &inst = (*prog_)[nextExec_];
    const Cycles cycles = timing::computeCycles(inst, cfg_) +
        Cycles(cfg_.dispatchOverheadCycles);
    const Tick dur = clk_.cyclesToTicks(cycles);

    computeInFlight_ = true;
    computeStart_ = now();
    computeBusy_ += static_cast<double>(dur);
    scheduleIn(computeEndEvent_, dur);
}

void
Accelerator::computeDone()
{
    const isa::Instruction &inst = (*prog_)[nextExec_];

    instructions_ += 1;
    macs_ += static_cast<double>(timing::macOps(inst));
    vecOps_ += static_cast<double>(timing::vectorOps(inst));

    if (auto *tr = eventQueue().tracer()) {
        initTraceTracks(tr);
        const trace::TrackId unit = isa::isMpuOp(inst.op) ? mpuTrack_
            : isa::isVpuOp(inst.op)                       ? vpuTrack_
                                                          : ctrlTrack_;
        tr->complete(unit, isa::opcodeName(inst.op), computeStart_,
                     now());
    }

    if (fmem_ != nullptr)
        functional::execute(inst, rf_, fmem_);

    computeInFlight_ = false;
    ++nextExec_;

    if (nextExec_ >= prog_->size()) {
        finishRun();
        return;
    }
    issueDma();
    tryStartCompute();
}

void
Accelerator::finishRun()
{
    if (auto *tr = eventQueue().tracer()) {
        initTraceTracks(tr);
        tr->complete(ctrlTrack_, "run", runStart_, now());
    }
    running_ = false;
    lastRunTicks_ = now() - runStart_;
    prog_ = nullptr;
    auto cb = std::move(onComplete_);
    onComplete_ = nullptr;
    if (cb)
        cb();
}

} // namespace accel
} // namespace cxlpnm
