#include "accel/timing.hh"

#include "sim/logging.hh"

namespace cxlpnm
{
namespace accel
{
namespace timing
{

namespace
{

std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace

Cycles
computeCycles(const isa::Instruction &inst, const AccelConfig &cfg)
{
    using isa::Opcode;
    const std::uint64_t m = inst.m, n = inst.n, k = inst.k;
    const std::uint64_t fill = cfg.pipelineFillCycles;
    const std::uint64_t lanes = cfg.vpuLanes;

    switch (inst.op) {
      case Opcode::Halt:
      case Opcode::Sync:
        return Cycles(0);

      case Opcode::DmaLoad:
      case Opcode::DmaStore:
        // Pure data movement; the DMA engine provides the time.
        return Cycles(0);

      case Opcode::MpuMv:
        // Each adder-tree lane folds tileDim elements per cycle; lanes
        // work on different output elements.
        return Cycles(ceilDiv(m, cfg.adderTreeLanes) *
                          ceilDiv(n, cfg.tileDim) +
                      fill);

      case Opcode::MpuTranspose:
      case Opcode::MpuSlice:
        return Cycles(ceilDiv(m * n, lanes) + fill);

      case Opcode::MpuIm2col:
        return Cycles(ceilDiv(m * n * std::max<std::uint64_t>(
                                          inst.imm, 1),
                              lanes) +
                      fill);

      case Opcode::MpuMmPea:
      case Opcode::MpuMaskedMmPea: {
          // Output-stationary: each (peRows x peCols) output tile takes
          // k cycles; tile-edge waste emerges from the ceils.
          return Cycles(ceilDiv(m, cfg.peRows) * ceilDiv(n, cfg.peCols) *
                            std::max<std::uint64_t>(k, 1) +
                        fill);
      }
      case Opcode::MpuMmRedumaxPea:
      case Opcode::MpuMaskedMmRedumaxPea: {
          // Fused row-max costs one extra VPU pass over the output.
          const std::uint64_t mm =
              ceilDiv(m, cfg.peRows) * ceilDiv(n, cfg.peCols) *
              std::max<std::uint64_t>(k, 1);
          return Cycles(mm + ceilDiv(m * n, lanes) + fill);
      }
      case Opcode::MpuConv2dPea:
      case Opcode::MpuConv2dGeluPea: {
          const std::uint64_t kernel =
              std::max<std::uint64_t>(inst.imm, 1);
          std::uint64_t cyc =
              ceilDiv(m, cfg.peRows) * ceilDiv(n, cfg.peCols) *
              std::max<std::uint64_t>(k * kernel, 1);
          if (kernel > 1) // im2col pass through the manipulation unit
              cyc += ceilDiv(m * k * kernel, lanes);
          if (inst.op == Opcode::MpuConv2dGeluPea) // fused activation
              cyc += ceilDiv(m * n, lanes);
          return Cycles(cyc + fill);
      }

      case Opcode::VpuLayerNorm:
        // Three passes: mean, variance, normalise+scale.
        return Cycles(3 * ceilDiv(m * n, lanes) + fill);

      case Opcode::VpuSoftmax: {
          // Max (skipped when a REDUMAX register is supplied), exp+sum,
          // divide.
          const std::uint64_t passes = inst.aux != isa::NoReg ? 2 : 3;
          return Cycles(passes * ceilDiv(m * n, lanes) + fill);
      }
      case Opcode::VpuGelu:
      case Opcode::VpuAdd:
      case Opcode::VpuMul:
      case Opcode::VpuReduMax:
        return Cycles(ceilDiv(m * n, lanes) + fill);
    }
    panic("computeCycles: unhandled opcode");
}

std::uint64_t
dmaBytes(const isa::Instruction &inst)
{
    using isa::Opcode;
    switch (inst.op) {
      case Opcode::DmaLoad:
      case Opcode::DmaStore:
        return 2ull * inst.m * inst.n;
      default:
        break;
    }
    if (!inst.has(isa::FlagMemOperand))
        return 0;
    switch (inst.op) {
      case Opcode::MpuMv:
        return 2ull * inst.m * inst.n;
      case Opcode::MpuMmPea:
      case Opcode::MpuMmRedumaxPea:
      case Opcode::MpuMaskedMmPea:
      case Opcode::MpuMaskedMmRedumaxPea:
        // Multi-head ops stream the full (context x dModel) K/V cache.
        if (inst.has(isa::FlagMultiHead))
            return 2ull * inst.m * inst.n * inst.k;
        return 2ull * inst.k * inst.n;
      case Opcode::MpuConv2dPea:
      case Opcode::MpuConv2dGeluPea:
        return 2ull * inst.k * std::max<std::uint64_t>(inst.imm, 1) *
            inst.n;
      default:
        panic("memory operand on non-streaming opcode: ",
              inst.toString());
    }
}

bool
dmaIsRead(const isa::Instruction &inst)
{
    return inst.op != isa::Opcode::DmaStore;
}

std::uint64_t
macOps(const isa::Instruction &inst)
{
    using isa::Opcode;
    switch (inst.op) {
      case Opcode::MpuMv:
        return static_cast<std::uint64_t>(inst.m) * inst.n;
      case Opcode::MpuMmPea:
      case Opcode::MpuMmRedumaxPea:
      case Opcode::MpuMaskedMmPea:
      case Opcode::MpuMaskedMmRedumaxPea:
        return static_cast<std::uint64_t>(inst.m) * inst.n * inst.k;
      case Opcode::MpuConv2dPea:
      case Opcode::MpuConv2dGeluPea:
        return static_cast<std::uint64_t>(inst.m) * inst.n * inst.k *
            std::max<std::uint64_t>(inst.imm, 1);
      default:
        return 0;
    }
}

std::uint64_t
vectorOps(const isa::Instruction &inst)
{
    using isa::Opcode;
    const std::uint64_t mn = static_cast<std::uint64_t>(inst.m) * inst.n;
    switch (inst.op) {
      case Opcode::VpuLayerNorm:
        return 3 * mn;
      case Opcode::VpuSoftmax:
        return 3 * mn;
      case Opcode::VpuGelu:
      case Opcode::VpuAdd:
      case Opcode::VpuMul:
      case Opcode::VpuReduMax:
      case Opcode::MpuTranspose:
      case Opcode::MpuSlice:
        return mn;
      default:
        return 0;
    }
}

} // namespace timing
} // namespace accel
} // namespace cxlpnm
