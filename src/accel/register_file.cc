#include "accel/register_file.hh"

#include "sim/logging.hh"

namespace cxlpnm
{
namespace accel
{

isa::RegId
RegisterFileManager::alloc(std::uint32_t rows, std::uint32_t cols,
                           const std::string &debug_name)
{
    fatal_if(rows == 0 || cols == 0,
             "zero-sized register '", debug_name, "'");
    RegShape shape{rows, cols};
    fatal_if(used_ + shape.bytes() > capacity_,
             "register file exhausted: need ", shape.bytes(),
             " bytes for '", debug_name, "', used ", used_, " of ",
             capacity_);

    // Skip the NoReg sentinel and any id still live (wrap-around reuse).
    while (next_ == isa::NoReg || regs_.count(next_))
        ++next_;
    isa::RegId id = next_++;

    Entry e;
    e.shape = shape;
    e.name = debug_name;
    regs_.emplace(id, std::move(e));
    used_ += shape.bytes();
    peak_ = std::max(peak_, used_);
    return id;
}

void
RegisterFileManager::free(isa::RegId id)
{
    auto it = regs_.find(id);
    panic_if(it == regs_.end(), "free of invalid register ", id);
    used_ -= it->second.shape.bytes();
    regs_.erase(it);
}

void
RegisterFileManager::reset()
{
    regs_.clear();
    used_ = 0;
    next_ = 0;
}

RegShape
RegisterFileManager::shape(isa::RegId id) const
{
    auto it = regs_.find(id);
    panic_if(it == regs_.end(), "shape of invalid register ", id);
    return it->second.shape;
}

HalfTensor &
RegisterFileManager::tensor(isa::RegId id)
{
    auto it = regs_.find(id);
    panic_if(it == regs_.end(), "tensor of invalid register ", id);
    Entry &e = it->second;
    if (e.data.empty())
        e.data = HalfTensor(e.shape.rows, e.shape.cols);
    return e.data;
}

} // namespace accel
} // namespace cxlpnm
