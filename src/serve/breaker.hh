/**
 * @file
 * Per-device-group serving circuit breaker, layered on the PR 3
 * degraded-group routing. A rolling window of iteration outcomes
 * (fault-induced failures plus latency breaches) drives the classic
 * Closed -> Open -> HalfOpen ladder: a tripped group is routed
 * around while it backs off exponentially (with deterministic,
 * seed-derived jitter so co-tripped groups do not reopen in
 * lockstep), then a single HalfOpen probe request decides between
 * closing and re-opening with a doubled backoff. Every transition is
 * appended to a text log that is a pure function of the seed and the
 * fault script — the determinism tests byte-compare it across
 * thread counts.
 */

#ifndef CXLPNM_SERVE_BREAKER_HH
#define CXLPNM_SERVE_BREAKER_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "serve/overload.hh"

namespace cxlpnm
{
namespace serve
{

/** Per-group circuit-breaker policy. */
struct CircuitBreakerConfig
{
    bool enabled = false;

    /** Rolling window length, in iteration outcomes. */
    std::uint64_t windowSize = 16;
    /** Bad outcomes inside the window that trip the breaker. */
    std::uint64_t failureThreshold = 4;
    /**
     * Iteration duration counted as a latency breach (a "bad"
     * outcome even when the iteration succeeded); 0 disables latency
     * tracking and only fault-induced failures count.
     */
    double latencyThresholdSeconds = 0.0;

    /** First Open-state backoff; doubles per consecutive re-open. */
    double backoffBaseSeconds = 0.5;
    /** Backoff ceiling. */
    double backoffMaxSeconds = 8.0;
    /** Jitter amplitude as a fraction of the backoff (0 = none). */
    double jitterFraction = 0.25;

    /** Seed for the deterministic jitter stream. */
    std::uint64_t seed = 1;

    /** @throws OverloadConfigError on out-of-range fields. */
    void validate() const;
};

enum class BreakerState
{
    Closed,   // healthy: route normally, keep scoring outcomes
    Open,     // tripped: route around until the backoff expires
    HalfOpen, // probing: exactly one request may be routed here
};

const char *breakerStateName(BreakerState s);

/** One device group's breaker (see file comment). */
class CircuitBreaker
{
  public:
    CircuitBreaker(const CircuitBreakerConfig &cfg,
                   std::uint64_t group);

    /**
     * Score one iteration outcome at simulated time @p now.
     * @p ok is false for fault-induced iteration failures;
     * @p dur_seconds additionally counts as a breach when it exceeds
     * the latency threshold. In HalfOpen this resolves the probe.
     */
    void noteIteration(bool ok, double dur_seconds, double now);

    /**
     * May the dispatcher route a request here at time @p now?
     * Closed: always. Open: flips to HalfOpen once the backoff has
     * expired, else refuses. HalfOpen: admits exactly one probe —
     * true once, then false until the probe's iteration resolves it.
     */
    bool allowRoute(double now);

    /**
     * Would allowRoute() say yes, without committing the Open ->
     * HalfOpen transition or consuming the probe slot? The dispatcher
     * scans all groups with this, then calls allowRoute() on the one
     * it actually picks.
     */
    bool wouldAllow(double now) const;

    BreakerState state() const { return state_; }
    std::uint64_t openCount() const { return openCount_; }
    /** Lifetime trip count (openCount() resets on probe success). */
    std::uint64_t trips() const { return trips_; }
    double reopenAtSeconds() const { return reopenAt_; }

    /** Deterministic transition log ("g<g> t=<t> closed->open ..."). */
    const std::string &log() const { return log_; }

    /** Warm state, for snapshot/restore (the log is not state). */
    struct State
    {
        int state = 0; // BreakerState as int
        std::uint64_t openCount = 0;
        std::uint64_t trips = 0;
        double reopenAt = 0.0;
        bool probeOutstanding = false;
        /** Rolling window, oldest first; 1 = bad outcome. */
        std::vector<std::uint8_t> window;
    };

    State snapshotState() const;
    void restore(const State &s);

  private:
    void transition(BreakerState to, double now, const char *why);
    void trip(double now, const char *why);
    double backoffSeconds() const;

    CircuitBreakerConfig cfg_;
    std::uint64_t group_;
    BreakerState state_ = BreakerState::Closed;
    std::deque<std::uint8_t> window_;
    std::uint64_t badInWindow_ = 0;
    std::uint64_t openCount_ = 0;
    std::uint64_t trips_ = 0;
    double reopenAt_ = 0.0;
    bool probeOutstanding_ = false;
    std::string log_;
};

} // namespace serve
} // namespace cxlpnm

#endif // CXLPNM_SERVE_BREAKER_HH
