/**
 * @file
 * Service-level metrics for the serving simulator: time-to-first-token
 * and per-token latency distributions (p50/p95/p99 via
 * stats::Histogram), queue depth, batch occupancy, KV-pool
 * utilization, and goodput under an SLO deadline.
 */

#ifndef CXLPNM_SERVE_METRICS_HH
#define CXLPNM_SERVE_METRICS_HH

#include <cstdint>
#include <string>

#include "serve/request.hh"
#include "sim/stats.hh"

namespace cxlpnm
{
namespace serve
{

/** Histogram ranges and the (optional) latency SLOs. */
struct MetricsConfig
{
    /** Per-token latency histogram range [0, hi) seconds. */
    double tokenLatencyHi = 2.0;
    std::size_t tokenLatencyBuckets = 2000;
    /** Time-to-first-token histogram range [0, hi) seconds. */
    double ttftHi = 120.0;
    std::size_t ttftBuckets = 1200;

    /** A finished request meets the SLO when its mean per-token
     *  latency and TTFT are within these deadlines (0 = don't care). */
    double sloTokenSeconds = 0.0;
    double sloTtftSeconds = 0.0;
};

/** Everything a sweep wants to compare, in one value struct. */
struct ServeReport
{
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t tokensGenerated = 0;
    double makespanSeconds = 0.0;

    double achievedQps = 0.0;
    double throughputTokensPerSec = 0.0;

    double tokenLatencyP50 = 0.0;
    double tokenLatencyP95 = 0.0;
    double tokenLatencyP99 = 0.0;
    double ttftP50 = 0.0;
    double ttftP95 = 0.0;

    double meanBatchSize = 0.0;
    double meanQueueDepth = 0.0;
    double peakKvUtilization = 0.0;

    /** Tokens/s from requests that met the SLO deadlines. */
    double goodputTokensPerSec = 0.0;
    /** Fraction of finished requests meeting the SLO. */
    double sloFraction = 0.0;

    // --- RAS (fault-injection campaigns) ---
    /** Batch iterations whose work was lost to an injected fault. */
    std::uint64_t iterationFailures = 0;
    /** Requests restarted after a failed iteration. */
    std::uint64_t requestRetries = 0;
    /** Requests abandoned after exhausting their retry budget. */
    std::uint64_t requestsFailed = 0;
    /** Device-seconds spent in post-failure cooldown. */
    double degradedSeconds = 0.0;
    /** 1 - degraded device-seconds / total device-seconds. */
    double availability = 1.0;
};

/** Collects samples from one or more schedulers. */
class ServeMetrics
{
  public:
    /** @param parent Null builds a private root group. */
    ServeMetrics(stats::StatGroup *parent, std::string name,
                 const MetricsConfig &cfg = {});

    const MetricsConfig &config() const { return cfg_; }

    /** Once per scheduler iteration, after it completes. */
    void sampleIteration(std::size_t batch_size,
                         std::size_t queue_depth,
                         double kv_utilization);

    /** One decoded token whose latency was @p seconds. */
    void sampleTokenLatency(double seconds, std::uint64_t tokens = 1);

    void sampleTtft(double seconds);

    /** Request retired; accounts throughput, SLO and goodput. */
    void finishRequest(const ServeRequest &req);

    void rejectRequest();

    // --- RAS accounting (fault-injection campaigns) ---
    /** One scheduler (device group) reporting into this collector;
     *  the denominator of the availability figure. */
    void registerDevice() { ++devicesN_; }
    /** A batch iteration's work was lost to a fault. */
    void noteIterationFailure();
    /** A request was re-enqueued after a failed iteration. */
    void noteRequestRetry();
    /** A device group entered post-failure cooldown for @p seconds. */
    void noteDegraded(double seconds);
    /** Request abandoned after exhausting its retry budget. */
    void failRequest();

    std::uint64_t completed() const { return completedN_; }
    std::uint64_t rejected() const { return rejectedN_; }
    std::uint64_t tokensGenerated() const { return tokensN_; }
    std::uint64_t requestsFailed() const { return failedN_; }
    double peakKvUtilization() const { return peakKvUtil_; }

    /** Summarise; @p makespan is the serving clock at drain. */
    ServeReport report(double makespan_seconds) const;

    /** Dump the underlying stat hierarchy (diff-friendly). */
    void dumpStats(std::ostream &os) const { group_.dumpStats(os); }

  private:
    MetricsConfig cfg_;
    stats::StatGroup group_;

    stats::Histogram tokenLatency_;
    stats::Histogram ttft_;
    stats::Average batchSize_;
    stats::Average queueDepth_;
    stats::Average kvUtilization_;
    stats::Scalar completedStat_;
    stats::Scalar rejectedStat_;
    stats::Scalar tokensStat_;
    stats::Scalar sloMetStat_;
    stats::Scalar iterFailStat_;
    stats::Scalar retryStat_;
    stats::Scalar failedStat_;
    stats::Scalar degradedStat_;

    std::uint64_t completedN_ = 0;
    std::uint64_t rejectedN_ = 0;
    std::uint64_t tokensN_ = 0;
    std::uint64_t sloMetRequests_ = 0;
    std::uint64_t sloMetTokens_ = 0;
    std::uint64_t iterFailN_ = 0;
    std::uint64_t retryN_ = 0;
    std::uint64_t failedN_ = 0;
    std::uint64_t devicesN_ = 0;
    double degradedSeconds_ = 0.0;
    double peakKvUtil_ = 0.0;
};

} // namespace serve
} // namespace cxlpnm

#endif // CXLPNM_SERVE_METRICS_HH
