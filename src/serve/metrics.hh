/**
 * @file
 * Service-level metrics for the serving simulator: time-to-first-token
 * and per-token latency distributions (p50/p95/p99 via
 * stats::Histogram), queue depth, batch occupancy, KV-pool
 * utilization, and goodput under an SLO deadline.
 */

#ifndef CXLPNM_SERVE_METRICS_HH
#define CXLPNM_SERVE_METRICS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/request.hh"
#include "serve/tier/migration_engine.hh"
#include "serve/tier/tiered_pool.hh"
#include "sim/stats.hh"

namespace cxlpnm
{
namespace serve
{

/** Histogram ranges and the (optional) latency SLOs. */
struct MetricsConfig
{
    /** Per-token latency histogram range [0, hi) seconds. */
    double tokenLatencyHi = 2.0;
    std::size_t tokenLatencyBuckets = 2000;
    /** Time-to-first-token histogram range [0, hi) seconds. */
    double ttftHi = 120.0;
    std::size_t ttftBuckets = 1200;

    /** A finished request meets the SLO when its mean per-token
     *  latency and TTFT are within these deadlines (0 = don't care). */
    double sloTokenSeconds = 0.0;
    double sloTtftSeconds = 0.0;

    /**
     * Let the latency histograms double their range instead of
     * clamping at `hi` (long-context mode: a 1M-token prefill's TTFT
     * sits far beyond any range sized for chat traffic). Off by
     * default - extension changes the dumped bucket edges, which
     * fixed-range consumers compare byte-for-byte.
     */
    bool autoExtendLatencies = false;
};

/** Everything a sweep wants to compare, in one value struct. */
struct ServeReport
{
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t tokensGenerated = 0;
    double makespanSeconds = 0.0;

    double achievedQps = 0.0;
    double throughputTokensPerSec = 0.0;

    double tokenLatencyP50 = 0.0;
    double tokenLatencyP95 = 0.0;
    double tokenLatencyP99 = 0.0;
    double ttftP50 = 0.0;
    double ttftP95 = 0.0;
    /** p99 TTFT of requests that got a first token (admitted ones);
     *  the overload campaign's bounded-latency gate. */
    double ttftP99 = 0.0;

    double meanBatchSize = 0.0;
    double meanQueueDepth = 0.0;
    double peakKvUtilization = 0.0;
    /**
     * KV utilization averaged over *busy device time* (∑ util·dt over
     * the iteration intervals / ∑ dt), not over iteration counts, so
     * long and short iterations weigh honestly - the figure that makes
     * paged and worst-case admission comparable.
     */
    double timeAvgKvUtilization = 0.0;

    // --- paged KV / prefix cache (zero when paging is off) ---
    /** Shared-prefix full blocks looked up at admission. */
    std::uint64_t prefixLookupBlocks = 0;
    /** ... of which were served from the prefix cache. */
    std::uint64_t prefixHitBlocks = 0;
    /** Shared prompt tokens looked up at admission. */
    std::uint64_t sharedPrefixTokens = 0;
    /** cachedPrefixTokens / sharedPrefixTokens (0 when no lookups);
     *  token-granular so partial-tail hits count. */
    double prefixHitRate = 0.0;
    /** Prompt tokens that skipped the sum stage via the cache. */
    std::uint64_t cachedPrefixTokens = 0;
    /** Copy-on-write block copies (partial-tail sharing). */
    std::uint64_t cowCopies = 0;
    /** Prefix-cache blocks evicted to satisfy allocations. */
    std::uint64_t cacheEvictions = 0;
    /** Requests evicted from the running batch for KV capacity. */
    std::uint64_t preemptionsForCapacity = 0;
    /** Prompt + generated tokens discarded by those preemptions
     *  (recomputed after the request is re-admitted). */
    std::uint64_t recomputeTokens = 0;
    /** Peak KV blocks allocated at once. */
    std::uint64_t peakKvBlocksInUse = 0;
    /** Time-weighted mean of allocated KV blocks. */
    double meanKvBlocksInUse = 0.0;
    /** Mean unused slots in running requests' allocated blocks
     *  (internal fragmentation of the paged layout). */
    double kvFragmentation = 0.0;

    // --- tiered KV (zero when the far tier is off) ---
    /** Blocks moved near -> far by the demotion policy. */
    std::uint64_t tierDemotions = 0;
    /** Blocks moved far -> near for attention (Promote mode). */
    std::uint64_t tierPromotions = 0;
    /** Blocks allocated directly into the far tier. */
    std::uint64_t tierFarBornBlocks = 0;
    /** Bytes migrated between tiers (all three flows above). */
    std::uint64_t tierMigratedBytes = 0;
    /** Far KV bytes streamed through the link for attention. */
    std::uint64_t tierStreamedBytes = 0;
    /** Link seconds on the iteration critical path (stall time). */
    double tierExposedSeconds = 0.0;
    /** Link seconds hidden under compute by decode-ahead prefetch. */
    double tierHiddenSeconds = 0.0;
    /** Migrations whose block was freed before completion. */
    std::uint64_t tierAbandonedMigrations = 0;
    /** Times the pinned-window policy had to break its pin. */
    std::uint64_t tierPinViolations = 0;
    /** Peak near frames / far slots occupied at once. */
    std::uint64_t peakNearBlocksInUse = 0;
    std::uint64_t peakFarBlocksInUse = 0;

    /** Tokens/s from requests that met the SLO deadlines. */
    double goodputTokensPerSec = 0.0;
    /** Fraction of finished requests meeting the SLO. */
    double sloFraction = 0.0;

    // --- RAS (fault-injection campaigns) ---
    /** Batch iterations whose work was lost to an injected fault. */
    std::uint64_t iterationFailures = 0;
    /** Requests restarted after a failed iteration. */
    std::uint64_t requestRetries = 0;
    /** Requests abandoned after exhausting their retry budget. */
    std::uint64_t requestsFailed = 0;
    /** Device-seconds spent in post-failure cooldown. */
    double degradedSeconds = 0.0;
    /** 1 - degraded device-seconds / total device-seconds. */
    double availability = 1.0;

    // --- overload protection (zero with every knob off) ---
    /** Requests offered to the serving tier (front door included). */
    std::uint64_t submitted = 0;
    /** Deadline-shed before ever running (RequestState::Shed). */
    std::uint64_t shedRequests = 0;
    /** Timed out of the queue (RequestState::Shed). */
    std::uint64_t timedOutRequests = 0;
    /** Turned away by the admission controller (bucket or gates). */
    std::uint64_t throttledRequests = 0;
    /**
     * SLO attainment with an honest denominator: requests meeting the
     * SLO over EVERY terminal request - finished, shed, timed out,
     * throttled, rejected and failed all count against it, so
     * shedding cannot silently inflate the figure the way
     * `sloFraction` (finished-only, kept for compatibility) can.
     */
    double sloAttainment = 0.0;
    /** Completed / submitted: the request-level availability figure
     *  with shed, timed-out and throttled work in the denominator. */
    double servedFraction = 0.0;
    /** Deepest brownout ladder level reached. */
    std::uint64_t brownoutPeakLevel = 0;
    /** Circuit-breaker trips (Closed/HalfOpen -> Open). */
    std::uint64_t breakerOpens = 0;

    // --- chunked prefill / disaggregation (zero with both off) ---
    /** Requests whose prompt took more than one prefill chunk. */
    std::uint64_t chunkedPrefills = 0;
    /** Prefill-chunk steps executed (joins + mid-chunk iterations). */
    std::uint64_t chunkIterations = 0;
    /** KV handovers issued from prefill groups to decode groups. */
    std::uint64_t handovers = 0;
    /** KV bytes those handovers moved across the CXL link. */
    std::uint64_t handoverBytes = 0;
    /** Serialized CXL-link seconds the handovers occupied. */
    double handoverLinkSeconds = 0.0;

    /** Per-tenant accounting, tenant-sorted. */
    struct TenantBreakdown
    {
        std::uint64_t tenant = 0;
        std::uint64_t submitted = 0;
        std::uint64_t completed = 0;
        std::uint64_t shed = 0;
        std::uint64_t timedOut = 0;
        std::uint64_t throttled = 0;
    };
    std::vector<TenantBreakdown> tenants;
};

/** Collects samples from one or more schedulers. */
class ServeMetrics
{
  public:
    /** @param parent Null builds a private root group. */
    ServeMetrics(stats::StatGroup *parent, std::string name,
                 const MetricsConfig &cfg = {});

    const MetricsConfig &config() const { return cfg_; }

    /** Once per scheduler iteration, after it completes. */
    void sampleIteration(std::size_t batch_size,
                         std::size_t queue_depth,
                         double kv_utilization);

    /**
     * One interval of @p seconds during which KV utilization (and, in
     * paged mode, @p blocks_in_use allocated blocks) held steady; the
     * accumulator behind the time-weighted averages.
     */
    void noteKvInterval(double seconds, double kv_utilization,
                        std::uint64_t blocks_in_use = 0);

    // --- paged KV / prefix cache accounting ---
    /** One admission-time prefix lookup over @p lookup_blocks full
     *  blocks (@p shared_tokens prompt tokens), of which
     *  @p hit_blocks were cached, serving @p cached_tokens prompt
     *  tokens (partial tail included). */
    void notePrefixLookup(std::uint64_t lookup_blocks,
                          std::uint64_t hit_blocks,
                          std::uint64_t shared_tokens,
                          std::uint64_t cached_tokens);
    /** One copy-on-write block copy. */
    void noteCowCopy();
    /** @p n prefix-cache blocks evicted for allocation pressure. */
    void noteCacheEvictions(std::uint64_t n);
    /** A running request was preempted; @p recompute_tokens of its
     *  prompt + generation must be recomputed after re-admission. */
    void notePreemption(std::uint64_t recompute_tokens);
    /** Paged-layout fragmentation sample (once per iteration). */
    void sampleKvFragmentation(double fraction);
    /** Peak allocated blocks (monotone max). */
    void notePeakKvBlocks(std::uint64_t blocks);

    // --- tiered KV accounting ---
    /**
     * Create the tier stat sub-group. Lazy so that with tiering off
     * the dumped stat hierarchy - and every emitted byte - matches
     * the untiered collector. Idempotent (dispatcher groups share one
     * collector).
     */
    void enableTierStats();
    /**
     * One tiered iteration: the migration engine's per-step ledger
     * @p iter, the pool snapshot @p snap after completion, and the
     * step's newly abandoned migrations / pin violations (deltas, so
     * several schedulers can share one collector).
     */
    void noteTierIteration(const tier::TierIterationStats &iter,
                           const tier::TierStats &snap,
                           std::uint64_t abandoned_delta,
                           std::uint64_t pin_violation_delta);

    /** One decoded token whose latency was @p seconds. */
    void sampleTokenLatency(double seconds, std::uint64_t tokens = 1);

    void sampleTtft(double seconds);

    /** Request retired; accounts throughput, SLO and goodput. */
    void finishRequest(const ServeRequest &req);

    void rejectRequest();

    // --- overload-protection accounting ---
    /**
     * Create the overload stat sub-group. Lazy for the same reason as
     * enableTierStats(): with every overload knob off the dumped stat
     * hierarchy - and every emitted byte - is unchanged. Idempotent.
     */
    void enableOverloadStats();
    /** One request offered to the serving tier (any terminal fate);
     *  called where the request first enters - the dispatcher's front
     *  door or a standalone scheduler's submit(). */
    void noteSubmitted(std::uint64_t tenant);
    /** Request dropped by overload protection: deadline-shed
     *  (@p timed_out false) or queue-timeout (@p timed_out true). */
    void shedRequest(const ServeRequest &req, bool timed_out);
    /** Request turned away by the admission controller. */
    void throttleRequest(std::uint64_t tenant);
    /** Brownout ladder moved; tracks the peak level. */
    void noteBrownoutLevel(std::uint64_t level);
    /** A circuit breaker tripped (-> Open). */
    void noteBreakerOpen();

    // --- chunked prefill / disaggregation accounting ---
    /**
     * Create the disagg stat sub-group. Lazy for the same reason as
     * enableTierStats(): with chunking and disaggregation off the
     * dumped stat hierarchy - and every emitted byte - is unchanged.
     * Idempotent.
     */
    void enableDisaggStats();
    /** A request's prompt needs more than one prefill chunk. */
    void noteChunkedPrefill();
    /** One prefill-chunk step ran (join or mid-chunk iteration). */
    void noteChunkIteration();
    /** One KV handover of @p bytes occupying the CXL link for
     *  @p link_seconds (serialized against tier migration traffic). */
    void noteHandover(std::uint64_t bytes, double link_seconds);

    // --- RAS accounting (fault-injection campaigns) ---
    /** One scheduler (device group) reporting into this collector;
     *  the denominator of the availability figure. */
    void registerDevice() { ++devicesN_; }
    /** A batch iteration's work was lost to a fault. */
    void noteIterationFailure();
    /** A request was re-enqueued after a failed iteration. */
    void noteRequestRetry();
    /** A device group entered post-failure cooldown for @p seconds. */
    void noteDegraded(double seconds);
    /** Request abandoned after exhausting its retry budget. */
    void failRequest();

    std::uint64_t completed() const { return completedN_; }
    std::uint64_t rejected() const { return rejectedN_; }
    std::uint64_t tokensGenerated() const { return tokensN_; }
    std::uint64_t requestsFailed() const { return failedN_; }
    double peakKvUtilization() const { return peakKvUtil_; }
    std::uint64_t preemptions() const { return preemptN_; }
    std::uint64_t recomputeTokens() const { return recomputeN_; }
    std::uint64_t prefixHitBlocks() const { return prefixHitN_; }

    /** Summarise; @p makespan is the serving clock at drain. */
    ServeReport report(double makespan_seconds) const;

    /** Dump the underlying stat hierarchy (diff-friendly). */
    void dumpStats(std::ostream &os) const { group_.dumpStats(os); }

    /**
     * Full collector state, for warm-state snapshot/restore. The
     * Scalar stats are exact mirrors of the counters (updated in
     * lockstep at every accounting site), so only the counters plus
     * the Histogram/Average sample states are captured; restore
     * rebuilds the scalars from the counters bit-identically.
     */
    struct State
    {
        stats::Histogram::State tokenLatency;
        stats::Histogram::State ttft;
        stats::Average::State batchSize;
        stats::Average::State queueDepth;
        stats::Average::State kvUtilization;
        stats::Average::State kvFragmentation;

        std::uint64_t completed = 0;
        std::uint64_t rejected = 0;
        std::uint64_t tokens = 0;
        std::uint64_t sloMetRequests = 0;
        std::uint64_t sloMetTokens = 0;
        std::uint64_t iterFailures = 0;
        std::uint64_t retries = 0;
        std::uint64_t failed = 0;
        std::uint64_t devices = 0;
        double degradedSeconds = 0.0;
        double peakKvUtil = 0.0;

        double kvUtilSecondsIntegral = 0.0;
        double kvBlockSecondsIntegral = 0.0;
        double kvIntervalSeconds = 0.0;

        std::uint64_t prefixLookups = 0;
        std::uint64_t prefixHits = 0;
        std::uint64_t sharedTokens = 0;
        std::uint64_t cachedTokens = 0;
        std::uint64_t cowCopies = 0;
        std::uint64_t cacheEvictions = 0;
        std::uint64_t preemptions = 0;
        std::uint64_t recomputeTokens = 0;
        std::uint64_t peakKvBlocks = 0;

        bool tierEnabled = false;
        std::uint64_t tierDemotions = 0;
        std::uint64_t tierPromotions = 0;
        std::uint64_t tierFarBorn = 0;
        std::uint64_t tierMigratedBytes = 0;
        std::uint64_t tierStreamedBytes = 0;
        double tierExposedSeconds = 0.0;
        double tierHiddenSeconds = 0.0;
        std::uint64_t tierAbandoned = 0;
        std::uint64_t tierPinViolations = 0;
        std::uint64_t peakNearBlocks = 0;
        std::uint64_t peakFarBlocks = 0;

        bool overloadEnabled = false;
        std::uint64_t submitted = 0;
        std::uint64_t shed = 0;
        std::uint64_t timedOut = 0;
        std::uint64_t throttled = 0;
        std::uint64_t brownoutPeak = 0;
        std::uint64_t breakerOpens = 0;
        /** Per-tenant counters, tenant-sorted. */
        std::vector<ServeReport::TenantBreakdown> tenants;

        bool disaggEnabled = false;
        std::uint64_t chunkedPrefills = 0;
        std::uint64_t chunkIterations = 0;
        std::uint64_t handovers = 0;
        std::uint64_t handoverBytes = 0;
        double handoverLinkSeconds = 0.0;
    };

    State state() const;
    void restore(const State &s);

  private:
    MetricsConfig cfg_;
    stats::StatGroup group_;

    stats::Histogram tokenLatency_;
    stats::Histogram ttft_;
    stats::Average batchSize_;
    stats::Average queueDepth_;
    stats::Average kvUtilization_;
    stats::Scalar completedStat_;
    stats::Scalar rejectedStat_;
    stats::Scalar tokensStat_;
    stats::Scalar sloMetStat_;
    stats::Scalar iterFailStat_;
    stats::Scalar retryStat_;
    stats::Scalar failedStat_;
    stats::Scalar degradedStat_;
    stats::Scalar prefixHitStat_;
    stats::Scalar prefixLookupStat_;
    stats::Scalar cachedTokenStat_;
    stats::Scalar sharedTokenStat_;
    stats::Scalar cowStat_;
    stats::Scalar cacheEvictStat_;
    stats::Scalar preemptStat_;
    stats::Scalar recomputeStat_;
    stats::Average kvFragmentation_;

    /** Tier stats live in a lazily built sub-group (see
     *  enableTierStats()). */
    struct TierStatBlock
    {
        explicit TierStatBlock(stats::StatGroup *parent);

        stats::StatGroup group;
        stats::Scalar demotions;
        stats::Scalar promotions;
        stats::Scalar farBorn;
        stats::Scalar migratedBytes;
        stats::Scalar streamedBytes;
        stats::Scalar exposedSeconds;
        stats::Scalar hiddenSeconds;
        stats::Scalar abandoned;
        stats::Scalar pinViolations;
    };
    std::unique_ptr<TierStatBlock> tierStats_;

    /** Overload stats live in a lazily built sub-group (see
     *  enableOverloadStats()). */
    struct OverloadStatBlock
    {
        explicit OverloadStatBlock(stats::StatGroup *parent);

        stats::StatGroup group;
        stats::Scalar submitted;
        stats::Scalar shed;
        stats::Scalar timedOut;
        stats::Scalar throttled;
        stats::Scalar brownoutPeak;
        stats::Scalar breakerOpens;
    };
    std::unique_ptr<OverloadStatBlock> overloadStats_;

    /** Chunked-prefill / disaggregation stats, lazily built (see
     *  enableDisaggStats()). */
    struct DisaggStatBlock
    {
        explicit DisaggStatBlock(stats::StatGroup *parent);

        stats::StatGroup group;
        stats::Scalar chunkedPrefills;
        stats::Scalar chunkIterations;
        stats::Scalar handovers;
        stats::Scalar handoverBytes;
        stats::Scalar handoverLinkSeconds;
    };
    std::unique_ptr<DisaggStatBlock> disaggStats_;

    std::uint64_t completedN_ = 0;
    std::uint64_t rejectedN_ = 0;
    std::uint64_t tokensN_ = 0;
    std::uint64_t sloMetRequests_ = 0;
    std::uint64_t sloMetTokens_ = 0;
    std::uint64_t iterFailN_ = 0;
    std::uint64_t retryN_ = 0;
    std::uint64_t failedN_ = 0;
    std::uint64_t devicesN_ = 0;
    double degradedSeconds_ = 0.0;
    double peakKvUtil_ = 0.0;

    // Time-weighted KV accumulators (∑ value·dt, ∑ dt).
    double kvUtilSecondsIntegral_ = 0.0;
    double kvBlockSecondsIntegral_ = 0.0;
    double kvIntervalSeconds_ = 0.0;

    std::uint64_t prefixLookupN_ = 0;
    std::uint64_t prefixHitN_ = 0;
    std::uint64_t sharedTokensN_ = 0;
    std::uint64_t cachedTokensN_ = 0;
    std::uint64_t cowN_ = 0;
    std::uint64_t cacheEvictN_ = 0;
    std::uint64_t preemptN_ = 0;
    std::uint64_t recomputeN_ = 0;
    std::uint64_t peakKvBlocks_ = 0;

    std::uint64_t tierDemotionsN_ = 0;
    std::uint64_t tierPromotionsN_ = 0;
    std::uint64_t tierFarBornN_ = 0;
    std::uint64_t tierMigratedBytesN_ = 0;
    std::uint64_t tierStreamedBytesN_ = 0;
    double tierExposedSeconds_ = 0.0;
    double tierHiddenSeconds_ = 0.0;
    std::uint64_t tierAbandonedN_ = 0;
    std::uint64_t tierPinViolationsN_ = 0;
    std::uint64_t peakNearBlocks_ = 0;
    std::uint64_t peakFarBlocks_ = 0;

    /** Per-tenant tallies (always maintained; nearly free for the
     *  default single tenant, invisible in reports until read). */
    struct TenantCounters
    {
        std::uint64_t submitted = 0;
        std::uint64_t completed = 0;
        std::uint64_t shed = 0;
        std::uint64_t timedOut = 0;
        std::uint64_t throttled = 0;
    };
    std::map<std::uint64_t, TenantCounters> tenants_;

    std::uint64_t submittedN_ = 0;
    std::uint64_t shedN_ = 0;
    std::uint64_t timedOutN_ = 0;
    std::uint64_t throttledN_ = 0;
    std::uint64_t brownoutPeak_ = 0;
    std::uint64_t breakerOpensN_ = 0;

    std::uint64_t chunkedPrefillsN_ = 0;
    std::uint64_t chunkIterationsN_ = 0;
    std::uint64_t handoversN_ = 0;
    std::uint64_t handoverBytesN_ = 0;
    double handoverLinkSeconds_ = 0.0;
};

} // namespace serve
} // namespace cxlpnm

#endif // CXLPNM_SERVE_METRICS_HH
