#include "serve/overload.hh"

#include <cmath>

namespace cxlpnm
{
namespace serve
{

void
ShedConfig::validate() const
{
    if (queueTimeoutSeconds < 0.0)
        throw OverloadConfigError(
            "shed: queueTimeoutSeconds must be >= 0");
    if (!(estimateMargin >= 1.0))
        throw OverloadConfigError(
            "shed: estimateMargin must be >= 1.0");
}

void
BrownoutConfig::validate() const
{
    if (queueLowWatermark >= queueHighWatermark)
        throw OverloadConfigError(
            "brownout: queueLowWatermark must be below "
            "queueHighWatermark");
    if (sustainIterations == 0)
        throw OverloadConfigError(
            "brownout: sustainIterations must be >= 1");
    if (maxLevel == 0)
        throw OverloadConfigError("brownout: maxLevel must be >= 1");
    if (!(contextCapFactor > 0.0) || contextCapFactor >= 1.0)
        throw OverloadConfigError(
            "brownout: contextCapFactor must be in (0, 1)");
    if (!(batchCapFactor > 0.0) || batchCapFactor >= 1.0)
        throw OverloadConfigError(
            "brownout: batchCapFactor must be in (0, 1)");
}

BrownoutController::BrownoutController(const BrownoutConfig &cfg)
    : cfg_(cfg)
{
    if (cfg_.enabled)
        cfg_.validate();
}

bool
BrownoutController::observe(std::uint64_t queue_depth)
{
    if (!cfg_.enabled)
        return false;
    if (queue_depth >= cfg_.queueHighWatermark) {
        lowStreak_ = 0;
        if (++highStreak_ >= cfg_.sustainIterations) {
            highStreak_ = 0;
            if (level_ < cfg_.maxLevel) {
                ++level_;
                return true;
            }
        }
    } else if (queue_depth <= cfg_.queueLowWatermark) {
        highStreak_ = 0;
        if (++lowStreak_ >= cfg_.sustainIterations) {
            lowStreak_ = 0;
            if (level_ > 0) {
                --level_;
                return true;
            }
        }
    } else {
        // Between watermarks: neither pressure nor relief; both
        // streaks reset so the ladder only moves on sustained signal.
        highStreak_ = 0;
        lowStreak_ = 0;
    }
    return false;
}

std::uint64_t
BrownoutController::contextCap(std::uint64_t base) const
{
    if (!cfg_.enabled || level_ == 0)
        return base;
    const double f = std::pow(cfg_.contextCapFactor,
                              static_cast<double>(level_));
    const auto cap = static_cast<std::uint64_t>(
        static_cast<double>(base) * f);
    return cap > 0 ? cap : 1;
}

std::uint64_t
BrownoutController::batchCap(std::uint64_t base) const
{
    if (!cfg_.enabled || level_ == 0)
        return base;
    const double f = std::pow(cfg_.batchCapFactor,
                              static_cast<double>(level_));
    const auto cap = static_cast<std::uint64_t>(
        static_cast<double>(base) * f);
    return cap > 0 ? cap : 1;
}

} // namespace serve
} // namespace cxlpnm
