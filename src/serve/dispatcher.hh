/**
 * @file
 * Appliance-level serving: one scheduler per data-parallel device
 * group of the §VIII-A parallelism plan, with arrivals routed to the
 * group holding the least outstanding work (tokens yet to compute).
 * Model-parallel groups share a cost model calibrated at the tensor
 * shard plus d2d reduction costs.
 */

#ifndef CXLPNM_SERVE_DISPATCHER_HH
#define CXLPNM_SERVE_DISPATCHER_HH

#include <memory>
#include <string>
#include <vector>

#include "core/inference_engine.hh"
#include "cxl/link.hh"
#include "serve/admission.hh"
#include "serve/breaker.hh"
#include "serve/scheduler.hh"

namespace cxlpnm
{
namespace serve
{

/** Routes one arrival stream across data-parallel model instances. */
class ApplianceDispatcher
{
  public:
    /**
     * @param cost  Cost model of ONE group (already calibrated at
     *              tensor shard plan.modelParallel, comm included).
     * @param kv_capacity_bytes  KV pool of one group.
     */
    ApplianceDispatcher(const llm::ModelConfig &model,
                        const BatchCostModel &cost,
                        const core::ParallelismPlan &plan,
                        std::uint64_t kv_capacity_bytes,
                        const SchedulerConfig &cfg,
                        ServeMetrics &metrics);

    /**
     * Attach fault injection: each group g polls the site
     * "<prefix>.group<g>.iteration" once per batch iteration
     * (kind IterationFail). Degraded groups are routed around.
     */
    void attachFaultInjector(fault::FaultInjector *inj,
                             const std::string &prefix);

    /**
     * Attach a tracer appliance-wide: a "<prefix>.dispatch" routing
     * track plus per-group scheduler tracks ("<prefix>.group<g>.…").
     * Null detaches.
     */
    void attachTracer(trace::Tracer *t, const std::string &prefix);

    /**
     * Arm overload protection at the appliance front door: a
     * per-tenant token-bucket admission gate ahead of routing, plus
     * one circuit breaker per device group layered on the degraded
     * routing. Either half may be disabled via its enabled flag.
     * Call before the first submit. @throws OverloadConfigError.
     */
    void configureOverload(const AdmissionConfig &admission,
                           const CircuitBreakerConfig &breaker);

    /**
     * Disaggregated prefill/decode: groups [0, prefillGroups) run
     * prefill only and hand each request over at its first token;
     * the dispatcher prices the KV handover over the CXL link and
     * resubmits the request to a decode group at the link-delayed
     * ready time. Off (enabled=false) keeps the monolithic routing
     * bit-identical. Call before the first submit.
     */
    struct DisaggConfig
    {
        bool enabled = false;
        /** Groups [0, prefillGroups) prefill, the rest decode. */
        std::size_t prefillGroups = 1;
        /** Link the KV handover transfers are priced against. */
        cxl::CxlLinkParams link;
    };

    void configureDisagg(const DisaggConfig &cfg);
    bool disaggConfigured() const { return disagg_.enabled; }

    /** Advance every group to the arrival, then route it by
     *  (healthy first, most cached prefix tokens, least outstanding
     *  work, lowest group index). The cache-affinity term is only
     *  non-zero under paged prefix caching, where it keeps a prefix
     *  group's requests landing on the scheduler already holding
     *  their shared blocks; otherwise routing is pure least-load. */
    void submit(const ServeRequest &req);

    /**
     * Advance every group to @p t without submitting anything (the
     * cluster router's way of keeping idle appliances' clocks - and
     * hence their load probes - comparable across a fleet). Pumps
     * pending disaggregation handoffs first, exactly as submit does.
     */
    void advanceTo(double t);

    /** Drain every group. */
    void drain();

    /** The appliance finishes when its slowest group does. */
    double clockSeconds() const;

    std::size_t groupCount() const { return groups_.size(); }
    const BatchScheduler &group(std::size_t i) const
    {
        return *groups_[i];
    }

    /** Admission gate, or null when not configured. */
    const AdmissionController *admission() const
    {
        return admission_.get();
    }
    /** Group @p i's breaker, or null when breakers are off. */
    const CircuitBreaker *breaker(std::size_t i) const
    {
        return i < breakers_.size() ? breakers_[i].get() : nullptr;
    }
    /** Requests refused at the admission gate, in arrival order. */
    const std::vector<ServeRequest> &rejectedByAdmission() const
    {
        return rejectedByAdmission_;
    }

    /**
     * Route group @p i's iteration pricing through @p pricer
     * (serve/calibration); null restores the built-in cost model.
     * Per-group so a mixed appliance keeps one group cycle-accurate
     * while the rest fast-forward. Non-owning.
     */
    void
    setPricer(std::size_t i, const IterationPricer *pricer)
    {
        groups_.at(i)->setPricer(pricer);
    }

    /** Per-group warm state, for snapshot/restore (serve/snapshot).
     *  Restore requires an identically configured dispatcher. */
    std::vector<SchedulerState>
    state() const
    {
        std::vector<SchedulerState> s;
        s.reserve(groups_.size());
        for (const auto &g : groups_)
            s.push_back(g->state());
        return s;
    }

    void restore(const std::vector<SchedulerState> &s);

    /** Front-door warm state (admission buckets, breakers, refused
     *  requests), for snapshot/restore alongside the group states. */
    struct OverloadState
    {
        AdmissionController::State admission;
        std::vector<CircuitBreaker::State> breakers;
        std::vector<ServeRequest> rejected;
    };

    OverloadState overloadState() const;
    void restoreOverload(const OverloadState &s);
    bool overloadConfigured() const
    {
        return admission_ != nullptr || !breakers_.empty();
    }

    /** Disaggregation warm state (cumulative handover traffic), for
     *  snapshot/restore alongside the group states. */
    struct DisaggState
    {
        cxl::TransferAccount traffic;
        std::uint64_t handovers = 0;
        double linkSeconds = 0.0;
    };

    DisaggState disaggState() const;
    void restoreDisagg(const DisaggState &s);

    /** Cumulative KV handover traffic over the CXL link. */
    const cxl::TransferAccount &handoverTraffic() const
    {
        return handoverTraffic_;
    }

  private:
    /** Credit breaker trips to metrics since the last check. */
    void noteBreakerTrips();

    /**
     * Collect finished prefills from the prefill groups, price each
     * KV handover over the CXL link, and resubmit to the best decode
     * group at the link-delayed ready time. Returns the number of
     * requests moved; no-op when disaggregation is off.
     */
    std::size_t pumpHandoffs();

    std::vector<std::unique_ptr<BatchScheduler>> groups_;
    ServeMetrics &metrics_;
    llm::ModelConfig model_;

    /** Disaggregated prefill/decode (off by default). */
    DisaggConfig disagg_;
    cxl::TransferAccount handoverTraffic_;
    std::uint64_t handoversN_ = 0;
    double handoverLinkSeconds_ = 0.0;

    /** Overload front door (both null/empty until configured). */
    std::unique_ptr<AdmissionController> admission_;
    std::vector<std::unique_ptr<CircuitBreaker>> breakers_;
    std::vector<ServeRequest> rejectedByAdmission_;
    std::vector<std::uint64_t> creditedOpens_;

    /** Tracing (null = off, the default). */
    trace::Tracer *tracer_ = nullptr;
    trace::TrackId routeTrack_ = trace::InvalidTrack;
};

} // namespace serve
} // namespace cxlpnm

#endif // CXLPNM_SERVE_DISPATCHER_HH
