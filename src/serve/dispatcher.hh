/**
 * @file
 * Appliance-level serving: one scheduler per data-parallel device
 * group of the §VIII-A parallelism plan, with arrivals routed to the
 * group holding the least outstanding work (tokens yet to compute).
 * Model-parallel groups share a cost model calibrated at the tensor
 * shard plus d2d reduction costs.
 */

#ifndef CXLPNM_SERVE_DISPATCHER_HH
#define CXLPNM_SERVE_DISPATCHER_HH

#include <memory>
#include <string>
#include <vector>

#include "core/inference_engine.hh"
#include "serve/scheduler.hh"

namespace cxlpnm
{
namespace serve
{

/** Routes one arrival stream across data-parallel model instances. */
class ApplianceDispatcher
{
  public:
    /**
     * @param cost  Cost model of ONE group (already calibrated at
     *              tensor shard plan.modelParallel, comm included).
     * @param kv_capacity_bytes  KV pool of one group.
     */
    ApplianceDispatcher(const llm::ModelConfig &model,
                        const BatchCostModel &cost,
                        const core::ParallelismPlan &plan,
                        std::uint64_t kv_capacity_bytes,
                        const SchedulerConfig &cfg,
                        ServeMetrics &metrics);

    /**
     * Attach fault injection: each group g polls the site
     * "<prefix>.group<g>.iteration" once per batch iteration
     * (kind IterationFail). Degraded groups are routed around.
     */
    void attachFaultInjector(fault::FaultInjector *inj,
                             const std::string &prefix);

    /**
     * Attach a tracer appliance-wide: a "<prefix>.dispatch" routing
     * track plus per-group scheduler tracks ("<prefix>.group<g>.…").
     * Null detaches.
     */
    void attachTracer(trace::Tracer *t, const std::string &prefix);

    /** Advance every group to the arrival, then route it by
     *  (healthy first, most cached prefix tokens, least outstanding
     *  work, lowest group index). The cache-affinity term is only
     *  non-zero under paged prefix caching, where it keeps a prefix
     *  group's requests landing on the scheduler already holding
     *  their shared blocks; otherwise routing is pure least-load. */
    void submit(const ServeRequest &req);

    /** Drain every group. */
    void drain();

    /** The appliance finishes when its slowest group does. */
    double clockSeconds() const;

    std::size_t groupCount() const { return groups_.size(); }
    const BatchScheduler &group(std::size_t i) const
    {
        return *groups_[i];
    }

    /**
     * Route group @p i's iteration pricing through @p pricer
     * (serve/calibration); null restores the built-in cost model.
     * Per-group so a mixed appliance keeps one group cycle-accurate
     * while the rest fast-forward. Non-owning.
     */
    void
    setPricer(std::size_t i, const IterationPricer *pricer)
    {
        groups_.at(i)->setPricer(pricer);
    }

    /** Per-group warm state, for snapshot/restore (serve/snapshot).
     *  Restore requires an identically configured dispatcher. */
    std::vector<SchedulerState>
    state() const
    {
        std::vector<SchedulerState> s;
        s.reserve(groups_.size());
        for (const auto &g : groups_)
            s.push_back(g->state());
        return s;
    }

    void restore(const std::vector<SchedulerState> &s);

  private:
    std::vector<std::unique_ptr<BatchScheduler>> groups_;

    /** Tracing (null = off, the default). */
    trace::Tracer *tracer_ = nullptr;
    trace::TrackId routeTrack_ = trace::InvalidTrack;
};

} // namespace serve
} // namespace cxlpnm

#endif // CXLPNM_SERVE_DISPATCHER_HH
