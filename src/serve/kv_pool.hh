/**
 * @file
 * KV-cache capacity accounting for one model instance. The pool holds
 * the device memory left after the weights and gates admission: a
 * request joins the running batch only when its worst-case KV
 * footprint still fits, so a batch can never outgrow the module
 * (the paper's LPDDR5X capacity headroom vs. HBM, Table I / §V-A).
 */

#ifndef CXLPNM_SERVE_KV_POOL_HH
#define CXLPNM_SERVE_KV_POOL_HH

#include <cstdint>

namespace cxlpnm
{
namespace serve
{

/** One-call counter snapshot (metrics consumers). */
struct KvPoolStats
{
    std::uint64_t capacityBytes = 0;
    std::uint64_t reservedBytes = 0;
    std::uint64_t peakReservedBytes = 0;
};

/** Byte-granular reservation tracker against a fixed capacity. */
class KvCachePool
{
  public:
    explicit KvCachePool(std::uint64_t capacity_bytes);

    std::uint64_t capacityBytes() const { return capacity_; }
    std::uint64_t reservedBytes() const { return reserved_; }
    std::uint64_t peakReservedBytes() const { return peakReserved_; }

    /** All counters in one consistent snapshot. */
    KvPoolStats
    stats() const
    {
        return {capacity_, reserved_, peakReserved_};
    }

    /** Warm-state restore from a stats() snapshot; the capacity must
     *  match this pool's (it is configuration, not state). */
    void
    restore(const KvPoolStats &s)
    {
        reserved_ = s.reservedBytes;
        peakReserved_ = s.peakReservedBytes;
    }

    /** Would a reservation of @p bytes still fit? */
    bool
    canReserve(std::uint64_t bytes) const
    {
        return bytes <= capacity_ - reserved_;
    }

    /**
     * Check-and-reserve in one step: reserve @p bytes when they fit
     * and return true, leave the pool untouched otherwise. Callers
     * gating admission use this instead of a canReserve()/reserve()
     * pair, so there is no window for the two to disagree.
     */
    bool tryReserve(std::uint64_t bytes);

    /** Reserve @p bytes; fatal when the pool would overflow. */
    void reserve(std::uint64_t bytes);

    /** Return @p bytes; fatal when more is released than reserved. */
    void release(std::uint64_t bytes);

    double
    utilization() const
    {
        return capacity_ ? static_cast<double>(reserved_) / capacity_
                         : 0.0;
    }

    double
    peakUtilization() const
    {
        return capacity_
            ? static_cast<double>(peakReserved_) / capacity_
            : 0.0;
    }

  private:
    std::uint64_t capacity_;
    std::uint64_t reserved_ = 0;
    std::uint64_t peakReserved_ = 0;
};

} // namespace serve
} // namespace cxlpnm

#endif // CXLPNM_SERVE_KV_POOL_HH
