#include "serve/prefix_cache.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace cxlpnm
{
namespace serve
{

PrefixCache::~PrefixCache()
{
    clear();
}

std::uint64_t
PrefixCache::chainHash(std::uint64_t parent, std::uint64_t key)
{
    // SplitMix64 finalizer over the combined state: collision odds are
    // ~2^-64 per pair, negligible against the simulator's block counts.
    std::uint64_t z = parent + 0x9e3779b97f4a7c15ull + key;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return z == 0 ? 1 : z; // 0 is the root sentinel
}

std::uint64_t
PrefixCache::tailHash(std::uint64_t parent, std::uint64_t tail_key,
                      std::uint64_t partial_tokens)
{
    // Distinct namespace from full-block children of the same node.
    // The tail block's content key must participate: prefixes shorter
    // than one block hang their tail off the root, where the parent
    // hash alone no longer distinguishes prefix groups.
    return chainHash(chainHash(parent ^ 0xa5a5a5a5a5a5a5a5ull,
                               tail_key),
                     partial_tokens);
}

PrefixCache::Match
PrefixCache::lookup(const std::vector<std::uint64_t> &keys,
                    std::uint64_t partial_tokens, std::uint64_t tail_key)
{
    Match m;
    std::uint64_t node = 0;
    for (std::uint64_t key : keys) {
        const std::uint64_t h = chainHash(node, key);
        auto it = entries_.find(h);
        if (it == entries_.end())
            break;
        it->second.lastUse = ++seq_;
        mgr_.addRef(it->second.block);
        m.blocks.push_back(it->second.block);
        node = h;
    }
    // The partial tail only continues a fully matched chain.
    if (partial_tokens > 0 && m.blocks.size() == keys.size()) {
        auto it = entries_.find(tailHash(node, tail_key,
                                         partial_tokens));
        if (it != entries_.end()) {
            it->second.lastUse = ++seq_;
            m.partialTokens = partial_tokens;
        }
    }
    return m;
}

std::uint64_t
PrefixCache::peekCachedTokens(const std::vector<std::uint64_t> &keys,
                              std::uint64_t partial_tokens,
                              std::uint64_t tail_key,
                              std::uint64_t block_tokens) const
{
    std::uint64_t node = 0;
    std::uint64_t matched = 0;
    for (std::uint64_t key : keys) {
        const auto it = entries_.find(chainHash(node, key));
        if (it == entries_.end())
            break;
        ++matched;
        node = it->first;
    }
    std::uint64_t tokens = matched * block_tokens;
    if (partial_tokens > 0 && matched == keys.size() &&
        entries_.count(tailHash(node, tail_key, partial_tokens)))
        tokens += partial_tokens;
    return tokens;
}

void
PrefixCache::insert(const std::vector<std::uint64_t> &keys,
                    const std::vector<BlockId> &blocks,
                    std::uint64_t partial_tokens, std::uint64_t tail_key,
                    BlockId partial_donor)
{
    panic_if(blocks.size() < keys.size(),
             "prefix-cache insert with fewer blocks than keys");
    std::uint64_t node = 0;
    for (std::size_t i = 0; i < keys.size(); ++i) {
        const std::uint64_t h = chainHash(node, keys[i]);
        auto it = entries_.find(h);
        if (it == entries_.end()) {
            Entry e;
            e.block = blocks[i];
            e.parent = node;
            e.lastUse = ++seq_;
            mgr_.addRef(e.block);
            entries_.emplace(h, e);
            if (node != 0)
                ++entries_.at(node).children;
            ++insertions_;
        } else {
            it->second.lastUse = ++seq_;
        }
        node = h;
    }
    if (partial_tokens > 0 && partial_donor != InvalidBlock) {
        const std::uint64_t h = tailHash(node, tail_key,
                                         partial_tokens);
        auto it = entries_.find(h);
        if (it == entries_.end()) {
            Entry e;
            e.block = partial_donor;
            e.parent = node;
            e.lastUse = ++seq_;
            e.partialTail = true;
            mgr_.addRef(e.block);
            entries_.emplace(h, e);
            if (node != 0)
                ++entries_.at(node).children;
            ++insertions_;
        } else {
            it->second.lastUse = ++seq_;
        }
    }
}

bool
PrefixCache::evictOne()
{
    // Min over (lastUse, hash): lastUse values are unique, so the
    // choice never depends on hash-map iteration order.
    std::uint64_t best_hash = 0;
    std::uint64_t best_use = ~0ull;
    for (const auto &[h, e] : entries_) {
        if (e.children != 0 || mgr_.refCount(e.block) != 1)
            continue;
        if (evictGuard_ && !evictGuard_(e.block))
            continue;
        if (e.lastUse < best_use) {
            best_use = e.lastUse;
            best_hash = h;
        }
    }
    if (best_hash == 0)
        return false;

    const Entry victim = entries_.at(best_hash);
    entries_.erase(best_hash);
    if (victim.parent != 0) {
        auto parent = entries_.find(victim.parent);
        panic_if(parent == entries_.end(),
                 "prefix-cache entry with a vanished parent");
        --parent->second.children;
    }
    mgr_.release(victim.block);
    ++evictions_;
    return true;
}

void
PrefixCache::clear()
{
    for (const auto &[h, e] : entries_)
        mgr_.release(e.block);
    entries_.clear();
}

PrefixCache::State
PrefixCache::state() const
{
    State s;
    s.entries.reserve(entries_.size());
    for (const auto &[h, e] : entries_)
        s.entries.push_back(EntryState{h, e.block, e.parent,
                                       e.children, e.lastUse,
                                       e.partialTail});
    std::sort(s.entries.begin(), s.entries.end(),
              [](const EntryState &a, const EntryState &b) {
                  return a.hash < b.hash;
              });
    s.seq = seq_;
    s.evictions = evictions_;
    s.insertions = insertions_;
    return s;
}

void
PrefixCache::restore(const State &s)
{
    entries_.clear();
    for (const EntryState &e : s.entries) {
        Entry entry;
        entry.block = e.block;
        entry.parent = e.parent;
        entry.children = e.children;
        entry.lastUse = e.lastUse;
        entry.partialTail = e.partialTail;
        const bool fresh = entries_.emplace(e.hash, entry).second;
        fatal_if(!fresh, "prefix-cache restore: duplicate entry hash");
    }
    seq_ = s.seq;
    evictions_ = s.evictions;
    insertions_ = s.insertions;
}

} // namespace serve
} // namespace cxlpnm
