#include "serve/breaker.hh"

#include <algorithm>
#include <cstdio>

#include "sim/random.hh"

namespace cxlpnm
{
namespace serve
{

void
CircuitBreakerConfig::validate() const
{
    if (windowSize == 0)
        throw OverloadConfigError("breaker: windowSize must be >= 1");
    if (failureThreshold == 0 || failureThreshold > windowSize)
        throw OverloadConfigError(
            "breaker: failureThreshold must be in [1, windowSize]");
    if (latencyThresholdSeconds < 0.0)
        throw OverloadConfigError(
            "breaker: latencyThresholdSeconds must be >= 0");
    if (!(backoffBaseSeconds > 0.0))
        throw OverloadConfigError(
            "breaker: backoffBaseSeconds must be > 0");
    if (backoffMaxSeconds < backoffBaseSeconds)
        throw OverloadConfigError(
            "breaker: backoffMaxSeconds must be >= "
            "backoffBaseSeconds");
    if (jitterFraction < 0.0 || jitterFraction >= 1.0)
        throw OverloadConfigError(
            "breaker: jitterFraction must be in [0, 1)");
}

const char *
breakerStateName(BreakerState s)
{
    switch (s) {
    case BreakerState::Closed:
        return "closed";
    case BreakerState::Open:
        return "open";
    case BreakerState::HalfOpen:
        return "half_open";
    }
    return "?";
}

CircuitBreaker::CircuitBreaker(const CircuitBreakerConfig &cfg,
                               std::uint64_t group)
    : cfg_(cfg), group_(group)
{
    if (cfg_.enabled)
        cfg_.validate();
}

void
CircuitBreaker::transition(BreakerState to, double now,
                           const char *why)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "g%llu t=%.9g %s->%s %s\n",
                  static_cast<unsigned long long>(group_), now,
                  breakerStateName(state_), breakerStateName(to),
                  why);
    log_ += buf;
    state_ = to;
}

double
CircuitBreaker::backoffSeconds() const
{
    double b = cfg_.backoffBaseSeconds;
    for (std::uint64_t i = 1; i < openCount_; ++i) {
        b *= 2.0;
        if (b >= cfg_.backoffMaxSeconds)
            return cfg_.backoffMaxSeconds;
    }
    return std::min(b, cfg_.backoffMaxSeconds);
}

void
CircuitBreaker::trip(double now, const char *why)
{
    ++openCount_;
    ++trips_;
    const double backoff = backoffSeconds();
    // Deterministic jitter: a pure function of (seed, group, trip
    // ordinal), so co-tripped groups reopen staggered yet every
    // rerun — at any thread count — lands the same instant.
    SplitMix64 jrng(cfg_.seed ^
                    (group_ * 0x9e3779b97f4a7c15ull + openCount_));
    const double jitter =
        cfg_.jitterFraction * backoff * jrng.nextDouble();
    reopenAt_ = now + backoff + jitter;
    window_.clear();
    badInWindow_ = 0;
    probeOutstanding_ = false;
    transition(BreakerState::Open, now, why);
}

void
CircuitBreaker::noteIteration(bool ok, double dur_seconds,
                              double now)
{
    if (!cfg_.enabled)
        return;
    const bool breach = cfg_.latencyThresholdSeconds > 0.0 &&
        dur_seconds > cfg_.latencyThresholdSeconds;
    const bool bad = !ok || breach;
    switch (state_) {
    case BreakerState::Open:
        // Pre-trip batch members still draining; their outcomes do
        // not score (the window restarted at the trip).
        return;
    case BreakerState::HalfOpen:
        // The first outcome after the probe was dispatched decides.
        probeOutstanding_ = false;
        if (bad) {
            trip(now, ok ? "probe_latency_breach" : "probe_failed");
        } else {
            window_.clear();
            badInWindow_ = 0;
            openCount_ = 0;
            transition(BreakerState::Closed, now, "probe_ok");
        }
        return;
    case BreakerState::Closed:
        window_.push_back(bad ? 1 : 0);
        badInWindow_ += bad ? 1 : 0;
        if (window_.size() > cfg_.windowSize) {
            badInWindow_ -= window_.front();
            window_.pop_front();
        }
        if (badInWindow_ >= cfg_.failureThreshold) {
            char why[64];
            std::snprintf(why, sizeof(why), "fails=%llu/%llu",
                          static_cast<unsigned long long>(
                              badInWindow_),
                          static_cast<unsigned long long>(
                              cfg_.windowSize));
            trip(now, why);
        }
        return;
    }
}

bool
CircuitBreaker::allowRoute(double now)
{
    if (!cfg_.enabled)
        return true;
    switch (state_) {
    case BreakerState::Closed:
        return true;
    case BreakerState::Open:
        if (now >= reopenAt_) {
            transition(BreakerState::HalfOpen, now,
                       "backoff_expired");
            probeOutstanding_ = true;
            return true;
        }
        return false;
    case BreakerState::HalfOpen:
        // Exactly one probe: refuse everything until it resolves.
        if (!probeOutstanding_) {
            probeOutstanding_ = true;
            return true;
        }
        return false;
    }
    return true;
}

bool
CircuitBreaker::wouldAllow(double now) const
{
    if (!cfg_.enabled)
        return true;
    switch (state_) {
    case BreakerState::Closed:
        return true;
    case BreakerState::Open:
        return now >= reopenAt_;
    case BreakerState::HalfOpen:
        return !probeOutstanding_;
    }
    return true;
}

CircuitBreaker::State
CircuitBreaker::snapshotState() const
{
    State s;
    s.state = static_cast<int>(state_);
    s.openCount = openCount_;
    s.trips = trips_;
    s.reopenAt = reopenAt_;
    s.probeOutstanding = probeOutstanding_;
    s.window.assign(window_.begin(), window_.end());
    return s;
}

void
CircuitBreaker::restore(const State &s)
{
    fatal_if(s.state < 0 ||
                 s.state > static_cast<int>(BreakerState::HalfOpen),
             "breaker restore: state out of range");
    state_ = static_cast<BreakerState>(s.state);
    openCount_ = s.openCount;
    trips_ = s.trips;
    reopenAt_ = s.reopenAt;
    probeOutstanding_ = s.probeOutstanding;
    window_.assign(s.window.begin(), s.window.end());
    badInWindow_ = 0;
    for (const auto b : window_)
        badInWindow_ += b;
}

} // namespace serve
} // namespace cxlpnm
