/**
 * @file
 * Front-door admission control for the appliance dispatcher: a
 * per-tenant token-bucket rate limiter plus appliance-wide
 * queue-depth and KV-headroom gates. Requests turned away here never
 * reach a scheduler queue — under sustained overload that keeps the
 * queues short enough for the admitted requests to still meet their
 * SLOs. All decisions are pure functions of the request, the
 * simulated clock and the controller's own state, so admission is
 * byte-deterministic regardless of the host thread count.
 */

#ifndef CXLPNM_SERVE_ADMISSION_HH
#define CXLPNM_SERVE_ADMISSION_HH

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "serve/overload.hh"
#include "serve/request.hh"

namespace cxlpnm
{
namespace serve
{

/** Front-door admission policy (see file comment). */
struct AdmissionConfig
{
    bool enabled = false;

    /**
     * Per-tenant sustained request rate (requests/sec) enforced by a
     * token bucket; 0 leaves tenants unlimited.
     */
    double tenantRatePerSec = 0.0;
    /** Bucket capacity: burst headroom above the sustained rate. */
    double tenantBurst = 8.0;

    /**
     * Turn arrivals away while the appliance already holds this many
     * queued-but-not-running requests; 0 disables the gate.
     */
    std::uint64_t maxQueueDepth = 0;

    /**
     * Turn arrivals away while outstanding worst-case KV demand
     * (queued + running, as a fraction of aggregate pool capacity)
     * exceeds this; 0 disables the gate.
     */
    double kvHeadroomFraction = 0.0;

    /** @throws OverloadConfigError on out-of-range fields. */
    void validate() const;
};

/**
 * Continuous-time token bucket: refills at ratePerSec up to burst,
 * one token per admitted request.
 */
class TokenBucket
{
  public:
    TokenBucket() = default;
    TokenBucket(double rate_per_sec, double burst);

    /**
     * Refill to @p now, then take one token when available. Returns
     * false (and takes nothing) when the bucket is empty.
     */
    bool tryTake(double now);

    double fill() const { return fill_; }
    double lastRefillSeconds() const { return lastRefill_; }

    /** Warm state (fill level + refill clock), for snapshot. */
    struct State
    {
        double fill = 0.0;
        double lastRefill = 0.0;
    };

    State state() const { return {fill_, lastRefill_}; }

    void
    restore(const State &s)
    {
        fill_ = s.fill;
        lastRefill_ = s.lastRefill;
    }

  private:
    double rate_ = 0.0;
    double burst_ = 0.0;
    double fill_ = 0.0;
    double lastRefill_ = 0.0;
};

/** Why the admission controller turned a request away. */
enum class AdmissionDecision
{
    Admit,       // passed every gate
    Throttled,   // tenant token bucket empty
    QueueFull,   // appliance queue depth over the gate
    KvSaturated, // outstanding worst-case KV demand over the gate
};

const char *admissionDecisionName(AdmissionDecision d);

/**
 * The appliance's front door. The dispatcher consults it once per
 * arrival, before routing; a non-Admit decision terminates the
 * request as Rejected without it ever entering a scheduler queue.
 */
class AdmissionController
{
  public:
    explicit AdmissionController(const AdmissionConfig &cfg);

    /**
     * Decide @p req at time @p now. @p queue_depth is the total
     * queued (not running) request count across every group;
     * @p kv_demand_fraction is outstanding worst-case KV bytes over
     * aggregate capacity. Mutates the tenant's bucket on every call
     * (a throttled request still consumed its refill window).
     */
    AdmissionDecision decide(const ServeRequest &req, double now,
                             std::uint64_t queue_depth,
                             double kv_demand_fraction);

    const AdmissionConfig &config() const { return cfg_; }

    /** Per-tenant bucket states, tenant-sorted (deterministic). */
    struct State
    {
        std::vector<std::pair<std::uint64_t, TokenBucket::State>>
            buckets;
    };

    State state() const;
    void restore(const State &s);

  private:
    AdmissionConfig cfg_;
    /** Ordered by tenant id so state() is registration-order-free. */
    std::map<std::uint64_t, TokenBucket> buckets_;
};

} // namespace serve
} // namespace cxlpnm

#endif // CXLPNM_SERVE_ADMISSION_HH
