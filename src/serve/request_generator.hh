/**
 * @file
 * Synthetic arrival streams for the serving simulator: Poisson or
 * fixed-rate inter-arrival gaps with per-request input/output token
 * lengths drawn from configurable distributions. Fully deterministic
 * under a seed (SplitMix64, see sim/random.hh).
 */

#ifndef CXLPNM_SERVE_REQUEST_GENERATOR_HH
#define CXLPNM_SERVE_REQUEST_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "serve/request.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace cxlpnm
{
namespace serve
{

/**
 * A trace configuration that can never be served: thrown by
 * TraceConfig::validate() so drivers can reject a bad workload with a
 * message instead of the scheduler hitting a fatal mid-run (a
 * 1M-token prompt against a pool sized for 128k fails here, not a
 * thousand simulated seconds in).
 */
class TraceConfigError : public FatalError
{
  public:
    using FatalError::FatalError;
};

/** How inter-arrival gaps are drawn. */
enum class ArrivalProcess
{
    Poisson, // exponential gaps, the classic open-loop service model
    Fixed,   // constant gaps (a perfectly paced load generator)
    Bursty,  // Markov-modulated on/off Poisson (two-phase MMPP):
             // exponential ON/OFF dwell times, full rate while ON,
             // a configurable fraction of it while OFF
};

/** How a per-request token length is drawn. */
struct LengthDistribution
{
    enum class Kind
    {
        Fixed,   // always lo
        Uniform, // integer uniform over [lo, hi]
        Bimodal, // lo with probability pLo, else hi (chat vs. document)
    };

    Kind kind = Kind::Fixed;
    std::uint64_t lo = 64;
    std::uint64_t hi = 64;
    double pLo = 0.5; // Bimodal only

    static LengthDistribution fixed(std::uint64_t n);
    static LengthDistribution uniform(std::uint64_t lo, std::uint64_t hi);
    static LengthDistribution bimodal(std::uint64_t lo, std::uint64_t hi,
                                      double p_lo);

    /** Largest value the distribution can produce. */
    std::uint64_t max() const;

    std::uint64_t draw(SplitMix64 &rng) const;
};

/** Everything describing one synthetic request trace. */
struct TraceConfig
{
    ArrivalProcess arrivals = ArrivalProcess::Poisson;
    /** Mean arrival rate, requests per second (> 0). */
    double requestsPerSec = 1.0;
    std::size_t numRequests = 128;
    LengthDistribution input = LengthDistribution::fixed(64);
    LengthDistribution output = LengthDistribution::fixed(256);
    std::uint64_t seed = 1;

    /**
     * Shared-prefix workload mode (system prompts / few-shot headers
     * reused across requests - what prefix caching exploits). Each
     * request joins one of prefixGroups shared prompts with
     * probability prefixReuse; its first min(prefixTokens, input)
     * prompt tokens are then identical to every other member of that
     * group. 0 (the default) disables the mode and leaves the RNG
     * stream - hence every pre-existing trace - bit-identical.
     */
    double prefixReuse = 0.0;
    std::size_t prefixGroups = 4;
    std::uint64_t prefixTokens = 32;

    /**
     * Long-context workload mode (the 128k-1M-token regime the tiered
     * KV cache exists for). When on, prompt lengths are drawn integer
     * uniform over [longCtxMinTokens, longCtxMaxTokens], overriding
     * `input`; decode lengths still come from `output`. Off (the
     * default) leaves the RNG stream - hence every pre-existing trace
     * - bit-identical.
     */
    bool longContext = false;
    std::uint64_t longCtxMinTokens = 131072;
    std::uint64_t longCtxMaxTokens = 131072;

    /**
     * Bursty (MMPP) arrival parameters, used only when
     * arrivals == ArrivalProcess::Bursty. The stream alternates
     * between an ON phase (Poisson at requestsPerSec) and an OFF
     * phase (Poisson at requestsPerSec * burstOffRateFraction; 0
     * makes the OFF phase silent). Phase dwell times are exponential
     * with the given means; burstOffSeconds = 0 degenerates to pure
     * Poisson. The phase draws only happen in bursty mode, so every
     * pre-existing trace keeps its RNG stream bit-identical.
     */
    double burstOnSeconds = 1.0;
    double burstOffSeconds = 1.0;
    double burstOffRateFraction = 0.0;

    /**
     * Multi-tenant mode: each request is stamped with a tenant id
     * drawn uniformly from [0, numTenants). The draw only happens
     * when numTenants > 1, so the default single-tenant stream is
     * bit-identical to pre-existing traces.
     */
    std::uint64_t numTenants = 1;

    /**
     * TTFT deadline stamped on every request (seconds relative to
     * its arrival; 0 = none). Consumed by deadline-aware shedding
     * (serve/overload); no RNG draw involved.
     */
    double ttftDeadlineSeconds = 0.0;

    /** Largest prompt this config can draw. */
    std::uint64_t maxInputTokens() const;

    /**
     * Reject configurations no scheduler could serve: malformed
     * long-context bounds, prompts beyond @p max_positions, or a
     * worst-case context beyond @p total_kv_tokens (the two-tier KV
     * capacity; 0 = don't check). Throws TraceConfigError.
     */
    void validate(std::uint64_t max_positions,
                  std::uint64_t total_kv_tokens) const;
};

/** Streams one trace; arrival times are monotonically non-decreasing. */
class RequestGenerator
{
  public:
    explicit RequestGenerator(const TraceConfig &cfg);

    bool exhausted() const { return produced_ >= cfg_.numRequests; }

    /** Next request; fatal when exhausted. */
    ServeRequest next();

    /** Materialise the whole trace (convenience for benches/tests). */
    static std::vector<ServeRequest> generate(const TraceConfig &cfg);

    /** Generator progress (warm-state snapshot/restore); the config
     *  is construction-time and must match on restore. */
    struct State
    {
        std::uint64_t rngState = 0;
        std::uint64_t produced = 0;
        double clock = 0.0;
        /** Bursty (MMPP) phase progress; idle defaults otherwise. */
        bool phaseOn = true;
        double phaseEndClock = 0.0;
    };

    State
    state() const
    {
        return {rng_.state(), produced_, clock_, phaseOn_,
                phaseEndClock_};
    }

    void
    restore(const State &s)
    {
        rng_.setState(s.rngState);
        produced_ = s.produced;
        clock_ = s.clock;
        phaseOn_ = s.phaseOn;
        phaseEndClock_ = s.phaseEndClock;
    }

  private:
    /** Flip the MMPP phase and draw the new dwell time. */
    void advancePhase();

    TraceConfig cfg_;
    SplitMix64 rng_;
    std::size_t produced_ = 0;
    double clock_ = 0.0;
    bool phaseOn_ = true;
    double phaseEndClock_ = 0.0;
};

} // namespace serve
} // namespace cxlpnm

#endif // CXLPNM_SERVE_REQUEST_GENERATOR_HH
