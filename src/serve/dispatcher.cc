#include "serve/dispatcher.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace cxlpnm
{
namespace serve
{

ApplianceDispatcher::ApplianceDispatcher(
    const llm::ModelConfig &model, const BatchCostModel &cost,
    const core::ParallelismPlan &plan,
    std::uint64_t kv_capacity_bytes, const SchedulerConfig &cfg,
    ServeMetrics &metrics)
{
    fatal_if(plan.modelParallel < 1 || plan.dataParallel < 1,
             "bad parallelism plan");
    groups_.reserve(plan.dataParallel);
    for (int g = 0; g < plan.dataParallel; ++g)
        groups_.push_back(std::make_unique<BatchScheduler>(
            model, cost, kv_capacity_bytes, cfg, metrics));
}

void
ApplianceDispatcher::attachFaultInjector(fault::FaultInjector *inj,
                                         const std::string &prefix)
{
    for (std::size_t g = 0; g < groups_.size(); ++g) {
        groups_[g]->attachFaultSite(
            inj == nullptr ? nullptr
                           : inj->site(prefix + ".group" +
                                       std::to_string(g) + ".iteration"));
    }
}

void
ApplianceDispatcher::attachTracer(trace::Tracer *t,
                                  const std::string &prefix)
{
    tracer_ = t;
    routeTrack_ = t == nullptr
        ? trace::InvalidTrack
        : t->track(prefix + ".dispatch", "serve");
    for (std::size_t g = 0; g < groups_.size(); ++g)
        groups_[g]->attachTracer(
            t, prefix + ".group" + std::to_string(g));
}

void
ApplianceDispatcher::submit(const ServeRequest &req)
{
    // Bring every group up to the arrival instant so the routing
    // decision sees current load, then pick the best by (healthy,
    // cached prefix tokens, least outstanding work, lowest index). A
    // group in post-failure cooldown (degraded) is routed around
    // unless every group is degraded, in which case load wins as
    // usual. Cache affinity only discriminates under paged prefix
    // caching; otherwise every probe is 0 and routing reduces exactly
    // to least-outstanding-work.
    std::size_t best = 0;
    std::uint64_t best_tokens = ~0ull;
    std::uint64_t best_cached = 0;
    bool best_degraded = true;
    for (std::size_t g = 0; g < groups_.size(); ++g) {
        groups_[g]->advanceTo(req.arrivalSeconds);
        const std::uint64_t t = groups_[g]->outstandingTokens();
        const std::uint64_t cached = groups_[g]->probeCachedTokens(req);
        const bool degraded = groups_[g]->degradedAt(req.arrivalSeconds);
        const bool better = (!degraded && best_degraded) ||
            (degraded == best_degraded &&
             (cached > best_cached ||
              (cached == best_cached && t < best_tokens)));
        if (better) {
            best_tokens = t;
            best_cached = cached;
            best = g;
            best_degraded = degraded;
        }
    }
    if (tracer_ != nullptr)
        tracer_->instant(routeTrack_,
                         "route#" + std::to_string(req.id) + "->g" +
                             std::to_string(best),
                         secondsToTicks(req.arrivalSeconds));
    groups_[best]->submit(req);
}

void
ApplianceDispatcher::drain()
{
    for (auto &g : groups_)
        g->drain();
}

double
ApplianceDispatcher::clockSeconds() const
{
    double t = 0.0;
    for (const auto &g : groups_)
        t = std::max(t, g->clockSeconds());
    return t;
}

void
ApplianceDispatcher::restore(const std::vector<SchedulerState> &s)
{
    fatal_if(s.size() != groups_.size(),
             "dispatcher restore: state has ", s.size(),
             " groups, dispatcher has ", groups_.size());
    for (std::size_t g = 0; g < groups_.size(); ++g)
        groups_[g]->restore(s[g]);
}

} // namespace serve
} // namespace cxlpnm
