#include "serve/dispatcher.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace cxlpnm
{
namespace serve
{

ApplianceDispatcher::ApplianceDispatcher(
    const llm::ModelConfig &model, const BatchCostModel &cost,
    const core::ParallelismPlan &plan,
    std::uint64_t kv_capacity_bytes, const SchedulerConfig &cfg,
    ServeMetrics &metrics)
{
    fatal_if(plan.modelParallel < 1 || plan.dataParallel < 1,
             "bad parallelism plan");
    groups_.reserve(plan.dataParallel);
    for (int g = 0; g < plan.dataParallel; ++g)
        groups_.push_back(std::make_unique<BatchScheduler>(
            model, cost, kv_capacity_bytes, cfg, metrics));
}

void
ApplianceDispatcher::submit(const ServeRequest &req)
{
    // Bring every group up to the arrival instant so the routing
    // decision sees current load, then pick the emptiest.
    std::size_t best = 0;
    std::uint64_t best_tokens = ~0ull;
    for (std::size_t g = 0; g < groups_.size(); ++g) {
        groups_[g]->advanceTo(req.arrivalSeconds);
        const std::uint64_t t = groups_[g]->outstandingTokens();
        if (t < best_tokens) {
            best_tokens = t;
            best = g;
        }
    }
    groups_[best]->submit(req);
}

void
ApplianceDispatcher::drain()
{
    for (auto &g : groups_)
        g->drain();
}

double
ApplianceDispatcher::clockSeconds() const
{
    double t = 0.0;
    for (const auto &g : groups_)
        t = std::max(t, g->clockSeconds());
    return t;
}

} // namespace serve
} // namespace cxlpnm
