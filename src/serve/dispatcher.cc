#include "serve/dispatcher.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace cxlpnm
{
namespace serve
{

ApplianceDispatcher::ApplianceDispatcher(
    const llm::ModelConfig &model, const BatchCostModel &cost,
    const core::ParallelismPlan &plan,
    std::uint64_t kv_capacity_bytes, const SchedulerConfig &cfg,
    ServeMetrics &metrics)
    : metrics_(metrics)
{
    fatal_if(plan.modelParallel < 1 || plan.dataParallel < 1,
             "bad parallelism plan");
    groups_.reserve(plan.dataParallel);
    for (int g = 0; g < plan.dataParallel; ++g)
        groups_.push_back(std::make_unique<BatchScheduler>(
            model, cost, kv_capacity_bytes, cfg, metrics));
}

void
ApplianceDispatcher::configureOverload(
    const AdmissionConfig &admission,
    const CircuitBreakerConfig &breaker)
{
    if (admission.enabled) {
        admission.validate();
        admission_ = std::make_unique<AdmissionController>(admission);
    }
    if (breaker.enabled) {
        breaker.validate();
        breakers_.clear();
        creditedOpens_.assign(groups_.size(), 0);
        for (std::size_t g = 0; g < groups_.size(); ++g) {
            breakers_.push_back(
                std::make_unique<CircuitBreaker>(breaker, g));
            groups_[g]->setBreaker(breakers_[g].get());
        }
    }
    if (admission.enabled || breaker.enabled)
        metrics_.enableOverloadStats();
}

void
ApplianceDispatcher::attachFaultInjector(fault::FaultInjector *inj,
                                         const std::string &prefix)
{
    for (std::size_t g = 0; g < groups_.size(); ++g) {
        groups_[g]->attachFaultSite(
            inj == nullptr ? nullptr
                           : inj->site(prefix + ".group" +
                                       std::to_string(g) + ".iteration"));
    }
}

void
ApplianceDispatcher::attachTracer(trace::Tracer *t,
                                  const std::string &prefix)
{
    tracer_ = t;
    routeTrack_ = t == nullptr
        ? trace::InvalidTrack
        : t->track(prefix + ".dispatch", "serve");
    for (std::size_t g = 0; g < groups_.size(); ++g)
        groups_[g]->attachTracer(
            t, prefix + ".group" + std::to_string(g));
}

void
ApplianceDispatcher::submit(const ServeRequest &req)
{
    // Bring every group up to the arrival instant so both the
    // admission gate and the routing decision see current load.
    for (auto &g : groups_)
        g->advanceTo(req.arrivalSeconds);

    if (admission_ != nullptr) {
        std::uint64_t depth = 0;
        double kv_min = 0.0;
        for (std::size_t g = 0; g < groups_.size(); ++g) {
            depth += groups_[g]->queueDepth();
            const double f = groups_[g]->kvDemandFraction();
            kv_min = g == 0 ? f : std::min(kv_min, f);
        }
        const AdmissionDecision d = admission_->decide(
            req, req.arrivalSeconds, depth, kv_min);
        if (d != AdmissionDecision::Admit) {
            ServeRequest r = req;
            r.state = RequestState::Rejected;
            r.finishSeconds = req.arrivalSeconds;
            metrics_.noteSubmitted(r.tenant);
            metrics_.throttleRequest(r.tenant);
            if (tracer_ != nullptr)
                tracer_->instant(
                    routeTrack_,
                    std::string(admissionDecisionName(d)) + "#" +
                        std::to_string(req.id),
                    secondsToTicks(req.arrivalSeconds));
            rejectedByAdmission_.push_back(std::move(r));
            noteBreakerTrips();
            return;
        }
    }

    // Pick the best group by (healthy, cached prefix tokens, least
    // outstanding work, lowest index). A group in post-failure
    // cooldown (degraded) or behind an open breaker is routed around
    // unless every group is blocked, in which case load wins as
    // usual so the appliance never deadlocks. Cache affinity only
    // discriminates under paged prefix caching; otherwise every
    // probe is 0 and routing reduces exactly to
    // least-outstanding-work. Breaker scanning uses the side-effect-
    // free wouldAllow(); only the chosen group's breaker commits
    // (Open -> HalfOpen flip, probe slot) via allowRoute().
    std::size_t best = 0;
    std::uint64_t best_tokens = ~0ull;
    std::uint64_t best_cached = 0;
    bool best_blocked = true;
    for (std::size_t g = 0; g < groups_.size(); ++g) {
        const std::uint64_t t = groups_[g]->outstandingTokens();
        const std::uint64_t cached = groups_[g]->probeCachedTokens(req);
        bool blocked = groups_[g]->degradedAt(req.arrivalSeconds);
        if (!breakers_.empty() &&
            !breakers_[g]->wouldAllow(req.arrivalSeconds))
            blocked = true;
        const bool better = (!blocked && best_blocked) ||
            (blocked == best_blocked &&
             (cached > best_cached ||
              (cached == best_cached && t < best_tokens)));
        if (better) {
            best_tokens = t;
            best_cached = cached;
            best = g;
            best_blocked = blocked;
        }
    }
    if (!breakers_.empty())
        breakers_[best]->allowRoute(req.arrivalSeconds);
    if (tracer_ != nullptr)
        tracer_->instant(routeTrack_,
                         "route#" + std::to_string(req.id) + "->g" +
                             std::to_string(best),
                         secondsToTicks(req.arrivalSeconds));
    groups_[best]->submit(req);
    noteBreakerTrips();
}

void
ApplianceDispatcher::drain()
{
    for (auto &g : groups_)
        g->drain();
    noteBreakerTrips();
}

void
ApplianceDispatcher::noteBreakerTrips()
{
    for (std::size_t g = 0; g < breakers_.size(); ++g) {
        const std::uint64_t n = breakers_[g]->trips();
        for (std::uint64_t i = creditedOpens_[g]; i < n; ++i)
            metrics_.noteBreakerOpen();
        creditedOpens_[g] = n;
    }
}

double
ApplianceDispatcher::clockSeconds() const
{
    double t = 0.0;
    for (const auto &g : groups_)
        t = std::max(t, g->clockSeconds());
    return t;
}

void
ApplianceDispatcher::restore(const std::vector<SchedulerState> &s)
{
    fatal_if(s.size() != groups_.size(),
             "dispatcher restore: state has ", s.size(),
             " groups, dispatcher has ", groups_.size());
    for (std::size_t g = 0; g < groups_.size(); ++g)
        groups_[g]->restore(s[g]);
}

ApplianceDispatcher::OverloadState
ApplianceDispatcher::overloadState() const
{
    OverloadState s;
    if (admission_ != nullptr)
        s.admission = admission_->state();
    s.breakers.reserve(breakers_.size());
    for (const auto &b : breakers_)
        s.breakers.push_back(b->snapshotState());
    s.rejected = rejectedByAdmission_;
    return s;
}

void
ApplianceDispatcher::restoreOverload(const OverloadState &s)
{
    fatal_if(!s.admission.buckets.empty() && admission_ == nullptr,
             "overload restore: state has admission buckets but the "
             "dispatcher has no admission gate; reconfigure first");
    fatal_if(!s.breakers.empty() &&
                 s.breakers.size() != breakers_.size(),
             "overload restore: state has ", s.breakers.size(),
             " breakers, dispatcher has ", breakers_.size());
    if (admission_ != nullptr)
        admission_->restore(s.admission);
    for (std::size_t g = 0; g < s.breakers.size(); ++g) {
        breakers_[g]->restore(s.breakers[g]);
        creditedOpens_[g] = breakers_[g]->trips();
    }
    rejectedByAdmission_ = s.rejected;
}

} // namespace serve
} // namespace cxlpnm
