#include "serve/dispatcher.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace cxlpnm
{
namespace serve
{

ApplianceDispatcher::ApplianceDispatcher(
    const llm::ModelConfig &model, const BatchCostModel &cost,
    const core::ParallelismPlan &plan,
    std::uint64_t kv_capacity_bytes, const SchedulerConfig &cfg,
    ServeMetrics &metrics)
    : metrics_(metrics), model_(model)
{
    fatal_if(plan.modelParallel < 1 || plan.dataParallel < 1,
             "bad parallelism plan");
    groups_.reserve(plan.dataParallel);
    for (int g = 0; g < plan.dataParallel; ++g)
        groups_.push_back(std::make_unique<BatchScheduler>(
            model, cost, kv_capacity_bytes, cfg, metrics));
}

void
ApplianceDispatcher::configureOverload(
    const AdmissionConfig &admission,
    const CircuitBreakerConfig &breaker)
{
    if (admission.enabled) {
        admission.validate();
        admission_ = std::make_unique<AdmissionController>(admission);
    }
    if (breaker.enabled) {
        breaker.validate();
        breakers_.clear();
        creditedOpens_.assign(groups_.size(), 0);
        for (std::size_t g = 0; g < groups_.size(); ++g) {
            breakers_.push_back(
                std::make_unique<CircuitBreaker>(breaker, g));
            groups_[g]->setBreaker(breakers_[g].get());
        }
    }
    if (admission.enabled || breaker.enabled)
        metrics_.enableOverloadStats();
}

void
ApplianceDispatcher::configureDisagg(const DisaggConfig &cfg)
{
    if (!cfg.enabled) {
        disagg_ = cfg;
        return;
    }
    fatal_if(cfg.prefillGroups == 0,
             "disaggregation needs at least one prefill group");
    fatal_if(cfg.prefillGroups >= groups_.size(),
             "disaggregation needs at least one decode group: ",
             cfg.prefillGroups, " prefill groups of ", groups_.size());
    disagg_ = cfg;
    for (std::size_t g = 0; g < disagg_.prefillGroups; ++g)
        groups_[g]->setPrefillHandoff(true);
    metrics_.enableDisaggStats();
}

void
ApplianceDispatcher::attachFaultInjector(fault::FaultInjector *inj,
                                         const std::string &prefix)
{
    for (std::size_t g = 0; g < groups_.size(); ++g) {
        groups_[g]->attachFaultSite(
            inj == nullptr ? nullptr
                           : inj->site(prefix + ".group" +
                                       std::to_string(g) + ".iteration"));
    }
}

void
ApplianceDispatcher::attachTracer(trace::Tracer *t,
                                  const std::string &prefix)
{
    tracer_ = t;
    routeTrack_ = t == nullptr
        ? trace::InvalidTrack
        : t->track(prefix + ".dispatch", "serve");
    for (std::size_t g = 0; g < groups_.size(); ++g)
        groups_[g]->attachTracer(
            t, prefix + ".group" + std::to_string(g));
}

void
ApplianceDispatcher::submit(const ServeRequest &req)
{
    // Move finished prefills to their decode groups before advancing:
    // pumping at the head of submit keeps in-flight handovers visible
    // in snapshots taken between arrivals.
    pumpHandoffs();

    // Bring every group up to the arrival instant so both the
    // admission gate and the routing decision see current load.
    for (auto &g : groups_)
        g->advanceTo(req.arrivalSeconds);

    if (admission_ != nullptr) {
        std::uint64_t depth = 0;
        double kv_min = 0.0;
        for (std::size_t g = 0; g < groups_.size(); ++g) {
            depth += groups_[g]->queueDepth();
            const double f = groups_[g]->kvDemandFraction();
            kv_min = g == 0 ? f : std::min(kv_min, f);
        }
        const AdmissionDecision d = admission_->decide(
            req, req.arrivalSeconds, depth, kv_min);
        if (d != AdmissionDecision::Admit) {
            ServeRequest r = req;
            r.state = RequestState::Rejected;
            r.finishSeconds = req.arrivalSeconds;
            metrics_.noteSubmitted(r.tenant);
            metrics_.throttleRequest(r.tenant);
            if (tracer_ != nullptr)
                tracer_->instant(
                    routeTrack_,
                    std::string(admissionDecisionName(d)) + "#" +
                        std::to_string(req.id),
                    secondsToTicks(req.arrivalSeconds));
            rejectedByAdmission_.push_back(std::move(r));
            noteBreakerTrips();
            return;
        }
    }

    // Pick the best group by (healthy, cached prefix tokens, least
    // outstanding work, lowest index). A group in post-failure
    // cooldown (degraded) or behind an open breaker is routed around
    // unless every group is blocked, in which case load wins as
    // usual so the appliance never deadlocks. Cache affinity only
    // discriminates under paged prefix caching; otherwise every
    // probe is 0 and routing reduces exactly to
    // least-outstanding-work. Breaker scanning uses the side-effect-
    // free wouldAllow(); only the chosen group's breaker commits
    // (Open -> HalfOpen flip, probe slot) via allowRoute().
    // Under disaggregation arrivals owe a prefill, so routing is
    // restricted to the prefill groups; decode groups only receive
    // handed-over continuations (pumpHandoffs).
    const std::size_t hi =
        disagg_.enabled ? disagg_.prefillGroups : groups_.size();
    std::size_t best = 0;
    std::uint64_t best_tokens = ~0ull;
    std::uint64_t best_cached = 0;
    bool best_blocked = true;
    for (std::size_t g = 0; g < hi; ++g) {
        const std::uint64_t t = groups_[g]->outstandingTokens();
        const std::uint64_t cached = groups_[g]->probeCachedTokens(req);
        bool blocked = groups_[g]->degradedAt(req.arrivalSeconds);
        if (!breakers_.empty() &&
            !breakers_[g]->wouldAllow(req.arrivalSeconds))
            blocked = true;
        const bool better = (!blocked && best_blocked) ||
            (blocked == best_blocked &&
             (cached > best_cached ||
              (cached == best_cached && t < best_tokens)));
        if (better) {
            best_tokens = t;
            best_cached = cached;
            best = g;
            best_blocked = blocked;
        }
    }
    if (!breakers_.empty())
        breakers_[best]->allowRoute(req.arrivalSeconds);
    if (tracer_ != nullptr)
        tracer_->instant(routeTrack_,
                         "route#" + std::to_string(req.id) + "->g" +
                             std::to_string(best),
                         secondsToTicks(req.arrivalSeconds));
    groups_[best]->submit(req);
    noteBreakerTrips();
}

std::size_t
ApplianceDispatcher::pumpHandoffs()
{
    if (!disagg_.enabled)
        return 0;
    std::size_t moved = 0;
    for (std::size_t g = 0; g < disagg_.prefillGroups; ++g) {
        for (ServeRequest &h : groups_[g]->takeHandoffs()) {
            // The prefill side stamped its transfer-start instant in
            // finishSeconds when it released the KV (the request is
            // not finished; the field is free until retirement).
            const double start = h.finishSeconds;
            const std::uint64_t bytes =
                model_.kvCacheBytes(h.inputTokens + h.generated);
            const double secs =
                cxl::transferSeconds(disagg_.link, bytes);
            handoverTraffic_.note(cxl::Direction::Downstream, bytes);
            ++handoversN_;
            handoverLinkSeconds_ += secs;
            metrics_.noteHandover(bytes, secs);

            // Pick the decode group by (healthy, cached prefix
            // tokens, least outstanding work, lowest index) at the
            // link-delayed ready time. Continuations bypass the
            // breakers: their KV already crossed the link and
            // dropping them here would strand paid-for work.
            const double ready = start + secs;
            std::size_t best = disagg_.prefillGroups;
            std::uint64_t best_tokens = ~0ull;
            std::uint64_t best_cached = 0;
            bool best_blocked = true;
            for (std::size_t d = disagg_.prefillGroups;
                 d < groups_.size(); ++d) {
                const std::uint64_t t = groups_[d]->outstandingTokens();
                const std::uint64_t cached =
                    groups_[d]->probeCachedTokens(h);
                const bool blocked = groups_[d]->degradedAt(ready);
                const bool better = (!blocked && best_blocked) ||
                    (blocked == best_blocked &&
                     (cached > best_cached ||
                      (cached == best_cached && t < best_tokens)));
                if (better) {
                    best_tokens = t;
                    best_cached = cached;
                    best = d;
                    best_blocked = blocked;
                }
            }
            if (tracer_ != nullptr)
                tracer_->instant(
                    routeTrack_,
                    "handover#" + std::to_string(h.id) + "->g" +
                        std::to_string(best),
                    secondsToTicks(ready));
            h.arrivalSeconds = ready;
            h.finishSeconds = -1.0;
            groups_[best]->submitContinuation(std::move(h));
            ++moved;
        }
    }
    return moved;
}

void
ApplianceDispatcher::advanceTo(double t)
{
    pumpHandoffs();
    for (auto &g : groups_)
        g->advanceTo(t);
    noteBreakerTrips();
}

void
ApplianceDispatcher::drain()
{
    // Draining a prefill group surfaces fresh handoffs, and pumping
    // them gives the decode groups new work; iterate to a fixpoint.
    // Off-mode pumps are no-ops, so plain drain behavior is intact.
    pumpHandoffs();
    for (auto &g : groups_)
        g->drain();
    while (pumpHandoffs() > 0) {
        for (auto &g : groups_)
            g->drain();
    }
    noteBreakerTrips();
}

void
ApplianceDispatcher::noteBreakerTrips()
{
    for (std::size_t g = 0; g < breakers_.size(); ++g) {
        const std::uint64_t n = breakers_[g]->trips();
        for (std::uint64_t i = creditedOpens_[g]; i < n; ++i)
            metrics_.noteBreakerOpen();
        creditedOpens_[g] = n;
    }
}

double
ApplianceDispatcher::clockSeconds() const
{
    double t = 0.0;
    for (const auto &g : groups_)
        t = std::max(t, g->clockSeconds());
    return t;
}

void
ApplianceDispatcher::restore(const std::vector<SchedulerState> &s)
{
    fatal_if(s.size() != groups_.size(),
             "dispatcher restore: state has ", s.size(),
             " groups, dispatcher has ", groups_.size());
    for (std::size_t g = 0; g < groups_.size(); ++g)
        groups_[g]->restore(s[g]);
}

ApplianceDispatcher::OverloadState
ApplianceDispatcher::overloadState() const
{
    OverloadState s;
    if (admission_ != nullptr)
        s.admission = admission_->state();
    s.breakers.reserve(breakers_.size());
    for (const auto &b : breakers_)
        s.breakers.push_back(b->snapshotState());
    s.rejected = rejectedByAdmission_;
    return s;
}

void
ApplianceDispatcher::restoreOverload(const OverloadState &s)
{
    fatal_if(!s.admission.buckets.empty() && admission_ == nullptr,
             "overload restore: state has admission buckets but the "
             "dispatcher has no admission gate; reconfigure first");
    fatal_if(!s.breakers.empty() &&
                 s.breakers.size() != breakers_.size(),
             "overload restore: state has ", s.breakers.size(),
             " breakers, dispatcher has ", breakers_.size());
    if (admission_ != nullptr)
        admission_->restore(s.admission);
    for (std::size_t g = 0; g < s.breakers.size(); ++g) {
        breakers_[g]->restore(s.breakers[g]);
        creditedOpens_[g] = breakers_[g]->trips();
    }
    rejectedByAdmission_ = s.rejected;
}

ApplianceDispatcher::DisaggState
ApplianceDispatcher::disaggState() const
{
    DisaggState s;
    s.traffic = handoverTraffic_;
    s.handovers = handoversN_;
    s.linkSeconds = handoverLinkSeconds_;
    return s;
}

void
ApplianceDispatcher::restoreDisagg(const DisaggState &s)
{
    handoverTraffic_ = s.traffic;
    handoversN_ = s.handovers;
    handoverLinkSeconds_ = s.linkSeconds;
}

} // namespace serve
} // namespace cxlpnm
